(* CI perf gate: compares a freshly produced bench report against its
   committed baseline and fails the build when a tracked path regresses.
   The gate dispatches on the report's "schema" field:

     dune exec bench/perf_gate.exe -- bench/baseline.json BENCH_pr5.json
     dune exec bench/perf_gate.exe -- bench/baseline_stream.json BENCH_pr7.json

   For "kfuse-bench-stream/1" (the streaming bench):

   - [bit_identical_domains] must hold: a fixed edit trace with fixed
     seeds yields bit-identical decisions for 1 and 4 worker domains.
   - [max_cost_ratio] must stay within the 2% plan-quality retention
     bound at every decision point.
   - [speedup_ratio] (full re-search over streamed amortized
     ms/decision, measured in one process on one machine) must not drop
     by more than 20% against the baseline — the amortized per-decision
     wall cannot silently regress.

   For "kfuse-bench/1", checked per workload (matched by name):

   - [bit_identical] must hold in the current run: the incremental path
     must still produce the exact plan, cost, history and evaluation
     count of the full path.
   - [measured_speedup] must equal the baseline exactly.  The search is
     deterministic, so any drift means the search behavior changed — if
     the change is intentional, regenerate the baseline in the same
     commit.
   - [evals_per_s_ratio] (incremental over full throughput, measured on
     one machine in one process) must not drop by more than 20%.  The
     ratio is used instead of absolute evals/s so the gate is robust to
     CI runners of different speeds.

   For "kfuse-bench-scaling/2" (the parallel-scaling sweep):

   - [bit_identical_domains] must hold in the current run, and the
     island machinery's overhead at domains=1 must keep wall speedups
     >= 0.9x — both host-independent, always gated.
   - evals/s must grow (within tolerance) with the domain count, up to
     the host's core count — skipped with a notice on 1-core hosts.
   - evals/s per domain count must stay within 20% of the baseline —
     skipped with a notice when the baseline was recorded on a host
     with a different core count (wall-clock quantities do not transfer
     between hosts; regenerate the baseline on the new host instead).

   Exit status 0 when every check passes, 1 otherwise. *)

module J = Kf_obs.Json

let tolerance = 0.20

let read_json path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> J.of_string (really_input_string ic (in_channel_length ic)))

let fail_count = ref 0

let check ok fmt =
  Format.kasprintf
    (fun msg ->
      if ok then Format.printf "  ok   %s@." msg
      else begin
        incr fail_count;
        Format.printf "  FAIL %s@." msg
      end)
    fmt

let get path conv doc =
  let rec go doc = function
    | [] -> conv doc
    | k :: rest -> Option.bind (J.member k doc) (fun d -> go d rest)
  in
  go doc path

let require path conv doc =
  match get path conv doc with
  | Some v -> v
  | None ->
      Format.eprintf "perf_gate: missing or ill-typed field %s@."
        (String.concat "." path);
      exit 2

let workloads doc =
  require [ "workloads" ] J.to_list_opt doc
  |> List.map (fun w -> (require [ "name" ] J.to_string_opt w, w))

let bool_of = function J.Bool b -> Some b | _ -> None

(* The streaming bench: trace-level determinism, plan-quality retention,
   and the amortized per-decision speedup against its baseline. *)
let gate_stream ~baseline ~current =
  Format.printf "streaming:@.";
  check
    (get [ "bit_identical_domains" ] bool_of current = Some true)
    "decisions bit-identical across worker-domain counts";
  let ratio = require [ "max_cost_ratio" ] J.to_float_opt current in
  check (ratio <= 1.02) "plan quality retained (worst cost ratio %.4f <= 1.02)" ratio;
  let sp_base = require [ "speedup_ratio" ] J.to_float_opt baseline
  and sp_cur = require [ "speedup_ratio" ] J.to_float_opt current in
  check
    (sp_cur >= (1. -. tolerance) *. sp_base)
    "amortized ms/decision speedup %.2fx within %.0f%% of baseline %.2fx" sp_cur
    (100. *. tolerance) sp_base

(* The parallel-scaling bench ("kfuse-bench-scaling/2").  Two kinds of
   checks: intra-run invariants of the current report (bit-identity
   across domain counts, island-machinery overhead bound, monotone
   throughput when the host actually has cores to scale onto), and a
   cross-run throughput comparison against the baseline.  Wall-clock
   quantities are only comparable between runs made on similar hosts, so
   the cross-run check — and the core-dependent intra-run one — are
   skipped with a visible notice when the recorded [host_cores] differ;
   the host-independent invariants always gate. *)
let gate_scaling ~baseline ~current =
  let cores d = require [ "host_cores" ] J.to_int_opt d in
  let base_cores = cores baseline and cur_cores = cores current in
  Format.printf "scaling (host_cores: baseline %d, current %d):@." base_cores cur_cores;
  check
    (get [ "aggregates"; "bit_identical_domains" ] bool_of current = Some true)
    "plans, costs, histories and evaluation counts bit-identical across domain counts";
  let min_speedup =
    require [ "aggregates"; "min_wall_speedup_domains1" ] J.to_float_opt current
  in
  check (min_speedup >= 0.9)
    "island machinery overhead bounded (min wall speedup at domains=1: %.2fx >= 0.90x)"
    min_speedup;
  let throughput d =
    require [ "aggregates"; "evals_per_s_by_domains" ] J.to_list_opt d
    |> List.map (fun e ->
           (require [ "domains" ] J.to_int_opt e, require [ "evals_per_s" ] J.to_float_opt e))
  in
  let cur_tp = throughput current in
  if cur_cores >= 2 then
    (* Monotone throughput up to the host's core count: adding a worker
       domain the host can actually schedule must not lose evals/s. *)
    List.iter
      (fun ((d1, t1), (d2, t2)) ->
        if d2 <= cur_cores then
          check
            (t2 >= (1. -. tolerance) *. t1)
            "evals/s monotone vs domains (%d: %.0f -> %d: %.0f)" d1 t1 d2 t2)
      (List.combine (List.filteri (fun i _ -> i < List.length cur_tp - 1) cur_tp)
         (List.tl cur_tp))
  else
    Format.printf
      "  SKIP evals/s monotonicity vs domains: current host has %d core(s), nothing to scale onto@."
      cur_cores;
  if base_cores <> cur_cores then
    Format.printf
      "  SKIP cross-run wall/throughput comparison: baseline recorded on a %d-core host, \
       current on %d cores — wall-clock quantities are not comparable@."
      base_cores cur_cores
  else begin
    let base_tp = throughput baseline in
    List.iter
      (fun (d, t_cur) ->
        match List.assoc_opt d base_tp with
        | None -> ()
        | Some t_base ->
            check
              (t_cur >= (1. -. tolerance) *. t_base)
              "evals/s at domains=%d (%.0f) within %.0f%% of baseline (%.0f)" d t_cur
              (100. *. tolerance) t_base)
      cur_tp
  end

let gate_search ~baseline ~current =
  let gm d = require [ "geomean_measured_speedup" ] J.to_float_opt d in
  Format.printf "overall:@.";
  check
    (gm baseline = gm current)
    "geomean measured speedup unchanged (%.6f vs baseline %.6f)" (gm current)
    (gm baseline);
  let current_workloads = workloads current in
  List.iter
    (fun (name, base) ->
      Format.printf "%s:@." name;
      match List.assoc_opt name current_workloads with
      | None -> check false "workload present in current run"
      | Some cur ->
          let f path d = require path J.to_float_opt d in
          check
            (get [ "bit_identical" ] (function J.Bool b -> Some b | _ -> None) cur
            = Some true)
            "incremental run bit-identical to full run";
          let sp_base = f [ "measured_speedup" ] base
          and sp_cur = f [ "measured_speedup" ] cur in
          check (sp_base = sp_cur)
            "measured speedup unchanged (%.6f vs baseline %.6f)" sp_cur sp_base;
          let r_base = f [ "evals_per_s_ratio" ] base
          and r_cur = f [ "evals_per_s_ratio" ] cur in
          check
            (r_cur >= (1. -. tolerance) *. r_base)
            "evals/s ratio %.2fx within %.0f%% of baseline %.2fx" r_cur
            (100. *. tolerance) r_base)
    (workloads baseline)

(* The arena/portfolio bench ("kfuse-bench-pareto/1").  The correctness
   invariants and the absolute throughput floors are host-independent
   and always gated; the cross-run speedup comparison carries the usual
   20% wall-clock tolerance. *)
let gate_pareto ~baseline ~current =
  Format.printf "pareto:@.";
  check
    (get [ "bit_identical" ] bool_of current = Some true)
    "arena search bit-identical to the legacy search";
  check
    (get [ "portfolio_unaffected" ] bool_of current = Some true)
    "portfolio leaves the primary search bit-identical";
  let single = require [ "single"; "speedup" ] J.to_float_opt current in
  check (single >= 2.0) "single-device arena speedup %.2fx >= 2.00x floor" single;
  let port = require [ "portfolio"; "speedup" ] J.to_float_opt current in
  check (port >= 4.0) "portfolio aggregate speedup %.2fx >= 4.00x floor" port;
  let alloc_legacy = require [ "alloc_per_eval"; "legacy" ] J.to_float_opt current
  and alloc_arena = require [ "alloc_per_eval"; "arena" ] J.to_float_opt current in
  check
    (alloc_arena <= 0.25 *. alloc_legacy)
    "arena minor allocation %.0f words/eval <= 25%% of legacy (%.0f)" alloc_arena
    alloc_legacy;
  let base_single = require [ "single"; "speedup" ] J.to_float_opt baseline in
  check
    (single >= (1. -. tolerance) *. base_single)
    "single-device speedup %.2fx within %.0f%% of baseline %.2fx" single
    (100. *. tolerance) base_single;
  let base_port = require [ "portfolio"; "speedup" ] J.to_float_opt baseline in
  check
    (port >= (1. -. tolerance) *. base_port)
    "portfolio speedup %.2fx within %.0f%% of baseline %.2fx" port (100. *. tolerance)
    base_port

(* The horizontal-composition bench ("kfuse-bench-horizontal/1").  The
   search is deterministic and the quantities are model projections (no
   wall clock), so the cross-run comparisons are exact equalities: any
   drift means the search or cost model changed — if intentional,
   regenerate the baseline in the same commit. *)
let gate_horizontal ~baseline ~current =
  Format.printf "horizontal:@.";
  check
    (get [ "vertical_deterministic" ] bool_of current = Some true)
    "vertical-only search deterministic run to run";
  let packs = require [ "horizontal_packs" ] J.to_int_opt current in
  check (packs >= 1) "winning plan uses horizontal composition (%d packs)" packs;
  let imp = require [ "cost_improvement" ] J.to_float_opt current in
  check (imp > 1.0) "horizontal best strictly beats vertical-only (projected %.3fx)" imp;
  let measured = require [ "measured_improvement" ] J.to_float_opt current in
  check (measured > 1.0)
    "simulator confirms the ordering (measured improvement %.3fx)" measured;
  let base_imp = require [ "cost_improvement" ] J.to_float_opt baseline in
  check (imp = base_imp)
    "projected improvement unchanged (%.6f vs baseline %.6f)" imp base_imp;
  let base_measured = require [ "measured_improvement" ] J.to_float_opt baseline in
  check (measured = base_measured)
    "measured improvement unchanged (%.6f vs baseline %.6f)" measured base_measured

(* Schema dispatch: one row per report family the gate understands.  An
   unknown schema is a hard error, not a silent fall-through — a new
   bench must land with its gate (or an explicit entry) in the same
   commit. *)
let gates =
  [
    ("kfuse-bench/1", gate_search);
    ("kfuse-bench-incremental/1", gate_search);
    ("kfuse-bench-stream/1", gate_stream);
    ("kfuse-bench-scaling/2", gate_scaling);
    ("kfuse-bench-pareto/1", gate_pareto);
    ("kfuse-bench-horizontal/1", gate_horizontal);
  ]

let () =
  let baseline_path, current_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ ->
        prerr_endline "usage: perf_gate <baseline.json> <current.json>";
        exit 2
  in
  let baseline = read_json baseline_path and current = read_json current_path in
  let schema d = require [ "schema" ] J.to_string_opt d in
  if schema baseline <> schema current then begin
    Format.eprintf "perf_gate: schema mismatch (%s vs %s)@." (schema baseline)
      (schema current);
    exit 2
  end;
  (match List.assoc_opt (schema current) gates with
  | Some gate -> gate ~baseline ~current
  | None ->
      Format.eprintf "perf_gate: unknown schema %S — known: %s@." (schema current)
        (String.concat ", " (List.map fst gates));
      exit 2);
  if !fail_count > 0 then begin
    Format.printf "@.perf gate: %d check(s) failed@." !fail_count;
    exit 1
  end;
  Format.printf "@.perf gate: all checks passed@."
