(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Wahib & Maruyama, SC'14).

     dune exec bench/main.exe              # run everything (~10-15 min)
     dune exec bench/main.exe -- table1 fig6 ...   # selected experiments
     dune exec bench/main.exe -- --list    # list experiment ids

   Absolute numbers come from the simulator substrate, not the authors'
   Tsubame2.5 nodes; the quantities to compare are the shapes (who wins,
   by what factor, where fusion stops paying).  EXPERIMENTS.md records the
   paper-vs-measured comparison for each experiment id. *)

module Device = Kf_gpu.Device
module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Metadata = Kf_ir.Metadata
module Datadep = Kf_graph.Datadep
module Exec_order = Kf_graph.Exec_order
module Traffic = Kf_graph.Traffic
module Fused = Kf_fusion.Fused
module Fused_program = Kf_fusion.Fused_program
module Plan = Kf_fusion.Plan
module Measure = Kf_sim.Measure
module Inputs = Kf_model.Inputs
module Projection = Kf_model.Projection
module Roofline = Kf_model.Roofline
module Simple = Kf_model.Simple_model
module FE = Kf_model.Fusion_efficiency
module Mwp = Kf_model.Mwp
module Objective = Kf_search.Objective
module Hgga = Kf_search.Hgga
module Exact = Kf_search.Exact
module Greedy = Kf_search.Greedy
module Pipeline = Kfuse.Pipeline
module Table = Kf_util.Table
module Stats = Kf_util.Stats
module Suite = Kf_workloads.Suite
module Apps = Kf_workloads.Apps
module Genapp = Kf_workloads.Genapp
module Motivating = Kf_workloads.Motivating

let k20x = Device.k20x
let k40 = Device.k40
let maxwell = Device.gtx750ti

let search_params =
  { Hgga.default_params with Hgga.max_generations = 300; stall_generations = 50 }

let header id title =
  Format.printf "@.==== %s: %s ====@." id title

(* ------------------------------------------------------------------ *)
(* Table I: features of weather applications                           *)
(* ------------------------------------------------------------------ *)

let exp_table1 () =
  header "table1" "Features of different weather applications";
  let t =
    Table.create
      [
        ("application", Table.Left); ("kernels", Table.Right); ("arrays", Table.Right);
        ("reducible traffic", Table.Right); ("paper", Table.Right);
      ]
  in
  (* SCALE-LES and HOMME use their dedicated structured models; the rest
     the calibrated statistical generator. *)
  let reducible p =
    (Traffic.analyze (Exec_order.build (Datadep.build p))).Traffic.reducible_fraction
  in
  let row name p paper =
    Table.add_row t
      [
        name;
        string_of_int (Program.num_kernels p);
        string_of_int (Program.num_arrays p);
        Table.cell_pct (reducible p);
        Table.cell_pct paper;
      ]
  in
  row "SCALE-LES" (Kf_workloads.Scale_les.program ()) 0.41;
  List.iter
    (fun (e : Apps.entry) ->
      if e.Apps.spec.Genapp.name <> "scale-les" && e.Apps.spec.Genapp.name <> "homme" then begin
        let p, _ = Apps.program e in
        row (String.uppercase_ascii e.Apps.spec.Genapp.name) p e.Apps.paper_reducible
      end)
    Apps.all;
  row "HOMME" (Kf_workloads.Homme.program ()) 0.21;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table IV: device features                                           *)
(* ------------------------------------------------------------------ *)

let exp_table4 () =
  header "table4" "Features of K20X, K40 and Maxwell GTX 750 Ti";
  let t =
    Table.create
      [
        ("parameter", Table.Left); ("K20X", Table.Right); ("K40", Table.Right);
        ("GTX750Ti", Table.Right);
      ]
  in
  let row name f = Table.add_row t (name :: List.map f [ k20x; k40; maxwell ]) in
  row "registers/SMX" (fun d -> Printf.sprintf "%dKB" (d.Device.registers_per_smx * 4 / 65536 * 16));
  row "max SMEM/SMX" (fun d -> Printf.sprintf "%dKB" (d.Device.smem_per_smx / 1024));
  row "SMX count" (fun d -> string_of_int d.Device.smx_count);
  row "max regs/thread" (fun d -> string_of_int d.Device.max_registers_per_thread);
  row "peak (TFLOPS)" (fun d -> Table.cell_f (d.Device.peak_gflops /. 1000.));
  row "GMEM BW (GB/s)" (fun d -> Table.cell_f ~decimals:0 d.Device.gmem_bandwidth_gbs);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table V: the test-suite attribute grid                               *)
(* ------------------------------------------------------------------ *)

let exp_table5 () =
  header "table5" "Attributes of the test suite built from CloverLeaf";
  let t =
    Table.create
      [ ("attribute", Table.Left); ("min", Table.Right); ("max", Table.Right); ("step", Table.Right) ]
  in
  let row name axis =
    let values = Suite.table5_axis axis in
    let first = List.hd values and last = List.nth values (List.length values - 1) in
    let step = match values with a :: b :: _ -> b - a | _ -> 0 in
    Table.add_row t [ name; string_of_int first; string_of_int last; string_of_int step ]
  in
  row "# kernels" `Kernels;
  row "# arrays" `Arrays;
  row "# data copies" `Copies;
  row "size sharing set" `Sharing;
  row "avg thread load" `Load;
  row "kinship" `Kinship;
  Table.print t

(* ------------------------------------------------------------------ *)
(* shared search helpers                                                *)
(* ------------------------------------------------------------------ *)

let prepare ?(device = k20x) p = Pipeline.prepare ~device p

let objective ?model ctx = Pipeline.objective ?model ctx

(* ------------------------------------------------------------------ *)
(* Fig. 5a: percentage of best solutions found                          *)
(* ------------------------------------------------------------------ *)

let exp_fig5a () =
  header "fig5a" "Percentage of optimal solutions found by the HGGA (vs. exact DP)";
  let t =
    Table.create
      [
        ("thread load", Table.Right); ("sharing set", Table.Right); ("exact DP cost (ms)", Table.Right);
        ("best found (ms)", Table.Right); ("runs at best", Table.Right);
      ]
  in
  List.iter
    (fun load ->
      List.iter
        (fun sharing ->
          let p =
            Suite.generate
              { Suite.default with Suite.kernels = 14; arrays = 28; thread_load = load;
                sharing_set = sharing; seed = (10 * load) + sharing }
          in
          let ctx = prepare p in
          (* The DP is exact up to its group-size cap; the optimum is the
             better of the DP solution and the best run (the GA sometimes
             finds profitable groups above the cap). *)
          let exact = Exact.solve ~max_group_size:8 (objective ctx) in
          let runs = 10 in
          let costs =
            List.init runs (fun seed ->
                (Hgga.solve
                   ~params:{ search_params with Hgga.seed = seed + 1; max_generations = 300;
                             stall_generations = 80 }
                   (objective ctx))
                  .Hgga.cost)
          in
          let best = List.fold_left Float.min exact.Exact.cost costs in
          let hits = List.length (List.filter (fun c -> c <= best *. 1.005) costs) in
          Table.add_row t
            [
              string_of_int load;
              string_of_int sharing;
              Table.cell_f ~decimals:3 (exact.Exact.cost *. 1e3);
              Table.cell_f ~decimals:3 (best *. 1e3);
              Printf.sprintf "%d/%d" hits runs;
            ])
        [ 2; 4; 6; 8 ])
    [ 4; 8; 12 ];
  Table.print t;
  Format.printf "(paper Fig. 5a: 95%% to 100%% of runs find the best solution)@."

(* ------------------------------------------------------------------ *)
(* Fig. 5b: time to best solution on the largest benchmarks             *)
(* ------------------------------------------------------------------ *)

let exp_fig5b () =
  header "fig5b" "Search time to best solution, largest test-suite benchmarks";
  let t =
    Table.create
      [
        ("kernels", Table.Right); ("arrays", Table.Right); ("generations", Table.Right);
        ("evaluations", Table.Right); ("time to best (s)", Table.Right); ("total time (s)", Table.Right);
      ]
  in
  List.iter
    (fun k ->
      let p = Suite.generate { Suite.default with Suite.kernels = k; arrays = 2 * k; seed = k } in
      let ctx = prepare p in
      let r = Hgga.solve ~params:search_params (objective ctx) in
      let stats = r.Hgga.stats in
      (* The incumbent last improved at the last history entry; prorate the
         wall time over generations to estimate time-to-best. *)
      let best_gen =
        match List.rev stats.Hgga.improvement_history with (g, _) :: _ -> g | [] -> 0
      in
      let time_to_best =
        if stats.Hgga.generations = 0 then 0.
        else stats.Hgga.wall_time_s *. float_of_int best_gen /. float_of_int stats.Hgga.generations
      in
      Table.add_row t
        [
          string_of_int k; string_of_int (2 * k); string_of_int stats.Hgga.generations;
          string_of_int stats.Hgga.evaluations; Table.cell_f time_to_best;
          Table.cell_f stats.Hgga.wall_time_s;
        ])
    [ 70; 80; 90; 100 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fig. 6: measured vs projected runtime across the test suite          *)
(* ------------------------------------------------------------------ *)

let exp_fig6 () =
  header "fig6" "Measured vs. projected runtime of new kernels (thread load = 8)";
  let t =
    Table.create
      [
        ("kernels", Table.Right); ("measured (ms)", Table.Right); ("roofline (ms)", Table.Right);
        ("simple (ms)", Table.Right); ("proposed (ms)", Table.Right);
      ]
  in
  List.iter
    (fun k ->
      let p = Suite.generate { Suite.default with Suite.kernels = k; arrays = 2 * k; seed = k } in
      let ctx = prepare p in
      let r = Hgga.solve ~params:search_params (objective ctx) in
      let i = ctx.Pipeline.inputs in
      let fused_groups = List.filter (fun g -> List.length g >= 2) (Plan.groups r.Hgga.plan) in
      let sum f = List.fold_left (fun acc g -> acc +. f g) 0. fused_groups in
      let build g = Fused.build ~device:k20x ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec ~group:g in
      let measured =
        sum (fun g -> (Measure.fused ~device:k20x p (build g)).Measure.runtime_s)
      in
      Table.add_row t
        [
          string_of_int k;
          Table.cell_f ~decimals:3 (measured *. 1e3);
          Table.cell_f ~decimals:3 (sum (fun g -> Roofline.runtime i (build g)) *. 1e3);
          Table.cell_f ~decimals:3 (sum (fun g -> Simple.runtime i (build g)) *. 1e3);
          Table.cell_f ~decimals:3 (sum (fun g -> Projection.runtime i (build g)) *. 1e3);
        ])
    [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ];
  Table.print t;
  Format.printf
    "(paper Fig. 6 shape: Roofline lowest, simple model next, proposed close to measured)@."

(* ------------------------------------------------------------------ *)
(* Table VI: search performance on SCALE-LES and HOMME                  *)
(* ------------------------------------------------------------------ *)

let table6_params =
  { Hgga.default_params with
    Hgga.population_size = 100; max_generations = 2000; stall_generations = 60 }

let exp_table6 () =
  header "table6" "Performance and parameters of the search algorithm";
  let t =
    Table.create
      [
        ("application", Table.Left); ("generations", Table.Right); ("population", Table.Right);
        ("evaluations", Table.Right); ("runtime", Table.Right); ("paper", Table.Left);
      ]
  in
  let row name p paper =
    let ctx = prepare p in
    let r = Hgga.solve ~params:table6_params (objective ctx) in
    Table.add_row t
      [
        name;
        string_of_int r.Hgga.stats.Hgga.generations;
        string_of_int table6_params.Hgga.population_size;
        Printf.sprintf "%.1fe6" (float_of_int r.Hgga.stats.Hgga.evaluations /. 1e6);
        Printf.sprintf "%.2f min" (r.Hgga.stats.Hgga.wall_time_s /. 60.);
        paper;
      ]
  in
  row "SCALE-LES" (Kf_workloads.Scale_les.program ()) "2000 gen, 5.4e6 eval, 9.51 min";
  row "HOMME" (Kf_workloads.Homme.program ()) "1000 gen, 2.7e6 eval, 6.11 min";
  Table.print t;
  Format.printf
    "(the stop criterion is the paper's no-improvement stall; our searches converge earlier)@."

(* ------------------------------------------------------------------ *)
(* Figs. 7 and 8: per-new-kernel measured / projected / original sum    *)
(* ------------------------------------------------------------------ *)

let per_kernel_figure id title p =
  header id title;
  let ctx = prepare p in
  let r = Hgga.solve ~params:search_params (objective ctx) in
  let i = ctx.Pipeline.inputs in
  let rows =
    Plan.groups r.Hgga.plan
    |> List.filter (fun g -> List.length g >= 2)
    |> List.map (fun g ->
           let f = Fused.build ~device:k20x ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec ~group:g in
           let measured = (Measure.fused ~device:k20x p f).Measure.runtime_s in
           (measured, Projection.runtime i f, Inputs.original_sum i g, f))
    |> List.sort compare
  in
  let t =
    Table.create
      [
        ("new kernel", Table.Left); ("members", Table.Right); ("measured (us)", Table.Right);
        ("projected (us)", Table.Right); ("original sum (us)", Table.Right); ("productive", Table.Left);
      ]
  in
  let unproductive = ref 0 in
  List.iter
    (fun (m, proj, osum, f) ->
      if m >= osum then incr unproductive;
      Table.add_row t
        [
          f.Fused.name;
          string_of_int (List.length f.Fused.members);
          Table.cell_f ~decimals:0 (m *. 1e6);
          Table.cell_f ~decimals:0 (proj *. 1e6);
          Table.cell_f ~decimals:0 (osum *. 1e6);
          (if m < osum then "yes" else "NO");
        ])
    rows;
  Table.print t;
  Format.printf "%d of %d new kernels unproductive (paper: 4/38 for SCALE-LES, 1/9 for HOMME)@."
    !unproductive (List.length rows)

let exp_fig7 () =
  per_kernel_figure "fig7" "SCALE-LES new kernels on K20X (measured / projected / original sum)"
    (Kf_workloads.Scale_les.program ())

let exp_fig8 () =
  per_kernel_figure "fig8" "HOMME new kernels on K20X (measured / projected / original sum)"
    (Kf_workloads.Homme.program ())

(* ------------------------------------------------------------------ *)
(* Fig. 9: test-suite speedups, Kepler vs. Maxwell                       *)
(* ------------------------------------------------------------------ *)

let exp_fig9 () =
  header "fig9" "Test-suite speedups after fusion (thread load = 8), Kepler vs Maxwell";
  let t =
    Table.create
      [
        ("kernels", Table.Right); ("arrays", Table.Right); ("K20X speedup", Table.Right);
        ("GTX750Ti speedup", Table.Right);
      ]
  in
  List.iter
    (fun (k, a) ->
      let p = Suite.generate { Suite.default with Suite.kernels = k; arrays = a; seed = k + a } in
      let speedup device =
        let o = Pipeline.run ~params:search_params ~device p in
        o.Pipeline.speedup
      in
      Table.add_row t
        [
          string_of_int k; string_of_int a;
          Table.cell_speedup (speedup k20x);
          Table.cell_speedup (speedup maxwell);
        ])
    [ (20, 20); (20, 40); (40, 40); (40, 80); (60, 60); (60, 120) ];
  Table.print t;
  Format.printf
    "(paper Fig. 9 shape: Maxwell's larger SMEM gives higher speedups; fewer arrays \
     mean stricter order-of-execution and lower speedups)@."

(* ------------------------------------------------------------------ *)
(* Table VII: application speedups                                      *)
(* ------------------------------------------------------------------ *)

let exp_table7 () =
  header "table7" "SCALE-LES and HOMME speedups after kernel fusion";
  let t =
    Table.create
      [
        ("application", Table.Left); ("K40", Table.Right); ("K20X", Table.Right);
        ("paper K40", Table.Right); ("paper K20X", Table.Right);
      ]
  in
  let row name p paper40 paper20 =
    let s device = (Pipeline.run ~params:search_params ~device p).Pipeline.speedup in
    Table.add_row t
      [ name; Table.cell_speedup (s k40); Table.cell_speedup (s k20x);
        Table.cell_speedup paper40; Table.cell_speedup paper20 ]
  in
  row "SCALE-LES" (Kf_workloads.Scale_les.program ()) 1.35 1.32;
  row "HOMME" (Kf_workloads.Homme.program ()) 1.20 1.18;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Motivating micro-benchmark (paper §IV-B)                              *)
(* ------------------------------------------------------------------ *)

let exp_motivating () =
  header "motivating" "Fig. 3 micro-benchmark: model projections vs measurement";
  let p = Motivating.program () in
  let ctx = prepare p in
  let i = ctx.Pipeline.inputs in
  let t =
    Table.create
      [
        ("fusion", Table.Left); ("orig sum (us)", Table.Right); ("roofline (us)", Table.Right);
        ("simple (us)", Table.Right); ("proposed (us)", Table.Right); ("measured (us)", Table.Right);
        ("paper (us)", Table.Left);
      ]
  in
  let row name group paper =
    let f = Fused.build ~device:k20x ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec ~group in
    let us v = Table.cell_f ~decimals:0 (v *. 1e6) in
    Table.add_row t
      [
        name;
        us (Inputs.original_sum i group);
        us (Roofline.runtime i f);
        us (Simple.runtime i f);
        us (Projection.runtime i f);
        us (Measure.fused ~device:k20x p f).Measure.runtime_s;
        paper;
      ]
  in
  row "X = A+B" Motivating.fusion_x "(profitable)";
  row "Y = C+D+E" Motivating.fusion_y "orig 519, roofline 336, simple 410, proposed 564, measured 554";
  Table.print t

(* ------------------------------------------------------------------ *)
(* SMEM capacity study (paper §VI-E)                                     *)
(* ------------------------------------------------------------------ *)

let exp_smem () =
  header "smem_study" "Hypothetical SMEM capacities on SCALE-LES (K20X base)";
  let p = Kf_workloads.Scale_les.program () in
  let t =
    Table.create
      [
        ("SMEM/SMX", Table.Right); ("measured speedup", Table.Right);
        ("projected speedup", Table.Right); ("fused kernels", Table.Right);
        ("paper projection", Table.Right);
      ]
  in
  List.iter
    (fun (kb, paper) ->
      let device = if kb = 48 then k20x else Device.with_smem k20x (kb * 1024) in
      let o = Pipeline.run ~params:search_params ~device p in
      (* The paper's 128/256 KB numbers are model projections, not
         measurements; report both. *)
      let projected = o.Pipeline.context.Pipeline.original_runtime /. o.Pipeline.search.Hgga.cost in
      Table.add_row t
        [
          Printf.sprintf "%d KB" kb;
          Table.cell_speedup o.Pipeline.speedup;
          Table.cell_speedup projected;
          string_of_int (Plan.fused_kernel_count o.Pipeline.search.Hgga.plan);
          paper;
        ])
    [ (48, "1.32x (measured)"); (128, "1.56x"); (256, "1.65x") ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fusion efficiency (paper §VI-F)                                       *)
(* ------------------------------------------------------------------ *)

let exp_fe () =
  header "fusion_efficiency" "Fusion efficiency of the new kernels (paper: 87-96%)";
  let collect p =
    let ctx = prepare p in
    let r = Hgga.solve ~params:search_params (objective ctx) in
    Plan.groups r.Hgga.plan
    |> List.filter (fun g -> List.length g >= 2)
    |> List.filter_map (fun g ->
           let f = Fused.build ~device:k20x ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec ~group:g in
           let m = (Measure.fused ~device:k20x p f).Measure.runtime_s in
           let fe = FE.compute ctx.Pipeline.inputs f ~measured_fused_runtime:m in
           (* Efficiency is only meaningful for fusions that did reduce
              runtime. *)
           if fe.FE.runtime_ratio < 1.0 then Some fe.FE.efficiency else None)
  in
  let all =
    List.concat_map collect
      [
        Kf_workloads.Homme.program ();
        Suite.generate { Suite.default with Suite.kernels = 30; arrays = 60; seed = 77 };
        Suite.generate { Suite.default with Suite.kernels = 50; arrays = 100; seed = 78 };
      ]
  in
  let arr = Array.of_list all in
  let s = Stats.summarize arr in
  (* Degenerate suites (no profitable fusions) leave [arr] empty; the
     [_opt] accessors keep the report printable instead of raising. *)
  let pct q = match Stats.percentile_opt arr q with Some v -> v *. 100. | None -> Float.nan in
  Format.printf "new kernels rated: %d@." s.Stats.n;
  Format.printf "fusion efficiency: min %.1f%%, p25 %.1f%%, median %.1f%%, p75 %.1f%%, max %.1f%%@."
    (s.Stats.min *. 100.) (pct 25.) (s.Stats.median *. 100.) (pct 75.) (s.Stats.max *. 100.);
  Format.printf "mean %.1f%% (the paper reports 87%%-96%%)@." (s.Stats.mean *. 100.)

(* ------------------------------------------------------------------ *)
(* Evaluation-cost microbenchmark (Bechamel)                            *)
(* ------------------------------------------------------------------ *)

let exp_evalcost () =
  header "evalcost" "Cost per objective evaluation: codeless projection vs code-based models";
  let p = Kf_workloads.Scale_les.program () in
  let ctx = prepare p in
  let i = ctx.Pipeline.inputs in
  (* A representative candidate group from the RK section. *)
  let group = Exec_order.convexify ctx.Pipeline.exec [ 7; 9 ] in
  let f = Fused.build ~device:k20x ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec ~group in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"evaluation"
      [
        Test.make ~name:"proposed-projection" (Staged.stage (fun () -> Projection.runtime i f));
        Test.make ~name:"roofline" (Staged.stage (fun () -> Roofline.runtime i f));
        Test.make ~name:"simple-model" (Staged.stage (fun () -> Simple.runtime i f));
        Test.make ~name:"mwp-code-representation" (Staged.stage (fun () -> Mwp.runtime i f));
        Test.make ~name:"full-simulation"
          (Staged.stage (fun () -> (Kf_sim.Measure.fused ~device:k20x p f).Kf_sim.Measure.runtime_s));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Bechamel.Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Table.create
      [ ("evaluator", Table.Left); ("ns/eval", Table.Right); ("evals for SCALE-LES search", Table.Left) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (ns :: _) -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) ->
      let search_time = ns *. 5.4e6 /. 1e9 in
      Table.add_row t
        [ name; Table.cell_f ~decimals:0 ns; Printf.sprintf "5.4e6 evals = %.1f s" search_time ])
    (List.sort (fun (_, a) (_, b) -> compare a b) !rows);
  Table.print t;
  Format.printf
    "(the paper measures 3 ms per MWP/GROPHECY evaluation and extrapolates 2.1e39 hours \
     for exhaustive search; the codeless projection is what makes 5.4e6 evaluations \
     tractable)@."

(* ------------------------------------------------------------------ *)
(* Baseline solver comparison (extension: not a paper figure)           *)
(* ------------------------------------------------------------------ *)

let exp_solvers () =
  header "solvers" "Solver quality: HGGA vs greedy vs random (extension)";
  let t =
    Table.create
      [
        ("workload", Table.Left); ("identity (ms)", Table.Right); ("greedy (ms)", Table.Right);
        ("random (ms)", Table.Right); ("annealing (ms)", Table.Right); ("HGGA (ms)", Table.Right);
      ]
  in
  List.iter
    (fun (name, p) ->
      let ctx = prepare p in
      let identity = ctx.Pipeline.original_runtime in
      let g = Greedy.solve (objective ctx) in
      let rnd = Kf_search.Random_search.solve ~samples:300 (objective ctx) in
      let sa = Kf_search.Annealing.solve (objective ctx) in
      let h = Hgga.solve ~params:search_params (objective ctx) in
      Table.add_row t
        [
          name;
          Table.cell_f (identity *. 1e3);
          Table.cell_f (g.Greedy.cost *. 1e3);
          Table.cell_f (rnd.Kf_search.Random_search.cost *. 1e3);
          Table.cell_f (sa.Kf_search.Annealing.cost *. 1e3);
          Table.cell_f (h.Hgga.cost *. 1e3);
        ])
    [
      ("suite-30", Suite.generate { Suite.default with Suite.kernels = 30; arrays = 60; seed = 5 });
      ("scale-les-rk", Kf_workloads.Scale_les.rk_core ());
      ("tealeaf", Kf_workloads.Tealeaf.program ());
      ("homme", Kf_workloads.Homme.program ());
    ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Objective-model ablation (extension: quantifies §IV's argument)      *)
(* ------------------------------------------------------------------ *)

let exp_objective_ablation () =
  header "objective_ablation"
    "Search guided by each model: measured outcome of the resulting plans";
  let t =
    Table.create
      [
        ("workload", Table.Left); ("objective", Table.Left); ("speedup", Table.Right);
        ("fused kernels", Table.Right); ("regressing", Table.Right);
      ]
  in
  List.iter
    (fun (name, p) ->
      let ctx = prepare p in
      List.iter
        (fun model ->
          let r = Hgga.solve ~params:search_params (objective ~model ctx) in
          let fused_groups =
            List.filter (fun g -> List.length g >= 2) (Plan.groups r.Hgga.plan)
          in
          let i = ctx.Pipeline.inputs in
          let regressing = ref 0 in
          let fused_time =
            List.fold_left
              (fun acc g ->
                let f =
                  Fused.build ~device:k20x ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec ~group:g
                in
                let m = (Measure.fused ~device:k20x p f).Measure.runtime_s in
                if m >= Inputs.original_sum i g then incr regressing;
                acc +. m)
              0. fused_groups
          in
          let singles =
            List.fold_left
              (fun acc g -> match g with [ k ] -> acc +. i.Inputs.measured_runtime.(k) | _ -> acc)
              0. (Plan.groups r.Hgga.plan)
          in
          let speedup = ctx.Pipeline.original_runtime /. (fused_time +. singles) in
          Table.add_row t
            [
              name;
              Objective.model_name model;
              Table.cell_speedup speedup;
              string_of_int (List.length fused_groups);
              Printf.sprintf "%d/%d" !regressing (List.length fused_groups);
            ])
        [ Objective.Proposed; Objective.Roofline; Objective.Simple; Objective.Mwp ])
    [
      ("homme", Kf_workloads.Homme.program ());
      ("suite-30", Suite.generate { Suite.default with Suite.kernels = 30; arrays = 60; seed = 42 });
    ];
  Table.print t;
  Format.printf
    "(a naive objective admits fusions that regress when actually run — the reason \
     the paper's projection model exists)@."

(* ------------------------------------------------------------------ *)
(* Read-only cache ablation (paper §II-C, extension)                     *)
(* ------------------------------------------------------------------ *)

let exp_readonly_cache () =
  header "readonly_cache"
    "Staging read-only arrays through the Kepler read-only cache (paper §II-C)";
  let t =
    Table.create
      [
        ("workload", Table.Left); ("RO cache", Table.Left); ("speedup", Table.Right);
        ("fused kernels", Table.Right); ("fused originals", Table.Right);
      ]
  in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun flag ->
          let device = Device.with_readonly_cache k20x flag in
          let o = Pipeline.run ~params:search_params ~device p in
          Table.add_row t
            [
              name;
              (if flag then "on" else "off");
              Table.cell_speedup o.Pipeline.speedup;
              string_of_int (Plan.fused_kernel_count o.Pipeline.search.Hgga.plan);
              string_of_int (Plan.fused_member_count o.Pipeline.search.Hgga.plan);
            ])
        [ false; true ])
    [
      (* The suite's shared "state" fields are program-wide read-only and
         stenciled — exactly the arrays §II-C's read-only cache targets. *)
      ("suite-30", Suite.generate { Suite.default with Suite.kernels = 30; arrays = 60; seed = 9 });
      ("suite-50", Suite.generate { Suite.default with Suite.kernels = 50; arrays = 100; seed = 9 });
      ("homme", Kf_workloads.Homme.program ());
    ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* RK3 unrolling (paper §II-C multiple-invocation extension)             *)
(* ------------------------------------------------------------------ *)

let exp_unroll () =
  header "rk3_unroll"
    "Fusing across Runge-Kutta sub-steps by cloning repeated invocations (§II-C)";
  let base = Kf_workloads.Scale_les.rk_core () in
  let t =
    Table.create
      [
        ("invocations", Table.Right); ("kernels", Table.Right); ("speedup", Table.Right);
        ("cross-iteration groups", Table.Right);
      ]
  in
  List.iter
    (fun times ->
      let p = Kf_ir.Unroll.repeat ~times base in
      let o = Pipeline.run ~params:search_params ~device:k20x p in
      let n_per_iter = Program.num_kernels base in
      let cross =
        List.length
          (List.filter
             (fun g ->
               List.length g >= 2
               && List.length (List.sort_uniq compare (List.map (fun k -> k / n_per_iter) g)) > 1)
             (Plan.groups o.Pipeline.search.Hgga.plan))
      in
      Table.add_row t
        [
          string_of_int times;
          string_of_int (Program.num_kernels p);
          Table.cell_speedup o.Pipeline.speedup;
          string_of_int cross;
        ])
    [ 1; 2; 3 ];
  Table.print t;
  Format.printf
    "(RK3 calls the same kernels three times per step; cloning invocations lets the search      fuse across sub-step boundaries)@."

(* ------------------------------------------------------------------ *)
(* Thread-block size ablation (paper §II-D.2 tradeoff)                   *)
(* ------------------------------------------------------------------ *)

let exp_block_tuning () =
  header "block_tuning" "Thread-block tile vs fusion benefit (§II-D.2 halo/SMEM tradeoff)";
  let p = Kf_workloads.Scale_les.rk_core () in
  let candidates, best = Kfuse.Block_tuner.tune ~params:search_params ~device:k20x p in
  let t =
    Table.create
      [
        ("tile", Table.Right); ("orig (ms)", Table.Right); ("fused (ms)", Table.Right);
        ("speedup", Table.Right); ("best", Table.Left);
      ]
  in
  List.iter
    (fun (c : Kfuse.Block_tuner.candidate) ->
      let o = c.Kfuse.Block_tuner.outcome in
      Table.add_row t
        [
          Printf.sprintf "%dx%d" c.Kfuse.Block_tuner.block_x c.Kfuse.Block_tuner.block_y;
          Table.cell_f (o.Pipeline.context.Pipeline.original_runtime *. 1e3);
          Table.cell_f (o.Pipeline.fused_runtime *. 1e3);
          Table.cell_speedup o.Pipeline.speedup;
          (if c.Kfuse.Block_tuner.block_x = best.Kfuse.Block_tuner.block_x
              && c.Kfuse.Block_tuner.block_y = best.Kfuse.Block_tuner.block_y
           then "<=="
           else "");
        ])
    candidates;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Host-transfer sync points (paper §II-C, extension)                     *)
(* ------------------------------------------------------------------ *)

let exp_sync_points () =
  header "sync_points" "Host transfers between invocations constrain fusion (§II-C)";
  let p = Kf_workloads.Scale_les.rk_core () in
  let t =
    Table.create
      [
        ("sync after kernel", Table.Left); ("speedup", Table.Right);
        ("fused kernels", Table.Right); ("fused originals", Table.Right);
      ]
  in
  List.iter
    (fun (label, sync_points) ->
      let o = Pipeline.run ~params:search_params ~sync_points ~device:k20x p in
      Table.add_row t
        [
          label;
          Table.cell_speedup o.Pipeline.speedup;
          string_of_int (Plan.fused_kernel_count o.Pipeline.search.Hgga.plan);
          string_of_int (Plan.fused_member_count o.Pipeline.search.Hgga.plan);
        ])
    [ ("none", []); ("#8 (mid-sequence exchange)", [ 8 ]); ("#4 and #12", [ 4; 12 ]) ];
  Table.print t;
  Format.printf "(each transfer point splits the fusion space; groups never cross it)@."

(* ------------------------------------------------------------------ *)
(* Semantic verification (extension: the execution oracle)               *)
(* ------------------------------------------------------------------ *)

let exp_verify () =
  header "verify" "Execution-oracle verification of searched plans (extension)";
  let t =
    Table.create
      [
        ("workload", Table.Left); ("kernels", Table.Right); ("units", Table.Right);
        ("oracle sites", Table.Right); ("verdict", Table.Left);
      ]
  in
  let small g =
    Kf_ir.Grid.make ~nx:(4 * g.Kf_ir.Grid.block_x) ~ny:(4 * g.Kf_ir.Grid.block_y)
      ~nz:(min g.Kf_ir.Grid.nz 4) ~block_x:g.Kf_ir.Grid.block_x ~block_y:g.Kf_ir.Grid.block_y
  in
  List.iter
    (fun (name, p) ->
      let p = Program.with_grid p (small p.Program.grid) in
      let ctx = prepare p in
      let r = Hgga.solve ~params:search_params (objective ctx) in
      let fp =
        Fused_program.build ~device:k20x ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec r.Hgga.plan
      in
      let v = Kf_exec.Semantics.check ~device:k20x fp in
      Table.add_row t
        [
          name;
          string_of_int (Program.num_kernels p);
          string_of_int (Plan.num_groups r.Hgga.plan);
          string_of_int (Kf_ir.Grid.sites p.Program.grid);
          (if v.Kf_exec.Semantics.equivalent then "bitwise equal"
           else Printf.sprintf "MISMATCH (%d sites)" v.Kf_exec.Semantics.mismatched_sites);
        ])
    [
      ("motivating", Kf_workloads.Motivating.program ());
      ("scale-les-rk", Kf_workloads.Scale_les.rk_core ());
      ("scale-les-rk x3", Kf_ir.Unroll.repeat ~times:3 (Kf_workloads.Scale_les.rk_core ()));
      ("tealeaf", Kf_workloads.Tealeaf.program ());
      ("homme", Kf_workloads.Homme.program ());
      ("suite-20", Suite.generate { Suite.default with Suite.kernels = 20; arrays = 40; seed = 55 });
    ];
  Table.print t;
  Format.printf
    "(every plan the search emits executes bitwise-identically to the original program,      including relaxed plans run through the materialized generation renaming)@."

(* ------------------------------------------------------------------ *)
(* Machine-readable benchmark summary (BENCH_pr2.json)                  *)
(* ------------------------------------------------------------------ *)

let bench_json_path = "BENCH_pr2.json"

let exp_bench_json () =
  header "bench_json" ("Machine-readable per-workload summary -> " ^ bench_json_path);
  let module J = Kf_obs.Json in
  let workloads =
    [
      ("motivating", Motivating.program ());
      ("cloverleaf", Kf_workloads.Cloverleaf.program ());
      ("tealeaf", Kf_workloads.Tealeaf.program ());
      ("scale-les-rk", Kf_workloads.Scale_les.rk_core ());
      ("homme", Kf_workloads.Homme.program ());
      ("suite-30", Suite.generate { Suite.default with Suite.kernels = 30; arrays = 60; seed = 42 });
    ]
  in
  let t =
    Table.create
      [
        ("workload", Table.Left); ("search (s)", Table.Right); ("evals", Table.Right);
        ("evals/s", Table.Right); ("cache hit", Table.Right); ("projected", Table.Right);
        ("measured", Table.Right);
      ]
  in
  let rows =
    List.map
      (fun (name, p) ->
        (* Hold on to the objective so its cache telemetry survives the
           search (Pipeline.run would hide it). *)
        let ctx = prepare p in
        let obj = objective ctx in
        let r = Hgga.solve ~params:search_params obj in
        let o = Pipeline.apply ctx r in
        let stats = r.Hgga.stats in
        let cs = Objective.cache_stats obj in
        let hit_rate = Objective.cache_hit_rate obj in
        let evals_per_s =
          if stats.Hgga.wall_time_s > 0. then
            float_of_int stats.Hgga.evaluations /. stats.Hgga.wall_time_s
          else 0.
        in
        let projected_speedup =
          if Float.is_finite r.Hgga.cost && r.Hgga.cost > 0. then
            ctx.Pipeline.original_runtime /. r.Hgga.cost
          else 0.
        in
        Table.add_row t
          [
            name;
            Table.cell_f stats.Hgga.wall_time_s;
            string_of_int stats.Hgga.evaluations;
            Table.cell_f ~decimals:0 evals_per_s;
            Table.cell_pct hit_rate;
            Table.cell_speedup projected_speedup;
            Table.cell_speedup o.Pipeline.speedup;
          ];
        ( o.Pipeline.speedup,
          J.Obj
            [
              ("name", J.Str name);
              ("kernels", J.Int (Program.num_kernels p));
              ("generations", J.Int stats.Hgga.generations);
              ("evaluations", J.Int stats.Hgga.evaluations);
              ("search_wall_s", J.Float stats.Hgga.wall_time_s);
              ("evaluations_per_s", J.Float evals_per_s);
              ("cache_hits", J.Int cs.Objective.hits);
              ("cache_misses", J.Int cs.Objective.misses);
              ("cache_hit_rate", J.Float hit_rate);
              ("stop_reason", J.Str (Hgga.stop_reason_name stats.Hgga.stop));
              ("best_cost_s", J.Float r.Hgga.cost);
              ("original_runtime_s", J.Float ctx.Pipeline.original_runtime);
              ("fused_runtime_s", J.Float o.Pipeline.fused_runtime);
              ("projected_speedup", J.Float projected_speedup);
              ("measured_speedup", J.Float o.Pipeline.speedup);
              ("fused_kernels", J.Int (Plan.fused_kernel_count r.Hgga.plan));
            ] ))
      workloads
  in
  Table.print t;
  let speedups = Array.of_list (List.map fst rows) in
  let geomean = Stats.geomean_opt speedups in
  let doc =
    J.Obj
      [
        ("schema", J.Str "kfuse-bench/1");
        ("params",
         J.Obj
           [
             ("population_size", J.Int search_params.Hgga.population_size);
             ("max_generations", J.Int search_params.Hgga.max_generations);
             ("stall_generations", J.Int search_params.Hgga.stall_generations);
             ("seed", J.Int search_params.Hgga.seed);
           ]);
        ("device", J.Str k20x.Device.name);
        ("workloads", J.Arr (List.map snd rows));
        ("geomean_measured_speedup",
         match geomean with Some g -> J.Float g | None -> J.Null);
      ]
  in
  let oc = open_out (bench_json_path ^ ".tmp") in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Sys.rename (bench_json_path ^ ".tmp") bench_json_path;
  (match geomean with
  | Some g -> Format.printf "geomean measured speedup: %.2fx@." g
  | None -> Format.printf "geomean measured speedup: n/a (degenerate measurement)@.");
  Format.printf "wrote %s@." bench_json_path

(* ------------------------------------------------------------------ *)
(* Parallel-scaling sweep (BENCH_pr8.json)                              *)
(* ------------------------------------------------------------------ *)

let bench_scaling_path = "BENCH_pr8.json"

let exp_bench_scaling () =
  header "bench_scaling"
    ("Parallel-scaling sweep (islands x domains) -> " ^ bench_scaling_path);
  let module J = Kf_obs.Json in
  let host_cores = Domain.recommended_domain_count () in
  let workloads =
    [
      ("motivating", Motivating.program ());
      ("cloverleaf", Kf_workloads.Cloverleaf.program ());
      ("tealeaf", Kf_workloads.Tealeaf.program ());
      ("scale-les-rk", Kf_workloads.Scale_les.rk_core ());
      ("homme", Kf_workloads.Homme.program ());
      ("suite-30", Suite.generate { Suite.default with Suite.kernels = 30; arrays = 60; seed = 42 });
    ]
  in
  (* Two orthogonal axes.  The island axis runs every workload at
     domains = 1: it isolates the overhead of the island machinery
     itself (pool dispatch, migration, merge barriers) with zero
     parallelism, so its wall speedups should sit near 1.0 on any host.
     The domain axis fixes islands = 4 and scales worker domains on two
     mid-size workloads: it measures real parallel throughput AND
     asserts the determinism contract (fixed islands => bit-identical
     plan, cost, history and evaluation count for every domain count). *)
  let island_counts = [ 1; 2; 4; 8 ] in
  let domain_counts = [ 1; 2; 4 ] in
  let domain_axis_islands = 4 in
  let domain_axis_workloads = [ "cloverleaf"; "suite-30" ] in
  let t =
    Table.create
      [
        ("workload", Table.Left); ("islands", Table.Right); ("domains", Table.Right);
        ("gens", Table.Right); ("wall (s)", Table.Right); ("evals", Table.Right);
        ("evals/s", Table.Right); ("wall speedup", Table.Right); ("valid", Table.Left);
        ("stop", Table.Left);
      ]
  in
  (* Each config runs [repeats] times; the search is deterministic so
     every repeat returns the same result and only the wall differs.
     Keep the best wall (min is the standard noise-robust estimator) —
     at the ~0.1 s scale of these configs a single sample is too noisy
     to gate on. *)
  let repeats = 3 in
  let run_one p ~islands ~domains ~budget ~params =
    let params = { params with Hgga.islands; domains } in
    let solve () =
      let ctx = prepare p in
      let obj = Pipeline.objective ~domains ctx in
      Hgga.solve ~params ?budget obj
    in
    let r = solve () in
    let best_wall = ref r.Hgga.stats.Hgga.wall_time_s in
    for _ = 2 to repeats do
      let r' = solve () in
      best_wall := min !best_wall r'.Hgga.stats.Hgga.wall_time_s
    done;
    { r with Hgga.stats = { r.Hgga.stats with Hgga.wall_time_s = !best_wall } }
  in
  let evals_per_s (stats : Hgga.stats) =
    if stats.Hgga.wall_time_s > 0. then
      float_of_int stats.Hgga.evaluations /. stats.Hgga.wall_time_s
    else 0.
  in
  let config_row name ~islands ~domains ~ref_wall (r : Hgga.result) =
    let stats = r.Hgga.stats in
    (* A config that ran fewer than two generations measured budget
       exhaustion or instant convergence, not search throughput: its
       wall is dominated by setup and the final refinement pass, so
       speedups computed from it are bogus (the PR 3 sweep reported a
       8.6x "speedup" on exactly such a row).  Keep the row for the
       record, flag it invalid, exclude it from gated aggregates. *)
    let valid = stats.Hgga.generations >= 2 in
    let wall_speedup =
      if stats.Hgga.wall_time_s > 0. then ref_wall /. stats.Hgga.wall_time_s else 0.
    in
    Table.add_row t
      [
        name;
        string_of_int islands;
        string_of_int domains;
        string_of_int stats.Hgga.generations;
        Table.cell_f ~decimals:3 stats.Hgga.wall_time_s;
        string_of_int stats.Hgga.evaluations;
        Table.cell_f ~decimals:0 (evals_per_s stats);
        Table.cell_speedup wall_speedup;
        (if valid then "yes" else "NO");
        Hgga.stop_reason_name stats.Hgga.stop;
      ];
    let json =
      J.Obj
        [
          ("islands", J.Int islands);
          ("domains", J.Int domains);
          ("generations", J.Int stats.Hgga.generations);
          ("evaluations", J.Int stats.Hgga.evaluations);
          ("wall_s", J.Float stats.Hgga.wall_time_s);
          ("evaluations_per_s", J.Float (evals_per_s stats));
          ("wall_speedup", J.Float wall_speedup);
          ("cost_s", J.Float r.Hgga.cost);
          ("valid", J.Bool valid);
          ("stop_reason", J.Str (Hgga.stop_reason_name stats.Hgga.stop));
        ]
    in
    (json, valid, wall_speedup)
  in
  let bit_identity_failures = ref [] in
  let island_speedups = ref [] in
  let domain_axis_rows = ref [] in
  let axis_throughput = Hashtbl.create 8 (* domains -> evals/s list *) in
  let rows =
    List.map
      (fun (name, p) ->
        (* Baseline: one island, one domain, the raw search. *)
        let base_r =
          run_one p ~islands:1 ~domains:1 ~budget:None ~params:search_params
        in
        let base_stats = base_r.Hgga.stats in
        let base_evals = base_stats.Hgga.evaluations in
        let base_wall = base_stats.Hgga.wall_time_s in
        (* Budget normalization (the PR 3 sweep's accounting bug): a
           baseline that converges after a handful of evaluations hands
           every other config an evaluation budget it exhausts inside
           generation 1, so their walls measure budget exhaustion, not
           search throughput.  A budget that cannot cover two full
           generations falls back to equal-generations normalization
           instead. *)
        let degenerate = base_evals < 2 * search_params.Hgga.population_size in
        let budget, cparams =
          if degenerate then
            ( None,
              {
                search_params with
                Hgga.max_generations = max 2 base_stats.Hgga.generations;
                stall_generations = max 2 base_stats.Hgga.generations;
              } )
          else
            ( Some { Hgga.unlimited with Hgga.max_evaluations = Some base_evals },
              search_params )
        in
        (* Island axis at domains = 1. *)
        let island_runs =
          List.map
            (fun islands ->
              let r =
                if islands = 1 then base_r
                else run_one p ~islands ~domains:1 ~budget ~params:cparams
              in
              (islands, r))
            island_counts
        in
        let configs =
          List.map
            (fun (islands, r) ->
              let json, valid, speedup =
                config_row name ~islands ~domains:1 ~ref_wall:base_wall r
              in
              if valid && islands > 1 then
                island_speedups := speedup :: !island_speedups;
              json)
            island_runs
        in
        (* Domain axis at islands = 4, same normalized budget: scale
           worker domains and assert bit-identical results. *)
        if List.mem name domain_axis_workloads then begin
          let anchor = List.assoc domain_axis_islands island_runs in
          let anchor_wall = anchor.Hgga.stats.Hgga.wall_time_s in
          let axis_configs =
            List.map
              (fun domains ->
                let r =
                  if domains = 1 then anchor
                  else
                    run_one p ~islands:domain_axis_islands ~domains ~budget
                      ~params:cparams
                in
                let identical =
                  Int64.bits_of_float r.Hgga.cost = Int64.bits_of_float anchor.Hgga.cost
                  && r.Hgga.groups = anchor.Hgga.groups
                  && r.Hgga.stats.Hgga.evaluations = anchor.Hgga.stats.Hgga.evaluations
                  && r.Hgga.stats.Hgga.improvement_history
                     = anchor.Hgga.stats.Hgga.improvement_history
                in
                if not identical then
                  bit_identity_failures := (name, domains) :: !bit_identity_failures;
                let json, _, _ =
                  config_row name ~islands:domain_axis_islands ~domains
                    ~ref_wall:anchor_wall r
                in
                let eps = evals_per_s r.Hgga.stats in
                Hashtbl.replace axis_throughput domains
                  (eps :: (Option.value (Hashtbl.find_opt axis_throughput domains) ~default:[]));
                (match json with
                | J.Obj fields -> J.Obj (fields @ [ ("bit_identical", J.Bool identical) ])
                | other -> other))
              domain_counts
          in
          domain_axis_rows :=
            J.Obj
              [
                ("name", J.Str name);
                ("islands", J.Int domain_axis_islands);
                ("configs", J.Arr axis_configs);
              ]
            :: !domain_axis_rows
        end;
        J.Obj
          [
            ("name", J.Str name);
            ("kernels", J.Int (Program.num_kernels p));
            ("baseline_evaluations", J.Int base_evals);
            ("budget_mode", J.Str (if degenerate then "equal-generations" else "evaluations"));
            ("configs", J.Arr configs);
          ])
      workloads
  in
  Table.print t;
  let bit_identical = !bit_identity_failures = [] in
  let min_island_speedup =
    match !island_speedups with
    | [] -> failwith "bench_scaling: no valid island-axis rows"
    | s :: rest -> List.fold_left min s rest
  in
  let throughput_by_domains =
    List.map
      (fun d ->
        let eps = Option.value (Hashtbl.find_opt axis_throughput d) ~default:[] in
        (d, Stats.geomean (Array.of_list eps)))
      domain_counts
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str "kfuse-bench-scaling/2");
        ("params",
         J.Obj
           [
             ("population_size", J.Int search_params.Hgga.population_size);
             ("max_generations", J.Int search_params.Hgga.max_generations);
             ("stall_generations", J.Int search_params.Hgga.stall_generations);
             ("migration_interval", J.Int search_params.Hgga.migration_interval);
             ("migration_size", J.Int search_params.Hgga.migration_size);
             ("seed", J.Int search_params.Hgga.seed);
           ]);
        ("device", J.Str k20x.Device.name);
        ("host_cores", J.Int host_cores);
        ("repeats", J.Int repeats);
        ("island_counts", J.Arr (List.map (fun k -> J.Int k) island_counts));
        ("domain_counts", J.Arr (List.map (fun k -> J.Int k) domain_counts));
        ("workloads", J.Arr rows);
        ("domain_axis", J.Arr (List.rev !domain_axis_rows));
        ("aggregates",
         J.Obj
           [
             ("min_wall_speedup_domains1", J.Float min_island_speedup);
             ("bit_identical_domains", J.Bool bit_identical);
             ("evals_per_s_by_domains",
              J.Arr
                (List.map
                   (fun (d, eps) -> J.Obj [ ("domains", J.Int d); ("evals_per_s", J.Float eps) ])
                   throughput_by_domains));
           ]);
      ]
  in
  let oc = open_out (bench_scaling_path ^ ".tmp") in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Sys.rename (bench_scaling_path ^ ".tmp") bench_scaling_path;
  Format.printf "wrote %s@." bench_scaling_path;
  Format.printf "min island-axis wall speedup (domains=1): %.2fx@." min_island_speedup;
  (* The determinism contract is asserted here, in the bench itself:
     a scheduling-dependent result is a correctness bug, not a slow
     run, and must fail loudly even outside the CI gate. *)
  if not bit_identical then begin
    List.iter
      (fun (name, domains) ->
        Format.printf "BIT-IDENTITY VIOLATION: %s islands=%d domains=%d differs from domains=1@."
          name domain_axis_islands domains)
      !bit_identity_failures;
    exit 1
  end;
  Format.printf "bit-identical across domain counts: yes@."

(* ------------------------------------------------------------------ *)
(* Incremental-evaluation perf benchmark (the CI perf-gate input)       *)
(* ------------------------------------------------------------------ *)

let bench_incremental_path = "BENCH_pr5.json"

let exp_bench_incremental () =
  header "bench_incremental"
    ("Incremental vs. full objective evaluation -> " ^ bench_incremental_path);
  let module J = Kf_obs.Json in
  (* gens=300 / pop=100 with stall disabled: long enough for the memo
     tables to amortize their warm-up, which is where the incremental
     path's advantage is representative of real searches. *)
  let params =
    { search_params with Hgga.max_generations = 300; stall_generations = 300;
      population_size = 100 }
  in
  let repeats = 3 in
  let workloads =
    [
      ("motivating", Motivating.program ());
      ("tealeaf", Kf_workloads.Tealeaf.program ());
      ("cloverleaf", Kf_workloads.Cloverleaf.program ());
    ]
  in
  let t =
    Table.create
      [
        ("workload", Table.Left); ("mode", Table.Left); ("wall (s)", Table.Right);
        ("evals", Table.Right); ("evals/s", Table.Right); ("ratio", Table.Right);
        ("measured", Table.Right);
      ]
  in
  (* A fresh objective per run: the caches are per-objective, and a warm
     cache would turn every later repeat into a no-op. *)
  let run_one ctx ~incremental =
    let obj = Pipeline.objective ~incremental ctx in
    Hgga.solve ~params obj
  in
  let float_bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  let history_equal h1 h2 =
    List.length h1 = List.length h2
    && List.for_all2 (fun (g1, c1) (g2, c2) -> g1 = g2 && float_bits_equal c1 c2) h1 h2
  in
  let rows =
    List.map
      (fun (name, p) ->
        let ctx = prepare p in
        (* Interleave the repeats so slow drift in machine load hits both
           modes alike; keep the best wall per mode (min is the standard
           noise-robust estimator for wall time). *)
        let walls_full = ref [] and walls_inc = ref [] in
        let last_full = ref None and last_inc = ref None in
        for _ = 1 to repeats do
          let rf = run_one ctx ~incremental:false in
          let ri = run_one ctx ~incremental:true in
          walls_full := rf.Hgga.stats.Hgga.wall_time_s :: !walls_full;
          walls_inc := ri.Hgga.stats.Hgga.wall_time_s :: !walls_inc;
          last_full := Some rf;
          last_inc := Some ri
        done;
        let rf = Option.get !last_full and ri = Option.get !last_inc in
        (* The whole point of the incremental path is that it is
           result-invisible: same best plan, cost, improvement history
           and evaluation count, bit for bit. *)
        let identical =
          Plan.equal rf.Hgga.plan ri.Hgga.plan
          && float_bits_equal rf.Hgga.cost ri.Hgga.cost
          && history_equal rf.Hgga.stats.Hgga.improvement_history
               ri.Hgga.stats.Hgga.improvement_history
          && rf.Hgga.stats.Hgga.evaluations = ri.Hgga.stats.Hgga.evaluations
        in
        if not identical then begin
          Format.eprintf
            "bench_incremental: %s: incremental run diverged from full run@." name;
          exit 1
        end;
        let evals = rf.Hgga.stats.Hgga.evaluations in
        let best walls = List.fold_left min infinity walls in
        let wall_full = best !walls_full and wall_inc = best !walls_inc in
        let eps wall = if wall > 0. then float_of_int evals /. wall else 0. in
        let ratio = if wall_inc > 0. then wall_full /. wall_inc else 0. in
        let o = Pipeline.apply ctx ri in
        let mode_row mode wall =
          Table.add_row t
            [
              name; mode;
              Table.cell_f ~decimals:3 wall;
              string_of_int evals;
              Table.cell_f ~decimals:0 (eps wall);
              (if mode = "incremental" then Table.cell_speedup ratio else "");
              Table.cell_speedup o.Pipeline.speedup;
            ]
        in
        mode_row "full" wall_full;
        mode_row "incremental" wall_inc;
        let mode_json wall walls =
          J.Obj
            [
              ("wall_s", J.Float wall);
              ("evaluations_per_s", J.Float (eps wall));
              ("wall_s_repeats", J.Arr (List.rev_map (fun w -> J.Float w) walls));
            ]
        in
        J.Obj
          [
            ("name", J.Str name);
            ("kernels", J.Int (Program.num_kernels p));
            ("evaluations", J.Int evals);
            ("generations", J.Int rf.Hgga.stats.Hgga.generations);
            ("cost_s", J.Float ri.Hgga.cost);
            ("measured_speedup", J.Float o.Pipeline.speedup);
            ("bit_identical", J.Bool identical);
            ("full", mode_json wall_full !walls_full);
            ("incremental", mode_json wall_inc !walls_inc);
            ("evals_per_s_ratio", J.Float ratio);
          ])
      workloads
  in
  Table.print t;
  let geomean =
    let speedups =
      List.filter_map
        (fun row -> Option.bind (J.member "measured_speedup" row) J.to_float_opt)
        rows
    in
    exp (List.fold_left (fun acc s -> acc +. log s) 0. speedups
         /. float_of_int (List.length speedups))
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str "kfuse-bench-incremental/1");
        ("geomean_measured_speedup", J.Float geomean);
        ("params",
         J.Obj
           [
             ("population_size", J.Int params.Hgga.population_size);
             ("max_generations", J.Int params.Hgga.max_generations);
             ("stall_generations", J.Int params.Hgga.stall_generations);
             ("seed", J.Int params.Hgga.seed);
           ]);
        ("device", J.Str k20x.Device.name);
        ("repeats", J.Int repeats);
        ("workloads", J.Arr rows);
      ]
  in
  let oc = open_out (bench_incremental_path ^ ".tmp") in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Sys.rename (bench_incremental_path ^ ".tmp") bench_incremental_path;
  Format.printf "wrote %s@." bench_incremental_path

(* ------------------------------------------------------------------ *)
(* Arena + device-portfolio benchmark (BENCH_pr9.json)                  *)
(* ------------------------------------------------------------------ *)

let bench_pareto_path = "BENCH_pr9.json"

let exp_bench_pareto () =
  header "bench_pareto"
    ("Allocation-free arena leaf + 5-device portfolio -> " ^ bench_pareto_path);
  let module J = Kf_obs.Json in
  let p = Kf_workloads.Cloverleaf.program () in
  let name = "cloverleaf" in
  let ctx = prepare p in
  let extra_devices = [ k40; maxwell; Device.p100; Device.v100 ] in
  let all_devices = k20x :: extra_devices in
  let ndev = List.length all_devices in
  let params =
    { search_params with Hgga.max_generations = 300; stall_generations = 300;
      population_size = 100 }
  in
  let float_bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  (* Correctness first: the arena search must reproduce the legacy search
     bit for bit, and adding a portfolio must not perturb the primary
     search.  Both are hard invariants, asserted here like the scaling
     bench asserts domain determinism — a violation is a bug, not a slow
     run. *)
  let rl = Hgga.solve ~params (Pipeline.objective ~arena:false ctx) in
  let ra = Hgga.solve ~params (Pipeline.objective ctx) in
  let identical =
    Plan.equal rl.Hgga.plan ra.Hgga.plan
    && float_bits_equal rl.Hgga.cost ra.Hgga.cost
    && rl.Hgga.stats.Hgga.improvement_history = ra.Hgga.stats.Hgga.improvement_history
    && rl.Hgga.stats.Hgga.evaluations = ra.Hgga.stats.Hgga.evaluations
  in
  if not identical then begin
    Format.eprintf "bench_pareto: arena search diverged from the legacy search@.";
    exit 1
  end;
  let extras =
    List.map
      (fun d ->
        let measured = Measure.program_results ~device:d p in
        Inputs.make ~device:d ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec
          ~measured_runtime:(Array.map (fun r -> r.Measure.runtime_s) measured))
      extra_devices
  in
  let obj_port = Pipeline.objective ~portfolio:extras ctx in
  let rp = Hgga.solve_portfolio ~params obj_port in
  let unaffected =
    Plan.equal rp.Hgga.primary.Hgga.plan ra.Hgga.plan
    && float_bits_equal rp.Hgga.primary.Hgga.cost ra.Hgga.cost
    && rp.Hgga.primary.Hgga.stats.Hgga.evaluations = ra.Hgga.stats.Hgga.evaluations
  in
  if not unaffected then begin
    Format.eprintf "bench_pareto: the portfolio perturbed the primary search@.";
    exit 1
  end;
  (* The throughput quantity: leaf evaluations per second over the
     search's own candidate corpus.  A guard records every cache-miss
     candidate of a real search; the timed passes then replay exactly
     that corpus against a fresh objective per pass (fresh = every probe
     is a miss, so a pass costs create + one leaf evaluation per
     candidate — the same shape as a production search, minus the GA
     machinery that is identical in both modes). *)
  let corpus = ref [] in
  let collect eval g =
    corpus := g :: !corpus;
    eval g
  in
  ignore (Hgga.solve ~params (Pipeline.objective ~guard:collect ctx));
  let corpus = List.sort_uniq compare !corpus in
  let ncorpus = List.length corpus in
  if ncorpus = 0 then failwith "bench_pareto: empty candidate corpus";
  let time_it run_pass =
    run_pass ();
    (* warm-up *)
    let t1 = Unix.gettimeofday () in
    run_pass ();
    let per = Unix.gettimeofday () -. t1 in
    let reps = min 50 (max 3 (int_of_float (0.5 /. Float.max 1e-6 per))) in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      run_pass ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let eval_corpus obj = List.iter (fun g -> ignore (Objective.group_cost obj g)) corpus in
  let wall_legacy = time_it (fun () -> eval_corpus (Pipeline.objective ~arena:false ctx)) in
  let wall_arena = time_it (fun () -> eval_corpus (Pipeline.objective ctx)) in
  let single_speedup = wall_legacy /. wall_arena in
  (* Portfolio: per-device rows for all five devices through the shared
     arena (structural analysis once per candidate) vs. the pre-PR
     alternative — the legacy leaf once per device over per-device
     inputs. *)
  let wall_port =
    time_it (fun () ->
        let obj = Pipeline.objective ~portfolio:extras ctx in
        List.iter (fun g -> ignore (Objective.group_row obj g)) corpus)
  in
  let per_device_inputs = ctx.Pipeline.inputs :: extras in
  let wall_legacy5 =
    time_it (fun () ->
        List.iter
          (fun i ->
            let obj = Objective.create ~arena:false i in
            List.iter (fun g -> ignore (Objective.group_cost obj g)) corpus)
          per_device_inputs)
  in
  let portfolio_speedup = wall_legacy5 /. wall_port in
  (* Allocation gauge, outside the timed passes (metrics wrap every
     evaluation in clock reads). *)
  Kf_obs.Metrics.set_enabled true;
  let alloc_of obj =
    eval_corpus obj;
    Objective.alloc_per_eval obj
  in
  let alloc_legacy = alloc_of (Pipeline.objective ~arena:false ctx) in
  let alloc_arena = alloc_of (Pipeline.objective ctx) in
  Kf_obs.Metrics.set_enabled false;
  let t =
    Table.create
      [
        ("configuration", Table.Left); ("wall/pass (ms)", Table.Right);
        ("evals/s", Table.Right); ("speedup", Table.Right); ("alloc w/eval", Table.Right);
      ]
  in
  let eps n wall = float_of_int n /. wall in
  Table.add_row t
    [ "legacy leaf"; Table.cell_f ~decimals:3 (wall_legacy *. 1e3);
      Table.cell_f ~decimals:0 (eps ncorpus wall_legacy); "";
      Table.cell_f ~decimals:0 alloc_legacy ];
  Table.add_row t
    [ "arena leaf"; Table.cell_f ~decimals:3 (wall_arena *. 1e3);
      Table.cell_f ~decimals:0 (eps ncorpus wall_arena);
      Table.cell_speedup single_speedup; Table.cell_f ~decimals:0 alloc_arena ];
  Table.add_row t
    [ Printf.sprintf "legacy x %d devices" ndev;
      Table.cell_f ~decimals:3 (wall_legacy5 *. 1e3);
      Table.cell_f ~decimals:0 (eps (ncorpus * ndev) wall_legacy5); ""; "" ];
  Table.add_row t
    [ Printf.sprintf "portfolio rows (%d devices)" ndev;
      Table.cell_f ~decimals:3 (wall_port *. 1e3);
      Table.cell_f ~decimals:0 (eps (ncorpus * ndev) wall_port);
      Table.cell_speedup portfolio_speedup; "" ];
  Table.print t;
  Format.printf
    "corpus: %d distinct candidates | search: %d evaluations | front: %d plans | rows: %d@."
    ncorpus ra.Hgga.stats.Hgga.evaluations (List.length rp.Hgga.front)
    (Objective.rows_evaluated obj_port);
  let doc =
    J.Obj
      [
        ("schema", J.Str "kfuse-bench-pareto/1");
        ("workload", J.Str name);
        ("kernels", J.Int (Program.num_kernels p));
        ("device", J.Str k20x.Device.name);
        ("devices", J.Arr (List.map (fun (d : Device.t) -> J.Str d.Device.name) all_devices));
        ("params",
         J.Obj
           [
             ("population_size", J.Int params.Hgga.population_size);
             ("max_generations", J.Int params.Hgga.max_generations);
             ("stall_generations", J.Int params.Hgga.stall_generations);
             ("seed", J.Int params.Hgga.seed);
           ]);
        ("corpus_size", J.Int ncorpus);
        ("search_evaluations", J.Int ra.Hgga.stats.Hgga.evaluations);
        ("bit_identical", J.Bool identical);
        ("portfolio_unaffected", J.Bool unaffected);
        ("front_size", J.Int (List.length rp.Hgga.front));
        ("rows_evaluated", J.Int (Objective.rows_evaluated obj_port));
        ("single",
         J.Obj
           [
             ("legacy",
              J.Obj
                [ ("wall_s", J.Float wall_legacy);
                  ("evals_per_s", J.Float (eps ncorpus wall_legacy)) ]);
             ("arena",
              J.Obj
                [ ("wall_s", J.Float wall_arena);
                  ("evals_per_s", J.Float (eps ncorpus wall_arena)) ]);
             ("speedup", J.Float single_speedup);
           ]);
        ("portfolio",
         J.Obj
           [
             ("legacy_per_device",
              J.Obj
                [ ("wall_s", J.Float wall_legacy5);
                  ("device_evals_per_s", J.Float (eps (ncorpus * ndev) wall_legacy5)) ]);
             ("arena_rows",
              J.Obj
                [ ("wall_s", J.Float wall_port);
                  ("device_evals_per_s", J.Float (eps (ncorpus * ndev) wall_port)) ]);
             ("speedup", J.Float portfolio_speedup);
           ]);
        ("alloc_per_eval",
         J.Obj [ ("legacy", J.Float alloc_legacy); ("arena", J.Float alloc_arena) ]);
      ]
  in
  let oc = open_out (bench_pareto_path ^ ".tmp") in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Sys.rename (bench_pareto_path ^ ".tmp") bench_pareto_path;
  Format.printf "wrote %s@." bench_pareto_path;
  Format.printf "single-device arena speedup: %.2fx | %d-device portfolio speedup: %.2fx@."
    single_speedup ndev portfolio_speedup

(* ------------------------------------------------------------------ *)
(* Horizontal composition benchmark (BENCH_pr10.json)                   *)
(* ------------------------------------------------------------------ *)

let bench_horizontal_path = "BENCH_pr10.json"

let exp_bench_horizontal () =
  header "bench_horizontal"
    ("Horizontal composition on the video workload -> " ^ bench_horizontal_path);
  let module J = Kf_obs.Json in
  let spec = Kf_workloads.Video.default in
  let p = Kf_workloads.Video.generate spec in
  let ctx = prepare p in
  let params =
    { search_params with Hgga.max_generations = 200; stall_generations = 40 }
  in
  let hparams = { params with Hgga.horizontal = true } in
  let float_bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  (* Correctness first: with horizontal off the search must still be the
     historical vertical-only search, bit for bit, run to run. *)
  let rv = Hgga.solve ~params (Pipeline.objective ctx) in
  let rv2 = Hgga.solve ~params (Pipeline.objective ctx) in
  let vertical_deterministic =
    Plan.equal rv.Hgga.plan rv2.Hgga.plan
    && float_bits_equal rv.Hgga.cost rv2.Hgga.cost
    && rv.Hgga.stats.Hgga.improvement_history = rv2.Hgga.stats.Hgga.improvement_history
    && rv.Hgga.stats.Hgga.evaluations = rv2.Hgga.stats.Hgga.evaluations
  in
  if not vertical_deterministic then begin
    Format.eprintf "bench_horizontal: vertical-only search is not deterministic@.";
    exit 1
  end;
  let rh = Hgga.solve ~params:hparams (Pipeline.objective ctx) in
  let packs = Plan.horizontal_pack_count rh.Hgga.plan in
  let planes = Plan.horizontal_plane_count rh.Hgga.plan in
  if packs = 0 then begin
    Format.eprintf "bench_horizontal: no horizontal group in the winning plan@.";
    exit 1
  end;
  if not (rh.Hgga.cost < rv.Hgga.cost) then begin
    Format.eprintf
      "bench_horizontal: horizontal best (%.6e) does not beat vertical-only (%.6e)@."
      rh.Hgga.cost rv.Hgga.cost;
    exit 1
  end;
  let cost_improvement = rv.Hgga.cost /. rh.Hgga.cost in
  (* The simulator prices plane packs with the same combined-pressure
     model, so the measured ordering must agree with the projected one. *)
  let ov = Pipeline.apply ctx rv in
  let oh = Pipeline.apply ctx rh in
  let measured_improvement = ov.Pipeline.fused_runtime /. oh.Pipeline.fused_runtime in
  let t =
    Table.create
      [
        ("plan", Table.Left); ("projected cost", Table.Right);
        ("measured (ms)", Table.Right); ("launches", Table.Right);
        ("horizontal", Table.Right);
      ]
  in
  let row name (r : Hgga.result) (o : Pipeline.outcome) =
    Table.add_row t
      [
        name; Printf.sprintf "%.4e" r.Hgga.cost;
        Table.cell_f ~decimals:3 (o.Pipeline.fused_runtime *. 1e3);
        string_of_int (Plan.num_units r.Hgga.plan);
        Printf.sprintf "%d packs / %d planes"
          (Plan.horizontal_pack_count r.Hgga.plan)
          (Plan.horizontal_plane_count r.Hgga.plan);
      ]
  in
  row "vertical-only" rv ov;
  row "horizontal" rh oh;
  Table.print t;
  Format.printf
    "projected improvement %.3fx | measured improvement %.3fx | %d packs over %d planes@."
    cost_improvement measured_improvement packs planes;
  let doc =
    J.Obj
      [
        ("schema", J.Str "kfuse-bench-horizontal/1");
        ("workload", J.Str spec.Kf_workloads.Video.name);
        ("frames", J.Int spec.Kf_workloads.Video.frames);
        ("stages", J.Int spec.Kf_workloads.Video.stages);
        ("kernels", J.Int (Program.num_kernels p));
        ("device", J.Str k20x.Device.name);
        ("params",
         J.Obj
           [
             ("population_size", J.Int params.Hgga.population_size);
             ("max_generations", J.Int params.Hgga.max_generations);
             ("stall_generations", J.Int params.Hgga.stall_generations);
             ("seed", J.Int params.Hgga.seed);
           ]);
        ("vertical_deterministic", J.Bool vertical_deterministic);
        ("vertical_cost", J.Float rv.Hgga.cost);
        ("horizontal_cost", J.Float rh.Hgga.cost);
        ("cost_improvement", J.Float cost_improvement);
        ("measured_improvement", J.Float measured_improvement);
        ("horizontal_packs", J.Int packs);
        ("horizontal_planes", J.Int planes);
        ("launches_vertical", J.Int (Plan.num_units rv.Hgga.plan));
        ("launches_horizontal", J.Int (Plan.num_units rh.Hgga.plan));
      ]
  in
  let oc = open_out (bench_horizontal_path ^ ".tmp") in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Sys.rename (bench_horizontal_path ^ ".tmp") bench_horizontal_path;
  Format.printf "wrote %s@." bench_horizontal_path

(* ------------------------------------------------------------------ *)
(* registry                                                             *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", exp_table1);
    ("table4", exp_table4);
    ("table5", exp_table5);
    ("fig5a", exp_fig5a);
    ("fig5b", exp_fig5b);
    ("fig6", exp_fig6);
    ("table6", exp_table6);
    ("fig7", exp_fig7);
    ("fig8", exp_fig8);
    ("fig9", exp_fig9);
    ("table7", exp_table7);
    ("motivating", exp_motivating);
    ("smem_study", exp_smem);
    ("fusion_efficiency", exp_fe);
    ("evalcost", exp_evalcost);
    ("solvers", exp_solvers);
    ("objective_ablation", exp_objective_ablation);
    ("readonly_cache", exp_readonly_cache);
    ("rk3_unroll", exp_unroll);
    ("block_tuning", exp_block_tuning);
    ("sync_points", exp_sync_points);
    ("verify", exp_verify);
    ("bench_json", exp_bench_json);
    ("bench_scaling", exp_bench_scaling);
    ("bench_incremental", exp_bench_incremental);
    ("bench_pareto", exp_bench_pareto);
    ("bench_horizontal", exp_bench_horizontal);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] -> List.iter (fun (id, _) -> print_endline id) experiments
  | [] ->
      let t0 = Unix.gettimeofday () in
      List.iter
        (fun (_, f) ->
          let t = Unix.gettimeofday () in
          f ();
          Format.printf "[%.1f s]@." (Unix.gettimeofday () -. t))
        experiments;
      Format.printf "@.total bench time: %.1f s@." (Unix.gettimeofday () -. t0)
  | ids ->
      List.iter
        (fun id ->
          match List.assoc_opt id experiments with
          | Some f -> f ()
          | None ->
              Format.eprintf "unknown experiment %S; use --list@." id;
              exit 1)
        ids
