(* Streaming bench (PR 7 acceptance driver).

   Replays a kernel-arrival trace — arrivals, edits and removals over a
   generated suite program — through the streaming warm-repair path and,
   independently, through a from-scratch search per program version,
   then writes BENCH_pr7.json with amortized ms/decision for both and
   the per-decision plan-quality retention.  The stream runs twice, with
   1 and 4 worker domains, and every decision must be bit-identical
   across the two (the determinism contract lifted to traces).

     dune exec bench/bench_stream.exe -- [out.json] [decisions]

   Exits non-zero when an acceptance invariant fails, so CI can gate on
   it:
   - decisions bit-identical for domains 1 vs 4,
   - every decision's plan cost within 2% of the full re-search,
   - steady-state (post-cold-start) amortized wall per decision at
     least 5x faster than full re-search. *)

module Json = Kf_obs.Json
module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Hgga = Kf_search.Hgga
module Stream = Kf_search.Stream
module Suite = Kf_workloads.Suite
module Pipeline = Kfuse.Pipeline

let out_path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_pr7.json"

let n_decisions =
  if Array.length Sys.argv > 2 then max 2 (int_of_string Sys.argv.(2)) else 12

let device = Kf_gpu.Device.k20x
let now () = Unix.gettimeofday ()
let bits = Int64.bits_of_float

let failures : string list ref = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt
let require name cond = if not cond then fail "%s" name

(* --- search parameters --- *)

(* The full re-search runs exactly what the pipeline's one-shot search
   runs: the paper-default parameters.  The repair search banks on its
   seeds starting near the optimum: a small population and a tight
   stall. *)
let full_params = Hgga.default_params

let repair_params =
  {
    full_params with
    Hgga.population_size = 10;
    max_generations = 30;
    stall_generations = 5;
  }

(* --- the edit trace --- *)

type op = Add of int | Remove of int | Edit of int

(* A fixed 12-version trace over a 16-kernel generated program: start
   with 10 resident kernels, then arrivals, edits (in place) and
   removals, including a departed kernel re-arriving. *)
let ops =
  [
    Add 10; Add 11; Edit 3; Add 12; Remove 5; Edit 8;
    Add 5; Edit 1; Add 13; Remove 11; Edit 6;
  ]

let bump k =
  { k with Kernel.extra_flops_per_site = k.Kernel.extra_flops_per_site +. 9. }

let versions () =
  let base = ref (Suite.generate { Suite.default with Suite.kernels = 16; arrays = 32; seed = 7 }) in
  let keep = ref (List.init 10 Fun.id) in
  let snap () = Program.restrict !base !keep in
  (* [::] evaluates right-to-left, so snapshots must be forced with
     explicit lets or every version would capture the final state *)
  let rec take n = function
    | op :: rest when n > 0 ->
        (match op with
        | Add k -> keep := List.sort compare (k :: !keep)
        | Remove k -> keep := List.filter (fun k' -> k' <> k) !keep
        | Edit k -> base := Program.edit_kernel !base k bump);
        let v = snap () in
        v :: take (n - 1) rest
    | _ -> []
  in
  let v0 = snap () in
  v0 :: take (n_decisions - 1) ops

(* --- the two systems --- *)

let run_stream ~domains versions =
  let params = { full_params with Hgga.domains } in
  let config =
    { Stream.default_config with Stream.params; repair = { repair_params with Hgga.domains } }
  in
  match versions with
  | [] -> []
  | v0 :: rest ->
      let t = Pipeline.stream ~config ~device v0 in
      List.iter (fun p -> ignore (Stream.step t p)) rest;
      Stream.decisions t

let run_full versions =
  List.mapi
    (fun i p ->
      let t0 = now () in
      let obj = Pipeline.objective (Pipeline.prepare ~device p) in
      let params =
        if i = 0 then full_params
        else { full_params with Hgga.seed = full_params.Hgga.seed + i }
      in
      let r = Hgga.solve ~params obj in
      (r.Hgga.cost, now () -. t0))
    versions

(* --- drive --- *)

let () =
  let vs = versions () in
  let n = List.length vs in
  let ds1 = run_stream ~domains:1 vs in
  let ds4 = run_stream ~domains:4 vs in
  let full = run_full vs in
  require "decision count matches trace" (List.length ds1 = n && List.length ds4 = n);

  let bit_identical =
    List.for_all2
      (fun (a : Stream.decision) (b : Stream.decision) ->
        a.Stream.d_groups = b.Stream.d_groups && bits a.Stream.d_cost = bits b.Stream.d_cost
        && a.Stream.d_evaluations = b.Stream.d_evaluations)
      ds1 ds4
  in
  require "decisions bit-identical for domains 1 vs 4" bit_identical;

  let per_decision =
    List.map2
      (fun (d : Stream.decision) (full_cost, full_wall) ->
        let ratio = d.Stream.d_cost /. full_cost in
        (d, full_cost, full_wall, ratio))
      ds1 full
  in
  let max_cost_ratio =
    List.fold_left (fun acc (_, _, _, r) -> Float.max acc r) 0. per_decision
  in
  require "plan cost within 2% of full re-search at every decision"
    (max_cost_ratio <= 1.02);

  (* Steady-state amortization: version 0 is the cold start — a full
     search in both systems — so the per-decision comparison is over the
     streamed versions 1..n-1. *)
  let tail l = List.tl l in
  let sum f l = List.fold_left (fun acc x -> acc +. f x) 0. l in
  let steady = float_of_int (n - 1) in
  let stream_ms =
    1e3 *. sum (fun (d : Stream.decision) -> d.Stream.d_wall_s) (tail ds1) /. steady
  in
  let full_ms = 1e3 *. sum (fun (_, w) -> w) (tail full) /. steady in
  let speedup = full_ms /. stream_ms in
  require "amortized ms/decision at least 5x faster than full re-search" (speedup >= 5.);

  let cold_ms = 1e3 *. (List.hd ds1).Stream.d_wall_s in
  let reused_total =
    List.fold_left (fun acc (d : Stream.decision) -> acc + d.Stream.d_reused_groups) 0 (tail ds1)
  in
  let num f = if Float.is_finite f then Json.Float f else Json.Null in
  let report =
    Json.Obj
      [
        ("schema", Json.Str "kfuse-bench-stream/1");
        ("decisions", Json.Int n);
        ("domains", Json.Arr [ Json.Int 1; Json.Int 4 ]);
        ("bit_identical_domains", Json.Bool bit_identical);
        ("cold_start_ms", num cold_ms);
        ("amortized_stream_ms", num stream_ms);
        ("amortized_full_ms", num full_ms);
        ("speedup_ratio", num speedup);
        ("max_cost_ratio", num max_cost_ratio);
        ("reused_groups_total", Json.Int reused_total);
        ( "per_decision",
          Json.Arr
            (List.map
               (fun ((d : Stream.decision), full_cost, full_wall, ratio) ->
                 Json.Obj
                   [
                     ("version", Json.Int d.Stream.d_version);
                     ("rung", Json.Str (Stream.rung_name d.Stream.d_rung));
                     ("changed", Json.Int d.Stream.d_changed);
                     ("reused_groups", Json.Int d.Stream.d_reused_groups);
                     ("stream_ms", num (1e3 *. d.Stream.d_wall_s));
                     ("full_ms", num (1e3 *. full_wall));
                     ("stream_cost", num d.Stream.d_cost);
                     ("full_cost", num full_cost);
                     ("cost_ratio", num ratio);
                     ("evaluations", Json.Int d.Stream.d_evaluations);
                   ])
               per_decision) );
        ("failures", Json.Arr (List.rev_map (fun s -> Json.Str s) !failures));
      ]
  in
  let tmp = out_path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string report);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp out_path;
  if !failures = [] then
    Printf.printf "bench_stream: OK (%s)  %.2fx speedup, worst cost ratio %.4f\n" out_path
      speedup max_cost_ratio
  else begin
    List.iter (fun s -> Printf.eprintf "bench_stream: FAIL %s\n" s) (List.rev !failures);
    exit 1
  end
