(* Serve-daemon chaos bench (PR 6 acceptance driver).

   Drives a live in-process daemon through the hardening scenario —
   concurrent mixed clients (including a malformed line and a
   fault-injected request), an overload burst against a tiny queue, a
   SIGTERM drain mid-run, and a warm restart from the persisted cache —
   then writes BENCH_pr6.json with requests/s, latency percentiles and
   hit rates.  Exits non-zero when any invariant fails, so CI can gate
   on it. *)

module Json = Kf_obs.Json
module Server = Kf_serve.Server
module Client = Kf_serve.Client
module Stats = Kf_util.Stats

let failures : string list ref = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt
let require name cond = if not cond then fail "%s" name

let out_path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_pr6.json"

(* --- event plumbing --- *)

let str_field name j =
  match Option.bind (Json.member name j) Json.to_string_opt with Some s -> s | None -> ""

let bool_field name j =
  match Json.member name j with Some (Json.Bool b) -> b | _ -> false

let float_field name j =
  match Option.bind (Json.member name j) Json.to_float_opt with Some f -> f | None -> nan

let cache_stat name j =
  match Json.member "cache" j with Some c -> float_field name c | None -> nan

let terminal client ~id =
  match Client.wait_terminal client ~id with
  | Some (_, term) -> Some term
  | None -> None

let quick_options ~seed =
  [ ("generations", Json.Int 40); ("population", Json.Int 20); ("seed", Json.Int seed) ]

(* --- shared latency ledger --- *)

let lat_lock = Mutex.create ()
let latencies_ms : float list ref = ref []
let completed = ref 0

let timed_request client ~id req =
  let t0 = Unix.gettimeofday () in
  Client.send client req;
  match terminal client ~id with
  | None ->
      fail "connection closed before terminal event for %s" id;
      None
  | Some term ->
      let dt_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      Mutex.lock lat_lock;
      latencies_ms := dt_ms :: !latencies_ms;
      if str_field "event" term = "result" then incr completed;
      Mutex.unlock lat_lock;
      Some term

let fresh_dir () =
  let d = Filename.temp_file "kfuse_bench_serve" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let () =
  let dir = fresh_dir () in
  let socket_path = Filename.concat dir "serve.sock" in
  let cache_path = Filename.concat dir "cache.json" in
  let config =
    {
      (Server.default ~socket_path) with
      Server.workers = 2;
      max_queue = 32;
      cache_path = Some cache_path;
      progress_every = 1;
    }
  in
  let srv = Server.start config in
  Server.install_signal_handlers srv;

  (* Phase 0: cold probe — the designated repeat request whose cache
     stats give the cold/warm hit rates. *)
  let probe path id =
    let c = Client.connect_retry path in
    let term =
      timed_request c ~id (Client.request ~id ~workload:"motivating" ~options:(quick_options ~seed:5) ())
    in
    Client.close c;
    term
  in
  let cold = probe socket_path "probe-cold" in
  (match cold with
  | Some t ->
      require "cold probe returns a result" (str_field "event" t = "result");
      require "cold probe is cold" (not (bool_field "warm" t))
  | None -> fail "cold probe got no terminal event");
  let cold_hit_rate = match cold with Some t -> cache_stat "hit_rate" t | None -> nan in

  (* Phase 1: concurrent mixed load — 6 clients at once. *)
  let workloads = [| "motivating"; "tealeaf"; "cloverleaf" |] in
  let normal_client i () =
    let c = Client.connect_retry socket_path in
    for j = 0 to 2 do
      let id = Printf.sprintf "c%d-r%d" i j in
      let workload = workloads.((i + j) mod Array.length workloads) in
      match
        timed_request c ~id
          (Client.request ~id ~workload ~options:(quick_options ~seed:((100 * i) + j)) ())
      with
      | Some t -> require (id ^ " is a result") (str_field "event" t = "result")
      | None -> ()
    done;
    Client.close c
  in
  let malformed_client () =
    let c = Client.connect_retry socket_path in
    Client.send_line c "this is not json";
    (match Client.next_event c with
    | Some e ->
        require "malformed line answered with a structured error"
          (str_field "event" e = "error" && str_field "code" e = "malformed")
    | None -> fail "no error event for the malformed line");
    (match
       timed_request c ~id:"after-garbage"
         (Client.request ~id:"after-garbage" ~workload:"motivating"
            ~options:(quick_options ~seed:42) ())
     with
    | Some t -> require "connection survives garbage" (str_field "event" t = "result")
    | None -> ());
    Client.close c
  in
  let chaos_client () =
    let c = Client.connect_retry socket_path in
    (match
       timed_request c ~id:"chaos"
         (Client.request ~id:"chaos" ~workload:"motivating"
            ~options:
              (("inject_rate", Json.Float 0.25)
              :: ("inject_seed", Json.Int 7)
              :: quick_options ~seed:13)
            ())
     with
    | Some t ->
        require "fault-injected request still structured" (str_field "event" t = "result")
    | None -> ());
    Client.close c
  in
  let completed_before = !completed in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.map
      (fun f -> Thread.create f ())
      [
        normal_client 0; normal_client 1; normal_client 2; normal_client 3;
        malformed_client; chaos_client;
      ]
  in
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let load_completed = !completed - completed_before in

  (* Phase 2: SIGTERM drain mid-run — the in-flight search must still
     deliver its best-so-far result, then the daemon exits cleanly. *)
  let c = Client.connect_retry socket_path in
  Client.send c
    (Client.request ~id:"inflight" ~workload:"suite:kernels=24,seed=5"
       ~options:
         [ ("generations", Json.Int 100000); ("progress", Json.Bool true);
           ("seed", Json.Int 3) ]
       ());
  let rec await_progress () =
    match Client.next_event c with
    | Some e when Client.event_kind e = Some "progress" -> ()
    | Some _ -> await_progress ()
    | None -> fail "eof before the in-flight request made progress"
  in
  await_progress ();
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  let drain_delivered =
    match terminal c ~id:"inflight" with
    | Some t -> str_field "event" t = "result"
    | None -> false
  in
  require "SIGTERM drain delivers the in-flight result" drain_delivered;
  Server.wait srv;
  Client.close c;
  require "socket removed after drain" (not (Sys.file_exists socket_path));
  require "cache persisted on shutdown" (Sys.file_exists cache_path);

  (* Phase 3: overload burst against a tiny queue. *)
  let o_socket = Filename.concat dir "overload.sock" in
  let o_srv =
    Server.start
      { (Server.default ~socket_path:o_socket) with Server.workers = 1; max_queue = 1 }
  in
  let oc = Client.connect_retry o_socket in
  let slow i =
    Client.send oc
      (Client.request ~id:(Printf.sprintf "s%d" i) ~workload:"suite:kernels=24,seed=5"
         ~options:[ ("generations", Json.Int 100000) ]
         ())
  in
  slow 1;
  let rec await_started () =
    match Client.next_event oc with
    | Some e when Client.event_kind e = Some "started" -> ()
    | Some _ -> await_started ()
    | None -> fail "eof before the slow request started"
  in
  await_started ();
  let overloads = ref 0 in
  for i = 2 to 5 do
    slow i;
    let rec await_verdict () =
      match Client.next_event oc with
      | Some e when Client.event_kind e = Some "admitted" -> ()
      | Some e when Client.event_kind e = Some "error" && str_field "code" e = "overload" ->
          incr overloads
      | Some _ -> await_verdict ()
      | None -> fail "eof during the overload burst"
    in
    await_verdict ()
  done;
  require "burst past the queue bound is rejected" (!overloads >= 3);
  Server.stop o_srv;
  Client.close oc;

  (* Phase 4: warm restart over the persisted cache. *)
  let w_srv = Server.start config in
  require "warm daemon restored the cache" (Server.cache_programs w_srv > 0);
  let warm = probe socket_path "probe-warm" in
  (match warm with
  | Some t ->
      require "warm probe returns a result" (str_field "event" t = "result");
      require "warm probe is warm" (bool_field "warm" t);
      require "warm probe hits the cache" (cache_stat "hits" t > 0.)
  | None -> fail "warm probe got no terminal event");
  let warm_hit_rate = match warm with Some t -> cache_stat "hit_rate" t | None -> nan in
  require "warm hit rate nonzero"
    (match warm_hit_rate with r when r > 0. -> true | _ -> false);
  Server.stop w_srv;

  (* --- report --- *)
  let lat = Array.of_list !latencies_ms in
  Array.sort compare lat;
  let pct p = Option.value ~default:nan (Stats.percentile_opt lat p) in
  let num f = if Float.is_finite f then Json.Float f else Json.Null in
  let report =
    Json.Obj
      [
        ("schema", Json.Str "kfuse-bench-serve/1");
        ("clients", Json.Int 6);
        ("completed_requests", Json.Int !completed);
        ("elapsed_s", num elapsed_s);
        ("load_requests", Json.Int load_completed);
        ( "requests_per_s",
          num (if elapsed_s > 0. then float_of_int load_completed /. elapsed_s else nan) );
        ( "latency_ms",
          Json.Obj
            [
              ("count", Json.Int (Array.length lat));
              ("p50", num (pct 50.));
              ("p99", num (pct 99.));
              ("max", num (if Array.length lat = 0 then nan else lat.(Array.length lat - 1)));
            ] );
        ("overload_rejections", Json.Int !overloads);
        ("drain_inflight_delivered", Json.Bool drain_delivered);
        ("cold_hit_rate", num cold_hit_rate);
        ("warm_hit_rate", num warm_hit_rate);
        ("failures", Json.Arr (List.rev_map (fun s -> Json.Str s) !failures));
      ]
  in
  let tmp = out_path ^ ".tmp" in
  let outc = open_out tmp in
  output_string outc (Json.to_string report);
  output_char outc '\n';
  close_out outc;
  Sys.rename tmp out_path;
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  if !failures = [] then Printf.printf "bench_serve: OK (%s)\n" out_path
  else begin
    List.iter (fun s -> Printf.eprintf "bench_serve: FAIL %s\n" s) (List.rev !failures);
    exit 1
  end
