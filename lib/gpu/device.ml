type arch = Kepler | Maxwell | Pascal | Volta
type precision = FP32 | FP64

let arch_name = function
  | Kepler -> "Kepler"
  | Maxwell -> "Maxwell"
  | Pascal -> "Pascal"
  | Volta -> "Volta"

type t = {
  name : string;
  arch : arch;
  smx_count : int;
  registers_per_smx : int;
  smem_per_smx : int;
  max_registers_per_thread : int;
  max_threads_per_smx : int;
  max_blocks_per_smx : int;
  warp_size : int;
  schedulers_per_smx : int;
  dispatch_per_scheduler : int;
  clock_ghz : float;
  peak_gflops : float;
  native_precision : precision;
  gmem_bandwidth_gbs : float;
  gmem_latency_cycles : int;
  smem_latency_cycles : int;
  smem_banks : int;
  smem_bank_width : int;
  reg_reuse_factor : float;
  readonly_cache_per_smx : int;
  use_readonly_cache : bool;
}

(* Table IV of the paper, completed with microarchitectural timing constants
   from published Kepler/Maxwell microbenchmarks (Mei & Chu, and the CUDA
   programming guides of the era).  "64KB" of register resource in the paper
   is the 65536-entry 32-bit register file. *)

let k20x =
  {
    name = "K20X";
    arch = Kepler;
    smx_count = 14;
    registers_per_smx = 65536;
    smem_per_smx = 48 * 1024;
    max_registers_per_thread = 255;
    max_threads_per_smx = 2048;
    max_blocks_per_smx = 16;
    warp_size = 32;
    schedulers_per_smx = 4;
    dispatch_per_scheduler = 2;
    clock_ghz = 0.732;
    peak_gflops = 1310.;
    native_precision = FP64;
    gmem_bandwidth_gbs = 202.;
    gmem_latency_cycles = 440;
    smem_latency_cycles = 30;
    smem_banks = 32;
    smem_bank_width = 8;
    reg_reuse_factor = 0.85;
    readonly_cache_per_smx = 48 * 1024;
    use_readonly_cache = false;
  }

let k40 =
  {
    k20x with
    name = "K40";
    smx_count = 15;
    clock_ghz = 0.745;
    peak_gflops = 1430.;
    gmem_bandwidth_gbs = 214.;
  }

let gtx750ti =
  {
    name = "GTX750Ti";
    arch = Maxwell;
    smx_count = 5;
    registers_per_smx = 65536;
    smem_per_smx = 64 * 1024;
    max_registers_per_thread = 255;
    max_threads_per_smx = 2048;
    max_blocks_per_smx = 32;
    warp_size = 32;
    schedulers_per_smx = 4;
    dispatch_per_scheduler = 2;
    clock_ghz = 1.085;
    peak_gflops = 1380.;
    native_precision = FP32;
    gmem_bandwidth_gbs = 69.;
    gmem_latency_cycles = 380;
    smem_latency_cycles = 24;
    smem_banks = 32;
    smem_bank_width = 4;
    reg_reuse_factor = 0.80;
    readonly_cache_per_smx = 24 * 1024;
    use_readonly_cache = false;
  }

let all = [ k20x; k40; gtx750ti ]

(* Post-paper descriptors for the multi-device portfolio sweep.  Numbers
   are public: the P100/V100 datasheets and whitepapers (NVIDIA Tesla
   P100 whitepaper WP-08019; Tesla V100 whitepaper WP-08608), with the
   latency/bandwidth microarchitecture constants from "Dissecting the
   NVIDIA Volta GPU Architecture via Microbenchmarking" (Jia et al.,
   arXiv:1804.06826), which covers P100 as its Pascal comparison point.
   Sustained bandwidth is the measured STREAM-like figure (~75-85% of
   the datasheet peak), matching how Table IV reports the Kepler
   parts. *)

let p100 =
  {
    name = "P100";
    arch = Pascal;
    (* GP100: 56 SMs, 64KB SMEM/SM usable, 32-bit regfile 65536/SM. *)
    smx_count = 56;
    registers_per_smx = 65536;
    smem_per_smx = 64 * 1024;
    max_registers_per_thread = 255;
    max_threads_per_smx = 2048;
    max_blocks_per_smx = 32;
    warp_size = 32;
    (* GP100 SM: 2 processing blocks, each 1 scheduler x 2 dispatch. *)
    schedulers_per_smx = 2;
    dispatch_per_scheduler = 2;
    clock_ghz = 1.328;
    (* FP64 peak at base clock: 56 SM x 32 DP lanes x 2 x 1.328 GHz. *)
    peak_gflops = 4760.;
    native_precision = FP64;
    (* HBM2: 732 GB/s datasheet, ~550 GB/s sustained STREAM. *)
    gmem_bandwidth_gbs = 550.;
    gmem_latency_cycles = 230;
    smem_latency_cycles = 24;
    smem_banks = 32;
    smem_bank_width = 4;
    reg_reuse_factor = 0.80;
    readonly_cache_per_smx = 24 * 1024;
    use_readonly_cache = false;
  }

let v100 =
  {
    name = "V100";
    arch = Volta;
    (* GV100: 80 SMs, up to 96KB SMEM carve-out of the 128KB L1. *)
    smx_count = 80;
    registers_per_smx = 65536;
    smem_per_smx = 96 * 1024;
    max_registers_per_thread = 255;
    max_threads_per_smx = 2048;
    max_blocks_per_smx = 32;
    warp_size = 32;
    (* GV100 SM: 4 processing blocks, each 1 scheduler x 1 dispatch. *)
    schedulers_per_smx = 4;
    dispatch_per_scheduler = 1;
    clock_ghz = 1.53;
    (* FP64 peak at boost: 80 SM x 32 DP lanes x 2 x 1.53 GHz. *)
    peak_gflops = 7800.;
    native_precision = FP64;
    (* HBM2: 900 GB/s datasheet, ~790 GB/s sustained STREAM. *)
    gmem_bandwidth_gbs = 790.;
    (* Jia et al. measure ~375 cycles to HBM2, ~19 cycles to SMEM. *)
    gmem_latency_cycles = 375;
    smem_latency_cycles = 19;
    smem_banks = 32;
    smem_bank_width = 4;
    reg_reuse_factor = 0.78;
    readonly_cache_per_smx = 128 * 1024;
    use_readonly_cache = false;
  }

(* [all] stays the paper trio (committed sweeps and baselines pin it);
   the portfolio tooling spans [extended]. *)
let extended = all @ [ p100; v100 ]

let of_name name =
  let norm s = String.lowercase_ascii s in
  List.find_opt (fun d -> norm d.name = norm name) extended

let with_smem dev bytes =
  if bytes <= 0 then invalid_arg "Device.with_smem: non-positive capacity";
  { dev with smem_per_smx = bytes; name = Printf.sprintf "%s+%dKB" dev.name (bytes / 1024) }

let with_readonly_cache dev flag =
  if flag = dev.use_readonly_cache then dev
  else
    {
      dev with
      use_readonly_cache = flag;
      name = (if flag then dev.name ^ "+ROC" else dev.name);
    }

let elem_size dev = match dev.native_precision with FP64 -> 8 | FP32 -> 4

let flops_per_cycle_smx dev = dev.peak_gflops /. (dev.clock_ghz *. float_of_int dev.smx_count)

let bytes_per_cycle dev = dev.gmem_bandwidth_gbs /. dev.clock_ghz

let pp ppf d =
  Format.fprintf ppf "%s (%s, %d SMX, %dKB SMEM/SMX, %.0f GB/s, %.2f TFLOPS %s)" d.name
    (arch_name d.arch) d.smx_count (d.smem_per_smx / 1024) d.gmem_bandwidth_gbs
    (d.peak_gflops /. 1000.)
    (match d.native_precision with FP64 -> "DP" | FP32 -> "SP")

let equal a b = a = b
