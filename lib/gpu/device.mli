(** GPU device descriptions.

    This is paper Table IV plus the timing parameters that the simulator
    ([Kf_sim]) needs.  The static capacities ([registers_per_smx],
    [smem_per_smx], [max_registers_per_thread]) feed the optimization
    constraints (paper Eqns. 1.6 and 1.7); the projection model (paper
    Eqns. 2-10) additionally uses [gmem_bandwidth] and [peak_gflops]; the
    simulator uses everything. *)

type arch = Kepler | Maxwell | Pascal | Volta
(** Microarchitecture generation.  Maxwell differs in the paper-relevant
    ways: larger shared memory (L1 merged into texture path), twice the
    active-block limit, register spills going to L2, and slightly better
    register reuse in generated code.  Pascal and Volta descriptors
    (post-paper) exist for the multi-device portfolio sweep. *)

val arch_name : arch -> string

type precision = FP32 | FP64

type t = {
  name : string;
  arch : arch;
  smx_count : int;  (** number of SMX/SMM multiprocessors *)
  registers_per_smx : int;  (** 32-bit registers per SMX (Table IV "64KB" = 65536) *)
  smem_per_smx : int;  (** shared-memory bytes usable per SMX *)
  max_registers_per_thread : int;  (** ISA limit, 255 on both generations *)
  max_threads_per_smx : int;
  max_blocks_per_smx : int;
  warp_size : int;
  schedulers_per_smx : int;  (** warp schedulers *)
  dispatch_per_scheduler : int;  (** dispatch units per scheduler *)
  clock_ghz : float;  (** SM clock *)
  peak_gflops : float;  (** theoretical peak at [native_precision] *)
  native_precision : precision;
      (** the precision the paper reports for this device: FP64 on Kepler
          HPC parts, FP32 on the GTX 750 Ti *)
  gmem_bandwidth_gbs : float;  (** STREAM-measured GMEM bandwidth, GB/s *)
  gmem_latency_cycles : int;  (** average DRAM round-trip latency *)
  smem_latency_cycles : int;  (** shared-memory access latency *)
  smem_banks : int;
  smem_bank_width : int;  (** bytes of access granularity per bank *)
  reg_reuse_factor : float;
      (** RegFac of paper Eq. 4: fraction of the stencil neighborhood that
          must stay resident in registers (lower = better compiler reuse) *)
  readonly_cache_per_smx : int;
      (** bytes of the Kepler+ read-only data cache (__ldg/texture path) *)
  use_readonly_cache : bool;
      (** when set, fusion stages program-wide read-only arrays through the
          read-only cache instead of SMEM, relaxing the capacity limit
          (paper §II-C); off by default, matching the paper's evaluation *)
}

val k20x : t
(** Nvidia Tesla K20X (Kepler GK110), Table IV column 1. *)

val k40 : t
(** Nvidia Tesla K40 (Kepler GK110B), Table IV column 2. *)

val gtx750ti : t
(** Nvidia GTX 750 Ti (Maxwell GM107), Table IV column 3; single
    precision. *)

val all : t list
(** The three devices of Table IV, in paper order.  Deliberately frozen:
    committed sweeps and perf baselines iterate it. *)

val p100 : t
(** Nvidia Tesla P100 SXM2 (Pascal GP100); public datasheet numbers with
    microbenchmarked latencies, see the citations in the implementation. *)

val v100 : t
(** Nvidia Tesla V100 SXM2 (Volta GV100); public datasheet numbers with
    microbenchmarked latencies (Jia et al., arXiv:1804.06826). *)

val extended : t list
(** [all] plus the Pascal/Volta descriptors — the device table the
    multi-device portfolio tooling sweeps by default. *)

val of_name : string -> t option
(** Case-insensitive lookup in {!extended} by descriptor name
    (["k20x"], ["K40"], ["gtx750ti"], ["p100"], ["v100"]). *)

val with_smem : t -> int -> t
(** [with_smem dev bytes] is the hypothetical-architecture variant used by
    the paper's SMEM-capacity study (Section VI-E): same device with
    [smem_per_smx] replaced. *)

val with_readonly_cache : t -> bool -> t
(** Enable or disable read-only-cache staging (paper §II-C). *)

val elem_size : t -> int
(** Bytes per element at the device's native precision (8 or 4). *)

val flops_per_cycle_smx : t -> float
(** Arithmetic throughput of one SMX in native-precision flops/cycle,
    derived from [peak_gflops]. *)

val bytes_per_cycle : t -> float
(** Whole-device GMEM bandwidth expressed in bytes per SM-clock cycle. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
