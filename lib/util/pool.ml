(* Persistent worker-domain pool with work-stealing task dispatch.

   Spawning a domain costs far more than a generation of GA work on small
   populations, and the island-model search wants a fan-out every
   generation.  This pool spawns its workers once and re-dispatches jobs
   to them over a mutex/condition pair, so the per-generation cost is a
   broadcast instead of N domain spawns and joins.

   Two dispatch shapes are offered on top of the same epoch handshake:

   - [broadcast t f] hands every worker a distinct pinned index — one
     call per worker, the original lockstep shape.  The serve daemon
     uses it for its long-lived per-worker loops.
   - [run t ~tasks f] distributes [tasks] independent task indices over
     the workers with work stealing: each worker owns a contiguous block
     of the index range as a deque, pops from the front of its own block,
     and when empty steals the back half of a victim's remaining block.
     Because a contiguous block stays contiguous under steal-half-from-
     the-back, a deque is just a [lo, hi) interval — no task buffer at
     all.  Each index runs exactly once regardless of who steals what,
     which is what keeps callers with pure per-task functions
     deterministic under any steal interleaving. *)

type deque = {
  d_lock : Mutex.t;
  mutable d_lo : int;  (* next task the owner pops *)
  mutable d_hi : int;  (* one past the last task; thieves shrink this *)
}

type t = {
  size : int;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when a new job epoch is published *)
  finished : Condition.t;  (* signalled when the last worker completes *)
  mutable job : unit -> unit;  (* current job; worker indices come from a
                                  ticket counter inside the closure *)
  mutable epoch : int;  (* job generation counter; workers run each epoch once *)
  mutable remaining : int;  (* workers still inside the current epoch *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
      (* first exception raised by any worker, with the backtrace captured
         on the worker domain — re-raised at the caller with
         [Printexc.raise_with_backtrace] so the originating frame survives
         the domain hop *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  deques : deque array;  (* one per worker, reset by each [run] epoch *)
  cancelled : bool Atomic.t;
      (* set on the first task failure of a [run] epoch so the remaining
         task indices drain without executing *)
  steals : int Atomic.t;  (* cumulative successful steals, telemetry *)
}

let worker_loop t =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while t.epoch = !last && not t.stopping do
      Condition.wait t.work t.lock
    done;
    if t.stopping then begin
      Mutex.unlock t.lock;
      running := false
    end
    else begin
      last := t.epoch;
      let f = t.job in
      Mutex.unlock t.lock;
      let outcome =
        match f () with
        | () -> None
        | exception e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.lock;
      (match outcome with
      | Some _ when t.failure = None -> t.failure <- outcome
      | _ -> ());
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.signal t.finished;
      Mutex.unlock t.lock
    end
  done

let create size =
  if size < 1 then invalid_arg "Pool.create: size must be positive";
  (* Backtrace recording is per-domain state: a freshly spawned domain
     starts from the OCAMLRUNPARAM default regardless of what the
     creating domain set via [Printexc.record_backtrace].  Capture the
     creator's setting here and replay it inside each worker, otherwise
     the backtrace stored in [t.failure] is empty and the re-raise in
     [run] loses the worker's originating frame. *)
  let record_bt = Printexc.backtrace_status () in
  let t =
    {
      size;
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = (fun () -> ());
      epoch = 0;
      remaining = 0;
      failure = None;
      stopping = false;
      workers = [];
      deques =
        Array.init size (fun _ ->
            { d_lock = Mutex.create (); d_lo = 0; d_hi = 0 });
      cancelled = Atomic.make false;
      steals = Atomic.make 0;
    }
  in
  t.workers <-
    List.init size (fun _ ->
        Domain.spawn (fun () ->
            if record_bt then Printexc.record_backtrace true;
            worker_loop t));
  t

let size t = t.size
let steals t = Atomic.get t.steals

(* Publish one job epoch and block until every worker has run it once.
   Must be called with a job already stored via the caller; shared by
   [broadcast] and [run]. *)
let dispatch t ~who job =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg (Printf.sprintf "Pool.%s: pool is shut down" who)
  end;
  t.job <- job;
  t.epoch <- t.epoch + 1;
  t.remaining <- t.size;
  t.failure <- None;
  Condition.broadcast t.work;
  while t.remaining > 0 do
    Condition.wait t.finished t.lock
  done;
  let failure = t.failure in
  t.failure <- None;
  Mutex.unlock t.lock;
  match failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let broadcast t f =
  (* Workers need their own index, but the epoch-based handshake hands
     every worker the same closure: give each a ticket instead. *)
  let ticket = Atomic.make 0 in
  dispatch t ~who:"broadcast" (fun () -> f (Atomic.fetch_and_add ticket 1))

(* Pop the front of worker [w]'s own deque. *)
let pop_own t w =
  let d = t.deques.(w) in
  Mutex.lock d.d_lock;
  let task = if d.d_lo < d.d_hi then (d.d_lo <- d.d_lo + 1; d.d_lo - 1) else -1 in
  Mutex.unlock d.d_lock;
  task

(* Steal the back half of the first non-empty victim deque, scanning the
   other workers round-robin from [w + 1].  The stolen interval replaces
   [w]'s own (empty) deque.  Only one deque lock is ever held at a time:
   the thief releases the victim's lock before touching its own deque,
   so steal chains cannot form a lock cycle. *)
let try_steal t w =
  let n = t.size in
  let rec scan k =
    if k >= n then false
    else begin
      let v = (w + k) mod n in
      let d = t.deques.(v) in
      Mutex.lock d.d_lock;
      let avail = d.d_hi - d.d_lo in
      if avail <= 0 then begin
        Mutex.unlock d.d_lock;
        scan (k + 1)
      end
      else begin
        let take = (avail + 1) / 2 in
        d.d_hi <- d.d_hi - take;
        let lo = d.d_hi in
        Mutex.unlock d.d_lock;
        let mine = t.deques.(w) in
        Mutex.lock mine.d_lock;
        mine.d_lo <- lo;
        mine.d_hi <- lo + take;
        Mutex.unlock mine.d_lock;
        Atomic.incr t.steals;
        true
      end
    end
  in
  scan 1

let run t ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: tasks must be non-negative";
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.run: pool is shut down"
  end;
  (* Block-partition [0, tasks) over the workers.  Workers are idle
     between epochs (the caller holds the barrier), so the deques can be
     reset without taking their locks — the epoch handshake below
     publishes the writes. *)
  for w = 0 to t.size - 1 do
    let d = t.deques.(w) in
    d.d_lo <- w * tasks / t.size;
    d.d_hi <- (w + 1) * tasks / t.size
  done;
  Atomic.set t.cancelled false;
  Mutex.unlock t.lock;
  let ticket = Atomic.make 0 in
  let worker () =
    let w = Atomic.fetch_and_add ticket 1 in
    let rec loop () =
      let task = pop_own t w in
      if task >= 0 then begin
        (* After a failure, keep draining indices so the epoch terminates
           promptly, but stop running user code. *)
        if not (Atomic.get t.cancelled) then begin
          match f task with
          | () -> ()
          | exception e ->
              Atomic.set t.cancelled true;
              raise e
        end;
        loop ()
      end
      else if try_steal t w then loop ()
    in
    loop ()
  in
  dispatch t ~who:"run" worker

let shutdown t =
  Mutex.lock t.lock;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool size f =
  let t = create size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
