(* Persistent worker-domain pool.

   Spawning a domain costs far more than a generation of GA work on small
   populations, and the island-model search wants a fan-out every
   generation.  This pool spawns its workers once and re-dispatches jobs
   to them over a mutex/condition pair, so the per-generation cost is a
   broadcast instead of N domain spawns and joins. *)

type t = {
  size : int;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when a new job epoch is published *)
  finished : Condition.t;  (* signalled when the last worker completes *)
  mutable job : unit -> unit;  (* current job; worker indices come from a
                                  ticket counter inside the closure *)
  mutable epoch : int;  (* job generation counter; workers run each epoch once *)
  mutable remaining : int;  (* workers still inside the current epoch *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
      (* first exception raised by any worker, with the backtrace captured
         on the worker domain — re-raised at the caller with
         [Printexc.raise_with_backtrace] so the originating frame survives
         the domain hop *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let worker_loop t =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while t.epoch = !last && not t.stopping do
      Condition.wait t.work t.lock
    done;
    if t.stopping then begin
      Mutex.unlock t.lock;
      running := false
    end
    else begin
      last := t.epoch;
      let f = t.job in
      Mutex.unlock t.lock;
      let outcome =
        match f () with
        | () -> None
        | exception e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.lock;
      (match outcome with
      | Some _ when t.failure = None -> t.failure <- outcome
      | _ -> ());
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.signal t.finished;
      Mutex.unlock t.lock
    end
  done

let create size =
  if size < 1 then invalid_arg "Pool.create: size must be positive";
  (* Backtrace recording is per-domain state: a freshly spawned domain
     starts from the OCAMLRUNPARAM default regardless of what the
     creating domain set via [Printexc.record_backtrace].  Capture the
     creator's setting here and replay it inside each worker, otherwise
     the backtrace stored in [t.failure] is empty and the re-raise in
     [run] loses the worker's originating frame. *)
  let record_bt = Printexc.backtrace_status () in
  let t =
    {
      size;
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = (fun () -> ());
      epoch = 0;
      remaining = 0;
      failure = None;
      stopping = false;
      workers = [];
    }
  in
  t.workers <-
    List.init size (fun _ ->
        Domain.spawn (fun () ->
            if record_bt then Printexc.record_backtrace true;
            worker_loop t));
  t

let size t = t.size

let run t f =
  (* Workers need their own index, but the epoch-based handshake hands
     every worker the same closure: give each a ticket instead. *)
  let ticket = Atomic.make 0 in
  let job () = f (Atomic.fetch_and_add ticket 1) in
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.run: pool is shut down"
  end;
  t.job <- job;
  t.epoch <- t.epoch + 1;
  t.remaining <- t.size;
  t.failure <- None;
  Condition.broadcast t.work;
  while t.remaining > 0 do
    Condition.wait t.finished t.lock
  done;
  let failure = t.failure in
  t.failure <- None;
  Mutex.unlock t.lock;
  match failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let shutdown t =
  Mutex.lock t.lock;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool size f =
  let t = create size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
