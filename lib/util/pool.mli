(** Persistent worker-domain pool.

    [Domain.spawn] costs far more than one generation of GA work on
    small populations; a search that fans out every generation must not
    pay it every time.  The pool spawns its workers once; each {!run}
    re-dispatches a job to all of them over one mutex/condition pair, so
    the steady-state fan-out cost is a broadcast, not N spawns + joins.

    The pool itself is deterministic-friendly: {!run} hands every worker
    a distinct index in [0, size) and blocks until all workers finish,
    so it is a drop-in replacement for spawn-per-call striping. *)

type t

val create : int -> t
(** [create n] spawns [n] worker domains that idle until {!run}.
    @raise Invalid_argument if [n < 1]. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f w] once for every worker index [w] in
    [0, size t) — concurrently, one call per worker — and returns when
    all calls have finished (a barrier).  If any call raises, one of the
    raised exceptions is re-raised here after the barrier {e with the
    originating worker's backtrace} ([Printexc.raise_with_backtrace]),
    so the failing frame is not replaced by the dispatch site's; the
    pool remains usable.  Not reentrant: do not call [run] from inside
    [f], and do not call it from two domains at once.
    @raise Invalid_argument if the pool is shut down. *)

val shutdown : t -> unit
(** Stop and join all workers.  Idempotent.  Subsequent {!run} calls
    raise [Invalid_argument]. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] with a fresh pool, always shutting it down
    (including on exceptions). *)
