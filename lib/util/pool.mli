(** Persistent worker-domain pool with work-stealing task dispatch.

    [Domain.spawn] costs far more than one generation of GA work on
    small populations; a search that fans out every generation must not
    pay it every time.  The pool spawns its workers once; each dispatch
    re-engages them over one mutex/condition pair, so the steady-state
    fan-out cost is a broadcast, not N spawns + joins.

    {!run} distributes an arbitrary number of independent task indices
    over the workers with work stealing (per-worker interval deques,
    steal-half-from-the-back), so an imbalanced generation no longer
    runs at the speed of its slowest pinned stripe.  Every task index
    runs exactly once no matter which worker ends up executing it, so
    callers whose per-task function is pure (or writes only to its own
    output slot) get results independent of the steal interleaving.

    {!broadcast} keeps the original one-call-per-worker shape for
    callers that want long-lived pinned worker loops (the serve
    daemon). *)

type t

val create : int -> t
(** [create n] spawns [n] worker domains that idle until dispatched to.
    @raise Invalid_argument if [n < 1]. *)

val size : t -> int

val run : t -> tasks:int -> (int -> unit) -> unit
(** [run t ~tasks f] executes [f i] exactly once for every task index
    [i] in [0, tasks) across the worker domains and returns when all
    calls have finished (a barrier).  Task indices are block-partitioned
    over the workers in ascending order; an idle worker steals the back
    half of a busy worker's remaining block, so which worker runs a
    given index is scheduling-dependent — results are deterministic iff
    [f] is (observably) pure per index.  If any call raises, the
    remaining indices are drained without executing and one of the
    raised exceptions is re-raised here after the barrier {e with the
    originating worker's backtrace} ([Printexc.raise_with_backtrace]);
    the pool remains usable.  Not reentrant: do not call [run] from
    inside [f], and do not call it from two domains at once.
    @raise Invalid_argument if [tasks < 0] or the pool is shut down. *)

val broadcast : t -> (int -> unit) -> unit
(** [broadcast t f] executes [f w] once for every worker index [w] in
    [0, size t) — concurrently, one call pinned per worker — and returns
    when all calls have finished (a barrier).  Exception propagation and
    reentrancy rules are as for {!run}, except no cancellation happens:
    every worker's single call always runs.
    @raise Invalid_argument if the pool is shut down. *)

val steals : t -> int
(** Cumulative number of successful steals across all {!run} epochs
    since {!create}.  Telemetry only. *)

val shutdown : t -> unit
(** Stop and join all workers.  Idempotent.  Subsequent dispatches
    raise [Invalid_argument]. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] with a fresh pool, always shutting it down
    (including on exceptions). *)
