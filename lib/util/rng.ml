type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = seed }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: n must be non-negative";
  if n = 0 then [||]
  else begin
    (* Explicit ascending loop: the order in which the parent is advanced
       is part of the determinism contract (child [i] must equal the
       [i]-th sequential [split]), so don't rely on [Array.init]'s
       unspecified evaluation order. *)
    let out = Array.make n t in
    for i = 0 to n - 1 do
      out.(i) <- split t
    done;
    out
  end

let copy t = { state = t.state }

let state t = t.state

let of_state s = { state = s }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias.  [bits] yields one of 2^62
     values, so the rejection limit must be computed from 2^62 (the number
     of values), not 2^62 - 1 (the largest value): the largest multiple of
     [bound] not exceeding 2^62.  2^62 itself overflows a 63-bit OCaml
     int, so its remainder is computed as ((2^62 - 1) mod bound + 1) mod
     bound. *)
  let max = 0x3FFF_FFFF_FFFF_FFFF in
  let rem = ((max mod bound) + 1) mod bound in
  if rem = 0 then bits t mod bound
  else begin
    let limit = max - rem + 1 in
    let rec draw () =
      let v = bits t in
      if v >= limit then draw () else v mod bound
    in
    draw ()
  end

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let chance t p = if p <= 0. then false else if p >= 1. then true else float t 1.0 < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | l -> List.nth l (int t (List.length l))

let sample t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample: k out of range";
  let scratch = Array.copy arr in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = scratch.(i) in
    scratch.(i) <- scratch.(j);
    scratch.(j) <- tmp
  done;
  Array.sub scratch 0 k

let gaussian t ~mean ~stddev =
  (* Box-Muller; u1 must be strictly positive for the log. *)
  let rec u () =
    let v = float t 1.0 in
    if v = 0. then u () else v
  in
  let u1 = u () and u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))
