(** Small statistics toolkit used by the benchmark harness and the search
    solver's progress reporting. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val variance : float array -> float
(** Bessel-corrected sample variance (divides by [n - 1], the unbiased
    estimator for the small sample counts the bench harness uses); 0 for
    fewer than two samples. *)

val stddev : float array -> float
(** Sample standard deviation (square root of {!variance}). *)

val geomean : float array -> float
(** Geometric mean of strictly positive values; 0 on an empty array.
    @raise Invalid_argument if any value is non-positive. *)

val geomean_opt : float array -> float option
(** Never-raising {!geomean}: [None] on an empty array or when any value
    is non-positive or non-finite.  Preferred in report paths where
    degenerate benchmark data must not abort the run. *)

val median : float array -> float
(** Median (average of middle two for even length); 0 on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]] using linear interpolation.
    @raise Invalid_argument on an empty array or [p] out of range. *)

val percentile_opt : float array -> float -> float option
(** Never-raising {!percentile}: [None] on an empty array or [p] outside
    [\[0,100\]]. *)

val min_max : float array -> float * float
(** Smallest and largest value.  @raise Invalid_argument on empty input. *)

val min_max_opt : float array -> (float * float) option
(** Never-raising {!min_max}: [None] on empty input. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val coefficient_of_variation : float array -> float
(** stddev / |mean| (well-defined, non-negative, for negative means); 0
    when the mean is 0. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** One-pass descriptive summary.  All fields are 0 on empty input except
    [n]. *)

val pp_summary : Format.formatter -> summary -> unit
