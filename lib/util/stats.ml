let sum xs =
  (* Kahan summation: the benchmark harness accumulates thousands of small
     runtimes and naive summation loses digits that matter for speedup
     ratios. *)
  let total = ref 0. and comp = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs = if Array.length xs = 0 then 0. else sum xs /. float_of_int (Array.length xs)

let variance xs =
  (* Bessel-corrected (n - 1) sample variance: the bench harness summarizes
     small sample counts, where the population divisor biases error bars
     low. *)
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.map (fun x -> (x -. m) *. (x -. m)) xs in
    sum acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let geomean_opt xs =
  if Array.length xs = 0 then None
  else if Array.exists (fun x -> x <= 0. || not (Float.is_finite x)) xs then None
  else Some (exp (mean (Array.map log xs)))

let geomean xs =
  if Array.length xs = 0 then 0.
  else begin
    Array.iter (fun x -> if x <= 0. then invalid_arg "Stats.geomean: non-positive value") xs;
    match geomean_opt xs with
    | Some g -> g
    | None -> invalid_arg "Stats.geomean: non-positive value"
  end

let sorted xs =
  let copy = Array.copy xs in
  Array.sort compare copy;
  copy

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let s = sorted xs in
    if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.
  end

let percentile_opt xs p =
  let n = Array.length xs in
  if n = 0 || p < 0. || p > 100. || not (Float.is_finite p) then None
  else begin
    let s = sorted xs in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then Some s.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      Some (s.(lo) +. (frac *. (s.(hi) -. s.(lo))))
    end
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  match percentile_opt xs p with
  | Some v -> v
  | None -> invalid_arg "Stats.percentile: p out of [0,100]"

let min_max_opt xs =
  if Array.length xs = 0 then None
  else
    Some
      (Array.fold_left
         (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
         (xs.(0), xs.(0))
         xs)

let min_max xs =
  match min_max_opt xs with
  | Some r -> r
  | None -> invalid_arg "Stats.min_max: empty array"

let coefficient_of_variation xs =
  (* |mean| keeps the ratio well-defined (non-negative) for negative-mean
     samples; CV measures relative dispersion, which has no sign. *)
  let m = Float.abs (mean xs) in
  if m = 0. then 0. else stddev xs /. m

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then { n = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; median = 0. }
  else begin
    let min, max = min_max xs in
    { n; mean = mean xs; stddev = stddev xs; min; max; median = median xs }
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" s.n s.mean s.stddev
    s.min s.median s.max
