(** Fixed-universe bit sets.

    The exact set-partition solver and the constraint system manipulate many
    subsets of the kernel universe (up to a few hundred elements); this is a
    compact imperative representation with the usual set algebra. *)

type t

val create : int -> t
(** [create n] is the empty subset of universe [{0, …, n-1}]. *)

val universe_size : t -> int

val singleton : int -> int -> t
(** [singleton n i] is [{i}] in universe size [n]. *)

val of_list : int -> int list -> t

val to_list : t -> int list
(** Members in increasing order. *)

val copy : t -> t
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is true when every member of [a] is in [b]. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val disjoint : t -> t -> bool
val union_into : t -> t -> unit
(** [union_into dst src] adds all members of [src] to [dst]. *)

val clear : t -> unit
(** Remove every member in place (for scratch reuse on hot paths). *)

val intersects_outside : t -> t -> outside:t -> bool
(** [intersects_outside a b ~outside] is [not (is_empty (diff (inter a b)
    outside))], computed without allocating the intermediate sets — the
    path-convexity test of the allocation-free evaluator. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val choose : t -> int
(** Smallest member.  @raise Not_found when empty. *)

val compare : t -> t -> int
(** Total order suitable for [Map]/[Set] keys. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
