(** Deterministic pseudo-random number generation.

    All stochastic components of the library (the HGGA solver, workload
    generators, failure-injection tests) draw from this module so that every
    experiment is reproducible bit-for-bit from an explicit seed.  The
    implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    statistically strong, splittable generator. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal seeds
    produce equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Streams of the parent and child do not overlap in practice. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent generators, advancing [t]
    exactly [n] times in ascending order: [(split_n t n).(i)] equals the
    [i]-th sequential [split t].  Used to pre-draw one child generator
    per offspring before a parallel fan-out, so the stream each child
    sees does not depend on which domain evaluates it.
    @raise Invalid_argument if [n < 0]. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays the same
    stream. *)

val state : t -> int64
(** The raw generator state, for checkpointing.  [of_state (state t)]
    resumes the exact stream of [t]. *)

val of_state : int64 -> t
(** Rebuild a generator from a saved {!state}.  Unlike {!create}, the
    value is used verbatim (no mixing), so a round trip is exact. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next 62-bit non-negative OCaml [int]. *)

val int : t -> int -> int
(** [int t bound] is exactly uniform in [\[0, bound)] (rejection sampling
    with the limit computed from the 2^62 possible {!bits} values, so
    there is no residual modulo bias and bounds that divide 2^62 — all
    powers of two — are rejection-free).  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on an
    empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] distinct elements (uniform, without
    replacement).  @raise Invalid_argument if [k] exceeds the array
    length. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via the Box–Muller transform. *)
