type t = { n : int; words : Bytes.t }

(* One byte per 8 members; Bytes gives structural compare/hash for free via
   the primitives below. *)

let words_for n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { n; words = Bytes.make (words_for n) '\000' }

let universe_size t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.n)

let add t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i / 8)) in
  Bytes.set t.words (i / 8) (Char.chr (b lor (1 lsl (i mod 8))))

let remove t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i / 8)) in
  Bytes.set t.words (i / 8) (Char.chr (b land lnot (1 lsl (i mod 8)) land 0xFF))

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i / 8)) land (1 lsl (i mod 8)) <> 0

let singleton n i =
  let t = create n in
  add t i;
  t

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let copy t = { n = t.n; words = Bytes.copy t.words }

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun b -> table.(b)

let cardinal t =
  let acc = ref 0 in
  for w = 0 to Bytes.length t.words - 1 do
    acc := !acc + popcount_byte (Char.code (Bytes.get t.words w))
  done;
  !acc

let is_empty t =
  let rec go w = w >= Bytes.length t.words || (Bytes.get t.words w = '\000' && go (w + 1)) in
  go 0

let same_universe a b =
  if a.n <> b.n then invalid_arg "Bitset: universe size mismatch"

let equal a b =
  same_universe a b;
  Bytes.equal a.words b.words

let binop op a b =
  same_universe a b;
  let out = create a.n in
  for w = 0 to Bytes.length a.words - 1 do
    let v = op (Char.code (Bytes.get a.words w)) (Char.code (Bytes.get b.words w)) in
    Bytes.set out.words w (Char.chr (v land 0xFF))
  done;
  out

let union a b = binop ( lor ) a b
let inter a b = binop ( land ) a b
let diff a b = binop (fun x y -> x land lnot y) a b

let subset a b =
  same_universe a b;
  let rec go w =
    w >= Bytes.length a.words
    || Char.code (Bytes.get a.words w) land lnot (Char.code (Bytes.get b.words w)) land 0xFF = 0
       && go (w + 1)
  in
  go 0

let disjoint a b =
  same_universe a b;
  let rec go w =
    w >= Bytes.length a.words
    || Char.code (Bytes.get a.words w) land Char.code (Bytes.get b.words w) = 0 && go (w + 1)
  in
  go 0

let union_into dst src =
  same_universe dst src;
  for w = 0 to Bytes.length dst.words - 1 do
    let v = Char.code (Bytes.get dst.words w) lor Char.code (Bytes.get src.words w) in
    Bytes.set dst.words w (Char.chr v)
  done

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let intersects_outside a b ~outside =
  same_universe a b;
  same_universe a outside;
  let rec go w =
    w < Bytes.length a.words
    && (Char.code (Bytes.get a.words w)
        land Char.code (Bytes.get b.words w)
        land lnot (Char.code (Bytes.get outside.words w))
        land 0xFF
        <> 0
       || go (w + 1))
  in
  go 0

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let choose t =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) t;
    raise Not_found
  with Found i -> i

let compare a b =
  let c = Stdlib.compare a.n b.n in
  if c <> 0 then c else Bytes.compare a.words b.words

let hash t = Hashtbl.hash (t.n, Bytes.to_string t.words)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list t)
