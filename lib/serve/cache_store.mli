(** The daemon's cross-request warm cache.

    Group verdicts exported from one request's objective
    ({!Kf_search.Objective.export_group_verdicts}) are stored under a
    content digest of (program text, device, model) and seeded into
    later objectives over the same triple — evaluation is pure, so a
    warm start can only skip work.  Thread-safe; bounded by a FIFO cap
    on stored programs; persisted as a crash-safe
    {!Kf_search.Snapshot.Cache} document so a restarted daemon resumes
    warm. *)

type t

val create : ?max_entries:int -> unit -> t
(** [max_entries] caps the number of distinct (program, device, model)
    triples kept (default 64; FIFO eviction).
    @raise Invalid_argument if it is not positive. *)

val key :
  program:Kf_ir.Program.t ->
  device:Kf_gpu.Device.t ->
  model:Kf_search.Objective.model ->
  string
(** Content digest of the triple — two requests share warmth exactly
    when their canonical program text, device and model all match. *)

val find : t -> string -> (int array * Kf_search.Objective.verdict) list
(** The stored verdicts for a key ([] when cold). *)

val absorb : t -> string -> (int array * Kf_search.Objective.verdict) list -> unit
(** Merge a request's exported verdicts.  The larger of the stored and
    offered lists wins (an export from a seeded request is a superset of
    its seed); empty exports are ignored. *)

val programs : t -> int
(** Distinct triples currently stored. *)

val verdict_count : t -> int
(** Total verdicts across all entries. *)

val dirty : t -> bool
(** Whether the store changed since the last {!save}/{!load}. *)

val save : t -> string -> unit
(** Crash-safe persist (atomic temp-file + rename; see
    {!Kf_search.Snapshot.Cache.save}).  Clears {!dirty}.
    @raise Sys_error on IO failure. *)

val load : t -> string -> unit
(** Merge a persisted document into the store.
    @raise Sys_error / {!Kf_search.Snapshot.Malformed} on unreadable or
    corrupt files. *)

val load_if_exists : t -> string -> unit
(** {!load} when [path] exists; no-op otherwise (fresh daemon). *)
