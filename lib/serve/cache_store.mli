(** The daemon's cross-request warm cache.

    Group verdicts exported from one request's objective
    ({!Kf_search.Objective.export_group_verdicts}) are stored under a
    content digest of (program text, device, model) and seeded into
    later objectives over the same triple — evaluation is pure, so a
    warm start can only skip work.  An entry can also carry the {e
    answer}: the best plan a completed search found (with a
    search-parameter fingerprint), so an identical repeat request is
    served without searching at all.  Thread-safe; bounded by a
    counted LRU cap on stored programs (streaming sessions mint one
    digest per program version, so the bound is what keeps a long
    session from growing the store forever); persisted as a crash-safe
    {!Kf_search.Snapshot.Cache} document so a restarted daemon resumes
    warm. *)

type t

val create : ?max_entries:int -> unit -> t
(** [max_entries] caps the number of distinct (program, device, model)
    triples kept (default 64; LRU eviction — {!find}, {!find_plan},
    {!absorb} and {!store_plan} all refresh recency).
    @raise Invalid_argument if it is not positive. *)

val key :
  program:Kf_ir.Program.t ->
  device:Kf_gpu.Device.t ->
  model:Kf_search.Objective.model ->
  string
(** Content digest of the triple — two requests share warmth exactly
    when their canonical program text, device and model all match. *)

val find : t -> string -> (int array * Kf_search.Objective.verdict) list
(** The stored verdicts for a key ([] when cold). *)

val find_plan : t -> string -> Kf_search.Snapshot.Cache.stored_plan option
(** The stored answer for a key, if a search over this triple already
    completed.  The caller must check the plan's [fingerprint] against
    the request's resolved search parameters before serving it. *)

val absorb : t -> string -> (int array * Kf_search.Objective.verdict) list -> unit
(** Merge a request's exported verdicts.  The larger of the stored and
    offered lists wins (an export from a seeded request is a superset of
    its seed); empty exports are ignored. *)

val store_plan : t -> string -> Kf_search.Snapshot.Cache.stored_plan -> unit
(** Record a completed search's answer for a key (replacing any previous
    one). *)

val programs : t -> int
(** Distinct triples currently stored. *)

val verdict_count : t -> int
(** Total verdicts across all entries. *)

val evictions : t -> int
(** Entries dropped by the LRU bound since the store was created — the
    [serve.cache.evictions] metric. *)

val dirty : t -> bool
(** Whether the store changed since the last {!save}/{!load}. *)

val save : t -> string -> unit
(** Crash-safe persist (atomic temp-file + rename; see
    {!Kf_search.Snapshot.Cache.save}).  Clears {!dirty}.
    @raise Sys_error on IO failure. *)

val load : t -> string -> unit
(** Merge a persisted document into the store.
    @raise Sys_error / {!Kf_search.Snapshot.Malformed} on unreadable or
    corrupt files. *)

val load_if_exists : t -> string -> unit
(** {!load} when [path] exists; no-op otherwise (fresh daemon). *)
