(* Cross-request warm cache: group verdicts keyed by a content digest of
   (program text, device, model).  Verdicts are pure functions of that
   triple, so an entry seeded into a later objective over the same triple
   can only skip evaluations, never change a result.  The store persists
   as a Snapshot.Cache document so a restarted daemon starts warm. *)

module Objective = Kf_search.Objective
module Snapshot = Kf_search.Snapshot

type t = {
  lock : Mutex.t;
  table : (string, (int array * Objective.verdict) list) Hashtbl.t;
  fifo : string Queue.t;  (* insertion order, for eviction *)
  max_entries : int;
  mutable dirty : bool;  (* unsaved changes since the last save/load *)
}

let create ?(max_entries = 64) () =
  if max_entries < 1 then invalid_arg "Cache_store.create: max_entries must be positive";
  {
    lock = Mutex.create ();
    table = Hashtbl.create 16;
    fifo = Queue.create ();
    max_entries;
    dirty = false;
  }

let key ~program ~device ~model =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Kf_ir.Program_io.print program;
            device.Kf_gpu.Device.name;
            Objective.model_name model;
          ]))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t k = locked t (fun () -> Option.value (Hashtbl.find_opt t.table k) ~default:[])

let put_locked t k verdicts =
  if not (Hashtbl.mem t.table k) then begin
    Queue.push k t.fifo;
    while Hashtbl.length t.table >= t.max_entries do
      Hashtbl.remove t.table (Queue.pop t.fifo)
    done
  end;
  Hashtbl.replace t.table k verdicts;
  t.dirty <- true

let absorb t k verdicts =
  if verdicts <> [] then
    locked t (fun () ->
        (* An export from a request seeded by this entry is a superset of
           the seed (seeded verdicts re-export), so keeping the larger
           list retains every verdict either side knows. *)
        match Hashtbl.find_opt t.table k with
        | Some existing when List.length existing >= List.length verdicts -> ()
        | _ -> put_locked t k verdicts)

let programs t = locked t (fun () -> Hashtbl.length t.table)

let verdict_count t =
  locked t (fun () -> Hashtbl.fold (fun _ vs acc -> acc + List.length vs) t.table 0)

let dirty t = locked t (fun () -> t.dirty)

let save t path =
  let entries =
    locked t (fun () ->
        t.dirty <- false;
        (* persist in insertion order so saves are deterministic *)
        Queue.fold
          (fun acc k ->
            match Hashtbl.find_opt t.table k with
            | Some verdicts -> { Snapshot.Cache.key = k; verdicts } :: acc
            | None -> acc)
          [] t.fifo
        |> List.rev)
  in
  Snapshot.Cache.save path entries

let load t path =
  let entries = Snapshot.Cache.load path in
  locked t (fun () ->
      List.iter
        (fun { Snapshot.Cache.key; verdicts } ->
          if verdicts <> [] then put_locked t key verdicts)
        entries;
      t.dirty <- false)

let load_if_exists t path = if Sys.file_exists path then load t path
