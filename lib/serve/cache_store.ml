(* Cross-request warm cache: group verdicts keyed by a content digest of
   (program text, device, model).  Verdicts are pure functions of that
   triple, so an entry seeded into a later objective over the same triple
   can only skip evaluations, never change a result.  Since format 6 an
   entry can also carry the *answer* — the best plan a completed search
   found, fingerprinted by its search parameters — so a repeat request
   is served outright instead of merely warm.  The store persists as a
   Snapshot.Cache document so a restarted daemon starts warm.

   Long streaming sessions mint one digest per program version, so the
   bound matters: eviction is LRU (every find/absorb bumps recency) and
   counted, not FIFO — a client alternating between two programs keeps
   both warm no matter how much unrelated traffic passes between. *)

module Objective = Kf_search.Objective
module Snapshot = Kf_search.Snapshot

type entry = {
  mutable verdicts : (int array * Objective.verdict) list;
  mutable plan : Snapshot.Cache.stored_plan option;
  mutable last_use : int;  (* global tick at last touch; min evicts *)
}

type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  max_entries : int;
  mutable tick : int;
  mutable evictions : int;  (* entries dropped by the LRU bound *)
  mutable dirty : bool;  (* unsaved changes since the last save/load *)
}

let create ?(max_entries = 64) () =
  if max_entries < 1 then invalid_arg "Cache_store.create: max_entries must be positive";
  {
    lock = Mutex.create ();
    table = Hashtbl.create 16;
    max_entries;
    tick = 0;
    evictions = 0;
    dirty = false;
  }

let key ~program ~device ~model =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Kf_ir.Program_io.print program;
            device.Kf_gpu.Device.name;
            Objective.model_name model;
          ]))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch_locked t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | None -> []
      | Some e ->
          touch_locked t e;
          e.verdicts)

let find_plan t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | None -> None
      | Some e ->
          touch_locked t e;
          e.plan)

let evict_lru_locked t =
  while Hashtbl.length t.table > t.max_entries do
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match !victim with
        | Some (_, age) when age <= e.last_use -> ()
        | _ -> victim := Some (k, e.last_use))
      t.table;
    match !victim with
    | Some (k, _) ->
        Hashtbl.remove t.table k;
        t.evictions <- t.evictions + 1
    | None -> ()
  done

let entry_locked t k =
  match Hashtbl.find_opt t.table k with
  | Some e ->
      touch_locked t e;
      e
  | None ->
      let e = { verdicts = []; plan = None; last_use = 0 } in
      touch_locked t e;
      Hashtbl.replace t.table k e;
      evict_lru_locked t;
      e

let absorb t k verdicts =
  if verdicts <> [] then
    locked t (fun () ->
        let e = entry_locked t k in
        (* An export from a request seeded by this entry is a superset of
           the seed (seeded verdicts re-export), so keeping the larger
           list retains every verdict either side knows. *)
        if List.length verdicts > List.length e.verdicts then begin
          e.verdicts <- verdicts;
          t.dirty <- true
        end)

let store_plan t k plan =
  locked t (fun () ->
      let e = entry_locked t k in
      e.plan <- Some plan;
      t.dirty <- true)

let programs t = locked t (fun () -> Hashtbl.length t.table)

let verdict_count t =
  locked t (fun () -> Hashtbl.fold (fun _ e acc -> acc + List.length e.verdicts) t.table 0)

let evictions t = locked t (fun () -> t.evictions)
let dirty t = locked t (fun () -> t.dirty)

let save t path =
  let entries =
    locked t (fun () ->
        t.dirty <- false;
        (* persist in recency order (stalest first) so saves are
           deterministic and a reload replays the same LRU order *)
        Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.table []
        |> List.sort (fun (_, a) (_, b) -> compare a.last_use b.last_use)
        |> List.map (fun (k, e) ->
               { Snapshot.Cache.key = k; verdicts = e.verdicts; plan = e.plan }))
  in
  Snapshot.Cache.save path entries

let load t path =
  let entries = Snapshot.Cache.load path in
  locked t (fun () ->
      List.iter
        (fun { Snapshot.Cache.key; verdicts; plan } ->
          if verdicts <> [] || plan <> None then begin
            let e = entry_locked t key in
            if List.length verdicts > List.length e.verdicts then e.verdicts <- verdicts;
            match plan with Some _ -> e.plan <- plan | None -> ()
          end)
        entries;
      t.dirty <- false)

let load_if_exists t path = if Sys.file_exists path then load t path
