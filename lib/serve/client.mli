(** Blocking client for the serve protocol — used by the CLI example,
    the lifecycle tests and the bench driver. *)

type t

val connect : string -> t
(** Connect to a daemon's Unix socket.  Raises [Unix.Unix_error] when
    the daemon is not there. *)

val connect_retry : ?attempts:int -> ?delay_s:float -> string -> t
(** {!connect} retrying on [ENOENT]/[ECONNREFUSED] (a daemon still
    starting up); default 50 attempts, 0.1 s apart. *)

val send : t -> Kf_obs.Json.t -> unit
(** Write one request line. *)

val send_line : t -> string -> unit
(** Write a raw line — for deliberately malformed requests in tests. *)

val next_event : t -> Kf_obs.Json.t option
(** Read the next event line ([None] on EOF). *)

val event_kind : Kf_obs.Json.t -> string option
val event_id : Kf_obs.Json.t -> string option

val wait_terminal : t -> id:string -> (Kf_obs.Json.t list * Kf_obs.Json.t) option
(** Read until the ["result"]/["error"] event for [id], skipping events
    of other pipelined requests: [(non-terminal events for id, terminal
    event)], or [None] if the connection ends first. *)

val close : t -> unit

val request :
  ?id:string ->
  ?session:string ->
  ?workload:string ->
  ?program:string ->
  ?device:string ->
  ?model:string ->
  ?options:(string * Kf_obs.Json.t) list ->
  unit ->
  Kf_obs.Json.t
(** Build a request object (defaults: device [k20x], model
    [proposed]). *)
