(* Minimal blocking client for the serve protocol — what the CLI
   example, the lifecycle tests and the bench driver use. *)

module Json = Kf_obs.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let connect_retry ?(attempts = 50) ?(delay_s = 0.1) path =
  let rec go n =
    match connect path with
    | t -> t
    | exception (Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) as e) ->
        if n <= 1 then raise e
        else begin
          Thread.delay delay_s;
          go (n - 1)
        end
  in
  go (max 1 attempts)

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let send t json = send_line t (Json.to_string json)

let next_event t =
  match input_line t.ic with
  | line -> Some (Json.of_string line)
  | exception (End_of_file | Sys_error _) -> None

let event_kind j = Option.bind (Json.member "event" j) Json.to_string_opt
let event_id j = Option.bind (Json.member "id" j) Json.to_string_opt

let is_terminal j =
  match event_kind j with Some ("result" | "error") -> true | _ -> false

(* Events of concurrent requests interleave on a pipelined connection;
   filter by id and stop at that id's terminal event. *)
let wait_terminal t ~id =
  let rec go acc =
    match next_event t with
    | None -> None
    | Some j ->
        if event_id j <> Some id then go acc
        else if is_terminal j then Some (List.rev acc, j)
        else go (j :: acc)
  in
  go []

let close t =
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- request construction --- *)

let request ?(id = "") ?session ?workload ?program ?(device = "k20x") ?(model = "proposed")
    ?(options = []) () =
  let opt name v f = Option.map (fun v -> (name, f v)) v in
  Json.Obj
    (List.filter_map Fun.id
       [
         Some ("id", Json.Str id);
         opt "session" session (fun s -> Json.Str s);
         opt "workload" workload (fun w -> Json.Str w);
         opt "program" program (fun p -> Json.Str p);
         Some ("device", Json.Str device);
         Some ("model", Json.Str model);
         (if options = [] then None else Some ("options", Json.Obj options));
       ])
