(** Wire protocol of the serve daemon (see DESIGN.md §13).

    Transport: a Unix-domain stream socket carrying line-delimited JSON.
    The client writes one request object per line; the daemon answers
    with a stream of event lines — ["admitted"], ["started"], zero or
    more ["progress"] — terminated by exactly one ["result"] or
    ["error"] event carrying the same ["id"].  Multiple requests may be
    pipelined on one connection; events interleave and are correlated by
    id. *)

exception Bad_request of string
(** A request the daemon refuses to execute: invalid JSON, wrong field
    types, unknown workload/device/model, unparsable inline program.
    Always answered with a structured [Malformed]/[Bad_request] error
    event — never a dropped connection or a crash. *)

type options = {
  generations : int option;  (** GA generation cap *)
  population : int option;
  seed : int option;
  domains : int option;  (** worker domains for this search *)
  max_evaluations : int option;  (** evaluation budget *)
  max_wall_s : float option;  (** wall budget, seconds of search *)
  deadline_s : float option;
      (** hard deadline measured from {e admission} — queue wait counts
          against it; a tripped deadline yields a retriable ["deadline"]
          error *)
  slo_ms : float option;
      (** streaming sessions only: per-decision latency target — when
          the remaining budget is too small for a repair search, the
          decision degrades down the SLO ladder (see
          {!Kf_search.Stream}) instead of erroring *)
  apply : bool;  (** also build + measure the fused program *)
  progress : bool;  (** stream per-generation progress events *)
  inject_rate : float option;
      (** deterministic fault injection for this request (chaos
          testing); faults are quarantined by the guard, never fatal *)
  inject_seed : int option;
}

val default_options : options
(** Everything [None]/[false]: defaults of the underlying solver, no
    deadline, search only. *)

type request = {
  id : string;  (** client-chosen correlation id (echoed on events) *)
  session : string option;
      (** [Some name] makes this a {e streaming} request: the first
          request naming a session opens it (full search over the given
          program), each later request naming it answers the edit
          delta between the session's current program and this one
          (see {!Kf_search.Stream}).  Sessions are daemon-global, so a
          reconnecting client keeps its warm state.  Streaming requests
          reject [apply] and per-search budgets ([slo_ms] is their
          latency knob). *)
  workload : string option;  (** named workload or [suite:...] spec *)
  program_text : string option;  (** inline [.kf] program source *)
  device : string;
  model : string;
  options : options;
}

val parse_request : string -> request
(** Parse and validate one request line.
    @raise Bad_request on any malformed input (total: no other
    exception escapes). *)

val resolve :
  request -> Kf_ir.Program.t * Kf_gpu.Device.t * Kf_search.Objective.model
(** Resolve the request's names.  Only named workloads, [suite:] specs
    and inline program text are accepted — a daemon never reads
    client-supplied file paths.  @raise Bad_request on unknown names or
    unparsable programs. *)

type code = Malformed | Overload | Deadline | Shutdown | Internal

val code_name : code -> string

val retriable : code -> bool
(** [Overload], [Shutdown] and [Deadline] describe daemon state, not the
    request — the same request may succeed on retry.  [Malformed] and
    [Internal] are not retriable. *)

(** {2 Event constructors} — every event carries [("event", kind)] and
    the request id. *)

val admitted : id:string -> queue_depth:int -> Kf_obs.Json.t
val started : id:string -> Kf_obs.Json.t
val progress : id:string -> Kf_search.Hgga.progress -> Kf_obs.Json.t
val error : id:string -> code:code -> message:string -> Kf_obs.Json.t

val result :
  id:string ->
  warm:bool ->
  cache:Kf_search.Objective.cache_stats ->
  ?outcome:Kfuse.Pipeline.outcome ->
  Kf_search.Hgga.result ->
  Kf_obs.Json.t
(** The terminal success event: stop reason, best grouping and cost,
    search statistics, group-cache counters (with the warm-start flag),
    plus measured runtimes and speedup when the request asked for
    [apply]. *)

val cached_result : id:string -> groups:int list list -> cost:float -> Kf_obs.Json.t
(** A result served entirely from the warm store (no search ran):
    [stop = "cached"], [cached = true], zero work counters.  Emitted
    {e before} any deadline check — a fully warm answer is free, so a
    nearly-elapsed deadline must not turn it into an error. *)

val stream_result : id:string -> session:string -> Kf_search.Stream.decision -> Kf_obs.Json.t
(** The terminal event of a streaming request: the decision's version,
    SLO rung, delta statistics (kernels changed, groups reused), plan,
    and per-decision plus cumulative work counters. *)
