(* The kfuse serve daemon.

   Threading model (OCaml 5: systhreads for IO, domains for compute):

     accept thread     select(2) loop on the listening socket; exits on
                       drain and prunes finished connection handlers
     handler threads   one per connection: read request lines, validate,
                       admit into the bounded queue, answer malformed /
                       overload / drain rejections inline
     worker domains    a [Kf_util.Pool] driven by one dispatcher thread;
                       each domain loops taking admitted jobs and
                       executing them behind [Kf_robust.Guard]
     timer thread      periodic warm-cache persistence + polls the
                       signal-set drain flag (signal handlers only flip
                       an atomic — they never touch locks)

   Invariant: every admitted request is answered with exactly one
   terminal event (result or error), whatever happens — faults are
   quarantined by the guard, stage exceptions are classified, drain
   converts queued work into retriable rejections, and the per-job
   exception net converts anything left into a structured internal
   error.  The daemon itself never dies on request content. *)

module Json = Kf_obs.Json
module Metrics = Kf_obs.Metrics
module Pool = Kf_util.Pool
module Pipeline = Kfuse.Pipeline
module Hgga = Kf_search.Hgga
module Objective = Kf_search.Objective
module Stream = Kf_search.Stream
module Snapshot = Kf_search.Snapshot
module Error = Kf_robust.Error
module Guard = Kf_robust.Guard
module Inject = Kf_robust.Inject

type config = {
  socket_path : string;
  workers : int;
  max_queue : int;
  cache_path : string option;
  cache_entries : int;
  max_sessions : int;
  default_slo_ms : float option;
  persist_every_s : float;
  progress_every : int;
  log : string -> unit;
}

let default ~socket_path =
  {
    socket_path;
    workers = 2;
    max_queue = 16;
    cache_path = None;
    cache_entries = 64;
    max_sessions = 8;
    default_slo_ms = None;
    persist_every_s = 30.;
    progress_every = 5;
    log = ignore;
  }

type conn = {
  fd : Unix.file_descr;
  oc : out_channel;
  wlock : Mutex.t;  (* serializes writes; also guards [alive]/[pending] *)
  mutable alive : bool;
  mutable pending : int;  (* admitted-but-unanswered jobs on this connection *)
  done_cv : Condition.t;  (* signaled when [pending] reaches 0 *)
}

type handler = { mutable thread : Thread.t option; mutable finished : bool }
type job = { req : Protocol.request; conn : conn; admit_s : float }

(* A streaming session: the warm state a long-lived client accumulates
   across edits.  The per-session mutex serializes its decisions (two
   queued steps on one session must observe each other's plan);
   [s_current] carries the objective of the in-flight decision so its
   verdicts can be absorbed into the warm store afterwards. *)
type session = {
  s_name : string;
  s_lock : Mutex.t;
  s_device : string;
  s_model : string;
  mutable s_stream : Stream.t option;  (* [None] until version 0 decides *)
  mutable s_current : (string * Objective.t) option;
  mutable s_last_use : int;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  qlock : Mutex.t;
  qcv : Condition.t;
  queue : job Queue.t;
  draining : bool Atomic.t;
  drain_requested : bool Atomic.t;  (* set by signal handlers *)
  hlock : Mutex.t;
  mutable handlers : handler list;
  mutable conns : conn list;
  cache : Cache_store.t;
  slock : Mutex.t;  (* guards the session registry and its LRU tick *)
  sessions : (string, session) Hashtbl.t;
  mutable session_tick : int;
  mutable accept_thread : Thread.t option;
  mutable dispatch_thread : Thread.t option;
  mutable timer_thread : Thread.t option;
}

let now () = Unix.gettimeofday ()

(* --- metrics --- *)

let m_requests = lazy (Metrics.counter "serve.requests")
let m_malformed = lazy (Metrics.counter "serve.malformed")
let m_rejected_overload = lazy (Metrics.counter "serve.rejected_overload")
let m_rejected_shutdown = lazy (Metrics.counter "serve.rejected_shutdown")
let m_deadline_missed = lazy (Metrics.counter "serve.deadline_missed")
let m_completed = lazy (Metrics.counter "serve.completed")
let m_internal_errors = lazy (Metrics.counter "serve.internal_errors")
let m_warm_requests = lazy (Metrics.counter "serve.warm_requests")
let m_cached_results = lazy (Metrics.counter "serve.cached_results")
let m_stream_decisions = lazy (Metrics.counter "serve.stream.decisions")
let m_stream_slo_tripped = lazy (Metrics.counter "serve.stream.slo_tripped")
let m_stream_evicted = lazy (Metrics.counter "serve.stream.evicted")
let g_stream_sessions = lazy (Metrics.gauge "serve.stream.sessions")
let g_queue_depth = lazy (Metrics.gauge "serve.queue_depth")
let g_cache_programs = lazy (Metrics.gauge "serve.cache.programs")
let g_cache_hit_rate = lazy (Metrics.gauge "serve.cache.hit_rate")
let g_cache_evictions = lazy (Metrics.gauge "serve.cache.evictions")
let h_latency = lazy (Metrics.histogram "serve.latency_s")

(* --- connection IO --- *)

let send conn json =
  Mutex.lock conn.wlock;
  (if conn.alive then
     try
       output_string conn.oc (Json.to_string json);
       output_char conn.oc '\n';
       flush conn.oc
     with Sys_error _ | Unix.Unix_error _ ->
       (* client went away: stop writing, but keep serving its admitted
          jobs to completion (their results are simply dropped) *)
       conn.alive <- false);
  Mutex.unlock conn.wlock

let pending_incr conn =
  Mutex.lock conn.wlock;
  conn.pending <- conn.pending + 1;
  Mutex.unlock conn.wlock

let pending_decr conn =
  Mutex.lock conn.wlock;
  conn.pending <- conn.pending - 1;
  if conn.pending = 0 then Condition.broadcast conn.done_cv;
  Mutex.unlock conn.wlock

(* --- request execution (worker domains) --- *)

let params_of (o : Protocol.options) =
  let p = Hgga.default_params in
  {
    p with
    Hgga.max_generations = Option.value o.generations ~default:p.Hgga.max_generations;
    population_size = Option.value o.population ~default:p.Hgga.population_size;
    seed = Option.value o.seed ~default:p.Hgga.seed;
    domains = Option.value o.domains ~default:p.Hgga.domains;
  }

(* Identifies the search a stored plan answers.  [domains] is
   deliberately excluded: the determinism contract makes the result
   bit-identical for any worker-domain count, so a plan computed with 2
   domains answers a 4-domain request exactly. *)
let params_fingerprint (p : Hgga.params) =
  Printf.sprintf "hgga.1|pop%d|gen%d|stall%d|cx%h|mut%h|tour%d|elite%d|seed%d|isl%d|mi%d|ms%d"
    p.Hgga.population_size p.Hgga.max_generations p.Hgga.stall_generations
    p.Hgga.crossover_rate p.Hgga.mutation_rate p.Hgga.tournament_size p.Hgga.elite
    p.Hgga.seed p.Hgga.islands p.Hgga.migration_interval p.Hgga.migration_size

(* The deadline is measured from admission, so queue wait counts against
   it; whatever remains at start becomes a wall budget.  [`Deadline] vs
   [`User] records which bound is the tighter one, so a Wall_budget stop
   can be reported as a deadline miss only when the deadline caused it. *)
let wall_budget (o : Protocol.options) ~remaining =
  match (o.max_wall_s, remaining) with
  | None, None -> (`None, None)
  | Some w, None -> (`User, Some w)
  | None, Some r -> (`Deadline, Some r)
  | Some w, Some r -> if r < w then (`Deadline, Some r) else (`User, Some w)

let run_request t job ~started_s ~remaining =
  let req = job.req in
  let o = req.options in
  let program, device, model = Protocol.resolve req in
  let key = Cache_store.key ~program ~device ~model in
  let seed = Cache_store.find t.cache key in
  let warm = seed <> [] in
  if warm then Metrics.incr (Lazy.force m_warm_requests);
  match Pipeline.prepare_safe ~device program with
  | Error e -> send job.conn (Protocol.error ~id:req.id ~code:Internal ~message:(Error.to_string e))
  | Ok ctx ->
      let faults = Objective.zero_faults () in
      let inject =
        Option.map
          (fun rate -> Inject.create ~faults (Inject.config ?seed:o.inject_seed rate))
          o.inject_rate
      in
      let guard = Guard.guarded ?inject faults in
      let obj = Pipeline.objective ~model ~guard ~faults ctx in
      Objective.seed_group_verdicts obj seed;
      let wall_source, max_wall_s = wall_budget o ~remaining in
      let budget =
        { Hgga.unlimited with Hgga.max_evaluations = o.max_evaluations; max_wall_s }
      in
      let on_generation =
        if not o.progress then None
        else
          Some
            (fun (p : Hgga.progress) ->
              if p.Hgga.p_generation mod max 1 t.config.progress_every = 0 then
                send job.conn (Protocol.progress ~id:req.id p))
      in
      let interrupt () = Atomic.get t.draining in
      let finish () =
        (* the request's checkpoint: whatever was evaluated — even by an
           interrupted or failed search — warms every later request *)
        Cache_store.absorb t.cache key (Objective.export_group_verdicts obj);
        Metrics.set (Lazy.force g_cache_programs) (float_of_int (Cache_store.programs t.cache));
        Metrics.set (Lazy.force g_cache_evictions)
          (float_of_int (Cache_store.evictions t.cache));
        Metrics.set (Lazy.force g_cache_hit_rate) (Objective.cache_hit_rate obj)
      in
      (match Pipeline.search_safe ~params:(params_of o) ~budget ?on_generation ~interrupt ctx obj with
      | Error e ->
          Metrics.incr (Lazy.force m_internal_errors);
          send job.conn (Protocol.error ~id:req.id ~code:Internal ~message:(Error.to_string e))
      | Ok result ->
          let stats = result.Hgga.stats in
          let deadline_tripped =
            stats.Hgga.stop = Hgga.Wall_budget && wall_source = `Deadline
          in
          if deadline_tripped then begin
            Metrics.incr (Lazy.force m_deadline_missed);
            send job.conn
              (Protocol.error ~id:req.id ~code:Deadline
                 ~message:
                   (Printf.sprintf
                      "deadline of %.3f s exceeded (%.3f s queued, %d evaluations done)"
                      (Option.get o.deadline_s) (started_s -. job.admit_s)
                      stats.Hgga.evaluations))
          end
          else begin
            let cache = Objective.cache_stats obj in
            let outcome =
              if not o.apply then Ok None
              else Result.map Option.some (Pipeline.apply_safe ctx obj result)
            in
            match outcome with
            | Error e ->
                Metrics.incr (Lazy.force m_internal_errors);
                send job.conn
                  (Protocol.error ~id:req.id ~code:Internal ~message:(Error.to_string e))
            | Ok outcome ->
                (* A search that ran to its own stop rule (not a budget,
                   not an interrupt, not under fault injection) is the
                   triple's definitive answer for these parameters:
                   store it so an identical repeat request skips the
                   search entirely. *)
                if
                  o.inject_rate = None
                  && (stats.Hgga.stop = Hgga.Converged
                     || stats.Hgga.stop = Hgga.Generation_cap)
                then
                  Cache_store.store_plan t.cache key
                    {
                      Snapshot.Cache.groups = result.Hgga.groups;
                      cost = result.Hgga.cost;
                      fingerprint = params_fingerprint (params_of o);
                    };
                Metrics.incr (Lazy.force m_completed);
                Metrics.observe (Lazy.force h_latency) (now () -. job.admit_s);
                send job.conn (Protocol.result ~id:req.id ~warm ~cache ?outcome result)
          end);
      finish ()

(* The satellite of the deadline bugfix: a request fully answerable from
   the warm store costs no search, so it must be served even when the
   deadline has (nearly) elapsed at dequeue — the cache probe runs
   *before* remaining time is converted into a wall budget, and before
   the zero-budget rejection.  Only pure search requests qualify: apply
   work, explicit budgets and fault injection all change the answer or
   require running real work. *)
let try_cached t job =
  let req = job.req in
  let o = req.options in
  if
    req.Protocol.session <> None || o.Protocol.apply || o.Protocol.max_evaluations <> None
    || o.Protocol.max_wall_s <> None || o.Protocol.inject_rate <> None
  then false
  else begin
    let program, device, model = Protocol.resolve req in
    let key = Cache_store.key ~program ~device ~model in
    match Cache_store.find_plan t.cache key with
    | Some p when String.equal p.Snapshot.Cache.fingerprint (params_fingerprint (params_of o))
      ->
        Metrics.incr (Lazy.force m_warm_requests);
        Metrics.incr (Lazy.force m_cached_results);
        Metrics.incr (Lazy.force m_completed);
        Metrics.observe (Lazy.force h_latency) (now () -. job.admit_s);
        send job.conn (Protocol.started ~id:req.id);
        send job.conn
          (Protocol.cached_result ~id:req.id ~groups:p.Snapshot.Cache.groups
             ~cost:p.Snapshot.Cache.cost);
        true
    | _ -> false
  end

(* --- streaming sessions --- *)

let stream_config t (o : Protocol.options) =
  let p = params_of o in
  let d = Stream.default_config in
  {
    Stream.params = p;
    repair =
      {
        p with
        Hgga.population_size = max 4 (p.Hgga.population_size / 2);
        max_generations = max 50 (p.Hgga.max_generations / 2);
        stall_generations = max 10 (p.Hgga.stall_generations / 2);
      };
    slo_s =
      (match o.Protocol.slo_ms with
      | Some ms -> Some (ms /. 1000.)
      | None -> Option.map (fun ms -> ms /. 1000.) t.config.default_slo_ms);
    min_search_s = d.Stream.min_search_s;
  }

(* Find or create the session under the registry lock; the returned
   session is then driven under its own lock.  The registry is LRU-
   bounded like the warm store — a session's searchable state is
   rebuilt from scratch (one full search) if it was evicted. *)
let session_acquire t ~name ~device ~model =
  Mutex.lock t.slock;
  let release () = Mutex.unlock t.slock in
  match Hashtbl.find_opt t.sessions name with
  | Some s ->
      if s.s_device <> device || s.s_model <> model then begin
        release ();
        Protocol.(
          raise
            (Bad_request
               (Printf.sprintf "session %S is bound to device %s / model %s" name s.s_device
                  s.s_model)))
      end;
      t.session_tick <- t.session_tick + 1;
      s.s_last_use <- t.session_tick;
      release ();
      s
  | None ->
      while Hashtbl.length t.sessions >= t.config.max_sessions do
        let victim = ref None in
        Hashtbl.iter
          (fun _ s ->
            match !victim with
            | Some v when v.s_last_use <= s.s_last_use -> ()
            | _ -> victim := Some s)
          t.sessions;
        match !victim with
        | Some v ->
            Hashtbl.remove t.sessions v.s_name;
            Metrics.incr (Lazy.force m_stream_evicted)
        | None -> ()
      done;
      t.session_tick <- t.session_tick + 1;
      let s =
        {
          s_name = name;
          s_lock = Mutex.create ();
          s_device = device;
          s_model = model;
          s_stream = None;
          s_current = None;
          s_last_use = t.session_tick;
        }
      in
      Hashtbl.replace t.sessions name s;
      Metrics.set (Lazy.force g_stream_sessions) (float_of_int (Hashtbl.length t.sessions));
      release ();
      s

let run_stream t job =
  let req = job.req in
  let name = Option.get req.Protocol.session in
  let program, device, model = Protocol.resolve req in
  let s = session_acquire t ~name ~device:req.Protocol.device ~model:req.Protocol.model in
  Mutex.lock s.s_lock;
  Fun.protect
    ~finally:(fun () ->
      s.s_current <- None;
      Mutex.unlock s.s_lock)
    (fun () ->
      (* Per-version objectives seed from (and report back to) the warm
         store: the digest content-addresses the exact program version,
         so a client revisiting a version gets its verdicts back free —
         and soundly, since verdicts never cross distinct digests. *)
      let env p =
        let obj = Pipeline.objective ~model (Pipeline.prepare ~device p) in
        let key = Cache_store.key ~program:p ~device ~model in
        Objective.seed_group_verdicts obj (Cache_store.find t.cache key);
        s.s_current <- Some (key, obj);
        obj
      in
      let decision =
        match s.s_stream with
        | None ->
            let stream = Stream.create ~config:(stream_config t req.Protocol.options) env program in
            s.s_stream <- Some stream;
            Stream.last stream
        | Some stream -> Stream.step stream program
      in
      (match s.s_current with
      | Some (key, obj) ->
          Cache_store.absorb t.cache key (Objective.export_group_verdicts obj);
          Metrics.set (Lazy.force g_cache_programs)
            (float_of_int (Cache_store.programs t.cache));
          Metrics.set (Lazy.force g_cache_evictions)
            (float_of_int (Cache_store.evictions t.cache))
      | None -> ());
      Metrics.incr (Lazy.force m_stream_decisions);
      if decision.Stream.d_slo_tripped then Metrics.incr (Lazy.force m_stream_slo_tripped);
      Metrics.incr (Lazy.force m_completed);
      Metrics.observe (Lazy.force h_latency) (now () -. job.admit_s);
      send job.conn (Protocol.stream_result ~id:req.Protocol.id ~session:name decision))

let reject t job ~code ~message =
  (match code with
  | Protocol.Shutdown -> Metrics.incr (Lazy.force m_rejected_shutdown)
  | Protocol.Deadline -> Metrics.incr (Lazy.force m_deadline_missed)
  | _ -> ());
  send job.conn (Protocol.error ~id:job.req.id ~code ~message);
  ignore t

let execute t job =
  match
    if Atomic.get t.draining then
      reject t job ~code:Protocol.Shutdown ~message:"daemon is draining; retry later"
    else if try_cached t job then ()
      (* answered from the warm store — deliberately before the deadline
         arithmetic below: a warm answer is free, so even a request whose
         deadline fully elapsed in the queue gets its result *)
    else begin
      let started_s = now () in
      let queued_s = started_s -. job.admit_s in
      let remaining = Option.map (fun d -> d -. queued_s) job.req.options.deadline_s in
      match remaining with
      | Some r when r <= 0. ->
          reject t job ~code:Protocol.Deadline
            ~message:
              (Printf.sprintf "deadline of %.3f s passed after %.3f s in queue"
                 (Option.get job.req.options.deadline_s) queued_s)
      | remaining ->
          send job.conn (Protocol.started ~id:job.req.id);
          if job.req.Protocol.session <> None then run_stream t job
          else run_request t job ~started_s ~remaining
    end
  with
  | () -> ()
  | exception Protocol.Bad_request msg ->
      Metrics.incr (Lazy.force m_malformed);
      send job.conn (Protocol.error ~id:job.req.id ~code:Malformed ~message:msg)
  | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
  | exception e ->
      (* the last net: nothing a request does may take a worker down *)
      Metrics.incr (Lazy.force m_internal_errors);
      send job.conn
        (Protocol.error ~id:job.req.id ~code:Internal ~message:(Printexc.to_string e))

let rec worker_loop t =
  Mutex.lock t.qlock;
  while Queue.is_empty t.queue && not (Atomic.get t.draining) do
    Condition.wait t.qcv t.qlock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.qlock (* draining and drained *)
  else begin
    let job = Queue.pop t.queue in
    Metrics.set (Lazy.force g_queue_depth) (float_of_int (Queue.length t.queue));
    Mutex.unlock t.qlock;
    execute t job;
    pending_decr job.conn;
    worker_loop t
  end

(* --- admission (handler threads) --- *)

let admit t conn req =
  Mutex.lock t.qlock;
  if Atomic.get t.draining then begin
    Mutex.unlock t.qlock;
    Metrics.incr (Lazy.force m_rejected_shutdown);
    send conn
      (Protocol.error ~id:req.Protocol.id ~code:Shutdown
         ~message:"daemon is draining; retry later")
  end
  else if Queue.length t.queue >= t.config.max_queue then begin
    Mutex.unlock t.qlock;
    Metrics.incr (Lazy.force m_rejected_overload);
    send conn
      (Protocol.error ~id:req.Protocol.id ~code:Overload
         ~message:
           (Printf.sprintf "admission queue full (%d queued); retry later"
              t.config.max_queue))
  end
  else begin
    pending_incr conn;
    (* The admitted event goes out before the job is published: a worker
       can otherwise pop the job and write "started" first, inverting
       the documented admitted -> started order on the wire.  The send
       happens outside qlock — a client that never reads its socket must
       only ever stall its own connection, not global admission.  (A
       concurrent admit can slip in during the write, so the queue may
       transiently overshoot max_queue by the number of in-flight
       admissions — bounded by the connection count.) *)
    let depth = Queue.length t.queue + 1 in
    Mutex.unlock t.qlock;
    Metrics.incr (Lazy.force m_requests);
    send conn (Protocol.admitted ~id:req.Protocol.id ~queue_depth:depth);
    Mutex.lock t.qlock;
    if Atomic.get t.draining then begin
      (* the drain won the race while we were writing: the job was never
         queued, so reject it like any other queued-but-unstarted work *)
      Mutex.unlock t.qlock;
      Metrics.incr (Lazy.force m_rejected_shutdown);
      send conn
        (Protocol.error ~id:req.Protocol.id ~code:Shutdown
           ~message:"daemon is draining; retry later");
      pending_decr conn
    end
    else begin
      Queue.push { req; conn; admit_s = now () } t.queue;
      Metrics.set (Lazy.force g_queue_depth) (float_of_int (Queue.length t.queue));
      Condition.signal t.qcv;
      Mutex.unlock t.qlock
    end
  end

(* Best-effort id recovery for the error event of an unparsable request. *)
let id_of_line line =
  match Json.of_string line with
  | Json.Obj _ as j -> (
      match Json.member "id" j with Some (Json.Str s) -> s | _ -> "")
  | _ -> ""
  | exception Json.Malformed _ -> ""

let process t conn line =
  match Protocol.parse_request line with
  | req -> admit t conn req
  | exception Protocol.Bad_request msg ->
      Metrics.incr (Lazy.force m_malformed);
      send conn (Protocol.error ~id:(id_of_line line) ~code:Malformed ~message:msg)

let handle t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
        if String.trim line <> "" then process t conn line;
        loop ()
  in
  loop ();
  (* the client is done sending; answer every admitted job before
     tearing the connection down *)
  Mutex.lock conn.wlock;
  while conn.pending > 0 do
    Condition.wait conn.done_cv conn.wlock
  done;
  conn.alive <- false;
  Mutex.unlock conn.wlock;
  (* deregister before closing so drain never shutdowns a recycled fd *)
  Mutex.lock t.hlock;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.hlock;
  (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

(* --- accept loop --- *)

let join_handler h = match h.thread with Some th -> Thread.join th | None -> ()

let prune_handlers t =
  Mutex.lock t.hlock;
  let finished, live = List.partition (fun h -> h.finished) t.handlers in
  t.handlers <- live;
  Mutex.unlock t.hlock;
  List.iter join_handler finished

let spawn_handler t fd =
  let conn =
    {
      fd;
      oc = Unix.out_channel_of_descr fd;
      wlock = Mutex.create ();
      alive = true;
      pending = 0;
      done_cv = Condition.create ();
    }
  in
  let handler = { thread = None; finished = false } in
  Mutex.lock t.hlock;
  t.handlers <- handler :: t.handlers;
  t.conns <- conn :: t.conns;
  Mutex.unlock t.hlock;
  handler.thread <-
    Some
      (Thread.create
         (fun () ->
           (match handle t conn with
           | () -> ()
           | exception e ->
               t.config.log (Printf.sprintf "handler error: %s" (Printexc.to_string e)));
           handler.finished <- true)
         ());
  (* a connection that raced the drain flag would otherwise block its
     handler in input_line forever — force the EOF drain relies on *)
  if Atomic.get t.draining then
    try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.draining) then begin
      prune_handlers t;
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ -> spawn_handler t fd; loop ()
          | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK | ECONNABORTED), _, _)
            -> loop ())
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove t.config.socket_path with Sys_error _ -> ())

(* --- persistence --- *)

let persist t =
  match t.config.cache_path with
  | Some path when Cache_store.dirty t.cache -> begin
      match Cache_store.save t.cache path with
      | () ->
          t.config.log
            (Printf.sprintf "cache: persisted %d program(s), %d verdict(s) to %s"
               (Cache_store.programs t.cache)
               (Cache_store.verdict_count t.cache)
               path)
      | exception Sys_error msg -> t.config.log (Printf.sprintf "cache save failed: %s" msg)
    end
  | _ -> ()

(* --- drain --- *)

let draining t = Atomic.get t.draining

let drain t =
  if not (Atomic.exchange t.draining true) then begin
    t.config.log "draining: rejecting new work, finishing in-flight requests";
    (* wake idle workers so they can observe the flag and exit *)
    Mutex.lock t.qlock;
    Condition.broadcast t.qcv;
    Mutex.unlock t.qlock;
    (* unblock handler threads stuck in input_line: shutting down the
       receive side delivers EOF without touching in-flight writes *)
    Mutex.lock t.hlock;
    let conns = t.conns in
    Mutex.unlock t.hlock;
    List.iter
      (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      conns
  end

let timer_loop t =
  let tick = 0.2 in
  let acc = ref 0. in
  while not (Atomic.get t.draining) do
    Thread.delay tick;
    (* signal handlers only flip this atomic; the actual drain — which
       takes locks — runs here, in a plain thread *)
    if Atomic.get t.drain_requested then drain t;
    acc := !acc +. tick;
    if !acc >= t.config.persist_every_s then begin
      acc := 0.;
      persist t
    end
  done

(* --- lifecycle --- *)

let start config =
  if config.workers < 1 then invalid_arg "Server.start: workers must be positive";
  if config.max_queue < 1 then invalid_arg "Server.start: max_queue must be positive";
  if config.max_sessions < 1 then invalid_arg "Server.start: max_sessions must be positive";
  (* a broken client connection must be an EPIPE result, not a fatal signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match
     Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
     Unix.listen listen_fd 64
   with
  | () -> ()
  | exception e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e);
  let cache = Cache_store.create ~max_entries:config.cache_entries () in
  (match config.cache_path with
  | Some path -> begin
      match Cache_store.load_if_exists cache path with
      | () ->
          if Cache_store.programs cache > 0 then
            config.log
              (Printf.sprintf "cache: restored %d program(s), %d verdict(s) from %s"
                 (Cache_store.programs cache) (Cache_store.verdict_count cache) path)
      | exception (Sys_error _ | Kf_search.Snapshot.Malformed _) ->
          (* a corrupt cache file only costs warmth *)
          config.log (Printf.sprintf "cache: ignoring unreadable %s" path)
    end
  | None -> ());
  let t =
    {
      config;
      listen_fd;
      qlock = Mutex.create ();
      qcv = Condition.create ();
      queue = Queue.create ();
      draining = Atomic.make false;
      drain_requested = Atomic.make false;
      hlock = Mutex.create ();
      handlers = [];
      conns = [];
      cache;
      slock = Mutex.create ();
      sessions = Hashtbl.create 8;
      session_tick = 0;
      accept_thread = None;
      dispatch_thread = None;
      timer_thread = None;
    }
  in
  (* the dispatcher blocks in Pool.broadcast for the daemon's whole life;
     each worker domain loops on the admission queue (one long-lived job
     per worker — not a task list to steal from) *)
  let pool = Pool.create config.workers in
  t.dispatch_thread <-
    Some
      (Thread.create
         (fun () ->
           Fun.protect
             ~finally:(fun () -> Pool.shutdown pool)
             (fun () -> Pool.broadcast pool (fun _w -> worker_loop t)))
         ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.timer_thread <- Some (Thread.create (fun () -> timer_loop t) ());
  config.log (Printf.sprintf "listening on %s (%d workers, queue %d)" config.socket_path
     config.workers config.max_queue);
  t

let request_drain t = Atomic.set t.drain_requested true

let install_signal_handlers t =
  let request _ = Atomic.set t.drain_requested true in
  List.iter
    (fun s -> try Sys.set_signal s (Sys.Signal_handle request) with Invalid_argument _ -> ())
    [ Sys.sigterm; Sys.sigint ]

let wait t =
  let join = function Some th -> Thread.join th | None -> () in
  join t.accept_thread;
  (* accept loop exits only once draining; workers drain the queue *)
  join t.dispatch_thread;
  join t.timer_thread;
  (* handlers: every job is answered by now, so they are only waiting on
     client EOF, which drain forced *)
  let rec join_handlers () =
    Mutex.lock t.hlock;
    let hs = t.handlers in
    t.handlers <- [];
    Mutex.unlock t.hlock;
    match hs with
    | [] -> ()
    | hs ->
        List.iter join_handler hs;
        join_handlers ()
  in
  join_handlers ();
  persist t;
  t.config.log "drained"

let stop t =
  drain t;
  wait t

let cache_programs t = Cache_store.programs t.cache
let cache_verdicts t = Cache_store.verdict_count t.cache
let cache_evictions t = Cache_store.evictions t.cache

let stream_sessions t =
  Mutex.lock t.slock;
  let n = Hashtbl.length t.sessions in
  Mutex.unlock t.slock;
  n
