(* Wire protocol of the serve daemon: line-delimited JSON over a Unix
   socket.  One request line in; a stream of event lines out, ending in
   exactly one "result" or "error" event per request.  Parsing is total:
   any malformed input maps to [Bad_request], never an escaped
   exception. *)

module Json = Kf_obs.Json
module Device = Kf_gpu.Device
module Program = Kf_ir.Program
module Objective = Kf_search.Objective
module Hgga = Kf_search.Hgga
module Stream = Kf_search.Stream
module Suite = Kf_workloads.Suite

exception Bad_request of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad_request s)) fmt

type options = {
  generations : int option;
  population : int option;
  seed : int option;
  domains : int option;
  max_evaluations : int option;
  max_wall_s : float option;
  deadline_s : float option;
  slo_ms : float option;
  apply : bool;
  progress : bool;
  inject_rate : float option;
  inject_seed : int option;
}

let default_options =
  {
    generations = None;
    population = None;
    seed = None;
    domains = None;
    max_evaluations = None;
    max_wall_s = None;
    deadline_s = None;
    slo_ms = None;
    apply = false;
    progress = false;
    inject_rate = None;
    inject_seed = None;
  }

type request = {
  id : string;
  session : string option;  (** streaming session name; [None] = one-shot *)
  workload : string option;  (** named / suite: spec *)
  program_text : string option;  (** inline .kf source *)
  device : string;
  model : string;
  options : options;
}

(* --- request parsing --- *)

let as_string name = function
  | Json.Str s -> s
  | _ -> bad "field %S must be a string" name

let opt_field obj name f = Option.map (f name) (Json.member name obj)

let int_field obj name =
  opt_field obj name (fun name v ->
      match Json.to_int_opt v with
      | Some i -> i
      | None -> bad "field %S must be an integer" name)

let float_field obj name =
  opt_field obj name (fun name v ->
      match Json.to_float_opt v with
      | Some f when Float.is_finite f -> f
      | _ -> bad "field %S must be a finite number" name)

let bool_field obj name ~default =
  match Json.member name obj with
  | None -> default
  | Some (Json.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" name

let positive name = function
  | Some v when v <= 0 -> bad "field %S must be positive" name
  | v -> v

let positive_f name = function
  | Some v when v <= 0. -> bad "field %S must be positive" name
  | v -> v

let parse_options j =
  match j with
  | None -> default_options
  | Some (Json.Obj _ as obj) ->
      let inject_rate =
        match float_field obj "inject_rate" with
        | Some r when r < 0. || r > 1. -> bad "field \"inject_rate\" must be in [0,1]"
        | r -> r
      in
      {
        generations = positive "generations" (int_field obj "generations");
        population = positive "population" (int_field obj "population");
        seed = int_field obj "seed";
        domains = positive "domains" (int_field obj "domains");
        max_evaluations = positive "max_evaluations" (int_field obj "max_evaluations");
        max_wall_s = positive_f "max_wall_s" (float_field obj "max_wall_s");
        deadline_s = positive_f "deadline_s" (float_field obj "deadline_s");
        slo_ms = positive_f "slo_ms" (float_field obj "slo_ms");
        apply = bool_field obj "apply" ~default:false;
        progress = bool_field obj "progress" ~default:false;
        inject_rate;
        inject_seed = int_field obj "inject_seed";
      }
  | Some _ -> bad "field \"options\" must be an object"

let parse_request line =
  let j =
    match Json.of_string line with
    | j -> j
    | exception Json.Malformed msg -> bad "invalid JSON: %s" msg
  in
  (match j with Json.Obj _ -> () | _ -> bad "request must be a JSON object");
  let str_field name = Option.map (as_string name) (Json.member name j) in
  let workload = str_field "workload" in
  let program_text = str_field "program" in
  (match (workload, program_text) with
  | None, None -> bad "request needs a \"workload\" name or an inline \"program\""
  | Some _, Some _ -> bad "\"workload\" and \"program\" are mutually exclusive"
  | _ -> ());
  let session =
    match str_field "session" with
    | Some "" -> bad "field \"session\" must be non-empty"
    | s -> s
  in
  let options = parse_options (Json.member "options" j) in
  (* A streamed decision answers the current version's plan; building
     and measuring the fused program per edit is a different (offline)
     job, and per-search budget knobs would break the warm accounting. *)
  if session <> None then begin
    if options.apply then bad "\"apply\" is not available on streaming sessions";
    if options.max_evaluations <> None || options.max_wall_s <> None then
      bad "streaming sessions use \"slo_ms\", not search budgets"
  end;
  {
    id = Option.value (str_field "id") ~default:"";
    session;
    workload;
    program_text;
    device = Option.value (str_field "device") ~default:"k20x";
    model = Option.value (str_field "model") ~default:"proposed";
    options;
  }

(* --- resolution (name -> program / device / model) --- *)

let device_of_name = function
  | "k20x" -> Device.k20x
  | "k40" -> Device.k40
  | "gtx750ti" | "maxwell" -> Device.gtx750ti
  | other -> bad "unknown device %S (k20x, k40, gtx750ti)" other

let model_of_name = function
  | "proposed" -> Objective.Proposed
  | "roofline" -> Objective.Roofline
  | "simple" -> Objective.Simple
  | "mwp" -> Objective.Mwp
  | other -> bad "unknown model %S (proposed, roofline, simple, mwp)" other

let has_prefix s p = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let suite_config spec =
  List.fold_left
    (fun (c : Suite.config) kv ->
      let int_v name v =
        match int_of_string_opt v with
        | Some i -> i
        | None -> bad "suite attribute %s=%S is not an integer" name v
      in
      match String.split_on_char '=' kv with
      | [ "kernels"; v ] -> { c with Suite.kernels = int_v "kernels" v }
      | [ "arrays"; v ] -> { c with Suite.arrays = int_v "arrays" v }
      | [ "copies"; v ] -> { c with Suite.data_copies = int_v "copies" v }
      | [ "sharing"; v ] -> { c with Suite.sharing_set = int_v "sharing" v }
      | [ "load"; v ] -> { c with Suite.thread_load = int_v "load" v }
      | [ "kinship"; v ] -> { c with Suite.kinship = int_v "kinship" v }
      | [ "seed"; v ] -> { c with Suite.seed = int_v "seed" v }
      | _ -> bad "unknown suite attribute %S" kv)
    Suite.default (String.split_on_char ',' spec)

(* The daemon resolves only named workloads, suite: specs and inline
   program text — never client-supplied file paths. *)
let resolve_program req =
  match (req.workload, req.program_text) with
  | Some name, _ -> begin
      match name with
      | "motivating" -> Kf_workloads.Motivating.program ()
      | "cloverleaf" -> Kf_workloads.Cloverleaf.program ()
      | "tealeaf" -> Kf_workloads.Tealeaf.program ()
      | "scale-les" -> Kf_workloads.Scale_les.program ()
      | "scale-les-rk" -> Kf_workloads.Scale_les.rk_core ()
      | "homme" -> Kf_workloads.Homme.program ()
      | s when has_prefix s "suite:" -> begin
          match Suite.generate (suite_config (String.sub s 6 (String.length s - 6))) with
          | p -> p
          | exception Invalid_argument msg -> bad "bad suite spec: %s" msg
        end
      | other -> bad "unknown workload %S" other
    end
  | None, Some text -> begin
      match Kf_ir.Program_io.parse text with
      | p -> p
      | exception Kf_ir.Program_io.Parse_error (line, msg) ->
          bad "program parse error at line %d: %s" line msg
      | exception Invalid_argument msg -> bad "invalid program: %s" msg
    end
  | None, None -> bad "request needs a \"workload\" name or an inline \"program\""

let resolve req = (resolve_program req, device_of_name req.device, model_of_name req.model)

(* --- error taxonomy --- *)

type code = Malformed | Overload | Deadline | Shutdown | Internal

let code_name = function
  | Malformed -> "malformed"
  | Overload -> "overload"
  | Deadline -> "deadline"
  | Shutdown -> "shutdown"
  | Internal -> "internal"

(* Overload and drain rejections — and a missed deadline — are about the
   daemon's state, not the request: the same request can succeed later. *)
let retriable = function
  | Overload | Shutdown | Deadline -> true
  | Malformed | Internal -> false

(* --- event construction --- *)

let event kind id rest = Json.Obj (("event", Json.Str kind) :: ("id", Json.Str id) :: rest)

let admitted ~id ~queue_depth = event "admitted" id [ ("queue_depth", Json.Int queue_depth) ]
let started ~id = event "started" id []

let progress ~id (p : Hgga.progress) =
  event "progress" id
    [
      ("generation", Json.Int p.Hgga.p_generation);
      ("best_cost", Json.Float p.Hgga.p_best_cost);
      ("stall", Json.Int p.Hgga.p_stall);
      ("evaluations", Json.Int p.Hgga.p_evaluations);
      ("wall_s", Json.Float p.Hgga.p_wall_s);
    ]

let error ~id ~code ~message =
  event "error" id
    [
      ("code", Json.Str (code_name code));
      ("retriable", Json.Bool (retriable code));
      ("message", Json.Str message);
    ]

let groups_json groups =
  Json.Arr (List.map (fun g -> Json.Arr (List.map (fun k -> Json.Int k) g)) groups)

let result ~id ~warm ~cache:(c : Objective.cache_stats) ?outcome (r : Hgga.result) =
  let s = r.Hgga.stats in
  let probes = c.Objective.hits + c.Objective.misses in
  let hit_rate =
    if probes = 0 then 0. else float_of_int c.Objective.hits /. float_of_int probes
  in
  let apply_fields =
    match outcome with
    | None -> []
    | Some (o : Kfuse.Pipeline.outcome) ->
        [
          ("original_ms", Json.Float (o.Kfuse.Pipeline.context.Kfuse.Pipeline.original_runtime *. 1e3));
          ("fused_ms", Json.Float (o.Kfuse.Pipeline.fused_runtime *. 1e3));
          ("speedup", Json.Float o.Kfuse.Pipeline.speedup);
        ]
  in
  event "result" id
    ([
       ("stop", Json.Str (Hgga.stop_reason_name s.Hgga.stop));
       ("warm", Json.Bool warm);
       ("groups", groups_json r.Hgga.groups);
       ("cost", Json.Float r.Hgga.cost);
       ("generations", Json.Int s.Hgga.generations);
       ("evaluations", Json.Int s.Hgga.evaluations);
       ("wall_s", Json.Float s.Hgga.wall_time_s);
       ( "cache",
         Json.Obj
           [
             ("hits", Json.Int c.Objective.hits);
             ("misses", Json.Int c.Objective.misses);
             ("hit_rate", Json.Float hit_rate);
           ] );
     ]
    @ apply_fields)

(* A result served entirely from the warm store: no search ran, so there
   are no stats to report — the ["cached"] marker tells the client the
   numbers describe the original (cached) search's answer, not work done
   for this request. *)
let cached_result ~id ~groups ~cost =
  event "result" id
    [
      ("stop", Json.Str "cached");
      ("warm", Json.Bool true);
      ("cached", Json.Bool true);
      ("groups", groups_json groups);
      ("cost", Json.Float cost);
      ("generations", Json.Int 0);
      ("evaluations", Json.Int 0);
      ("wall_s", Json.Float 0.);
    ]

let stream_result ~id ~session (d : Stream.decision) =
  event "result" id
    [
      ("session", Json.Str session);
      ("version", Json.Int d.Stream.d_version);
      ("rung", Json.Str (Stream.rung_name d.Stream.d_rung));
      ("stop", Json.Str (Hgga.stop_reason_name d.Stream.d_stop));
      ("slo_tripped", Json.Bool d.Stream.d_slo_tripped);
      ("changed", Json.Int d.Stream.d_changed);
      ("reused_groups", Json.Int d.Stream.d_reused_groups);
      ("groups", groups_json d.Stream.d_groups);
      ("cost", Json.Float d.Stream.d_cost);
      ("evaluations", Json.Int d.Stream.d_evaluations);
      ("wall_s", Json.Float d.Stream.d_wall_s);
      ("total_evaluations", Json.Int d.Stream.d_total_evaluations);
      ("total_wall_s", Json.Float d.Stream.d_total_wall_s);
    ]
