(** The hardened [kfuse serve] daemon (see DESIGN.md §13).

    A long-running Unix-domain-socket server speaking the line-delimited
    JSON protocol of {!Protocol}.  Hardening invariants:

    - {b Admission control}: a bounded queue; when it is full, new
      requests get an immediate retriable ["overload"] rejection instead
      of unbounded buffering.
    - {b Deadlines}: a request's [deadline_s] is measured from
      admission; the remainder at start becomes the search's wall
      budget, and a deadline-tripped stop is reported as a retriable
      ["deadline"] error.  The warm store is probed {e before} the
      deadline arithmetic: a request whose exact answer is already
      cached is served (["cached"] result) even when its deadline
      elapsed in the queue — a free answer must never become an error.
    - {b Streaming sessions}: requests naming a [session] are routed
      to a per-session {!Kf_search.Stream} — the first opens it (full
      search), each later one answers the program delta with a
      warm-started repair search under the session's [slo_ms] ladder.
      Sessions are daemon-global, serialized per session, and
      LRU-bounded by [max_sessions] (an evicted session transparently
      rebuilds with one full search).
    - {b Fault isolation}: request execution runs behind
      {!Kf_robust.Guard} plus a per-job exception net — malformed or
      fault-injecting requests produce structured error events, never a
      daemon or worker-domain crash.
    - {b Graceful drain}: on SIGTERM/SIGINT (or {!drain}) the daemon
      stops accepting, rejects queued work with retriable ["shutdown"]
      errors, lets in-flight searches stop cooperatively at the next
      generation boundary ({!Kf_search.Hgga.Interrupted} — their
      best-so-far result is still delivered), then persists the warm
      cache and exits.
    - {b Crash recovery}: the signature-keyed group cache persists
      periodically and on shutdown ({!Cache_store}); a restarted daemon
      answers repeat requests warm.

    Telemetry (when {!Kf_obs.Metrics} is enabled): counters
    [serve.requests], [serve.completed], [serve.malformed],
    [serve.rejected_overload], [serve.rejected_shutdown],
    [serve.deadline_missed], [serve.internal_errors],
    [serve.warm_requests], [serve.cached_results],
    [serve.stream.decisions], [serve.stream.slo_tripped],
    [serve.stream.evicted]; gauges [serve.queue_depth],
    [serve.cache.programs], [serve.cache.hit_rate],
    [serve.cache.evictions], [serve.stream.sessions]; histogram
    [serve.latency_s] (admission-to-terminal-event seconds). *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains executing requests *)
  max_queue : int;  (** admission-queue bound *)
  cache_path : string option;  (** warm-cache persistence file *)
  cache_entries : int;
      (** cap on cached (program, device, model) triples (LRU — this is
          what bounds the persisted file under a long streaming
          session, which mints one digest per program version) *)
  max_sessions : int;  (** cap on live streaming sessions (LRU) *)
  default_slo_ms : float option;
      (** per-decision SLO for streaming sessions that do not set
          [slo_ms] themselves ([None]: unlimited) *)
  persist_every_s : float;  (** periodic cache-persistence interval *)
  progress_every : int;  (** generations between progress events *)
  log : string -> unit;  (** daemon log sink ([ignore] for quiet) *)
}

val default : socket_path:string -> config
(** 2 workers, queue bound 16, no persistence path, 64 cache entries,
    8 sessions, no default SLO, persist every 30 s, progress every 5
    generations, silent. *)

type t

val start : config -> t
(** Bind the socket (replacing a stale file), restore the persisted
    cache when configured (a corrupt cache file is ignored — it only
    costs warmth), and spawn the accept/worker/timer machinery.
    @raise Invalid_argument on non-positive [workers]/[max_queue];
    Unix errors on an unbindable socket. *)

val install_signal_handlers : t -> unit
(** Route SIGTERM and SIGINT to a drain request.  Handlers only flip an
    atomic flag — the drain itself runs on the timer thread (within
    ~0.2 s), so no locks are touched in signal context. *)

val request_drain : t -> unit
(** Asynchronous, signal-safe drain request (what the signal handlers
    call). *)

val drain : t -> unit
(** Begin graceful shutdown now: stop accepting, wake idle workers,
    deliver EOF to idle connections.  Idempotent; returns immediately
    (use {!wait} to block until done). *)

val draining : t -> bool

val wait : t -> unit
(** Block until the daemon is fully drained: every admitted request
    answered, all threads joined, socket removed, cache persisted. *)

val stop : t -> unit
(** [drain] + [wait]. *)

val cache_programs : t -> int
val cache_verdicts : t -> int
(** Warm-cache occupancy (for logs and tests). *)

val cache_evictions : t -> int
(** Entries the warm store's LRU bound has dropped so far. *)

val stream_sessions : t -> int
(** Live streaming sessions (for logs and tests). *)
