(** Deterministic fault injection for the search stack, so that the
    robustness machinery is itself testable.

    An injector wraps an objective's evaluation function (as an
    {!Kf_search.Objective.guard}) and, with a configured probability per
    evaluation, replaces the result with one of the failure modes a real
    measurement backend exhibits: NaN or negative runtimes, thrown
    exceptions, stalled (timeout-simulated) evaluations, or corrupted
    metadata rows.  Draws come from {!Kf_util.Rng} keyed on
    (seed, candidate, attempt), so a given seed assigns the same fault to
    the same candidate on every run — independent of evaluation order,
    which keeps injected runs reproducible across checkpoint/resume. *)

type mode =
  | Nan_runtime  (** evaluation returns a NaN cost *)
  | Negative_runtime  (** evaluation returns a negative cost *)
  | Crash  (** evaluation raises {!Injected_crash} *)
  | Stall
      (** evaluation raises {!Injected_stall} — models a timed-out
          measurement; transient, a retry may succeed *)
  | Corrupt_metadata
      (** evaluation returns a well-formed but implausible verdict
          (negative original sum, inflated cost) *)

val mode_name : mode -> string
val all_modes : mode list

exception Injected_crash of string
exception Injected_stall of string

type config = { rate : float; seed : int; modes : mode list }

val config : ?seed:int -> ?modes:mode list -> float -> config
(** [config rate] with default seed 1337 and all failure modes.
    @raise Invalid_argument if [rate] is outside [0,1] or [modes] is
    empty. *)

type t

val create : ?faults:Kf_search.Objective.fault_stats -> config -> t
(** [faults] is bumped ([injected]) on every injection so the shared
    accounting record matches the guard's observations. *)

val injected : t -> int
(** Injection events so far.  Each event manifests as exactly one
    observable failure, so a downstream guard's [trapped + corrupted]
    equals this count. *)

val wrap : t -> Kf_search.Objective.guard
(** The injector as a guard layer: compose {e inside} [Guard.wrap] (the
    guard must see the injected failures). *)

val is_transient : exn -> bool
(** True for {!Injected_stall} — the default transient-failure predicate
    of {!Guard}. *)
