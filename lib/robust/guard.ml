module Objective = Kf_search.Objective
module Rng = Kf_util.Rng

type config = {
  max_retries : int;
  backoff_s : float;
  max_backoff_s : float;
  jitter : float;
  jitter_seed : int;
  penalty_cost : float;
  transient : exn -> bool;
}

let default =
  {
    max_retries = 2;
    backoff_s = 1e-3;
    max_backoff_s = 0.1;
    jitter = 0.5;
    jitter_seed = 0x5eed;
    penalty_cost = 1e30;
    transient = Inject.is_transient;
  }

(* Backoff schedule: exponential in the attempt number, spread by a
   deterministic jitter so retries of different candidates de-correlate
   (the classic thundering-herd fix) without sacrificing
   reproducibility.  The jitter draw is a pure function of
   (jitter_seed, key, attempt) — like [Inject]'s draws it does not
   depend on the order in which the search reaches candidates, so a
   guarded run replays the exact same sleep schedule every time.  The
   delay is bounded by [max_backoff_s]: a long retry chain must not
   stall a worker for unbounded time. *)
let backoff_delay config ~key ~attempt =
  if config.backoff_s <= 0. then 0.
  else begin
    let base = config.backoff_s *. float_of_int (1 lsl min attempt 20) in
    let jitter = Float.max 0. (Float.min 1. config.jitter) in
    let factor =
      if jitter = 0. then 1.
      else begin
        let rng =
          Rng.create ((config.jitter_seed * 0x9e3779b1) lxor Hashtbl.hash (key, attempt))
        in
        (* multiplicative jitter centered on 1: [1 - j/2, 1 + j/2) *)
        1. -. (jitter /. 2.) +. Rng.float rng jitter
      end
    in
    Float.min config.max_backoff_s (base *. factor)
  end

(* A verdict is plausible when its cost is non-negative and not NaN
   (infinity is the legitimate "infeasible" encoding) and its original
   sum is a sane finite runtime.  Anything else is a corrupted
   measurement and must not reach the solver's comparisons. *)
let sane (v : Objective.verdict) =
  v.Objective.cost >= 0.
  && (not (Float.is_nan v.Objective.cost))
  && Float.is_finite v.Objective.orig_sum
  && v.Objective.orig_sum >= 0.

let quarantine config (faults : Objective.fault_stats) =
  faults.Objective.quarantined <- faults.Objective.quarantined + 1;
  (* Finite penalty, not infinity: quarantined candidates stay rankable
     (all equally worst) instead of collapsing whole-plan costs into one
     indistinguishable infinity, and [feasible = false] keeps them out of
     merges and the final profitability cleanup dissolves them. *)
  { Objective.feasible = false; cost = config.penalty_cost; orig_sum = 0. }

let protect ?(config = default) (faults : Objective.fault_stats) : Objective.guard =
 fun eval group ->
  let key = lazy (String.concat "," (List.map string_of_int group)) in
  let rec attempt tries =
    match eval group with
    | v ->
        if sane v then begin
          if tries > 0 then faults.Objective.recovered <- faults.Objective.recovered + 1;
          v
        end
        else begin
          faults.Objective.corrupted <- faults.Objective.corrupted + 1;
          quarantine config faults
        end
    | exception e when config.transient e && tries < config.max_retries ->
        faults.Objective.trapped <- faults.Objective.trapped + 1;
        faults.Objective.retries <- faults.Objective.retries + 1;
        (* Transient failures (timed-out measurements) often clear; wait
           out the deterministic jittered backoff before the next try. *)
        let delay = backoff_delay config ~key:(Lazy.force key) ~attempt:tries in
        if delay > 0. then Unix.sleepf delay;
        attempt (tries + 1)
    | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
    | exception _ ->
        faults.Objective.trapped <- faults.Objective.trapped + 1;
        quarantine config faults
  in
  attempt 0

let compose outer inner : Objective.guard = fun eval group -> outer (inner eval) group

let guarded ?config ?inject faults =
  let base = protect ?config faults in
  match inject with
  | None -> base
  | Some injector -> compose base (Inject.wrap injector)
