module Objective = Kf_search.Objective

type config = {
  max_retries : int;
  backoff_s : float;
  penalty_cost : float;
  transient : exn -> bool;
}

let default =
  { max_retries = 2; backoff_s = 1e-3; penalty_cost = 1e30; transient = Inject.is_transient }

(* A verdict is plausible when its cost is non-negative and not NaN
   (infinity is the legitimate "infeasible" encoding) and its original
   sum is a sane finite runtime.  Anything else is a corrupted
   measurement and must not reach the solver's comparisons. *)
let sane (v : Objective.verdict) =
  v.Objective.cost >= 0.
  && (not (Float.is_nan v.Objective.cost))
  && Float.is_finite v.Objective.orig_sum
  && v.Objective.orig_sum >= 0.

let quarantine config (faults : Objective.fault_stats) =
  faults.Objective.quarantined <- faults.Objective.quarantined + 1;
  (* Finite penalty, not infinity: quarantined candidates stay rankable
     (all equally worst) instead of collapsing whole-plan costs into one
     indistinguishable infinity, and [feasible = false] keeps them out of
     merges and the final profitability cleanup dissolves them. *)
  { Objective.feasible = false; cost = config.penalty_cost; orig_sum = 0. }

let protect ?(config = default) (faults : Objective.fault_stats) : Objective.guard =
 fun eval group ->
  let rec attempt tries =
    match eval group with
    | v ->
        if sane v then begin
          if tries > 0 then faults.Objective.recovered <- faults.Objective.recovered + 1;
          v
        end
        else begin
          faults.Objective.corrupted <- faults.Objective.corrupted + 1;
          quarantine config faults
        end
    | exception e when config.transient e && tries < config.max_retries ->
        faults.Objective.trapped <- faults.Objective.trapped + 1;
        faults.Objective.retries <- faults.Objective.retries + 1;
        (* Deterministic exponential backoff: transient failures (timed-out
           measurements) often clear; the schedule is fixed so runs stay
           reproducible. *)
        if config.backoff_s > 0. then Unix.sleepf (config.backoff_s *. float_of_int (1 lsl tries));
        attempt (tries + 1)
    | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
    | exception _ ->
        faults.Objective.trapped <- faults.Objective.trapped + 1;
        quarantine config faults
  in
  attempt 0

let compose outer inner : Objective.guard = fun eval group -> outer (inner eval) group

let guarded ?config ?inject faults =
  let base = protect ?config faults in
  match inject with
  | None -> base
  | Some injector -> compose base (Inject.wrap injector)
