(** Structured error taxonomy for the fault-tolerant search pipeline.

    The library's internal failure sites raise [Invalid_argument]/[Failure]
    with a "Module.function: ..." message convention; safe entry points
    ([Kfuse.Pipeline.prepare_safe] / [run_safe]) trap those exceptions at
    stage boundaries and {!classify} them into this taxonomy, so callers
    get a [result] they can match on instead of a crashed run. *)

type stage = Prepare | Search | Apply | Io

val stage_name : stage -> string

type t =
  | Constraint_violation of {
      stage : stage;
      groups : int list list;  (** offending groups when known *)
      violations : string list;  (** rendered {!Kf_fusion.Plan.violation}s *)
    }
  | Model_input of { stage : stage; message : string }
      (** malformed projection-model inputs (wrong array lengths,
          inconsistent metadata, ...) *)
  | Sim_divergence of { stage : stage; kernel : int option; message : string }
      (** the simulator produced or detected a nonsensical measurement
          (zero occupancy, NaN/negative runtime) *)
  | Budget_exhausted of { evaluations : int; wall_s : float; reason : string }
  | Fault_overload of { rate : float; threshold : float; evaluations : int }
      (** per-evaluation failure rate crossed the configured threshold *)
  | Io_error of { path : string option; message : string }
  | Internal of { stage : stage; message : string }  (** anything unclassified *)

val classify : stage:stage -> exn -> t
(** Map an exception caught at a stage boundary onto the taxonomy.  Total:
    unrecognized exceptions become {!Internal}. *)

val of_violations : stage:stage -> Kf_fusion.Plan.violation list -> t
(** A {!Constraint_violation} carrying the offending groups and rendered
    violations of a failed [Plan.validate]. *)

val of_stop : Kf_search.Hgga.stats -> threshold:float -> t option
(** The error corresponding to a degraded search termination —
    [Budget_exhausted] or [Fault_overload] — or [None] for normal stops.
    Useful for reporting: a degraded search still returns a plan. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
