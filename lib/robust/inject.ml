module Rng = Kf_util.Rng
module Objective = Kf_search.Objective

type mode = Nan_runtime | Negative_runtime | Crash | Stall | Corrupt_metadata

let mode_name = function
  | Nan_runtime -> "nan-runtime"
  | Negative_runtime -> "negative-runtime"
  | Crash -> "crash"
  | Stall -> "stall"
  | Corrupt_metadata -> "corrupt-metadata"

let all_modes = [ Nan_runtime; Negative_runtime; Crash; Stall; Corrupt_metadata ]

exception Injected_crash of string
exception Injected_stall of string

type config = { rate : float; seed : int; modes : mode list }

let config ?(seed = 1337) ?(modes = all_modes) rate =
  if rate < 0. || rate > 1. then invalid_arg "Inject.config: rate out of [0,1]";
  if modes = [] then invalid_arg "Inject.config: no failure modes";
  { rate; seed; modes }

type t = {
  cfg : config;
  faults : Objective.fault_stats;
  attempts : (string, int) Hashtbl.t;
      (* per-candidate evaluation counter, so retries of the same group
         draw fresh faults while the draw stays independent of the global
         evaluation order *)
  lock : Mutex.t;
  mutable events : int;
}

let create ?(faults = Objective.zero_faults ()) cfg =
  { cfg; faults; attempts = Hashtbl.create 256; lock = Mutex.create (); events = 0 }

let injected t = t.events

let group_label group = String.concat "," (List.map string_of_int group)

(* Injection decisions are a pure function of (seed, candidate, attempt):
   unlike a shared sequential RNG, they do not depend on the order in which
   the search happens to evaluate candidates, so an injected run replays
   identically across checkpoint/resume (where the memo cache restarts
   empty and evaluation order differs). *)
let draw_rng t key attempt =
  Rng.create ((t.cfg.seed * 0x9e3779b1) lxor Hashtbl.hash (key, attempt))

(* Perturb one evaluation.  Every injection event manifests as exactly one
   observable failure — an exception (Crash, Stall) or a corrupt verdict
   (NaN / negative / implausible metadata) — so a guard downstream can be
   checked against [injected t] exactly. *)
let perturb t eval group =
  match group with
  | [ _ ] -> eval group (* singletons carry measured runtimes, not model fits *)
  | _ ->
      let key = group_label (List.sort compare group) in
      let attempt =
        Mutex.lock t.lock;
        let a = try Hashtbl.find t.attempts key with Not_found -> 0 in
        Hashtbl.replace t.attempts key (a + 1);
        Mutex.unlock t.lock;
        a
      in
      let rng = draw_rng t key attempt in
      if not (Rng.chance rng t.cfg.rate) then eval group
      else begin
        Mutex.lock t.lock;
        t.events <- t.events + 1;
        t.faults.Objective.injected <- t.faults.Objective.injected + 1;
        Mutex.unlock t.lock;
        match Rng.choose_list rng t.cfg.modes with
        | Nan_runtime ->
            let v = eval group in
            { v with Objective.cost = Float.nan }
        | Negative_runtime ->
            let v = eval group in
            { v with Objective.cost = -.Float.abs v.Objective.cost -. 1e-9 }
        | Crash ->
            raise (Injected_crash (Printf.sprintf "injected crash on group [%s]" (group_label group)))
        | Stall ->
            raise
              (Injected_stall
                 (Printf.sprintf "injected evaluation stall (timeout) on group [%s]"
                    (group_label group)))
        | Corrupt_metadata ->
            (* A corrupted metadata row yields a wildly wrong but
               structurally well-formed verdict: negative original sum and
               an inflated cost. *)
            let v = eval group in
            { v with Objective.cost = v.Objective.cost *. 1e12; orig_sum = -1. }
      end

let wrap t : Objective.guard = fun eval group -> perturb t eval group

let is_transient = function Injected_stall _ -> true | _ -> false
