(** Guarded objective evaluation: per-candidate fault isolation for the
    search stack.

    Installed as an {!Kf_search.Objective.guard}, the guard sits between
    the objective's memo cache and the raw fitness evaluation.  A failing
    candidate — an exception escaping the model, or a corrupted verdict
    (NaN/negative cost, implausible metadata) — is {e quarantined}: it
    receives a large finite penalty fitness and [feasible = false] instead
    of crashing the GA generation.  Transient failures (timed-out
    evaluations) are retried a bounded number of times with a
    deterministic, jittered, bounded exponential backoff.  Every event is
    counted in the shared {!Kf_search.Objective.fault_stats} record,
    which solvers surface in their results. *)

type config = {
  max_retries : int;  (** retry attempts for transient failures (default 2) *)
  backoff_s : float;  (** base backoff, doubled per retry (default 1 ms; 0 disables) *)
  max_backoff_s : float;  (** hard cap on any single backoff sleep (default 100 ms) *)
  jitter : float;
      (** multiplicative jitter width in [0,1]: each delay is spread over
          [±jitter/2] of its exponential base so concurrent retries
          de-correlate (default 0.5; 0 restores the pure schedule) *)
  jitter_seed : int;  (** seed of the deterministic jitter draw *)
  penalty_cost : float;  (** quarantine fitness (default 1e30) *)
  transient : exn -> bool;  (** which exceptions to retry (default {!Inject.is_transient}) *)
}

val default : config

val backoff_delay : config -> key:string -> attempt:int -> float
(** The exact sleep (seconds) the guard performs before retry number
    [attempt] (0-based) of the candidate labelled [key].  A pure function
    of [(config.jitter_seed, key, attempt)] — independent of evaluation
    order, so guarded runs replay bit-identical schedules — bounded by
    [max_backoff_s], and 0 whenever [backoff_s <= 0]. *)

val sane : Kf_search.Objective.verdict -> bool
(** Plausibility check: cost non-negative and not NaN ([infinity] is the
    legitimate infeasible encoding), original sum finite and
    non-negative. *)

val protect : ?config:config -> Kf_search.Objective.fault_stats -> Kf_search.Objective.guard
(** The guard layer itself, accounting into the given record. *)

val compose : Kf_search.Objective.guard -> Kf_search.Objective.guard -> Kf_search.Objective.guard
(** [compose outer inner] applies [outer] around [inner]'s view of the
    evaluation. *)

val guarded :
  ?config:config ->
  ?inject:Inject.t ->
  Kf_search.Objective.fault_stats ->
  Kf_search.Objective.guard
(** [protect] with an optional fault injector composed inside it — the
    standard assembly used by [Pipeline.run_safe] and the CLI. *)
