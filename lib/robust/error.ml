module Plan = Kf_fusion.Plan
module Snapshot = Kf_search.Snapshot
module Hgga = Kf_search.Hgga
module Objective = Kf_search.Objective

type stage = Prepare | Search | Apply | Io

let stage_name = function
  | Prepare -> "prepare"
  | Search -> "search"
  | Apply -> "apply"
  | Io -> "io"

type t =
  | Constraint_violation of { stage : stage; groups : int list list; violations : string list }
  | Model_input of { stage : stage; message : string }
  | Sim_divergence of { stage : stage; kernel : int option; message : string }
  | Budget_exhausted of { evaluations : int; wall_s : float; reason : string }
  | Fault_overload of { rate : float; threshold : float; evaluations : int }
  | Io_error of { path : string option; message : string }
  | Internal of { stage : stage; message : string }

let pp_group ppf g =
  Format.fprintf ppf "[%s]" (String.concat "," (List.map string_of_int g))

let pp ppf = function
  | Constraint_violation { stage; groups; violations } ->
      Format.fprintf ppf "constraint violation (%s stage)" (stage_name stage);
      if groups <> [] then begin
        Format.fprintf ppf " in groups ";
        List.iteri
          (fun i g ->
            if i > 0 then Format.fprintf ppf ", ";
            pp_group ppf g)
          groups
      end;
      List.iter (fun v -> Format.fprintf ppf "; %s" v) violations
  | Model_input { stage; message } ->
      Format.fprintf ppf "model-input error (%s stage): %s" (stage_name stage) message
  | Sim_divergence { stage; kernel; message } ->
      Format.fprintf ppf "simulator divergence (%s stage%s): %s" (stage_name stage)
        (match kernel with Some k -> Printf.sprintf ", kernel %d" k | None -> "")
        message
  | Budget_exhausted { evaluations; wall_s; reason } ->
      Format.fprintf ppf "budget exhausted after %d evaluations, %.2f s: %s" evaluations
        wall_s reason
  | Fault_overload { rate; threshold; evaluations } ->
      Format.fprintf ppf
        "fault overload: %.1f%% of %d evaluations failed (threshold %.1f%%)" (rate *. 100.)
        evaluations (threshold *. 100.)
  | Io_error { path; message } ->
      Format.fprintf ppf "I/O error%s: %s"
        (match path with Some p -> Printf.sprintf " on %S" p | None -> "")
        message
  | Internal { stage; message } ->
      Format.fprintf ppf "internal error (%s stage): %s" (stage_name stage) message

let to_string e = Format.asprintf "%a" pp e

let has_prefix s p = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* The library predates the structured taxonomy: its ~90 failure sites
   raise [Invalid_argument]/[Failure] with a "Module.function: ..."
   convention.  Classification maps that convention onto the taxonomy so
   safe entry points can trap at stage boundaries without rewriting every
   site. *)
let classify ~stage exn =
  match exn with
  | Kf_ir.Program_io.Parse_error (line, msg) ->
      Io_error { path = None; message = Printf.sprintf "parse error at line %d: %s" line msg }
  | Snapshot.Malformed msg ->
      Io_error { path = None; message = Printf.sprintf "corrupt checkpoint: %s" msg }
  | Sys_error msg -> Io_error { path = None; message = msg }
  | Invalid_argument msg when has_prefix msg "Hgga.solve: snapshot" ->
      (* resume rejections: the snapshot is readable but belongs to a
         different run (seed / population / program mismatch) *)
      Io_error { path = None; message = msg }
  | Invalid_argument msg when has_prefix msg "Measure" || has_prefix msg "Occupancy" ->
      Sim_divergence { stage; kernel = None; message = msg }
  | Invalid_argument msg
    when has_prefix msg "Inputs" || has_prefix msg "Stats" || has_prefix msg "Rng"
         || has_prefix msg "Projection" || has_prefix msg "Fusion_efficiency" ->
      Model_input { stage; message = msg }
  | Invalid_argument msg
    when has_prefix msg "Plan" || has_prefix msg "Grouping" || has_prefix msg "Exec_order"
         || has_prefix msg "Metadata" || has_prefix msg "Fused" || has_prefix msg "Dag" ->
      Constraint_violation { stage; groups = []; violations = [ msg ] }
  | Invalid_argument msg | Failure msg -> Internal { stage; message = msg }
  | exn -> Internal { stage; message = Printexc.to_string exn }

let of_violations ~stage violations =
  let groups = List.filter_map Plan.violation_group violations in
  Constraint_violation
    {
      stage;
      groups;
      violations = List.map (fun v -> Format.asprintf "%a" Plan.pp_violation v) violations;
    }

let of_stop (stats : Hgga.stats) ~threshold =
  match stats.Hgga.stop with
  (* Interrupted is a cooperative stop (server drain), not a health
     degradation: the caller that installed the interrupt handles it. *)
  | Hgga.Converged | Hgga.Generation_cap | Hgga.Interrupted -> None
  | Hgga.Evaluation_budget | Hgga.Wall_budget ->
      Some
        (Budget_exhausted
           {
             evaluations = stats.Hgga.evaluations;
             wall_s = stats.Hgga.wall_time_s;
             reason = Hgga.stop_reason_name stats.Hgga.stop;
           })
  | Hgga.Fault_overload ->
      let f = stats.Hgga.faults in
      let evals = stats.Hgga.evaluations in
      let rate =
        if evals = 0 then 0. else float_of_int f.Objective.quarantined /. float_of_int evals
      in
      Some (Fault_overload { rate; threshold; evaluations = evals })
