(* Named counters and gauges with a process-wide, thread-safe registry.

   Counters are [int Atomic.t] cells: increments from concurrent domains
   never lose updates.  Handles are created once (typically at module
   init) and incremented on hot paths; when the registry is disabled an
   increment is a single atomic load and a branch, so instrumented code
   pays nothing measurable in production-off mode.

   Gauges are last-write-wins floats (mutable float fields are single
   word writes on 64-bit, so torn values cannot be observed). *)

type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; mutable g_value : float }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; cell = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        c
  in
  Mutex.unlock lock;
  c

let gauge name =
  Mutex.lock lock;
  let g =
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
        let g = { g_name = name; g_value = 0. } in
        Hashtbl.replace gauges name g;
        g
  in
  Mutex.unlock lock;
  g

let incr ?(by = 1) c = if enabled () then ignore (Atomic.fetch_and_add c.cell by)
let add = fun c by -> incr ~by c
let set g v = if enabled () then g.g_value <- v
let value c = Atomic.get c.cell
let gauge_value g = g.g_value

let find name =
  Mutex.lock lock;
  let v = Hashtbl.find_opt counters name in
  Mutex.unlock lock;
  Option.map value v

let reset () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.) gauges;
  Mutex.unlock lock

let snapshot () =
  Mutex.lock lock;
  let cs = Hashtbl.fold (fun name c acc -> (name, Json.Int (value c)) :: acc) counters [] in
  let gs = Hashtbl.fold (fun name g acc -> (name, Json.Float g.g_value) :: acc) gauges [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> compare a b) (cs @ gs)

let to_json () =
  Json.Obj
    [
      ("counters",
       Json.Obj
         (List.filter_map
            (fun (n, v) -> match v with Json.Int _ -> Some (n, v) | _ -> None)
            (snapshot ())));
      ("gauges",
       Json.Obj
         (List.filter_map
            (fun (n, v) -> match v with Json.Float _ -> Some (n, v) | _ -> None)
            (snapshot ())));
    ]

let write_file path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ()));
      output_char oc '\n');
  Sys.rename tmp path
