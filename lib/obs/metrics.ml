(* Named counters and gauges with a process-wide, thread-safe registry.

   Counters are [int Atomic.t] cells: increments from concurrent domains
   never lose updates.  Handles are created once (typically at module
   init) and incremented on hot paths; when the registry is disabled an
   increment is a single atomic load and a branch, so instrumented code
   pays nothing measurable in production-off mode.

   Gauges are last-write-wins floats (mutable float fields are single
   word writes on 64-bit, so torn values cannot be observed). *)

type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; mutable g_value : float }

(* Histograms are geometric-bucketed: bucket i covers
   [lo * step^i, lo * step^(i+1)), so 128 buckets at 20% growth span
   1 µs .. ~10^4 s — plenty for request latencies — with bounded error
   (a percentile is off by at most one bucket width, ~20%).  A mutex
   per histogram keeps observation cheap and the snapshot consistent;
   observations are hot-path-gated on [enabled] like every other
   metric write. *)
let h_lo = 1e-6
let h_step = 1.2
let h_buckets = 128
let h_log_step = Float.log h_step

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  h_counts : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; cell = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        c
  in
  Mutex.unlock lock;
  c

let gauge name =
  Mutex.lock lock;
  let g =
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
        let g = { g_name = name; g_value = 0. } in
        Hashtbl.replace gauges name g;
        g
  in
  Mutex.unlock lock;
  g

let histogram name =
  Mutex.lock lock;
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
        let h =
          {
            h_name = name;
            h_lock = Mutex.create ();
            h_counts = Array.make h_buckets 0;
            h_count = 0;
            h_sum = 0.;
            h_min = Float.infinity;
            h_max = Float.neg_infinity;
          }
        in
        Hashtbl.replace histograms name h;
        h
  in
  Mutex.unlock lock;
  h

let bucket_of v =
  if v <= h_lo then 0
  else
    let i = int_of_float (Float.log (v /. h_lo) /. h_log_step) in
    if i < 0 then 0 else if i >= h_buckets then h_buckets - 1 else i

let observe h v =
  if enabled () && Float.is_finite v && v >= 0. then begin
    Mutex.lock h.h_lock;
    h.h_counts.(bucket_of v) <- h.h_counts.(bucket_of v) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    Mutex.unlock h.h_lock
  end

let histogram_count h =
  Mutex.lock h.h_lock;
  let n = h.h_count in
  Mutex.unlock h.h_lock;
  n

(* Geometric midpoint of the smallest bucket whose cumulative count
   reaches the requested rank; exact recorded extrema win at the tails
   so p0/p100 never invent values outside the observed range. *)
let histogram_percentile h p =
  Mutex.lock h.h_lock;
  let v =
    if h.h_count = 0 then Float.nan
    else begin
      let p = Float.max 0. (Float.min 100. p) in
      let rank =
        let r = int_of_float (Float.round (p /. 100. *. float_of_int h.h_count)) in
        if r < 1 then 1 else if r > h.h_count then h.h_count else r
      in
      let rec scan i acc =
        if i >= h_buckets then h.h_max
        else begin
          let acc = acc + h.h_counts.(i) in
          if acc >= rank then
            Float.max h.h_min
              (Float.min h.h_max (h_lo *. (h_step ** (float_of_int i +. 0.5))))
          else scan (i + 1) acc
        end
      in
      scan 0 0
    end
  in
  Mutex.unlock h.h_lock;
  v

let histogram_sum h =
  Mutex.lock h.h_lock;
  let s = h.h_sum in
  Mutex.unlock h.h_lock;
  s

let incr ?(by = 1) c = if enabled () then ignore (Atomic.fetch_and_add c.cell by)
let add = fun c by -> incr ~by c
let set g v = if enabled () then g.g_value <- v
let value c = Atomic.get c.cell
let gauge_value g = g.g_value

let find name =
  Mutex.lock lock;
  let v = Hashtbl.find_opt counters name in
  Mutex.unlock lock;
  Option.map value v

let reset () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.h_lock;
      Array.fill h.h_counts 0 h_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0.;
      h.h_min <- Float.infinity;
      h.h_max <- Float.neg_infinity;
      Mutex.unlock h.h_lock)
    histograms;
  Mutex.unlock lock

let snapshot () =
  Mutex.lock lock;
  let cs = Hashtbl.fold (fun name c acc -> (name, Json.Int (value c)) :: acc) counters [] in
  let gs = Hashtbl.fold (fun name g acc -> (name, Json.Float g.g_value) :: acc) gauges [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> compare a b) (cs @ gs)

let histogram_json h =
  ( h.h_name,
    Json.Obj
      [
        ("count", Json.Int (histogram_count h));
        ("sum", Json.Float (histogram_sum h));
        ("min", Json.Float h.h_min);
        ("max", Json.Float h.h_max);
        ("p50", Json.Float (histogram_percentile h 50.));
        ("p90", Json.Float (histogram_percentile h 90.));
        ("p99", Json.Float (histogram_percentile h 99.));
      ] )

let to_json () =
  let snap = snapshot () in
  let hists =
    Mutex.lock lock;
    let hs = Hashtbl.fold (fun _ h acc -> h :: acc) histograms [] in
    Mutex.unlock lock;
    List.sort (fun a b -> compare a.h_name b.h_name) hs
  in
  Json.Obj
    [
      ("counters",
       Json.Obj
         (List.filter_map
            (fun (n, v) -> match v with Json.Int _ -> Some (n, v) | _ -> None)
            snap));
      ("gauges",
       Json.Obj
         (List.filter_map
            (fun (n, v) -> match v with Json.Float _ -> Some (n, v) | _ -> None)
            snap));
      ("histograms", Json.Obj (List.map histogram_json hists));
    ]

let write_file path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ()));
      output_char oc '\n');
  Sys.rename tmp path
