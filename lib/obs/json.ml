(* Minimal JSON: enough to stream telemetry out and to validate it back
   in tests.  No external JSON dependency is available in this
   environment, so the writer and a small total parser live here. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Floats must stay inside the JSON grammar: NaN and infinities have no
   literal form, so they degrade to null rather than poison the stream. *)
let add_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else begin
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string b s;
    (* "1e+06" and "1.5" are valid JSON; a bare "1" printed from a float
       is too, and parses back as an int — fine for telemetry. *)
    ()
  end

let rec buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> add_float b v
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          buffer b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  buffer b v;
  Buffer.contents b

(* --- parsing --- *)

exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let of_string (s : string) : t =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> malformed "expected %C at offset %d, found %C" c !pos d
    | None -> malformed "expected %C at offset %d, found end of input" c !pos
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else malformed "bad literal at offset %d" !pos
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> malformed "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some (('"' | '\\' | '/') as c) -> Buffer.add_char b c
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 'u' ->
              (* Telemetry only ever escapes control characters; decode the
                 code point as a raw byte (sub-0x80 in practice). *)
              if !pos + 4 >= len then malformed "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> malformed "bad \\u escape %S" hex);
              pos := !pos + 4
          | Some c -> malformed "unsupported escape \\%C" c
          | None -> malformed "unterminated escape");
          advance ();
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    if !pos = start then malformed "expected number at offset %d" start;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some v -> Int v
    | None -> (
        match float_of_string_opt text with
        | Some v -> Float v
        | None -> malformed "bad number %S at offset %d" text start)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (string_lit ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ value () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := value () :: !items;
                more ()
            | Some ']' -> advance ()
            | _ -> malformed "expected ',' or ']' at offset %d" !pos
          in
          more ();
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            (k, value ())
          in
          let fields = ref [ field () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields;
                more ()
            | Some '}' -> advance ()
            | _ -> malformed "expected ',' or '}' at offset %d" !pos
          in
          more ();
          Obj (List.rev !fields)
        end
    | Some _ -> number ()
    | None -> malformed "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> len then malformed "trailing content at offset %d" !pos;
  v

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int_opt = function Int v -> Some v | _ -> None

let to_float_opt = function
  | Float v -> Some v
  | Int v -> Some (float_of_int v)
  | _ -> None

let to_string_opt = function Str v -> Some v | _ -> None
let to_list_opt = function Arr v -> Some v | _ -> None
