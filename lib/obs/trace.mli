(** Structured event sink: spans and instant events as JSON-lines
    telemetry or Chrome [trace_event] JSON.

    One process-wide sink.  When no sink is configured (the default),
    {!span} runs its body directly and {!instant} returns immediately —
    instrumented code pays one atomic load.  Callers building expensive
    argument lists should guard on {!enabled} first.

    JSONL: one self-contained JSON object per line —
    [{"name":..,"cat":..,"ph":"X"|"i","ts":us,"dur":us,"tid":..,"args":{..}}].
    Chrome: the same events wrapped as [{"traceEvents":[..]}], loadable in
    [chrome://tracing] or Perfetto ([ts]/[dur] in microseconds, [ph]="X"
    complete spans, [ph]="i" instants). *)

type format = Jsonl | Chrome

val format_of_string : string -> format option
val format_name : format -> string

val enabled : unit -> bool

val configure : ?format:format -> string -> unit
(** Open [path] (truncating) and start streaming events to it.  Replaces
    (and cleanly finishes) any previously configured sink.
    @raise Sys_error if the file cannot be opened. *)

val configure_channel : ?format:format -> out_channel -> unit
(** Like {!configure} but onto an existing channel, which is flushed but
    not closed on {!shutdown} (tests, stderr streaming). *)

val shutdown : unit -> unit
(** Finish the stream (writes the Chrome array suffix), flush, close an
    owned file, and disable tracing.  Idempotent. *)

val instant : ?cat:string -> ?args:(string * Json.t) list -> string -> unit
(** Emit a point event ([ph]="i"). *)

val span : ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and emits a complete-span event ([ph]="X")
    with its wall duration.  If [f] raises, the span is still emitted
    (with an ["error"] argument) and the exception rethrown.  Spans nest
    naturally: inner spans simply fall inside the outer span's
    [ts, ts+dur] window. *)
