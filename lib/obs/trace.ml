(* Structured event sink: timing spans and instant events streamed as
   JSON-lines telemetry, or rendered in Chrome's trace_event format for
   chrome://tracing / Perfetto.

   One process-wide sink, guarded by a mutex; the [enabled] flag is an
   atomic mirror so hot paths can skip all argument construction and
   formatting with a single load when tracing is off. *)

type format = Jsonl | Chrome

let format_of_string = function
  | "jsonl" -> Some Jsonl
  | "chrome" -> Some Chrome
  | _ -> None

let format_name = function Jsonl -> "jsonl" | Chrome -> "chrome"

type sink = {
  format : format;
  oc : out_channel;
  owns_channel : bool;
  mutable first_event : bool;  (* Chrome array comma tracking *)
  t0 : float;  (* trace epoch (Clock.now_s seconds) *)
}

let lock = Mutex.create ()
let sink : sink option ref = ref None
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let close_sink s =
  (match s.format with
  | Jsonl -> ()
  | Chrome -> output_string s.oc "\n]}\n");
  flush s.oc;
  if s.owns_channel then close_out_noerr s.oc

let shutdown () =
  Mutex.lock lock;
  (match !sink with
  | None -> ()
  | Some s ->
      Atomic.set enabled_flag false;
      sink := None;
      close_sink s);
  Mutex.unlock lock

let install ~format ~oc ~owns_channel =
  shutdown ();
  Mutex.lock lock;
  (match format with
  | Jsonl -> ()
  | Chrome -> output_string oc "{\"traceEvents\":[\n");
  sink := Some { format; oc; owns_channel; first_event = true; t0 = Clock.now_s () };
  Atomic.set enabled_flag true;
  Mutex.unlock lock

let configure ?(format = Jsonl) path =
  install ~format ~oc:(open_out path) ~owns_channel:true

let configure_channel ?(format = Jsonl) oc = install ~format ~oc ~owns_channel:false

let tid () = (Domain.self () :> int)

(* [t_start]/[t_end] are absolute Clock seconds; they are made relative
   to the sink's epoch under the sink lock, so a concurrent reconfigure
   cannot mix epochs within one event. *)
let emit ~name ~cat ~ph ~t_start ?t_end ~args () =
  Mutex.lock lock;
  (match !sink with
  | None -> ()
  | Some s ->
      let fields =
        [
          ("name", Json.Str name);
          ("cat", Json.Str cat);
          ("ph", Json.Str ph);
          ("ts", Json.Float (Clock.us_of_s (t_start -. s.t0)));
        ]
        @ (match t_end with
          | Some t -> [ ("dur", Json.Float (Clock.us_of_s (t -. t_start))) ]
          | None -> [])
        @ (match s.format with
          | Chrome -> [ ("pid", Json.Int 1); ("tid", Json.Int (tid ())) ]
          | Jsonl -> [ ("tid", Json.Int (tid ())) ])
        @ (match args with [] -> [] | a -> [ ("args", Json.Obj a) ])
      in
      let line = Json.to_string (Json.Obj fields) in
      (match s.format with
      | Jsonl ->
          output_string s.oc line;
          output_char s.oc '\n'
      | Chrome ->
          if not s.first_event then output_string s.oc ",\n";
          s.first_event <- false;
          output_string s.oc line);
      flush s.oc);
  Mutex.unlock lock

let instant ?(cat = "default") ?(args = []) name =
  if enabled () then
    emit ~name ~cat ~ph:"i" ~t_start:(Clock.now_s ()) ~args ()

let span ?(cat = "default") ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let t_start = Clock.now_s () in
    match f () with
    | v ->
        emit ~name ~cat ~ph:"X" ~t_start ~t_end:(Clock.now_s ()) ~args ();
        v
    | exception e ->
        emit ~name ~cat ~ph:"X" ~t_start ~t_end:(Clock.now_s ())
          ~args:(("error", Json.Str (Printexc.to_string e)) :: args)
          ();
        raise e
  end
