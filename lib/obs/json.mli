(** Minimal JSON values for the telemetry stream.

    The writer never emits anything outside the JSON grammar (non-finite
    floats degrade to [null]); the parser is total over well-formed input
    and exists so tests can validate emitted telemetry without an external
    JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val buffer : Buffer.t -> t -> unit

exception Malformed of string

val of_string : string -> t
(** @raise Malformed on invalid input. *)

(* Accessors for validation code; all return [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Ints coerce: JSON does not distinguish [1] from [1.0]. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
