(* Monotonic wall clock.

   The stdlib exposes no monotonic clock, so the next best thing: the
   system wall clock clamped to be non-decreasing across all domains.  A
   backward NTP step can at worst freeze the clock briefly, never make a
   span end before it started. *)

let lock = Mutex.create ()
let last = ref 0.

let now_s () =
  let t = Unix.gettimeofday () in
  Mutex.lock lock;
  let v = if t > !last then t else !last in
  last := v;
  Mutex.unlock lock;
  v

let us_of_s s = s *. 1e6
