(** Named counters and gauges with a thread-safe process-wide registry.

    Handles are cheap to create and safe to share across domains.  All
    writes are gated on {!enabled}: with the registry disabled (the
    default) an increment costs one atomic load and a branch, honoring
    the observability layer's no-op contract. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Master switch; also consulted by instrumented hot paths before doing
    any work whose only purpose is telemetry (e.g. timing a model
    evaluation). *)

type counter
type gauge

type histogram
(** Geometric-bucketed distribution (128 buckets, 20% growth, spanning
    1 µs .. ~10^4 in the observed unit): percentile estimates carry at
    most one bucket (~20%) of relative error, at a fixed small memory
    cost per histogram.  Used for per-request latency percentiles. *)

val counter : string -> counter
(** Find-or-create; the same name always yields the same cell. *)

val gauge : string -> gauge

val histogram : string -> histogram
(** Find-or-create, like {!counter}. *)

val observe : histogram -> float -> unit
(** Record one (non-negative, finite) observation.  Thread-safe; no-op
    when the registry is disabled or the value is out of domain. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_percentile : histogram -> float -> float
(** [histogram_percentile h p] estimates the [p]-th percentile (p in
    [0,100], clamped) as the geometric midpoint of the covering bucket,
    clamped to the exact observed min/max; [nan] with no
    observations. *)

val incr : ?by:int -> counter -> unit
(** Atomic; lost-update-free under parallel domains.  No-op when the
    registry is disabled. *)

val add : counter -> int -> unit
(** [add c n] = [incr ~by:n c]; convenient for accumulating integer
    quantities such as microseconds or simulated cycles. *)

val set : gauge -> float -> unit
val value : counter -> int
val gauge_value : gauge -> float

val find : string -> int option
(** Counter value by name, if such a counter was ever created. *)

val reset : unit -> unit
(** Zero every registered counter, gauge and histogram (tests). *)

val snapshot : unit -> (string * Json.t) list
(** All registered counters and gauges, sorted by name. *)

val to_json : unit -> Json.t
(** [{ "counters": {..}, "gauges": {..}, "histograms": {..} }]; each
    histogram renders as count/sum/min/max/p50/p90/p99. *)

val write_file : string -> unit
(** Atomic (temp file + rename) JSON dump.  @raise Sys_error on IO
    failure. *)
