(** Named counters and gauges with a thread-safe process-wide registry.

    Handles are cheap to create and safe to share across domains.  All
    writes are gated on {!enabled}: with the registry disabled (the
    default) an increment costs one atomic load and a branch, honoring
    the observability layer's no-op contract. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Master switch; also consulted by instrumented hot paths before doing
    any work whose only purpose is telemetry (e.g. timing a model
    evaluation). *)

type counter
type gauge

val counter : string -> counter
(** Find-or-create; the same name always yields the same cell. *)

val gauge : string -> gauge

val incr : ?by:int -> counter -> unit
(** Atomic; lost-update-free under parallel domains.  No-op when the
    registry is disabled. *)

val add : counter -> int -> unit
(** [add c n] = [incr ~by:n c]; convenient for accumulating integer
    quantities such as microseconds or simulated cycles. *)

val set : gauge -> float -> unit
val value : counter -> int
val gauge_value : gauge -> float

val find : string -> int option
(** Counter value by name, if such a counter was ever created. *)

val reset : unit -> unit
(** Zero every registered counter and gauge (tests). *)

val snapshot : unit -> (string * Json.t) list
(** All registered metrics, sorted by name. *)

val to_json : unit -> Json.t
(** [{ "counters": {..}, "gauges": {..} }]. *)

val write_file : string -> unit
(** Atomic (temp file + rename) JSON dump.  @raise Sys_error on IO
    failure. *)
