(** Monotonic timing source for spans and metrics.

    Wall-clock seconds clamped to be non-decreasing process-wide (shared
    across domains), so durations are never negative even if the system
    clock steps backwards. *)

val now_s : unit -> float
val us_of_s : float -> float
