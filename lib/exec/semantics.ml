module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Access = Kf_ir.Access
module Stencil = Kf_ir.Stencil
module Grid = Kf_ir.Grid
module Array_info = Kf_ir.Array_info
module Metadata = Kf_ir.Metadata
module Exec_order = Kf_graph.Exec_order
module Fused = Kf_fusion.Fused
module Fused_program = Kf_fusion.Fused_program
module Plan = Kf_fusion.Plan
module Datadep = Kf_graph.Datadep
module Renaming = Kf_graph.Renaming

type state = float array array

(* --- deterministic value functions --- *)

(* A tiny stateless hash to [0,1): the oracle needs fixed weights, not a
   stream. *)
let hash01 parts =
  let h =
    List.fold_left
      (fun acc x ->
        let acc = Int64.add acc (Int64.of_int (x + 0x9E37)) in
        let acc =
          Int64.mul (Int64.logxor acc (Int64.shift_right_logical acc 30)) 0xBF58476D1CE4E5B9L
        in
        Int64.logxor acc (Int64.shift_right_logical acc 27))
      0x1234_5678L parts
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let require_3d (p : Program.t) =
  Array.iter
    (fun (a : Array_info.t) ->
      if a.Array_info.extent <> Array_info.Field3d then
        invalid_arg "Semantics: the execution oracle supports 3-D field arrays only")
    p.Program.arrays

(* Horizontal boundaries are periodic — this is what makes halo-ring
   recomputation exactly consistent: the value at a ghost position equals
   the value the owning block computes at the wrapped position, by
   translation invariance of the value functions. *)
let wrap v n =
  let m = v mod n in
  if m < 0 then m + n else m

let clampk k nz = if k < 0 then 0 else if k >= nz then nz - 1 else k

let site_index (g : Grid.t) i j k = ((k * g.Grid.ny) + j) * g.Grid.nx + i

(* [orig_of] maps array ids to the array they are semantically: the
   renamed program's generation copies must share the original array's
   initial contents and value-function weights, or the renamed execution
   would diverge from the plain one for spurious reasons. *)
let identity_map (p : Program.t) = Array.init (Program.num_arrays p) (fun i -> i)

let init ?orig_of (p : Program.t) =
  require_3d p;
  let map = match orig_of with Some m -> m | None -> identity_map p in
  let g = p.Program.grid in
  Array.init (Program.num_arrays p) (fun a ->
      Array.init (Grid.sites g) (fun s -> hash01 [ map.(a); s ]))

let read (g : Grid.t) (buf : float array) i j k =
  buf.(site_index g (wrap i g.Grid.nx) (wrap j g.Grid.ny) (clampk k g.Grid.nz))

let value (p : Program.t) (state : state) ~array_id ~i ~j ~k =
  read p.Program.grid state.(array_id) i j k

(* Per (kernel, target array) linear combination: weights are normalized so
   values stay O(1) over long kernel chains. *)
let term_count (kern : Kernel.t) =
  List.fold_left
    (fun acc (a : Access.t) ->
      if Access.reads a then acc + Stencil.num_points a.Access.pattern else acc)
    0 kern.Kernel.accesses

let weight map (kern : Kernel.t) ~target (a : Access.t) (off : Stencil.offset) =
  let h =
    hash01
      [
        kern.Kernel.id; map.(target); map.(a.Access.array); off.Stencil.di; off.Stencil.dj;
        off.Stencil.dk;
      ]
  in
  (0.25 +. (0.75 *. h)) /. float_of_int (max 1 (term_count kern))

let bias map (kern : Kernel.t) ~target = hash01 [ kern.Kernel.id; map.(target); 7777 ]

(* Evaluate kernel [kern]'s output for [target] at a site, with reads
   supplied by [fetch : access -> offset -> float].  Evaluation order is
   fixed (access list order, offset canonical order), so the float result
   is bitwise identical whichever path provides the same operand values. *)
let eval_site map (kern : Kernel.t) ~target fetch =
  List.fold_left
    (fun acc (a : Access.t) ->
      if Access.reads a then
        List.fold_left
          (fun acc off -> acc +. (weight map kern ~target a off *. fetch a off))
          acc
          (Stencil.offsets a.Access.pattern)
      else acc)
    (bias map kern ~target) kern.Kernel.accesses

let written_arrays (kern : Kernel.t) =
  List.filter_map
    (fun (a : Access.t) -> if Access.writes a then Some a.Access.array else None)
    kern.Kernel.accesses

(* --- original (launch-order) execution --- *)

let step_original ~map (p : Program.t) (state : state) (kern : Kernel.t) =
  let g = p.Program.grid in
  let targets = written_arrays kern in
  let outs = List.map (fun a -> (a, Array.copy state.(a))) targets in
  List.iter
    (fun (target, out) ->
      for k = 0 to g.Grid.nz - 1 do
        for j = 0 to g.Grid.ny - 1 do
          for i = 0 to g.Grid.nx - 1 do
            let fetch (a : Access.t) (off : Stencil.offset) =
              read g state.(a.Access.array) (i + off.Stencil.di) (j + off.Stencil.dj)
                (k + off.Stencil.dk)
            in
            out.(site_index g i j k) <- eval_site map kern ~target fetch
          done
        done
      done)
    outs;
  List.iter (fun (a, out) -> state.(a) <- out) outs

let run_original ?orig_of (p : Program.t) =
  let map = match orig_of with Some m -> m | None -> identity_map p in
  let state = init ~orig_of:map p in
  Array.iter (fun kern -> step_original ~map p state kern) p.Program.kernels;
  state

(* --- fused (block-wise) execution --- *)

(* Per-block on-chip buffer for one staged array: the (bx+2H)·(by+2H) tile
   (ring included) of the current k-plane, addressed by block-local
   coordinates in [-H, bx+H) × [-H, by+H). *)
type tile = { halo : int; width : int; data : float array }

let make_tile ~halo ~bx ~by = { halo; width = bx + (2 * halo); data = Array.make ((bx + (2 * halo)) * (by + (2 * halo))) 0. }
let tile_get t li lj = t.data.((((lj + t.halo) * t.width) + li) + t.halo)
let tile_set t li lj v = t.data.((((lj + t.halo) * t.width) + li) + t.halo) <- v
let tile_in_bounds t ~bx ~by li lj =
  li >= -t.halo && li < bx + t.halo && lj >= -t.halo && lj < by + t.halo

let step_fused ~map (p : Program.t) (state : state) (f : Fused.t) =
  let g = p.Program.grid in
  let bx = g.Grid.block_x and by = g.Grid.block_y in
  let h = f.Fused.halo_layers in
  (* SMEM-staged pivot arrays and register-carried pivot arrays behave the
     same in the oracle: a block-local buffer (register values are one per
     site, i.e. a radius-0 buffer that still spans the ring so producers
     can fill it for consumers' ring replay). *)
  let onchip_ids =
    List.filter (fun a -> not (List.mem a f.Fused.register_reuse)) f.Fused.pivot
    @ f.Fused.register_reuse
  in
  (* Snapshot at fused-kernel entry: global reads inside the kernel see
     this (blocks run concurrently; nobody sees another block's stores). *)
  let pre = Array.map Array.copy state in
  let blocks_x = (g.Grid.nx + bx - 1) / bx in
  let blocks_y = (g.Grid.ny + by - 1) / by in
  for bj = 0 to blocks_y - 1 do
    for bi = 0 to blocks_x - 1 do
      let i0 = bi * bx and j0 = bj * by in
      let tiles = List.map (fun a -> (a, make_tile ~halo:h ~bx ~by)) onchip_ids in
      let tile_of a = List.assoc_opt a tiles in
      for k = 0 to g.Grid.nz - 1 do
        (* Stage the current plane (ring included) from global memory. *)
        List.iter
          (fun (a, t) ->
            for lj = -h to by + h - 1 do
              for li = -h to bx + h - 1 do
                tile_set t li lj (read g pre.(a) (i0 + li) (j0 + lj) k)
              done
            done)
          tiles;
        (* Segments, in aggregation order; the per-segment snapshot commit
           models the barrier (all of segment s completes before s+1
           reads). *)
        List.iter
          (fun (s : Fused.segment) ->
            let kern = Program.kernel p s.Fused.kernel in
            let d = s.Fused.halo_depth in
            let targets = written_arrays kern in
            let pending = ref [] in
            for lj = -d to by + d - 1 do
              for li = -d to bx + d - 1 do
                let gi = i0 + li and gj = j0 + lj in
                let fetch (a : Access.t) (off : Stencil.offset) =
                  let aid = a.Access.array in
                  if off.Stencil.dk <> 0 then
                    (* Vertical neighbors come from global memory (the
                       per-plane tiles cannot hold other planes). *)
                    read g pre.(aid) (gi + off.Stencil.di) (gj + off.Stencil.dj)
                      (k + off.Stencil.dk)
                  else begin
                    match tile_of aid with
                    | Some t when tile_in_bounds t ~bx ~by (li + off.Stencil.di) (lj + off.Stencil.dj)
                      ->
                        tile_get t (li + off.Stencil.di) (lj + off.Stencil.dj)
                    | _ ->
                        (* Beyond the ring (or un-staged): the boundary
                           fallback reads global memory directly. *)
                        read g pre.(aid) (gi + off.Stencil.di) (gj + off.Stencil.dj) k
                  end
                in
                List.iter
                  (fun target ->
                    pending := (target, li, lj, eval_site map kern ~target fetch) :: !pending)
                  targets
              done
            done;
            (* Commit after the whole segment evaluated: barrier. *)
            List.iter
              (fun (target, li, lj, v) ->
                (match tile_of target with
                | Some t when tile_in_bounds t ~bx ~by li lj -> tile_set t li lj v
                | _ -> ());
                (* Global stores only from the block's own tile, and only
                   for real grid sites. *)
                let gi = i0 + li and gj = j0 + lj in
                if li >= 0 && li < bx && lj >= 0 && lj < by && gi < g.Grid.nx && gj < g.Grid.ny
                then state.(target).(site_index g gi gj k) <- v)
              (List.rev !pending))
          f.Fused.segments
      done
    done
  done

let run_fused ?orig_of (fp : Fused_program.t) =
  let p = fp.Fused_program.program in
  require_3d p;
  let map = match orig_of with Some m -> m | None -> identity_map p in
  let state = init ~orig_of:map p in
  List.iter
    (fun unit_ ->
      match unit_ with
      | Fused_program.Original k -> step_original ~map p state (Program.kernel p k)
      | Fused_program.Fused f ->
          if Fused.is_singleton f then
            step_original ~map p state (Program.kernel p (List.hd f.Fused.members))
          else step_fused ~map p state f
      | Fused_program.Horizontal planes ->
          (* Planes of one horizontal launch are data-independent, so any
             execution order yields the same state; run them in canonical
             plane order. *)
          List.iter
            (function
              | Fused_program.P_original k -> step_original ~map p state (Program.kernel p k)
              | Fused_program.P_fused f ->
                  if Fused.is_singleton f then
                    step_original ~map p state (Program.kernel p (List.hd f.Fused.members))
                  else step_fused ~map p state f)
            planes)
    fp.Fused_program.units;
  state

(* --- comparison --- *)

type verdict = {
  equivalent : bool;
  max_abs_diff : float;
  worst_array : int;
  mismatched_sites : int;
}

let compare_states ?(eps = 0.) (p : Program.t) (a : state) (b : state) =
  (* [b] may come from a renamed program with extra generation copies;
     compare the original arrays only. *)
  let worst = ref 0. and worst_array = ref (-1) and mismatched = ref 0 in
  for aid = 0 to Program.num_arrays p - 1 do
    let xa = a.(aid) and xb = b.(aid) in
    for s = 0 to Array.length xa - 1 do
      let d = Float.abs (xa.(s) -. xb.(s)) in
      if d > eps then incr mismatched;
      if d > !worst then begin
        worst := d;
        worst_array := aid
      end
    done
  done;
  {
    equivalent = !mismatched = 0;
    max_abs_diff = !worst;
    worst_array = !worst_array;
    mismatched_sites = !mismatched;
  }

let check ?eps ~device (fp : Fused_program.t) =
  let p = fp.Fused_program.program in
  let dd = Datadep.build p in
  if Renaming.is_identity dd then compare_states ?eps p (run_original p) (run_fused fp)
  else begin
    (* The relaxed order-of-execution the plan was searched under is only
       sound together with the renaming transformation — materialize it
       and execute the renamed program (whose own dependencies ARE the
       relaxed graph).  Generation copies carry the original arrays'
       weights and initial contents, and the last generation keeps the
       original id, so the original program's plain execution is the
       reference. *)
    let renamed, orig_of = Renaming.materialize dd in
    let meta_r = Kf_ir.Metadata.build renamed in
    let exec_r = Kf_graph.Exec_order.build (Datadep.build renamed) in
    let fp_r = Fused_program.build ~device ~meta:meta_r ~exec:exec_r fp.Fused_program.plan in
    compare_states ?eps p (run_original p) (run_fused ~orig_of fp_r)
  end

let check_group ~device ~meta ~exec group =
  let p = Metadata.program meta in
  let n = Program.num_kernels p in
  let singles = List.filter (fun k -> not (List.mem k group)) (List.init n (fun k -> k)) in
  let plan = Plan.of_groups ~n (group :: List.map (fun k -> [ k ]) singles) in
  check ~device (Fused_program.build ~device ~meta ~exec plan)
