(** Whole-program IR: the sequence of kernel invocations of one GPU routine
    (e.g. the Runge-Kutta core of SCALE-LES in paper Fig. 1) together with
    its data arrays and grid geometry.

    Kernel and array ids are their positions in the respective arrays;
    kernel order is host invocation order.  Per the paper's single-call-site
    assumption (§II-C), each kernel appears exactly once — repeated
    invocations are modeled as distinct kernels by the workload
    generators. *)

type t = private {
  name : string;
  grid : Grid.t;
  arrays : Array_info.t array;
  kernels : Kernel.t array;
}

val create : name:string -> grid:Grid.t -> arrays:Array_info.t list -> kernels:Kernel.t list -> t
(** Builds and validates a program.  @raise Invalid_argument with a
    description of the first violated invariant. *)

val validate : t -> string list
(** All invariant violations ([] for a well-formed program): ids matching
    positions, accesses referencing existing arrays, every array touched by
    at least one kernel, register counts within the ISA bound. *)

val num_kernels : t -> int
val num_arrays : t -> int

val kernel : t -> int -> Kernel.t
(** @raise Invalid_argument on an out-of-range id. *)

val array : t -> int -> Array_info.t
(** @raise Invalid_argument on an out-of-range id. *)

val total_flops : t -> float
(** Sum of per-kernel flop counts over the grid. *)

val with_grid : t -> Grid.t -> t
(** Same program over a different grid (e.g. a scaled-down instance for
    the execution oracle).  @raise Invalid_argument on an illegal grid. *)

val restrict : t -> int list -> t
(** [restrict t keep] is the sub-program containing exactly the kernels
    of [keep] (in that order), with kernel and array ids renumbered and
    untouched arrays dropped.  Kept kernels are content-identical to the
    originals up to renumbering — the building block of streaming edit
    traces (kernel arrival = growing prefix, removal = dropped id).
    @raise Invalid_argument on an empty list or out-of-range ids. *)

val edit_kernel : t -> int -> (Kernel.t -> Kernel.t) -> t
(** [edit_kernel t id f] replaces kernel [id] by [f (kernel t id)] (the
    id itself is preserved) and re-validates the program — the "kernel
    edited" case of a streaming program delta.
    @raise Invalid_argument on an out-of-range id or if the edited
    program fails validation. *)

val with_blocks : t -> block_x:int -> block_y:int -> t
(** Same program with a different thread-block tile (the §II-D.2 tradeoff:
    larger blocks amortize halo layers but strain SMEM).
    @raise Invalid_argument on an illegal tile. *)

val pp : Format.formatter -> t -> unit
val pp_stats : Format.formatter -> t -> unit
(** One-line summary: kernel count, array count, grid. *)
