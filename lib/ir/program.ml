type t = {
  name : string;
  grid : Grid.t;
  arrays : Array_info.t array;
  kernels : Kernel.t array;
}

let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  Array.iteri
    (fun i (a : Array_info.t) -> if a.id <> i then err "array %s: id %d at position %d" a.name a.id i)
    t.arrays;
  Array.iteri
    (fun i (k : Kernel.t) -> if k.id <> i then err "kernel %s: id %d at position %d" k.name k.id i)
    t.kernels;
  let touched = Array.make (Array.length t.arrays) false in
  Array.iter
    (fun (k : Kernel.t) ->
      List.iter
        (fun (a : Access.t) ->
          if a.array < 0 || a.array >= Array.length t.arrays then
            err "kernel %s references unknown array id %d" k.name a.array
          else touched.(a.array) <- true)
        k.accesses;
      if k.registers_per_thread > 255 then
        err "kernel %s exceeds the 255 registers/thread ISA bound" k.name)
    t.kernels;
  Array.iteri
    (fun i v -> if not v then err "array %s is touched by no kernel" t.arrays.(i).name)
    touched;
  List.rev !errors

let create ~name ~grid ~arrays ~kernels =
  let t = { name; grid; arrays = Array.of_list arrays; kernels = Array.of_list kernels } in
  match validate t with
  | [] -> t
  | e :: _ -> invalid_arg (Printf.sprintf "Program.create(%s): %s" name e)

let num_kernels t = Array.length t.kernels
let num_arrays t = Array.length t.arrays

let kernel t i =
  if i < 0 || i >= num_kernels t then invalid_arg (Printf.sprintf "Program.kernel: bad id %d" i);
  t.kernels.(i)

let array t i =
  if i < 0 || i >= num_arrays t then invalid_arg (Printf.sprintf "Program.array: bad id %d" i);
  t.arrays.(i)

let total_flops t =
  Array.fold_left (fun acc k -> acc +. Kernel.total_flops k t.grid) 0. t.kernels

let with_grid t grid = { t with grid }

(* Sub-program extraction for edit traces: keep the listed kernels (in
   the given order), drop every array no survivor touches, and renumber
   both id spaces so the result passes [validate].  The survivors keep
   their full access records — only the ids are rewritten — so a kept
   kernel is recognizably "the same kernel" across program versions
   (content-identical up to renumbering), which is what the streaming
   delta relies on. *)
let restrict t keep =
  if keep = [] then invalid_arg "Program.restrict: must keep at least one kernel";
  let kept = List.map (kernel t) keep in
  let used = Array.make (num_arrays t) false in
  List.iter
    (fun (k : Kernel.t) ->
      List.iter (fun (a : Access.t) -> used.(a.array) <- true) k.accesses)
    kept;
  let remap = Array.make (num_arrays t) (-1) in
  let arrays = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun i u ->
      if u then begin
        remap.(i) <- !next;
        arrays := { t.arrays.(i) with Array_info.id = !next } :: !arrays;
        incr next
      end)
    used;
  let kernels =
    List.mapi
      (fun i (k : Kernel.t) ->
        {
          k with
          Kernel.id = i;
          accesses =
            List.map (fun (a : Access.t) -> { a with Access.array = remap.(a.array) }) k.accesses;
        })
      kept
  in
  create ~name:t.name ~grid:t.grid ~arrays:(List.rev !arrays) ~kernels

let edit_kernel t id f =
  let k = kernel t id in
  let k' = { (f k) with Kernel.id = id } in
  let kernels =
    Array.to_list (Array.mapi (fun i k0 -> if i = id then k' else k0) t.kernels)
  in
  create ~name:t.name ~grid:t.grid ~arrays:(Array.to_list t.arrays) ~kernels

let with_blocks t ~block_x ~block_y =
  let g = t.grid in
  {
    t with
    grid = Grid.make ~nx:g.Grid.nx ~ny:g.Grid.ny ~nz:g.Grid.nz ~block_x ~block_y;
  }

let pp_stats ppf t =
  Format.fprintf ppf "%s: %d kernels, %d arrays, %a" t.name (num_kernels t) (num_arrays t)
    Grid.pp t.grid

let pp ppf t =
  pp_stats ppf t;
  Format.pp_print_newline ppf ();
  Array.iter (fun k -> Format.fprintf ppf "  %a@." Kernel.pp k) t.kernels
