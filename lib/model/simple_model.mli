(** The paper's "simple model" baseline (Section IV): project a fusion's
    runtime by taking the measured original sum and subtracting the time
    the eliminated shared-array traffic used to cost at the originals'
    empirically achieved bandwidth.

    More accurate than Roofline (it starts from measurements) but still
    blind to the new kernel's resource pressure, so it too over-promises
    on fusions that crush occupancy. *)

val saved_bytes : Inputs.t -> Kf_fusion.Fused.t -> float
(** GMEM bytes the fusion eliminates: members' summed traffic minus the
    fused kernel's traffic (never negative). *)

val runtime : Inputs.t -> Kf_fusion.Fused.t -> float
(** [original_sum - saved_bytes / effective_bandwidth], floored at the
    time the remaining traffic needs at that same bandwidth. *)

val group_runtime : Inputs.t -> int list -> float

val arena_runtime : Feature_arena.scratch -> dev:int -> float
(** Allocation-free runtime off a loaded, analyzed and device-[fuse]d
    arena scratch — bit-identical to the legacy path for the same group
    and device.  Singleton scratches return the measured runtime. *)
