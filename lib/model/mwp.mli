(** MWP-CWP analytical model (after Hong & Kim, ISCA'09) — the expensive,
    code-representation-dependent performance model the paper contrasts
    its codeless projection against (GROPHECY adopts this model; the paper
    measures ~3 ms per evaluation and extrapolates 2.1e39 hours for an
    exhaustive SCALE-LES search).

    The model walks a per-warp instruction estimate of the candidate code
    (that estimate *is* a code representation — it must be reconstructed
    for every candidate, which is what makes it slow at search scale) and
    balances memory warp parallelism (MWP) against computation warp
    parallelism (CWP) to predict cycles. *)

type estimate = {
  cycles : float;
  mwp : float;  (** memory warp parallelism actually achievable *)
  cwp : float;  (** computation warp parallelism *)
  runtime_s : float;
}

val evaluate : Inputs.t -> Kf_fusion.Fused.t -> estimate
(** Full MWP-CWP evaluation of a candidate (deliberately reconstructs the
    per-warp instruction stream on every call, like a code-skeleton-based
    tool would). *)

val runtime : Inputs.t -> Kf_fusion.Fused.t -> float

val group_runtime : Inputs.t -> int list -> float

val arena_runtime : Feature_arena.scratch -> dev:int -> float
(** Allocation-free runtime off a loaded, analyzed and device-[fuse]d
    arena scratch — bit-identical to the legacy path for the same group
    and device.  Singleton scratches return the measured runtime. *)
