(** The Roofline model (Williams, Waterman & Patterson) as a projection
    baseline.

    Performance is bounded by [min(peak, OI * BW)] where OI is the
    kernel's operational intensity.  The paper uses Roofline as the
    strawman objective: it is blind to the resource pressure fusion
    creates (occupancy loss, register pressure, bank conflicts), so it
    systematically over-promises — the motivating example's Kernel Y is
    projected at 336 µs by Roofline but measures 554 µs. *)

val attainable_gflops : Inputs.t -> Kf_fusion.Fused.t -> float
(** [min(peak, OI * BW)] for the candidate's aggregate flops and traffic. *)

val runtime : Inputs.t -> Kf_fusion.Fused.t -> float
(** Projected runtime: total flops over {!attainable_gflops}. *)

val group_runtime : Inputs.t -> int list -> float
(** Singletons return the measured runtime. *)

val arena_runtime : Feature_arena.scratch -> dev:int -> float
(** Allocation-free runtime off a loaded, analyzed and device-[fuse]d
    arena scratch — bit-identical to the legacy path for the same group
    and device.  Singleton scratches return the measured runtime. *)
