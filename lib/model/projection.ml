module Device = Kf_gpu.Device
module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Grid = Kf_ir.Grid
module Fused = Kf_fusion.Fused

type projection = {
  runtime_s : float;
  p_membound_gflops : float;
  b_sh : float;
  b_eff : float;
  blocks_smx : int;
  registers_per_thread : int;
  smem_bytes : int;
  feasible : bool;
}

let singleton_projection (i : Inputs.t) k =
  {
    runtime_s = i.Inputs.measured_runtime.(k);
    p_membound_gflops = 0.;
    b_sh = 0.;
    b_eff = 0.;
    blocks_smx = 0;
    registers_per_thread = (Program.kernel i.Inputs.program k).Kernel.registers_per_thread;
    smem_bytes = 0;
    feasible = true;
  }

let project (i : Inputs.t) (f : Fused.t) =
  match f.Fused.members with
  | [ k ] -> singleton_projection i k
  | members ->
      let d = i.Inputs.device in
      let p = i.Inputs.program in
      let grid = p.Program.grid in
      let thr = Grid.threads_per_block grid in
      let b = Grid.blocks grid in
      (* T_B: the least active-thread count among the originals. *)
      let t_b =
        List.fold_left (fun acc k -> min acc (Kernel.active_threads (Program.kernel p k) grid))
          thr members
      in
      let staged = Fused.smem_staged_count f in
      let c = if f.Fused.halo_layers > 0 then 1 else 0 in
      let h_th = if thr = 0 then 0 else (f.Fused.halo_bytes + thr - 1) / thr in
      (* Eqns. 4-6: per-thread register demand of the new kernel — the
         heaviest member's base pressure plus blocking registers for the
         widest pivot thread load, the fetch register and the halo share. *)
      (* Eqns. 4-6 register demand: Fused.build already derives it from
         member metadata alone (base pressure + blocking registers +
         fetch/halo shares), so the model reads it off the candidate. *)
      let r_t = f.Fused.registers_per_thread in
      (* Residency (Eqns. 3 and 7). *)
      let smem_bytes = f.Fused.smem_bytes_per_block in
      let by_regs = d.Device.registers_per_smx / (thr * r_t) in
      let by_smem = if smem_bytes = 0 then d.Device.max_blocks_per_smx else d.Device.smem_per_smx / smem_bytes in
      let by_threads = d.Device.max_threads_per_smx / thr in
      let blocks_smx = min (min by_regs by_smem) (min by_threads d.Device.max_blocks_per_smx) in
      let feasible =
        r_t <= d.Device.max_registers_per_thread
        && smem_bytes <= d.Device.smem_per_smx
        && blocks_smx >= 1
      in
      let total_flops = Fused.total_flops p f in
      let warps_per_block = (thr + d.Device.warp_size - 1) / d.Device.warp_size in
      (* Eq. 8's blocking factor, reported as the paper defines it.  The
         printed Eq. 9 (B_eff = B_Sh*SMX/(Thr*B), P = B_eff*BW/8) is not
         scale-invariant — B grows with the grid while B_Sh does not, so
         projected performance would fall quadratically with problem size.
         The runtime bound below therefore reinterprets Eq. 9 in the
         scale-free form the worked example implies: performance is the
         new kernel's operational intensity times the best GMEM rate its
         members demonstrated, attenuated by the latency-hiding loss when
         the fused kernel's resource demand drops the resident-warp count
         below what the DRAM round-trip needs (this is exactly the effect
         B_eff exists to capture). *)
      let b_sh =
        if staged = 0 then 0.
        else float_of_int (t_b * blocks_smx) /. float_of_int ((1 + (c * h_th)) * staged)
      in
      let b_eff = b_sh *. float_of_int d.Device.smx_count /. float_of_int (thr * b) in
      let p_membound =
        if not feasible then 0.
        else begin
          let oi = total_flops /. Fused.gmem_bytes p f in
          (* Best sustained GMEM rate among the originals: the ceiling a
             perfectly latency-hidden fusion of them can stream at. *)
          let bw_base =
            List.fold_left
              (fun acc k ->
                let rt = i.Inputs.measured_runtime.(k) in
                if rt > 0. then Float.max acc (i.Inputs.measured_bytes.(k) /. rt /. 1e9)
                else acc)
              0. members
          in
          let bw_base = if bw_base > 0. then bw_base else d.Device.gmem_bandwidth_gbs in
          (* Warps needed to keep the SMX's share of DRAM busy: outstanding
             128B transactions over the round trip, ~2 in flight per warp. *)
          let w_required =
            Device.bytes_per_cycle d /. float_of_int d.Device.smx_count
            *. float_of_int d.Device.gmem_latency_cycles /. 128. /. 2.
          in
          let w_active = float_of_int (blocks_smx * warps_per_block) in
          let active_frac = float_of_int t_b /. float_of_int thr in
          let e_occ = Float.min 1.0 (w_active *. active_frac /. w_required) in
          let barriers =
            List.length (List.filter (fun s -> s.Fused.barrier_before) f.Fused.segments)
            + if staged > 0 then 1 else 0
          in
          let e_barrier = 1. /. (1. +. (0.02 *. float_of_int barriers)) in
          oi *. bw_base *. e_occ *. e_barrier
        end
      in
      let runtime_s =
        if (not feasible) || p_membound <= 0. then Float.infinity
        else total_flops /. (p_membound *. 1e9)
      in
      {
        runtime_s;
        p_membound_gflops = p_membound;
        b_sh;
        b_eff;
        blocks_smx;
        registers_per_thread = r_t;
        smem_bytes;
        feasible;
      }

let runtime i f = (project i f).runtime_s

(* Per-group entry point for incremental evaluators: project one group of
   a plan in isolation.  Plan cost decomposes as a sum over groups, so a
   caller that knows which groups changed can re-project exactly those and
   reuse cached projections for the rest. *)
let project_group (i : Inputs.t) group =
  let f =
    Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group
  in
  project i f

let group_runtime (i : Inputs.t) group =
  match group with
  | [ k ] -> i.Inputs.measured_runtime.(k)
  | _ -> (project_group i group).runtime_s

(* --- allocation-free arena backend ------------------------------------ *)

module A = Feature_arena

(* The runtime bound only: every float expression below replays the exact
   association of [project] above, reading precomputed features instead of
   a [Fused.t] — and allocates nothing.  [b_sh]/[b_eff] are diagnostic
   outputs that do not feed [runtime_s], so this path skips them. *)
let arena_runtime scr ~dev =
  let a = A.arena scr in
  if A.member_count scr = 1 then (A.measured_runtime a ~dev).(A.member scr 0)
  else begin
    let d = A.device a dev in
    let thr = A.grid_threads a in
    let t_b = A.t_b scr in
    let staged = A.smem_staged_count scr in
    let r_t = A.registers_per_thread scr in
    let smem_bytes = A.smem_bytes_per_block scr in
    let by_regs = d.Device.registers_per_smx / (thr * r_t) in
    let by_smem =
      if smem_bytes = 0 then d.Device.max_blocks_per_smx
      else d.Device.smem_per_smx / smem_bytes
    in
    let by_threads = d.Device.max_threads_per_smx / thr in
    let blocks_smx = min (min by_regs by_smem) (min by_threads d.Device.max_blocks_per_smx) in
    let feasible =
      r_t <= d.Device.max_registers_per_thread
      && smem_bytes <= d.Device.smem_per_smx
      && blocks_smx >= 1
    in
    let total_flops = A.total_flops scr in
    let warps_per_block = (thr + d.Device.warp_size - 1) / d.Device.warp_size in
    let p_membound =
      if not feasible then 0.
      else begin
        let oi = total_flops /. A.gmem_bytes scr in
        let rt_arr = A.measured_runtime a ~dev and by_arr = A.measured_bytes a ~dev in
        let bw_base = ref 0. in
        for i = 0 to A.member_count scr - 1 do
          let k = A.member scr i in
          let rt = rt_arr.(k) in
          if rt > 0. then bw_base := Float.max !bw_base (by_arr.(k) /. rt /. 1e9)
        done;
        let bw_base = if !bw_base > 0. then !bw_base else d.Device.gmem_bandwidth_gbs in
        let w_required =
          Device.bytes_per_cycle d /. float_of_int d.Device.smx_count
          *. float_of_int d.Device.gmem_latency_cycles /. 128. /. 2.
        in
        let w_active = float_of_int (blocks_smx * warps_per_block) in
        let active_frac = float_of_int t_b /. float_of_int thr in
        let e_occ = Float.min 1.0 (w_active *. active_frac /. w_required) in
        let barriers = A.barrier_count scr + if staged > 0 then 1 else 0 in
        let e_barrier = 1. /. (1. +. (0.02 *. float_of_int barriers)) in
        oi *. bw_base *. e_occ *. e_barrier
      end
    in
    if (not feasible) || p_membound <= 0. then Float.infinity
    else total_flops /. (p_membound *. 1e9)
  end

(* Full projection record off the arena (reporting path: allocates the
   record and the diagnostic [b_sh]/[b_eff], unlike [arena_runtime]). *)
let arena_project scr ~dev =
  let a = A.arena scr in
  if A.member_count scr = 1 then singleton_projection (A.inputs a dev) (A.member scr 0)
  else begin
    let d = A.device a dev in
    let thr = A.grid_threads a in
    let b = A.grid_blocks a in
    let t_b = A.t_b scr in
    let staged = A.smem_staged_count scr in
    let c = if A.halo_layers scr > 0 then 1 else 0 in
    let h_th = if thr = 0 then 0 else (A.halo_bytes scr + thr - 1) / thr in
    let r_t = A.registers_per_thread scr in
    let smem_bytes = A.smem_bytes_per_block scr in
    let by_regs = d.Device.registers_per_smx / (thr * r_t) in
    let by_smem =
      if smem_bytes = 0 then d.Device.max_blocks_per_smx
      else d.Device.smem_per_smx / smem_bytes
    in
    let by_threads = d.Device.max_threads_per_smx / thr in
    let blocks_smx = min (min by_regs by_smem) (min by_threads d.Device.max_blocks_per_smx) in
    let feasible =
      r_t <= d.Device.max_registers_per_thread
      && smem_bytes <= d.Device.smem_per_smx
      && blocks_smx >= 1
    in
    let total_flops = A.total_flops scr in
    let warps_per_block = (thr + d.Device.warp_size - 1) / d.Device.warp_size in
    let b_sh =
      if staged = 0 then 0.
      else float_of_int (t_b * blocks_smx) /. float_of_int ((1 + (c * h_th)) * staged)
    in
    let b_eff = b_sh *. float_of_int d.Device.smx_count /. float_of_int (thr * b) in
    let p_membound =
      if not feasible then 0.
      else begin
        let oi = total_flops /. A.gmem_bytes scr in
        let rt_arr = A.measured_runtime a ~dev and by_arr = A.measured_bytes a ~dev in
        let bw_base = ref 0. in
        for i = 0 to A.member_count scr - 1 do
          let k = A.member scr i in
          let rt = rt_arr.(k) in
          if rt > 0. then bw_base := Float.max !bw_base (by_arr.(k) /. rt /. 1e9)
        done;
        let bw_base = if !bw_base > 0. then !bw_base else d.Device.gmem_bandwidth_gbs in
        let w_required =
          Device.bytes_per_cycle d /. float_of_int d.Device.smx_count
          *. float_of_int d.Device.gmem_latency_cycles /. 128. /. 2.
        in
        let w_active = float_of_int (blocks_smx * warps_per_block) in
        let active_frac = float_of_int t_b /. float_of_int thr in
        let e_occ = Float.min 1.0 (w_active *. active_frac /. w_required) in
        let barriers = A.barrier_count scr + if staged > 0 then 1 else 0 in
        let e_barrier = 1. /. (1. +. (0.02 *. float_of_int barriers)) in
        oi *. bw_base *. e_occ *. e_barrier
      end
    in
    let runtime_s =
      if (not feasible) || p_membound <= 0. then Float.infinity
      else total_flops /. (p_membound *. 1e9)
    in
    {
      runtime_s;
      p_membound_gflops = p_membound;
      b_sh;
      b_eff;
      blocks_smx;
      registers_per_thread = r_t;
      smem_bytes;
      feasible;
    }
  end

(* One structural analysis amortized over the whole device table: the
   multi-device analogue of [project_group].  Results are per arena
   device, index-aligned with [Feature_arena.devices]. *)
let project_group_multi a group =
  let ndev = A.num_devices a in
  match group with
  | [ k ] -> Array.init ndev (fun dev -> singleton_projection (A.inputs a dev) k)
  | _ ->
      let scr = A.load a group in
      A.analyze scr;
      let out = Array.make ndev (singleton_projection (A.inputs a 0) 0) in
      for dev = 0 to ndev - 1 do
        A.fuse scr ~dev;
        out.(dev) <- arena_project scr ~dev
      done;
      out

let pp ppf pr =
  Format.fprintf ppf
    "T=%.1fus P=%.1fGF B_sh=%.0f B_eff=%.3f blocks=%d regs=%d smem=%dB %s"
    (pr.runtime_s *. 1e6) pr.p_membound_gflops pr.b_sh pr.b_eff pr.blocks_smx
    pr.registers_per_thread pr.smem_bytes
    (if pr.feasible then "feasible" else "INFEASIBLE")
