(** Structure-of-arrays feature arena for allocation-free group evaluation.

    The legacy evaluation leaf rebuilds a {!Kf_fusion.Fused.t} — lists,
    closures, a record — for every candidate group, tens of millions of
    times per search.  The arena precomputes every immutable per-kernel,
    per-array and per-edge feature the models read (the paper's Table III
    metadata plus the derived graph features) into flat arrays {e once per
    program}, and turns one group evaluation into index arithmetic over a
    per-domain scratch buffer: no allocation on the hot path.

    The arena path is {e bit-identical} to the legacy path: structural
    predicates are boolean-identical reformulations, integer features are
    the same max/sum over the same multisets, float folds replay the legacy
    association in the legacy (execution) order, and the one aggregation
    whose float order is an implementation artifact — per-array GMEM
    traffic — runs the very same code via {!Kf_fusion.Fused.gmem_bytes_iter}.
    [test/test_arena.ml] enforces the equivalence differentially.

    Because almost all of the per-group work ({!analyze} and everything
    before it) is device-independent, an arena built over several devices'
    {!Inputs} amortizes it: one [load]/[analyze] followed by one cheap
    {!fuse} + model call per device — the basis of the multi-device
    portfolio sweep. *)

type t
(** Immutable per-program feature tables plus per-domain scratches. *)

type scratch
(** Per-domain mutable evaluation state.  A scratch belongs to the domain
    that obtained it from {!load}; its contents are valid until that
    domain's next [load]. *)

val create : Inputs.t -> extra:Inputs.t list -> t
(** [create primary ~extra] builds the arena for [primary]'s program.
    [extra] lists further devices' inputs (device index 1, 2, … in
    {!fuse}/model calls; the primary is device 0).
    @raise Invalid_argument when an element of [extra] was built over a
    different program value ([!=]) than [primary]. *)

(** {1 Arena-level accessors} *)

val num_devices : t -> int
val device : t -> int -> Kf_gpu.Device.t
val devices : t -> Kf_gpu.Device.t array
val inputs : t -> int -> Inputs.t
val program : t -> Kf_ir.Program.t

val measured_runtime : t -> dev:int -> float array
(** Measured per-kernel runtimes on device [dev] (do not mutate). *)

val measured_bytes : t -> dev:int -> float array
val grid_threads : t -> int
val grid_blocks : t -> int
val grid_nz : t -> int

(** {1 Group evaluation}

    Call order per group: {!load}, then the structural predicates (valid
    before {!analyze} — they expect the loaded member set), then
    {!analyze}, then {!fuse} once per device of interest, reading the
    feature accessors after the corresponding step. *)

val load : t -> int list -> scratch
(** Load a duplicate-free group (canonically sorted, as the search caches
    produce) into this domain's scratch.  O(|group|): all scratch sets are
    epoch-stamped, nothing is cleared.
    @raise Invalid_argument on an empty group. *)

val connected : scratch -> bool
(** Kinship connectivity — boolean-identical to
    {!Kf_ir.Metadata.kinship_connected}. *)

val spans_sync : scratch -> bool
(** Identical to {!Kf_graph.Exec_order.group_spans_sync}, via the
    precomputed cumulative sync-point counts. *)

val convex : scratch -> bool
(** Identical to {!Kf_graph.Exec_order.group_is_convex}: a non-member on
    a member-to-member path is a member of both the union of members'
    descendant sets and the union of their ancestor sets. *)

val structurally_fusable : scratch -> bool
(** [connected && not spans_sync && convex]. *)

val analyze : scratch -> unit
(** Device-independent analysis: orders members by execution rank,
    derives barriers, halo depths, the pivot partition, flop totals —
    everything {!Kf_fusion.Fused.build} derives that does not depend on
    the device. *)

val fuse : scratch -> dev:int -> unit
(** Device-dependent features (read-only-cache split, SMEM/halo bytes,
    register demand) for device [dev].  Requires {!analyze}; overwrites
    the previous [fuse] results in place. *)

(** {1 Feature accessors} (valid after {!analyze}; the ones marked [fuse]
    additionally require {!fuse} and reflect its device) *)

val arena : scratch -> t
val member_count : scratch -> int

val member : scratch -> int -> int
(** Members in execution (aggregation) order after {!analyze}. *)

val is_complex : scratch -> bool
val halo_layers : scratch -> int
val vertical_hazard : scratch -> bool
val barrier_count : scratch -> int

val t_b : scratch -> int
(** Table III [T_B] of the fused kernel: least active-thread count. *)

val total_flops : scratch -> float
(** Bit-identical to {!Kf_fusion.Fused.total_flops} of the candidate. *)

val gmem_bytes : scratch -> float
(** Bit-identical to {!Kf_fusion.Fused.gmem_bytes} (the same code runs).
    Lazy: computed on first demand after {!analyze}, memoized for the
    scratch's current group. *)

val smem_staged_count : scratch -> int
(** [fuse]-dependent. *)

val staged_all_count : scratch -> int
(** SMEM-staging candidates before the read-only-cache split (the MWP
    model's staged set; device-independent). *)

val register_reuse_count : scratch -> int

val smem_bytes_per_block : scratch -> int
(** [fuse]-dependent. *)

val ro_bytes_per_block : scratch -> int
(** [fuse]-dependent. *)

val halo_bytes : scratch -> int
(** [fuse]-dependent. *)

val registers_per_thread : scratch -> int
(** [fuse]-dependent. *)

val mwp_iter_counts : scratch -> int * int * int
(** [(mem, comp, sync)] instruction counts of one vertical-loop iteration
    of the MWP-CWP warp stream ({!Mwp}), identical to counting the legacy
    reconstructed stream. *)
