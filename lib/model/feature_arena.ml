module Device = Kf_gpu.Device
module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Access = Kf_ir.Access
module Stencil = Kf_ir.Stencil
module Grid = Kf_ir.Grid
module Metadata = Kf_ir.Metadata
module Array_info = Kf_ir.Array_info
module Datadep = Kf_graph.Datadep
module Exec_order = Kf_graph.Exec_order
module Dag = Kf_graph.Dag
module Fused = Kf_fusion.Fused
module Bitset = Kf_util.Bitset

(* Structure-of-arrays arena: every immutable per-kernel / per-array /
   per-edge feature the projection models read (paper Table III) is
   precomputed once per program into flat int/float arrays, and group
   evaluation becomes index arithmetic over per-domain scratch buffers.

   Bit-identity discipline: every float accumulation below replays the
   legacy code's fold order (member traversal in execution order, the
   same operator association), integer quantities are order-insensitive
   (max/sum over the same multiset), the structural predicates are
   boolean-identical reformulations, and the one aggregation whose float
   order is an implementation artifact (the per-array GMEM traffic
   hashtable fold) calls the {e same} code via
   {!Fused.gmem_bytes_iter}. *)

type t = {
  inputs : Inputs.t array;  (* one per device, primary first *)
  devices : Device.t array;
  program : Program.t;
  nk : int;
  na : int;
  thr : int;
  blocks : int;
  nz : int;
  sites : int;
  grid : Grid.t;
  rank : int array;  (* position of each kernel in the full group order *)
  sync_le : int array;  (* #sync points <= k, per kernel id *)
  has_syncs : bool;
  kin_off : int array;  (* CSR kinship adjacency *)
  kin_adj : int array;
  desc : Bitset.t array;  (* per-kernel DAG descendants *)
  anc : Bitset.t array;  (* per-kernel DAG ancestors *)
  (* flow edges, program edge-list order *)
  fe_src : int array;
  fe_dst : int array;
  fe_arr : int array;
  fe_radius : int array;  (* consumer read radius (0 when not reading) *)
  fe_vert : bool array;  (* consumer reads with vertical extent > 0 *)
  (* per kernel *)
  k_regs : int array;
  k_fps : float array;
  k_fps_ceil : int array;  (* ceil of flops/site: MWP Comp slots *)
  k_active : int array;  (* active threads per block *)
  k_arrays_off : int array;  (* CSR: arrays the kernel touches (access order) *)
  k_arrays : int array;
  k_smem_off : int array;  (* CSR: the kernel's own SMEM-staged arrays *)
  k_smem : int array;
  k_reads_off : int array;  (* CSR: read accesses as (array, stencil points) *)
  k_reads_arr : int array;
  k_reads_np : int array;
  k_writes : int array;  (* number of writing accesses *)
  (* per (kernel, array), dense [k * na + a] *)
  kl_load : int array;  (* thread load *)
  kl_acc : int array;  (* 0 = no access, 1 = reads (incl. RW), 2 = writes only *)
  (* per array *)
  a_elem : int array;
  a_tile : int array;  (* threads_per_block * elem_bytes *)
  a_ro : bool array;  (* program-wide read-only (read-only-cache eligible) *)
  (* per device *)
  runtime : float array array;  (* measured kernel runtimes, [dev].(k) *)
  bytes : float array array;  (* measured kernel GMEM traffic, [dev].(k) *)
  reg_lock : Mutex.t;  (* guards [scratches] registration *)
  mutable scratches : (int * scratch) list;  (* keyed by domain id *)
}

(* Per-domain scratch: stamped arrays (an [epoch] bump empties every set
   in O(1)) plus the mutable scalars one group evaluation produces.
   Touched only by its owning domain. *)
and scratch = {
  ar : t;
  mutable epoch : int;
  mutable m_count : int;
  members : int array;  (* sorted at [load]; execution order after [analyze] *)
  k_stamp : int array;  (* membership marker *)
  k_pos : int array;  (* position of a member in [members] *)
  v_stamp : int array;  (* kinship BFS visited marker *)
  queue : int array;
  u_desc : Bitset.t;
  u_anc : Bitset.t;
  mem_bs : Bitset.t;
  (* analyze results (device-independent) *)
  barrier : bool array;  (* per member position *)
  depth : int array;  (* per member position: halo ring depth *)
  mutable complex : bool;
  mutable halo_layers : int;
  mutable vertical_hazard : bool;
  mutable n_barriers : int;
  a_stamp : int array;  (* array-touched marker *)
  a_count : int array;  (* touches by members *)
  a_load : int array;  (* max thread load over members *)
  prod_stamp : int array;  (* internally-produced marker *)
  ext_stamp : int array;
  ext_val : bool array;  (* externally fetched (valid for staged_all) *)
  stall_stamp : int array;  (* staged_all membership marker *)
  piv : int array;  (* pivot arrays, ascending id *)
  mutable piv_n : int;
  stall : int array;  (* staged_all = pivot \ register_reuse, ascending *)
  mutable stall_n : int;
  mutable rr_n : int;  (* |register_reuse| *)
  mutable t_b : int;
  mutable base_regs : int;
  mutable tflops : float;
  mutable gmem : float;
  mutable gmem_epoch : int;  (* lazy-memo validity marker *)
  (* fuse results (device-dependent, overwritten per [fuse]) *)
  mutable fuse_tick : int;
  s_stamp : int array;  (* SMEM-staged membership marker for current fuse *)
  staged : int array;
  mutable staged_n : int;
  ro : int array;
  mutable ro_n : int;
  mutable smem_bytes : int;
  mutable ro_bytes : int;
  mutable halo_b : int;
  mutable registers : int;
}

let create (primary : Inputs.t) ~extra =
  List.iter
    (fun (ex : Inputs.t) ->
      if ex.Inputs.program != primary.Inputs.program then
        invalid_arg
          "Feature_arena.create: every device's inputs must be built over the same \
           program value")
    extra;
  let inputs = Array.of_list (primary :: extra) in
  let program = primary.Inputs.program in
  let meta = primary.Inputs.meta in
  let exec = primary.Inputs.exec in
  let nk = Program.num_kernels program in
  let na = Program.num_arrays program in
  let grid = program.Program.grid in
  let thr = Grid.threads_per_block grid in
  let rank = Array.make nk 0 in
  List.iteri (fun i k -> rank.(k) <- i) (Exec_order.group_order exec (List.init nk Fun.id));
  let syncs = Exec_order.sync_points exec in
  let sync_le = Array.make (max nk 1) 0 in
  List.iter (fun s -> if s >= 0 && s < nk then sync_le.(s) <- sync_le.(s) + 1) syncs;
  for i = 1 to nk - 1 do
    sync_le.(i) <- sync_le.(i) + sync_le.(i - 1)
  done;
  let kin_off = Array.make (nk + 1) 0 in
  for k = 0 to nk - 1 do
    kin_off.(k + 1) <- kin_off.(k) + List.length (Metadata.kin_neighbors meta k)
  done;
  let kin_adj = Array.make (max kin_off.(nk) 1) 0 in
  for k = 0 to nk - 1 do
    List.iteri
      (fun i nb -> kin_adj.(kin_off.(k) + i) <- nb)
      (Metadata.kin_neighbors meta k)
  done;
  let dag = Exec_order.dag exec in
  let dd = Exec_order.datadep exec in
  let flows =
    List.filter (fun (e : Datadep.edge) -> e.kind = Datadep.Flow) (Datadep.edges dd)
  in
  let ne = List.length flows in
  let fe_src = Array.make (max ne 1) 0
  and fe_dst = Array.make (max ne 1) 0
  and fe_arr = Array.make (max ne 1) 0
  and fe_radius = Array.make (max ne 1) 0
  and fe_vert = Array.make (max ne 1) false in
  List.iteri
    (fun i (e : Datadep.edge) ->
      fe_src.(i) <- e.src;
      fe_dst.(i) <- e.dst;
      fe_arr.(i) <- e.array;
      (match Kernel.access_for (Program.kernel program e.dst) e.array with
      | Some a when Access.reads a ->
          fe_radius.(i) <- Stencil.radius a.pattern;
          fe_vert.(i) <- Stencil.vertical_extent a.pattern > 0
      | _ -> ()))
    flows;
  let csr per_kernel =
    let off = Array.make (nk + 1) 0 in
    for k = 0 to nk - 1 do
      off.(k + 1) <- off.(k) + List.length (per_kernel k)
    done;
    let dat = Array.make (max off.(nk) 1) 0 in
    for k = 0 to nk - 1 do
      List.iteri (fun i x -> dat.(off.(k) + i) <- x) (per_kernel k)
    done;
    (off, dat)
  in
  let k_arrays_off, k_arrays = csr (fun k -> Kernel.arrays (Program.kernel program k)) in
  let k_smem_off, k_smem =
    csr (fun k -> Kernel.smem_staged_arrays (Program.kernel program k))
  in
  let reads k =
    List.filter (fun (a : Access.t) -> Access.reads a)
      (Program.kernel program k).Kernel.accesses
  in
  let k_reads_off, k_reads_arr = csr (fun k -> List.map (fun (a : Access.t) -> a.array) (reads k)) in
  let _, k_reads_np =
    csr (fun k -> List.map (fun (a : Access.t) -> Stencil.num_points a.pattern) (reads k))
  in
  let kl_load = Array.make (max (nk * na) 1) 0 in
  let kl_acc = Array.make (max (nk * na) 1) 0 in
  for k = 0 to nk - 1 do
    let kern = Program.kernel program k in
    for a = 0 to na - 1 do
      kl_load.((k * na) + a) <- Kernel.thread_load kern a;
      kl_acc.((k * na) + a) <-
        (match Kernel.access_for kern a with
        | Some acc when Access.reads acc -> 1
        | Some acc when Access.writes acc -> 2
        | _ -> 0)
    done
  done;
  {
    inputs;
    devices = Array.map (fun (i : Inputs.t) -> i.Inputs.device) inputs;
    program;
    nk;
    na;
    thr;
    blocks = Grid.blocks grid;
    nz = grid.Grid.nz;
    sites = Grid.sites grid;
    grid;
    rank;
    sync_le;
    has_syncs = syncs <> [];
    kin_off;
    kin_adj;
    desc = Array.init nk (fun u -> Dag.descendants dag u);
    anc = Array.init nk (fun u -> Dag.ancestors dag u);
    fe_src;
    fe_dst;
    fe_arr;
    fe_radius;
    fe_vert;
    k_regs =
      Array.init nk (fun k -> (Program.kernel program k).Kernel.registers_per_thread);
    k_fps = Array.init nk (fun k -> Kernel.flops_per_site (Program.kernel program k));
    k_fps_ceil =
      Array.init nk (fun k ->
          int_of_float (Float.ceil (Kernel.flops_per_site (Program.kernel program k))));
    k_active = Array.init nk (fun k -> Kernel.active_threads (Program.kernel program k) grid);
    k_arrays_off;
    k_arrays;
    k_smem_off;
    k_smem;
    k_reads_off;
    k_reads_arr;
    k_reads_np;
    k_writes =
      Array.init nk (fun k ->
          List.length
            (List.filter
               (fun (a : Access.t) -> Access.writes a)
               (Program.kernel program k).Kernel.accesses));
    kl_load;
    kl_acc;
    a_elem = Array.init na (fun a -> (Program.array program a).Array_info.elem_bytes);
    a_tile =
      Array.init na (fun a -> thr * (Program.array program a).Array_info.elem_bytes);
    a_ro = Array.init na (fun a -> Datadep.array_class dd a = Datadep.Read_only);
    runtime = Array.map (fun (i : Inputs.t) -> i.Inputs.measured_runtime) inputs;
    bytes = Array.map (fun (i : Inputs.t) -> i.Inputs.measured_bytes) inputs;
    reg_lock = Mutex.create ();
    scratches = [];
  }

let num_devices t = Array.length t.devices
let device t dev = t.devices.(dev)
let devices t = Array.copy t.devices
let inputs t dev = t.inputs.(dev)
let program t = t.program
let measured_runtime t ~dev = t.runtime.(dev)
let measured_bytes t ~dev = t.bytes.(dev)

let make_scratch t =
  {
    ar = t;
    epoch = 0;
    m_count = 0;
    members = Array.make (max t.nk 1) 0;
    k_stamp = Array.make (max t.nk 1) (-1);
    k_pos = Array.make (max t.nk 1) 0;
    v_stamp = Array.make (max t.nk 1) (-1);
    queue = Array.make (max t.nk 1) 0;
    u_desc = Bitset.create t.nk;
    u_anc = Bitset.create t.nk;
    mem_bs = Bitset.create t.nk;
    barrier = Array.make (max t.nk 1) false;
    depth = Array.make (max t.nk 1) 0;
    complex = false;
    halo_layers = 0;
    vertical_hazard = false;
    n_barriers = 0;
    a_stamp = Array.make (max t.na 1) (-1);
    a_count = Array.make (max t.na 1) 0;
    a_load = Array.make (max t.na 1) 0;
    prod_stamp = Array.make (max t.na 1) (-1);
    ext_stamp = Array.make (max t.na 1) (-1);
    ext_val = Array.make (max t.na 1) false;
    stall_stamp = Array.make (max t.na 1) (-1);
    piv = Array.make (max t.na 1) 0;
    piv_n = 0;
    stall = Array.make (max t.na 1) 0;
    stall_n = 0;
    rr_n = 0;
    t_b = 0;
    base_regs = 0;
    tflops = 0.;
    gmem = 0.;
    gmem_epoch = -1;
    fuse_tick = 0;
    s_stamp = Array.make (max t.na 1) (-1);
    staged = Array.make (max t.na 1) 0;
    staged_n = 0;
    ro = Array.make (max t.na 1) 0;
    ro_n = 0;
    smem_bytes = 0;
    ro_bytes = 0;
    halo_b = 0;
    registers = 0;
  }

(* Same registration discipline as [Objective.local_of]: the list is
   immutable (registration conses a new head under the lock), a domain
   always sees its own entry, and missing concurrent entries only mean
   this walk does not find them. *)
let local_of t =
  let did = (Domain.self () :> int) in
  let rec find = function
    | [] -> None
    | (d, s) :: tl -> if d = did then Some s else find tl
  in
  match find t.scratches with
  | Some s -> s
  | None ->
      let s = make_scratch t in
      Mutex.lock t.reg_lock;
      t.scratches <- (did, s) :: t.scratches;
      Mutex.unlock t.reg_lock;
      s

let load t group =
  if group = [] then invalid_arg "Feature_arena.load: empty group";
  let scr = local_of t in
  scr.epoch <- scr.epoch + 1;
  let m = ref 0 in
  List.iter
    (fun k ->
      scr.members.(!m) <- k;
      scr.k_stamp.(k) <- scr.epoch;
      incr m)
    group;
  scr.m_count <- !m;
  scr

(* --- structural predicates (boolean-identical to the legacy checks) --- *)

let connected scr =
  let m = scr.m_count in
  if m <= 1 then true
  else begin
    let t = scr.ar in
    let e = scr.epoch in
    let head = ref 0 and tail = ref 0 in
    let push k =
      scr.queue.(!tail) <- k;
      incr tail;
      scr.v_stamp.(k) <- e
    in
    push scr.members.(0);
    while !head < !tail do
      let k = scr.queue.(!head) in
      incr head;
      for i = t.kin_off.(k) to t.kin_off.(k + 1) - 1 do
        let nb = t.kin_adj.(i) in
        if scr.k_stamp.(nb) = e && scr.v_stamp.(nb) <> e then push nb
      done
    done;
    !tail = m
  end

let spans_sync scr =
  let t = scr.ar in
  if (not t.has_syncs) || scr.m_count <= 1 then false
  else begin
    (* A sync point s splits the group iff some member <= s and some
       member > s, i.e. a sync point lies in [min, max-1]. *)
    let min_m = ref scr.members.(0) and max_m = ref scr.members.(0) in
    for i = 1 to scr.m_count - 1 do
      let k = scr.members.(i) in
      if k < !min_m then min_m := k;
      if k > !max_m then max_m := k
    done;
    let cnt i = if i < 0 then 0 else t.sync_le.(i) in
    cnt (!max_m - 1) - cnt (!min_m - 1) > 0
  end

let convex scr =
  if scr.m_count <= 1 then true
  else begin
    let t = scr.ar in
    Bitset.clear scr.u_desc;
    Bitset.clear scr.u_anc;
    Bitset.clear scr.mem_bs;
    for i = 0 to scr.m_count - 1 do
      let k = scr.members.(i) in
      Bitset.union_into scr.u_desc t.desc.(k);
      Bitset.union_into scr.u_anc t.anc.(k);
      Bitset.add scr.mem_bs k
    done;
    (* A violator is a non-member reachable from a member that also
       reaches a member: it lies on some member-to-member path. *)
    not (Bitset.intersects_outside scr.u_desc scr.u_anc ~outside:scr.mem_bs)
  end

let structurally_fusable scr = connected scr && (not (spans_sync scr)) && convex scr

(* --- device-independent group analysis ------------------------------- *)

let analyze scr =
  let t = scr.ar in
  let e = scr.epoch in
  let m = scr.m_count in
  (* Execution order: insertion sort by full-graph topological rank
     (group_order's sort key). *)
  for i = 1 to m - 1 do
    let k = scr.members.(i) in
    let r = t.rank.(k) in
    let j = ref (i - 1) in
    while !j >= 0 && t.rank.(scr.members.(!j)) > r do
      scr.members.(!j + 1) <- scr.members.(!j);
      decr j
    done;
    scr.members.(!j + 1) <- k
  done;
  for i = 0 to m - 1 do
    scr.k_pos.(scr.members.(i)) <- i;
    scr.barrier.(i) <- false;
    scr.depth.(i) <- 0
  done;
  scr.vertical_hazard <- false;
  let ne = Array.length t.fe_src in
  let internal ei =
    let s = t.fe_src.(ei) and d = t.fe_dst.(ei) in
    scr.k_stamp.(s) = e && scr.k_stamp.(d) = e && scr.k_pos.(s) < scr.k_pos.(d)
  in
  for ei = 0 to ne - 1 do
    if internal ei then begin
      scr.barrier.(scr.k_pos.(t.fe_dst.(ei))) <- true;
      if t.fe_vert.(ei) then scr.vertical_hazard <- true;
      scr.prod_stamp.(t.fe_arr.(ei)) <- e
    end
  done;
  let nb = ref 0 in
  for i = 0 to m - 1 do
    if scr.barrier.(i) then incr nb
  done;
  scr.n_barriers <- !nb;
  scr.complex <- !nb > 0;
  (* Ring-depth fixpoint over internal flow edges (longest path). *)
  let changed = ref true in
  while !changed do
    changed := false;
    for ei = 0 to ne - 1 do
      if internal ei then begin
        let need = scr.depth.(scr.k_pos.(t.fe_dst.(ei))) + t.fe_radius.(ei) in
        let ps = scr.k_pos.(t.fe_src.(ei)) in
        if need > scr.depth.(ps) then begin
          scr.depth.(ps) <- need;
          changed := true
        end
      end
    done
  done;
  let hl = ref 0 in
  for i = 0 to m - 1 do
    if scr.depth.(i) > !hl then hl := scr.depth.(i)
  done;
  scr.halo_layers <- !hl;
  (* Touch counts and per-array max thread load. *)
  for i = 0 to m - 1 do
    let k = scr.members.(i) in
    for j = t.k_arrays_off.(k) to t.k_arrays_off.(k + 1) - 1 do
      let a = t.k_arrays.(j) in
      let ld = t.kl_load.((k * t.na) + a) in
      if scr.a_stamp.(a) <> e then begin
        scr.a_stamp.(a) <- e;
        scr.a_count.(a) <- 1;
        scr.a_load.(a) <- ld
      end
      else begin
        scr.a_count.(a) <- scr.a_count.(a) + 1;
        if ld > scr.a_load.(a) then scr.a_load.(a) <- ld
      end
    done
  done;
  (* Pivot (>= 2 touches, ascending id) and its device-independent
     partition into staged_all vs register_reuse. *)
  scr.piv_n <- 0;
  scr.stall_n <- 0;
  scr.rr_n <- 0;
  for a = 0 to t.na - 1 do
    if scr.a_stamp.(a) = e && scr.a_count.(a) >= 2 then begin
      scr.piv.(scr.piv_n) <- a;
      scr.piv_n <- scr.piv_n + 1;
      if scr.a_load.(a) > 1 || (scr.prod_stamp.(a) = e && scr.halo_layers > 0) then begin
        scr.stall.(scr.stall_n) <- a;
        scr.stall_stamp.(a) <- e;
        scr.stall_n <- scr.stall_n + 1
      end
      else scr.rr_n <- scr.rr_n + 1
    end
  done;
  (* Externally fetched: first touch in execution order reads (not
     writes).  Needed for every SMEM-staging candidate. *)
  for si = 0 to scr.stall_n - 1 do
    let a = scr.stall.(si) in
    let v = ref false in
    (try
       for i = 0 to m - 1 do
         match t.kl_acc.((scr.members.(i) * t.na) + a) with
         | 1 ->
             v := true;
             raise Exit
         | 2 -> raise Exit
         | _ -> ()
       done
     with Exit -> ());
    scr.ext_stamp.(a) <- e;
    scr.ext_val.(a) <- !v
  done;
  let tb = ref t.thr and br = ref 0 in
  for i = 0 to m - 1 do
    let k = scr.members.(i) in
    if t.k_active.(k) < !tb then tb := t.k_active.(k);
    if t.k_regs.(k) > !br then br := t.k_regs.(k)
  done;
  scr.t_b <- !tb;
  scr.base_regs <- !br;
  (* Flops: member fold in execution order, then the halo-ring replay
     term per producing segment — the legacy association exactly. *)
  let fps = ref 0. in
  for i = 0 to m - 1 do
    fps := !fps +. t.k_fps.(scr.members.(i))
  done;
  let halo_extra = ref 0. in
  if scr.halo_layers > 0 then
    for i = 0 to m - 1 do
      if scr.depth.(i) > 0 then begin
        let ring = Grid.halo_sites_per_plane t.grid scr.depth.(i) in
        let sites = float_of_int (ring * t.nz * t.blocks) in
        halo_extra := !halo_extra +. (t.k_fps.(scr.members.(i)) *. sites)
      end
    done;
  scr.tflops <- (!fps *. float_of_int t.sites) +. !halo_extra;
  scr.gmem_epoch <- -1

let gmem_bytes scr =
  if scr.gmem_epoch = scr.epoch then scr.gmem
  else begin
    let t = scr.ar in
    let g =
      Fused.gmem_bytes_iter t.program
        ~iter_members:(fun f ->
          for i = 0 to scr.m_count - 1 do
            f scr.members.(i)
          done)
        ~halo_layers:scr.halo_layers
    in
    scr.gmem <- g;
    scr.gmem_epoch <- scr.epoch;
    g
  end

(* --- per-device fusion features -------------------------------------- *)

let fuse scr ~dev =
  let t = scr.ar in
  let d = t.devices.(dev) in
  scr.fuse_tick <- scr.fuse_tick + 1;
  let tick = scr.fuse_tick in
  scr.staged_n <- 0;
  scr.ro_n <- 0;
  for si = 0 to scr.stall_n - 1 do
    let a = scr.stall.(si) in
    if d.Device.use_readonly_cache && t.a_ro.(a) then begin
      scr.ro.(scr.ro_n) <- a;
      scr.ro_n <- scr.ro_n + 1
    end
    else begin
      scr.staged.(scr.staged_n) <- a;
      scr.s_stamp.(a) <- tick;
      scr.staged_n <- scr.staged_n + 1
    end
  done;
  let hs = Grid.halo_sites_per_plane t.grid scr.halo_layers in
  let complex = scr.complex in
  let pivot_bytes = ref 0 in
  for si = 0 to scr.staged_n - 1 do
    let a = scr.staged.(si) in
    pivot_bytes :=
      !pivot_bytes
      + (t.a_tile.(a) * if scr.ext_val.(a) then 2 else 1)
      + if complex then hs * t.a_elem.(a) else 0
  done;
  let private_bytes = ref 0 in
  for i = 0 to scr.m_count - 1 do
    let k = scr.members.(i) in
    let sum = ref 0 in
    for j = t.k_smem_off.(k) to t.k_smem_off.(k + 1) - 1 do
      let a = t.k_smem.(j) in
      if scr.s_stamp.(a) <> tick then sum := !sum + t.a_tile.(a)
    done;
    if !sum > !private_bytes then private_bytes := !sum
  done;
  let used = !pivot_bytes + !private_bytes in
  scr.smem_bytes <- used + (used / d.Device.smem_banks);
  let rb = ref 0 in
  for ri = 0 to scr.ro_n - 1 do
    let a = scr.ro.(ri) in
    rb := !rb + (t.a_tile.(a) * 2) + if complex then hs * t.a_elem.(a) else 0
  done;
  scr.ro_bytes <- !rb;
  scr.halo_b <-
    (if scr.halo_layers = 0 then 0
     else begin
       let elem = ref (Device.elem_size d) in
       for si = 0 to scr.staged_n - 1 do
         let eb = t.a_elem.(scr.staged.(si)) in
         if eb > !elem then elem := eb
       done;
       hs * !elem
     end);
  let h_th = if scr.halo_b = 0 then 0 else (scr.halo_b + t.thr - 1) / t.thr in
  let total_load = ref 0 in
  for si = 0 to scr.staged_n - 1 do
    total_load := !total_load + scr.a_load.(scr.staged.(si))
  done;
  let reg_block =
    int_of_float (Float.ceil (d.Device.reg_reuse_factor *. float_of_int !total_load))
  in
  let live = 10 * (scr.m_count - 1) in
  scr.registers <-
    min d.Device.max_registers_per_thread
      (scr.base_regs + reg_block + live + 1 + h_th + scr.rr_n
      + if complex then 2 else 0)

(* --- accessors the model backends read ------------------------------- *)

let arena scr = scr.ar
let member_count scr = scr.m_count
let member scr i = scr.members.(i)
let is_complex scr = scr.complex
let halo_layers scr = scr.halo_layers
let vertical_hazard scr = scr.vertical_hazard
let barrier_count scr = scr.n_barriers
let t_b scr = scr.t_b
let total_flops scr = scr.tflops
let smem_staged_count scr = scr.staged_n
let staged_all_count scr = scr.stall_n
let register_reuse_count scr = scr.rr_n
let smem_bytes_per_block scr = scr.smem_bytes
let ro_bytes_per_block scr = scr.ro_bytes
let halo_bytes scr = scr.halo_b
let registers_per_thread scr = scr.registers
let grid_threads t = t.thr
let grid_blocks t = t.blocks
let grid_nz t = t.nz

(* Per-plane-iteration instruction counts of the MWP-CWP stream
   (memory, compute, sync), mirroring [Mwp.reconstruct_stream]: one Mem
   per staged array plus a Sync when any, then per segment a Sync when
   barriered, one Mem per unstaged read stencil point, ceil(flops/site)
   Comps and one Mem per write. *)
let mwp_iter_counts scr =
  let t = scr.ar in
  let e = scr.epoch in
  let mem = ref scr.stall_n and comp = ref 0 and sync = ref 0 in
  if scr.stall_n > 0 then sync := 1;
  for i = 0 to scr.m_count - 1 do
    if scr.barrier.(i) then incr sync;
    let k = scr.members.(i) in
    for j = t.k_reads_off.(k) to t.k_reads_off.(k + 1) - 1 do
      let a = t.k_reads_arr.(j) in
      if scr.stall_stamp.(a) <> e then mem := !mem + t.k_reads_np.(j)
    done;
    comp := !comp + t.k_fps_ceil.(k);
    mem := !mem + t.k_writes.(k)
  done;
  (!mem, !comp, !sync)
