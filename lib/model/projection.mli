(** The paper's codeless performance upper-bound projection (Section IV).

    Adapted from Lai & Seznec's potential-peak analysis, refocused from
    compute-bound GEMM onto memory-bound stencils: instead of deriving
    blocking factors that saturate the FP pipelines, derive the shared-
    memory blocking factor [B_Sh] that keeps enough thread blocks resident
    to hide memory latency, and bound performance by how effectively the
    new kernel's working set is blocked on-chip ([B_eff]), not by its
    operational intensity.

    Equation map (paper → here):
    {ul
    {- Eq. 2-3: register file residency, folded into [blocks_smx].}
    {- Eq. 4-6: register demand per thread, [registers_per_thread].}
    {- Eq. 7: SMEM residency with the [B_conf] padding reserve.}
    {- Eq. 8: [b_sh = T_B * Blocks_SMX / ((1 + c*H_TH) * |ShrLst|)].}
    {- Eq. 9: [p_membound = B_eff * GMEM_BW / elem_bytes] GFLOPS.}
    {- Eq. 10: projected runtime from total flops (members + halo
       replay) over [p_membound].}} *)

type projection = {
  runtime_s : float;  (** Eq. 10's T_pro: the projected lower bound on runtime *)
  p_membound_gflops : float;  (** Eq. 9 *)
  b_sh : float;  (** Eq. 8 SMEM blocking factor *)
  b_eff : float;  (** blocking effectiveness feeding Eq. 9 *)
  blocks_smx : int;  (** projected resident blocks of the new kernel *)
  registers_per_thread : int;  (** Eq. 6 demand *)
  smem_bytes : int;  (** Eq. 7 demand, padding included *)
  feasible : bool;
      (** Eqns. 1.6/1.7 hold: the kernel fits the SMX at all *)
}

val project : Inputs.t -> Kf_fusion.Fused.t -> projection
(** Project a candidate fused kernel.  Singleton "fusions" return the
    measured runtime of their member (the model exists for new kernels;
    originals have ground truth). *)

val runtime : Inputs.t -> Kf_fusion.Fused.t -> float
(** [(project i f).runtime_s] — infinite when infeasible. *)

val project_group : Inputs.t -> int list -> projection
(** Per-group entry point: build the fused kernel for one group and
    project it.  Plan cost decomposes as a sum over groups (Fig. 4,
    Eq. 1), so incremental evaluators re-project only the groups an
    operator changed and reuse memoized projections for the rest. *)

val group_runtime : Inputs.t -> int list -> float
(** Convenience: [project_group] runtime; measured runtime for
    singletons. *)

val arena_runtime : Feature_arena.scratch -> dev:int -> float
(** Allocation-free [runtime_s] off a loaded, analyzed and
    device-[fuse]d arena scratch — bit-identical to
    [(project i f).runtime_s] for the same group and device. *)

val arena_project : Feature_arena.scratch -> dev:int -> projection
(** Full projection record off the arena (reporting path; allocates). *)

val project_group_multi : Feature_arena.t -> int list -> projection array
(** Project one group on every device of the arena, running the
    device-independent structural analysis once and only the per-device
    fusion/projection per device — index-aligned with
    {!Feature_arena.devices}.  Like {!project_group}, legality is the
    caller's business. *)

val pp : Format.formatter -> projection -> unit
