module Device = Kf_gpu.Device
module Fused = Kf_fusion.Fused

let attainable_gflops (i : Inputs.t) f =
  let d = i.Inputs.device in
  let p = i.Inputs.program in
  let flops = Fused.total_flops p f in
  let bytes = Fused.gmem_bytes p f in
  let oi = if bytes > 0. then flops /. bytes else Float.infinity in
  Float.min d.Device.peak_gflops (oi *. d.Device.gmem_bandwidth_gbs)

let runtime i f =
  let flops = Fused.total_flops i.Inputs.program f in
  flops /. (attainable_gflops i f *. 1e9)

let group_runtime (i : Inputs.t) group =
  match group with
  | [ k ] -> i.Inputs.measured_runtime.(k)
  | _ ->
      let f =
        Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group
      in
      runtime i f

module A = Feature_arena

let arena_runtime scr ~dev =
  let a = A.arena scr in
  if A.member_count scr = 1 then (A.measured_runtime a ~dev).(A.member scr 0)
  else begin
    let d = A.device a dev in
    let flops = A.total_flops scr in
    let bytes = A.gmem_bytes scr in
    let oi = if bytes > 0. then flops /. bytes else Float.infinity in
    let attainable = Float.min d.Device.peak_gflops (oi *. d.Device.gmem_bandwidth_gbs) in
    flops /. (attainable *. 1e9)
  end
