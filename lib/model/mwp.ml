module Device = Kf_gpu.Device
module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Access = Kf_ir.Access
module Stencil = Kf_ir.Stencil
module Grid = Kf_ir.Grid
module Fused = Kf_fusion.Fused

type estimate = { cycles : float; mwp : float; cwp : float; runtime_s : float }

(* Per-warp instruction stream of the candidate, reconstructed on every
   evaluation exactly as a code-skeleton tool would: one record per dynamic
   instruction over the full vertical loop. *)
type winstr = Mem | Comp | Sync

let reconstruct_stream (p : Program.t) (f : Fused.t) =
  let grid = p.Program.grid in
  let staged = List.filter (fun a -> not (List.mem a f.Fused.register_reuse)) f.Fused.pivot in
  let per_iter = ref [] in
  let emit x = per_iter := x :: !per_iter in
  List.iter (fun _ -> emit Mem) staged;
  if staged <> [] then emit Sync;
  List.iter
    (fun (s : Fused.segment) ->
      if s.Fused.barrier_before then emit Sync;
      let kern = Program.kernel p s.Fused.kernel in
      List.iter
        (fun (a : Access.t) ->
          if Access.reads a && not (List.mem a.Access.array staged) then
            List.iter (fun _ -> emit Mem) (Stencil.offsets a.Access.pattern))
        kern.Kernel.accesses;
      for _ = 1 to int_of_float (Float.ceil (Kernel.flops_per_site kern)) do
        emit Comp
      done;
      List.iter (fun (a : Access.t) -> if Access.writes a then emit Mem) kern.Kernel.accesses)
    f.Fused.segments;
  let one = List.rev !per_iter in
  (* The full dynamic stream: the vertical loop repeats the body nz times. *)
  List.concat (List.init grid.nz (fun _ -> one))

let evaluate (i : Inputs.t) (f : Fused.t) =
  let d = i.Inputs.device in
  let p = i.Inputs.program in
  let grid = p.Program.grid in
  let stream = reconstruct_stream p f in
  let mem_insts = ref 0 and comp_insts = ref 0 and syncs = ref 0 in
  List.iter
    (fun x ->
      match x with
      | Mem -> incr mem_insts
      | Comp -> incr comp_insts
      | Sync -> incr syncs)
    stream;
  let mem_insts = float_of_int !mem_insts in
  let comp_cycles = float_of_int !comp_insts *. (32. /. Device.flops_per_cycle_smx d) in
  let mem_l = float_of_int d.Device.gmem_latency_cycles in
  let thr = Grid.threads_per_block grid in
  let warps_per_block = (thr + d.Device.warp_size - 1) / d.Device.warp_size in
  let occ =
    (* Resident blocks from the candidate's own resource demand. *)
    let by_smem =
      if f.Fused.smem_bytes_per_block = 0 then d.Device.max_blocks_per_smx
      else d.Device.smem_per_smx / f.Fused.smem_bytes_per_block
    in
    let by_regs = d.Device.registers_per_smx / (thr * f.Fused.registers_per_thread) in
    max 1 (min (min by_smem by_regs) d.Device.max_blocks_per_smx)
  in
  let n = float_of_int (occ * warps_per_block) in
  (* Departure delay: cycles between consecutive memory requests the DRAM
     can absorb from one SM. *)
  let bytes_per_cycle_sm = Device.bytes_per_cycle d /. float_of_int d.Device.smx_count in
  let departure = 128. /. bytes_per_cycle_sm in
  let mwp_bw = mem_l /. departure in
  let mwp = Float.min (Float.min mwp_bw n) (mem_l /. 2.) in
  let mem_cycles = mem_insts *. mem_l in
  let cwp =
    if comp_cycles <= 0. then n
    else Float.min ((mem_cycles +. comp_cycles) /. comp_cycles) n
  in
  let exec_per_warp_set =
    if cwp >= mwp then
      (mem_cycles *. n /. mwp)
      +. (if mem_insts > 0. then comp_cycles /. mem_insts *. (mwp -. 1.) else comp_cycles)
    else mem_cycles +. (comp_cycles *. n)
  in
  let sync_cost = float_of_int !syncs *. n *. 4. in
  let total_blocks = Grid.blocks grid in
  let concurrent = occ * d.Device.smx_count in
  let waves = max 1 ((total_blocks + concurrent - 1) / concurrent) in
  let cycles = (exec_per_warp_set +. sync_cost) *. float_of_int waves in
  { cycles; mwp; cwp; runtime_s = cycles /. (d.Device.clock_ghz *. 1e9) }

let runtime i f = (evaluate i f).runtime_s

let group_runtime (i : Inputs.t) group =
  match group with
  | [ k ] -> i.Inputs.measured_runtime.(k)
  | _ ->
      let f =
        Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group
      in
      runtime i f

(* Allocation-free arena backend: instead of materializing the per-warp
   instruction stream, [Feature_arena.mwp_iter_counts] counts one
   vertical iteration's records and the vertical loop multiplies — the
   same integer totals, then [evaluate]'s arithmetic verbatim. *)
module A = Feature_arena

let arena_runtime scr ~dev =
  let a = A.arena scr in
  if A.member_count scr = 1 then (A.measured_runtime a ~dev).(A.member scr 0)
  else begin
    let d = A.device a dev in
    let nz = A.grid_nz a in
    let mem_i, comp_i, sync_i = A.mwp_iter_counts scr in
    let mem_insts = float_of_int (mem_i * nz) in
    let comp_cycles = float_of_int (comp_i * nz) *. (32. /. Device.flops_per_cycle_smx d) in
    let mem_l = float_of_int d.Device.gmem_latency_cycles in
    let thr = A.grid_threads a in
    let warps_per_block = (thr + d.Device.warp_size - 1) / d.Device.warp_size in
    let occ =
      let smem = A.smem_bytes_per_block scr in
      let by_smem =
        if smem = 0 then d.Device.max_blocks_per_smx else d.Device.smem_per_smx / smem
      in
      let by_regs = d.Device.registers_per_smx / (thr * A.registers_per_thread scr) in
      max 1 (min (min by_smem by_regs) d.Device.max_blocks_per_smx)
    in
    let n = float_of_int (occ * warps_per_block) in
    let bytes_per_cycle_sm = Device.bytes_per_cycle d /. float_of_int d.Device.smx_count in
    let departure = 128. /. bytes_per_cycle_sm in
    let mwp_bw = mem_l /. departure in
    let mwp = Float.min (Float.min mwp_bw n) (mem_l /. 2.) in
    let mem_cycles = mem_insts *. mem_l in
    let cwp =
      if comp_cycles <= 0. then n
      else Float.min ((mem_cycles +. comp_cycles) /. comp_cycles) n
    in
    let exec_per_warp_set =
      if cwp >= mwp then
        (mem_cycles *. n /. mwp)
        +. (if mem_insts > 0. then comp_cycles /. mem_insts *. (mwp -. 1.) else comp_cycles)
      else mem_cycles +. (comp_cycles *. n)
    in
    let sync_cost = float_of_int (sync_i * nz) *. n *. 4. in
    let total_blocks = A.grid_blocks a in
    let concurrent = occ * d.Device.smx_count in
    let waves = max 1 ((total_blocks + concurrent - 1) / concurrent) in
    let cycles = (exec_per_warp_set +. sync_cost) *. float_of_int waves in
    cycles /. (d.Device.clock_ghz *. 1e9)
  end
