module Fused = Kf_fusion.Fused

let saved_bytes (i : Inputs.t) (f : Fused.t) =
  let member_bytes =
    List.fold_left (fun acc k -> acc +. i.Inputs.measured_bytes.(k)) 0. f.Fused.members
  in
  Float.max 0. (member_bytes -. Fused.gmem_bytes i.Inputs.program f)

let runtime (i : Inputs.t) (f : Fused.t) =
  let sum = Inputs.original_sum i f.Fused.members in
  let bw = Inputs.effective_bandwidth i f.Fused.members in
  if bw <= 0. then sum
  else begin
    let saved_time = saved_bytes i f /. bw in
    let floor_time = Fused.gmem_bytes i.Inputs.program f /. bw in
    Float.max (sum -. saved_time) floor_time
  end

let group_runtime (i : Inputs.t) group =
  match group with
  | [ k ] -> i.Inputs.measured_runtime.(k)
  | _ ->
      let f =
        Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group
      in
      runtime i f

(* Arena backend.  [runtime] above folds members in execution order three
   ways (bytes for [saved_bytes], runtimes for [original_sum], bytes and
   runtimes again inside [effective_bandwidth]); the pairs are bitwise
   equal folds, so each is computed once here. *)
module A = Feature_arena

let arena_runtime scr ~dev =
  let a = A.arena scr in
  if A.member_count scr = 1 then (A.measured_runtime a ~dev).(A.member scr 0)
  else begin
    let rt = A.measured_runtime a ~dev and by = A.measured_bytes a ~dev in
    let member_bytes = ref 0. and sum = ref 0. in
    for i = 0 to A.member_count scr - 1 do
      member_bytes := !member_bytes +. by.(A.member scr i)
    done;
    for i = 0 to A.member_count scr - 1 do
      sum := !sum +. rt.(A.member scr i)
    done;
    let member_bytes = !member_bytes and sum = !sum in
    let gmem = A.gmem_bytes scr in
    let bw = if sum <= 0. then 0. else member_bytes /. sum in
    if bw <= 0. then sum
    else begin
      let saved_time = Float.max 0. (member_bytes -. gmem) /. bw in
      let floor_time = gmem /. bw in
      Float.max (sum -. saved_time) floor_time
    end
  end
