module Program = Kf_ir.Program
module Exec_order = Kf_graph.Exec_order
module Dag = Kf_graph.Dag

type plane = P_original of int | P_fused of Fused.t

type unit_ = Original of int | Fused of Fused.t | Horizontal of plane list

type t = { program : Kf_ir.Program.t; plan : Plan.t; units : unit_ list }

let plane_of_group ~device ~meta ~exec = function
  | [ k ] -> P_original k
  | g -> P_fused (Fused.build ~device ~meta ~exec ~group:g)

let build ~device ~meta ~exec plan =
  let p = Kf_ir.Metadata.program meta in
  (* Condense by launch unit — the pack.  For all-vertical plans the
     packs are exactly the groups, so this is the historical behavior. *)
  let packs = Array.of_list (Plan.composed plan) in
  let npacks = Array.length packs in
  let pack_of_kernel = Array.make (Plan.num_kernels plan) (-1) in
  Array.iteri
    (fun ci pack -> List.iter (List.iter (fun k -> pack_of_kernel.(k) <- ci)) pack)
    packs;
  let cond = Dag.create npacks in
  let dag = Exec_order.dag exec in
  for u = 0 to Dag.num_nodes dag - 1 do
    List.iter
      (fun v ->
        let gu = pack_of_kernel.(u) and gv = pack_of_kernel.(v) in
        if gu <> gv then Dag.add_edge cond gu gv)
      (Dag.succs dag u)
  done;
  if not (Dag.is_acyclic cond) then
    invalid_arg "Fused_program.build: plan is not convex (condensed graph is cyclic)";
  let order = Dag.topo_sort cond in
  let units =
    List.map
      (fun ci ->
        match packs.(ci) with
        | [ [ k ] ] -> Original k
        | [ g ] -> Fused (Fused.build ~device ~meta ~exec ~group:g)
        | planes -> Horizontal (List.map (plane_of_group ~device ~meta ~exec) planes))
      order
  in
  { program = p; plan; units }

let fused_kernels t =
  List.concat_map
    (function
      | Fused f when not (Fused.is_singleton f) -> [ f ]
      | Horizontal planes ->
          List.filter_map
            (function P_fused f when not (Fused.is_singleton f) -> Some f | _ -> None)
            planes
      | _ -> [])
    t.units

let plane_members = function P_original k -> [ k ] | P_fused f -> f.Fused.members

let unit_members = function
  | Original k -> [ k ]
  | Fused f -> f.Fused.members
  | Horizontal planes -> List.concat_map plane_members planes

let pp ppf t =
  Format.fprintf ppf "%s fused into %d units:@." t.program.Program.name (List.length t.units);
  let plane ppf = function
    | P_original k ->
        Format.fprintf ppf "%s (original)" (Program.kernel t.program k).Kf_ir.Kernel.name
    | P_fused f -> Fused.pp ppf f
  in
  List.iter
    (fun u ->
      match u with
      | Original k ->
          Format.fprintf ppf "  %s (original)@." (Program.kernel t.program k).Kf_ir.Kernel.name
      | Fused f -> Format.fprintf ppf "  %a@." Fused.pp f
      | Horizontal planes ->
          Format.fprintf ppf "  horizontal[%d planes]: %a@." (List.length planes)
            (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ") plane)
            planes)
    t.units
