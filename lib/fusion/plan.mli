(** Fusion plans: partitions of the original kernels into groups, each
    group becoming one new kernel (or staying original when a singleton).

    This is the decision variable of the paper's optimization problem
    (Fig. 4): [x_ij = 1] iff kernel [i] belongs to group [j].  The checker
    enforces the structural constraints — (1.2) each kernel in exactly one
    group, (1.3) path convexity, (1.5) kinship connectivity — and, given a
    device, the resource constraints (1.6) SMEM capacity and (1.7) register
    bound. *)

type t
(** A validated-shape partition (disjointness and completeness are
    guaranteed by construction; the other constraints are checked by
    {!validate}), plus its launch composition: the groups are partitioned
    into {e packs}, each pack being one launch.  A singleton pack is an
    ordinary vertical launch; a multi-plane pack runs its member groups
    ({e planes}) side by side as per-plane sub-grids of one horizontal
    launch (HFuse, arXiv 2007.01277). *)

type mode = Vertical | Horizontal | Mixed

val mode : int list list -> mode
(** Composition mode of one pack: [Vertical] for a single plane,
    [Horizontal] when every plane is a single original kernel, [Mixed]
    when vertically fused planes are packed horizontally. *)

val of_groups : n:int -> int list list -> t
(** [of_groups ~n groups] builds a plan over kernels [0..n-1] with every
    group in its own (vertical) pack.
    @raise Invalid_argument unless the groups are non-empty, disjoint and
    cover exactly [0..n-1]. *)

val of_composed : n:int -> int list list list -> t
(** [of_composed ~n comps] builds a plan from launch packs; the vertical
    partition is the set of all planes.
    @raise Invalid_argument on empty packs/planes or when the planes do
    not partition [0..n-1]. *)

val identity : int -> t
(** The unfused plan: every kernel alone, every group its own pack. *)

val groups : t -> int list list
(** Groups in canonical order (sorted members; groups ordered by smallest
    member). *)

val composed : t -> int list list list
(** Launch packs in canonical order (planes sorted by head within a pack,
    packs sorted by the head of their first plane).  All-vertical plans
    return every group as a singleton pack. *)

val num_kernels : t -> int
val num_groups : t -> int

val num_units : t -> int
(** Number of launches ([= List.length (composed t)]); equals
    [num_groups] for all-vertical plans. *)

val is_vertical : t -> bool
(** Whether every pack is a single plane (no horizontal fusion). *)

val horizontal_pack_count : t -> int
(** Number of packs with two or more planes. *)

val horizontal_plane_count : t -> int
(** Number of planes belonging to multi-plane packs. *)

val group_of : t -> int -> int list
(** The group containing a kernel. *)

val fused_kernel_count : t -> int
(** Number of groups with two or more members. *)

val fused_member_count : t -> int
(** Number of original kernels belonging to multi-member groups (the
    paper's "117 out of the 142"). *)

type violation =
  | Not_convex of int list  (** group breaks constraint (1.3) *)
  | Not_kin_connected of int list  (** group breaks constraint (1.5) *)
  | Smem_overflow of int list * int  (** group, required bytes (1.6) *)
  | Register_overflow of int list * int  (** group, required registers (1.7) *)
  | Not_schedulable
      (** the condensed per-group dependency graph is cyclic: no valid
          invocation order of the new kernels exists.  Per-group convexity
          does not imply this whole-plan property, so it is checked
          separately (a strengthening of the paper's constraint set). *)
  | Spans_sync_point of int list
      (** the group crosses a host transfer / synchronization boundary
          (paper §II-C): the transfer must execute between its members *)
  | Vertical_flow of int list
      (** an internal flow dependency is consumed through a vertical
          stencil — per-plane SMEM staging cannot provide the producer's
          future planes, so the group is unfusable *)
  | Planes_dependent of int list list
      (** a horizontal pack has a data edge between two of its planes:
          planes run concurrently in one launch, so they must be
          pairwise order-independent *)

val validate :
  ?device:Kf_gpu.Device.t ->
  meta:Kf_ir.Metadata.t ->
  exec:Kf_graph.Exec_order.t ->
  t ->
  violation list
(** Structural constraints always; resource constraints when [device] is
    given (building each group's fused kernel to cost it). *)

val is_feasible :
  device:Kf_gpu.Device.t -> meta:Kf_ir.Metadata.t -> exec:Kf_graph.Exec_order.t -> t -> bool

val is_sorted_strict : int list -> bool
(** Whether the list is strictly increasing (sorted, duplicate-free) —
    the precondition under which canonicalization can reuse it as-is. *)

val canonical_groups : int list list -> int list list
(** Canonical form of a raw partition: members sorted ascending within
    each group, groups ordered by smallest member.  Permutations of the
    same partition map to the same canonical form, which is what makes
    the signatures below usable as cache keys. *)

val canonical_comps : int list list list -> int list list list
(** Canonical form of a raw pack list: {!canonical_groups} one level up —
    members sorted within planes, planes sorted by head within packs,
    packs sorted by the head of their first plane. *)

val planes_independent : exec:Kf_graph.Exec_order.t -> int list list -> bool
(** Whether every cross-plane kernel pair is order-independent — the
    horizontal legality rule. *)

val group_signature : int list -> int array
(** Sorted member ids — the canonical per-group signature (two member
    orderings of the same group share one signature). *)

val plan_signature : int list list -> int array
(** Canonical whole-plan signature: group signatures in canonical group
    order, separated by [-1] (kernel ids are non-negative, so the
    separator is unambiguous).  Permuted-but-equal plans share one
    signature. *)

val signature_hash : int array -> int
(** Fixed polynomial hash of a signature.  Deliberately not
    [Hashtbl.hash]: cache striping keyed on this hash must be immune to
    [OCAMLRUNPARAM=R], so the hash depends only on the elements. *)

val group_hash : int list -> int
(** [signature_hash (group_signature g)]. *)

(** Arena-backed signature encoding for the evaluation hot path.

    A [Sigbuf.t] is a reusable scratch buffer owned by one domain:
    encoding writes the signature ints into the buffer in place (growing
    it geometrically, so steady state allocates nothing), {!Sigbuf.hash}
    folds the same polynomial as {!signature_hash} over the prefix, and
    {!Sigbuf.extract} copies the prefix out only when the key must
    outlive the probe (a cache miss).  Encodings are bit-identical to
    {!group_signature} / {!plan_signature}, so extracted keys
    interoperate with signature arrays persisted in snapshots.

    Not thread-safe: one [Sigbuf.t] per domain.  The buffer contents are
    invalidated by the next [encode_*] call. *)
module Sigbuf : sig
  type t

  val create : unit -> t

  val encode_group : t -> int list -> unit
  (** Encode one group's canonical signature ({!group_signature}). *)

  val encode_plan : t -> int list list -> unit
  (** Encode the canonical whole-plan signature ({!plan_signature}),
      canonicalizing in scratch space without building the intermediate
      group list. *)

  val encode_groups_exact : t -> int list list -> unit
  (** Encode groups in the given order without canonicalizing
      ([-1]-separated) — for memo keys of order-sensitive operators. *)

  val encode_cgroup : t -> int list list -> unit
  (** Encode one pack's canonical signature: plane signatures joined by
      [-3].  A single-plane pack encodes byte-identically to
      {!encode_group} of its group, so the two share cache entries;
      multi-plane keys live in a disjoint keyspace. *)

  val encode_cplan : t -> int list list list -> int list list list
  (** Encode the canonical whole-composition signature (packs joined by
      [-1], planes within a pack by [-3]) and return the canonical pack
      list.  An all-singleton composition encodes byte-identically to
      {!encode_plan} of the underlying groups. *)

  val append_extra : t -> int list -> unit
  (** Append a [-2] separator then the given ints to the current
      encoding — for memo keys that mix a partition with scalar
      arguments. *)

  val length : t -> int

  val unsafe_buf : t -> int array
  (** The backing buffer; only indices [0, length t) are meaningful.
      Borrowed: invalidated by the next [encode_*] call on this
      buffer. *)

  val hash : t -> int
  (** [signature_hash] of the encoded prefix, computed in place. *)

  val extract : t -> int array
  (** Owned copy of the encoded prefix. *)

  val canonical : t -> int list list
  (** The canonical group list captured by the last {!encode_plan}
      (rebuilt from scratch space; allocates the spine only). *)
end

val equal : t -> t -> bool
(** Equality as partitions (group order and member order irrelevant). *)

val compare : t -> t -> int

val violation_group : violation -> int list option
(** The offending group, when the violation is group-local
    ([Not_schedulable] and [Planes_dependent] are composition-level
    properties: dropping the composition — rebuilding all-vertical via
    {!of_groups} — clears them without dissolving any group). *)

val pp : Format.formatter -> t -> unit
val pp_violation : Format.formatter -> violation -> unit
