module Device = Kf_gpu.Device

(* Registers consumed by the plane-dispatch prologue of a horizontally
   fused kernel: every thread reads its block's plane id and branches,
   which costs an index register and a predicate register on top of the
   heaviest plane's own demand (HFuse, arXiv 2007.01277, measures 1-3
   extra registers for the dispatch; we charge the middle). *)
let dispatch_registers = 2

(* Per-warp cost of the divergent plane-dispatch branch: blocks of
   different planes resident on one SMX contend for the schedulers with
   disjoint instruction streams.  2% per additional plane matches the
   barrier penalty scale the vertical model uses. *)
let divergence_factor = 0.02

type pressure = { regs : int; smem : int }

let pressure ~regs ~smem = { regs; smem }

(* A horizontally fused launch must hold every plane's working set at
   once on whichever SMX a block lands: register demand is the heaviest
   plane's plus the dispatch overhead, SMEM is the largest plane's
   (blocks of one launch each run exactly one plane, so per-block SMEM
   does not sum — but the block *pool* is shared, so residency below is
   computed from this combined worst-case pressure). *)
let combine_pressure = function
  | [] -> invalid_arg "Horizontal.combine_pressure: no planes"
  | p :: rest ->
      let c =
        List.fold_left
          (fun acc q -> { regs = max acc.regs q.regs; smem = max acc.smem q.smem })
          p rest
      in
      { c with regs = c.regs + dispatch_registers }

(* Resident blocks per SMX under the combined pressure — the same
   min-of-limits residency rule as the vertical projection model
   (paper Eqns. 3 and 7), so the two composition modes are costed on
   one occupancy footing. *)
let blocks_smx (d : Device.t) ~threads_per_block (c : pressure) =
  let by_regs = d.Device.registers_per_smx / (threads_per_block * c.regs) in
  let by_smem =
    if c.smem = 0 then d.Device.max_blocks_per_smx else d.Device.smem_per_smx / c.smem
  in
  let by_threads = d.Device.max_threads_per_smx / threads_per_block in
  min (min by_regs by_smem) (min by_threads d.Device.max_blocks_per_smx)

let feasible (d : Device.t) ~threads_per_block (c : pressure) =
  c.regs <= d.Device.max_registers_per_thread
  && c.smem <= d.Device.smem_per_smx
  && blocks_smx d ~threads_per_block c >= 1

(* Overlap fraction φ: how much of the planes' work the device can run
   concurrently.  The combined launch has [planes * blocks] blocks; the
   device can hold [blocks_smx * smx_count] of them at once.  When the
   whole combined grid fits in one wave (the many-small-kernels regime
   this mode exists for), φ = 1 and the launch costs its slowest plane;
   when the grid is many waves deep the planes effectively serialize and
   φ → 0 recovers the sum of plane costs. *)
let overlap (d : Device.t) ~threads_per_block ~blocks ~planes (c : pressure) =
  if planes <= 1 then 1.
  else begin
    let resident = blocks_smx d ~threads_per_block c * d.Device.smx_count in
    Float.min 1. (float_of_int resident /. float_of_int (planes * blocks))
  end

let divergence_penalty ~planes = 1. +. (divergence_factor *. float_of_int (planes - 1))

(* Combined runtime of one horizontal launch from its per-plane costs.
   The slowest plane is always paid in full; the remaining planes' work
   overlaps into its shadow by φ and serializes for the rest; the whole
   launch pays the plane-dispatch divergence penalty.  Per-plane GMEM
   traffic is deliberately *not* merged — each plane streams its own
   arrays, which is already captured inside the per-plane costs.

   This one function is the plane-composition semantics: the projection
   model feeds it projected plane costs and the simulator feeds it
   measured plane runtimes, so the two agree on composition by
   construction. *)
let runtime (d : Device.t) ~threads_per_block ~blocks ~costs (c : pressure) =
  match costs with
  | [] -> invalid_arg "Horizontal.runtime: no planes"
  | [ c0 ] -> c0
  | costs ->
      let planes = List.length costs in
      if not (feasible d ~threads_per_block c) then Float.infinity
      else begin
        let mx = List.fold_left Float.max 0. costs in
        let sum = List.fold_left ( +. ) 0. costs in
        if not (Float.is_finite sum) then Float.infinity
        else begin
          let phi = overlap d ~threads_per_block ~blocks ~planes c in
          (mx +. ((sum -. mx) *. (1. -. phi))) *. divergence_penalty ~planes
        end
      end
