(** Fused ("new") kernels: the result of aggregating the code segments of a
    group of original kernels (paper §II-D).

    Construction decides, exactly as the paper describes, whether the fusion
    is {e simple} (no internal precedence: segments concatenate freely) or
    {e complex} (internal flow dependencies: barriers between segments and
    halo layers staged in SMEM to ride out the SMEM/GMEM incoherency), which
    shared arrays become the {e kernel pivot} (staged in SMEM), which are
    held in a register (thread load 1), and what the resulting on-chip
    footprint and register pressure are. *)

type kind = Simple | Complex

type segment = {
  kernel : int;  (** original kernel id *)
  barrier_before : bool;
      (** a [__syncthreads()] separates this segment from the previous one
          (complex fusion only) *)
  halo_producer : bool;
      (** this segment's operations must also be applied to the halo ring
          (it produces data a later segment consumes through SMEM) *)
  halo_depth : int;
      (** how deep a ring this segment must compute: consumers' radii
          accumulate along the internal flow chain (temporal blocking), so
          a producer feeding a radius-1 consumer that itself feeds a
          radius-1 consumer needs a depth-2 ring (0 for non-producers) *)
}

type t = {
  name : string;
  members : int list;  (** original kernel ids, in aggregation order *)
  segments : segment list;
  kind : kind;
  pivot : int list;
      (** the paper's F^Pivot: arrays with cross-segment reuse via SMEM *)
  register_reuse : int list;
      (** shared arrays whose single value per thread is passed in a
          register (thread load 1, §II-D.1) *)
  ro_staged : int list;
      (** pivot arrays staged through the read-only data cache instead of
          SMEM — populated only when the device enables
          [use_readonly_cache] (paper §II-C) and the array is read-only
          program-wide *)
  halo_layers : int;  (** halo ring depth (0 for simple fusions) *)
  halo_bytes : int;  (** Table III [Hal] for the new kernel *)
  smem_bytes_per_block : int;
      (** SMEM requirement per block, including halo rings and
          bank-conflict padding (read-only-cache staging excluded) *)
  ro_bytes_per_block : int;
      (** read-only cache requirement per block (0 unless enabled) *)
  registers_per_thread : int;  (** estimated R_T of the new kernel *)
  vertical_hazard : bool;
      (** an internal flow dependency is consumed through a vertical
          (k-direction) stencil: the sequential k-loop cannot provide the
          producer's future planes, so the fusion is illegal (halo layers
          only cover the horizontal plane) *)
}

val build :
  device:Kf_gpu.Device.t ->
  meta:Kf_ir.Metadata.t ->
  exec:Kf_graph.Exec_order.t ->
  group:int list ->
  t
(** Builds the fused kernel for a group of original kernels.  The group is
    ordered by {!Kf_graph.Exec_order.group_order}; it need not be legal —
    legality is the plan checker's job ({!Plan.validate}) — but it must be
    non-empty and duplicate-free.
    @raise Invalid_argument on an empty or duplicated group. *)

val flops_per_site : Kf_ir.Program.t -> t -> float
(** Per-site flops of the fused kernel: sum of members (halo redundancy
    accounted separately via {!halo_extra_flops}). *)

val halo_extra_flops : Kf_ir.Program.t -> t -> float
(** Total extra flops spent computing halo rings (paper Eq. 10's
    [Σ_M Flop(x)·Hal] term): producer segments replay their per-site work
    on [halo_layers]-deep rings, every plane, every block. *)

val total_flops : Kf_ir.Program.t -> t -> float
(** Members' flops over the grid plus {!halo_extra_flops}. *)

val gmem_bytes : Kf_ir.Program.t -> t -> float
(** GMEM traffic of the fused kernel: each read array fetched once
    (pivot reuse collapses repeated fetches), plus block-boundary and halo
    refetches, plus one footprint per written array. *)

val gmem_bytes_iter :
  Kf_ir.Program.t -> iter_members:((int -> unit) -> unit) -> halo_layers:int -> float
(** {!gmem_bytes} generalized over the member traversal, so evaluators
    that keep the group in a flat arena ([Kf_model.Feature_arena]) run
    the {e identical} aggregation code — the per-array float fold is
    summation-order-sensitive, and sharing the code is what keeps the
    arena path bit-identical to this one. *)

val smem_staged_count : t -> int
(** Number of arrays resident in SMEM across the whole kernel (pivot
    staged arrays; used by occupancy and the projection model). *)

val is_singleton : t -> bool
(** A "fusion" of one kernel — kept original in the final program. *)

val pp : Format.formatter -> t -> unit
