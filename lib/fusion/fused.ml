module Device = Kf_gpu.Device
module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Access = Kf_ir.Access
module Stencil = Kf_ir.Stencil
module Grid = Kf_ir.Grid
module Metadata = Kf_ir.Metadata
module Array_info = Kf_ir.Array_info
module Datadep = Kf_graph.Datadep
module Exec_order = Kf_graph.Exec_order

type kind = Simple | Complex

type segment = {
  kernel : int;
  barrier_before : bool;
  halo_producer : bool;
  halo_depth : int;
}

type t = {
  name : string;
  members : int list;
  segments : segment list;
  kind : kind;
  pivot : int list;
  register_reuse : int list;
  ro_staged : int list;
  halo_layers : int;
  halo_bytes : int;
  smem_bytes_per_block : int;
  ro_bytes_per_block : int;
  registers_per_thread : int;
  vertical_hazard : bool;
}

let group_name p ordered =
  match ordered with
  | [ k ] -> (Program.kernel p k).Kernel.name
  | _ ->
      let ids = List.map string_of_int ordered in
      if List.length ids <= 5 then "F_" ^ String.concat "_" ids
      else
        Printf.sprintf "F_%s..%s_%dk" (List.hd ids)
          (List.nth ids (List.length ids - 1))
          (List.length ids)

let build ~device ~meta ~exec ~group =
  if group = [] then invalid_arg "Fused.build: empty group";
  if List.length (List.sort_uniq compare group) <> List.length group then
    invalid_arg "Fused.build: duplicate member";
  let p = Metadata.program meta in
  let grid = p.Program.grid in
  let ordered = Exec_order.group_order exec group in
  let member_set = Hashtbl.create 8 in
  List.iteri (fun pos k -> Hashtbl.replace member_set k pos) ordered;
  let pos_of k = Hashtbl.find member_set k in
  let dd = Exec_order.datadep exec in
  (* Internal flow edges: producer and consumer both in the group, producer
     aggregated earlier. *)
  let internal_flow =
    List.filter
      (fun (e : Datadep.edge) ->
        e.kind = Datadep.Flow && Hashtbl.mem member_set e.src && Hashtbl.mem member_set e.dst
        && pos_of e.src < pos_of e.dst)
      (Datadep.edges dd)
  in
  let barrier_before = Array.make (List.length ordered) false in
  List.iter (fun (e : Datadep.edge) -> barrier_before.(pos_of e.dst) <- true) internal_flow;
  let kind = if Array.exists (fun b -> b) barrier_before then Complex else Simple in
  (* Halo depth: widest radius a consumer applies to internally produced
     data (paper: "the stencil operation with the widest radius"). *)
  let consumer_radius e =
    match Kernel.access_for (Program.kernel p e.Datadep.dst) e.Datadep.array with
    | Some a when Access.reads a -> Stencil.radius a.pattern
    | _ -> 0
  in
  (* Internally produced data read through a vertical stencil cannot be
     served by the per-plane SMEM tiles: the producer's k+1 plane does not
     exist yet when the consumer's k plane runs. *)
  let vertical_hazard =
    List.exists
      (fun (e : Datadep.edge) ->
        match Kernel.access_for (Program.kernel p e.Datadep.dst) e.Datadep.array with
        | Some a when Access.reads a -> Stencil.vertical_extent a.pattern > 0
        | _ -> false)
      internal_flow
  in
  (* Per-segment ring depth (temporal blocking): consumers' radii
     accumulate backwards along internal flow chains — to hand a depth-d
     ring to a consumer reading with radius r, the producer must compute a
     depth d+r ring, which in turn needs its own inputs at that depth.
     This is a longest-path computation over the (acyclic) internal flow
     edges. *)
  let depth = Array.make (List.length ordered) 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : Datadep.edge) ->
        let need = depth.(pos_of e.dst) + consumer_radius e in
        if need > depth.(pos_of e.src) then begin
          depth.(pos_of e.src) <- need;
          changed := true
        end)
      internal_flow
  done;
  let halo_layers = Array.fold_left max 0 depth in
  let segments =
    List.mapi
      (fun pos k ->
        {
          kernel = k;
          barrier_before = barrier_before.(pos);
          halo_producer = depth.(pos) > 0;
          halo_depth = depth.(pos);
        })
      ordered
  in
  (* Pivot: arrays touched by at least two members. *)
  let touch_count = Hashtbl.create 16 in
  List.iter
    (fun k ->
      List.iter
        (fun a ->
          let c = try Hashtbl.find touch_count a with Not_found -> 0 in
          Hashtbl.replace touch_count a (c + 1))
        (Kernel.arrays (Program.kernel p k)))
    ordered;
  let pivot_all =
    Hashtbl.fold (fun a c acc -> if c >= 2 then a :: acc else acc) touch_count []
    |> List.sort compare
  in
  let max_load a =
    List.fold_left (fun acc k -> max acc (Kernel.thread_load (Program.kernel p k) a)) 0 ordered
  in
  let internally_produced a =
    List.exists (fun (e : Datadep.edge) -> e.array = a) internal_flow
  in
  let staged_all, register_reuse =
    List.partition (fun a -> max_load a > 1 || (internally_produced a && halo_layers > 0)) pivot_all
  in
  (* Program-wide read-only pivot arrays can ride the read-only data cache
     when the device allows it, relieving SMEM (paper §II-C). *)
  let ro_staged, staged =
    if device.Device.use_readonly_cache then
      List.partition
        (fun a -> Datadep.array_class dd a = Datadep.Read_only)
        staged_all
    else ([], staged_all)
  in
  (* Per-segment private staging (a member's own >1-thread-load arrays that
     are not pivot): the buffer is reusable between segments, so only the
     largest segment's requirement counts. *)
  let thr = Grid.threads_per_block grid in
  let tile_bytes a = thr * (Program.array p a).Array_info.elem_bytes in
  let ring_bytes a =
    Grid.halo_sites_per_plane grid halo_layers * (Program.array p a).Array_info.elem_bytes
  in
  (* Externally-fetched pivot arrays keep the originals' double-buffered
     staging (two tiles); internally-produced ones cannot be prefetched
     and need a single tile.  Complex fusions add a halo ring per staged
     array. *)
  let externally_fetched a =
    let rec scan = function
      | [] -> false
      | k :: rest -> begin
          match Kernel.access_for (Program.kernel p k) a with
          | Some acc when Access.reads acc -> true
          | Some acc when Access.writes acc -> false
          | _ -> scan rest
        end
    in
    scan ordered
  in
  let pivot_bytes =
    List.fold_left
      (fun acc a ->
        acc
        + (tile_bytes a * if externally_fetched a then 2 else 1)
        + if kind = Complex then ring_bytes a else 0)
      0 staged
  in
  let private_bytes =
    List.fold_left
      (fun acc k ->
        let own =
          List.filter
            (fun a -> not (List.mem a staged))
            (Kernel.smem_staged_arrays (Program.kernel p k))
        in
        max acc (List.fold_left (fun b a -> b + tile_bytes a) 0 own))
      0 ordered
  in
  let used = pivot_bytes + private_bytes in
  (* Bank-conflict padding: the 1/32 factor of paper Eq. 7's B_conf. *)
  let padding = used / device.Device.smem_banks in
  let smem_bytes_per_block = used + padding in
  let ro_bytes_per_block =
    List.fold_left
      (fun acc a ->
        acc + (tile_bytes a * 2) + if kind = Complex then ring_bytes a else 0)
      0 ro_staged
  in
  let halo_bytes =
    if halo_layers = 0 then 0
    else begin
      let elem =
        List.fold_left
          (fun acc a -> max acc (Program.array p a).Array_info.elem_bytes)
          (Device.elem_size device) staged
      in
      Grid.halo_sites_per_plane grid halo_layers * elem
    end
  in
  (* Register estimate for the new kernel, mirroring paper Eqns. 4-6:
     base pressure of the heaviest member, blocking registers for the
     widest pivot thread load, one fetch register (+halo share), one
     register per register-reuse array, and extra addressing for the halo
     arithmetic. *)
  let base = List.fold_left (fun acc k -> max acc (Program.kernel p k).Kernel.registers_per_thread) 0 ordered in
  let h_th = if halo_bytes = 0 then 0 else (halo_bytes + thr - 1) / thr in
  (* Blocking registers accumulate across all staged arrays (each keeps its
     stencil neighborhood partially live, Eq. 4), and every extra aggregated
     segment keeps intermediate values live across its boundary. *)
  let reg_block =
    let total_load = List.fold_left (fun acc a -> acc + max_load a) 0 staged in
    int_of_float (ceil (device.Device.reg_reuse_factor *. float_of_int total_load))
  in
  let live_across_segments = 10 * (List.length ordered - 1) in
  let registers_per_thread =
    min device.Device.max_registers_per_thread
      (base + reg_block + live_across_segments + 1 + h_th + List.length register_reuse
      + if kind = Complex then 2 else 0)
  in
  {
    name = group_name p ordered;
    members = ordered;
    segments;
    kind;
    pivot = List.sort compare (staged @ ro_staged @ register_reuse);
    register_reuse;
    ro_staged = List.sort compare ro_staged;
    halo_layers;
    halo_bytes;
    smem_bytes_per_block;
    ro_bytes_per_block;
    registers_per_thread;
    vertical_hazard;
  }

let flops_per_site p t =
  List.fold_left (fun acc k -> acc +. Kernel.flops_per_site (Program.kernel p k)) 0. t.members

let halo_extra_flops (p : Program.t) t =
  if t.halo_layers = 0 then 0.
  else begin
    let grid = p.grid in
    List.fold_left
      (fun acc s ->
        if s.halo_depth > 0 then begin
          let ring = Grid.halo_sites_per_plane grid s.halo_depth in
          let sites = float_of_int (ring * grid.nz * Grid.blocks grid) in
          acc +. (Kernel.flops_per_site (Program.kernel p s.kernel) *. sites)
        end
        else acc)
      0. t.segments
  end

let total_flops (p : Program.t) t =
  (flops_per_site p t *. float_of_int (Grid.sites p.grid)) +. halo_extra_flops p t

(* Shared between the record-based path below and the allocation-free
   arena evaluator ([Kf_model.Feature_arena]): the per-array traffic
   aggregation folds floats in the member-set hashtable's bucket order,
   so both paths must run the very same code to stay bit-identical.
   [iter_members] visits the group's members in aggregation order. *)
let gmem_bytes_iter (p : Program.t) ~iter_members ~halo_layers =
  let grid = p.grid in
  let arrays = Hashtbl.create 16 in
  (* For each array: whether it needs an external fetch (read before any
     internal write), the widest read radius, and whether it is stored. *)
  iter_members (fun k ->
      let kern = Program.kernel p k in
      List.iter
        (fun (a : Access.t) ->
          let fetch, radius, written =
            try Hashtbl.find arrays a.array with Not_found -> (false, 0, false)
          in
          let fetch = fetch || (Access.reads a && not written) in
          let radius =
            if Access.reads a then max radius (Stencil.radius a.pattern) else radius
          in
          let written = written || Access.writes a in
          Hashtbl.replace arrays a.array (fetch, radius, written))
        kern.accesses);
  Hashtbl.fold
    (fun a (fetch, radius, written) acc ->
      let info = Program.array p a in
      let footprint = float_of_int (Array_info.bytes info grid) in
      let planes = match info.extent with Array_info.Field3d -> grid.nz | Array_info.Plane2d -> 1 in
      let refetch =
        let r = max radius (if fetch && halo_layers > 0 then halo_layers else 0) in
        if fetch && r > 0 then
          float_of_int (Grid.blocks grid * Grid.halo_sites_per_plane grid r * planes * info.elem_bytes)
        else 0.
      in
      acc
      +. (if fetch then footprint +. refetch else 0.)
      +. if written then footprint else 0.)
    arrays 0.

let gmem_bytes (p : Program.t) t =
  gmem_bytes_iter p ~iter_members:(fun f -> List.iter f t.members) ~halo_layers:t.halo_layers

let smem_staged_count t =
  List.length
    (List.filter
       (fun a -> not (List.mem a t.register_reuse) && not (List.mem a t.ro_staged))
       t.pivot)

let is_singleton t = match t.members with [ _ ] -> true | _ -> false

let pp ppf t =
  Format.fprintf ppf "%s[%s] %s pivot={%s} halo=%d smem=%dB regs=%d" t.name
    (String.concat "," (List.map string_of_int t.members))
    (match t.kind with Simple -> "simple" | Complex -> "complex")
    (String.concat "," (List.map string_of_int t.pivot))
    t.halo_layers t.smem_bytes_per_block t.registers_per_thread
