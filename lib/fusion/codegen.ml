module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Access = Kf_ir.Access
module Stencil = Kf_ir.Stencil
module Array_info = Kf_ir.Array_info

let array_name p a = (Program.array p a).Array_info.name
let ctype p a = if (Program.array p a).Array_info.elem_bytes = 8 then "double" else "float"

let fused_arrays p (f : Fused.t) =
  List.sort_uniq compare
    (List.concat_map (fun k -> Kernel.arrays (Program.kernel p k)) f.Fused.members)

let kernel_signature p (f : Fused.t) =
  let params =
    List.map (fun a -> Printf.sprintf "%s *%s" (ctype p a) (array_name p a)) (fused_arrays p f)
  in
  Printf.sprintf "__global__ void %s(%s, int nz)" f.Fused.name (String.concat ", " params)

let staged_arrays (f : Fused.t) =
  List.filter
    (fun a -> not (List.mem a f.Fused.register_reuse) && not (List.mem a f.Fused.ro_staged))
    f.Fused.pivot

let index_expr (off : Stencil.offset) =
  let part base d = if d = 0 then base else Printf.sprintf "%s%+d" base d in
  Printf.sprintf "[%s,%s,%s]" (part "i" off.di) (part "j" off.dj) (part "k" off.dk)

let smem_index (off : Stencil.offset) halo =
  let part base d off = if d + off = 0 then base else Printf.sprintf "%s%+d" base (d + off) in
  Printf.sprintf "[%s,%s]" (part "tx" off.di halo) (part "ty" off.dj halo)

let read_expr p (f : Fused.t) (a : Access.t) off =
  let name = array_name p a.Access.array in
  if List.mem a.Access.array (staged_arrays f) then
    Printf.sprintf "s_%s%s" name (smem_index off f.Fused.halo_layers)
  else if List.mem a.Access.array f.Fused.register_reuse then Printf.sprintf "r_%s" name
  else if List.mem a.Access.array f.Fused.ro_staged then
    (* Read-only-cache staging (§II-C): loads go through the texture path. *)
    Printf.sprintf "__ldg(&%s%s)" name (index_expr off)
  else Printf.sprintf "%s%s" name (index_expr off)

let emit_segment buf p (f : Fused.t) (s : Fused.segment) =
  let kern = Program.kernel p s.Fused.kernel in
  if s.Fused.barrier_before then Buffer.add_string buf "    __syncthreads();\n";
  Buffer.add_string buf (Printf.sprintf "    /* --- segment from %s%s --- */\n" kern.Kernel.name
     (if s.Fused.halo_producer then " (computes halo ring)" else ""));
  (* One representative statement per written array: a combination of the
     segment's read expressions.  The real transformation would splice the
     original kernel body; the IR only knows the access pattern. *)
  let reads = Kernel.reads kern in
  let operands =
    List.concat_map
      (fun (a : Access.t) -> List.map (fun off -> read_expr p f a off) (Stencil.offsets a.pattern))
      reads
  in
  let rhs = match operands with [] -> "0.0" | l -> String.concat " + " l in
  List.iter
    (fun (a : Access.t) ->
      let name = array_name p a.Access.array in
      let lhs =
        if List.mem a.Access.array (staged_arrays f) then
          Printf.sprintf "s_%s%s" name (smem_index { Stencil.di = 0; dj = 0; dk = 0 } f.Fused.halo_layers)
        else Printf.sprintf "%s[i,j,k]" name
      in
      Buffer.add_string buf (Printf.sprintf "    %s = f_%s(%s);\n" lhs kern.Kernel.name rhs))
    (Kernel.writes kern);
  (* Staged writes must also hit GMEM for the outside world (SMEM is not
     coherent with GMEM). *)
  List.iter
    (fun (a : Access.t) ->
      if List.mem a.Access.array (staged_arrays f) then
        Buffer.add_string buf
          (Printf.sprintf "    %s[i,j,k] = s_%s%s;\n" (array_name p a.Access.array)
             (array_name p a.Access.array)
             (smem_index { Stencil.di = 0; dj = 0; dk = 0 } f.Fused.halo_layers)))
    (Kernel.writes kern)

let emit_kernel p (f : Fused.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (kernel_signature p f);
  Buffer.add_string buf " {\n";
  let h = f.Fused.halo_layers in
  List.iter
    (fun a ->
      let dim =
        if h > 0 then Printf.sprintf "[blockDim.x+%d][blockDim.y+%d]" (2 * h) (2 * h)
        else "[blockDim.x][blockDim.y]"
      in
      Buffer.add_string buf
        (Printf.sprintf "  __shared__ %s s_%s%s;\n" (ctype p a) (array_name p a) dim))
    (staged_arrays f);
  List.iter
    (fun a ->
      Buffer.add_string buf (Printf.sprintf "  %s r_%s;\n" (ctype p a) (array_name p a)))
    f.Fused.register_reuse;
  Buffer.add_string buf "  int tx = threadIdx.x, ty = threadIdx.y;\n";
  Buffer.add_string buf "  int i = blockIdx.x*blockDim.x + tx;\n";
  Buffer.add_string buf "  int j = blockIdx.y*blockDim.y + ty;\n";
  Buffer.add_string buf "  for (int k = 0; k < nz; k++) {\n";
  (* Load phase: stage the pivot arrays that come from GMEM (arrays a
     member produces before any member reads them are filled by their
     producing segment instead). *)
  let externally_fetched a =
    let rec scan = function
      | [] -> false
      | k :: rest -> begin
          match Kernel.access_for (Program.kernel p k) a with
          | Some acc when Access.reads acc -> true
          | Some acc when Access.writes acc -> false
          | _ -> scan rest
        end
    in
    scan f.Fused.members
  in
  let fetched = List.filter externally_fetched (staged_arrays f) in
  let center = { Stencil.di = 0; dj = 0; dk = 0 } in
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "    s_%s%s = %s[i,j,k];\n" (array_name p a) (smem_index center h)
           (array_name p a)))
    fetched;
  if h > 0 && fetched <> [] then begin
    Buffer.add_string buf "    if (ty < 2*HALO) { /* specialized warps load the halo ring */\n";
    List.iter
      (fun a ->
        Buffer.add_string buf
          (Printf.sprintf "      load_halo_ring(s_%s, %s, i, j, k, %d);\n" (array_name p a)
             (array_name p a) h))
      fetched;
    Buffer.add_string buf "    }\n"
  end;
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "    r_%s = %s[i,j,k];\n" (array_name p a) (array_name p a)))
    f.Fused.register_reuse;
  if staged_arrays f <> [] then Buffer.add_string buf "    __syncthreads();\n";
  List.iter (fun s -> emit_segment buf p f s) f.Fused.segments;
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf

let emit_host_sequence (fp : Fused_program.t) =
  let p = fp.Fused_program.program in
  let buf = Buffer.create 512 in
  List.iter
    (fun u ->
      match u with
      | Fused_program.Original k ->
          Buffer.add_string buf
            (Printf.sprintf "%s<<<G, B>>>(...);\n" (Program.kernel p k).Kernel.name)
      | Fused_program.Fused f ->
          Buffer.add_string buf (Printf.sprintf "%s<<<G, B>>>(...);\n" f.Fused.name)
      | Fused_program.Horizontal planes ->
          (* One launch over planes*G blocks; each block dispatches on its
             plane id (blockIdx.x / G) to its plane's body. *)
          let name = function
            | Fused_program.P_original k -> (Program.kernel p k).Kernel.name
            | Fused_program.P_fused f -> f.Fused.name
          in
          Buffer.add_string buf
            (Printf.sprintf "hfuse_%s<<<%d*G, B>>>(...); /* per-plane sub-grids */\n"
               (String.concat "__" (List.map name planes))
               (List.length planes)))
    fp.Fused_program.units;
  Buffer.contents buf

let emit_program (fp : Fused_program.t) =
  let p = fp.Fused_program.program in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "/* Host invocation sequence after fusion */\n";
  Buffer.add_string buf (emit_host_sequence fp);
  List.iter
    (fun f ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (emit_kernel p f))
    (Fused_program.fused_kernels fp);
  Buffer.contents buf
