module Metadata = Kf_ir.Metadata
module Device = Kf_gpu.Device
module Exec_order = Kf_graph.Exec_order

type t = {
  n : int;
  groups : int list list; (* canonical vertical partition *)
  comps : int list list list;
      (* canonical launch packs over [groups]: each pack is a list of
         planes, each plane is exactly one vertical group.  A singleton
         pack is an ordinary vertical launch; a multi-plane pack executes
         its planes as per-plane sub-grids of one horizontal launch
         (HFuse, arXiv 2007.01277).  All-vertical plans have every group
         in its own pack, which keeps every legacy code path (and every
         signature) byte-identical. *)
}

type mode = Vertical | Horizontal | Mixed

(* Int-specialized and allocation-light: groups flowing through the
   search are almost always already sorted (bitset extractions,
   previously normalized plans), in which case the input list is reused
   instead of re-sorted.  Strictly increasing implies duplicate-free, so
   the fast path matches [List.sort_uniq]. *)
let rec is_sorted_strict : int list -> bool = function
  | a :: (b :: _ as tl) -> a < b && is_sorted_strict tl
  | _ -> true

let canonicalize groups =
  let sorted =
    List.map (fun g -> if is_sorted_strict g then g else List.sort_uniq Int.compare g) groups
  in
  List.sort (fun a b -> Int.compare (List.hd a) (List.hd b)) sorted

let canonical_groups = canonicalize

(* Canonical form of a pack list: planes sorted within a pack by head,
   packs sorted by the head of their first plane.  Mirrors [canonicalize]
   one level up, so an all-singleton composition canonicalizes to exactly
   the canonical group order. *)
let canonicalize_comps comps =
  let packs =
    List.map
      (fun pack ->
        let planes =
          List.map
            (fun g -> if is_sorted_strict g then g else List.sort_uniq Int.compare g)
            pack
        in
        List.sort (fun a b -> Int.compare (List.hd a) (List.hd b)) planes)
      comps
  in
  List.sort (fun a b -> Int.compare (List.hd (List.hd a)) (List.hd (List.hd b))) packs

let canonical_comps = canonicalize_comps

let mode pack =
  match pack with
  | [ _ ] -> Vertical
  | planes ->
      if List.for_all (function [ _ ] -> true | _ -> false) planes then Horizontal else Mixed

(* Signatures are flat int arrays: member ids in ascending order, groups in
   canonical order, [-1] between groups.  Kernel ids are non-negative, so
   the separator is unambiguous and two plans share a signature exactly
   when they are equal as partitions. *)
let group_signature group =
  Array.of_list (if is_sorted_strict group then group else List.sort_uniq Int.compare group)

let plan_signature groups =
  let canon = canonicalize groups in
  let len =
    List.fold_left (fun acc g -> acc + List.length g + 1) 0 canon
  in
  let sig_ = Array.make (max 0 (len - 1)) (-1) in
  let i = ref 0 in
  List.iteri
    (fun gi g ->
      if gi > 0 then incr i;
      List.iter
        (fun k ->
          sig_.(!i) <- k;
          incr i)
        g)
    canon;
  sig_

(* Deliberately not Hashtbl.hash: signature hashes select cache shards and
   must not depend on runtime hashing parameters (OCAMLRUNPARAM=R), so a
   plain polynomial over the elements keeps striping reproducible
   everywhere (same scheme as the objective's string-key shard hash). *)
let signature_hash sig_ =
  let h = ref 17 in
  Array.iter (fun x -> h := ((!h * 31) + x + 2) land max_int) sig_;
  !h

let group_hash group = signature_hash (group_signature group)

(* Arena-backed signature encoding.  The search evaluates tens of
   thousands of offspring per second; building a fresh [plan_signature]
   array (plus the canonicalized group list feeding it) for every cache
   probe is pure GC pressure on the hottest path.  A [Sigbuf.t] is a
   per-domain scratch buffer the probe encodes into: the encoded ints
   live in one growable array that is reused across probes, the hash is
   computed over the prefix in place, and an owned copy is extracted
   only on a cache miss (when the key must outlive the probe).  The
   encodings are bit-identical to {!group_signature} /
   {!plan_signature}, so arena-encoded keys interoperate with signature
   arrays persisted in snapshots. *)
module Sigbuf = struct
  type t = {
    mutable buf : int array;  (* encoded signature prefix, [0, len) *)
    mutable len : int;
    mutable gs : int list array;  (* canonical groups of the last
                                     [encode_plan], sorted by head *)
    mutable n_gs : int;
  }

  let create () = { buf = Array.make 64 0; len = 0; gs = Array.make 16 []; n_gs = 0 }

  let ensure t n =
    let cap = Array.length t.buf in
    if n > cap then begin
      let cap' = ref (cap * 2) in
      while n > !cap' do
        cap' := !cap' * 2
      done;
      let buf = Array.make !cap' 0 in
      Array.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end

  let push t x =
    ensure t (t.len + 1);
    t.buf.(t.len) <- x;
    t.len <- t.len + 1

  let canon_group g = if is_sorted_strict g then g else List.sort_uniq Int.compare g

  let encode_group t group =
    t.len <- 0;
    List.iter (push t) (canon_group group)

  let encode_groups_exact t groups =
    t.len <- 0;
    List.iteri
      (fun gi g ->
        if gi > 0 then push t (-1);
        List.iter (push t) g)
      groups

  let encode_plan t groups =
    t.len <- 0;
    t.n_gs <- 0;
    List.iter
      (fun g ->
        let g = canon_group g in
        if t.n_gs >= Array.length t.gs then begin
          let gs = Array.make (2 * Array.length t.gs) [] in
          Array.blit t.gs 0 gs 0 t.n_gs;
          t.gs <- gs
        end;
        (* Insertion sort by head.  Strict [>] keeps equal heads in
           input order, matching the stable [List.sort] of
           [canonicalize] (heads are unique in disjoint partitions
           anyway). *)
        let h = List.hd g in
        let i = ref t.n_gs in
        while !i > 0 && List.hd t.gs.(!i - 1) > h do
          t.gs.(!i) <- t.gs.(!i - 1);
          decr i
        done;
        t.gs.(!i) <- g;
        t.n_gs <- t.n_gs + 1)
      groups;
    for gi = 0 to t.n_gs - 1 do
      if gi > 0 then push t (-1);
      List.iter (push t) t.gs.(gi)
    done

  (* Pack encodings: [-3] separates the planes of one pack, [-1] (as in
     plans) separates packs.  A single-plane pack encodes byte-identically
     to [encode_group] of its group, and an all-singleton composition
     encodes byte-identically to [encode_plan] of the underlying groups —
     so pack keys share cache entries with the vertical keys they
     coincide with, and multi-plane keys live in a disjoint keyspace. *)
  let encode_cgroup t pack =
    t.len <- 0;
    match pack with
    | [ g ] -> List.iter (push t) (canon_group g)
    | planes ->
        let planes =
          List.sort
            (fun a b -> Int.compare (List.hd a) (List.hd b))
            (List.map canon_group planes)
        in
        List.iteri
          (fun i g ->
            if i > 0 then push t (-3);
            List.iter (push t) g)
          planes

  let encode_cplan t comps =
    let comps = canonicalize_comps comps in
    t.len <- 0;
    List.iteri
      (fun ci pack ->
        if ci > 0 then push t (-1);
        List.iteri
          (fun pi g ->
            if pi > 0 then push t (-3);
            List.iter (push t) g)
          pack)
      comps;
    comps

  let append_extra t extra =
    push t (-2);
    List.iter (push t) extra

  let length t = t.len
  let unsafe_buf t = t.buf

  let hash t =
    let h = ref 17 in
    let buf = t.buf in
    for i = 0 to t.len - 1 do
      h := ((!h * 31) + buf.(i) + 2) land max_int
    done;
    !h

  let extract t = Array.sub t.buf 0 t.len

  let canonical t =
    let rec build i acc = if i < 0 then acc else build (i - 1) (t.gs.(i) :: acc) in
    build (t.n_gs - 1) []
end

let of_groups ~n groups =
  if List.exists (( = ) []) groups then invalid_arg "Plan.of_groups: empty group";
  let canon = canonicalize groups in
  let seen = Array.make n false in
  List.iter
    (fun g ->
      List.iter
        (fun k ->
          if k < 0 || k >= n then
            invalid_arg (Printf.sprintf "Plan.of_groups: kernel id %d out of [0,%d)" k n);
          if seen.(k) then
            invalid_arg (Printf.sprintf "Plan.of_groups: kernel %d in two groups" k);
          seen.(k) <- true)
        g)
    canon;
  Array.iteri
    (fun k covered ->
      if not covered then invalid_arg (Printf.sprintf "Plan.of_groups: kernel %d unassigned" k))
    seen;
  (* Duplicates within a group were silently removed by sort_uniq; reject
     them instead, they indicate a caller bug. *)
  let total = List.fold_left (fun acc g -> acc + List.length g) 0 groups in
  if total <> n then invalid_arg "Plan.of_groups: duplicate kernel within a group";
  { n; groups = canon; comps = List.map (fun g -> [ g ]) canon }

let of_composed ~n comps =
  if List.exists (( = ) []) comps then invalid_arg "Plan.of_composed: empty pack";
  if List.exists (List.exists (( = ) [])) comps then
    invalid_arg "Plan.of_composed: empty plane";
  let ccomps = canonicalize_comps comps in
  let base = of_groups ~n (List.concat ccomps) in
  { base with comps = ccomps }

let identity n =
  let groups = List.init n (fun k -> [ k ]) in
  { n; groups; comps = List.map (fun g -> [ g ]) groups }

let groups t = t.groups
let composed t = t.comps
let num_kernels t = t.n
let num_groups t = List.length t.groups
let num_units t = List.length t.comps
let is_vertical t = List.for_all (function [ _ ] -> true | _ -> false) t.comps

let horizontal_pack_count t =
  List.length (List.filter (fun pack -> List.length pack >= 2) t.comps)

let horizontal_plane_count t =
  List.fold_left
    (fun acc pack -> if List.length pack >= 2 then acc + List.length pack else acc)
    0 t.comps

let group_of t k =
  match List.find_opt (fun g -> List.mem k g) t.groups with
  | Some g -> g
  | None -> invalid_arg "Plan.group_of: unknown kernel"

let fused_kernel_count t = List.length (List.filter (fun g -> List.length g >= 2) t.groups)

let fused_member_count t =
  List.fold_left
    (fun acc g -> if List.length g >= 2 then acc + List.length g else acc)
    0 t.groups

type violation =
  | Not_convex of int list
  | Not_kin_connected of int list
  | Smem_overflow of int list * int
  | Register_overflow of int list * int
  | Not_schedulable
  | Spans_sync_point of int list
  | Vertical_flow of int list
  | Planes_dependent of int list list

(* Schedulability condenses by launch *unit* — the pack, not the group:
   a horizontal pack is one launch, so its members must admit a single
   position in the host invocation order.  For all-vertical plans the
   units are exactly the groups, i.e. the historical behavior. *)
let schedulable ~exec t =
  let units = Array.of_list (List.map List.concat t.comps) in
  let unit_of = Array.make t.n (-1) in
  Array.iteri (fun ui u -> List.iter (fun k -> unit_of.(k) <- ui) u) units;
  let module Dag = Kf_graph.Dag in
  let cond = Dag.create (Array.length units) in
  let dag = Exec_order.dag exec in
  for u = 0 to Dag.num_nodes dag - 1 do
    List.iter
      (fun v ->
        let gu = unit_of.(u) and gv = unit_of.(v) in
        if gu <> gv then Dag.add_edge cond gu gv)
      (Dag.succs dag u)
  done;
  Dag.is_acyclic cond

(* Horizontal legality (HFuse): planes of one pack run concurrently as
   sub-grids of one launch, so no data may flow between them — every
   cross-plane kernel pair must be order-independent. *)
let planes_independent ~exec planes =
  let rec check = function
    | [] | [ _ ] -> true
    | g :: rest ->
        List.for_all
          (fun g' ->
            List.for_all
              (fun a -> List.for_all (fun b -> Exec_order.independent exec a b) g')
              g)
          rest
        && check rest
  in
  check planes

let validate ?device ~meta ~exec t =
  let violations = ref [] in
  if not (schedulable ~exec t) then violations := Not_schedulable :: !violations;
  List.iter
    (fun pack ->
      if List.length pack >= 2 && not (planes_independent ~exec pack) then
        violations := Planes_dependent pack :: !violations)
    t.comps;
  List.iter
    (fun g ->
      if List.length g >= 2 then begin
        if not (Exec_order.group_is_convex exec g) then violations := Not_convex g :: !violations;
        if Exec_order.group_spans_sync exec g then violations := Spans_sync_point g :: !violations;
        if not (Metadata.kinship_connected meta g) then
          violations := Not_kin_connected g :: !violations;
        match device with
        | None -> ()
        | Some device ->
            let f = Fused.build ~device ~meta ~exec ~group:g in
            if f.Fused.vertical_hazard then violations := Vertical_flow g :: !violations;
            if f.Fused.smem_bytes_per_block > device.Device.smem_per_smx then
              violations := Smem_overflow (g, f.Fused.smem_bytes_per_block) :: !violations;
            if f.Fused.registers_per_thread >= device.Device.max_registers_per_thread then
              violations := Register_overflow (g, f.Fused.registers_per_thread) :: !violations
      end)
    t.groups;
  List.rev !violations

let is_feasible ~device ~meta ~exec t = validate ~device ~meta ~exec t = []

let equal a b = a.n = b.n && a.groups = b.groups && a.comps = b.comps

let compare a b =
  let c = Stdlib.compare a.n b.n in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.groups b.groups in
    if c <> 0 then c else Stdlib.compare a.comps b.comps

(* Multi-plane packs print their planes joined by " + "; single-plane
   packs print exactly as groups always have, so all-vertical plans
   render byte-identically to the historical format. *)
let pp ppf t =
  let group g = String.concat "," (List.map string_of_int g) in
  Format.fprintf ppf "{%s}"
    (String.concat " | "
       (List.map (fun pack -> String.concat " + " (List.map group pack)) t.comps))

let violation_group = function
  | Not_convex g
  | Not_kin_connected g
  | Smem_overflow (g, _)
  | Register_overflow (g, _)
  | Spans_sync_point g
  | Vertical_flow g ->
      Some g
  | Planes_dependent _ | Not_schedulable -> None

let pp_violation ppf v =
  let group g = String.concat "," (List.map string_of_int g) in
  match v with
  | Not_convex g -> Format.fprintf ppf "group [%s] is not path-convex" (group g)
  | Not_kin_connected g -> Format.fprintf ppf "group [%s] is not kinship-connected" (group g)
  | Smem_overflow (g, b) -> Format.fprintf ppf "group [%s] needs %d B of SMEM" (group g) b
  | Register_overflow (g, r) -> Format.fprintf ppf "group [%s] needs %d registers" (group g) r
  | Not_schedulable -> Format.fprintf ppf "no valid invocation order (cyclic group dependencies)"
  | Spans_sync_point g ->
      Format.fprintf ppf "group [%s] crosses a host synchronization point" (group g)
  | Vertical_flow g ->
      Format.fprintf ppf "group [%s] consumes internal data through a vertical stencil" (group g)
  | Planes_dependent planes ->
      Format.fprintf ppf "horizontal pack [%s] has data edges between planes"
        (String.concat " + " (List.map group planes))
