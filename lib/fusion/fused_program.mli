(** A program after applying a fusion plan: the new host-side invocation
    sequence, mixing untouched original kernels (singleton groups) and new
    fused kernels. *)

type plane =
  | P_original of int  (** singleton plane: original kernel id *)
  | P_fused of Fused.t  (** vertically fused plane *)

type unit_ =
  | Original of int  (** singleton group: original kernel id, called as-is *)
  | Fused of Fused.t
  | Horizontal of plane list
      (** one horizontal launch: each plane runs on its own sub-grid
          (HFuse, arXiv 2007.01277); planes in canonical order *)

type t = {
  program : Kf_ir.Program.t;  (** the original program *)
  plan : Plan.t;
  units : unit_ list;  (** in a dependency-respecting invocation order *)
}

val build :
  device:Kf_gpu.Device.t ->
  meta:Kf_ir.Metadata.t ->
  exec:Kf_graph.Exec_order.t ->
  Plan.t ->
  t
(** Applies the plan.  The unit order is a topological order of the
    condensed (per-group) dependency graph.
    @raise Invalid_argument when the plan's groups are not convex (the
    condensed graph would be cyclic). *)

val fused_kernels : t -> Fused.t list
(** Multi-member vertically fused kernels (including planes of horizontal
    units), in invocation order. *)

val unit_members : unit_ -> int list
val plane_members : plane -> int list

val pp : Format.formatter -> t -> unit
