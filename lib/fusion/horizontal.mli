(** Plane-composition cost semantics for horizontal fusion.

    A horizontal group executes its member planes as per-plane sub-grids
    of one launch (HFuse, arXiv 2007.01277): block [i] of the combined
    grid runs plane [i / blocks]'s code, so independent kernels share
    one launch and hide each other's latency.  This module is the {e
    single} definition of how per-plane costs and resource pressures
    combine into the launch's cost: the projection model
    ({!Kf_model.Projection}) feeds it projected plane runtimes and the
    simulator ({!Kf_sim.Measure}) feeds it measured ones, which is what
    keeps measurements and projections in agreement on plane
    semantics. *)

val dispatch_registers : int
(** Extra per-thread registers charged for the plane-dispatch prologue. *)

val divergence_factor : float
(** Scheduler-divergence cost per additional resident plane. *)

type pressure = { regs : int; smem : int }
(** Per-plane (or combined) resource demand: registers per thread and
    SMEM bytes per block. *)

val pressure : regs:int -> smem:int -> pressure

val combine_pressure : pressure list -> pressure
(** Worst-case pressure across planes — max registers (plus
    {!dispatch_registers}) and max SMEM, since every block of the
    combined launch runs exactly one plane but the resident-block pool
    is shared.  @raise Invalid_argument on an empty list. *)

val blocks_smx : Kf_gpu.Device.t -> threads_per_block:int -> pressure -> int
(** Resident blocks per SMX under a combined pressure, by the same
    min-of-limits rule as the vertical projection model. *)

val feasible : Kf_gpu.Device.t -> threads_per_block:int -> pressure -> bool
(** Register / SMEM / residency feasibility of the combined launch. *)

val overlap :
  Kf_gpu.Device.t -> threads_per_block:int -> blocks:int -> planes:int -> pressure -> float
(** φ ∈ [0,1]: the fraction of the non-critical planes' work that runs
    concurrently with the slowest plane.  1 when the combined grid fits
    in one residency wave; → 0 as the grid depth grows and the planes
    serialize. *)

val divergence_penalty : planes:int -> float
(** [1 + divergence_factor * (planes - 1)]. *)

val runtime :
  Kf_gpu.Device.t ->
  threads_per_block:int ->
  blocks:int ->
  costs:float list ->
  pressure ->
  float
(** Combined runtime of one horizontal launch: the slowest plane in
    full, the rest attenuated by the overlap fraction, all scaled by the
    plane-dispatch divergence penalty; infinite when the combined
    pressure is infeasible.  Per-plane GMEM traffic stays separate — it
    is already inside each plane's cost.  [costs] are the per-plane
    costs (projected or measured), [blocks] the per-plane grid size.
    @raise Invalid_argument on an empty cost list. *)
