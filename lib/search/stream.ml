(* Streaming fusion: warm-start plan repair over an evolving program.

   The invariants that keep this sound:

   - Kernel identity across versions is *content*, not position:
     [Program.restrict] renumbers ids, so matching goes through full
     metadata fingerprints and an LCS (order-preserving, like the
     invocation sequence itself).
   - Nothing verdict-shaped crosses a version boundary.  Convexity
     (Eq. 1.3) is a property of the whole order-of-execution graph, so a
     cached verdict from version v is not valid evidence in version v+1
     even for an untouched group.  Reuse is plan-shaped: the previous
     best plan, mapped and repaired, seeds the next search's population
     and every verdict is recomputed under the new objective (where the
     signature caches make the unchanged groups one shared fill).
   - Evaluation accounting never double-counts: each decision gets a
     fresh objective whose counter starts at zero, seeds go through it
     like any individual, and cumulative totals are summed here — the
     snapshot-resume counter seeding ([Objective.add_evaluations]) is
     never used on this path. *)

module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Access = Kf_ir.Access
module Array_info = Kf_ir.Array_info
module Stencil = Kf_ir.Stencil

type env = Program.t -> Objective.t

type rung = Full_search | Repair_search | Greedy_repair

let rung_name = function
  | Full_search -> "full-search"
  | Repair_search -> "repair-search"
  | Greedy_repair -> "greedy-repair"

type config = {
  params : Hgga.params;
  repair : Hgga.params;
  slo_s : float option;
  min_search_s : float;
}

let default_config =
  let p = Hgga.default_params in
  {
    params = p;
    repair =
      {
        p with
        Hgga.population_size = max 4 (p.Hgga.population_size / 2);
        max_generations = max 50 (p.Hgga.max_generations / 2);
        stall_generations = max 10 (p.Hgga.stall_generations / 2);
      };
    slo_s = None;
    min_search_s = 0.010;
  }

(* ------------------------------------------------------------------ *)
(* Content fingerprints and the diff                                   *)

(* Everything the models read about a kernel, with arrays identified by
   their content (name, element size, extent) rather than their id —
   ids are renumbered by [Program.restrict] and must not matter.  [%h]
   prints floats exactly (hex), so fingerprints never collide through
   decimal rounding. *)
let fingerprint p ki =
  let k = Program.kernel p ki in
  let b = Buffer.create 128 in
  Printf.bprintf b "%s|%h|%d|%d|%h" k.Kernel.name k.Kernel.extra_flops_per_site
    k.Kernel.registers_per_thread k.Kernel.addr_registers k.Kernel.active_fraction;
  List.iter
    (fun (a : Access.t) ->
      let ai = Program.array p a.array in
      Printf.bprintf b ";%s|%d|%s|%s|%h" ai.Array_info.name ai.Array_info.elem_bytes
        (match ai.Array_info.extent with Array_info.Field3d -> "3d" | Array_info.Plane2d -> "2d")
        (Access.mode_to_string a.mode) a.flops;
      List.iter
        (fun (o : Stencil.offset) -> Printf.bprintf b ",%d:%d:%d" o.di o.dj o.dk)
        (Stencil.offsets a.pattern))
    k.Kernel.accesses;
  Buffer.contents b

let fingerprints p = Array.init (Program.num_kernels p) (fingerprint p)

type delta = {
  matched : (int * int) list;
  removed : int list;
  added : int list;
}

(* Classic O(n*m) LCS over the fingerprint sequences; n is a kernel
   count (tens), so quadratic is nothing. *)
let lcs a b =
  let n = Array.length a and m = Array.length b in
  let dp = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      dp.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + dp.(i + 1).(j + 1)
         else max dp.(i + 1).(j) dp.(i).(j + 1))
    done
  done;
  let rec go i j acc =
    if i >= n || j >= m then List.rev acc
    else if String.equal a.(i) b.(j) then go (i + 1) (j + 1) ((i, j) :: acc)
    else if dp.(i + 1).(j) >= dp.(i).(j + 1) then go (i + 1) j acc
    else go i (j + 1) acc
  in
  go 0 0 []

let delta_of_prints a b =
  let matched = lcs a b in
  let old_hit = Array.make (Array.length a) false in
  let new_hit = Array.make (Array.length b) false in
  List.iter
    (fun (i, j) ->
      old_hit.(i) <- true;
      new_hit.(j) <- true)
    matched;
  let unmatched hit =
    let acc = ref [] in
    for i = Array.length hit - 1 downto 0 do
      if not hit.(i) then acc := i :: !acc
    done;
    !acc
  in
  { matched; removed = unmatched old_hit; added = unmatched new_hit }

let diff oldp newp = delta_of_prints (fingerprints oldp) (fingerprints newp)

(* ------------------------------------------------------------------ *)
(* Warm plan: map the previous best through the delta and repair       *)

let warm_plan obj (d : delta) ~prev ~n =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (o, nw) -> Hashtbl.replace tbl o nw) d.matched;
  let seen = Array.make n false in
  let reused = ref 0 in
  let mapped =
    List.concat_map
      (fun g ->
        let g' =
          List.sort compare (List.filter_map (fun k -> Hashtbl.find_opt tbl k) g)
        in
        List.iter (fun k -> seen.(k) <- true) g';
        match g' with
        | [] -> []
        | [ _ ] -> [ g' ]
        | _ ->
            if Objective.group_feasible obj g' then begin
              if List.length g' = List.length g then incr reused;
              [ g' ]
            end
            else
              (* the edit invalidated this group: dissolve, and let the
                 search (or the greedy pass) regroup the pieces *)
              List.map (fun k -> [ k ]) g')
      prev
  in
  let arrivals = ref [] in
  for k = n - 1 downto 0 do
    if not seen.(k) then arrivals := [ k ] :: !arrivals
  done;
  let plan = Grouping.repair_schedule obj (mapped @ !arrivals) in
  (Grouping.normalize plan, !reused)

(* ------------------------------------------------------------------ *)
(* The stream                                                          *)

type decision = {
  d_version : int;
  d_rung : rung;
  d_groups : Grouping.groups;
  d_cost : float;
  d_stop : Hgga.stop_reason;
  d_evaluations : int;
  d_wall_s : float;
  d_changed : int;
  d_reused_groups : int;
  d_slo_tripped : bool;
  d_total_evaluations : int;
  d_total_wall_s : float;
}

type t = {
  env : env;
  config : config;
  mutable version : int;
  mutable cur_program : Program.t;
  mutable prints : string array;
  mutable best : Grouping.groups;
  mutable sum_evaluations : int;
  mutable sum_wall_s : float;
  mutable history : decision list;  (* newest first *)
}

let now () = Unix.gettimeofday ()

(* Remaining wall budget under the SLO, measured from the decision's
   entry point [t0] (so the objective build already counts against the
   deadline).  [None] budget means "too tight to search". *)
let slo_budget config ~t0 =
  match config.slo_s with
  | None -> Some Hgga.unlimited
  | Some s ->
      let remaining = s -. (now () -. t0) in
      if remaining < config.min_search_s then None
      else Some { Hgga.unlimited with Hgga.max_wall_s = Some remaining }

let finish t ~t0 ~version ~rung ~groups ~cost ~stop ~evals ~changed ~reused ~slo_tripped =
  let wall = now () -. t0 in
  t.sum_evaluations <- t.sum_evaluations + evals;
  t.sum_wall_s <- t.sum_wall_s +. wall;
  let d =
    {
      d_version = version;
      d_rung = rung;
      d_groups = groups;
      d_cost = cost;
      d_stop = stop;
      d_evaluations = evals;
      d_wall_s = wall;
      d_changed = changed;
      d_reused_groups = reused;
      d_slo_tripped = slo_tripped;
      d_total_evaluations = t.sum_evaluations;
      d_total_wall_s = t.sum_wall_s;
    }
  in
  t.best <- groups;
  t.history <- d :: t.history;
  d

let create ?(config = default_config) env program =
  let t0 = now () in
  let obj = env program in
  (* Version 0 has nothing to repair: always search, with the SLO (if
     any) as a wall budget — a too-tight deadline still gets at least
     [min_search_s] of GA rather than a plan pulled from thin air. *)
  let budget =
    match slo_budget config ~t0 with
    | Some b -> b
    | None -> { Hgga.unlimited with Hgga.max_wall_s = Some config.min_search_s }
  in
  let r = Hgga.solve ~params:config.params ~budget obj in
  let t =
    {
      env;
      config;
      version = 0;
      cur_program = program;
      prints = fingerprints program;
      best = r.Hgga.groups;
      sum_evaluations = 0;
      sum_wall_s = 0.;
      history = [];
    }
  in
  ignore
    (finish t ~t0 ~version:0 ~rung:Full_search ~groups:r.Hgga.groups ~cost:r.Hgga.cost
       ~stop:r.Hgga.stats.Hgga.stop
       ~evals:(Objective.evaluations obj)
       ~changed:(Program.num_kernels program)
       ~reused:0
       ~slo_tripped:(r.Hgga.stats.Hgga.stop = Hgga.Wall_budget));
  t

let step t program =
  let t0 = now () in
  let version = t.version + 1 in
  let obj = t.env program in
  let n = Program.num_kernels program in
  let prints = fingerprints program in
  let d = delta_of_prints t.prints prints in
  let changed = List.length d.added + List.length d.removed in
  let warm, reused = warm_plan obj d ~prev:t.best ~n in
  (* One deterministic hill-climbing pass over the warm plan: the
     greedy-rung answer, and a second (often better) seed for the GA. *)
  let refined = Grouping.normalize (Grouping.local_refine ~max_passes:1 obj warm) in
  let rung, groups, cost, stop, slo_tripped =
    match slo_budget t.config ~t0 with
    | None ->
        let g = Grouping.normalize (Grouping.enforce_profitability obj refined) in
        (Greedy_repair, g, Objective.plan_cost obj g, Hgga.Converged, true)
    | Some budget ->
        let params = { t.config.repair with Hgga.seed = t.config.params.Hgga.seed + version } in
        let seeds = if refined = warm then [ warm ] else [ warm; refined ] in
        let r = Hgga.solve ~params ~budget ~seed_plans:seeds obj in
        ( Repair_search,
          r.Hgga.groups,
          r.Hgga.cost,
          r.Hgga.stats.Hgga.stop,
          r.Hgga.stats.Hgga.stop = Hgga.Wall_budget )
  in
  t.version <- version;
  t.cur_program <- program;
  t.prints <- prints;
  finish t ~t0 ~version ~rung ~groups ~cost ~stop
    ~evals:(Objective.evaluations obj)
    ~changed ~reused ~slo_tripped

let last t =
  match t.history with
  | d :: _ -> d
  | [] -> invalid_arg "Stream.last: no decisions"  (* unreachable: create decides v0 *)

let decisions t = List.rev t.history
let program t = t.cur_program
let version t = t.version
let total_evaluations t = t.sum_evaluations
let total_wall_s t = t.sum_wall_s
