module Rng = Kf_util.Rng
module Pool = Kf_util.Pool
module Inputs = Kf_model.Inputs
module Program = Kf_ir.Program
module Sig_tbl = Struct_memo.Sig_tbl
module Sigbuf = Kf_fusion.Plan.Sigbuf

type params = {
  population_size : int;
  max_generations : int;
  stall_generations : int;
  crossover_rate : float;
  mutation_rate : float;
  tournament_size : int;
  elite : int;
  seed : int;
  domains : int;
  islands : int;
  migration_interval : int;
  migration_size : int;
  horizontal : bool;
}

let default_params =
  {
    population_size = 60;
    max_generations = 400;
    stall_generations = 60;
    crossover_rate = 0.85;
    mutation_rate = 0.25;
    tournament_size = 3;
    elite = 2;
    seed = 42;
    domains = 1;
    islands = 1;
    migration_interval = 10;
    migration_size = 2;
    (* Off by default: every committed baseline (bench gates, snapshots,
       byte-diff CI jobs) was recorded over the vertical-only space, and
       [horizontal = false] takes exactly the historical code paths. *)
    horizontal = false;
  }

let paper_params =
  {
    default_params with
    population_size = 100;
    max_generations = 2000;
    stall_generations = 2000;
  }

type stop_reason =
  | Converged
  | Generation_cap
  | Evaluation_budget
  | Wall_budget
  | Fault_overload
  | Interrupted

let stop_reason_name = function
  | Converged -> "converged"
  | Generation_cap -> "generation cap"
  | Evaluation_budget -> "evaluation budget exhausted"
  | Wall_budget -> "wall-time budget exhausted"
  | Fault_overload -> "fault rate above threshold"
  | Interrupted -> "interrupted"

type budget = {
  max_evaluations : int option;
  max_wall_s : float option;
  max_fault_rate : float option;
  min_rate_evals : int;
}

let unlimited =
  { max_evaluations = None; max_wall_s = None; max_fault_rate = None; min_rate_evals = 50 }

type checkpoint = { path : string; every : int }

(* One observation per completed generation, for live progress streaming
   (the serve daemon forwards these to clients).  Purely observational:
   the callback sees state the loop computed anyway, so installing one
   cannot change any result. *)
type progress = {
  p_generation : int;
  p_best_cost : float;
  p_stall : int;
  p_evaluations : int;
  p_wall_s : float;
}

type stats = {
  generations : int;
  evaluations : int;
  wall_time_s : float;
  best_cost : float;
  improvement_history : (int * float) list;
  stop : stop_reason;
  faults : Objective.fault_stats;
  group_cache : Objective.cache_stats;
  plan_cache : Objective.cache_stats;
}

type result = {
  groups : Grouping.groups;
  plan : Kf_fusion.Plan.t;
  cost : float;
  stats : stats;
}

(* [eval] carries the individual's whole-plan evaluation on an
   incremental objective; offspring pass it as the delta base so
   unchanged groups skip the shared cache ([None] on the full path).
   [packs] is the launch composition in horizontal mode ([None] in
   vertical-only mode, where only [groups] exists). *)
type individual = {
  groups : Grouping.groups;
  cost : float;
  eval : Objective.plan_eval option;
  packs : int list list list option;
}

let make_individual ?base obj groups =
  if Objective.incremental obj then begin
    let pe = Objective.eval_plan obj ?base groups in
    { groups; cost = Objective.plan_eval_total pe; eval = Some pe; packs = None }
  end
  else { groups; cost = Objective.plan_cost obj groups; eval = None; packs = None }

(* Horizontal-mode individual: every group wrapped in its launch pack.
   Costs flow through the composition evaluator; all-singleton
   compositions share cache entries (and bit-identical totals) with the
   vertical path. *)
let make_individual_c ?base obj packs =
  let packs = Kf_fusion.Plan.canonical_comps packs in
  let groups = List.concat packs in
  if Objective.incremental obj then begin
    let pe = Objective.eval_cplan obj ?base packs in
    { groups; cost = Objective.plan_eval_total pe; eval = Some pe; packs = Some packs }
  end
  else
    { groups; cost = Objective.cplan_cost obj packs; eval = None; packs = Some packs }

let vpacks groups = List.map (fun g -> [ g ]) groups

let packs_of ind = match ind.packs with Some c -> c | None -> vpacks ind.groups

let tournament obj rng pop size =
  ignore obj;
  let best = ref (Rng.choose rng pop) in
  for _ = 2 to size do
    let challenger = Rng.choose rng pop in
    if challenger.cost < !best.cost then best := challenger
  done;
  !best

(* Falkenauer grouping crossover with dependency-aware repair: inject a
   crossing section of multi-member groups from [b] into [a], eliminate
   [a]'s groups disrupted by the injection, and reinsert the orphans —
   first as singletons, then greedily back into adjacent groups when the
   model approves. *)
let crossover obj rng (a : individual) (b : individual) =
  let b_multi = List.filter (fun g -> List.length g >= 2) b.groups in
  match b_multi with
  | [] -> a.groups
  | _ ->
      let count = 1 + Rng.int rng (max 1 (List.length b_multi / 2)) in
      let injected = Array.to_list (Rng.sample rng count (Array.of_list b_multi)) in
      let injected_members = List.concat injected |> List.sort_uniq compare in
      let untouched, disrupted =
        List.partition
          (fun g -> not (List.exists (fun k -> List.mem k injected_members) g))
          a.groups
      in
      let orphans =
        List.concat_map (List.filter (fun k -> not (List.mem k injected_members))) disrupted
      in
      let base = injected @ untouched @ List.map (fun k -> [ k ]) orphans in
      (* Repair: pull each orphan back into a neighboring group when that
         lowers the projected total.  Usually the best improving merge is
         taken, but sometimes a random improving one — a deterministic
         repair drives every child into the same pairing basin. *)
      let groups = ref base in
      List.iter
        (fun k ->
          let own = [ k ] in
          if List.mem own !groups then begin
            let candidates = Grouping.kin_adjacent_groups obj !groups own in
            let improving =
              List.filter_map
                (fun g ->
                  match Grouping.merge_pair obj !groups own g with
                  | None -> None
                  | Some (merged, rest) ->
                      let before =
                        Objective.group_cost obj own +. Objective.group_cost obj g
                      in
                      let delta = Objective.group_cost obj merged -. before in
                      if delta < 0. then Some (delta, merged, rest) else None)
                candidates
            in
            match improving with
            | [] -> ()
            | options ->
                let _, merged, rest =
                  if Rng.chance rng 0.7 then
                    List.fold_left
                      (fun acc o -> match (acc, o) with (d1, _, _), (d2, _, _) when d1 <= d2 -> acc | _ -> o)
                      (List.hd options) (List.tl options)
                  else Rng.choose rng (Array.of_list options)
                in
                groups := merged :: rest
          end)
        orphans;
      (* The injected groups can form condensation cycles with the
         receiver's surviving groups; restore schedulability. *)
      Grouping.normalize (Grouping.repair_schedule obj !groups)

let mutate obj rng groups =
  let multi = List.filter (fun g -> List.length g >= 2) groups in
  let ops = if multi = [] then [ `Merge ] else [ `Dissolve; `Eject; `Merge; `Merge ] in
  match Rng.choose_list rng ops with
  | `Dissolve ->
      let victim = Rng.choose rng (Array.of_list multi) in
      Grouping.dissolve groups victim
  | `Eject -> begin
      let victim = Rng.choose rng (Array.of_list multi) in
      let k = Rng.choose rng (Array.of_list victim) in
      match Grouping.eject obj groups k with Some g -> g | None -> groups
    end
  | `Merge -> begin
      let g = Rng.choose rng (Array.of_list groups) in
      match Grouping.kin_adjacent_groups obj groups g with
      | [] -> groups
      | candidates -> begin
          let partner = Rng.choose rng (Array.of_list candidates) in
          match Grouping.merge_pair obj groups g partner with
          | Some (merged, rest) -> merged :: rest
          | None -> groups
        end
    end

(* ---- horizontal-mode operators ------------------------------------------ *)

let canon_g g =
  if Kf_fusion.Plan.is_sorted_strict g then g else List.sort_uniq Int.compare g

(* Pack-level schedulability: packs are launches, so the condensation
   over the flattened packs must be acyclic (for all-singleton packs this
   is exactly plan schedulability). *)
let cplan_schedulable obj packs = Grouping.schedulable obj (List.map List.concat packs)

let packs_independent obj a b =
  Kf_fusion.Plan.planes_independent
    ~exec:(Objective.inputs obj).Inputs.exec
    (a @ b)

(* Re-attach pack structure after an operator rewrote the vertical
   partition: planes whose group survived intact keep their pack (a
   subset of a pairwise-independent set stays independent), changed or
   fresh groups start as singleton packs.  Falls back to all-vertical
   when the surviving packs no longer admit a launch order — unit
   refinement is not cycle-safe in general. *)
let reattach obj packs groups' =
  let present = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace present (canon_g g) true) groups';
  let claim g =
    let cg = canon_g g in
    match Hashtbl.find_opt present cg with
    | Some true ->
        Hashtbl.replace present cg false;
        true
    | _ -> false
  in
  let kept =
    List.filter_map
      (fun pack ->
        let survivors = List.filter claim pack in
        if List.length survivors >= 2 then Some survivors
        else begin
          (* Return lone survivors to the singleton pool. *)
          List.iter (fun g -> Hashtbl.replace present (canon_g g) true) survivors;
          None
        end)
      packs
  in
  let singles = List.filter (fun g -> Hashtbl.find present (canon_g g)) groups' in
  let out = kept @ vpacks singles in
  if kept = [] || cplan_schedulable obj out then out else vpacks groups'

(* Crossover children inherit packs from both parents: any pack whose
   member groups all survived the crossover intact is kept, the
   receiving parent's packs claiming first (deterministically). *)
let inherit_packs obj (a : individual) (b : individual) groups' =
  reattach obj (packs_of a @ packs_of b) groups'

(* Horizontal-mode mutation: the vertical operators lifted through the
   flat partition, plus the pack-level moves that actually explore the
   new dimension — merge two independent packs into one horizontal
   launch ([`Hpack]), unpack one back to vertical launches ([`Hflip]),
   or move a single plane between compatible packs ([`Plane_move]). *)
let mutate_c obj rng packs =
  let multi = List.filter (fun c -> List.length c >= 2) packs in
  let ops =
    if List.length packs < 2 then [ `Vertical ]
    else if multi = [] then [ `Vertical; `Vertical; `Hpack; `Hpack ]
    else [ `Vertical; `Vertical; `Hpack; `Hflip; `Plane_move ]
  in
  match Rng.choose_list rng ops with
  | `Vertical ->
      let groups' = mutate obj rng (List.concat packs) in
      reattach obj packs groups'
  | `Hpack -> begin
      let a = Rng.choose rng (Array.of_list packs) in
      let candidates = List.filter (fun b -> b != a && packs_independent obj a b) packs in
      match candidates with
      | [] -> packs
      | _ ->
          let b = Rng.choose rng (Array.of_list candidates) in
          let out = (a @ b) :: List.filter (fun c -> c != a && c != b) packs in
          if cplan_schedulable obj out then out else packs
    end
  | `Hflip ->
      let victim = Rng.choose rng (Array.of_list multi) in
      List.concat_map (fun c -> if c == victim then vpacks c else [ c ]) packs
  | `Plane_move -> begin
      let victim = Rng.choose rng (Array.of_list multi) in
      let plane = Rng.choose rng (Array.of_list victim) in
      let rest_pack = List.filter (fun g -> g != plane) victim in
      let others = List.filter (fun c -> c != victim) packs in
      match List.filter (fun c -> packs_independent obj [ plane ] c) others with
      | [] -> rest_pack :: [ plane ] :: others
      | homes ->
          let home = Rng.choose rng (Array.of_list homes) in
          let out =
            rest_pack :: List.map (fun c -> if c == home then plane :: c else c) others
          in
          if cplan_schedulable obj out then out else packs
    end

(* Comp-aware profitability cleanup for the final answer: a multi-plane
   pack must beat the sum of its members' original runtimes or be
   unpacked into vertical launches; all vertical groups then pass the
   ordinary per-group rule. *)
let enforce_profitability_c obj packs =
  let hkeep, vgroups =
    List.fold_left
      (fun (hs, vs) c ->
        match c with
        | [ g ] -> (hs, g :: vs)
        | planes ->
            if Objective.comp_profitable obj planes then (planes :: hs, vs)
            else (hs, List.rev_append planes vs))
      ([], []) packs
  in
  let vgroups = Grouping.enforce_profitability obj (List.rev vgroups) in
  Kf_fusion.Plan.canonical_comps (List.rev hkeep @ vpacks vgroups)

(* One island: a population shard evolving on its own generator.  A
   generation step reads and writes only island-local state (plus the
   shared objective, whose verdicts are pure), so islands can be stepped
   on any worker domain in any order without changing the result. *)
type island_state = {
  mutable ipop : individual array;
  irng : Rng.t;
  isize : int;
  (* Plan-identity set for duplicate suppression, keyed by the canonical
     plan signature encoded into the island's arena — probing hashes a
     flat int prefix in place with the fixed polynomial instead of
     allocating a signature array per check.  Two plans share a
     signature exactly when they are equal as partitions, so dedup
     decisions match the historical signature-keyed hashtable.  Owned by
     the island (cleared each generation, touched only by the domain
     currently stepping the island), NOT shared across domains: a
     cross-domain memo here would make dedup decisions depend on what
     other islands happened to generate first. *)
  dedup : unit Sig_tbl.t;
  dsb : Sigbuf.t;
}

(* Advance one island by one generation and return its generation
   champion.  [incumbent_cost] is the global incumbent at the start of
   the generation — fixed before the fan-out, so the refine decision is
   identical for every island-to-domain assignment.  [child_pool] fans
   child construction of {e this} island over the persistent worker pool
   (used only in single-island mode; with several islands the
   parallelism is across islands instead). *)
let step_island obj params ~n ~incumbent_cost ?child_pool st =
  let sorted = Array.copy st.ipop in
  Array.sort (fun x y -> compare x.cost y.cost) sorted;
  let n_elites = min params.elite (st.isize - 1) in
  let elites = Array.to_list (Array.sub sorted 0 n_elites) in
  let n_children = st.isize - n_elites in
  (* Fresh blood keeps group building blocks flowing. *)
  let fresh = min n_children (if n <= 64 then max 1 (st.isize / 10) else 1) in
  (* Every child draws from its own pre-split RNG, so construction can
     fan out over domains without changing the result.  One batched call
     draws the whole generation's split material from the island stream
     in ascending child order — bit-compatible with the historical
     sequential splits. *)
  let child_rngs = Rng.split_n st.irng n_children in
  let snapshot = st.ipop in
  (* A child also reports its delta base: the receiving parent's plan
     evaluation.  Crossover and mutation touch one or two groups, so the
     child's evaluation resolves everything else from the base table. *)
  let build_child idx =
    let crng = child_rngs.(idx) in
    if idx >= n_children - fresh then begin
      let g = Grouping.random_plan obj crng n in
      ((g, (if params.horizontal then Some (vpacks g) else None)), None)
    end
    else begin
      let p1 = tournament obj crng snapshot params.tournament_size in
      let p2 = tournament obj crng snapshot params.tournament_size in
      if params.horizontal then begin
        (* Same draw schedule as the vertical branch (tournaments,
           crossover coin, mutation coin), with pack inheritance after
           crossover and the comp-aware mutation. *)
        let cp =
          if Rng.chance crng params.crossover_rate then
            let g = crossover obj crng p1 p2 in
            inherit_packs obj p1 p2 g
          else packs_of p1
        in
        let cp = if Rng.chance crng params.mutation_rate then mutate_c obj crng cp else cp in
        ((List.concat cp, Some cp), p1.eval)
      end
      else begin
        let g =
          if Rng.chance crng params.crossover_rate then crossover obj crng p1 p2
          else p1.groups
        in
        let g = if Rng.chance crng params.mutation_rate then mutate obj crng g else g in
        ((g, None), p1.eval)
      end
    end
  in
  let raw_children =
    match child_pool with
    | Some pool when n_children >= 2 * Pool.size pool ->
        (* Work-stealing fan-out: each child index is an independent task
           with its own pre-split RNG, so any task-to-domain assignment
           builds the same children. *)
        let out = Array.make n_children (([], None), None) in
        Pool.run pool ~tasks:n_children (fun i -> out.(i) <- build_child i);
        out
    | _ -> Array.init n_children build_child
  in
  (* Duplicate suppression (sequential in both modes, so results match):
     a population of champion clones stops searching — crossover of
     identical parents is the identity. *)
  Sig_tbl.clear st.dedup;
  let seen_mem g =
    Sigbuf.encode_plan st.dsb g;
    Sig_tbl.mem_pre st.dedup ~buf:(Sigbuf.unsafe_buf st.dsb) ~len:(Sigbuf.length st.dsb)
      ~hash:(Sigbuf.hash st.dsb)
  in
  (* [seen_add] encodes again rather than reusing [seen_mem]'s encoding:
     the callers below interleave membership tests of other plans (and
     evaluations, which use the domain's own arena) between the two. *)
  let seen_add g =
    Sigbuf.encode_plan st.dsb g;
    let hash = Sigbuf.hash st.dsb in
    if
      not
        (Sig_tbl.mem_pre st.dedup ~buf:(Sigbuf.unsafe_buf st.dsb)
           ~len:(Sigbuf.length st.dsb) ~hash)
    then Sig_tbl.add st.dedup (Sigbuf.extract st.dsb) ~hash ()
  in
  (* Horizontal-mode dedup keys on the whole composition ([-3]-separated
     plane signatures), so two plans equal as partitions but packed
     differently both survive — they are different points of the
     enlarged space. *)
  let seen_mem_c cp =
    ignore (Sigbuf.encode_cplan st.dsb cp : int list list list);
    Sig_tbl.mem_pre st.dedup ~buf:(Sigbuf.unsafe_buf st.dsb) ~len:(Sigbuf.length st.dsb)
      ~hash:(Sigbuf.hash st.dsb)
  in
  let seen_add_c cp =
    ignore (Sigbuf.encode_cplan st.dsb cp : int list list list);
    let hash = Sigbuf.hash st.dsb in
    if
      not
        (Sig_tbl.mem_pre st.dedup ~buf:(Sigbuf.unsafe_buf st.dsb)
           ~len:(Sigbuf.length st.dsb) ~hash)
    then Sig_tbl.add st.dedup (Sigbuf.extract st.dsb) ~hash ()
  in
  List.iter
    (fun ind ->
      if params.horizontal then seen_add_c (packs_of ind) else seen_add ind.groups)
    elites;
  let next = ref elites in
  Array.iteri
    (fun idx ((child, cpacks), base) ->
      let crng = child_rngs.(idx) in
      if params.horizontal then begin
        let cp0 = match cpacks with Some c -> c | None -> vpacks child in
        let rec unique attempts cp =
          if (not (seen_mem_c cp)) || attempts = 0 then cp
          else unique (attempts - 1) (mutate_c obj crng cp)
        in
        let cp = unique 3 cp0 in
        seen_add_c cp;
        next := make_individual_c ?base obj cp :: !next
      end
      else begin
        let rec unique attempts g =
          if (not (seen_mem g)) || attempts = 0 then g
          else unique (attempts - 1) (mutate obj crng g)
        in
        let child = unique 3 child in
        seen_add child;
        next := make_individual ?base obj child :: !next
      end)
    raw_children;
  st.ipop <- Array.of_list !next;
  let gen_best =
    Array.fold_left
      (fun acc x -> if x.cost < acc.cost then x else acc)
      st.ipop.(0) st.ipop
  in
  (* Hybridization (the H of HGGA): hill-climb the generation's champion
     by kernel relocation and feed the refinement back into the island.
     On large instances the full neighborhood is too expensive per
     generation; a single final pass runs after the loop instead. *)
  let champion_has_multi =
    match gen_best.packs with
    | Some cp -> List.exists (fun pack -> List.length pack > 1) cp
    | None -> false
  in
  if n <= 64 && gen_best.cost < incumbent_cost -. 1e-15 && not champion_has_multi then begin
    (* Kernel relocation explores the vertical partition only; a champion
       with genuine horizontal packs is left as the operators built it
       (relocation would silently discard its composition). *)
    let refined =
      make_individual ?base:gen_best.eval obj (Grouping.local_refine obj gen_best.groups)
    in
    if refined.cost < gen_best.cost then begin
      st.ipop.(0) <- refined;
      refined
    end
    else gen_best
  end
  else gen_best

(* Ring migration: every island sends copies of its [count] best to the
   island [offset] positions ahead, replacing the receiver's worst.  All
   emigrants are collected before any island is modified, so delivery
   order cannot matter.  The offset rotates with the migration cursor
   (1, 2, ..., K-1, 1, ...) so repeated migrations reach every island,
   not just the fixed ring neighbor. *)
let migrate islands cursor ~count =
  let k = Array.length islands in
  let offset = 1 + (cursor mod (k - 1)) in
  let by_cost x y = compare x.cost y.cost in
  let emigrants =
    Array.map
      (fun st ->
        let sorted = Array.copy st.ipop in
        Array.sort by_cost sorted;
        Array.sub sorted 0 (min count (st.isize - 1)))
      islands
  in
  Array.iteri
    (fun i st ->
      let incoming = emigrants.((i - offset + k + k) mod k) in
      let sorted = Array.copy st.ipop in
      Array.sort by_cost sorted;
      let m = min (Array.length incoming) (st.isize - 1) in
      Array.blit incoming 0 sorted (st.isize - m) m;
      st.ipop <- sorted)
    islands

let solve ?(params = default_params) ?checkpoint ?resume_from ?(budget = unlimited)
    ?(seed_plans = []) ?on_generation ?interrupt obj =
  if params.population_size < 2 then invalid_arg "Hgga.solve: population too small";
  if seed_plans <> [] && resume_from <> None then
    invalid_arg
      "Hgga.solve: seed_plans and resume_from are mutually exclusive (a snapshot \
       already carries its population, and its evaluation counters are seeded \
       separately — mixing the two would double-count the seeds' evaluations)";
  if params.domains < 1 then invalid_arg "Hgga.solve: domains must be positive";
  if params.islands < 1 then invalid_arg "Hgga.solve: islands must be positive";
  if params.islands * 2 > params.population_size then
    invalid_arg "Hgga.solve: need at least 2 individuals per island";
  if params.migration_interval < 1 then
    invalid_arg "Hgga.solve: migration_interval must be positive";
  if params.migration_size < 0 then
    invalid_arg "Hgga.solve: migration_size must be non-negative";
  if params.horizontal && Objective.portfolio_active obj then
    invalid_arg
      "Hgga.solve: horizontal composition and device portfolios are mutually \
       exclusive (portfolio rows are keyed by vertical group signatures)";
  let start = Unix.gettimeofday () in
  let n = Program.num_kernels (Objective.inputs obj).Inputs.program in
  let identity = List.init n (fun k -> [ k ]) in
  let k_islands = params.islands in
  (* Island sizes: population split as evenly as possible, the first
     [population mod islands] islands one larger. *)
  let island_size i =
    (params.population_size / k_islands)
    + if i < params.population_size mod k_islands then 1 else 0
  in
  let islands, resumed =
    match resume_from with
    | None ->
        let master = Rng.create params.seed in
        (* Explicit loops (not [Array.init], whose application order is
           unspecified): each island's generator is split from the master
           in island order, and the initial plans draw from the island
           generator in slot order, so island streams and populations are
           fixed by (seed, island index) alone.  The master is never
           drawn from again. *)
        let g_idx = ref 0 in
        let dummy_island () =
          {
            ipop = [||];
            irng = master;
            isize = 0;
            dedup = Sig_tbl.create ~capacity:16 ();
            dsb = Sigbuf.create ();
          }
        in
        let islands = Array.make k_islands (dummy_island ()) in
        (* Warm seeds (in-memory prior plans, e.g. the streaming repair
           path): the first slots of every island hold them, so every
           island starts its evolution next to the previous optimum.
           Seed evaluations go through the objective like any other
           individual — the caller must NOT pre-seed the evaluation
           counter for them (that is the snapshot-resume path's job);
           per-run stats then count exactly the work this run did.
           With no seeds the construction below is bit-identical to the
           historical one. *)
        let seeds = Array.of_list seed_plans in
        List.iter
          (fun g ->
            List.iter
              (fun k ->
                if k < 0 || k >= n then
                  invalid_arg
                    (Printf.sprintf "Hgga.solve: seed plan references kernel %d of %d" k n))
              g)
          (List.concat seed_plans);
        for i = 0 to k_islands - 1 do
          let size = island_size i in
          let n_seeds = min (Array.length seeds) (size - 1) in
          let irng = Rng.split master in
          let ipop = Array.make size (make_individual obj identity) in
          for j = 0 to size - 1 do
            let idx = !g_idx in
            incr g_idx;
            if j < n_seeds then ipop.(j) <- make_individual obj seeds.(j)
            else if not (i = 0 && j = n_seeds) then begin
              let attempts = n + (idx * n / params.population_size) in
              ipop.(j) <-
                make_individual obj (Grouping.random_plan obj irng ~merge_attempts:attempts n)
            end
          done;
          islands.(i) <-
            {
              ipop;
              irng;
              isize = size;
              dedup = Sig_tbl.create ~capacity:(2 * size) ();
              dsb = Sigbuf.create ();
            }
        done;
        (islands, None)
    | Some path ->
        let snap = Snapshot.load path in
        if snap.Snapshot.n <> n then
          invalid_arg
            (Printf.sprintf "Hgga.solve: snapshot is for a %d-kernel program, not %d"
               snap.Snapshot.n n);
        if snap.Snapshot.population_size <> params.population_size then
          invalid_arg
            (Printf.sprintf "Hgga.solve: snapshot population %d <> params population %d"
               snap.Snapshot.population_size params.population_size);
        if snap.Snapshot.seed <> params.seed then
          invalid_arg
            (Printf.sprintf "Hgga.solve: snapshot seed %d <> params seed %d"
               snap.Snapshot.seed params.seed);
        if List.length snap.Snapshot.islands <> k_islands then
          invalid_arg
            (Printf.sprintf "Hgga.solve: snapshot has %d islands, params ask for %d"
               (List.length snap.Snapshot.islands) k_islands);
        if
          (not params.horizontal)
          && (snap.Snapshot.cbest <> []
             || List.exists
                  (fun (isl : Snapshot.island) -> isl.Snapshot.cpopulation <> [])
                  snap.Snapshot.islands)
        then
          invalid_arg
            "Hgga.solve: snapshot carries horizontal compositions; resume with \
             horizontal search enabled";
        (* Costs are recomputed: evaluation is pure, so the resumed
           individuals are bit-identical to the ones that were saved. *)
        let islands =
          Array.of_list
            (List.map
               (fun (isl : Snapshot.island) ->
                 let ipop =
                   match isl.Snapshot.cpopulation with
                   | [] ->
                       Array.of_list
                         (List.map (fun g -> make_individual obj g) isl.Snapshot.population)
                   | cpop ->
                       Array.of_list (List.map (fun cp -> make_individual_c obj cp) cpop)
                 in
                 {
                   ipop;
                   irng = Rng.of_state isl.Snapshot.rng_state;
                   isize = Array.length ipop;
                   dedup = Sig_tbl.create ~capacity:(2 * Array.length ipop) ();
                   dsb = Sigbuf.create ();
                 })
               snap.Snapshot.islands)
        in
        (islands, Some snap)
  in
  (* Budgets and reported stats span the whole logical run: seed the
     objective's counters with the work already spent before the snapshot
     (the pre-resume evaluations and faults), and carry the accumulated
     wall time so `--budget-wall 60` means 60 seconds total, not 60
     seconds per resume. *)
  let base_wall =
    match resumed with Some snap -> snap.Snapshot.wall_time_s | None -> 0.
  in
  (match resumed with
  | Some snap ->
      Objective.add_evaluations obj snap.Snapshot.evaluations;
      Objective.add_faults obj snap.Snapshot.faults;
      Objective.add_cache_stats obj ~group:snap.Snapshot.group_cache
        ~plan:snap.Snapshot.plan_cache
  | None -> ());
  let wall_now () = base_wall +. (Unix.gettimeofday () -. start) in
  let all_individuals () = Array.concat (Array.to_list (Array.map (fun st -> st.ipop) islands)) in
  let best =
    ref
      (match resumed with
      | Some snap -> begin
          match snap.Snapshot.cbest with
          | [] -> make_individual obj snap.Snapshot.best
          | cb -> make_individual_c obj cb
        end
      | None ->
          let all = all_individuals () in
          Array.fold_left (fun acc x -> if x.cost < acc.cost then x else acc) all.(0) all)
  in
  (* Newest improvement first; snapshots store oldest first. *)
  let history =
    ref
      (match resumed with
      | Some snap -> List.rev snap.Snapshot.history
      | None -> [ (0, !best.cost) ])
  in
  let stall = ref (match resumed with Some snap -> snap.Snapshot.stall | None -> 0) in
  let gen = ref (match resumed with Some snap -> snap.Snapshot.generation | None -> 0) in
  let migration_cursor =
    ref (match resumed with Some snap -> snap.Snapshot.migration_cursor | None -> 0)
  in
  let last_saved = ref (-1) in
  let save_checkpoint ?(force = false) () =
    match checkpoint with
    | Some { path; every } when (force || !gen mod max 1 every = 0) && !last_saved <> !gen ->
        last_saved := !gen;
        Snapshot.save path
          {
            Snapshot.population_size = params.population_size;
            seed = params.seed;
            n;
            generation = !gen;
            stall = !stall;
            evaluations = Objective.evaluations obj;
            wall_time_s = wall_now ();
            faults = Objective.fault_snapshot obj;
            migration_cursor = !migration_cursor;
            group_cache = Objective.cache_stats obj;
            plan_cache = Objective.plan_cache_stats obj;
            (* never persisted for search checkpoints: warm-seeding a
               resume would change its evaluation counts and break the
               bit-identical resume contract *)
            group_verdicts = [];
            best = !best.groups;
            (* [] in vertical mode keeps the rendered bytes identical to
               pre-composition snapshots (the writer omits empty
               composition fields entirely). *)
            cbest = (if params.horizontal then packs_of !best else []);
            history = List.rev !history;
            islands =
              Array.to_list
                (Array.map
                   (fun st ->
                     {
                       Snapshot.rng_state = Rng.state st.irng;
                       population =
                         Array.to_list (Array.map (fun ind -> ind.groups) st.ipop);
                       cpopulation =
                         (if params.horizontal then
                            Array.to_list (Array.map packs_of st.ipop)
                          else []);
                     })
                   islands);
          };
        if Kf_obs.Trace.enabled () then
          Kf_obs.Trace.instant ~cat:"hgga"
            ~args:[ ("generation", Kf_obs.Json.Int !gen); ("path", Kf_obs.Json.Str path) ]
            "checkpoint";
        true
    | _ -> false
  in
  (* Budgets are enforced at generation granularity: the search degrades
     gracefully by keeping the incumbent instead of aborting mid-way. *)
  let over_budget () =
    let evals = Objective.evaluations obj in
    if (match interrupt with Some f -> f () | None -> false) then Some Interrupted
    else if (match budget.max_evaluations with Some m -> evals >= m | None -> false) then
      Some Evaluation_budget
    else if
      match budget.max_wall_s with Some m -> wall_now () >= m | None -> false
    then Some Wall_budget
    else begin
      match budget.max_fault_rate with
      | Some r when evals >= budget.min_rate_evals && Objective.fault_rate obj >= r ->
          Some Fault_overload
      | _ -> None
    end
  in
  (* Initial populations were built on this domain; merge their verdicts
     into the shared base so generation 1's workers start from a warm
     read-only table and the evaluation counter is exact. *)
  Objective.merge_locals obj;
  let stop = ref None in
  (* One persistent pool for the whole run: spawning domains per
     generation would dominate small-population generations. *)
  let workers = if k_islands > 1 then min params.domains k_islands else params.domains in
  let pool = if workers > 1 then Some (Pool.create workers) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
  while
    !stop = None && !gen < params.max_generations && !stall < params.stall_generations
  do
    match over_budget () with
    | Some reason -> stop := Some reason
    | None ->
    incr gen;
    (* Islands advance in lockstep: the incumbent cost every island sees
       is fixed before the fan-out, each island step touches only its own
       state, and the combine below runs sequentially on this domain —
       so a fixed island count gives bit-identical results for any worker
       count. *)
    let incumbent_cost = !best.cost in
    let gen_bests =
      Array.make k_islands { groups = identity; cost = infinity; eval = None; packs = None }
    in
    (if k_islands = 1 then
       gen_bests.(0) <-
         step_island obj params ~n ~incumbent_cost ?child_pool:pool islands.(0)
     else
       match pool with
       | None ->
           Array.iteri
             (fun i st -> gen_bests.(i) <- step_island obj params ~n ~incumbent_cost st)
             islands
       | Some p ->
           (* Work-stealing fan-out: each island step is one task.  A
              domain that finishes its islands early steals queued
              islands from a loaded neighbor instead of idling — island
              steps vary wildly in cost (refinement triggers on
              improving islands only), which is exactly what made the
              old lockstep strided assignment lose to sequential. *)
           Pool.run p ~tasks:k_islands (fun i ->
               gen_bests.(i) <- step_island obj params ~n ~incumbent_cost islands.(i)));
    (* Generation barrier: all workers are parked in the pool again, so
       fold their private memo tables into the shared bases.  Everything
       below — budget checks, progress callbacks, checkpoints, traces —
       reads merged (scheduling-independent) evaluation counts. *)
    Objective.merge_locals obj;
    let gen_best =
      Array.fold_left
        (fun acc x -> if x.cost < acc.cost then x else acc)
        gen_bests.(0) gen_bests
    in
    if gen_best.cost < !best.cost -. 1e-15 then begin
      best := gen_best;
      history := (!gen, gen_best.cost) :: !history;
      stall := 0
    end
    else incr stall;
    (match on_generation with
    | Some f ->
        f
          {
            p_generation = !gen;
            p_best_cost = !best.cost;
            p_stall = !stall;
            p_evaluations = Objective.evaluations obj;
            p_wall_s = wall_now ();
          }
    | None -> ());
    if
      k_islands >= 2 && params.migration_size >= 1
      && !gen mod params.migration_interval = 0
    then begin
      migrate islands !migration_cursor ~count:params.migration_size;
      incr migration_cursor;
      if Kf_obs.Trace.enabled () then
        Kf_obs.Trace.instant ~cat:"hgga"
          ~args:
            [
              ("generation", Kf_obs.Json.Int !gen);
              ("cursor", Kf_obs.Json.Int !migration_cursor);
              ("offset", Kf_obs.Json.Int (1 + ((!migration_cursor - 1) mod (k_islands - 1))));
            ]
          "migration"
    end;
    let checkpointed = save_checkpoint () in
    (* One structured record per generation.  All the derived quantities
       (mean cost, diversity) are computed only when a sink is attached,
       so the disabled-mode loop body is unchanged. *)
    if Kf_obs.Trace.enabled () then begin
      let open Kf_obs in
      if k_islands >= 2 then
        Array.iteri
          (fun i st ->
            let island_best =
              Array.fold_left
                (fun acc x -> if x.cost < acc.cost then x else acc)
                st.ipop.(0) st.ipop
            in
            Trace.instant ~cat:"hgga"
              ~args:
                [
                  ("generation", Json.Int !gen);
                  ("island", Json.Int i);
                  ("size", Json.Int st.isize);
                  ("best_cost", Json.Float island_best.cost);
                ]
              "island")
          islands;
      let all = all_individuals () in
      let finite_costs =
        Array.fold_left
          (fun acc x -> if Float.is_finite x.cost then x.cost :: acc else acc)
          [] all
      in
      let mean_cost =
        match finite_costs with
        | [] -> Float.nan
        | cs -> List.fold_left ( +. ) 0. cs /. float_of_int (List.length cs)
      in
      let distinct = Hashtbl.create params.population_size in
      Array.iter (fun x -> Hashtbl.replace distinct (Grouping.normalize x.groups) ()) all;
      let f = Objective.fault_snapshot obj in
      Trace.instant ~cat:"hgga"
        ~args:
          [
            ("generation", Json.Int !gen);
            ("best_cost", Json.Float !best.cost);
            ("gen_best_cost", Json.Float gen_best.cost);
            ("mean_cost", Json.Float mean_cost);
            ("diversity",
             Json.Float
               (float_of_int (Hashtbl.length distinct)
               /. float_of_int params.population_size));
            ("infeasible", Json.Int (Array.length all - List.length finite_costs));
            ("islands", Json.Int k_islands);
            ("stall", Json.Int !stall);
            ("evaluations", Json.Int (Objective.evaluations obj));
            ("wall_s", Json.Float (wall_now ()));
            ("faults_injected", Json.Int f.Objective.injected);
            ("faults_quarantined", Json.Int f.Objective.quarantined);
            ("group_cache_hits", Json.Int (Objective.cache_stats obj).Objective.hits);
            ("plan_cache_hits", Json.Int (Objective.plan_cache_stats obj).Objective.hits);
            ("checkpointed", Json.Bool checkpointed);
          ]
        "generation"
    end
  done);
  let stop_reason =
    match !stop with
    | Some r -> r
    | None -> if !gen >= params.max_generations then Generation_cap else Converged
  in
  (* A final unconditional checkpoint: without it, a budget or convergence
     stop discards up to [every - 1] generations of progress since the
     last periodic save. *)
  ignore (save_checkpoint ~force:true () : bool);
  if Kf_obs.Trace.enabled () then
    Kf_obs.Trace.instant ~cat:"hgga"
      ~args:
        [
          ("reason", Kf_obs.Json.Str (stop_reason_name stop_reason));
          ("generations", Kf_obs.Json.Int !gen);
          ("evaluations", Kf_obs.Json.Int (Objective.evaluations obj));
        ]
      "stop";
  (* Graceful degradation: if no feasible individual ever appeared (every
     candidate quarantined or infeasible), fall back to the greedy
     baseline, and to the identity plan when even that fails. *)
  let final_groups, final_plan, final_cost =
    if params.horizontal then begin
      let best_packs =
        if Float.is_finite !best.cost then packs_of !best
        else begin
          match Greedy.solve obj with
          | g when Float.is_finite g.Greedy.cost -> vpacks g.Greedy.groups
          | _ -> vpacks identity
          | exception _ -> vpacks identity
        end
      in
      (* The large-instance relocation pass is vertical-only; run it only
         when the winner carries no genuine packs to preserve. *)
      let best_packs =
        if n > 64 && List.for_all (fun pack -> List.length pack = 1) best_packs then
          vpacks (Grouping.local_refine ~max_passes:1 obj (List.concat best_packs))
        else best_packs
      in
      let final_comps = enforce_profitability_c obj best_packs in
      let final_cost = Objective.cplan_cost obj final_comps in
      let plan = Kf_fusion.Plan.of_composed ~n final_comps in
      (Kf_fusion.Plan.groups plan, plan, final_cost)
    end
    else begin
      let best_groups =
        if Float.is_finite !best.cost then !best.groups
        else begin
          match Greedy.solve obj with
          | g when Float.is_finite g.Greedy.cost -> g.Greedy.groups
          | _ -> identity
          | exception _ -> identity
        end
      in
      let final_groups =
        if n > 64 then Grouping.local_refine ~max_passes:1 obj best_groups else best_groups
      in
      let final_groups = Grouping.enforce_profitability obj final_groups in
      let final_cost = Objective.plan_cost obj final_groups in
      (final_groups, Kf_fusion.Plan.of_groups ~n final_groups, final_cost)
    end
  in
  (* Pick up the final refinement's verdicts too, so the reported stats
     and any caller-side warm-cache export see a fully merged base. *)
  Objective.merge_locals obj;
  {
    groups = final_groups;
    plan = final_plan;
    cost = final_cost;
    stats =
      {
        generations = !gen;
        evaluations = Objective.evaluations obj;
        wall_time_s = wall_now ();
        best_cost = final_cost;
        improvement_history = List.rev !history;
        stop = stop_reason;
        faults = Objective.fault_snapshot obj;
        group_cache = Objective.cache_stats obj;
        plan_cache = Objective.plan_cache_stats obj;
      };
  }

(* Portfolio wrapper: the search itself is the single-device [solve]
   (the primary device drives selection, bit-identical to a run without
   a portfolio); the per-device winners and the cross-device front are
   read off the objective's accumulated rows afterwards. *)
type portfolio_result = {
  primary : result;
  devices : Kf_gpu.Device.t array;
  front : Objective.pareto_entry list;
  best_per_device : Objective.pareto_entry array;
}

let solve_portfolio ?params ?checkpoint ?resume_from ?budget ?seed_plans ?on_generation
    ?interrupt obj =
  if not (Objective.portfolio_active obj) then
    invalid_arg "Hgga.solve_portfolio: objective has no device portfolio";
  let primary =
    solve ?params ?checkpoint ?resume_from ?budget ?seed_plans ?on_generation ?interrupt obj
  in
  let devices = Objective.portfolio_devices obj in
  let front = Objective.pareto_front obj in
  let best_per_device =
    match front with
    | [] -> [||]
    | e0 :: rest ->
        Array.init (Array.length devices) (fun d ->
            List.fold_left
              (fun best e ->
                if e.Objective.pf_costs.(d) < best.Objective.pf_costs.(d) then e else best)
              e0 rest)
  in
  { primary; devices; front; best_per_device }
