(* GA checkpoint serialization.

   The snapshot is a small JSON document (no external JSON dependency is
   available, so the writer and the restricted reader live here).  Costs
   are not stored: they are recomputed on resume — evaluation is pure, so
   recomputation is exact — which keeps the snapshot independent of float
   formatting.  The RNG states are the one float-free piece of state that
   must round-trip exactly; they are stored as decimal int64 strings.

   Format history:
     v1  single population, no budget carry-over
     v2  + wall_time_s and cumulative fault counters
     v3  island model: per-island populations and RNG states, plus the
         ring-migration cursor.  v1/v2 files still load as a single
         island with cursor 0.
     v4  + cumulative group-cache and plan-cache counters
         (hits/misses/evictions), so resumed runs report hit rates over
         the whole logical run.  v1-v3 files load with zero counters.
     v5  + optional [group_verdicts]: memoized (signature, verdict)
         pairs of the group-projection cache, so a daemon can persist
         its warm cache across restarts ({!Cache} documents carry the
         same payload standalone).  v1-v4 files load with an empty
         list; search checkpoints keep writing an empty list — warm-
         seeding a resume would change its evaluation counts and break
         the bit-identical resume contract.
     v6  cache documents only: optional per-entry [plan] — the best
         plan a completed search found for the entry's triple (groups,
         cost, and a search-parameter fingerprint), so the daemon can
         answer a repeat request outright instead of merely warm.
         Search checkpoints are unchanged; v5 cache files load with no
         stored plans.
     v7  horizontal composition: optional per-island [cpopulation]
         (each individual's launch packs, a list of plane lists) and an
         optional top-level [cbest].  Vertical-only checkpoints omit
         both fields — apart from the format number the rendered bytes
         are exactly the v6 ones — and v1-v6 files load with empty
         compositions. *)

let format_version = 7

type island = {
  rng_state : int64;  (** raw SplitMix64 state of this island's generator *)
  population : int list list list;
  cpopulation : int list list list list;
      (** launch compositions, parallel to [population] (format >= 7;
          [] for vertical-only checkpoints and older files) *)
}

type t = {
  population_size : int;  (** total across all islands *)
  seed : int;
  n : int;  (** kernel count of the program being searched *)
  generation : int;
  stall : int;
  evaluations : int;
  wall_time_s : float;
      (** wall time accumulated across every run segment up to the save
          (format >= 2; 0 when reading a format-1 snapshot) *)
  faults : Objective.fault_stats;
      (** cumulative fault counters at the save (format >= 2; zeros when
          reading a format-1 snapshot) *)
  migration_cursor : int;
      (** ring migrations performed so far (format >= 3; 0 otherwise) *)
  group_cache : Objective.cache_stats;
      (** cumulative group-cache counters at the save (format >= 4;
          zeros otherwise; the size field is not persisted — the saved
          process's table is gone) *)
  plan_cache : Objective.cache_stats;
      (** cumulative plan-cache counters, like [group_cache] *)
  group_verdicts : (int array * Objective.verdict) list;
      (** memoized group verdicts to persist (format >= 5; [] otherwise).
          Search checkpoints always write [] — see the format note. *)
  best : int list list;
  cbest : int list list list;
      (** the best individual's launch composition (format >= 7; [] for
          vertical-only checkpoints and older files) *)
  history : (int * float) list;  (** oldest first *)
  islands : island list;  (** island count = list length; 1 for v1/v2 *)
}

(* --- writing --- *)

let buf_groups b groups =
  Buffer.add_char b '[';
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '[';
      List.iteri
        (fun j k ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int k))
        g;
      Buffer.add_char b ']')
    groups;
  Buffer.add_char b ']'

(* A composition is one more nesting level: packs of planes of members. *)
let buf_comps b comps =
  Buffer.add_char b '[';
  List.iteri
    (fun i pack ->
      if i > 0 then Buffer.add_char b ',';
      buf_groups b pack)
    comps;
  Buffer.add_char b ']'

let render t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"format\": %d,\n" format_version;
  Printf.bprintf b "  \"population_size\": %d,\n" t.population_size;
  Printf.bprintf b "  \"seed\": %d,\n" t.seed;
  Printf.bprintf b "  \"n\": %d,\n" t.n;
  Printf.bprintf b "  \"generation\": %d,\n" t.generation;
  Printf.bprintf b "  \"stall\": %d,\n" t.stall;
  Printf.bprintf b "  \"evaluations\": %d,\n" t.evaluations;
  (* %h is a hexadecimal float literal: exact round trip. *)
  Printf.bprintf b "  \"wall_time_s\": \"%h\",\n" t.wall_time_s;
  let f = t.faults in
  Printf.bprintf b "  \"faults\": [%d,%d,%d,%d,%d,%d],\n" f.Objective.injected
    f.Objective.trapped f.Objective.corrupted f.Objective.retries f.Objective.recovered
    f.Objective.quarantined;
  Printf.bprintf b "  \"migration_cursor\": %d,\n" t.migration_cursor;
  Printf.bprintf b "  \"group_cache\": [%d,%d,%d],\n" t.group_cache.Objective.hits
    t.group_cache.Objective.misses t.group_cache.Objective.evictions;
  Printf.bprintf b "  \"plan_cache\": [%d,%d,%d],\n" t.plan_cache.Objective.hits
    t.plan_cache.Objective.misses t.plan_cache.Objective.evictions;
  if t.group_verdicts <> [] then begin
    Buffer.add_string b "  \"group_verdicts\": [";
    List.iteri
      (fun i (sg, (v : Objective.verdict)) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "\n    [[";
        Array.iteri
          (fun j k ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b (string_of_int k))
          sg;
        (* feasible as 0/1 (the restricted reader has no booleans); costs
           as %h hex-float strings for an exact round trip — "%h" renders
           the infinity of an infeasible verdict as "infinity", which
           float_of_string accepts back. *)
        Printf.bprintf b "],%d,\"%h\",\"%h\"]"
          (if v.Objective.feasible then 1 else 0)
          v.Objective.cost v.Objective.orig_sum)
      t.group_verdicts;
    Buffer.add_string b "\n  ],\n"
  end;
  Buffer.add_string b "  \"best\": ";
  buf_groups b t.best;
  if t.cbest <> [] then begin
    Buffer.add_string b ",\n  \"cbest\": ";
    buf_comps b t.cbest
  end;
  Buffer.add_string b ",\n  \"history\": [";
  List.iteri
    (fun i (gen, cost) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "[%d,\"%h\"]" gen cost)
    t.history;
  Buffer.add_string b "],\n  \"islands\": [";
  List.iteri
    (fun i isl ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    {\"rng_state\": ";
      Printf.bprintf b "\"%Ld\", \"population\": [" isl.rng_state;
      List.iteri
        (fun j groups ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b "\n      ";
          buf_groups b groups)
        isl.population;
      Buffer.add_string b "\n    ]";
      if isl.cpopulation <> [] then begin
        Buffer.add_string b ", \"cpopulation\": [";
        List.iteri
          (fun j comps ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b "\n      ";
            buf_comps b comps)
          isl.cpopulation;
        Buffer.add_string b "\n    ]"
      end;
      Buffer.add_string b "}")
    t.islands;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Atomic write: render first, write to a sibling temp file, and only
   rename over the target after an error-checked [close_out] confirms the
   bytes were flushed.  A checkpoint interrupted mid-write — or one whose
   flush fails on a full disk — must never replace a good previous
   snapshot with a truncated one, so on any failure the temp file is
   removed and the target left untouched. *)
let atomic_write path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     output_string oc contents;
     close_out oc
   with
  | () -> ()
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  match Sys.rename tmp path with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let save path t = atomic_write path (render t)

(* --- restricted JSON reading --- *)

type json =
  | Jnum of int
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> malformed "expected %C at offset %d, found %C" c !pos d
    | None -> malformed "expected %C at offset %d, found end of input" c !pos
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> malformed "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some (('"' | '\\' | '/') as c) -> Buffer.add_char b c
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some c -> malformed "unsupported escape \\%C" c
          | None -> malformed "unterminated escape");
          advance ();
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-') ->
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    if !pos = start then malformed "expected number at offset %d" start;
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Jnum v
    | None -> malformed "bad number at offset %d" start
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (string_lit ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let items = ref [ value () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := value () :: !items;
                more ()
            | Some ']' -> advance ()
            | _ -> malformed "expected ',' or ']' at offset %d" !pos
          in
          more ();
          Jarr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            (k, value ())
          in
          let fields = ref [ field () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields;
                more ()
            | Some '}' -> advance ()
            | _ -> malformed "expected ',' or '}' at offset %d" !pos
          in
          more ();
          Jobj (List.rev !fields)
        end
    | Some _ -> number ()
    | None -> malformed "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> len then malformed "trailing content at offset %d" !pos;
  v

let field obj name =
  match obj with
  | Jobj fields -> begin
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> malformed "missing field %S" name
    end
  | _ -> malformed "expected an object for field %S" name

let as_int name = function Jnum v -> v | _ -> malformed "field %S: expected int" name
let as_str name = function Jstr v -> v | _ -> malformed "field %S: expected string" name
let as_arr name = function Jarr v -> v | _ -> malformed "field %S: expected array" name

let as_groups name j =
  List.map (fun g -> List.map (as_int name) (as_arr name g)) (as_arr name j)

let as_comps name j = List.map (fun pack -> as_groups name pack) (as_arr name j)

let field_opt obj name =
  match obj with Jobj fields -> List.assoc_opt name fields | _ -> None

let rng_state_of_string name s =
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> malformed "bad %s %S" name s

let cost_of_string name s =
  match float_of_string_opt s with
  | Some v when not (Float.is_nan v) -> v
  | Some _ -> malformed "%s must not be NaN" name
  | None -> malformed "bad %s %S" name s

(* Format 5 added the persisted warm cache; older files (and search
   checkpoints, which write none) load with an empty list. *)
let parse_group_verdicts j =
  match field_opt j "group_verdicts" with
  | None -> []
  | Some v ->
      List.map
        (fun entry ->
          match as_arr "group_verdicts" entry with
          | [ sg; feas; cost; orig ] ->
              let signature =
                Array.of_list (List.map (as_int "group_verdicts") (as_arr "group_verdicts" sg))
              in
              if Array.length signature = 0 then
                malformed "group_verdicts signatures must be non-empty";
              let feasible =
                match as_int "group_verdicts" feas with
                | 0 -> false
                | 1 -> true
                | _ -> malformed "group_verdicts feasible flag must be 0 or 1"
              in
              ( signature,
                {
                  Objective.feasible;
                  cost = cost_of_string "group_verdicts cost" (as_str "group_verdicts" cost);
                  orig_sum =
                    cost_of_string "group_verdicts orig_sum" (as_str "group_verdicts" orig);
                } )
          | _ -> malformed "group_verdicts entries are [signature, feasible, cost, orig_sum]")
        (as_arr "group_verdicts" v)

let of_string s =
  let j = parse_json s in
  let fmt = as_int "format" (field j "format") in
  (* Format 1 lacked wall_time_s and faults; formats 1 and 2 lacked
     islands (they stored one population and one rng_state).  The missing
     fields default so every older checkpoint keeps resuming — as a
     single island, with per-segment budgets for v1, exactly as it was
     written. *)
  if fmt < 1 || fmt > format_version then malformed "unsupported snapshot format %d" fmt;
  let wall_time_s =
    match field_opt j "wall_time_s" with
    | None -> 0.
    | Some v -> (
        let str = as_str "wall_time_s" v in
        match float_of_string_opt str with
        | Some w when Float.is_finite w && w >= 0. -> w
        | Some _ -> malformed "wall_time_s must be finite and non-negative"
        | None -> malformed "bad wall_time_s %S" str)
  in
  let faults =
    match field_opt j "faults" with
    | None -> Objective.zero_faults ()
    | Some v -> (
        match List.map (as_int "faults") (as_arr "faults" v) with
        | [ injected; trapped; corrupted; retries; recovered; quarantined ]
          when List.for_all (fun c -> c >= 0)
                 [ injected; trapped; corrupted; retries; recovered; quarantined ] ->
            { Objective.injected; trapped; corrupted; retries; recovered; quarantined }
        | _ -> malformed "faults must be six non-negative ints")
  in
  let migration_cursor =
    match field_opt j "migration_cursor" with
    | None -> 0
    | Some v ->
        let c = as_int "migration_cursor" v in
        if c < 0 then malformed "migration_cursor must be non-negative";
        c
  in
  (* Format 4 added the cache counters; older files report zeros (the
     hit-rate history before the upgrade is simply unknown). *)
  let cache_counts name =
    match field_opt j name with
    | None -> { Objective.hits = 0; misses = 0; evictions = 0; size = 0 }
    | Some v -> (
        match List.map (as_int name) (as_arr name v) with
        | [ hits; misses; evictions ] when hits >= 0 && misses >= 0 && evictions >= 0 ->
            { Objective.hits; misses; evictions; size = 0 }
        | _ -> malformed "%s must be three non-negative ints" name)
  in
  let group_cache = cache_counts "group_cache" in
  let plan_cache = cache_counts "plan_cache" in
  let group_verdicts = parse_group_verdicts j in
  let history =
    List.map
      (fun entry ->
        match as_arr "history" entry with
        | [ g; c ] ->
            let cost_str = as_str "history" c in
            let cost =
              match float_of_string_opt cost_str with
              | Some v -> v
              | None -> malformed "bad history cost %S" cost_str
            in
            (as_int "history" g, cost)
        | _ -> malformed "history entries are [generation, cost] pairs")
      (as_arr "history" (field j "history"))
  in
  let islands =
    match field_opt j "islands" with
    | Some v ->
        let isls =
          List.map
            (fun isl ->
              let population =
                List.map
                  (fun g -> as_groups "population" g)
                  (as_arr "population" (field isl "population"))
              in
              let cpopulation =
                match field_opt isl "cpopulation" with
                | None -> []
                | Some c ->
                    let cpop = List.map (as_comps "cpopulation") (as_arr "cpopulation" c) in
                    if List.length cpop <> List.length population then
                      malformed "cpopulation must be parallel to population";
                    cpop
              in
              {
                rng_state =
                  rng_state_of_string "rng_state" (as_str "rng_state" (field isl "rng_state"));
                population;
                cpopulation;
              })
            (as_arr "islands" v)
        in
        if isls = [] then malformed "islands must be non-empty";
        isls
    | None ->
        (* v1/v2: one flat population and a single rng_state. *)
        [
          {
            rng_state =
              rng_state_of_string "rng_state" (as_str "rng_state" (field j "rng_state"));
            population =
              List.map
                (fun g -> as_groups "population" g)
                (as_arr "population" (field j "population"));
            cpopulation = [];
          };
        ]
  in
  {
    population_size = as_int "population_size" (field j "population_size");
    seed = as_int "seed" (field j "seed");
    n = as_int "n" (field j "n");
    generation = as_int "generation" (field j "generation");
    stall = as_int "stall" (field j "stall");
    evaluations = as_int "evaluations" (field j "evaluations");
    wall_time_s;
    faults;
    migration_cursor;
    group_cache;
    plan_cache;
    group_verdicts;
    best = as_groups "best" (field j "best");
    cbest = (match field_opt j "cbest" with None -> [] | Some c -> as_comps "cbest" c);
    history;
    islands;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = of_string (read_file path)

(* --- standalone warm-cache documents (serve daemon persistence) --- *)

module Cache = struct
  type stored_plan = { groups : int list list; cost : float; fingerprint : string }

  type entry = {
    key : string;
    verdicts : (int array * Objective.verdict) list;
    plan : stored_plan option;
  }

  type nonrec t = entry list

  let kind = "serve-cache"

  (* The restricted writer has no escaper; reject strings it could not
     round-trip (keys are hex digests, fingerprints are [A-Za-z0-9|.:-]
     by construction, so this never fires on daemon-produced data). *)
  let check_plain what s =
    String.iter
      (fun c ->
        if c = '"' || c = '\\' || Char.code c < 0x20 then
          invalid_arg (Printf.sprintf "Snapshot.Cache.save: %s must not need JSON escaping" what))
      s

  let render (t : t) =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\n";
    Printf.bprintf b "  \"format\": %d,\n" format_version;
    Printf.bprintf b "  \"kind\": \"%s\",\n" kind;
    Buffer.add_string b "  \"entries\": [";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char b ',';
        check_plain "key" e.key;
        Printf.bprintf b "\n    {\"key\": \"%s\", \"verdicts\": [" e.key;
        List.iteri
          (fun j (sg, (v : Objective.verdict)) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b "[[";
            Array.iteri
              (fun k x ->
                if k > 0 then Buffer.add_char b ',';
                Buffer.add_string b (string_of_int x))
              sg;
            Printf.bprintf b "],%d,\"%h\",\"%h\"]"
              (if v.Objective.feasible then 1 else 0)
              v.Objective.cost v.Objective.orig_sum)
          e.verdicts;
        Buffer.add_string b "]";
        (match e.plan with
        | None -> ()
        | Some p ->
            check_plain "plan fingerprint" p.fingerprint;
            if Float.is_nan p.cost then
              invalid_arg "Snapshot.Cache.save: plan cost must not be NaN";
            Buffer.add_string b ", \"plan\": {\"groups\": [";
            List.iteri
              (fun j g ->
                if j > 0 then Buffer.add_char b ',';
                Buffer.add_char b '[';
                List.iteri
                  (fun k x ->
                    if k > 0 then Buffer.add_char b ',';
                    Buffer.add_string b (string_of_int x))
                  g;
                Buffer.add_char b ']')
              p.groups;
            Printf.bprintf b "], \"cost\": \"%h\", \"fingerprint\": \"%s\"}" p.cost
              p.fingerprint);
        Buffer.add_string b "}")
      t;
    Buffer.add_string b "\n  ]\n}\n";
    Buffer.contents b

  let save path t = atomic_write path (render t)

  let of_string s : t =
    let j = parse_json s in
    let fmt = as_int "format" (field j "format") in
    if fmt < 5 || fmt > format_version then malformed "unsupported cache format %d" fmt;
    let k = as_str "kind" (field j "kind") in
    if k <> kind then malformed "expected a %S document, found kind %S" kind k;
    List.map
      (fun e ->
        let key = as_str "key" (field e "key") in
        if key = "" then malformed "cache entry key must be non-empty";
        (* reuse the snapshot verdict shape under a wrapper object *)
        let verdicts = parse_group_verdicts (Jobj [ ("group_verdicts", field e "verdicts") ]) in
        let plan =
          (* absent before format 6 (and optional since) *)
          match field_opt e "plan" with
          | None -> None
          | Some p ->
              Some
                {
                  groups = as_groups "plan groups" (field p "groups");
                  cost = cost_of_string "plan cost" (as_str "plan cost" (field p "cost"));
                  fingerprint = as_str "plan fingerprint" (field p "fingerprint");
                }
        in
        { key; verdicts; plan })
      (as_arr "entries" (field j "entries"))

  let load path = of_string (read_file path)
end
