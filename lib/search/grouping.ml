module Rng = Kf_util.Rng
module Bitset = Kf_util.Bitset
module Inputs = Kf_model.Inputs
module Metadata = Kf_ir.Metadata
module Exec_order = Kf_graph.Exec_order
module Dag = Kf_graph.Dag

type groups = int list list

(* Int-specialized, and already-sorted member lists (the common case by
   far: bitset extractions, previously normalized plans) are reused
   rather than re-sorted. *)
let normalize groups =
  List.map
    (fun g -> if Kf_fusion.Plan.is_sorted_strict g then g else List.sort Int.compare g)
    groups
  |> List.sort (fun a b -> Int.compare (List.hd a) (List.hd b))

let exec_of obj = (Objective.inputs obj).Inputs.exec
let meta_of obj = (Objective.inputs obj).Inputs.meta

(* Strongly connected components of the condensed (per-group) dependency
   graph.  Per-group path convexity (paper Eq. 1.3) does not by itself
   guarantee that the new kernels can be ordered — two convex groups can
   still depend on each other through different members — so merges must
   also swallow any condensation cycle they create. *)
let condensation_sccs exec groups_arr =
  let dag = Exec_order.dag exec in
  let ng = Array.length groups_arr in
  let group_of = Hashtbl.create 64 in
  Array.iteri (fun gi g -> List.iter (fun k -> Hashtbl.replace group_of k gi) g) groups_arr;
  let adj = Array.make ng [] in
  let radj = Array.make ng [] in
  for u = 0 to Dag.num_nodes dag - 1 do
    if Hashtbl.mem group_of u then
      List.iter
        (fun v ->
          match (Hashtbl.find_opt group_of u, Hashtbl.find_opt group_of v) with
          | Some gu, Some gv when gu <> gv ->
              adj.(gu) <- gv :: adj.(gu);
              radj.(gv) <- gu :: radj.(gv)
          | _ -> ())
        (Dag.succs dag u)
  done;
  (* Kosaraju. *)
  let visited = Array.make ng false in
  let order = ref [] in
  let rec dfs1 v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter dfs1 adj.(v);
      order := v :: !order
    end
  in
  for v = 0 to ng - 1 do
    dfs1 v
  done;
  let comp = Array.make ng (-1) in
  let rec dfs2 v c =
    if comp.(v) < 0 then begin
      comp.(v) <- c;
      List.iter (fun w -> dfs2 w c) radj.(v)
    end
  in
  let nc = ref 0 in
  List.iter
    (fun v ->
      if comp.(v) < 0 then begin
        dfs2 v !nc;
        incr nc
      end)
    !order;
  let sccs = Array.make !nc [] in
  Array.iteri (fun gi c -> sccs.(c) <- gi :: sccs.(c)) comp;
  Array.to_list sccs

(* Structural operators are pure functions of the (fixed) execution
   order, metadata and their arguments, and the GA re-asks the same
   structural questions constantly; on an incremental objective each of
   the wrappers below memoizes its operator under an exact-order
   signature (see {!Struct_memo} for why the keys must not be
   canonicalized).  With memoization off ([--no-incremental]) the raw
   computation runs every time — the PR 3 behavior. *)
(* Group-level acyclicity (Kahn's algorithm on bitset adjacency).  Both
   consumers of [sccs_of] only inspect component {e sizes}, so when the
   condensation is acyclic any all-singleton component list is
   behaviorally interchangeable with Kosaraju's — which lets the memo
   miss path skip the full SCC pass in the (overwhelmingly common)
   schedulable case. *)
let group_dag_acyclic succs arr =
  let ng = Array.length arr in
  if ng <= 1 || Array.length succs = 0 then true
  else begin
    let n = Bitset.universe_size succs.(0) in
    let out =
      Array.map
        (fun g ->
          let b = Bitset.create n in
          List.iter (fun u -> Bitset.union_into b succs.(u)) g;
          b)
        arr
    in
    let edge i j = i <> j && List.exists (Bitset.mem out.(i)) arr.(j) in
    let indeg = Array.make ng 0 in
    for i = 0 to ng - 1 do
      for j = 0 to ng - 1 do
        if edge i j then indeg.(j) <- indeg.(j) + 1
      done
    done;
    let queue = ref [] in
    Array.iteri (fun j d -> if d = 0 then queue := j :: !queue) indeg;
    let removed = ref 0 in
    while !queue <> [] do
      match !queue with
      | [] -> ()
      | i :: tl ->
          queue := tl;
          incr removed;
          for j = 0 to ng - 1 do
            if edge i j then begin
              indeg.(j) <- indeg.(j) - 1;
              if indeg.(j) = 0 then queue := j :: !queue
            end
          done
    done;
    !removed = ng
  end

let sccs_of obj exec groups_arr =
  match Objective.struct_memos obj with
  | None -> condensation_sccs exec groups_arr
  | Some m ->
      Struct_memo.find_exact m.Struct_memo.sccs
        (Array.to_list groups_arr)
        (fun () ->
          if group_dag_acyclic m.Struct_memo.succs groups_arr then
            List.init (Array.length groups_arr) (fun i -> [ i ])
          else condensation_sccs exec groups_arr)

(* Memo hits return a fresh bitset (the table copies on both sides):
   callers mutate the closure in place, and a shared cached bitset would
   be corrupted by the first caller. *)
let closure_of obj dag bs =
  match Objective.struct_memos obj with
  | None -> Dag.path_closure dag bs
  | Some m ->
      Struct_memo.find_or_compute_bitset m.Struct_memo.closure bs (fun () ->
          Dag.path_closure dag bs)

let schedulable obj groups =
  List.for_all
    (fun scc -> List.length scc <= 1)
    (sccs_of obj (exec_of obj) (Array.of_list groups))

(* Group indices (never 0 itself) in a condensation cycle with group 0:
   [{j | 0 ->+ j and j ->+ 0}] at group granularity, walked directly on
   the precomputed per-kernel successor bitsets.  Exactly the members of
   the [condensation_sccs] component containing group 0, minus 0 — but
   without rebuilding adjacency tables or running a full Kosaraju pass,
   which dominates the raw merge on small programs. *)
let cycle_with_zero succs arr =
  let ng = Array.length arr in
  if ng <= 1 || Array.length succs = 0 then []
  else begin
    let n = Bitset.universe_size succs.(0) in
    let out =
      Array.map
        (fun g ->
          let b = Bitset.create n in
          List.iter (fun u -> Bitset.union_into b succs.(u)) g;
          b)
        arr
    in
    let edge i j = i <> j && List.exists (Bitset.mem out.(i)) arr.(j) in
    let fwd = Array.make ng false in
    let bwd = Array.make ng false in
    let rec dfs seen via i =
      for j = 0 to ng - 1 do
        if (not seen.(j)) && via i j then begin
          seen.(j) <- true;
          dfs seen via j
        end
      done
    in
    dfs fwd (fun i j -> edge i j) 0;
    dfs bwd (fun i j -> edge j i) 0;
    let acc = ref [] in
    for j = ng - 1 downto 1 do
      if fwd.(j) && bwd.(j) then acc := j :: !acc
    done;
    !acc
  end

let absorbing_merge_raw obj groups seed =
  let exec = exec_of obj in
  let dag = Exec_order.dag exec in
  let n = Dag.num_nodes dag in
  let merged = ref (Bitset.of_list n seed) in
  let rest = ref groups in
  let stable = ref false in
  while not !stable do
    (* Close under the path constraint, then absorb any group that now
       intersects the closure; repeat until nothing more is pulled in. *)
    merged := closure_of obj dag !merged;
    let intersecting, untouched =
      List.partition (fun g -> List.exists (Bitset.mem !merged) g) !rest
    in
    if intersecting <> [] then begin
      List.iter (fun g -> List.iter (Bitset.add !merged) g) intersecting;
      rest := untouched
    end
    else begin
      (* Closure stable: absorb any condensation cycle through the merged
         group (the merge may have created mutual dependencies with
         otherwise-untouched groups). *)
      let arr = Array.of_list (Bitset.to_list !merged :: !rest) in
      let absorb_idx =
        match Objective.struct_memos obj with
        | Some m -> cycle_with_zero m.Struct_memo.succs arr
        | None -> (
            match
              List.find_opt
                (fun scc -> List.mem 0 scc && List.length scc > 1)
                (sccs_of obj exec arr)
            with
            | None -> []
            | Some scc -> List.filter (( <> ) 0) scc)
      in
      match absorb_idx with
      | [] -> stable := true
      | _ ->
          List.iter (fun gi -> List.iter (Bitset.add !merged) arr.(gi)) absorb_idx;
          rest := List.filteri (fun i _ -> not (List.mem (i + 1) absorb_idx)) !rest
    end
  done;
  let group = Bitset.to_list !merged in
  if Objective.group_feasible obj group then Some (group, !rest) else None

(* The absorbed member set is a pure set-level fixpoint (closure + cycle
   absorption), independent of the order of [groups] and [seed], so the
   memo key is canonical and permuted-but-equal calls collide; only the
   order-preserving [rest] is rebuilt from the live argument on a hit.
   Memoizing the merge (feasibility probe included) skips repeat cache
   probes; with the default unbounded verdict cache the skipped probe
   would have been a hit, so evaluation counts are unchanged. *)
let absorbing_merge obj groups seed =
  match Objective.struct_memos obj with
  | None -> absorbing_merge_raw obj groups seed
  | Some m -> begin
      let merged =
        Struct_memo.find_canonical m.Struct_memo.merge groups seed
          (fun () ->
            match absorbing_merge_raw obj groups seed with
            | Some (group, _) -> Some group
            | None -> None)
      in
      match merged with
      | None -> None
      | Some group ->
          (* Same boolean as a bitset membership test, without building
             the bitset: the merged member list is short and sorted. *)
          let rec mem_int (k : int) = function
            | [] -> false
            | x :: tl -> x = k || mem_int k tl
          in
          Some
            (group, List.filter (fun g -> not (List.exists (fun k -> mem_int k group) g)) groups)
    end

let repair_schedule obj groups =
  (* Merge every multi-group condensation cycle; if the merged group is
     infeasible, dissolve the cycle's groups into singletons (a refinement
     never introduces new cycles). *)
  let result = ref groups in
  let continue_ = ref true in
  while !continue_ do
    let arr = Array.of_list !result in
    match List.find_opt (fun scc -> List.length scc > 1) (sccs_of obj (exec_of obj) arr) with
    | None -> continue_ := false
    | Some scc ->
        let in_scc = List.concat_map (fun gi -> arr.(gi)) scc in
        let others =
          List.filteri (fun i _ -> not (List.mem i scc)) !result
        in
        (match absorbing_merge obj others in_scc with
        | Some (merged, rest) -> result := merged :: rest
        | None -> result := List.map (fun k -> [ k ]) in_scc @ others)
  done;
  !result

let merge_pair obj groups a b =
  let others = List.filter (fun g -> g <> a && g <> b) groups in
  absorbing_merge obj others (a @ b)

let kin_neighbor_list obj group =
  let meta = meta_of obj in
  List.concat_map (fun k -> Metadata.kin_neighbors meta k) group
  |> List.sort_uniq compare
  |> List.filter (fun k -> not (List.mem k group))

let kin_adjacent_raw obj groups group =
  let neighbors = kin_neighbor_list obj group in
  List.filter (fun g -> g <> group && List.exists (fun k -> List.mem k neighbors) g) groups

(* The adjacency predicate depends only on the probe group's (fixed,
   metadata-derived) kinship neighbor set, never on the rest of the
   partition — so the memo caches that set per group, and the
   order-preserving filter over [groups] runs on every call. *)
let kin_adjacent_groups obj groups group =
  match Objective.struct_memos obj with
  | None -> kin_adjacent_raw obj groups group
  | Some m ->
      let nb =
        Struct_memo.find_group m.Struct_memo.kin group
          (fun () ->
            let n = Dag.num_nodes (Exec_order.dag (exec_of obj)) in
            Bitset.of_list n (kin_neighbor_list obj group))
      in
      List.filter (fun g -> g <> group && List.exists (Bitset.mem nb) g) groups

let random_plan obj rng ?merge_attempts n =
  let attempts = match merge_attempts with Some a -> a | None -> 2 * n in
  let groups = ref (List.init n (fun k -> [ k ])) in
  (* Kept in sync with [groups]; most attempts mutate nothing, so the
     array is only rebuilt after an accepted merge. *)
  let arr = ref (Array.of_list !groups) in
  for _ = 1 to attempts do
    if Array.length !arr >= 2 then begin
      let g = Rng.choose rng !arr in
      match kin_adjacent_groups obj !groups g with
      | [] -> ()
      | candidates -> begin
          let partner = Rng.choose rng (Array.of_list candidates) in
          (* Deliberately the raw merge, not the memoized one: initial
             plans are drawn from novel random partitions, so memo probes
             at this site rarely hit and their key encoding outweighs the
             (fast-cycle-check) merge itself — and every probe would also
             pollute the table crossover relies on.  Memoization is
             result-invisible, so this is a throughput choice only. *)
          let others = List.filter (fun g' -> g' <> g && g' <> partner) !groups in
          match absorbing_merge_raw obj others (g @ partner) with
          | Some (merged, rest) ->
              (* Keep the merge only when the model likes it at least half
                 the time; always-greedy initial populations collapse into
                 one basin. *)
              let keep =
                Objective.group_profitable obj merged || Rng.chance rng 0.25
              in
              if keep then begin
                groups := merged :: rest;
                arr := Array.of_list !groups
              end
          | None -> ()
        end
    end
  done;
  normalize !groups

let dissolve groups g =
  let found = ref false in
  let out =
    List.concat_map
      (fun g' ->
        if (not !found) && g' = g then begin
          found := true;
          List.map (fun k -> [ k ]) g'
        end
        else [ g' ])
      groups
  in
  out

let eject obj groups k =
  let target = List.find_opt (fun g -> List.mem k g) groups in
  match target with
  | None | Some [ _ ] -> None
  | Some g ->
      let remainder = List.filter (( <> ) k) g in
      if
        Objective.group_feasible obj remainder
        && Exec_order.group_is_convex (exec_of obj) remainder
      then begin
        let others = List.filter (fun g' -> g' <> g) groups in
        Some ([ k ] :: remainder :: others)
      end
      else None

let relocation_pass obj current =
  let cost gs = Objective.plan_cost obj gs in
  let improved = ref false in
  let kernels = List.concat !current in
  List.iter
    (fun k ->
      let base = cost !current in
      let own = List.find (List.mem k) !current in
      (* Candidate plans: k alone, and k merged into each adjacent group.
         Relocation of a non-singleton member goes through eject (which
         checks the remainder's feasibility). *)
      let as_singleton =
        if List.length own = 1 then Some !current else eject obj !current k
      in
      match as_singleton with
      | None -> ()
      | Some ejected ->
          let candidates =
            ejected
            :: List.filter_map
                 (fun g ->
                   match merge_pair obj ejected [ k ] g with
                   | Some (merged, rest) -> Some (merged :: rest)
                   | None -> None)
                 (kin_adjacent_groups obj ejected [ k ])
          in
          let best =
            List.fold_left
              (fun acc cand ->
                let c = cost cand in
                match acc with Some (bc, _) when bc <= c -> acc | _ -> Some (c, cand))
              None candidates
          in
          (match best with
          | Some (c, cand) when c < base -. 1e-15 ->
              current := cand;
              improved := true
          | _ -> ()))
    kernels;
  !improved

(* Exchange one kernel between two multi-member groups.  Relocation alone
   cannot repair mispaired groups ({a,c},{b,d} vs {a,b},{c,d}) because the
   intermediate states do not improve. *)
let swap_pass obj current =
  let cost gs = Objective.plan_cost obj gs in
  let improved = ref false in
  let multi () = List.filter (fun g -> List.length g >= 2) !current in
  List.iter
    (fun g1 ->
      if List.mem g1 !current then
        List.iter
          (fun g2 ->
            if List.mem g1 !current && List.mem g2 !current && g1 <> g2 then
              List.iter
                (fun k1 ->
                  List.iter
                    (fun k2 ->
                      if List.mem g1 !current && List.mem g2 !current then begin
                        let base = cost !current in
                        let ( >>= ) o f = match o with None -> None | Some x -> f x in
                        let plan =
                          eject obj !current k1 >>= fun p1 ->
                          eject obj p1 k2 >>= fun p2 ->
                          let r2 = List.filter (( <> ) k2) g2 in
                          let r1 = List.filter (( <> ) k1) g1 in
                          (if List.mem r2 p2 then merge_pair obj p2 [ k1 ] r2 else None)
                          >>= fun (m1, rest1) ->
                          let p3 = m1 :: rest1 in
                          if List.mem r1 p3 then begin
                            merge_pair obj p3 [ k2 ] r1 >>= fun (m2, rest2) ->
                            Some (m2 :: rest2)
                          end
                          else None
                        in
                        match plan with
                        | Some cand when cost cand < base -. 1e-15 ->
                            current := cand;
                            improved := true
                        | _ -> ()
                      end)
                    g2)
                g1)
          (multi ()))
    (multi ());
  !improved

let local_refine_raw ~max_passes obj groups =
  let n = List.fold_left (fun acc g -> acc + List.length g) 0 groups in
  let current = ref groups in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    incr passes;
    improved := relocation_pass obj current;
    (* The quadratic swap neighborhood only pays on small instances. *)
    if n <= 48 then improved := swap_pass obj current || !improved
  done;
  normalize !current

(* Refinement is deterministic in its input and the GA refines the
   generation champion every generation — which rarely changes between
   improvements, so repeat refinements of the same (exact-order) plan
   are hits.  The objective probes a hit skips would all be cache hits
   themselves, so evaluation counts are unchanged. *)
let local_refine ?(max_passes = 3) obj groups =
  match Objective.struct_memos obj with
  | None -> local_refine_raw ~max_passes obj groups
  | Some m ->
      Struct_memo.find_exact_with m.Struct_memo.refine groups [ max_passes ]
        (fun () -> local_refine_raw ~max_passes obj groups)

let enforce_profitability obj groups =
  normalize
    (List.concat_map
       (fun g ->
         if List.length g >= 2 && not (Objective.group_profitable obj g) then
           List.map (fun k -> [ k ]) g
         else [ g ])
       groups)
