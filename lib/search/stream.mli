(** Streaming fusion: online decisions over an evolving kernel program.

    The paper searches once for a fixed program, but in the JIT-shaped
    scenario of {e Fusion of Array Operations at Runtime} (arXiv
    1601.05400) kernels arrive, disappear or are edited while the
    application runs, and each new program version needs a fusion plan
    within a latency SLO.  Consecutive versions share most of their
    kernels, so instead of re-searching from scratch this module {e
    diffs} the new version against the previous one (content
    fingerprints + longest-common-subsequence matching, so renumbering
    never breaks identity), maps the previous best plan through the
    diff, dissolves only the groups the edit actually invalidated, and
    warm-starts {!Hgga} from the repaired plan (via [seed_plans]).  The
    per-group signature caches then make re-evaluating the untouched
    groups a single cache fill shared by the whole population.

    Group {e verdicts} are never transferred across versions: convexity
    (paper Eq. 1.3) is a property of the whole order-of-execution graph,
    so a group that was feasible in version [v] can be infeasible in
    [v+1] even when its members are untouched.  Reuse is plan-shaped
    (seed individuals) — every verdict is recomputed under the new
    program's objective, where the incremental caches make it cheap.

    {b SLO ladder.}  Each decision degrades gracefully under a deadline:
    full search (version 0) / repair search (later versions) → when the
    remaining budget is too small to be worth a GA, a deterministic
    greedy repair (the warm-mapped plan plus one hill-climbing pass);
    when the GA runs but its wall budget trips, its best-so-far plan is
    the answer.  With no SLO, decisions depend only on the seeds, so a
    fixed edit trace yields bit-identical decisions for any [domains]
    value (the {!Hgga} determinism contract, lifted to traces). *)

type env = Kf_ir.Program.t -> Objective.t
(** How the stream obtains an objective for each program version.
    [Kf_search] cannot see the simulator, so the caller (typically
    [Kfuse.Pipeline.stream_env]) supplies the prepare-and-measure
    glue.  The callback must be deterministic in the program. *)

type rung =
  | Full_search  (** version 0: no previous plan — ordinary {!Hgga.solve} *)
  | Repair_search  (** warm-started GA seeded with the repaired plan *)
  | Greedy_repair
      (** deadline too tight for a GA: the repaired warm plan after one
          deterministic refinement pass is the answer *)

val rung_name : rung -> string

type config = {
  params : Hgga.params;  (** full-search parameters (version 0) *)
  repair : Hgga.params;
      (** parameters for the per-edit repair searches — typically a
          smaller population and tighter stall, since the seeds start
          near the optimum *)
  slo_s : float option;  (** per-decision wall deadline; [None] = unlimited *)
  min_search_s : float;
      (** when the remaining deadline budget at search start is below
          this, skip the GA and take the {!Greedy_repair} rung *)
}

val default_config : config
(** [params = Hgga.default_params]; [repair] halves the population and
    stall; no SLO; [min_search_s = 0.010]. *)

type delta = {
  matched : (int * int) list;
      (** (old id, new id) pairs of content-identical kernels, in
          program order (an LCS, so matching is order-preserving) *)
  removed : int list;  (** old ids with no match (deleted or edited) *)
  added : int list;  (** new ids with no match (arrived or edited) *)
}

val diff : Kf_ir.Program.t -> Kf_ir.Program.t -> delta
(** Content-based diff: kernels are matched by a fingerprint of their
    full metadata (name, flops, registers, active fraction, and each
    access's mode / stencil / flops / array {e content}), never by id —
    {!Kf_ir.Program.restrict} renumbers ids, and identity must survive
    that.  An edited kernel appears as removed + added. *)

type decision = {
  d_version : int;  (** 0 for the initial program, +1 per edit *)
  d_rung : rung;
  d_groups : Grouping.groups;  (** the plan answered for this version *)
  d_cost : float;
  d_stop : Hgga.stop_reason;
      (** why the search rung ended ([Converged] for {!Greedy_repair},
          which has no stop criterion of its own) *)
  d_evaluations : int;
      (** objective evaluations this decision performed — exactly the
          fresh objective's counter, never pre-seeded (see the
          [seed_plans] contract in {!Hgga.solve}) *)
  d_wall_s : float;  (** wall time of the whole decision, env included *)
  d_changed : int;  (** kernels added + removed by this edit *)
  d_reused_groups : int;
      (** multi-member groups of the previous plan that mapped through
          the diff intact and stayed feasible — the warm capital *)
  d_slo_tripped : bool;
      (** the deadline forced the greedy rung or cut the GA short *)
  d_total_evaluations : int;  (** cumulative over the stream so far *)
  d_total_wall_s : float;  (** cumulative over the stream so far *)
}

type t
(** A live stream: current program, fingerprints, best plan, cumulative
    accounting.  Not thread-safe; the serve daemon serializes access
    per session. *)

val create : ?config:config -> env -> Kf_ir.Program.t -> t
(** Answers version 0 with a full search (rung {!Full_search}, SLO
    honored as a wall budget) and returns the live stream. *)

val step : t -> Kf_ir.Program.t -> decision
(** Answers the next program version: diff, warm-map, repair, search or
    greedy per the SLO ladder.  The new version may differ arbitrarily
    from the current one (any mix of additions, removals and edits);
    an {e identical} program is answered by re-searching with the
    previous plan as seed, which converges immediately. *)

val last : t -> decision
val decisions : t -> decision list  (** oldest first *)

val program : t -> Kf_ir.Program.t  (** current version's program *)

val version : t -> int
val total_evaluations : t -> int
val total_wall_s : t -> float

val warm_plan :
  Objective.t -> delta -> prev:Grouping.groups -> n:int -> Grouping.groups * int
(** The plan-mapping core, exposed for tests: map [prev] (over the old
    version's ids) through [delta] onto the new version's [n] kernels —
    unmatched members drop out, arrived kernels enter as singletons,
    multi-member groups that turned infeasible dissolve, and the result
    is re-repaired to schedulability and normalized.  Also returns the
    number of multi-member groups that survived intact (the
    [d_reused_groups] statistic). *)
