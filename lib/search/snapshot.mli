(** Checkpoint snapshots of a running {!Hgga} search.

    A snapshot captures everything the solver needs to continue exactly
    where it stopped: every island's population (as raw groupings — costs
    are recomputed on resume, evaluation being pure) and RNG state, the
    incumbent, the generation and stall counters, the improvement
    history, and the ring-migration cursor.  Resuming from a snapshot
    written after generation [g] produces bit-for-bit the same remaining
    search as the uninterrupted run, so a killed long search loses at
    most one checkpoint interval.

    The on-disk form is a small self-describing JSON document (written
    atomically via a temporary file + rename); no external JSON library
    is required.  Format 3 introduced the island model; formats 1 and 2
    still load, as a single island with migration cursor 0. *)

val format_version : int

type island = {
  rng_state : int64;  (** raw {!Kf_util.Rng} state of this island's generator *)
  population : int list list list;
  cpopulation : int list list list list;
      (** launch compositions (packs of planes), parallel to
          [population]; [] for vertical-only checkpoints and snapshots
          that predate format 7 *)
}

type t = {
  population_size : int;  (** total across all islands *)
  seed : int;  (** GA seed of the run that wrote the snapshot *)
  n : int;  (** kernel count of the program being searched *)
  generation : int;  (** generations completed when the snapshot was taken *)
  stall : int;  (** non-improving generations so far *)
  evaluations : int;
      (** objective evaluations across every run segment up to the save;
          resume seeds {!Objective.add_evaluations} with it so evaluation
          budgets span the whole logical run *)
  wall_time_s : float;
      (** wall time accumulated across every run segment up to the save
          (0 when the snapshot predates format 2); counted against
          [budget.max_wall_s] on resume *)
  faults : Objective.fault_stats;
      (** cumulative fault counters at the save (zeros for format-1
          snapshots) *)
  migration_cursor : int;
      (** ring migrations performed so far (0 when the snapshot predates
          format 3); drives the rotating migration offset on resume *)
  group_cache : Objective.cache_stats;
      (** cumulative group-cache hit/miss/eviction counters (zeros when
          the snapshot predates format 4; the [size] field is always 0 —
          the saved process's table does not survive) *)
  plan_cache : Objective.cache_stats;
      (** cumulative plan-cache counters, like [group_cache] *)
  group_verdicts : (int array * Objective.verdict) list;
      (** memoized (canonical signature, verdict) pairs to persist —
          a warm cache for processes that outlive one search (format 5;
          [] for older snapshots).  Search checkpoints always write []:
          warm-seeding a resume would change its evaluation counts and
          break the bit-identical resume contract, so only the serve
          daemon populates this (usually via {!Cache} documents). *)
  best : int list list;  (** incumbent grouping *)
  cbest : int list list list;
      (** the incumbent's launch composition; [] for vertical-only
          checkpoints and snapshots that predate format 7 *)
  history : (int * float) list;  (** improvement history, oldest first *)
  islands : island list;
      (** per-island state, island 0 first; a single island for
          snapshots that predate format 3 *)
}

exception Malformed of string
(** Raised by {!load}/{!of_string} on syntactically or structurally
    invalid snapshot data. *)

val render : t -> string
val save : string -> t -> unit
(** Crash-safe atomic write: the rendered document goes to a sibling
    temp file, the close is error-checked, and only then does a rename
    install it — so an interrupted or failed save (crash, full disk)
    never replaces a good previous snapshot with a truncated one, and
    the temp file is removed on failure.  @raise Sys_error on IO
    failure. *)

val of_string : string -> t
(** Accepts the current format plus formats 1 and 2 (missing budget
    fields default to zero; their single population and RNG state load
    as one island).  @raise Malformed on invalid input. *)

val load : string -> t
(** @raise Sys_error on IO failure, [Malformed] on invalid content. *)

(** Standalone warm-cache documents: the serve daemon's persisted group
    verdicts, keyed by a content digest of (program, device, model) so a
    restarted daemon only reuses verdicts for identical inputs.  Same
    crash-safe write discipline as snapshots; [kind] discriminates the
    document so a search checkpoint can never be loaded as a cache (or
    vice versa). *)
module Cache : sig
  type stored_plan = {
    groups : int list list;  (** the best plan found, canonical form *)
    cost : float;
    fingerprint : string;
        (** search-parameter fingerprint of the run that produced it —
            a stored plan only answers a request whose parameters
            fingerprint identically (see [Serve.Server]) *)
  }
  (** Format 6: a completed search's answer for the entry's triple, so
      a repeat request can be served outright rather than merely
      warm-seeded. *)

  type entry = {
    key : string;  (** content digest — printable, no JSON escaping *)
    verdicts : (int array * Objective.verdict) list;
    plan : stored_plan option;
  }

  type nonrec t = entry list

  val render : t -> string
  (** @raise Invalid_argument if a key or plan fingerprint would need
      JSON escaping, or a plan cost is NaN. *)

  val save : string -> t -> unit
  (** Atomic, error-checked write like {!Snapshot.save}. *)

  val of_string : string -> t
  (** @raise Malformed on invalid input, a non-cache document, or an
      unsupported format. *)

  val load : string -> t
  (** @raise Sys_error on IO failure, [Malformed] on invalid content. *)
end
