(** Checkpoint snapshots of a running {!Hgga} search.

    A snapshot captures everything the solver needs to continue exactly
    where it stopped: the population (as raw groupings — costs are
    recomputed on resume, evaluation being pure), the incumbent, the
    generation and stall counters, the improvement history, and the raw
    RNG state.  Resuming from a snapshot written after generation [g]
    produces bit-for-bit the same remaining search as the uninterrupted
    run, so a killed long search loses at most one checkpoint interval.

    The on-disk form is a small self-describing JSON document (written
    atomically via a temporary file + rename); no external JSON library
    is required. *)

val format_version : int

type t = {
  population_size : int;  (** of the run that wrote the snapshot *)
  seed : int;  (** GA seed of that run *)
  n : int;  (** kernel count of the program being searched *)
  generation : int;  (** generations completed when the snapshot was taken *)
  stall : int;  (** non-improving generations so far *)
  evaluations : int;  (** objective evaluations so far (informational) *)
  rng_state : int64;  (** raw {!Kf_util.Rng} state *)
  best : int list list;  (** incumbent grouping *)
  history : (int * float) list;  (** improvement history, oldest first *)
  population : int list list list;
}

exception Malformed of string
(** Raised by {!load}/{!of_string} on syntactically or structurally
    invalid snapshot data. *)

val render : t -> string
val save : string -> t -> unit
(** Atomic write (temp file + rename).  @raise Sys_error on IO failure. *)

val of_string : string -> t
(** @raise Malformed on invalid input. *)

val load : string -> t
(** @raise Sys_error on IO failure, [Malformed] on invalid content. *)
