(** Search objective: cost of a candidate grouping under a chosen
    performance model, with feasibility checking, memoization and
    evaluation counting.

    The paper's search minimizes Σ_j T(F_j) (Fig. 4, Eq. 1) where T is the
    projected runtime bound of each new kernel; singletons cost their
    measured runtime.  Feasibility implements the active-constraint
    pruning of §III-C: structural constraints (convexity 1.3, kinship 1.5)
    are checked first and resource constraints (1.6, 1.7) only for groups
    that pass, and every verdict is cached by group. *)

type model =
  | Proposed  (** the paper's codeless upper-bound projection (§IV) *)
  | Roofline
  | Simple
  | Mwp  (** code-representation comparator (GROPHECY-style) *)

type verdict = { feasible : bool; cost : float; orig_sum : float }
(** One cached fitness evaluation: feasibility under the active
    constraints, projected cost ([infinity] when infeasible), and the
    group's summed original runtimes. *)

type fault_stats = {
  mutable injected : int;  (** faults deliberately introduced by an injector *)
  mutable trapped : int;  (** exceptions caught at the evaluation boundary *)
  mutable corrupted : int;  (** verdicts sanitized (NaN / negative / corrupt) *)
  mutable retries : int;  (** retry attempts on transient failures *)
  mutable recovered : int;  (** transient failures that succeeded on retry *)
  mutable quarantined : int;  (** candidates assigned a penalty fitness *)
}
(** Per-candidate fault accounting maintained by a guard (see
    [Kf_robust.Guard]); all zero when no guard is installed. *)

val zero_faults : unit -> fault_stats
val copy_faults : fault_stats -> fault_stats

type guard = (int list -> verdict) -> int list -> verdict
(** A guard intercepts every cache-miss evaluation: it receives the raw
    evaluation function and the candidate group and must return a verdict
    (possibly after retrying, perturbing, or replacing a failure with a
    penalty).  The returned verdict is memoized. *)

type t

type cache_stats = { hits : int; misses : int; evictions : int; size : int }
(** Memo-table telemetry: lookup hits and misses over every call
    (singletons included), entries evicted under a configured capacity,
    and the current table size.  Every lookup resolves as exactly one hit
    or one miss — so summed over {!shard_stats}, [hits + misses] always
    equals the total number of probes.  On the incremental path, hit and
    miss counts are scheduling-dependent telemetry when several domains
    run concurrently (which domain's table answers a probe depends on
    work-stealing order); costs, plans and {!evaluations} are not. *)

type pareto_entry = { pf_plan : int list list; pf_costs : float array }
(** One plan on the cross-device Pareto front: canonical groups and its
    total projected cost per portfolio device (index-aligned with
    {!portfolio_devices}). *)

val create :
  ?model:model ->
  ?guard:guard ->
  ?faults:fault_stats ->
  ?cache_capacity:int ->
  ?cache_shards:int ->
  ?domains:int ->
  ?plan_cache_capacity:int ->
  ?incremental:bool ->
  ?arena:bool ->
  ?portfolio:Kf_model.Inputs.t list ->
  Kf_model.Inputs.t ->
  t
(** Default model: [Proposed]; default guard: identity (no fault
    handling).  [faults] is the accounting record the guard shares with
    this objective so that solvers can surface it in their results.

    [arena] (default [true]) selects the allocation-free evaluation
    leaf: per-program features precomputed once into a
    {!Kf_model.Feature_arena}, per-domain scratch evaluation, bit-identical
    verdicts to the legacy [Fused.build]-per-candidate leaf.
    [~arena:false] is the [--no-arena] escape hatch that restores the
    legacy leaf byte-for-byte.

    [portfolio] (default [[]]) lists additional devices' inputs (built
    over the {e same program value}).  When non-empty, every cache-miss
    group evaluation additionally fills a per-device cost row through
    the shared arena (structural analysis runs once, not once per
    device), and every distinct plan evaluated by the search is offered
    to a cross-device Pareto front ({!pareto_front}).  The primary
    search is unaffected: costs, verdicts and evaluation counts are
    bit-identical with or without a portfolio.

    On the incremental path (the default) the group and plan memo tables
    are {e per-domain}: each worker domain probes a shared read-only
    base table lock-free, falls back to its own private table, and
    records misses privately; {!merge_locals} folds the private tables
    into the base at generation barriers.  The hot path takes no lock
    and allocates no key on a hit.  A key evaluated concurrently by
    several domains in one generation is evaluated by each (evaluation
    is pure) but merged — and counted — once.

    [domains] (default 1) is the number of worker domains expected to
    probe this objective.  It sizes the default [cache_shards] of the
    string-keyed [--no-incremental] table to [max 16 (2 * domains)], so
    at high worker counts two domains rarely contend on the same
    stripe; an explicit [cache_shards] overrides the scaling.  The
    striped table evaluates concurrent misses on the same key exactly
    once — losers wait on the shard's in-flight table for the winner's
    memoized verdict.

    [cache_capacity] bounds the group memo table with FIFO eviction
    (default: unbounded).  On the incremental path the bound is enforced
    on the shared base at each {!merge_locals} (between merges the
    per-domain tables may transiently hold more); on the string path the
    capacity is sliced across shards (the shard count is clamped to the
    capacity so each shard holds at least one entry).  Evaluation is
    pure, so eviction only costs recomputation.  [plan_cache_capacity]
    bounds the plan-level cache the same way.

    [incremental] (default [true]) selects the two-level evaluation
    pipeline: group verdicts keyed by canonical signatures
    ({!Kf_fusion.Plan.group_signature}) encoded in a per-domain arena
    ({!Kf_fusion.Plan.Sigbuf}), a plan-level cache above them
    ({!eval_plan}), a singleton fast path, and memoized structural
    operators ({!struct_memos}).  With [~incremental:false] the
    objective evaluates through the original string-keyed table — the
    [--no-incremental] escape hatch.  Both modes evaluate canonically
    sorted groups and sum plan costs in canonical group order, so they
    produce bit-identical costs; with unbounded caches (the default)
    they also perform identical evaluation counts at merge points.
    @raise Invalid_argument if [cache_capacity < 1], [cache_shards < 1],
    [domains < 1] or [plan_cache_capacity < 1]. *)

val incremental : t -> bool
(** Whether this objective uses the incremental evaluation pipeline. *)

val arena_enabled : t -> bool
(** Whether the allocation-free arena leaf is active. *)

val portfolio_active : t -> bool
(** Whether a multi-device portfolio was configured. *)

val portfolio_devices : t -> Kf_gpu.Device.t array
(** The device table rows and fronts are indexed by: the primary device
    at index 0 followed by the portfolio devices in configuration order
    ([[| primary |]] without a portfolio). *)

val group_row : t -> int list -> float array option
(** Per-device projected costs of one group ([None] without a
    portfolio; [infinity] entries where the group is infeasible on that
    device).  Index 0 is bit-identical to {!group_cost} under the
    default guard.  Cached like verdicts; call from an evaluating
    domain. *)

val pareto_front : t -> pareto_entry list
(** The non-dominated plans among every distinct plan this objective
    evaluated ({!eval_plan} callers — i.e. the search trajectory), under
    strict Pareto dominance of per-device total cost.  Equal cost
    vectors are deduplicated to the lexicographically smallest canonical
    plan signature, and the front is sorted by cost vector — so the
    result is a deterministic function of the set of plans evaluated,
    independent of domain count, merge timing and device order.  Runs
    {!merge_locals}; call at a quiescent point.  Empty without a
    portfolio. *)

val rows_evaluated : t -> int
(** Distinct multi-member groups whose per-device rows were computed,
    counted exactly once across domains (merges first; call at a
    quiescent point).  0 without a portfolio. *)

val alloc_per_eval : t -> float
(** Mean minor-heap words allocated per guarded evaluation — the
    hot-path health gauge behind the [objective.alloc_per_eval] metric.
    Sampled only while [Kf_obs.Metrics] is enabled; 0 with no samples. *)

val struct_memos : t -> Struct_memo.memos option
(** The structural-operator memo bundle ([Some] exactly when
    {!incremental}); [Grouping] routes its pure operators through it. *)

val inputs : t -> Kf_model.Inputs.t
val model : t -> model
val model_name : model -> string

val group_feasible : t -> int list -> bool
(** Constraints 1.3 + 1.5 + 1.6 + 1.7 for one group (singletons are always
    feasible). *)

val group_cost : t -> int list -> float
(** Projected runtime of the group's new kernel under the model;
    measured runtime for singletons; [infinity] when infeasible. *)

val group_profitable : t -> int list -> bool
(** Constraint 1.1: the projected runtime beats the group's original
    sum.  Singletons are vacuously profitable. *)

val plan_cost : t -> int list list -> float
(** Σ over groups in canonical group order (so permuted-but-equal plans
    — and the incremental and full paths — produce bit-identical
    totals); [infinity] if any group is infeasible.  On an incremental
    objective this consults the plan-level cache. *)

(** {2 Horizontal packs}

    A pack ([int list list]) is one launch: a single plane is an
    ordinary vertical group, several planes execute side by side as
    per-plane sub-grids of one horizontal launch.  Pack verdicts live in
    the same caches as group verdicts under a disjoint keyspace
    ([-3]-separated signatures / ['|']-joined string keys), so they
    inherit the merge machinery, exactly-once accounting and
    domain-count determinism. *)

val comp_cost : t -> int list list -> float
(** Combined cost of one pack: the planes' (cached, vertical-path)
    costs composed through {!Kf_fusion.Horizontal} — the slowest plane
    in full, the rest attenuated by the residency overlap, scaled by the
    plane-dispatch divergence penalty; [infinity] when the planes are
    not pairwise independent, any plane is infeasible, or the combined
    register/SMEM pressure cannot launch. *)

val comp_feasible : t -> int list list -> bool

val comp_profitable : t -> int list list -> bool
(** Constraint 1.1 lifted to packs: the combined cost beats the sum of
    the members' original runtimes. *)

val comp_key : int list list -> int list
(** The {!plan_eval} cost-table key of a canonical pack: the group
    itself for single-plane packs, planes flattened with a [-3]
    separator otherwise. *)

val cplan_cost : t -> int list list list -> float
(** Σ over packs in canonical pack order.  All-singleton compositions
    produce bit-identical totals to {!plan_cost} of the underlying
    groups (they share the very same cache entries). *)

type plan_eval
(** One whole-plan evaluation: the canonical-order total plus each
    multi-member group's cost, reusable as the delta base for offspring
    evaluations. *)

val eval_plan : t -> ?base:plan_eval -> int list list -> plan_eval
(** Evaluate a plan through the two-level cache: a canonical plan
    signature probes the plan-level cache first (permutations of one
    partition share a signature), and on a miss each multi-member group
    resolves against [base]'s per-group costs before falling back to
    the shared group cache — so offspring pay shared-cache traffic only
    for the groups their genetic operator actually changed.  Totals are
    bit-identical to {!plan_cost} regardless of [base].  Singletons
    read the measured-runtime array directly. *)

val eval_cplan : t -> ?base:plan_eval -> int list list list -> plan_eval
(** {!eval_plan} one level up: evaluate a whole composition through the
    plan-level cache.  All-singleton compositions share plan-cache
    entries (and bit-identical totals) with {!eval_plan} of the
    underlying groups; [base] diffing works across modes because
    single-plane packs key the cost table by their group.  Incremental
    path only. *)

val plan_eval_total : plan_eval -> float
(** The plan's canonical-order cost sum. *)

val original_sum : t -> int list -> float

val merge_locals : t -> unit
(** Fold every domain's private memo tables (group, plan and the
    structural-operator memos) into the shared read-only bases, count
    the distinct newly merged group keys as evaluations, flush batched
    probe telemetry to [Kf_obs.Metrics], and enforce any configured
    capacities.  Must only be called at a quiescent point — all worker
    domains parked at the pool's generation barrier (whose mutex
    handshake publishes their writes), or single-domain use.  No-op on a
    non-incremental objective. *)

val evaluations : t -> int
(** Number of objective-function evaluations attempted so far (cache
    misses on multi-member groups — the quantity of paper Table VI).
    Failed evaluations count: they are attempts, and the denominator of
    {!fault_rate}.  Each distinct key counts exactly once: on the
    incremental path duplicates are collapsed at {!merge_locals} (the
    count is exact at merge points and for single-domain use; between
    barriers it may transiently include cross-domain duplicates that the
    next merge collapses), on the string path the increment is tied to
    winning the shard's in-flight slot.  Evaluation budgets read at
    merge points therefore stop at the same point for any domain
    count. *)

val add_evaluations : t -> int -> unit
(** Seed the evaluation counter with work done before this objective
    existed (a resumed checkpoint), so {!evaluations} — and therefore
    evaluation budgets and reported stats — span the whole logical run.
    @raise Invalid_argument on a negative count. *)

val add_faults : t -> fault_stats -> unit
(** Add a prior run's fault counts into the live record (resume
    support, like {!add_evaluations}). *)

val cache_stats : t -> cache_stats
(** Group-cache counters aggregated over all shards (each shard is
    snapshotted under its own lock), for whichever group table the mode
    uses: the signature-keyed cache when {!incremental}, the string-keyed
    table otherwise.  On the incremental path singleton probes bypass
    the cache, so only multi-member traffic is counted there.  Includes
    counts seeded by {!add_cache_stats}. *)

val plan_cache_stats : t -> cache_stats
(** Plan-level cache counters (all zero on a non-incremental objective
    that never ran {!eval_plan}).  Includes counts seeded by
    {!add_cache_stats}. *)

val add_cache_stats : t -> group:cache_stats -> plan:cache_stats -> unit
(** Seed the cache counters with a prior run's totals (resume support,
    like {!add_evaluations}): subsequent {!cache_stats} /
    {!plan_cache_stats} report cumulative hit/miss/eviction flows over
    the whole logical run.  The seeds' [size] fields are ignored — the
    prior process's tables are gone. *)

val export_group_verdicts : t -> (int array * verdict) list
(** Every memoized (canonical signature, verdict) pair of the
    signature-keyed group cache, in unspecified order — the warm-cache
    payload the serve daemon shares across requests and persists via
    [Snapshot.Cache].  Runs {!merge_locals} first so in-flight
    per-domain entries are included (so it must be called at a quiescent
    point).  Empty on a non-incremental objective.  Verdicts
    are pure functions of (program, device, model), so an exported entry
    is valid for any other objective built over the same inputs. *)

val seed_group_verdicts : t -> (int array * verdict) list -> unit
(** Pre-populate the group cache with previously exported entries.
    Seeded entries count as neither hits nor misses (hit-rate telemetry
    measures only real probes), respect any configured capacity, and —
    evaluation being pure — can only skip work, never change a result.
    No-op on a non-incremental objective.  Seeding entries exported from
    a {e different} (program, device, model) is undefined behavior; the
    daemon keys its store by a content digest to prevent it. *)

val shard_stats : t -> cache_stats array
(** Per-compartment group-cache counters.  On the incremental path:
    index 0 is the shared base (merged entries and the eviction counter;
    it records no probes of its own), followed by one entry per
    domain-local table (its private probe counters and any entries not
    yet merged).  On the string path: one entry per lock stripe.  Both
    sizes and hit/miss flows sum to {!cache_stats} (minus any seeded
    counts). *)

val num_shards : t -> int
(** Number of group-cache compartments currently in use: [1 + ] the
    number of domains that have probed an incremental objective, or the
    stripe count of the string-keyed table (the configured
    [cache_shards], clamped to [cache_capacity] when one is set). *)

val cache_hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before the first lookup. *)

val eval_time_s : t -> float
(** Wall time accumulated inside guarded model evaluations.  Only
    maintained while [Kf_obs.Metrics] is enabled (the disabled-mode hot
    path takes no clock readings); 0 otherwise. *)

val faults : t -> fault_stats
(** The live fault-accounting record (shared with the guard). *)

val fault_snapshot : t -> fault_stats
(** A consistent copy of {!faults}. *)

val fault_rate : t -> float
(** Fraction of evaluated candidates that ended quarantined
    ([quarantined / evaluations], so recovered transients do not count);
    0 before the first evaluation.  Always in [0,1]. *)

val pp_faults : Format.formatter -> fault_stats -> unit

val cache_size : t -> int
