module Inputs = Kf_model.Inputs
module Fused = Kf_fusion.Fused
module Metadata = Kf_ir.Metadata
module Device = Kf_gpu.Device
module Exec_order = Kf_graph.Exec_order

type model = Proposed | Roofline | Simple | Mwp

type verdict = { feasible : bool; cost : float; orig_sum : float }

type fault_stats = {
  mutable injected : int;
  mutable trapped : int;
  mutable corrupted : int;
  mutable retries : int;
  mutable recovered : int;
  mutable quarantined : int;
}

let zero_faults () =
  { injected = 0; trapped = 0; corrupted = 0; retries = 0; recovered = 0; quarantined = 0 }

let copy_faults f =
  {
    injected = f.injected;
    trapped = f.trapped;
    corrupted = f.corrupted;
    retries = f.retries;
    recovered = f.recovered;
    quarantined = f.quarantined;
  }

type guard = (int list -> verdict) -> int list -> verdict

type t = {
  inputs : Inputs.t;
  model : model;
  cache : (string, verdict) Hashtbl.t;
  lock : Mutex.t;
      (* the cache is shared across the GA's evaluation domains; entries
         are pure memoization, so a racing double-evaluation is only a
         little wasted work *)
  mutable evaluations : int;
  guard : guard;
  fault_record : fault_stats;
}

let create ?(model = Proposed) ?(guard = fun eval group -> eval group)
    ?(faults = zero_faults ()) inputs =
  {
    inputs;
    model;
    cache = Hashtbl.create 4096;
    lock = Mutex.create ();
    evaluations = 0;
    guard;
    fault_record = faults;
  }

let inputs t = t.inputs
let model t = t.model

let model_name = function
  | Proposed -> "proposed"
  | Roofline -> "roofline"
  | Simple -> "simple"
  | Mwp -> "mwp"

let key group = String.concat "," (List.map string_of_int (List.sort compare group))

let project t f =
  match t.model with
  | Proposed -> Kf_model.Projection.runtime t.inputs f
  | Roofline -> Kf_model.Roofline.runtime t.inputs f
  | Simple -> Kf_model.Simple_model.runtime t.inputs f
  | Mwp -> Kf_model.Mwp.runtime t.inputs f

let evaluate t group =
  match group with
  | [ k ] ->
      let cost = t.inputs.Inputs.measured_runtime.(k) in
      { feasible = true; cost; orig_sum = cost }
  | _ ->
      let i = t.inputs in
      let orig_sum = Inputs.original_sum i group in
      (* Active-constraint pruning: cheap structural checks first, resource
         checks only on structurally valid groups, model evaluation only on
         fully feasible ones. *)
      if not (Metadata.kinship_connected i.Inputs.meta group) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if Exec_order.group_spans_sync i.Inputs.exec group then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if not (Exec_order.group_is_convex i.Inputs.exec group) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else begin
        let f = Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group in
        let d = i.Inputs.device in
        if
          f.Fused.vertical_hazard
          || f.Fused.smem_bytes_per_block > d.Device.smem_per_smx
          || f.Fused.registers_per_thread >= d.Device.max_registers_per_thread
        then { feasible = false; cost = Float.infinity; orig_sum }
        else { feasible = true; cost = project t f; orig_sum }
      end

let lookup t group =
  let k = key group in
  Mutex.lock t.lock;
  let hit = Hashtbl.find_opt t.cache k in
  Mutex.unlock t.lock;
  match hit with
  | Some v -> v
  | None ->
      (* Count the attempt before evaluating: a candidate whose evaluation
         fails (and is quarantined by a guard) is still an evaluation, so
         fault rates have a meaningful denominator. *)
      (match group with
      | [ _ ] -> ()
      | _ ->
          Mutex.lock t.lock;
          t.evaluations <- t.evaluations + 1;
          Mutex.unlock t.lock);
      (* Evaluate outside the lock: evaluation is pure, so a concurrent
         duplicate costs time, never correctness.  The guard sits between
         the cache and the raw evaluation, so any fault handling it
         performs (retry, quarantine) is memoized like a normal verdict. *)
      let v = t.guard (evaluate t) group in
      Mutex.lock t.lock;
      Hashtbl.replace t.cache k v;
      Mutex.unlock t.lock;
      v

let group_feasible t group = (lookup t group).feasible
let group_cost t group = (lookup t group).cost

let group_profitable t group =
  match group with
  | [ _ ] -> true
  | _ ->
      let v = lookup t group in
      v.feasible && v.cost < v.orig_sum

let plan_cost t groups =
  List.fold_left (fun acc g -> acc +. group_cost t g) 0. groups

let original_sum t group = Inputs.original_sum t.inputs group

let evaluations t =
  Mutex.lock t.lock;
  let n = t.evaluations in
  Mutex.unlock t.lock;
  n

let faults t = t.fault_record

let fault_snapshot t =
  Mutex.lock t.lock;
  let f = copy_faults t.fault_record in
  Mutex.unlock t.lock;
  f

(* Per-candidate, not per-event: a transient failure that recovers on
   retry bumps [trapped] several times for one evaluation, so the event
   counts can exceed the attempt count.  A candidate counts as failed
   exactly when it ended quarantined, which happens at most once per
   distinct group — the rate stays in [0,1]. *)
let fault_rate t =
  let f = fault_snapshot t in
  let evals = evaluations t in
  if evals = 0 then 0. else float_of_int f.quarantined /. float_of_int evals

let pp_faults ppf f =
  Format.fprintf ppf
    "injected %d, trapped %d, corrupted %d, retries %d (recovered %d), quarantined %d"
    f.injected f.trapped f.corrupted f.retries f.recovered f.quarantined

let cache_size t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.cache in
  Mutex.unlock t.lock;
  n
