module Inputs = Kf_model.Inputs
module Fused = Kf_fusion.Fused
module Metadata = Kf_ir.Metadata
module Device = Kf_gpu.Device
module Exec_order = Kf_graph.Exec_order

type model = Proposed | Roofline | Simple | Mwp

type verdict = { feasible : bool; cost : float; orig_sum : float }

type fault_stats = {
  mutable injected : int;
  mutable trapped : int;
  mutable corrupted : int;
  mutable retries : int;
  mutable recovered : int;
  mutable quarantined : int;
}

let zero_faults () =
  { injected = 0; trapped = 0; corrupted = 0; retries = 0; recovered = 0; quarantined = 0 }

let copy_faults f =
  {
    injected = f.injected;
    trapped = f.trapped;
    corrupted = f.corrupted;
    retries = f.retries;
    recovered = f.recovered;
    quarantined = f.quarantined;
  }

type guard = (int list -> verdict) -> int list -> verdict

type cache_stats = { hits : int; misses : int; evictions : int; size : int }

(* One stripe of the memo table.  The cache is shared by every island and
   worker domain of the GA, so a single global lock serializes the whole
   search on its hottest path; striping the table over independently
   locked shards lets concurrent lookups of different keys proceed in
   parallel, and the per-shard in-flight set makes concurrent misses on
   the *same* key evaluate it exactly once (losers wait on the shard's
   condition variable for the winner's verdict). *)
type shard = {
  s_lock : Mutex.t;
  s_cond : Condition.t;
  s_cache : (string, verdict) Hashtbl.t;
  s_order : string Queue.t;  (* insertion order, for FIFO eviction *)
  s_inflight : (string, unit) Hashtbl.t;
  s_capacity : int option;  (* this shard's slice of the global capacity *)
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  m_shard_hits : Kf_obs.Metrics.counter;
  m_shard_misses : Kf_obs.Metrics.counter;
  m_shard_evictions : Kf_obs.Metrics.counter;
}

type t = {
  inputs : Inputs.t;
  model : model;
  shards : shard array;
  stats_lock : Mutex.t;  (* guards the cross-shard mutable counters below *)
  mutable evaluations : int;
  mutable eval_time_s : float;
  time_counter : Kf_obs.Metrics.counter;
  guard : guard;
  fault_record : fault_stats;
}

(* Process-wide telemetry counters; no-ops unless Kf_obs.Metrics is
   enabled.  The per-objective cache_stats fields are maintained
   unconditionally — they live under shard locks that are taken anyway. *)
let m_hits = Kf_obs.Metrics.counter "objective.cache_hits"
let m_misses = Kf_obs.Metrics.counter "objective.cache_misses"
let m_evictions = Kf_obs.Metrics.counter "objective.cache_evictions"
let m_evals = Kf_obs.Metrics.counter "objective.evaluations"

let model_name = function
  | Proposed -> "proposed"
  | Roofline -> "roofline"
  | Simple -> "simple"
  | Mwp -> "mwp"

let default_shards = 16

let create ?(model = Proposed) ?(guard = fun eval group -> eval group)
    ?(faults = zero_faults ()) ?cache_capacity ?(cache_shards = default_shards) inputs =
  (match cache_capacity with
  | Some c when c < 1 -> invalid_arg "Objective.create: cache_capacity must be positive"
  | _ -> ());
  if cache_shards < 1 then invalid_arg "Objective.create: cache_shards must be positive";
  (* A capacity smaller than the stripe count would leave shards with no
     budget at all; cap the stripe count so every shard holds >= 1 entry
     and the per-shard slices sum exactly to the configured capacity. *)
  let n_shards =
    match cache_capacity with Some c -> min cache_shards c | None -> cache_shards
  in
  let shard_capacity i =
    match cache_capacity with
    | None -> None
    | Some c -> Some ((c / n_shards) + if i < c mod n_shards then 1 else 0)
  in
  {
    inputs;
    model;
    shards =
      Array.init n_shards (fun i ->
          {
            s_lock = Mutex.create ();
            s_cond = Condition.create ();
            s_cache = Hashtbl.create 512;
            s_order = Queue.create ();
            s_inflight = Hashtbl.create 8;
            s_capacity = shard_capacity i;
            s_hits = 0;
            s_misses = 0;
            s_evictions = 0;
            m_shard_hits =
              Kf_obs.Metrics.counter (Printf.sprintf "objective.cache_hits.shard%02d" i);
            m_shard_misses =
              Kf_obs.Metrics.counter (Printf.sprintf "objective.cache_misses.shard%02d" i);
            m_shard_evictions =
              Kf_obs.Metrics.counter (Printf.sprintf "objective.cache_evictions.shard%02d" i);
          });
    stats_lock = Mutex.create ();
    evaluations = 0;
    eval_time_s = 0.;
    time_counter = Kf_obs.Metrics.counter ("objective.eval_us." ^ model_name model);
    guard;
    fault_record = faults;
  }

let inputs t = t.inputs
let model t = t.model
let num_shards t = Array.length t.shards

let key group = String.concat "," (List.map string_of_int (List.sort compare group))

(* Deliberately not Hashtbl.hash: the shard of a key must not depend on
   runtime hashing parameters (OCAMLRUNPARAM=R), so a plain polynomial
   string hash keeps the striping reproducible everywhere. *)
let shard_of t k =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land max_int) k;
  t.shards.(!h mod Array.length t.shards)

let project t f =
  match t.model with
  | Proposed -> Kf_model.Projection.runtime t.inputs f
  | Roofline -> Kf_model.Roofline.runtime t.inputs f
  | Simple -> Kf_model.Simple_model.runtime t.inputs f
  | Mwp -> Kf_model.Mwp.runtime t.inputs f

let evaluate t group =
  match group with
  | [ k ] ->
      let cost = t.inputs.Inputs.measured_runtime.(k) in
      { feasible = true; cost; orig_sum = cost }
  | _ ->
      let i = t.inputs in
      let orig_sum = Inputs.original_sum i group in
      (* Active-constraint pruning: cheap structural checks first, resource
         checks only on structurally valid groups, model evaluation only on
         fully feasible ones. *)
      if not (Metadata.kinship_connected i.Inputs.meta group) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if Exec_order.group_spans_sync i.Inputs.exec group then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if not (Exec_order.group_is_convex i.Inputs.exec group) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else begin
        let f = Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group in
        let d = i.Inputs.device in
        if
          f.Fused.vertical_hazard
          || f.Fused.smem_bytes_per_block > d.Device.smem_per_smx
          || f.Fused.registers_per_thread >= d.Device.max_registers_per_thread
        then { feasible = false; cost = Float.infinity; orig_sum }
        else { feasible = true; cost = project t f; orig_sum }
      end

(* Evaluate a missed key outside any lock (evaluation is pure).  The guard
   sits between the cache and the raw evaluation, so any fault handling it
   performs (retry, quarantine) is memoized like a normal verdict.  The
   timing branch only runs with metrics enabled, keeping the disabled-mode
   hot path clock-free. *)
let run_evaluation t group =
  if Kf_obs.Metrics.enabled () then begin
    let t0 = Unix.gettimeofday () in
    let v = t.guard (evaluate t) group in
    let dt = Float.max 0. (Unix.gettimeofday () -. t0) in
    Mutex.lock t.stats_lock;
    t.eval_time_s <- t.eval_time_s +. dt;
    Mutex.unlock t.stats_lock;
    Kf_obs.Metrics.add t.time_counter (int_of_float (dt *. 1e6));
    v
  end
  else t.guard (evaluate t) group

let insert_locked s k v =
  Hashtbl.remove s.s_inflight k;
  if not (Hashtbl.mem s.s_cache k) then begin
    (* FIFO eviction keeps the memo table bounded when a capacity is
       configured; re-evaluating an evicted group is pure, so eviction
       costs time, never correctness. *)
    (match s.s_capacity with
    | Some cap ->
        while Hashtbl.length s.s_cache >= cap do
          match Queue.take_opt s.s_order with
          | Some victim ->
              Hashtbl.remove s.s_cache victim;
              s.s_evictions <- s.s_evictions + 1;
              Kf_obs.Metrics.incr m_evictions;
              Kf_obs.Metrics.incr s.m_shard_evictions
          | None -> Hashtbl.reset s.s_cache
        done
    | None -> ());
    Queue.add k s.s_order;
    Hashtbl.replace s.s_cache k v
  end;
  (* Wake every domain parked on this shard: waiters re-probe and find the
     fresh entry (or, if it was already evicted again, claim the key). *)
  Condition.broadcast s.s_cond

let lookup t group =
  let k = key group in
  let s = shard_of t k in
  Mutex.lock s.s_lock;
  let rec probe () =
    match Hashtbl.find_opt s.s_cache k with
    | Some v ->
        (* Every probe resolves as exactly one hit or one miss, including
           probes that waited for an in-flight evaluation — so across
           shards, hits + misses always equals total lookups. *)
        s.s_hits <- s.s_hits + 1;
        Mutex.unlock s.s_lock;
        Kf_obs.Metrics.incr m_hits;
        Kf_obs.Metrics.incr s.m_shard_hits;
        v
    | None ->
        if Hashtbl.mem s.s_inflight k then begin
          (* Another domain is already evaluating this key; wait for its
             verdict instead of duplicating the evaluation. *)
          Condition.wait s.s_cond s.s_lock;
          probe ()
        end
        else begin
          Hashtbl.replace s.s_inflight k ();
          s.s_misses <- s.s_misses + 1;
          Mutex.unlock s.s_lock;
          Kf_obs.Metrics.incr m_misses;
          Kf_obs.Metrics.incr s.m_shard_misses;
          (* Exactly-once evaluation accounting: the increment is tied to
             winning the in-flight slot, so concurrent duplicate misses —
             which grow with the domain count — can no longer burn
             --budget-evals faster than real evaluations happen, and
             fault-rate denominators stay scheduling-independent. *)
          (match group with
          | [ _ ] -> ()
          | _ ->
              Mutex.lock t.stats_lock;
              t.evaluations <- t.evaluations + 1;
              Mutex.unlock t.stats_lock;
              Kf_obs.Metrics.incr m_evals);
          let v =
            match run_evaluation t group with
            | v -> v
            | exception e ->
                (* Release the slot so waiters do not hang on a key whose
                   evaluation escaped the guard. *)
                Mutex.lock s.s_lock;
                Hashtbl.remove s.s_inflight k;
                Condition.broadcast s.s_cond;
                Mutex.unlock s.s_lock;
                raise e
          in
          Mutex.lock s.s_lock;
          insert_locked s k v;
          Mutex.unlock s.s_lock;
          v
        end
  in
  probe ()

let group_feasible t group = (lookup t group).feasible
let group_cost t group = (lookup t group).cost

let group_profitable t group =
  match group with
  | [ _ ] -> true
  | _ ->
      let v = lookup t group in
      v.feasible && v.cost < v.orig_sum

let plan_cost t groups =
  List.fold_left (fun acc g -> acc +. group_cost t g) 0. groups

let original_sum t group = Inputs.original_sum t.inputs group

let evaluations t =
  Mutex.lock t.stats_lock;
  let n = t.evaluations in
  Mutex.unlock t.stats_lock;
  n

(* Resume support: a solver restoring a checkpoint seeds the counter with
   the evaluations already spent before the snapshot, so budgets and
   reported stats span the whole logical run, not just this process. *)
let add_evaluations t n =
  if n < 0 then invalid_arg "Objective.add_evaluations: negative count";
  Mutex.lock t.stats_lock;
  t.evaluations <- t.evaluations + n;
  Mutex.unlock t.stats_lock

let add_faults t (base : fault_stats) =
  Mutex.lock t.stats_lock;
  let f = t.fault_record in
  f.injected <- f.injected + base.injected;
  f.trapped <- f.trapped + base.trapped;
  f.corrupted <- f.corrupted + base.corrupted;
  f.retries <- f.retries + base.retries;
  f.recovered <- f.recovered + base.recovered;
  f.quarantined <- f.quarantined + base.quarantined;
  Mutex.unlock t.stats_lock

let shard_stats_locked s =
  { hits = s.s_hits; misses = s.s_misses; evictions = s.s_evictions;
    size = Hashtbl.length s.s_cache }

let shard_stats t =
  Array.map
    (fun s ->
      Mutex.lock s.s_lock;
      let st = shard_stats_locked s in
      Mutex.unlock s.s_lock;
      st)
    t.shards

let cache_stats t =
  Array.fold_left
    (fun acc s ->
      { hits = acc.hits + s.hits; misses = acc.misses + s.misses;
        evictions = acc.evictions + s.evictions; size = acc.size + s.size })
    { hits = 0; misses = 0; evictions = 0; size = 0 }
    (shard_stats t)

let cache_hit_rate t =
  let s = cache_stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let eval_time_s t =
  Mutex.lock t.stats_lock;
  let v = t.eval_time_s in
  Mutex.unlock t.stats_lock;
  v

let faults t = t.fault_record

let fault_snapshot t =
  Mutex.lock t.stats_lock;
  let f = copy_faults t.fault_record in
  Mutex.unlock t.stats_lock;
  f

(* Per-candidate, not per-event: a transient failure that recovers on
   retry bumps [trapped] several times for one evaluation, so the event
   counts can exceed the attempt count.  A candidate counts as failed
   exactly when it ended quarantined, which happens at most once per
   distinct group — the rate stays in [0,1]. *)
let fault_rate t =
  let f = fault_snapshot t in
  let evals = evaluations t in
  if evals = 0 then 0. else float_of_int f.quarantined /. float_of_int evals

let pp_faults ppf f =
  Format.fprintf ppf
    "injected %d, trapped %d, corrupted %d, retries %d (recovered %d), quarantined %d"
    f.injected f.trapped f.corrupted f.retries f.recovered f.quarantined

let cache_size t = (cache_stats t).size
