module Inputs = Kf_model.Inputs
module Feature_arena = Kf_model.Feature_arena
module Fused = Kf_fusion.Fused
module Plan = Kf_fusion.Plan
module Metadata = Kf_ir.Metadata
module Device = Kf_gpu.Device
module Exec_order = Kf_graph.Exec_order
module Sig_tbl = Struct_memo.Sig_tbl
module Sigbuf = Plan.Sigbuf

type model = Proposed | Roofline | Simple | Mwp

type verdict = { feasible : bool; cost : float; orig_sum : float }

type fault_stats = {
  mutable injected : int;
  mutable trapped : int;
  mutable corrupted : int;
  mutable retries : int;
  mutable recovered : int;
  mutable quarantined : int;
}

let zero_faults () =
  { injected = 0; trapped = 0; corrupted = 0; retries = 0; recovered = 0; quarantined = 0 }

let copy_faults f =
  {
    injected = f.injected;
    trapped = f.trapped;
    corrupted = f.corrupted;
    retries = f.retries;
    recovered = f.recovered;
    quarantined = f.quarantined;
  }

type guard = (int list -> verdict) -> int list -> verdict

type cache_stats = { hits : int; misses : int; evictions : int; size : int }

let zero_cache_stats = { hits = 0; misses = 0; evictions = 0; size = 0 }

let add_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evictions = a.evictions + b.evictions;
    size = a.size + b.size;
  }

(* One stripe of the string-keyed verdict memo table — the PR 3
   [--no-incremental] escape hatch, byte-for-byte the old behavior.  The
   cache is shared by every island and worker domain of the GA; striping
   the table over independently locked shards lets concurrent lookups of
   different keys proceed in parallel, and the per-shard in-flight set
   makes concurrent misses on the *same* key evaluate it exactly once
   (losers wait on the shard's condition variable for the winner's
   verdict).

   The incremental path no longer uses this machinery: its group and
   plan caches are per-domain tables merged at generation barriers (see
   below), so its hot path takes no lock at all. *)
module Verdict_cache (K : Hashtbl.HashedType) = struct
  module H = Hashtbl.Make (K)

  type shard = {
    s_lock : Mutex.t;
    s_cond : Condition.t;
    s_cache : verdict H.t;
    s_order : K.t Queue.t;  (* insertion order, for FIFO eviction *)
    s_inflight : unit H.t;
    s_capacity : int option;  (* this shard's slice of the global capacity *)
    mutable s_hits : int;
    mutable s_misses : int;
    mutable s_evictions : int;
    m_shard_hits : Kf_obs.Metrics.counter;
    m_shard_misses : Kf_obs.Metrics.counter;
    m_shard_evictions : Kf_obs.Metrics.counter;
  }

  type t = {
    shards : shard array;
    m_hits : Kf_obs.Metrics.counter;
    m_misses : Kf_obs.Metrics.counter;
    m_evictions : Kf_obs.Metrics.counter;
  }

  (* A capacity smaller than the stripe count would leave shards with no
     budget at all; the caller clamps the stripe count so every shard
     holds >= 1 entry and the per-shard slices sum exactly to the
     configured capacity. *)
  let create ~prefix ~capacity ~shards =
    let shard_capacity i =
      match capacity with
      | None -> None
      | Some c -> Some ((c / shards) + if i < c mod shards then 1 else 0)
    in
    {
      shards =
        Array.init shards (fun i ->
            {
              s_lock = Mutex.create ();
              s_cond = Condition.create ();
              s_cache = H.create 512;
              s_order = Queue.create ();
              s_inflight = H.create 8;
              s_capacity = shard_capacity i;
              s_hits = 0;
              s_misses = 0;
              s_evictions = 0;
              m_shard_hits =
                Kf_obs.Metrics.counter (Printf.sprintf "%s_hits.shard%02d" prefix i);
              m_shard_misses =
                Kf_obs.Metrics.counter (Printf.sprintf "%s_misses.shard%02d" prefix i);
              m_shard_evictions =
                Kf_obs.Metrics.counter (Printf.sprintf "%s_evictions.shard%02d" prefix i);
            });
      m_hits = Kf_obs.Metrics.counter (prefix ^ "_hits");
      m_misses = Kf_obs.Metrics.counter (prefix ^ "_misses");
      m_evictions = Kf_obs.Metrics.counter (prefix ^ "_evictions");
    }

  let insert_locked t s k v =
    H.remove s.s_inflight k;
    if not (H.mem s.s_cache k) then begin
      (* FIFO eviction keeps the memo table bounded when a capacity is
         configured; re-evaluating an evicted group is pure, so eviction
         costs time, never correctness. *)
      (match s.s_capacity with
      | Some cap ->
          while H.length s.s_cache >= cap do
            match Queue.take_opt s.s_order with
            | Some victim ->
                H.remove s.s_cache victim;
                s.s_evictions <- s.s_evictions + 1;
                Kf_obs.Metrics.incr t.m_evictions;
                Kf_obs.Metrics.incr s.m_shard_evictions
            | None -> H.reset s.s_cache
          done
      | None -> ());
      Queue.add k s.s_order;
      H.replace s.s_cache k v
    end;
    (* Wake every domain parked on this shard: waiters re-probe and find
       the fresh entry (or, if it was already evicted again, claim the
       key). *)
    Condition.broadcast s.s_cond

  (* [count_eval] fires when this probe wins the in-flight slot (the
     exactly-once evaluation accounting point); [eval] produces the
     verdict outside any lock (evaluation is pure). *)
  let lookup t ~key ~count_eval ~eval =
    let s = t.shards.(K.hash key mod Array.length t.shards) in
    Mutex.lock s.s_lock;
    let rec probe () =
      match H.find_opt s.s_cache key with
      | Some v ->
          (* Every probe resolves as exactly one hit or one miss,
             including probes that waited for an in-flight evaluation —
             so across shards, hits + misses always equals total
             lookups. *)
          s.s_hits <- s.s_hits + 1;
          Mutex.unlock s.s_lock;
          Kf_obs.Metrics.incr t.m_hits;
          Kf_obs.Metrics.incr s.m_shard_hits;
          v
      | None ->
          if H.mem s.s_inflight key then begin
            (* Another domain is already evaluating this key; wait for
               its verdict instead of duplicating the evaluation. *)
            Condition.wait s.s_cond s.s_lock;
            probe ()
          end
          else begin
            H.replace s.s_inflight key ();
            s.s_misses <- s.s_misses + 1;
            Mutex.unlock s.s_lock;
            Kf_obs.Metrics.incr t.m_misses;
            Kf_obs.Metrics.incr s.m_shard_misses;
            (* Exactly-once evaluation accounting: the increment is tied
               to winning the in-flight slot, so concurrent duplicate
               misses — which grow with the domain count — can no longer
               burn --budget-evals faster than real evaluations happen,
               and fault-rate denominators stay scheduling-independent. *)
            count_eval ();
            let v =
              match eval () with
              | v -> v
              | exception e ->
                  (* Release the slot so waiters do not hang on a key
                     whose evaluation escaped the guard. *)
                  Mutex.lock s.s_lock;
                  H.remove s.s_inflight key;
                  Condition.broadcast s.s_cond;
                  Mutex.unlock s.s_lock;
                  raise e
            in
            Mutex.lock s.s_lock;
            insert_locked t s key v;
            Mutex.unlock s.s_lock;
            v
          end
    in
    probe ()

  let shard_stats_locked s =
    {
      hits = s.s_hits;
      misses = s.s_misses;
      evictions = s.s_evictions;
      size = H.length s.s_cache;
    }

  let shard_stats t =
    Array.map
      (fun s ->
        Mutex.lock s.s_lock;
        let st = shard_stats_locked s in
        Mutex.unlock s.s_lock;
        st)
      t.shards

  let stats t = Array.fold_left add_stats zero_cache_stats (shard_stats t)
end

module String_cache = Verdict_cache (struct
  type t = string

  let equal = String.equal

  (* Deliberately not Hashtbl.hash: the shard of a key must not depend on
     runtime hashing parameters (OCAMLRUNPARAM=R), so a plain polynomial
     string hash keeps the striping reproducible everywhere. *)
  let hash k =
    let h = ref 0 in
    String.iter (fun c -> h := ((!h * 31) + Char.code c) land max_int) k;
    !h
end)

(* ---- plan-level cache --------------------------------------------------- *)

(* One whole-plan evaluation: the canonical-order total and each
   multi-member group's cost.  Offspring diff their groups against the
   parent's [pe_costs] table, so unchanged groups cost one hashtable find
   instead of a shared-cache probe. *)
type plan_eval = {
  pe_total : float;
  pe_costs : (int list, float) Hashtbl.t;  (* canonical group -> cost; multi-member only *)
}

let plan_eval_total pe = pe.pe_total

(* ---- incremental-path caches: shared base + per-domain locals ----------- *)

(* A shared base table (read-only between merges) with optional FIFO
   capacity enforcement at merge time.  [blog] mirrors the base's keys
   in insertion order whenever a capacity is configured, so the oldest
   entries can be dropped by rebuilding — entries are never removed from
   a [Sig_tbl] in place. *)
type 'v bounded = {
  mutable btbl : 'v Sig_tbl.t;
  mutable blog : int array array;
  mutable blog_len : int;
  bcap : int option;
  mutable bevictions : int;
}

let bounded_create capacity = {
  btbl = Sig_tbl.create ();
  blog = [||];
  blog_len = 0;
  bcap = capacity;
  bevictions = 0;
}

(* Insert a key known to be absent from the base. *)
let bounded_add b key hash v =
  Sig_tbl.add b.btbl key ~hash v;
  match b.bcap with
  | None -> ()
  | Some _ ->
      if b.blog_len = Array.length b.blog then begin
        let blog = Array.make (max 16 (2 * b.blog_len)) [||] in
        Array.blit b.blog 0 blog 0 b.blog_len;
        b.blog <- blog
      end;
      b.blog.(b.blog_len) <- key;
      b.blog_len <- b.blog_len + 1

(* FIFO eviction down to the configured capacity: rebuild keeping the
   newest [cap] insertions.  Re-evaluating an evicted group is pure, so
   eviction costs recomputation, never correctness. *)
let bounded_enforce b m_evictions =
  match b.bcap with
  | None -> ()
  | Some cap ->
      let n = Sig_tbl.count b.btbl in
      if n > cap then begin
        let drop = n - cap in
        let tbl = Sig_tbl.create ~capacity:(2 * cap) () in
        for i = drop to b.blog_len - 1 do
          let key = b.blog.(i) in
          let hash = Plan.signature_hash key in
          match Sig_tbl.find_pre b.btbl ~buf:key ~len:(Array.length key) ~hash with
          | Some v -> Sig_tbl.add tbl key ~hash v
          | None -> assert false
        done;
        b.btbl <- tbl;
        b.blog <- Array.sub b.blog drop (b.blog_len - drop);
        b.blog_len <- b.blog_len - drop;
        b.bevictions <- b.bevictions + drop;
        Kf_obs.Metrics.incr ~by:drop m_evictions
      end

(* Per-domain evaluation context: private group-verdict and plan tables,
   the signature-encoding arena, and probe counters.  Touched only by
   its owning domain, so none of this needs a lock. *)
(* A candidate plan offered to the cross-device Pareto front: its
   canonical signature (the dedup key among equal-cost plans), its
   canonical groups (for reporting) and its per-device total cost. *)
type offer = { of_sig : int array; of_plan : int list list; of_costs : float array }

type pareto_entry = { pf_plan : int list list; pf_costs : float array }

(* Multi-device portfolio state.  [rows] memoizes full per-device cost
   rows keyed by group signature (shared base merged like the verdict
   cache; kept unbounded so the exactly-once [rows_merged] accounting
   stays exact); [front] is the global non-dominated set, updated only
   at merge points. *)
type portfolio_state = {
  pa : Feature_arena.t;
  rows : float array bounded;
  mutable front : offer list;
  mutable rows_merged : int;  (* distinct group rows, exactly-once *)
}

type eval_local = {
  el_groups : verdict Sig_tbl.t;
  el_plans : plan_eval Sig_tbl.t;
  el_sb : Sigbuf.t;
  el_rows : float array Sig_tbl.t;  (* portfolio rows not yet merged *)
  mutable el_offers : offer list;  (* plan offers not yet merged *)
  mutable el_ghits : int;
  mutable el_gmisses : int;
  mutable el_phits : int;
  mutable el_pmisses : int;
  mutable el_evals : int;  (* evaluations run since the last merge *)
  mutable el_pub_ghits : int;  (* watermarks already flushed to metrics *)
  mutable el_pub_gmisses : int;
  mutable el_pub_phits : int;
  mutable el_pub_pmisses : int;
}

type t = {
  inputs : Inputs.t;
  model : model;
  incremental : bool;
  arena : Feature_arena.t option;  (* allocation-free evaluation leaf *)
  port : portfolio_state option;  (* multi-device portfolio, requires arena *)
  scache : String_cache.t;  (* PR 3 path: active when [not incremental] *)
  gcache : verdict bounded;  (* incremental path: shared group-verdict base *)
  plans : plan_eval bounded;  (* incremental path: shared plan-level base *)
  mutable locals : (int * eval_local) list;  (* keyed by domain id *)
  reg_lock : Mutex.t;  (* guards [locals] registration *)
  memos : Struct_memo.memos option;  (* structural-operator memos, incremental only *)
  stats_lock : Mutex.t;  (* guards the cross-shard mutable counters below *)
  mutable evaluations : int;  (* merged + seeded exactly-once count *)
  mutable eval_time_s : float;
  mutable alloc_words : float;  (* minor words allocated by timed evaluations *)
  mutable timed_evals : int;  (* evaluations the metrics branch sampled *)
  mutable base_group : cache_stats;  (* resume seed for group-cache stats *)
  mutable base_plan : cache_stats;  (* resume seed for plan-cache stats *)
  time_counter : Kf_obs.Metrics.counter;
  guard : guard;
  fault_record : fault_stats;
}

(* Process-wide telemetry counters; no-ops unless Kf_obs.Metrics is
   enabled.  On the incremental path they are flushed at merge points
   instead of per probe, so the lock-free hot path never contends on the
   registry's atomics. *)
let m_evals = Kf_obs.Metrics.counter "objective.evaluations"
let m_group_hits = Kf_obs.Metrics.counter "objective.group_cache_hits"
let m_group_misses = Kf_obs.Metrics.counter "objective.group_cache_misses"
let m_group_evictions = Kf_obs.Metrics.counter "objective.group_cache_evictions"
let m_plan_hits = Kf_obs.Metrics.counter "objective.plan_cache_hits"
let m_plan_misses = Kf_obs.Metrics.counter "objective.plan_cache_misses"
let m_plan_evictions = Kf_obs.Metrics.counter "objective.plan_cache_evictions"
let g_alloc_per_eval = Kf_obs.Metrics.gauge "objective.alloc_per_eval"

let model_name = function
  | Proposed -> "proposed"
  | Roofline -> "roofline"
  | Simple -> "simple"
  | Mwp -> "mwp"

let default_shards = 16

let create ?(model = Proposed) ?(guard = fun eval group -> eval group)
    ?(faults = zero_faults ()) ?cache_capacity ?cache_shards ?(domains = 1)
    ?plan_cache_capacity ?(incremental = true) ?(arena = true) ?(portfolio = [])
    inputs =
  (match cache_capacity with
  | Some c when c < 1 -> invalid_arg "Objective.create: cache_capacity must be positive"
  | _ -> ());
  (match plan_cache_capacity with
  | Some c when c < 1 ->
      invalid_arg "Objective.create: plan_cache_capacity must be positive"
  | _ -> ());
  if domains < 1 then invalid_arg "Objective.create: domains must be positive";
  (* The stripe count only matters on the string-keyed path, where
     probes contend on shard mutexes: scale the default with the worker
     count so at high [domains] two domains rarely share a stripe, while
     an explicit [cache_shards] still wins. *)
  let cache_shards =
    match cache_shards with Some s -> s | None -> max default_shards (2 * domains)
  in
  if cache_shards < 1 then invalid_arg "Objective.create: cache_shards must be positive";
  let n_shards =
    match cache_capacity with Some c -> min cache_shards c | None -> cache_shards
  in
  if portfolio <> [] && not arena then
    invalid_arg "Objective.create: a device portfolio requires the arena path";
  if portfolio <> [] && not incremental then
    invalid_arg "Objective.create: a device portfolio requires the incremental path";
  let feature_arena =
    if arena then Some (Feature_arena.create inputs ~extra:portfolio) else None
  in
  let port =
    match (portfolio, feature_arena) with
    | [], _ | _, None -> None
    | _ :: _, Some pa ->
        Some { pa; rows = bounded_create None; front = []; rows_merged = 0 }
  in
  {
    inputs;
    model;
    incremental;
    arena = feature_arena;
    port;
    scache = String_cache.create ~prefix:"objective.cache" ~capacity:cache_capacity ~shards:n_shards;
    gcache = bounded_create cache_capacity;
    plans = bounded_create plan_cache_capacity;
    locals = [];
    reg_lock = Mutex.create ();
    memos =
      (if incremental then begin
         let dag = Exec_order.dag inputs.Inputs.exec in
         let nk = Kf_graph.Dag.num_nodes dag in
         let succs =
           Array.init nk (fun u -> Kf_util.Bitset.of_list nk (Kf_graph.Dag.succs dag u))
         in
         Some (Struct_memo.create_memos ~succs ())
       end
       else None);
    stats_lock = Mutex.create ();
    evaluations = 0;
    eval_time_s = 0.;
    alloc_words = 0.;
    timed_evals = 0;
    base_group = zero_cache_stats;
    base_plan = zero_cache_stats;
    time_counter = Kf_obs.Metrics.counter ("objective.eval_us." ^ model_name model);
    guard;
    fault_record = faults;
  }

let inputs t = t.inputs
let model t = t.model
let incremental t = t.incremental
let struct_memos t = t.memos

(* The per-domain evaluation context.  Reading [t.locals] without the
   lock is safe: the list is immutable (registration conses a new head
   under [reg_lock]), and a domain's own entry is always visible to it
   because the domain appended it.  Entries registered concurrently by
   other domains may be missing from a stale snapshot, which only means
   this walk doesn't find them — never a torn read. *)
let local_of t =
  let did = (Domain.self () :> int) in
  let rec find = function
    | [] -> None
    | (d, l) :: tl -> if d = did then Some l else find tl
  in
  match find t.locals with
  | Some l -> l
  | None ->
      let l =
        {
          el_groups = Sig_tbl.create ();
          el_plans = Sig_tbl.create ();
          el_sb = Sigbuf.create ();
          el_rows = Sig_tbl.create ();
          el_offers = [];
          el_ghits = 0;
          el_gmisses = 0;
          el_phits = 0;
          el_pmisses = 0;
          el_evals = 0;
          el_pub_ghits = 0;
          el_pub_gmisses = 0;
          el_pub_phits = 0;
          el_pub_pmisses = 0;
        }
      in
      Mutex.lock t.reg_lock;
      t.locals <- (did, l) :: t.locals;
      Mutex.unlock t.reg_lock;
      l

let string_key sorted_group = String.concat "," (List.map string_of_int sorted_group)

let project t f =
  match t.model with
  | Proposed -> Kf_model.Projection.runtime t.inputs f
  | Roofline -> Kf_model.Roofline.runtime t.inputs f
  | Simple -> Kf_model.Simple_model.runtime t.inputs f
  | Mwp -> Kf_model.Mwp.runtime t.inputs f

let evaluate_legacy t group =
  match group with
  | [ k ] ->
      let cost = t.inputs.Inputs.measured_runtime.(k) in
      { feasible = true; cost; orig_sum = cost }
  | _ ->
      let i = t.inputs in
      let orig_sum = Inputs.original_sum i group in
      (* Active-constraint pruning: cheap structural checks first, resource
         checks only on structurally valid groups, model evaluation only on
         fully feasible ones. *)
      if not (Metadata.kinship_connected i.Inputs.meta group) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if Exec_order.group_spans_sync i.Inputs.exec group then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if not (Exec_order.group_is_convex i.Inputs.exec group) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else begin
        let f = Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group in
        let d = i.Inputs.device in
        if
          f.Fused.vertical_hazard
          || f.Fused.smem_bytes_per_block > d.Device.smem_per_smx
          || f.Fused.registers_per_thread >= d.Device.max_registers_per_thread
        then { feasible = false; cost = Float.infinity; orig_sum }
        else { feasible = true; cost = project t f; orig_sum }
      end

let arena_cost t scr ~dev =
  match t.model with
  | Proposed -> Kf_model.Projection.arena_runtime scr ~dev
  | Roofline -> Kf_model.Roofline.arena_runtime scr ~dev
  | Simple -> Kf_model.Simple_model.arena_runtime scr ~dev
  | Mwp -> Kf_model.Mwp.arena_runtime scr ~dev

(* The allocation-free leaf: same check order, same booleans, same float
   folds as [evaluate_legacy], over precomputed features.  The only
   allocation left is the verdict record itself. *)
let arena_evaluate t a group =
  match group with
  | [ k ] ->
      let cost = t.inputs.Inputs.measured_runtime.(k) in
      { feasible = true; cost; orig_sum = cost }
  | _ ->
      let orig_sum = Inputs.original_sum t.inputs group in
      let scr = Feature_arena.load a group in
      if not (Feature_arena.connected scr) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if Feature_arena.spans_sync scr then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if not (Feature_arena.convex scr) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else begin
        Feature_arena.analyze scr;
        Feature_arena.fuse scr ~dev:0;
        let d = t.inputs.Inputs.device in
        if
          Feature_arena.vertical_hazard scr
          || Feature_arena.smem_bytes_per_block scr > d.Device.smem_per_smx
          || Feature_arena.registers_per_thread scr >= d.Device.max_registers_per_thread
        then { feasible = false; cost = Float.infinity; orig_sum }
        else { feasible = true; cost = arena_cost t scr ~dev:0; orig_sum }
      end

let evaluate t group =
  match t.arena with
  | Some a -> arena_evaluate t a group
  | None -> evaluate_legacy t group

(* Full per-device cost row of a multi-member group: structural checks
   and analysis once, then one [fuse] + model call per device.  Device 0
   reproduces [arena_evaluate]'s cost bit-for-bit (same code runs), so a
   row is a superset of the primary verdict. *)
let compute_row st t group =
  let a = st.pa in
  let ndev = Feature_arena.num_devices a in
  let row = Array.make ndev Float.infinity in
  let scr = Feature_arena.load a group in
  if
    Feature_arena.connected scr
    && (not (Feature_arena.spans_sync scr))
    && Feature_arena.convex scr
  then begin
    Feature_arena.analyze scr;
    if not (Feature_arena.vertical_hazard scr) then
      for dev = 0 to ndev - 1 do
        Feature_arena.fuse scr ~dev;
        let d = Feature_arena.device a dev in
        if
          Feature_arena.smem_bytes_per_block scr <= d.Device.smem_per_smx
          && Feature_arena.registers_per_thread scr < d.Device.max_registers_per_thread
        then row.(dev) <- arena_cost t scr ~dev
      done
  end;
  row

(* Evaluate a missed key outside any lock (evaluation is pure).  The guard
   sits between the cache and the raw evaluation, so any fault handling it
   performs (retry, quarantine) is memoized like a normal verdict.  The
   timing branch only runs with metrics enabled, keeping the disabled-mode
   hot path clock-free. *)
let run_evaluation t group =
  if Kf_obs.Metrics.enabled () then begin
    let t0 = Unix.gettimeofday () in
    let w0 = Gc.minor_words () in
    let v = t.guard (evaluate t) group in
    (* [minor_words] reads the domain-local allocation pointer, so the
       delta is this evaluation's own minor allocation — the hot-path
       health gauge of the arena: legacy evaluations allocate thousands
       of words per candidate, the arena path a handful. *)
    let dw = Float.max 0. (Gc.minor_words () -. w0) in
    let dt = Float.max 0. (Unix.gettimeofday () -. t0) in
    Mutex.lock t.stats_lock;
    t.eval_time_s <- t.eval_time_s +. dt;
    t.alloc_words <- t.alloc_words +. dw;
    t.timed_evals <- t.timed_evals + 1;
    let per_eval = t.alloc_words /. float_of_int t.timed_evals in
    Mutex.unlock t.stats_lock;
    Kf_obs.Metrics.add t.time_counter (int_of_float (dt *. 1e6));
    Kf_obs.Metrics.set g_alloc_per_eval per_eval;
    v
  end
  else t.guard (evaluate t) group

let count_evaluation t group () =
  match group with
  | [ _ ] -> ()
  | _ ->
      Mutex.lock t.stats_lock;
      t.evaluations <- t.evaluations + 1;
      Mutex.unlock t.stats_lock;
      Kf_obs.Metrics.incr m_evals

(* Both cache paths evaluate the canonically sorted group, so a verdict
   never depends on which member ordering reached the cache first — the
   evaluation itself sums original runtimes in member order, and the
   incremental and full paths must agree to the last bit. *)
let lookup_string t group =
  let sorted = List.sort compare group in
  String_cache.lookup t.scache ~key:(string_key sorted)
    ~count_eval:(count_evaluation t group)
    ~eval:(fun () -> run_evaluation t sorted)

(* Incremental-path probe of a multi-member group already in canonical
   member order: lock-free against the shared base (read-only between
   merges), then against this domain's private table.  On a miss the
   verdict lands in the private table; {!merge_locals} folds it into the
   base at the next generation barrier.  A key evaluated concurrently by
   several domains is counted once at merge time — the same exactly-once
   accounting the striped in-flight table used to provide, now without
   any cross-domain traffic. *)
let lookup_sig t sorted_group =
  let l = local_of t in
  let sb = l.el_sb in
  Sigbuf.encode_group sb sorted_group;
  let buf = Sigbuf.unsafe_buf sb
  and len = Sigbuf.length sb
  and hash = Sigbuf.hash sb in
  match Sig_tbl.find_pre t.gcache.btbl ~buf ~len ~hash with
  | Some v ->
      l.el_ghits <- l.el_ghits + 1;
      v
  | None -> (
      match Sig_tbl.find_pre l.el_groups ~buf ~len ~hash with
      | Some v ->
          l.el_ghits <- l.el_ghits + 1;
          v
      | None ->
          l.el_gmisses <- l.el_gmisses + 1;
          (* Copy the key out before evaluating: the guard or model may
             route back through this domain's arena. *)
          let key = Sigbuf.extract sb in
          l.el_evals <- l.el_evals + 1;
          let v = run_evaluation t sorted_group in
          Sig_tbl.add l.el_groups key ~hash v;
          (* Portfolio: fill the per-device cost row alongside the
             primary verdict.  Rows bypass the guard (they are pure model
             outputs), and their exactly-once accounting mirrors the
             verdict merge.  A verdict can re-miss after gcache eviction
             while its unbounded row survives — hence the membership
             check. *)
          (match t.port with
          | Some st ->
              let len = Array.length key in
              if
                (not (Sig_tbl.mem_pre st.rows.btbl ~buf:key ~len ~hash))
                && not (Sig_tbl.mem_pre l.el_rows ~buf:key ~len ~hash)
              then Sig_tbl.add l.el_rows key ~hash (compute_row st t sorted_group)
          | None -> ());
          v)

let lookup t group =
  if t.incremental then
    match group with
    | [ k ] ->
        (* Singletons carry their measured runtime and are feasible by
           definition; the incremental path answers them from the inputs
           array without touching the cache (they are never counted as
           evaluations on either path, so only cache traffic differs). *)
        let cost = t.inputs.Inputs.measured_runtime.(k) in
        { feasible = true; cost; orig_sum = cost }
    | _ ->
        lookup_sig t
          (if Plan.is_sorted_strict group then group else List.sort Int.compare group)
  else lookup_string t group

(* Per-device cost row of a canonical multi-member group, through the
   two-level row cache (shared base, then this domain's local). *)
let row_of_group st t l g =
  let sb = l.el_sb in
  Sigbuf.encode_group sb g;
  let buf = Sigbuf.unsafe_buf sb and len = Sigbuf.length sb and hash = Sigbuf.hash sb in
  match Sig_tbl.find_pre st.rows.btbl ~buf ~len ~hash with
  | Some r -> r
  | None -> (
      match Sig_tbl.find_pre l.el_rows ~buf ~len ~hash with
      | Some r -> r
      | None ->
          let key = Sigbuf.extract sb in
          let r = compute_row st t g in
          Sig_tbl.add l.el_rows key ~hash r;
          r)

(* Offer a freshly evaluated plan to the Pareto front: per-device totals
   summed in canonical group order (deterministic), buffered locally and
   folded into the global front at the next merge. *)
let offer_plan st t l ~psig ~canon =
  let ndev = Feature_arena.num_devices st.pa in
  let costs = Array.make ndev 0. in
  List.iter
    (fun g ->
      match g with
      | [ k ] ->
          for dev = 0 to ndev - 1 do
            costs.(dev) <- costs.(dev) +. (Feature_arena.measured_runtime st.pa ~dev).(k)
          done
      | _ ->
          let r = row_of_group st t l g in
          for dev = 0 to ndev - 1 do
            costs.(dev) <- costs.(dev) +. r.(dev)
          done)
    canon;
  l.el_offers <- { of_sig = psig; of_plan = canon; of_costs = costs } :: l.el_offers

let group_feasible t group = (lookup t group).feasible
let group_cost t group = (lookup t group).cost

let group_profitable t group =
  match group with
  | [ _ ] -> true
  | _ ->
      let v = lookup t group in
      v.feasible && v.cost < v.orig_sum

(* ---- horizontal packs ---------------------------------------------------- *)

module Horizontal = Kf_fusion.Horizontal

(* [pe_costs] key of a pack: single-plane packs key by their group (the
   vertical key, so vertical entries are shared), multi-plane packs by
   the planes flattened with a [-3] separator — the same disjoint
   keyspace split as the signature encodings. *)
let comp_key pack =
  match pack with
  | [ g ] -> g
  | planes -> List.concat (List.mapi (fun i g -> if i = 0 then g else -3 :: g) planes)

(* Resource pressure one plane contributes to its horizontal launch:
   original kernels bring their own registers (no SMEM), vertically fused
   planes bring the fused kernel's demand.  The arena accessors are
   bit-identical to [Fused.build], so arena on/off yields the same
   pressures.  Only called on feasible planes (the caller checks the
   plane verdicts first), so arena analysis cannot trip on a
   structurally broken group. *)
let plane_pressure t g =
  match g with
  | [ k ] ->
      let p = Metadata.program t.inputs.Inputs.meta in
      Horizontal.pressure
        ~regs:(Kf_ir.Program.kernel p k).Kf_ir.Kernel.registers_per_thread ~smem:0
  | g -> (
      match t.arena with
      | Some a ->
          let scr = Feature_arena.load a g in
          Feature_arena.analyze scr;
          Feature_arena.fuse scr ~dev:0;
          Horizontal.pressure
            ~regs:(Feature_arena.registers_per_thread scr)
            ~smem:(Feature_arena.smem_bytes_per_block scr)
      | None ->
          let i = t.inputs in
          let f =
            Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec
              ~group:g
          in
          Horizontal.pressure ~regs:f.Fused.registers_per_thread
            ~smem:f.Fused.smem_bytes_per_block)

(* Verdict of one multi-plane pack.  The planes are evaluated through the
   ordinary vertical path (cached, guarded, counted); the combination is
   pure arithmetic through {!Kf_fusion.Horizontal} — the same function
   the simulator uses, which is what keeps measured and projected
   horizontal runtimes in agreement.  [planes] must be canonical: the
   per-plane cost sum folds in canonical plane order, so permuted-but-
   equal packs produce bit-identical floats. *)
let evaluate_comp t planes =
  let i = t.inputs in
  let orig_sum = List.fold_left (fun acc g -> acc +. Inputs.original_sum i g) 0. planes in
  if not (Plan.planes_independent ~exec:i.Inputs.exec planes) then
    { feasible = false; cost = Float.infinity; orig_sum }
  else begin
    let verdicts = List.map (lookup t) planes in
    if List.exists (fun v -> not v.feasible) verdicts then
      { feasible = false; cost = Float.infinity; orig_sum }
    else begin
      let combined = Horizontal.combine_pressure (List.map (plane_pressure t) planes) in
      let grid = (Metadata.program i.Inputs.meta).Kf_ir.Program.grid in
      let cost =
        Horizontal.runtime i.Inputs.device
          ~threads_per_block:(Kf_ir.Grid.threads_per_block grid)
          ~blocks:(Kf_ir.Grid.blocks grid)
          ~costs:(List.map (fun v -> v.cost) verdicts)
          combined
      in
      { feasible = Float.is_finite cost; cost; orig_sum }
    end
  end

(* Incremental-path pack probe: same two-level tables as the vertical
   groups (the [-3]-separated keys are disjoint from every group key), so
   pack verdicts inherit the merge machinery, the exactly-once
   evaluation accounting, and the domain-count determinism for free. *)
let lookup_comp_sig t planes =
  let l = local_of t in
  let sb = l.el_sb in
  Sigbuf.encode_cgroup sb planes;
  let buf = Sigbuf.unsafe_buf sb
  and len = Sigbuf.length sb
  and hash = Sigbuf.hash sb in
  match Sig_tbl.find_pre t.gcache.btbl ~buf ~len ~hash with
  | Some v ->
      l.el_ghits <- l.el_ghits + 1;
      v
  | None -> (
      match Sig_tbl.find_pre l.el_groups ~buf ~len ~hash with
      | Some v ->
          l.el_ghits <- l.el_ghits + 1;
          v
      | None ->
          l.el_gmisses <- l.el_gmisses + 1;
          (* Copy the key out before evaluating: the nested plane lookups
             below re-encode through this domain's arena. *)
          let key = Sigbuf.extract sb in
          l.el_evals <- l.el_evals + 1;
          let v = evaluate_comp t planes in
          Sig_tbl.add l.el_groups key ~hash v;
          v)

let comp_string_key planes = String.concat "|" (List.map string_key planes)

let lookup_comp_string t planes =
  (* Nested plane lookups run outside the shard lock (evaluation is
     lock-free in [Verdict_cache.lookup]), so re-entering the cache for
     the planes cannot deadlock; the '|' keyspace is disjoint from every
     group key. *)
  String_cache.lookup t.scache ~key:(comp_string_key planes)
    ~count_eval:(fun () ->
      Mutex.lock t.stats_lock;
      t.evaluations <- t.evaluations + 1;
      Mutex.unlock t.stats_lock;
      Kf_obs.Metrics.incr m_evals)
    ~eval:(fun () -> evaluate_comp t planes)

let lookup_comp t pack =
  match pack with
  | [ g ] -> lookup t g
  | planes ->
      let planes = Plan.canonical_groups planes in
      if t.incremental then lookup_comp_sig t planes else lookup_comp_string t planes

let comp_cost t pack = (lookup_comp t pack).cost
let comp_feasible t pack = (lookup_comp t pack).feasible

let comp_profitable t pack =
  match pack with
  | [ g ] -> group_profitable t g
  | _ ->
      let v = lookup_comp t pack in
      v.feasible && v.cost < v.orig_sum

(* ---- plan-level evaluation ---------------------------------------------- *)

(* Evaluate a whole plan through the two-level cache.  The canonical
   total is summed in canonical group order on every path — including
   the non-incremental [plan_cost] below — so a permuted-but-equal plan
   hitting the plan cache returns a bit-identical total, and the
   [--no-incremental] escape hatch reproduces the same floats.

   The arena encodes the canonical plan signature without building the
   canonical group list, so a plan-cache hit — the steady state once the
   population converges — allocates nothing at all.

   [base] is the parent's evaluation: groups the genetic operator left
   untouched are found in [base.pe_costs] and skip the shared cache
   entirely.  With unbounded caches this changes no evaluation counts —
   every group in [base] was itself resolved through the shared cache
   when the parent was evaluated, so the set of cache misses is the same
   with delta evaluation on or off.  (Under a configured
   [cache_capacity], evicted groups are re-evaluated on the full path
   but not on the delta path, so counts may differ; totals never do.) *)
let eval_plan t ?base groups =
  let l = local_of t in
  let sb = l.el_sb in
  Sigbuf.encode_plan sb groups;
  let buf = Sigbuf.unsafe_buf sb
  and len = Sigbuf.length sb
  and hash = Sigbuf.hash sb in
  let cached =
    match Sig_tbl.find_pre t.plans.btbl ~buf ~len ~hash with
    | Some _ as pe -> pe
    | None -> Sig_tbl.find_pre l.el_plans ~buf ~len ~hash
  in
  match cached with
  | Some pe ->
      l.el_phits <- l.el_phits + 1;
      pe
  | None ->
      l.el_pmisses <- l.el_pmisses + 1;
      (* Materialize the key and the canonical group list before the
         per-group lookups below clobber the arena. *)
      let psig = Sigbuf.extract sb in
      let canon = Sigbuf.canonical sb in
      let costs = Hashtbl.create 16 in
      let total =
        List.fold_left
          (fun acc g ->
            match g with
            | [ k ] -> acc +. t.inputs.Inputs.measured_runtime.(k)
            | _ ->
                let c =
                  match base with
                  | Some b -> (
                      match Hashtbl.find_opt b.pe_costs g with
                      | Some c -> c
                      | None -> (lookup_sig t g).cost)
                  | None -> (lookup_sig t g).cost
                in
                Hashtbl.replace costs g c;
                acc +. c)
          0. canon
      in
      let pe = { pe_total = total; pe_costs = costs } in
      Sig_tbl.add l.el_plans psig ~hash pe;
      (match t.port with
      | Some st -> offer_plan st t l ~psig ~canon
      | None -> ());
      pe

let plan_cost t groups =
  if t.incremental then (eval_plan t groups).pe_total
  else
    List.fold_left (fun acc g -> acc +. group_cost t g) 0. (Plan.canonical_groups groups)

(* Whole-composition evaluation: [eval_plan] one level up.  An
   all-singleton composition encodes byte-identically to the underlying
   plan signature, so vertical individuals inside a horizontal search
   share plan-cache entries (and bit-identical totals) with the vertical
   search.  [base] diffing works across modes because single-plane packs
   key [pe_costs] by their group, exactly as [eval_plan] does. *)
let eval_cplan t ?base comps =
  let l = local_of t in
  let sb = l.el_sb in
  let canon = Sigbuf.encode_cplan sb comps in
  let buf = Sigbuf.unsafe_buf sb
  and len = Sigbuf.length sb
  and hash = Sigbuf.hash sb in
  let cached =
    match Sig_tbl.find_pre t.plans.btbl ~buf ~len ~hash with
    | Some _ as pe -> pe
    | None -> Sig_tbl.find_pre l.el_plans ~buf ~len ~hash
  in
  match cached with
  | Some pe ->
      l.el_phits <- l.el_phits + 1;
      pe
  | None ->
      l.el_pmisses <- l.el_pmisses + 1;
      let psig = Sigbuf.extract sb in
      let costs = Hashtbl.create 16 in
      let total =
        List.fold_left
          (fun acc pack ->
            match pack with
            | [ [ k ] ] -> acc +. t.inputs.Inputs.measured_runtime.(k)
            | [ g ] ->
                let c =
                  match base with
                  | Some b -> (
                      match Hashtbl.find_opt b.pe_costs g with
                      | Some c -> c
                      | None -> (lookup_sig t g).cost)
                  | None -> (lookup_sig t g).cost
                in
                Hashtbl.replace costs g c;
                acc +. c
            | planes ->
                let key = comp_key planes in
                let c =
                  match base with
                  | Some b -> (
                      match Hashtbl.find_opt b.pe_costs key with
                      | Some c -> c
                      | None -> (lookup_comp_sig t planes).cost)
                  | None -> (lookup_comp_sig t planes).cost
                in
                Hashtbl.replace costs key c;
                acc +. c)
          0. canon
      in
      let pe = { pe_total = total; pe_costs = costs } in
      Sig_tbl.add l.el_plans psig ~hash pe;
      pe

let cplan_cost t comps =
  if t.incremental then (eval_cplan t comps).pe_total
  else
    List.fold_left
      (fun acc pack ->
        match pack with
        | [ g ] -> acc +. group_cost t g
        | planes -> acc +. (lookup_comp t planes).cost)
      0. (Plan.canonical_comps comps)

let original_sum t group = Inputs.original_sum t.inputs group

(* ---- merge at generation barriers --------------------------------------- *)

(* Fold every domain's private tables into the shared bases.  Must only
   run at a quiescent point: all workers parked at the pool's generation
   barrier (its mutex handshake publishes the workers' writes to the
   merging domain and the updated bases back to them), or a
   single-domain caller.

   Evaluation accounting: each private verdict whose key is not yet in
   the base counts as one evaluation.  A key evaluated by several
   domains in the same generation merges — and counts — once, which is
   exactly the distinct-key count the striped cache's in-flight table
   used to maintain, so budgets and fault-rate denominators stay
   identical for any domain count.  (Locals hide duplicates within one
   domain between merges, so the per-local fresh-key count is the
   per-local evaluation count.) *)
(* Strict Pareto dominance over cost vectors: no worse everywhere,
   strictly better somewhere.  Infinities compare like any float, so an
   everywhere-infeasible plan is dominated by anything finite. *)
let dominates a b =
  let n = Array.length a in
  let le = ref true and lt = ref false in
  for i = 0 to n - 1 do
    if a.(i) > b.(i) then le := false else if a.(i) < b.(i) then lt := true
  done;
  !le && !lt

(* Fold one offer into the non-dominated set.  The result is independent
   of offer order: dominance is transitive, and equal cost vectors are
   deduplicated to the lexicographically smallest plan signature. *)
let front_offer st o =
  let shadowed e =
    dominates e.of_costs o.of_costs
    || (e.of_costs = o.of_costs && Stdlib.compare e.of_sig o.of_sig <= 0)
  in
  if not (List.exists shadowed st.front) then
    st.front <-
      o
      :: List.filter
           (fun e ->
             (not (dominates o.of_costs e.of_costs))
             && not (e.of_costs = o.of_costs && Stdlib.compare o.of_sig e.of_sig < 0))
           st.front

let merge_locals t =
  if t.incremental then begin
    let fresh = ref 0 in
    List.iter
      (fun (_, l) ->
        (match t.port with
        | Some st ->
            Sig_tbl.iter
              (fun key ~hash r ->
                if
                  not
                    (Sig_tbl.mem_pre st.rows.btbl ~buf:key ~len:(Array.length key)
                       ~hash)
                then begin
                  bounded_add st.rows key hash r;
                  st.rows_merged <- st.rows_merged + 1
                end)
              l.el_rows;
            Sig_tbl.clear l.el_rows;
            List.iter (front_offer st) (List.rev l.el_offers);
            l.el_offers <- []
        | None -> ());
        Sig_tbl.iter
          (fun key ~hash v ->
            if
              not
                (Sig_tbl.mem_pre t.gcache.btbl ~buf:key ~len:(Array.length key)
                   ~hash)
            then begin
              bounded_add t.gcache key hash v;
              incr fresh
            end)
          l.el_groups;
        Sig_tbl.clear l.el_groups;
        l.el_evals <- 0;
        Sig_tbl.iter
          (fun key ~hash pe ->
            if
              not
                (Sig_tbl.mem_pre t.plans.btbl ~buf:key ~len:(Array.length key)
                   ~hash)
            then bounded_add t.plans key hash pe)
          l.el_plans;
        Sig_tbl.clear l.el_plans;
        (* Flush probe telemetry to the (atomic) metrics registry here
           rather than contending on it per probe. *)
        Kf_obs.Metrics.incr ~by:(l.el_ghits - l.el_pub_ghits) m_group_hits;
        Kf_obs.Metrics.incr ~by:(l.el_gmisses - l.el_pub_gmisses) m_group_misses;
        Kf_obs.Metrics.incr ~by:(l.el_phits - l.el_pub_phits) m_plan_hits;
        Kf_obs.Metrics.incr ~by:(l.el_pmisses - l.el_pub_pmisses) m_plan_misses;
        l.el_pub_ghits <- l.el_ghits;
        l.el_pub_gmisses <- l.el_gmisses;
        l.el_pub_phits <- l.el_phits;
        l.el_pub_pmisses <- l.el_pmisses)
      t.locals;
    bounded_enforce t.gcache m_group_evictions;
    bounded_enforce t.plans m_plan_evictions;
    if !fresh > 0 then begin
      Mutex.lock t.stats_lock;
      t.evaluations <- t.evaluations + !fresh;
      Mutex.unlock t.stats_lock;
      Kf_obs.Metrics.incr ~by:!fresh m_evals
    end;
    match t.memos with Some m -> Struct_memo.merge_memos m | None -> ()
  end

(* ---- portfolio accessors (call at quiescent points, like merges) ------- *)

let arena_enabled t = t.arena <> None
let portfolio_active t = t.port <> None

let portfolio_devices t =
  match t.port with
  | Some st -> Feature_arena.devices st.pa
  | None -> [| t.inputs.Inputs.device |]

let rows_evaluated t =
  merge_locals t;
  match t.port with Some st -> st.rows_merged | None -> 0

let group_row t group =
  match t.port with
  | None -> None
  | Some st -> (
      match group with
      | [ k ] ->
          Some
            (Array.init
               (Feature_arena.num_devices st.pa)
               (fun dev -> (Feature_arena.measured_runtime st.pa ~dev).(k)))
      | _ ->
          let sorted =
            if Plan.is_sorted_strict group then group else List.sort Int.compare group
          in
          Some (Array.copy (row_of_group st t (local_of t) sorted)))

let pareto_front t =
  match t.port with
  | None -> []
  | Some st ->
      merge_locals t;
      let entries =
        List.sort
          (fun a b ->
            let c = Stdlib.compare a.of_costs b.of_costs in
            if c <> 0 then c else Stdlib.compare a.of_sig b.of_sig)
          st.front
      in
      List.map (fun o -> { pf_plan = o.of_plan; pf_costs = Array.copy o.of_costs }) entries

let alloc_per_eval t =
  Mutex.lock t.stats_lock;
  let v =
    if t.timed_evals = 0 then 0. else t.alloc_words /. float_of_int t.timed_evals
  in
  Mutex.unlock t.stats_lock;
  v

(* Merged exactly-once count plus each domain's evaluations since its
   last merge.  Exact at merge points and for single-domain use (one
   local dedups its own traffic); between barriers with several domains
   the live part may transiently include cross-domain duplicates that
   the next merge collapses. *)
let evaluations t =
  Mutex.lock t.stats_lock;
  let n = t.evaluations in
  Mutex.unlock t.stats_lock;
  List.fold_left (fun acc (_, l) -> acc + l.el_evals) n t.locals

(* Resume support: a solver restoring a checkpoint seeds the counter with
   the evaluations already spent before the snapshot, so budgets and
   reported stats span the whole logical run, not just this process. *)
let add_evaluations t n =
  if n < 0 then invalid_arg "Objective.add_evaluations: negative count";
  Mutex.lock t.stats_lock;
  t.evaluations <- t.evaluations + n;
  Mutex.unlock t.stats_lock

let add_faults t (base : fault_stats) =
  Mutex.lock t.stats_lock;
  let f = t.fault_record in
  f.injected <- f.injected + base.injected;
  f.trapped <- f.trapped + base.trapped;
  f.corrupted <- f.corrupted + base.corrupted;
  f.retries <- f.retries + base.retries;
  f.recovered <- f.recovered + base.recovered;
  f.quarantined <- f.quarantined + base.quarantined;
  Mutex.unlock t.stats_lock

let add_cache_stats t ~group ~plan =
  Mutex.lock t.stats_lock;
  (* The size field of a seed is meaningless (the prior table is gone);
     only the flow counters accumulate. *)
  t.base_group <-
    add_stats t.base_group { group with size = 0 };
  t.base_plan <- add_stats t.base_plan { plan with size = 0 };
  Mutex.unlock t.stats_lock

let base_group_stats t =
  Mutex.lock t.stats_lock;
  let s = t.base_group in
  Mutex.unlock t.stats_lock;
  s

let base_plan_stats t =
  Mutex.lock t.stats_lock;
  let s = t.base_plan in
  Mutex.unlock t.stats_lock;
  s

(* Warm cross-request cache: the serve daemon exports one request's
   signature-keyed verdicts and seeds them into the next request's
   objective over the same (program, device, model), so identical
   subproblems hit warm across requests — and, with Snapshot.Cache
   persistence, across daemon restarts.  Only meaningful on the
   incremental path: signatures are canonical there.  Export merges
   first so in-flight locals are included; both calls must happen at
   quiescent points (the daemon calls them between requests). *)
let export_group_verdicts t =
  if t.incremental then begin
    merge_locals t;
    let acc = ref [] in
    Sig_tbl.iter (fun k ~hash:_ v -> acc := (k, v) :: !acc) t.gcache.btbl;
    !acc
  end
  else []

let seed_group_verdicts t entries =
  if t.incremental then begin
    List.iter
      (fun (k, v) ->
        let hash = Plan.signature_hash k in
        if not (Sig_tbl.mem_pre t.gcache.btbl ~buf:k ~len:(Array.length k) ~hash)
        then bounded_add t.gcache k hash v)
      entries;
    bounded_enforce t.gcache m_group_evictions
  end

(* On the incremental path the "shards" are the shared base (index 0 —
   it holds the merged entries and the eviction counter but sees no
   probes of its own) followed by one entry per domain-local context
   (its private probe counters and any entries not yet merged).  Sizes
   and hit/miss flows both sum to the aggregate {!cache_stats}. *)
let shard_stats t =
  if t.incremental then
    let base =
      {
        hits = 0;
        misses = 0;
        evictions = t.gcache.bevictions;
        size = Sig_tbl.count t.gcache.btbl;
      }
    in
    let locs =
      List.rev_map
        (fun (_, l) ->
          {
            hits = l.el_ghits;
            misses = l.el_gmisses;
            evictions = 0;
            size = Sig_tbl.count l.el_groups;
          })
        t.locals
    in
    Array.of_list (base :: locs)
  else String_cache.shard_stats t.scache

let num_shards t =
  if t.incremental then 1 + List.length t.locals
  else Array.length t.scache.String_cache.shards

let cache_stats t =
  let live =
    if t.incremental then
      Array.fold_left add_stats zero_cache_stats (shard_stats t)
    else String_cache.stats t.scache
  in
  add_stats live (base_group_stats t)

let plan_cache_stats t =
  let live =
    List.fold_left
      (fun acc (_, l) ->
        add_stats acc
          {
            hits = l.el_phits;
            misses = l.el_pmisses;
            evictions = 0;
            size = Sig_tbl.count l.el_plans;
          })
      {
        hits = 0;
        misses = 0;
        evictions = t.plans.bevictions;
        size = Sig_tbl.count t.plans.btbl;
      }
      t.locals
  in
  add_stats live (base_plan_stats t)

let cache_hit_rate t =
  let s = cache_stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let eval_time_s t =
  Mutex.lock t.stats_lock;
  let v = t.eval_time_s in
  Mutex.unlock t.stats_lock;
  v

let faults t = t.fault_record

let fault_snapshot t =
  Mutex.lock t.stats_lock;
  let f = copy_faults t.fault_record in
  Mutex.unlock t.stats_lock;
  f

(* Per-candidate, not per-event: a transient failure that recovers on
   retry bumps [trapped] several times for one evaluation, so the event
   counts can exceed the attempt count.  A candidate counts as failed
   exactly when it ended quarantined, which happens at most once per
   distinct group — the rate stays in [0,1]. *)
let fault_rate t =
  let f = fault_snapshot t in
  let evals = evaluations t in
  if evals = 0 then 0. else float_of_int f.quarantined /. float_of_int evals

let pp_faults ppf f =
  Format.fprintf ppf
    "injected %d, trapped %d, corrupted %d, retries %d (recovered %d), quarantined %d"
    f.injected f.trapped f.corrupted f.retries f.recovered f.quarantined

let cache_size t = (cache_stats t).size
