module Inputs = Kf_model.Inputs
module Fused = Kf_fusion.Fused
module Metadata = Kf_ir.Metadata
module Device = Kf_gpu.Device
module Exec_order = Kf_graph.Exec_order

type model = Proposed | Roofline | Simple | Mwp

type verdict = { feasible : bool; cost : float; orig_sum : float }

type fault_stats = {
  mutable injected : int;
  mutable trapped : int;
  mutable corrupted : int;
  mutable retries : int;
  mutable recovered : int;
  mutable quarantined : int;
}

let zero_faults () =
  { injected = 0; trapped = 0; corrupted = 0; retries = 0; recovered = 0; quarantined = 0 }

let copy_faults f =
  {
    injected = f.injected;
    trapped = f.trapped;
    corrupted = f.corrupted;
    retries = f.retries;
    recovered = f.recovered;
    quarantined = f.quarantined;
  }

type guard = (int list -> verdict) -> int list -> verdict

type cache_stats = { hits : int; misses : int; evictions : int; size : int }

type t = {
  inputs : Inputs.t;
  model : model;
  cache : (string, verdict) Hashtbl.t;
  capacity : int option;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  lock : Mutex.t;
      (* the cache is shared across the GA's evaluation domains; entries
         are pure memoization, so a racing double-evaluation is only a
         little wasted work *)
  mutable evaluations : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable eval_time_s : float;
  time_counter : Kf_obs.Metrics.counter;
  guard : guard;
  fault_record : fault_stats;
}

(* Process-wide telemetry counters; no-ops unless Kf_obs.Metrics is
   enabled.  The per-objective cache_stats fields below are maintained
   unconditionally — they live under a lock that is taken anyway. *)
let m_hits = Kf_obs.Metrics.counter "objective.cache_hits"
let m_misses = Kf_obs.Metrics.counter "objective.cache_misses"
let m_evictions = Kf_obs.Metrics.counter "objective.cache_evictions"
let m_evals = Kf_obs.Metrics.counter "objective.evaluations"

let model_name = function
  | Proposed -> "proposed"
  | Roofline -> "roofline"
  | Simple -> "simple"
  | Mwp -> "mwp"

let create ?(model = Proposed) ?(guard = fun eval group -> eval group)
    ?(faults = zero_faults ()) ?cache_capacity inputs =
  (match cache_capacity with
  | Some c when c < 1 -> invalid_arg "Objective.create: cache_capacity must be positive"
  | _ -> ());
  {
    inputs;
    model;
    cache = Hashtbl.create 4096;
    capacity = cache_capacity;
    order = Queue.create ();
    lock = Mutex.create ();
    evaluations = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    eval_time_s = 0.;
    time_counter = Kf_obs.Metrics.counter ("objective.eval_us." ^ model_name model);
    guard;
    fault_record = faults;
  }

let inputs t = t.inputs
let model t = t.model

let key group = String.concat "," (List.map string_of_int (List.sort compare group))

let project t f =
  match t.model with
  | Proposed -> Kf_model.Projection.runtime t.inputs f
  | Roofline -> Kf_model.Roofline.runtime t.inputs f
  | Simple -> Kf_model.Simple_model.runtime t.inputs f
  | Mwp -> Kf_model.Mwp.runtime t.inputs f

let evaluate t group =
  match group with
  | [ k ] ->
      let cost = t.inputs.Inputs.measured_runtime.(k) in
      { feasible = true; cost; orig_sum = cost }
  | _ ->
      let i = t.inputs in
      let orig_sum = Inputs.original_sum i group in
      (* Active-constraint pruning: cheap structural checks first, resource
         checks only on structurally valid groups, model evaluation only on
         fully feasible ones. *)
      if not (Metadata.kinship_connected i.Inputs.meta group) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if Exec_order.group_spans_sync i.Inputs.exec group then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if not (Exec_order.group_is_convex i.Inputs.exec group) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else begin
        let f = Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group in
        let d = i.Inputs.device in
        if
          f.Fused.vertical_hazard
          || f.Fused.smem_bytes_per_block > d.Device.smem_per_smx
          || f.Fused.registers_per_thread >= d.Device.max_registers_per_thread
        then { feasible = false; cost = Float.infinity; orig_sum }
        else { feasible = true; cost = project t f; orig_sum }
      end

let lookup t group =
  let k = key group in
  Mutex.lock t.lock;
  let hit = Hashtbl.find_opt t.cache k in
  (match hit with Some _ -> t.hits <- t.hits + 1 | None -> t.misses <- t.misses + 1);
  Mutex.unlock t.lock;
  match hit with
  | Some v ->
      Kf_obs.Metrics.incr m_hits;
      v
  | None ->
      Kf_obs.Metrics.incr m_misses;
      (* Count the attempt before evaluating: a candidate whose evaluation
         fails (and is quarantined by a guard) is still an evaluation, so
         fault rates have a meaningful denominator. *)
      (match group with
      | [ _ ] -> ()
      | _ ->
          Mutex.lock t.lock;
          t.evaluations <- t.evaluations + 1;
          Mutex.unlock t.lock;
          Kf_obs.Metrics.incr m_evals);
      (* Evaluate outside the lock: evaluation is pure, so a concurrent
         duplicate costs time, never correctness.  The guard sits between
         the cache and the raw evaluation, so any fault handling it
         performs (retry, quarantine) is memoized like a normal verdict.
         The timing branch only runs with metrics enabled, keeping the
         disabled-mode hot path clock-free. *)
      let v =
        if Kf_obs.Metrics.enabled () then begin
          let t0 = Unix.gettimeofday () in
          let v = t.guard (evaluate t) group in
          let dt = Float.max 0. (Unix.gettimeofday () -. t0) in
          Mutex.lock t.lock;
          t.eval_time_s <- t.eval_time_s +. dt;
          Mutex.unlock t.lock;
          Kf_obs.Metrics.add t.time_counter (int_of_float (dt *. 1e6));
          v
        end
        else t.guard (evaluate t) group
      in
      Mutex.lock t.lock;
      if not (Hashtbl.mem t.cache k) then begin
        (* FIFO eviction keeps the memo table bounded when a capacity is
           configured; re-evaluating an evicted group is pure, so eviction
           costs time, never correctness. *)
        (match t.capacity with
        | Some cap ->
            while Hashtbl.length t.cache >= cap do
              match Queue.take_opt t.order with
              | Some victim ->
                  Hashtbl.remove t.cache victim;
                  t.evictions <- t.evictions + 1;
                  Kf_obs.Metrics.incr m_evictions
              | None -> Hashtbl.reset t.cache
            done
        | None -> ());
        Queue.add k t.order;
        Hashtbl.replace t.cache k v
      end;
      Mutex.unlock t.lock;
      v

let group_feasible t group = (lookup t group).feasible
let group_cost t group = (lookup t group).cost

let group_profitable t group =
  match group with
  | [ _ ] -> true
  | _ ->
      let v = lookup t group in
      v.feasible && v.cost < v.orig_sum

let plan_cost t groups =
  List.fold_left (fun acc g -> acc +. group_cost t g) 0. groups

let original_sum t group = Inputs.original_sum t.inputs group

let evaluations t =
  Mutex.lock t.lock;
  let n = t.evaluations in
  Mutex.unlock t.lock;
  n

(* Resume support: a solver restoring a checkpoint seeds the counter with
   the evaluations already spent before the snapshot, so budgets and
   reported stats span the whole logical run, not just this process. *)
let add_evaluations t n =
  if n < 0 then invalid_arg "Objective.add_evaluations: negative count";
  Mutex.lock t.lock;
  t.evaluations <- t.evaluations + n;
  Mutex.unlock t.lock

let add_faults t (base : fault_stats) =
  Mutex.lock t.lock;
  let f = t.fault_record in
  f.injected <- f.injected + base.injected;
  f.trapped <- f.trapped + base.trapped;
  f.corrupted <- f.corrupted + base.corrupted;
  f.retries <- f.retries + base.retries;
  f.recovered <- f.recovered + base.recovered;
  f.quarantined <- f.quarantined + base.quarantined;
  Mutex.unlock t.lock

let cache_stats t =
  Mutex.lock t.lock;
  let s =
    { hits = t.hits; misses = t.misses; evictions = t.evictions;
      size = Hashtbl.length t.cache }
  in
  Mutex.unlock t.lock;
  s

let cache_hit_rate t =
  let s = cache_stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let eval_time_s t =
  Mutex.lock t.lock;
  let v = t.eval_time_s in
  Mutex.unlock t.lock;
  v

let faults t = t.fault_record

let fault_snapshot t =
  Mutex.lock t.lock;
  let f = copy_faults t.fault_record in
  Mutex.unlock t.lock;
  f

(* Per-candidate, not per-event: a transient failure that recovers on
   retry bumps [trapped] several times for one evaluation, so the event
   counts can exceed the attempt count.  A candidate counts as failed
   exactly when it ended quarantined, which happens at most once per
   distinct group — the rate stays in [0,1]. *)
let fault_rate t =
  let f = fault_snapshot t in
  let evals = evaluations t in
  if evals = 0 then 0. else float_of_int f.quarantined /. float_of_int evals

let pp_faults ppf f =
  Format.fprintf ppf
    "injected %d, trapped %d, corrupted %d, retries %d (recovered %d), quarantined %d"
    f.injected f.trapped f.corrupted f.retries f.recovered f.quarantined

let cache_size t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.cache in
  Mutex.unlock t.lock;
  n
