module Inputs = Kf_model.Inputs
module Fused = Kf_fusion.Fused
module Plan = Kf_fusion.Plan
module Metadata = Kf_ir.Metadata
module Device = Kf_gpu.Device
module Exec_order = Kf_graph.Exec_order

type model = Proposed | Roofline | Simple | Mwp

type verdict = { feasible : bool; cost : float; orig_sum : float }

type fault_stats = {
  mutable injected : int;
  mutable trapped : int;
  mutable corrupted : int;
  mutable retries : int;
  mutable recovered : int;
  mutable quarantined : int;
}

let zero_faults () =
  { injected = 0; trapped = 0; corrupted = 0; retries = 0; recovered = 0; quarantined = 0 }

let copy_faults f =
  {
    injected = f.injected;
    trapped = f.trapped;
    corrupted = f.corrupted;
    retries = f.retries;
    recovered = f.recovered;
    quarantined = f.quarantined;
  }

type guard = (int list -> verdict) -> int list -> verdict

type cache_stats = { hits : int; misses : int; evictions : int; size : int }

let zero_cache_stats = { hits = 0; misses = 0; evictions = 0; size = 0 }

let add_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evictions = a.evictions + b.evictions;
    size = a.size + b.size;
  }

(* One stripe of a verdict memo table.  The cache is shared by every
   island and worker domain of the GA, so a single global lock serializes
   the whole search on its hottest path; striping the table over
   independently locked shards lets concurrent lookups of different keys
   proceed in parallel, and the per-shard in-flight set makes concurrent
   misses on the *same* key evaluate it exactly once (losers wait on the
   shard's condition variable for the winner's verdict).

   The machinery is a functor because the objective keeps two such
   tables: the PR 3 string-keyed table (the [--no-incremental] escape
   hatch, byte-for-byte the old behavior) and the signature-keyed group
   cache of the incremental path, whose int-array keys skip string
   building and per-character hashing on every probe. *)
module Verdict_cache (K : Hashtbl.HashedType) = struct
  module H = Hashtbl.Make (K)

  type shard = {
    s_lock : Mutex.t;
    s_cond : Condition.t;
    s_cache : verdict H.t;
    s_order : K.t Queue.t;  (* insertion order, for FIFO eviction *)
    s_inflight : unit H.t;
    s_capacity : int option;  (* this shard's slice of the global capacity *)
    mutable s_hits : int;
    mutable s_misses : int;
    mutable s_evictions : int;
    m_shard_hits : Kf_obs.Metrics.counter;
    m_shard_misses : Kf_obs.Metrics.counter;
    m_shard_evictions : Kf_obs.Metrics.counter;
  }

  type t = {
    shards : shard array;
    m_hits : Kf_obs.Metrics.counter;
    m_misses : Kf_obs.Metrics.counter;
    m_evictions : Kf_obs.Metrics.counter;
  }

  (* A capacity smaller than the stripe count would leave shards with no
     budget at all; the caller clamps the stripe count so every shard
     holds >= 1 entry and the per-shard slices sum exactly to the
     configured capacity. *)
  let create ~prefix ~capacity ~shards =
    let shard_capacity i =
      match capacity with
      | None -> None
      | Some c -> Some ((c / shards) + if i < c mod shards then 1 else 0)
    in
    {
      shards =
        Array.init shards (fun i ->
            {
              s_lock = Mutex.create ();
              s_cond = Condition.create ();
              s_cache = H.create 512;
              s_order = Queue.create ();
              s_inflight = H.create 8;
              s_capacity = shard_capacity i;
              s_hits = 0;
              s_misses = 0;
              s_evictions = 0;
              m_shard_hits =
                Kf_obs.Metrics.counter (Printf.sprintf "%s_hits.shard%02d" prefix i);
              m_shard_misses =
                Kf_obs.Metrics.counter (Printf.sprintf "%s_misses.shard%02d" prefix i);
              m_shard_evictions =
                Kf_obs.Metrics.counter (Printf.sprintf "%s_evictions.shard%02d" prefix i);
            });
      m_hits = Kf_obs.Metrics.counter (prefix ^ "_hits");
      m_misses = Kf_obs.Metrics.counter (prefix ^ "_misses");
      m_evictions = Kf_obs.Metrics.counter (prefix ^ "_evictions");
    }

  let insert_locked t s k v =
    H.remove s.s_inflight k;
    if not (H.mem s.s_cache k) then begin
      (* FIFO eviction keeps the memo table bounded when a capacity is
         configured; re-evaluating an evicted group is pure, so eviction
         costs time, never correctness. *)
      (match s.s_capacity with
      | Some cap ->
          while H.length s.s_cache >= cap do
            match Queue.take_opt s.s_order with
            | Some victim ->
                H.remove s.s_cache victim;
                s.s_evictions <- s.s_evictions + 1;
                Kf_obs.Metrics.incr t.m_evictions;
                Kf_obs.Metrics.incr s.m_shard_evictions
            | None -> H.reset s.s_cache
          done
      | None -> ());
      Queue.add k s.s_order;
      H.replace s.s_cache k v
    end;
    (* Wake every domain parked on this shard: waiters re-probe and find
       the fresh entry (or, if it was already evicted again, claim the
       key). *)
    Condition.broadcast s.s_cond

  (* [count_eval] fires when this probe wins the in-flight slot (the
     exactly-once evaluation accounting point); [eval] produces the
     verdict outside any lock (evaluation is pure). *)
  let lookup t ~key ~count_eval ~eval =
    let s = t.shards.(K.hash key mod Array.length t.shards) in
    Mutex.lock s.s_lock;
    let rec probe () =
      match H.find_opt s.s_cache key with
      | Some v ->
          (* Every probe resolves as exactly one hit or one miss,
             including probes that waited for an in-flight evaluation —
             so across shards, hits + misses always equals total
             lookups. *)
          s.s_hits <- s.s_hits + 1;
          Mutex.unlock s.s_lock;
          Kf_obs.Metrics.incr t.m_hits;
          Kf_obs.Metrics.incr s.m_shard_hits;
          v
      | None ->
          if H.mem s.s_inflight key then begin
            (* Another domain is already evaluating this key; wait for
               its verdict instead of duplicating the evaluation. *)
            Condition.wait s.s_cond s.s_lock;
            probe ()
          end
          else begin
            H.replace s.s_inflight key ();
            s.s_misses <- s.s_misses + 1;
            Mutex.unlock s.s_lock;
            Kf_obs.Metrics.incr t.m_misses;
            Kf_obs.Metrics.incr s.m_shard_misses;
            (* Exactly-once evaluation accounting: the increment is tied
               to winning the in-flight slot, so concurrent duplicate
               misses — which grow with the domain count — can no longer
               burn --budget-evals faster than real evaluations happen,
               and fault-rate denominators stay scheduling-independent. *)
            count_eval ();
            let v =
              match eval () with
              | v -> v
              | exception e ->
                  (* Release the slot so waiters do not hang on a key
                     whose evaluation escaped the guard. *)
                  Mutex.lock s.s_lock;
                  H.remove s.s_inflight key;
                  Condition.broadcast s.s_cond;
                  Mutex.unlock s.s_lock;
                  raise e
            in
            Mutex.lock s.s_lock;
            insert_locked t s key v;
            Mutex.unlock s.s_lock;
            v
          end
    in
    probe ()

  (* Warm-cache support: dump and pre-load memoized verdicts.  Seeding
     inserts through the normal FIFO/eviction machinery but records
     neither a hit nor a miss — seeded entries are free history, not
     probes — so hit-rate telemetry still measures only real traffic. *)
  let export t =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.s_lock;
        let entries = H.fold (fun k v acc -> (k, v) :: acc) s.s_cache acc in
        Mutex.unlock s.s_lock;
        entries)
      [] t.shards

  let seed t entries =
    List.iter
      (fun (k, v) ->
        let s = t.shards.(K.hash k mod Array.length t.shards) in
        Mutex.lock s.s_lock;
        insert_locked t s k v;
        Mutex.unlock s.s_lock)
      entries

  let shard_stats_locked s =
    {
      hits = s.s_hits;
      misses = s.s_misses;
      evictions = s.s_evictions;
      size = H.length s.s_cache;
    }

  let shard_stats t =
    Array.map
      (fun s ->
        Mutex.lock s.s_lock;
        let st = shard_stats_locked s in
        Mutex.unlock s.s_lock;
        st)
      t.shards

  let stats t = Array.fold_left add_stats zero_cache_stats (shard_stats t)
end

module String_cache = Verdict_cache (struct
  type t = string

  let equal = String.equal

  (* Deliberately not Hashtbl.hash: the shard of a key must not depend on
     runtime hashing parameters (OCAMLRUNPARAM=R), so a plain polynomial
     string hash keeps the striping reproducible everywhere. *)
  let hash k =
    let h = ref 0 in
    String.iter (fun c -> h := ((!h * 31) + Char.code c) land max_int) k;
    !h
end)

module Sig_cache = Verdict_cache (struct
  type t = int array

  let equal = ( = )
  let hash = Plan.signature_hash
end)

(* ---- plan-level cache --------------------------------------------------- *)

(* One whole-plan evaluation: the canonical-order total and each
   multi-member group's cost.  Offspring diff their groups against the
   parent's [pe_costs] table, so unchanged groups cost one hashtable find
   instead of a shared-cache probe. *)
type plan_eval = {
  pe_total : float;
  pe_costs : (int list, float) Hashtbl.t;  (* canonical group -> cost; multi-member only *)
}

let plan_eval_total pe = pe.pe_total

module PH = Hashtbl.Make (struct
  type t = int array

  let equal = ( = )
  let hash = Plan.signature_hash
end)

type plan_shard = {
  p_lock : Mutex.t;
  p_cache : plan_eval PH.t;
  p_order : int array Queue.t;
  p_capacity : int option;
  mutable p_hits : int;
  mutable p_misses : int;
  mutable p_evictions : int;
}

type t = {
  inputs : Inputs.t;
  model : model;
  incremental : bool;
  scache : String_cache.t;  (* PR 3 path: active when [not incremental] *)
  gcache : Sig_cache.t;  (* signature-keyed group cache: incremental path *)
  plans : plan_shard array;  (* plan-level cache above the group cache *)
  memos : Struct_memo.memos option;  (* structural-operator memos, incremental only *)
  stats_lock : Mutex.t;  (* guards the cross-shard mutable counters below *)
  mutable evaluations : int;
  mutable eval_time_s : float;
  mutable base_group : cache_stats;  (* resume seed for group-cache stats *)
  mutable base_plan : cache_stats;  (* resume seed for plan-cache stats *)
  time_counter : Kf_obs.Metrics.counter;
  guard : guard;
  fault_record : fault_stats;
}

(* Process-wide telemetry counters; no-ops unless Kf_obs.Metrics is
   enabled.  The per-objective cache_stats fields are maintained
   unconditionally — they live under shard locks that are taken anyway. *)
let m_evals = Kf_obs.Metrics.counter "objective.evaluations"
let m_plan_hits = Kf_obs.Metrics.counter "objective.plan_cache_hits"
let m_plan_misses = Kf_obs.Metrics.counter "objective.plan_cache_misses"
let m_plan_evictions = Kf_obs.Metrics.counter "objective.plan_cache_evictions"

let model_name = function
  | Proposed -> "proposed"
  | Roofline -> "roofline"
  | Simple -> "simple"
  | Mwp -> "mwp"

let default_shards = 16
let default_plan_shards = 8

let create ?(model = Proposed) ?(guard = fun eval group -> eval group)
    ?(faults = zero_faults ()) ?cache_capacity ?(cache_shards = default_shards)
    ?plan_cache_capacity ?(incremental = true) inputs =
  (match cache_capacity with
  | Some c when c < 1 -> invalid_arg "Objective.create: cache_capacity must be positive"
  | _ -> ());
  (match plan_cache_capacity with
  | Some c when c < 1 ->
      invalid_arg "Objective.create: plan_cache_capacity must be positive"
  | _ -> ());
  if cache_shards < 1 then invalid_arg "Objective.create: cache_shards must be positive";
  let n_shards =
    match cache_capacity with Some c -> min cache_shards c | None -> cache_shards
  in
  let n_plan_shards =
    match plan_cache_capacity with
    | Some c -> min default_plan_shards c
    | None -> default_plan_shards
  in
  let plan_capacity i =
    match plan_cache_capacity with
    | None -> None
    | Some c -> Some ((c / n_plan_shards) + if i < c mod n_plan_shards then 1 else 0)
  in
  {
    inputs;
    model;
    incremental;
    scache = String_cache.create ~prefix:"objective.cache" ~capacity:cache_capacity ~shards:n_shards;
    gcache =
      Sig_cache.create ~prefix:"objective.group_cache" ~capacity:cache_capacity
        ~shards:n_shards;
    plans =
      Array.init n_plan_shards (fun i ->
          {
            p_lock = Mutex.create ();
            p_cache = PH.create 512;
            p_order = Queue.create ();
            p_capacity = plan_capacity i;
            p_hits = 0;
            p_misses = 0;
            p_evictions = 0;
          });
    memos =
      (if incremental then begin
         let dag = Exec_order.dag inputs.Inputs.exec in
         let nk = Kf_graph.Dag.num_nodes dag in
         let succs =
           Array.init nk (fun u -> Kf_util.Bitset.of_list nk (Kf_graph.Dag.succs dag u))
         in
         Some (Struct_memo.create_memos ~succs ())
       end
       else None);
    stats_lock = Mutex.create ();
    evaluations = 0;
    eval_time_s = 0.;
    base_group = zero_cache_stats;
    base_plan = zero_cache_stats;
    time_counter = Kf_obs.Metrics.counter ("objective.eval_us." ^ model_name model);
    guard;
    fault_record = faults;
  }

let inputs t = t.inputs
let model t = t.model
let incremental t = t.incremental
let struct_memos t = t.memos
let num_shards t = Array.length t.scache.String_cache.shards

let string_key sorted_group = String.concat "," (List.map string_of_int sorted_group)

let project t f =
  match t.model with
  | Proposed -> Kf_model.Projection.runtime t.inputs f
  | Roofline -> Kf_model.Roofline.runtime t.inputs f
  | Simple -> Kf_model.Simple_model.runtime t.inputs f
  | Mwp -> Kf_model.Mwp.runtime t.inputs f

let evaluate t group =
  match group with
  | [ k ] ->
      let cost = t.inputs.Inputs.measured_runtime.(k) in
      { feasible = true; cost; orig_sum = cost }
  | _ ->
      let i = t.inputs in
      let orig_sum = Inputs.original_sum i group in
      (* Active-constraint pruning: cheap structural checks first, resource
         checks only on structurally valid groups, model evaluation only on
         fully feasible ones. *)
      if not (Metadata.kinship_connected i.Inputs.meta group) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if Exec_order.group_spans_sync i.Inputs.exec group then
        { feasible = false; cost = Float.infinity; orig_sum }
      else if not (Exec_order.group_is_convex i.Inputs.exec group) then
        { feasible = false; cost = Float.infinity; orig_sum }
      else begin
        let f = Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group in
        let d = i.Inputs.device in
        if
          f.Fused.vertical_hazard
          || f.Fused.smem_bytes_per_block > d.Device.smem_per_smx
          || f.Fused.registers_per_thread >= d.Device.max_registers_per_thread
        then { feasible = false; cost = Float.infinity; orig_sum }
        else { feasible = true; cost = project t f; orig_sum }
      end

(* Evaluate a missed key outside any lock (evaluation is pure).  The guard
   sits between the cache and the raw evaluation, so any fault handling it
   performs (retry, quarantine) is memoized like a normal verdict.  The
   timing branch only runs with metrics enabled, keeping the disabled-mode
   hot path clock-free. *)
let run_evaluation t group =
  if Kf_obs.Metrics.enabled () then begin
    let t0 = Unix.gettimeofday () in
    let v = t.guard (evaluate t) group in
    let dt = Float.max 0. (Unix.gettimeofday () -. t0) in
    Mutex.lock t.stats_lock;
    t.eval_time_s <- t.eval_time_s +. dt;
    Mutex.unlock t.stats_lock;
    Kf_obs.Metrics.add t.time_counter (int_of_float (dt *. 1e6));
    v
  end
  else t.guard (evaluate t) group

let count_evaluation t group () =
  match group with
  | [ _ ] -> ()
  | _ ->
      Mutex.lock t.stats_lock;
      t.evaluations <- t.evaluations + 1;
      Mutex.unlock t.stats_lock;
      Kf_obs.Metrics.incr m_evals

(* Both cache paths evaluate the canonically sorted group, so a verdict
   never depends on which member ordering reached the cache first — the
   evaluation itself sums original runtimes in member order, and the
   incremental and full paths must agree to the last bit. *)
let lookup_string t group =
  let sorted = List.sort compare group in
  String_cache.lookup t.scache ~key:(string_key sorted)
    ~count_eval:(count_evaluation t group)
    ~eval:(fun () -> run_evaluation t sorted)

(* Incremental-path probe of a multi-member group already in canonical
   member order. *)
let lookup_sig t sorted_group =
  Sig_cache.lookup t.gcache
    ~key:(Array.of_list sorted_group)
    ~count_eval:(count_evaluation t sorted_group)
    ~eval:(fun () -> run_evaluation t sorted_group)

let lookup t group =
  if t.incremental then
    match group with
    | [ k ] ->
        (* Singletons carry their measured runtime and are feasible by
           definition; the incremental path answers them from the inputs
           array without touching the cache (they are never counted as
           evaluations on either path, so only cache traffic differs). *)
        let cost = t.inputs.Inputs.measured_runtime.(k) in
        { feasible = true; cost; orig_sum = cost }
    | _ ->
        lookup_sig t
          (if Plan.is_sorted_strict group then group else List.sort Int.compare group)
  else lookup_string t group

let group_feasible t group = (lookup t group).feasible
let group_cost t group = (lookup t group).cost

let group_profitable t group =
  match group with
  | [ _ ] -> true
  | _ ->
      let v = lookup t group in
      v.feasible && v.cost < v.orig_sum

(* ---- plan-level evaluation ---------------------------------------------- *)

let plan_shard_of t psig = t.plans.(Plan.signature_hash psig mod Array.length t.plans)

let plan_insert s psig pe =
  Mutex.lock s.p_lock;
  if not (PH.mem s.p_cache psig) then begin
    (match s.p_capacity with
    | Some cap ->
        while PH.length s.p_cache >= cap do
          match Queue.take_opt s.p_order with
          | Some victim ->
              PH.remove s.p_cache victim;
              s.p_evictions <- s.p_evictions + 1;
              Kf_obs.Metrics.incr m_plan_evictions
          | None -> PH.reset s.p_cache
        done
    | None -> ());
    Queue.add psig s.p_order;
    PH.replace s.p_cache psig pe
  end;
  Mutex.unlock s.p_lock

(* Evaluate a whole plan through the two-level cache.  The canonical
   total is summed in canonical group order on every path — including
   the non-incremental [plan_cost] below — so a permuted-but-equal plan
   hitting the plan cache returns a bit-identical total, and the
   [--no-incremental] escape hatch reproduces the same floats.

   [base] is the parent's evaluation: groups the genetic operator left
   untouched are found in [base.pe_costs] and skip the shared cache
   entirely.  With unbounded caches this changes no evaluation counts —
   every group in [base] was itself resolved through the shared cache
   when the parent was evaluated, so the set of cache misses is the same
   with delta evaluation on or off.  (Under a configured
   [cache_capacity], evicted groups are re-evaluated on the full path
   but not on the delta path, so counts may differ; totals never do.) *)
let eval_plan t ?base groups =
  let canon = Plan.canonical_groups groups in
  let psig = Plan.plan_signature canon in
  let s = plan_shard_of t psig in
  Mutex.lock s.p_lock;
  match PH.find_opt s.p_cache psig with
  | Some pe ->
      s.p_hits <- s.p_hits + 1;
      Mutex.unlock s.p_lock;
      Kf_obs.Metrics.incr m_plan_hits;
      pe
  | None ->
      s.p_misses <- s.p_misses + 1;
      Mutex.unlock s.p_lock;
      Kf_obs.Metrics.incr m_plan_misses;
      let costs = Hashtbl.create 16 in
      let total =
        List.fold_left
          (fun acc g ->
            match g with
            | [ k ] -> acc +. t.inputs.Inputs.measured_runtime.(k)
            | _ ->
                let c =
                  match base with
                  | Some b -> (
                      match Hashtbl.find_opt b.pe_costs g with
                      | Some c -> c
                      | None -> (lookup_sig t g).cost)
                  | None -> (lookup_sig t g).cost
                in
                Hashtbl.replace costs g c;
                acc +. c)
          0. canon
      in
      let pe = { pe_total = total; pe_costs = costs } in
      plan_insert s psig pe;
      pe

let plan_cost t groups =
  if t.incremental then (eval_plan t groups).pe_total
  else
    List.fold_left (fun acc g -> acc +. group_cost t g) 0. (Plan.canonical_groups groups)

let original_sum t group = Inputs.original_sum t.inputs group

let evaluations t =
  Mutex.lock t.stats_lock;
  let n = t.evaluations in
  Mutex.unlock t.stats_lock;
  n

(* Resume support: a solver restoring a checkpoint seeds the counter with
   the evaluations already spent before the snapshot, so budgets and
   reported stats span the whole logical run, not just this process. *)
let add_evaluations t n =
  if n < 0 then invalid_arg "Objective.add_evaluations: negative count";
  Mutex.lock t.stats_lock;
  t.evaluations <- t.evaluations + n;
  Mutex.unlock t.stats_lock

let add_faults t (base : fault_stats) =
  Mutex.lock t.stats_lock;
  let f = t.fault_record in
  f.injected <- f.injected + base.injected;
  f.trapped <- f.trapped + base.trapped;
  f.corrupted <- f.corrupted + base.corrupted;
  f.retries <- f.retries + base.retries;
  f.recovered <- f.recovered + base.recovered;
  f.quarantined <- f.quarantined + base.quarantined;
  Mutex.unlock t.stats_lock

let add_cache_stats t ~group ~plan =
  Mutex.lock t.stats_lock;
  (* The size field of a seed is meaningless (the prior table is gone);
     only the flow counters accumulate. *)
  t.base_group <-
    add_stats t.base_group { group with size = 0 };
  t.base_plan <- add_stats t.base_plan { plan with size = 0 };
  Mutex.unlock t.stats_lock

let base_group_stats t =
  Mutex.lock t.stats_lock;
  let s = t.base_group in
  Mutex.unlock t.stats_lock;
  s

let base_plan_stats t =
  Mutex.lock t.stats_lock;
  let s = t.base_plan in
  Mutex.unlock t.stats_lock;
  s

(* Warm cross-request cache: the serve daemon exports one request's
   signature-keyed verdicts and seeds them into the next request's
   objective over the same (program, device, model), so identical
   subproblems hit warm across requests — and, with Snapshot.Cache
   persistence, across daemon restarts.  Only meaningful on the
   incremental path: signatures are canonical there. *)
let export_group_verdicts t =
  if t.incremental then Sig_cache.export t.gcache else []

let seed_group_verdicts t entries =
  if t.incremental then Sig_cache.seed t.gcache entries

let shard_stats t =
  if t.incremental then Sig_cache.shard_stats t.gcache
  else String_cache.shard_stats t.scache

let cache_stats t =
  let live =
    if t.incremental then Sig_cache.stats t.gcache else String_cache.stats t.scache
  in
  add_stats live (base_group_stats t)

let plan_cache_stats t =
  let live =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.p_lock;
        let st =
          {
            hits = s.p_hits;
            misses = s.p_misses;
            evictions = s.p_evictions;
            size = PH.length s.p_cache;
          }
        in
        Mutex.unlock s.p_lock;
        add_stats acc st)
      zero_cache_stats t.plans
  in
  add_stats live (base_plan_stats t)

let cache_hit_rate t =
  let s = cache_stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let eval_time_s t =
  Mutex.lock t.stats_lock;
  let v = t.eval_time_s in
  Mutex.unlock t.stats_lock;
  v

let faults t = t.fault_record

let fault_snapshot t =
  Mutex.lock t.stats_lock;
  let f = copy_faults t.fault_record in
  Mutex.unlock t.stats_lock;
  f

(* Per-candidate, not per-event: a transient failure that recovers on
   retry bumps [trapped] several times for one evaluation, so the event
   counts can exceed the attempt count.  A candidate counts as failed
   exactly when it ended quarantined, which happens at most once per
   distinct group — the rate stays in [0,1]. *)
let fault_rate t =
  let f = fault_snapshot t in
  let evals = evaluations t in
  if evals = 0 then 0. else float_of_int f.quarantined /. float_of_int evals

let pp_faults ppf f =
  Format.fprintf ppf
    "injected %d, trapped %d, corrupted %d, retries %d (recovered %d), quarantined %d"
    f.injected f.trapped f.corrupted f.retries f.recovered f.quarantined

let cache_size t = (cache_stats t).size
