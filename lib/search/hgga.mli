(** Hybrid Grouping Genetic Algorithm (paper §III-C), adapted from
    Falkenauer's HGGA for bin packing.

    Genes are {e groups} (candidate new kernels), not kernel-to-group
    assignments: crossover injects whole groups from one parent into the
    other, eliminates the disrupted groups and repairs the orphans;
    mutation dissolves, ejects from, or merges groups.  All operators act
    through {!Grouping}'s absorbing merge, so every individual in the
    population respects the dependency constraints at all times — the
    adaptation the paper introduces so that "multivariate dependencies of
    original kernels in different sharing sets are not violated".

    The search can run as an {e island model}: the population is sharded
    into [islands] sub-populations that evolve in lockstep on their own
    pre-split generators and periodically exchange elite copies over a
    rotating ring.  Island steps are independent (the shared objective
    cache is lock-striped and its verdicts are pure), so they are fanned
    out over [domains] worker domains — with the determinism contract
    that a {e fixed island count} yields bit-identical results for {e
    any} worker-domain count.

    The stop criterion is the paper's: no improvement of the incumbent for
    a configured number of generations (with a hard generation cap). *)

type params = {
  population_size : int;  (** total, across all islands *)
  max_generations : int;
  stall_generations : int;  (** stop after this many non-improving generations *)
  crossover_rate : float;
  mutation_rate : float;
  tournament_size : int;
  elite : int;  (** incumbents copied unchanged into each generation
                    (per island, capped at the island size - 1) *)
  seed : int;
  domains : int;
      (** worker domains (the paper parallelizes its search with OpenMP;
          here OCaml 5 domains).  With several islands the fan-out is one
          island step per domain; with a single island it is child
          construction that fans out.  Results are identical for any
          domain count. *)
  islands : int;
      (** number of sub-populations (default 1: the classic panmictic
          GA).  The population is split as evenly as possible; each
          island needs at least 2 individuals. *)
  migration_interval : int;
      (** generations between ring migrations (ignored with one island) *)
  migration_size : int;
      (** elite copies each island emits per migration (0 disables
          migration; clamped to the island size - 1) *)
  horizontal : bool;
      (** search the composed-plan space: individuals carry a launch
          composition (packs of concurrently resident planes) on top of
          the vertical partition, and mutation gains pack / flip /
          plane-move operators.  Off by default; [false] takes exactly
          the historical vertical-only code paths, bit for bit.
          Mutually exclusive with a device portfolio. *)
}

val default_params : params
(** population 60, max 400 generations, stall 60, crossover 0.85,
    mutation 0.25, tournament 3, elite 2, seed 42, 1 domain, 1 island,
    migration every 10 generations, 2 migrants. *)

val paper_params : params
(** The paper's Table VI setting: population 100, 2000 generations (stall
    disabled by setting it equal to the cap). *)

type stop_reason =
  | Converged  (** stall criterion met (the paper's stop rule) *)
  | Generation_cap
  | Evaluation_budget
  | Wall_budget
  | Fault_overload
      (** the observed per-evaluation fault rate crossed the budget's
          threshold — the search degraded to best-so-far *)
  | Interrupted
      (** an external [interrupt] callback asked the loop to stop (e.g.
          a draining server); the best-so-far plan is returned and a
          final checkpoint written, exactly as for a budget stop *)

val stop_reason_name : stop_reason -> string

type budget = {
  max_evaluations : int option;  (** stop once this many objective evaluations ran *)
  max_wall_s : float option;  (** stop after this much wall time *)
  max_fault_rate : float option;
      (** stop when {!Objective.fault_rate} reaches this value *)
  min_rate_evals : int;
      (** fault-rate is only trusted after this many evaluations, so a
          single early failure cannot abort the whole search *)
}

val unlimited : budget
(** No limits; [min_rate_evals = 50]. *)

type checkpoint = {
  path : string;  (** snapshot file, overwritten at each checkpoint *)
  every : int;  (** checkpoint every this many generations *)
}

type progress = {
  p_generation : int;
  p_best_cost : float;  (** incumbent cost after this generation *)
  p_stall : int;
  p_evaluations : int;  (** cumulative, resume-inclusive *)
  p_wall_s : float;  (** cumulative, resume-inclusive *)
}
(** One per-generation observation handed to [on_generation] — the live
    progress feed of the serve daemon.  Purely observational. *)

type stats = {
  generations : int;  (** generations actually run *)
  evaluations : int;  (** objective evaluations (Table VI "Total #
                          Evaluations") *)
  wall_time_s : float;
  best_cost : float;
  improvement_history : (int * float) list;
      (** (generation, incumbent cost) at each improvement, oldest first *)
  stop : stop_reason;  (** why the search ended *)
  faults : Objective.fault_stats;
      (** snapshot of the objective's fault accounting (all zero when no
          guard is installed) *)
  group_cache : Objective.cache_stats;
      (** group-cache counters at the end of the run, cumulative across
          resumes (Snapshot v4 persists them) *)
  plan_cache : Objective.cache_stats;
      (** plan-level cache counters (all zero on [--no-incremental]
          runs) *)
}

type result = {
  groups : Grouping.groups;
  plan : Kf_fusion.Plan.t;
  cost : float;
  stats : stats;
}

val solve :
  ?params:params ->
  ?checkpoint:checkpoint ->
  ?resume_from:string ->
  ?budget:budget ->
  ?seed_plans:Grouping.groups list ->
  ?on_generation:(progress -> unit) ->
  ?interrupt:(unit -> bool) ->
  Objective.t ->
  result
(** Runs the GA and returns the best feasible plan found, after the
    profitability cleanup of constraint (1.1).

    {b Warm start.}  [seed_plans] injects in-memory prior plans (e.g. a
    repaired plan from the previous program version in the streaming
    path) into the initial population: the first slots of {e every}
    island hold the seeds (clamped to the island size - 1 so evolution
    always keeps at least one non-seed slot), the remaining slots are
    filled exactly as without seeds.  With [seed_plans = []] the run is
    bit-identical to the historical construction.  Seed plans are
    evaluated through the objective like any other individual: their
    cost contributes cache hits, not pre-seeded counters, so the
    returned per-run [evaluations]/[wall_time_s] count only the work
    this run actually did — seeding must {e not} be combined with
    [resume_from] (which {e does} carry counters forward from the
    snapshot), and doing so raises [Invalid_argument].

    {b Island model.}  With [islands > 1] the population evolves as
    independent sub-populations in lockstep generations.  Every
    [migration_interval] generations each island sends copies of its
    [migration_size] best individuals to the island [offset] positions
    ahead on the ring, replacing the receiver's worst; the offset rotates
    (1, 2, ..., islands-1, 1, ...) with a persisted cursor so repeated
    migrations reach every island.  Each island draws from its own
    generator, split from the master seed in island order, and each
    island step reads only island-local state plus the pure, lock-striped
    objective cache — so for a fixed island count the result (plan,
    improvement history, and evaluation count, cache capacity permitting)
    is bit-identical for any [domains] value.

    [on_generation] observes each completed generation (see {!progress});
    [interrupt] is polled once per generation boundary — returning [true]
    stops the loop with {!Interrupted}, returning the best-so-far plan
    after a forced final checkpoint, so a draining server can retire
    in-flight searches promptly without losing their progress.  Neither
    callback can alter the search result.

    [checkpoint] periodically serializes the full search state (see
    {!Snapshot}) so a killed run can continue, and one final snapshot is
    always written when the loop stops (budget, convergence or cap), so
    at most the in-flight generation is ever lost; [resume_from] restores
    such a snapshot — the resumed search is bit-identical to the
    uninterrupted one for equal [params].  [budget] bounds evaluations,
    wall time and tolerated fault rate; when a budget trips, the
    incumbent plan is returned (degrading to the {!Greedy} baseline, then
    to the identity plan, if no feasible individual exists).  Budgets and
    the returned stats are cumulative across resume: the snapshot's
    evaluation count, wall time and fault record are carried forward, so
    [max_evaluations]/[max_wall_s] cap the whole logical run rather than
    each segment.

    With a [Kf_obs.Trace] sink attached, the solver emits one structured
    ["generation"] event per generation (best/mean cost, population
    diversity, stall, cumulative evaluations, fault counts, whether a
    checkpoint was written), one ["island"] instant per island per
    generation when running multiple islands, a ["migration"] instant per
    ring exchange, an instant per checkpoint write, and a final ["stop"]
    event; with tracing disabled none of the derived quantities are
    computed.

    @raise Invalid_argument if the population is smaller than 2, the
    island/migration parameters are out of range (fewer than 2
    individuals per island, [migration_interval < 1],
    [migration_size < 0], [domains < 1]), or the snapshot does not match
    [params] (different seed, population size, island count, or program).
    @raise Sys_error / [Snapshot.Malformed] on unreadable or corrupt
    snapshot files. *)

type portfolio_result = {
  primary : result;  (** the ordinary single-device search result *)
  devices : Kf_gpu.Device.t array;
      (** primary device first, then the portfolio devices in
          configuration order; [front] cost vectors and
          [best_per_device] are index-aligned with this array *)
  front : Objective.pareto_entry list;
      (** cross-device Pareto front over every plan the search evaluated
          (see {!Objective.pareto_front}) *)
  best_per_device : Objective.pareto_entry array;
      (** for each device, the evaluated plan with the lowest projected
          total on that device (ties resolved to the front's
          deterministic order); [[||]] only if the front is empty *)
}

val solve_portfolio :
  ?params:params ->
  ?checkpoint:checkpoint ->
  ?resume_from:string ->
  ?budget:budget ->
  ?seed_plans:Grouping.groups list ->
  ?on_generation:(progress -> unit) ->
  ?interrupt:(unit -> bool) ->
  Objective.t ->
  portfolio_result
(** Runs {!solve} on the primary device, then reads the portfolio
    results accumulated as a side effect of the search: the selection
    pressure, evaluation counts and returned [primary] plan are
    bit-identical to a plain {!solve} on the same objective — the
    portfolio only adds per-device bookkeeping on cache misses.

    @raise Invalid_argument if the objective was created without a
    [portfolio] (see {!Objective.create}). *)
