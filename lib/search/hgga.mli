(** Hybrid Grouping Genetic Algorithm (paper §III-C), adapted from
    Falkenauer's HGGA for bin packing.

    Genes are {e groups} (candidate new kernels), not kernel-to-group
    assignments: crossover injects whole groups from one parent into the
    other, eliminates the disrupted groups and repairs the orphans;
    mutation dissolves, ejects from, or merges groups.  All operators act
    through {!Grouping}'s absorbing merge, so every individual in the
    population respects the dependency constraints at all times — the
    adaptation the paper introduces so that "multivariate dependencies of
    original kernels in different sharing sets are not violated".

    The stop criterion is the paper's: no improvement of the incumbent for
    a configured number of generations (with a hard generation cap). *)

type params = {
  population_size : int;
  max_generations : int;
  stall_generations : int;  (** stop after this many non-improving generations *)
  crossover_rate : float;
  mutation_rate : float;
  tournament_size : int;
  elite : int;  (** incumbents copied unchanged into each generation *)
  seed : int;
  domains : int;
      (** worker domains for child construction (the paper parallelizes
          its search with OpenMP; here OCaml 5 domains).  Results are
          identical for any domain count — each child draws from its own
          pre-split RNG. *)
}

val default_params : params
(** population 60, max 400 generations, stall 60, crossover 0.85,
    mutation 0.25, tournament 3, elite 2, seed 42, 1 domain. *)

val paper_params : params
(** The paper's Table VI setting: population 100, 2000 generations (stall
    disabled by setting it equal to the cap). *)

type stop_reason =
  | Converged  (** stall criterion met (the paper's stop rule) *)
  | Generation_cap
  | Evaluation_budget
  | Wall_budget
  | Fault_overload
      (** the observed per-evaluation fault rate crossed the budget's
          threshold — the search degraded to best-so-far *)

val stop_reason_name : stop_reason -> string

type budget = {
  max_evaluations : int option;  (** stop once this many objective evaluations ran *)
  max_wall_s : float option;  (** stop after this much wall time *)
  max_fault_rate : float option;
      (** stop when {!Objective.fault_rate} reaches this value *)
  min_rate_evals : int;
      (** fault-rate is only trusted after this many evaluations, so a
          single early failure cannot abort the whole search *)
}

val unlimited : budget
(** No limits; [min_rate_evals = 50]. *)

type checkpoint = {
  path : string;  (** snapshot file, overwritten at each checkpoint *)
  every : int;  (** checkpoint every this many generations *)
}

type stats = {
  generations : int;  (** generations actually run *)
  evaluations : int;  (** objective evaluations (Table VI "Total #
                          Evaluations") *)
  wall_time_s : float;
  best_cost : float;
  improvement_history : (int * float) list;
      (** (generation, incumbent cost) at each improvement, oldest first *)
  stop : stop_reason;  (** why the search ended *)
  faults : Objective.fault_stats;
      (** snapshot of the objective's fault accounting (all zero when no
          guard is installed) *)
}

type result = {
  groups : Grouping.groups;
  plan : Kf_fusion.Plan.t;
  cost : float;
  stats : stats;
}

val solve :
  ?params:params ->
  ?checkpoint:checkpoint ->
  ?resume_from:string ->
  ?budget:budget ->
  Objective.t ->
  result
(** Runs the GA and returns the best feasible plan found, after the
    profitability cleanup of constraint (1.1).

    [checkpoint] periodically serializes the full search state (see
    {!Snapshot}) so a killed run can continue, and one final snapshot is
    always written when the loop stops (budget, convergence or cap), so
    at most the in-flight generation is ever lost; [resume_from] restores
    such a snapshot — the resumed search is bit-identical to the
    uninterrupted one for equal [params].  [budget] bounds evaluations,
    wall time and tolerated fault rate; when a budget trips, the
    incumbent plan is returned (degrading to the {!Greedy} baseline, then
    to the identity plan, if no feasible individual exists).  Budgets and
    the returned stats are cumulative across resume: the snapshot's
    evaluation count, wall time and fault record are carried forward, so
    [max_evaluations]/[max_wall_s] cap the whole logical run rather than
    each segment.

    With a [Kf_obs.Trace] sink attached, the solver emits one structured
    ["generation"] event per generation (best/mean cost, population
    diversity, stall, cumulative evaluations, fault counts, whether a
    checkpoint was written), an instant per checkpoint write, and a final
    ["stop"] event; with tracing disabled none of the derived quantities
    are computed.

    @raise Invalid_argument if the population is smaller than 2 or the
    snapshot does not match [params] (different seed, population size, or
    program).
    @raise Sys_error / [Snapshot.Malformed] on unreadable or corrupt
    snapshot files. *)
