module Plan = Kf_fusion.Plan
module Bitset = Kf_util.Bitset

(* Open-addressing table specialized for int-array keys.  The generic
   [Hashtbl.Make] costs two hash computations per probe (shard selection
   and bucket lookup) plus a pointer chase per bucket entry; this table
   hashes once, rejects mismatches on the stored hash before touching
   key contents, and probes linearly.  Entries are never removed, so no
   tombstones.  Memo probes are the dominant per-call cost of the
   incremental objective's structural operators — this is deliberately
   low-level. *)
module Arr_table = struct
  (* Physical sentinel for an empty slot; no real key is ever this
     array, and slots are tested with [==]. *)
  let no_key : int array = [| min_int |]

  type 'a shard = {
    lock : Mutex.t;
    mutable keys : int array array;
    mutable hashes : int array;
    mutable vals : 'a option array;
    mutable mask : int;  (* capacity - 1, capacity a power of two *)
    mutable count : int;
    mutable hits : int;
    mutable misses : int;
  }

  type 'a t = {
    shards : 'a shard array;
    m_hits : Kf_obs.Metrics.counter;
    m_misses : Kf_obs.Metrics.counter;
  }

  let key_equal (a : int array) (b : int array) =
    Array.length a = Array.length b
    &&
    let n = Array.length a in
    let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
    go 0

  let init_cap = 512

  let create ?(shards = 8) name =
    if shards < 1 then invalid_arg "Struct_memo.table: shards must be positive";
    {
      shards =
        Array.init shards (fun _ ->
            {
              lock = Mutex.create ();
              keys = Array.make init_cap no_key;
              hashes = Array.make init_cap 0;
              vals = Array.make init_cap None;
              mask = init_cap - 1;
              count = 0;
              hits = 0;
              misses = 0;
            });
      m_hits = Kf_obs.Metrics.counter (Printf.sprintf "struct_memo.%s.hits" name);
      m_misses = Kf_obs.Metrics.counter (Printf.sprintf "struct_memo.%s.misses" name);
    }

  (* Caller holds the shard lock.  Returns the slot holding the key, or
     the empty slot where it belongs. *)
  let slot_of s h key =
    let rec go i =
      let idx = (h + i) land s.mask in
      let k = Array.unsafe_get s.keys idx in
      if k == no_key then idx
      else if Array.unsafe_get s.hashes idx = h && key_equal k key then idx
      else go (i + 1)
    in
    go 0

  let grow s =
    let old_keys = s.keys and old_hashes = s.hashes and old_vals = s.vals in
    let cap = 2 * (s.mask + 1) in
    s.keys <- Array.make cap no_key;
    s.hashes <- Array.make cap 0;
    s.vals <- Array.make cap None;
    s.mask <- cap - 1;
    Array.iteri
      (fun i k ->
        if k != no_key then begin
          let idx = slot_of s old_hashes.(i) k in
          s.keys.(idx) <- k;
          s.hashes.(idx) <- old_hashes.(i);
          s.vals.(idx) <- old_vals.(i)
        end)
      old_keys

  let insert_if_absent s h key v =
    let idx = slot_of s h key in
    if s.keys.(idx) == no_key then begin
      s.keys.(idx) <- key;
      s.hashes.(idx) <- h;
      s.vals.(idx) <- Some v;
      s.count <- s.count + 1;
      (* Keep load factor under 1/2 so probe chains stay short. *)
      if 2 * s.count > s.mask then grow s
    end

  let find_or_compute t key compute =
    let h = Plan.signature_hash key in
    let s = t.shards.(h mod Array.length t.shards) in
    Mutex.lock s.lock;
    let idx = slot_of s h key in
    if s.keys.(idx) != no_key then begin
      s.hits <- s.hits + 1;
      let v = s.vals.(idx) in
      Mutex.unlock s.lock;
      Kf_obs.Metrics.incr t.m_hits;
      match v with Some v -> v | None -> assert false
    end
    else begin
      s.misses <- s.misses + 1;
      Mutex.unlock s.lock;
      Kf_obs.Metrics.incr t.m_misses;
      (* Computed outside the lock: structural operators may probe the
         objective cache, and a duplicate concurrent computation of a
         pure function costs only time. *)
      let v = compute () in
      Mutex.lock s.lock;
      insert_if_absent s h key v;
      Mutex.unlock s.lock;
      v
    end

  let stats t =
    Array.fold_left
      (fun (h, m) s ->
        Mutex.lock s.lock;
        let r = (h + s.hits, m + s.misses) in
        Mutex.unlock s.lock;
        r)
      (0, 0) t.shards
end

(* Bitset.hash is a pure function of the set's contents (no per-process
   seed), so shard selection stays immune to [OCAMLRUNPARAM=R]. *)
module Bs_table = struct
  module H = Hashtbl.Make (struct
    type t = Bitset.t

    let equal = Bitset.equal
    let hash = Bitset.hash
  end)

  type shard = {
    lock : Mutex.t;
    tbl : Bitset.t H.t;
    mutable hits : int;
    mutable misses : int;
  }

  type t = {
    shards : shard array;
    m_hits : Kf_obs.Metrics.counter;
    m_misses : Kf_obs.Metrics.counter;
  }

  let create ?(shards = 8) name =
    if shards < 1 then invalid_arg "Struct_memo.table: shards must be positive";
    {
      shards =
        Array.init shards (fun _ ->
            { lock = Mutex.create (); tbl = H.create 256; hits = 0; misses = 0 });
      m_hits = Kf_obs.Metrics.counter (Printf.sprintf "struct_memo.%s.hits" name);
      m_misses = Kf_obs.Metrics.counter (Printf.sprintf "struct_memo.%s.misses" name);
    }

  let stats t =
    Array.fold_left
      (fun (h, m) s ->
        Mutex.lock s.lock;
        let r = (h + s.hits, m + s.misses) in
        Mutex.unlock s.lock;
        r)
      (0, 0) t.shards
end

type 'a table = 'a Arr_table.t

let table ?shards name = Arr_table.create ?shards name
let find_or_compute = Arr_table.find_or_compute
let table_stats = Arr_table.stats

type bitset_table = Bs_table.t

let bitset_table ?shards name = Bs_table.create ?shards name

let find_or_compute_bitset (t : bitset_table) key compute =
  (* Both the key and the cached value are interned as copies: the caller
     owns (and typically mutates) the bitsets on its side of the call. *)
  let s = t.Bs_table.shards.(Bitset.hash key mod Array.length t.Bs_table.shards) in
  Mutex.lock s.lock;
  match Bs_table.H.find_opt s.tbl key with
  | Some v ->
      s.hits <- s.hits + 1;
      Mutex.unlock s.lock;
      Kf_obs.Metrics.incr t.Bs_table.m_hits;
      Bitset.copy v
  | None ->
      s.misses <- s.misses + 1;
      Mutex.unlock s.lock;
      Kf_obs.Metrics.incr t.Bs_table.m_misses;
      let v = compute () in
      Mutex.lock s.lock;
      if not (Bs_table.H.mem s.tbl key) then
        Bs_table.H.replace s.tbl (Bitset.copy key) (Bitset.copy v);
      Mutex.unlock s.lock;
      v

let bitset_table_stats = Bs_table.stats

type memos = {
  merge : int list option table;
  kin : Bitset.t table;
  closure : bitset_table;
  sccs : int list list table;
  refine : int list list table;
  succs : Bitset.t array;
}

let create_memos ~succs () =
  {
    merge = table "merge";
    kin = table "kin";
    closure = bitset_table "closure";
    sccs = table "sccs";
    refine = table "refine";
    succs;
  }

let memo_stats m =
  [
    ("merge", table_stats m.merge);
    ("kin", table_stats m.kin);
    ("closure", bitset_table_stats m.closure);
    ("sccs", table_stats m.sccs);
    ("refine", table_stats m.refine);
  ]

let encoded_length groups = List.fold_left (fun acc g -> acc + List.length g + 1) 0 groups

let write_groups buf i0 groups =
  let i = ref i0 in
  List.iteri
    (fun gi g ->
      if gi > 0 then begin
        buf.(!i) <- -1;
        incr i
      end;
      List.iter
        (fun k ->
          buf.(!i) <- k;
          incr i)
        g)
    groups;
  !i

let encode_groups groups =
  let len = max 0 (encoded_length groups - 1) in
  let buf = Array.make len (-1) in
  ignore (write_groups buf 0 groups : int);
  buf

let encode_groups_with groups extra =
  let glen = max 0 (encoded_length groups - 1) in
  let buf = Array.make (glen + 1 + List.length extra) (-2) in
  let i = write_groups buf 0 groups in
  (* buf.(i) is the [-2] separator. *)
  let j = ref (i + 1) in
  List.iter
    (fun k ->
      buf.(!j) <- k;
      incr j)
    extra;
  buf

(* Probe fast path: the groups flowing through the search are almost
   always already sorted (they come out of [Bitset.to_list] or a
   [normalize]), so canonicalization mostly reuses the input lists
   instead of re-sorting them, and all comparisons are int-specialized.
   Produces exactly [Plan.canonical_groups groups] / [List.sort compare
   extra] (members are distinct by construction — [groups] is a partial
   partition and [extra] a candidate group). *)
let canon_group g = if Plan.is_sorted_strict g then g else List.sort_uniq Int.compare g

let hd_int : int list -> int = function [] -> -1 | k :: _ -> k

let encode_canonical groups extra =
  let ng = List.length groups in
  let garr = Array.make ng [] in
  let glen = ref 0 in
  List.iteri
    (fun i g ->
      let g' = canon_group g in
      garr.(i) <- g';
      glen := !glen + List.length g' + 1)
    groups;
  (* Heads are distinct for disjoint groups; the full-list tie-break only
     keeps the key canonical on degenerate (overlapping) inputs. *)
  Array.sort
    (fun a b ->
      match Int.compare (hd_int a) (hd_int b) with 0 -> compare a b | c -> c)
    garr;
  let extra = if Plan.is_sorted_strict extra then extra else List.sort Int.compare extra in
  let buf = Array.make (max 0 (!glen - 1) + 1 + List.length extra) (-2) in
  let i = ref 0 in
  Array.iteri
    (fun gi g ->
      if gi > 0 then begin
        buf.(!i) <- -1;
        incr i
      end;
      List.iter
        (fun k ->
          buf.(!i) <- k;
          incr i)
        g)
    garr;
  (* buf.(!i) is the [-2] separator. *)
  incr i;
  List.iter
    (fun k ->
      buf.(!i) <- k;
      incr i)
    extra;
  buf
