module Plan = Kf_fusion.Plan
module Bitset = Kf_util.Bitset
module Sigbuf = Plan.Sigbuf

(* Open-addressing table specialized for int-array signature keys.  The
   generic [Hashtbl.Make] costs two hash computations per probe (shard
   selection and bucket lookup) plus a pointer chase per bucket entry;
   this table hashes once, rejects mismatches on the stored hash before
   touching key contents, and probes linearly.  Entries are never
   removed individually, so no tombstones.

   The table itself is single-writer and unsynchronized: concurrency is
   the caller's problem.  The memo [table] below layers the sharing
   discipline on top — a read-only [base] table shared by all domains
   plus one private table per domain, merged into the base at
   generation barriers.  Probes take no lock at all, which is the point:
   memo probes are the dominant per-call cost of the incremental
   objective's structural operators, and the striped-mutex version of
   this module was a scaling bottleneck at domains > 1.

   Probes use a *borrowed* key: the caller encodes the signature into a
   reusable {!Plan.Sigbuf} arena and the probe compares against the
   buffer prefix in place.  An owned copy is extracted only on a miss,
   when the key must outlive the probe. *)
module Sig_tbl = struct
  (* Physical sentinel for an empty slot; no real key is ever this
     array, and slots are tested with [==]. *)
  let no_key : int array = [| min_int |]

  type 'a t = {
    mutable keys : int array array;
    mutable hashes : int array;
    mutable vals : 'a option array;
    mutable mask : int;  (* capacity - 1, capacity a power of two *)
    mutable count : int;
  }

  let create ?(capacity = 512) () =
    let cap = ref 8 in
    while !cap < capacity do
      cap := !cap * 2
    done;
    {
      keys = Array.make !cap no_key;
      hashes = Array.make !cap 0;
      vals = Array.make !cap None;
      mask = !cap - 1;
      count = 0;
    }

  let count t = t.count

  let clear t =
    Array.fill t.keys 0 (Array.length t.keys) no_key;
    Array.fill t.vals 0 (Array.length t.vals) None;
    t.count <- 0

  (* Does the stored key equal the first [len] ints of [buf]? *)
  let key_equal_pre (key : int array) (buf : int array) len =
    Array.length key = len
    &&
    let rec go i =
      i >= len || (Array.unsafe_get key i = Array.unsafe_get buf i && go (i + 1))
    in
    go 0

  (* Slot holding the borrowed key, or the empty slot where it belongs. *)
  let slot_pre t buf len h =
    let rec go i =
      let idx = (h + i) land t.mask in
      let k = Array.unsafe_get t.keys idx in
      if k == no_key then idx
      else if Array.unsafe_get t.hashes idx = h && key_equal_pre k buf len then idx
      else go (i + 1)
    in
    go 0

  let find_pre t ~buf ~len ~hash =
    let idx = slot_pre t buf len hash in
    if t.keys.(idx) == no_key then None else t.vals.(idx)

  let mem_pre t ~buf ~len ~hash =
    let idx = slot_pre t buf len hash in
    t.keys.(idx) != no_key

  let grow t =
    let old_keys = t.keys and old_hashes = t.hashes and old_vals = t.vals in
    let cap = 2 * (t.mask + 1) in
    t.keys <- Array.make cap no_key;
    t.hashes <- Array.make cap 0;
    t.vals <- Array.make cap None;
    t.mask <- cap - 1;
    Array.iteri
      (fun i k ->
        if k != no_key then begin
          let idx = slot_pre t k (Array.length k) old_hashes.(i) in
          t.keys.(idx) <- k;
          t.hashes.(idx) <- old_hashes.(i);
          t.vals.(idx) <- old_vals.(i)
        end)
      old_keys

  (* Insert an owned key (or replace the value of an equal existing
     key — structural memo values for equal keys are equal, so replace
     is as good as keep). *)
  let add t key ~hash v =
    let idx = slot_pre t key (Array.length key) hash in
    if t.keys.(idx) == no_key then begin
      t.keys.(idx) <- key;
      t.hashes.(idx) <- hash;
      t.vals.(idx) <- Some v;
      t.count <- t.count + 1;
      (* Keep load factor under 1/2 so probe chains stay short. *)
      if 2 * t.count > t.mask then grow t
    end
    else t.vals.(idx) <- Some v

  let iter f t =
    Array.iteri
      (fun i k ->
        if k != no_key then
          match t.vals.(i) with
          | Some v -> f k ~hash:t.hashes.(i) v
          | None -> assert false)
      t.keys
end

(* A memo table: one read-only [base] shared across domains plus one
   private single-writer table per domain that has ever probed it.
   Probes are lock-free — the base is written only at quiescent merge
   points (all workers parked at the pool barrier, whose mutex handshake
   publishes the writes), and each local is touched only by its owning
   domain.  The registry of locals is a cons-list keyed by domain id:
   readers walk an immutable snapshot (their own entry is always visible
   because they appended it), writers cons under [reg_lock] — a
   once-per-domain cost.

   Merging a local into the base inserts only keys the base does not
   already have, so a key computed concurrently by several domains lands
   once.  Values are pure functions of their keys, so which domain's
   copy survives is unobservable. *)

type 'a local = {
  l_tbl : 'a Sig_tbl.t;
  l_sb : Sigbuf.t;
  mutable l_hits : int;
  mutable l_misses : int;
  mutable l_pub_hits : int;  (* already flushed to the metrics registry *)
  mutable l_pub_misses : int;
}

type 'a table = {
  base : 'a Sig_tbl.t;
  mutable locals : (int * 'a local) list;
  reg_lock : Mutex.t;
  m_hits : Kf_obs.Metrics.counter;
  m_misses : Kf_obs.Metrics.counter;
}

let table ?shards:_ name =
  {
    base = Sig_tbl.create ();
    locals = [];
    reg_lock = Mutex.create ();
    m_hits = Kf_obs.Metrics.counter (Printf.sprintf "struct_memo.%s.hits" name);
    m_misses = Kf_obs.Metrics.counter (Printf.sprintf "struct_memo.%s.misses" name);
  }

let local_of t =
  let did = (Domain.self () :> int) in
  let rec find = function
    | [] -> None
    | (d, (l : _ local)) :: tl -> if d = did then Some l else find tl
  in
  match find t.locals with
  | Some l -> l
  | None ->
      let l =
        {
          l_tbl = Sig_tbl.create ();
          l_sb = Sigbuf.create ();
          l_hits = 0;
          l_misses = 0;
          l_pub_hits = 0;
          l_pub_misses = 0;
        }
      in
      Mutex.lock t.reg_lock;
      t.locals <- (did, l) :: t.locals;
      Mutex.unlock t.reg_lock;
      l

(* The caller has encoded the key into [l.l_sb].  Probe base then local;
   on a miss, extract the owned key *before* running [compute] — the
   computation may probe other memos through the same domain's sigbufs,
   and for self-recursive operators even this one. *)
let probe t (l : _ local) compute =
  let buf = Sigbuf.unsafe_buf l.l_sb
  and len = Sigbuf.length l.l_sb
  and hash = Sigbuf.hash l.l_sb in
  match Sig_tbl.find_pre t.base ~buf ~len ~hash with
  | Some v ->
      l.l_hits <- l.l_hits + 1;
      v
  | None -> (
      match Sig_tbl.find_pre l.l_tbl ~buf ~len ~hash with
      | Some v ->
          l.l_hits <- l.l_hits + 1;
          v
      | None ->
          l.l_misses <- l.l_misses + 1;
          let key = Sigbuf.extract l.l_sb in
          let v = compute () in
          Sig_tbl.add l.l_tbl key ~hash v;
          v)

let find_group t group compute =
  let l = local_of t in
  Sigbuf.encode_group l.l_sb group;
  probe t l compute

let find_exact t groups compute =
  let l = local_of t in
  Sigbuf.encode_groups_exact l.l_sb groups;
  probe t l compute

let find_exact_with t groups extra compute =
  let l = local_of t in
  Sigbuf.encode_groups_exact l.l_sb groups;
  Sigbuf.append_extra l.l_sb extra;
  probe t l compute

let find_canonical t groups extra compute =
  let l = local_of t in
  Sigbuf.encode_plan l.l_sb groups;
  let extra =
    if Plan.is_sorted_strict extra then extra else List.sort Int.compare extra
  in
  Sigbuf.append_extra l.l_sb extra;
  probe t l compute

let merge_table t =
  List.iter
    (fun (_, (l : _ local)) ->
      Sig_tbl.iter
        (fun key ~hash v ->
          if not (Sig_tbl.mem_pre t.base ~buf:key ~len:(Array.length key) ~hash)
          then Sig_tbl.add t.base key ~hash v)
        l.l_tbl;
      Sig_tbl.clear l.l_tbl;
      (* Flush probe counters to the (atomic) metrics registry here, at
         the barrier, instead of contending on it per probe. *)
      Kf_obs.Metrics.incr ~by:(l.l_hits - l.l_pub_hits) t.m_hits;
      Kf_obs.Metrics.incr ~by:(l.l_misses - l.l_pub_misses) t.m_misses;
      l.l_pub_hits <- l.l_hits;
      l.l_pub_misses <- l.l_misses)
    t.locals

let table_stats t =
  List.fold_left
    (fun (h, m) (_, (l : _ local)) -> (h + l.l_hits, m + l.l_misses))
    (0, 0) t.locals

(* Bitset-keyed memo, same base + per-domain-local discipline.
   [Bitset.hash] is a pure function of the set's contents (no
   per-process seed), so nothing here depends on [OCAMLRUNPARAM=R]. *)
module Bs_table = struct
  module H = Hashtbl.Make (struct
    type t = Bitset.t

    let equal = Bitset.equal
    let hash = Bitset.hash
  end)

  type local = {
    b_tbl : Bitset.t H.t;
    mutable b_hits : int;
    mutable b_misses : int;
    mutable b_pub_hits : int;
    mutable b_pub_misses : int;
  }

  type t = {
    base : Bitset.t H.t;
    mutable locals : (int * local) list;
    reg_lock : Mutex.t;
    m_hits : Kf_obs.Metrics.counter;
    m_misses : Kf_obs.Metrics.counter;
  }
end

type bitset_table = Bs_table.t

let bitset_table ?shards:_ name =
  {
    Bs_table.base = Bs_table.H.create 256;
    locals = [];
    reg_lock = Mutex.create ();
    m_hits = Kf_obs.Metrics.counter (Printf.sprintf "struct_memo.%s.hits" name);
    m_misses = Kf_obs.Metrics.counter (Printf.sprintf "struct_memo.%s.misses" name);
  }

let bs_local_of (t : bitset_table) =
  let did = (Domain.self () :> int) in
  let rec find = function
    | [] -> None
    | (d, (l : Bs_table.local)) :: tl -> if d = did then Some l else find tl
  in
  match find t.Bs_table.locals with
  | Some l -> l
  | None ->
      let l =
        {
          Bs_table.b_tbl = Bs_table.H.create 64;
          b_hits = 0;
          b_misses = 0;
          b_pub_hits = 0;
          b_pub_misses = 0;
        }
      in
      Mutex.lock t.Bs_table.reg_lock;
      t.Bs_table.locals <- (did, l) :: t.Bs_table.locals;
      Mutex.unlock t.Bs_table.reg_lock;
      l

let find_or_compute_bitset (t : bitset_table) key compute =
  (* Both the key and the cached value are interned as copies: the caller
     owns (and typically mutates) the bitsets on its side of the call. *)
  let l = bs_local_of t in
  match Bs_table.H.find_opt t.Bs_table.base key with
  | Some v ->
      l.Bs_table.b_hits <- l.Bs_table.b_hits + 1;
      Bitset.copy v
  | None -> (
      match Bs_table.H.find_opt l.Bs_table.b_tbl key with
      | Some v ->
          l.Bs_table.b_hits <- l.Bs_table.b_hits + 1;
          Bitset.copy v
      | None ->
          l.Bs_table.b_misses <- l.Bs_table.b_misses + 1;
          let owned = Bitset.copy key in
          let v = compute () in
          Bs_table.H.replace l.Bs_table.b_tbl owned (Bitset.copy v);
          v)

let merge_bitset_table (t : bitset_table) =
  List.iter
    (fun (_, (l : Bs_table.local)) ->
      Bs_table.H.iter
        (fun k v ->
          if not (Bs_table.H.mem t.Bs_table.base k) then
            Bs_table.H.replace t.Bs_table.base k v)
        l.Bs_table.b_tbl;
      Bs_table.H.reset l.Bs_table.b_tbl;
      Kf_obs.Metrics.incr
        ~by:(l.Bs_table.b_hits - l.Bs_table.b_pub_hits)
        t.Bs_table.m_hits;
      Kf_obs.Metrics.incr
        ~by:(l.Bs_table.b_misses - l.Bs_table.b_pub_misses)
        t.Bs_table.m_misses;
      l.Bs_table.b_pub_hits <- l.Bs_table.b_hits;
      l.Bs_table.b_pub_misses <- l.Bs_table.b_misses)
    t.Bs_table.locals

let bitset_table_stats (t : bitset_table) =
  List.fold_left
    (fun (h, m) (_, (l : Bs_table.local)) ->
      (h + l.Bs_table.b_hits, m + l.Bs_table.b_misses))
    (0, 0) t.Bs_table.locals

type memos = {
  merge : int list option table;
  kin : Bitset.t table;
  closure : bitset_table;
  sccs : int list list table;
  refine : int list list table;
  succs : Bitset.t array;
}

let create_memos ~succs () =
  {
    merge = table "merge";
    kin = table "kin";
    closure = bitset_table "closure";
    sccs = table "sccs";
    refine = table "refine";
    succs;
  }

let merge_memos m =
  merge_table m.merge;
  merge_table m.kin;
  merge_bitset_table m.closure;
  merge_table m.sccs;
  merge_table m.refine

let memo_stats m =
  [
    ("merge", table_stats m.merge);
    ("kin", table_stats m.kin);
    ("closure", bitset_table_stats m.closure);
    ("sccs", table_stats m.sccs);
    ("refine", table_stats m.refine);
  ]
