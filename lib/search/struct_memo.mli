(** Memoization of the search's pure structural operators.

    The grouping operators (absorbing merges, kinship adjacency, path
    closures, condensation SCCs) are pure functions of the execution
    order, the metadata and their arguments — and profiling shows the GA
    re-asks the same structural questions constantly (a quarter to a half
    of all calls are exact repeats).  Each table below memoizes one
    operator.  Keys are canonical (order-normalized) only where the
    memoized {e value} is provably independent of argument order — the
    absorbed member set of a merge, a group's kinship neighbor set; the
    order-sensitive parts (the [rest] list a merge returns, the filtered
    candidate list kinship adjacency returns) are recomputed from the
    live argument on every hit, because downstream RNG draws
    ([Rng.choose] over candidate lists) depend on input order.  Operators
    whose whole result is order-sensitive ([local_refine], SCCs of a
    group array) keep exact-order keys.

    Keys are flat int arrays hashed with the same fixed polynomial as
    the objective's cache striping ({!Kf_fusion.Plan.signature_hash}),
    so shard selection is immune to [OCAMLRUNPARAM=R].  Values are
    immutable, so a memo hit returns the exact value the computation
    would have produced — memoization is invisible to the search except
    in time. *)

type 'a table
(** A sharded memo table from int-array signatures to ['a]. *)

val table : ?shards:int -> string -> 'a table
(** [table name] creates an empty memo table; [name] labels its
    process-wide metrics counters ([struct_memo.<name>.hits] /
    [.misses]).  Default 8 shards.
    @raise Invalid_argument if [shards < 1]. *)

val find_or_compute : 'a table -> int array -> (unit -> 'a) -> 'a
(** Return the memoized value for the key, computing and caching it on a
    miss.  The computation runs outside the shard lock (it may itself
    probe the objective cache); concurrent duplicate misses may compute
    the value more than once, which is harmless for pure computations —
    both domains produce the same value. *)

val table_stats : 'a table -> int * int
(** [(hits, misses)] accumulated over all shards. *)

type bitset_table
(** A sharded memo table from bitsets to bitsets, striped by
    {!Kf_util.Bitset.hash} (a pure content hash, so striping is immune to
    [OCAMLRUNPARAM=R]).  Avoids the list/array round-trips an int-array
    key would cost on the hottest memo (path closures). *)

val bitset_table : ?shards:int -> string -> bitset_table
(** Like {!table}.
    @raise Invalid_argument if [shards < 1]. *)

val find_or_compute_bitset : bitset_table -> Kf_util.Bitset.t -> (unit -> Kf_util.Bitset.t) -> Kf_util.Bitset.t
(** Like {!find_or_compute}, but both key and value are interned as
    defensive copies and every hit returns a fresh copy — callers own
    (and may mutate) the bitsets on their side of the call. *)

val bitset_table_stats : bitset_table -> int * int

type memos = {
  merge : int list option table;
      (** the absorbed member set (sorted) of [Grouping.absorbing_merge],
          or [None] for an infeasible merge — keyed canonically by
          (other groups, seed); the order-preserving [rest] is rebuilt
          from the live argument on each hit *)
  kin : Kf_util.Bitset.t table;
      (** a group's kinship neighbor set, keyed by the sorted group; the
          cached bitset is read-only *)
  closure : bitset_table;
      (** [Dag.path_closure] keyed by the seed set itself *)
  sccs : int list list table;
      (** [Grouping.condensation_sccs] keyed by the group array *)
  refine : int list list table;
      (** [Grouping.local_refine] keyed by the exact-order input plus the
          pass bound — the per-generation champion rarely changes, so
          repeat refinements are hits *)
  succs : Kf_util.Bitset.t array;
      (** per-kernel direct-successor bitsets of the (fixed) execution
          DAG, precomputed once — the group-level cycle check on memo
          misses runs on these instead of rebuilding adjacency tables *)
}
(** The bundle of operator memos an incremental objective owns. *)

val create_memos : succs:Kf_util.Bitset.t array -> unit -> memos

val memo_stats : memos -> (string * (int * int)) list
(** [(name, (hits, misses))] per table, in a fixed order. *)

val encode_groups : int list list -> int array
(** Exact-order signature of a group list: members in given order,
    groups separated by [-1]. *)

val encode_groups_with : int list list -> int list -> int array
(** [(groups, extra)] signature: {!encode_groups} of [groups], then a
    [-2] separator, then [extra] — for operators keyed by a group list
    plus one distinguished group (kernel ids are non-negative, so both
    separators are unambiguous). *)

val encode_canonical : int list list -> int list -> int array
(** Like {!encode_groups_with} but order-normalized on both components
    (canonical groups, sorted extra): permuted-but-equal arguments
    collide.  Only for operators whose memoized value is order-free. *)
