(** Memoization of the search's pure structural operators.

    The grouping operators (absorbing merges, kinship adjacency, path
    closures, condensation SCCs) are pure functions of the execution
    order, the metadata and their arguments — and profiling shows the GA
    re-asks the same structural questions constantly (a quarter to a half
    of all calls are exact repeats).  Each table below memoizes one
    operator.  Keys are canonical (order-normalized) only where the
    memoized {e value} is provably independent of argument order — the
    absorbed member set of a merge, a group's kinship neighbor set; the
    order-sensitive parts (the [rest] list a merge returns, the filtered
    candidate list kinship adjacency returns) are recomputed from the
    live argument on every hit, because downstream RNG draws
    ([Rng.choose] over candidate lists) depend on input order.  Operators
    whose whole result is order-sensitive ([local_refine], SCCs of a
    group array) keep exact-order keys.

    Sharing discipline (data-oriented, replacing the former striped
    mutexes): each memo is a read-only {e base} table shared by every
    domain plus one private single-writer table per domain that has
    probed it.  Probes take no lock at all — the base is mutated only at
    quiescent merge points ({!merge_memos}, called while all workers are
    parked at the pool's generation barrier, whose mutex handshake
    publishes the writes), and a domain's private table is touched only
    by its owner.  Keys are flat int arrays encoded into a per-domain
    {!Kf_fusion.Plan.Sigbuf} arena and hashed with the fixed polynomial
    {!Kf_fusion.Plan.signature_hash} (immune to [OCAMLRUNPARAM=R]);
    probes compare against the arena prefix in place ({e borrowed} keys)
    and copy the key out only on a miss.  Values are immutable and pure
    functions of their keys, so a key computed concurrently by several
    domains merges into the base once and which domain's value survives
    is unobservable — memoization stays invisible to the search except
    in time. *)

(** The underlying unsynchronized open-addressing table (hash-once,
    stored-hash rejection, linear probing, no tombstones), exposed for
    single-owner uses such as the per-island offspring dedup set.  Not
    thread-safe. *)
module Sig_tbl : sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** [capacity] is rounded up to a power of two (default 512). *)

  val count : 'a t -> int
  val clear : 'a t -> unit

  val find_pre : 'a t -> buf:int array -> len:int -> hash:int -> 'a option
  (** Probe with the borrowed key [buf.(0 .. len-1)]; [hash] must be
      {!Kf_fusion.Plan.signature_hash} of that prefix (e.g.
      {!Kf_fusion.Plan.Sigbuf.hash}). *)

  val mem_pre : 'a t -> buf:int array -> len:int -> hash:int -> bool

  val add : 'a t -> int array -> hash:int -> 'a -> unit
  (** Insert an {e owned} key (replaces the value if the key exists). *)

  val iter : (int array -> hash:int -> 'a -> unit) -> 'a t -> unit
end

type 'a table
(** A memo table from int-array signatures to ['a] with the base +
    per-domain-locals sharing discipline. *)

val table : ?shards:int -> string -> 'a table
(** [table name] creates an empty memo table; [name] labels its
    process-wide metrics counters ([struct_memo.<name>.hits] /
    [.misses], flushed at merge points rather than per probe).
    [?shards] is accepted for compatibility and ignored — probes are
    lock-free, there are no stripes anymore. *)

val find_group : 'a table -> int list -> (unit -> 'a) -> 'a
(** Probe keyed by one group's canonical signature
    ({!Kf_fusion.Plan.group_signature}).  On a miss the computation runs
    unlocked and the result is cached in the calling domain's private
    table; concurrent duplicate misses may compute the value more than
    once, which is harmless for pure computations. *)

val find_exact : 'a table -> int list list -> (unit -> 'a) -> 'a
(** Probe keyed by the groups in the given order ([-1]-separated) — for
    order-sensitive operators. *)

val find_exact_with : 'a table -> int list list -> int list -> (unit -> 'a) -> 'a
(** Like {!find_exact} with trailing scalar arguments appended to the
    key after a [-2] separator. *)

val find_canonical : 'a table -> int list list -> int list -> (unit -> 'a) -> 'a
(** Probe keyed by the canonical partition signature plus the sorted
    extra members — permuted-but-equal arguments collide.  Only for
    operators whose memoized value is order-free. *)

val merge_table : 'a table -> unit
(** Fold every domain's private entries into the shared base
    (insert-if-absent) and clear the private tables.  Must only be
    called at a quiescent point — no concurrent probes. *)

val table_stats : 'a table -> int * int
(** [(hits, misses)] accumulated over all domains, live. *)

type bitset_table
(** A memo table from bitsets to bitsets with the same sharing
    discipline ({!Kf_util.Bitset.hash} is a pure content hash, so
    nothing depends on [OCAMLRUNPARAM=R]).  Avoids the list/array
    round-trips an int-array key would cost on the hottest memo (path
    closures). *)

val bitset_table : ?shards:int -> string -> bitset_table
(** Like {!table}; [?shards] is likewise ignored. *)

val find_or_compute_bitset : bitset_table -> Kf_util.Bitset.t -> (unit -> Kf_util.Bitset.t) -> Kf_util.Bitset.t
(** Like {!find_group} for bitsets, but both key and value are interned
    as defensive copies and every hit returns a fresh copy — callers own
    (and may mutate) the bitsets on their side of the call. *)

val merge_bitset_table : bitset_table -> unit
val bitset_table_stats : bitset_table -> int * int

type memos = {
  merge : int list option table;
      (** the absorbed member set (sorted) of [Grouping.absorbing_merge],
          or [None] for an infeasible merge — keyed canonically by
          (other groups, seed); the order-preserving [rest] is rebuilt
          from the live argument on each hit *)
  kin : Kf_util.Bitset.t table;
      (** a group's kinship neighbor set, keyed by the sorted group; the
          cached bitset is read-only *)
  closure : bitset_table;
      (** [Dag.path_closure] keyed by the seed set itself *)
  sccs : int list list table;
      (** [Grouping.condensation_sccs] keyed by the group array *)
  refine : int list list table;
      (** [Grouping.local_refine] keyed by the exact-order input plus the
          pass bound — the per-generation champion rarely changes, so
          repeat refinements are hits *)
  succs : Kf_util.Bitset.t array;
      (** per-kernel direct-successor bitsets of the (fixed) execution
          DAG, precomputed once — the group-level cycle check on memo
          misses runs on these instead of rebuilding adjacency tables *)
}
(** The bundle of operator memos an incremental objective owns. *)

val create_memos : succs:Kf_util.Bitset.t array -> unit -> memos

val merge_memos : memos -> unit
(** {!merge_table} / {!merge_bitset_table} over every memo.  Call at
    generation barriers. *)

val memo_stats : memos -> (string * (int * int)) list
(** [(name, (hits, misses))] per table, in a fixed order. *)
