module Device = Kf_gpu.Device
module Program = Kf_ir.Program
module Metadata = Kf_ir.Metadata
module Datadep = Kf_graph.Datadep
module Exec_order = Kf_graph.Exec_order
module Measure = Kf_sim.Measure
module Inputs = Kf_model.Inputs
module Objective = Kf_search.Objective
module Hgga = Kf_search.Hgga
module Plan = Kf_fusion.Plan
module Fused_program = Kf_fusion.Fused_program
module Error = Kf_robust.Error
module Guard = Kf_robust.Guard
module Inject = Kf_robust.Inject
module Obs = Kf_obs.Trace

type context = {
  device : Device.t;
  program : Program.t;
  meta : Metadata.t;
  datadep : Datadep.t;
  exec : Exec_order.t;
  measured : Measure.result array;
  inputs : Inputs.t;
  original_runtime : float;
}

let phase_args program =
  if Obs.enabled () then [ ("workload", Kf_obs.Json.Str program.Program.name) ] else []

let prepare ?(sync_points = []) ~device program =
  let args = phase_args program in
  let meta = Obs.span ~cat:"pipeline" ~args "build" (fun () -> Metadata.build program) in
  let datadep, exec =
    Obs.span ~cat:"pipeline" ~args "analyze" (fun () ->
        let datadep = Datadep.build program in
        (datadep, Exec_order.build ~sync_points datadep))
  in
  let measured =
    Obs.span ~cat:"pipeline" ~args "measure" (fun () ->
        Measure.program_results ~device program)
  in
  let measured_runtime = Array.map (fun r -> r.Measure.runtime_s) measured in
  let inputs = Inputs.make ~device ~meta ~exec ~measured_runtime in
  {
    device;
    program;
    meta;
    datadep;
    exec;
    measured;
    inputs;
    original_runtime = Array.fold_left ( +. ) 0. measured_runtime;
  }

let objective ?model ?guard ?faults ?domains ?incremental ?arena ?portfolio ctx =
  Objective.create ?model ?guard ?faults ?domains ?incremental ?arena ?portfolio ctx.inputs

(* Extra-device inputs for a portfolio: re-measure the original kernels
   on each device, but share the primary context's metadata and graphs
   (the arena requires all portfolio inputs over the same program
   value). *)
let portfolio_inputs ctx devices =
  List.map
    (fun d ->
      let measured = Measure.program_results ~device:d ctx.program in
      let measured_runtime = Array.map (fun r -> r.Measure.runtime_s) measured in
      Inputs.make ~device:d ~meta:ctx.meta ~exec:ctx.exec ~measured_runtime)
    devices

type outcome = {
  context : context;
  search : Hgga.result;
  fused : Fused_program.t;
  fused_measured : (Fused_program.unit_ * Measure.result) list;
  fused_runtime : float;
  speedup : float;
}

(* A degenerate fused measurement (zero, negative, NaN or infinite total)
   must not become an inf/NaN speedup that poisons reports and geomeans
   downstream; 0 is the explicit "invalid measurement" marker. *)
let safe_speedup ~original ~fused =
  if Float.is_finite fused && fused > 0. && Float.is_finite original && original >= 0. then
    original /. fused
  else 0.

let apply ctx (search : Hgga.result) =
  let args = phase_args ctx.program in
  let fused, fused_measured =
    Obs.span ~cat:"pipeline" ~args "apply" (fun () ->
        let fused =
          Fused_program.build ~device:ctx.device ~meta:ctx.meta ~exec:ctx.exec
            search.Hgga.plan
        in
        (fused, Measure.fused_program_results ~device:ctx.device fused))
  in
  let fused_runtime =
    List.fold_left (fun acc (_, r) -> acc +. r.Measure.runtime_s) 0. fused_measured
  in
  {
    context = ctx;
    search;
    fused;
    fused_measured;
    fused_runtime;
    speedup = safe_speedup ~original:ctx.original_runtime ~fused:fused_runtime;
  }

let run ?params ?model ?sync_points ?incremental ?arena ~device program =
  let ctx = prepare ?sync_points ~device program in
  let domains = Option.map (fun (p : Hgga.params) -> p.Hgga.domains) params in
  let obj = objective ?model ?domains ?incremental ?arena ctx in
  let search =
    Obs.span ~cat:"pipeline" ~args:(phase_args program) "search" (fun () ->
        Hgga.solve ?params obj)
  in
  apply ctx search

type portfolio_outcome = {
  outcome : outcome;
  portfolio : Hgga.portfolio_result;
}

let portfolio ?params ?model ?sync_points ?incremental ?arena ~devices ~device program =
  let ctx = prepare ?sync_points ~device program in
  let extras =
    Obs.span ~cat:"pipeline" ~args:(phase_args program) "measure-portfolio" (fun () ->
        portfolio_inputs ctx devices)
  in
  let domains = Option.map (fun (p : Hgga.params) -> p.Hgga.domains) params in
  let obj = objective ?model ?domains ?incremental ?arena ~portfolio:extras ctx in
  let result =
    Obs.span ~cat:"pipeline" ~args:(phase_args program) "search" (fun () ->
        Hgga.solve_portfolio ?params obj)
  in
  { outcome = apply ctx result.Hgga.primary; portfolio = result }

(* --- streaming glue --- *)

(* Kf_search cannot see the simulator, so Stream takes the
   prepare-and-measure step as a callback; this is that callback. *)
let stream_env ?model ?sync_points ?incremental ?arena ~device () =
 fun program -> objective ?model ?incremental ?arena (prepare ?sync_points ~device program)

let stream ?config ?model ?sync_points ?incremental ?arena ~device program =
  Kf_search.Stream.create ?config
    (stream_env ?model ?sync_points ?incremental ?arena ~device ())
    program

(* --- fault-tolerant entry points --- *)

let prepare_safe ?sync_points ~device program =
  match prepare ?sync_points ~device program with
  | ctx -> Ok ctx
  | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
  | exception e -> Error (Error.classify ~stage:Error.Prepare e)

let identity_result ctx obj (search : Hgga.result) =
  let n = Program.num_kernels ctx.program in
  let groups = List.init n (fun k -> [ k ]) in
  { search with Hgga.groups; plan = Plan.identity n; cost = Objective.plan_cost obj groups }

(* Plans crossing the search/apply boundary are re-validated against the
   full constraint set; a violating plan is degraded rather than trusted —
   first by dissolving the offending groups, then (if the plan as a whole
   is broken) all the way to the identity plan, which is valid by
   construction. *)
let validated_result ctx obj (search : Hgga.result) =
  let validate plan = Plan.validate ~device:ctx.device ~meta:ctx.meta ~exec:ctx.exec plan in
  match validate search.Hgga.plan with
  | [] -> search
  | violations ->
      let n = Program.num_kernels ctx.program in
      let bad = List.filter_map Plan.violation_group violations in
      let comps_only =
        List.for_all (function Plan.Planes_dependent _ -> true | _ -> false) violations
      in
      let whole_plan_broken =
        List.exists (fun v -> Plan.violation_group v = None) violations
      in
      let degraded =
        if comps_only then begin
          (* Only the launch composition is illegal; the vertical
             partition underneath validated clean, so rebuild it with
             every group in its own launch instead of degrading all the
             way to identity. *)
          let groups = Plan.groups search.Hgga.plan in
          let plan = Plan.of_groups ~n groups in
          { search with Hgga.groups; plan; cost = Objective.plan_cost obj groups }
        end
        else if whole_plan_broken then identity_result ctx obj search
        else begin
          let groups =
            List.concat_map
              (fun g -> if List.mem g bad then List.map (fun k -> [ k ]) g else [ g ])
              (Plan.groups search.Hgga.plan)
          in
          let plan = Plan.of_groups ~n groups in
          { search with Hgga.groups; plan; cost = Objective.plan_cost obj groups }
        end
      in
      if validate degraded.Hgga.plan = [] then degraded else identity_result ctx obj search

let search_safe ?params ?checkpoint ?resume_from ?budget ?seed_plans ?on_generation
    ?interrupt ctx obj =
  match
    Obs.span ~cat:"pipeline" ~args:(phase_args ctx.program) "search" (fun () ->
        Hgga.solve ?params ?checkpoint ?resume_from ?budget ?seed_plans ?on_generation
          ?interrupt obj)
  with
  | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
  | exception e -> Error (Error.classify ~stage:Error.Search e)
  | search -> Ok (validated_result ctx obj search)

let apply_safe ctx obj search =
  match apply ctx search with
  | outcome -> Ok outcome
  | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
  | exception _ -> begin
      (* The searched plan failed to build or measure; degrade to the
         (always measurable) unfused program rather than lose the whole
         run. *)
      match apply ctx (identity_result ctx obj search) with
      | outcome -> Ok outcome
      | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
      | exception e -> Error (Error.classify ~stage:Error.Apply e)
    end

let run_safe ?params ?model ?sync_points ?incremental ?arena ?guard ?inject ?checkpoint
    ?resume_from ?budget ~device program =
  match prepare_safe ?sync_points ~device program with
  | Error e -> Error e
  | Ok ctx -> begin
      let faults = Objective.zero_faults () in
      let injector = Option.map (fun cfg -> Inject.create ~faults cfg) inject in
      let guard = Guard.guarded ?config:guard ?inject:injector faults in
      let domains = Option.map (fun (p : Hgga.params) -> p.Hgga.domains) params in
      let obj = objective ?model ?domains ?incremental ?arena ~guard ~faults ctx in
      match search_safe ?params ?checkpoint ?resume_from ?budget ctx obj with
      | Error e -> Error e
      | Ok search -> apply_safe ctx obj search
    end

let pp_outcome ppf o =
  let n = Program.num_kernels o.context.program in
  let plan = o.search.Hgga.plan in
  (* [num_units] counts launches (horizontal packs collapse to one);
     it equals [num_groups] on a vertical plan, so vertical output is
     byte-identical to the historical format. *)
  let horizontal =
    let packs = Plan.horizontal_pack_count plan in
    if packs = 0 then ""
    else
      Format.asprintf " [%d horizontal, %d planes]" packs (Plan.horizontal_plane_count plan)
  in
  Format.fprintf ppf
    "@[<v>%s on %s:@,\
     %d original kernels -> %d units%s (%d fused kernels covering %d originals)@,\
     search: %d generations, %d evaluations, %.2f s@,\
     runtime: %.3f ms -> %.3f ms  speedup %.2fx@]"
    o.context.program.Program.name o.context.device.Device.name n
    (Plan.num_units plan) horizontal (Plan.fused_kernel_count plan)
    (Plan.fused_member_count plan)
    o.search.Hgga.stats.Hgga.generations o.search.Hgga.stats.Hgga.evaluations
    o.search.Hgga.stats.Hgga.wall_time_s
    (o.context.original_runtime *. 1e3)
    (o.fused_runtime *. 1e3) o.speedup
