module Device = Kf_gpu.Device
module Program = Kf_ir.Program
module Grid = Kf_ir.Grid
module Datadep = Kf_graph.Datadep
module Exec_order = Kf_graph.Exec_order
module Traffic = Kf_graph.Traffic
module Fused = Kf_fusion.Fused
module Fused_program = Kf_fusion.Fused_program
module Plan = Kf_fusion.Plan
module Measure = Kf_sim.Measure
module Inputs = Kf_model.Inputs
module Projection = Kf_model.Projection
module FE = Kf_model.Fusion_efficiency
module Hgga = Kf_search.Hgga

let pf = Printf.bprintf

let render ?(verify = false) (o : Pipeline.outcome) =
  let buf = Buffer.create 8192 in
  let ctx = o.Pipeline.context in
  let p = ctx.Pipeline.program in
  let device = ctx.Pipeline.device in
  let plan = o.Pipeline.search.Hgga.plan in
  pf buf "# Kernel fusion report: %s on %s\n\n" p.Program.name device.Device.name;

  (* --- workload --- *)
  pf buf "## Workload\n\n";
  pf buf "- kernels: %d, arrays: %d\n" (Program.num_kernels p) (Program.num_arrays p);
  let g = p.Program.grid in
  pf buf "- grid: %dx%dx%d, %dx%d thread blocks (%d blocks, %d threads each)\n" g.Grid.nx
    g.Grid.ny g.Grid.nz g.Grid.block_x g.Grid.block_y (Grid.blocks g)
    (Grid.threads_per_block g);
  let counts = Hashtbl.create 4 in
  Array.iter
    (fun cls ->
      Hashtbl.replace counts cls (1 + try Hashtbl.find counts cls with Not_found -> 0))
    (Datadep.classes ctx.Pipeline.datadep);
  let class_count cls = try Hashtbl.find counts cls with Not_found -> 0 in
  pf buf "- array classes: %d read-only, %d read-write, %d expandable, %d write-only\n"
    (class_count Datadep.Read_only) (class_count Datadep.Read_write)
    (class_count Datadep.Expandable) (class_count Datadep.Write_only);
  let traffic = Traffic.analyze ctx.Pipeline.exec in
  pf buf "- GMEM traffic: %.1f MB total, %.1f MB reducible (%.1f%%)\n"
    (traffic.Traffic.total_bytes /. 1048576.)
    (traffic.Traffic.reducible_bytes /. 1048576.)
    (traffic.Traffic.reducible_fraction *. 100.);
  let extra = Exec_order.extra_memory_bytes ctx.Pipeline.exec in
  if extra > 0 then
    pf buf "- expandable-array relaxation costs %.1f MB of redundant copies\n"
      (float_of_int extra /. 1048576.);
  (match Exec_order.sync_points ctx.Pipeline.exec with
  | [] -> ()
  | sp ->
      pf buf "- host sync points after kernels: %s (fusion never crosses them)\n"
        (String.concat ", " (List.map string_of_int sp)));

  (* --- search --- *)
  let stats = o.Pipeline.search.Hgga.stats in
  pf buf "\n## Search\n\n";
  pf buf "- HGGA: %d generations, %d objective evaluations, %.2f s\n" stats.Hgga.generations
    stats.Hgga.evaluations stats.Hgga.wall_time_s;
  pf buf "- best projected plan cost: %.3f ms\n" (o.Pipeline.search.Hgga.cost *. 1e3);
  pf buf "- plan: %d groups (%d fused kernels covering %d originals)\n" (Plan.num_groups plan)
    (Plan.fused_kernel_count plan) (Plan.fused_member_count plan);

  (* --- outcome --- *)
  pf buf "\n## Outcome\n\n";
  pf buf "| | runtime |\n|---|---|\n";
  pf buf "| original program | %.3f ms |\n" (ctx.Pipeline.original_runtime *. 1e3);
  pf buf "| fused program | %.3f ms |\n" (o.Pipeline.fused_runtime *. 1e3);
  pf buf "| **speedup** | **%.2fx** |\n" o.Pipeline.speedup;

  (* --- per-fused-kernel table --- *)
  pf buf "\n## New kernels\n\n";
  pf buf
    "| new kernel | members | kind | halo | SMEM | regs | projected | measured | original sum | \
     FE |\n";
  pf buf "|---|---|---|---|---|---|---|---|---|---|\n";
  let inputs = ctx.Pipeline.inputs in
  List.iter
    (fun (u, (r : Measure.result)) ->
      match u with
      | Fused_program.Fused f when not (Fused.is_singleton f) ->
          let orig = Inputs.original_sum inputs f.Fused.members in
          let fe = FE.compute inputs f ~measured_fused_runtime:r.Measure.runtime_s in
          pf buf "| %s | %d | %s | %d | %.1f KB | %d | %.0f us | %.0f us | %.0f us | %.0f%% |\n"
            f.Fused.name
            (List.length f.Fused.members)
            (match f.Fused.kind with Fused.Simple -> "simple" | Fused.Complex -> "complex")
            f.Fused.halo_layers
            (float_of_int f.Fused.smem_bytes_per_block /. 1024.)
            f.Fused.registers_per_thread
            (Projection.runtime inputs f *. 1e6)
            (r.Measure.runtime_s *. 1e6)
            (orig *. 1e6)
            (fe.FE.efficiency *. 100.)
      | _ -> ())
    o.Pipeline.fused_measured;

  (* --- untouched kernels --- *)
  let untouched =
    List.filter_map
      (fun (u, _) -> match u with Fused_program.Original k -> Some k | _ -> None)
      o.Pipeline.fused_measured
  in
  if untouched <> [] then begin
    pf buf "\n%d kernels stay original: %s\n" (List.length untouched)
      (String.concat ", "
         (List.map (fun k -> (Program.kernel p k).Kf_ir.Kernel.name) untouched))
  end;

  (* --- verification --- *)
  if verify then begin
    pf buf "\n## Semantic verification\n\n";
    let small =
      Grid.make
        ~nx:(min g.Grid.nx (4 * g.Grid.block_x))
        ~ny:(min g.Grid.ny (4 * g.Grid.block_y))
        ~nz:(min g.Grid.nz 4) ~block_x:g.Grid.block_x ~block_y:g.Grid.block_y
    in
    let sp = Program.with_grid p small in
    let meta = Kf_ir.Metadata.build sp in
    let exec =
      Exec_order.build ~sync_points:(Exec_order.sync_points ctx.Pipeline.exec)
        (Datadep.build sp)
    in
    let fp = Fused_program.build ~device ~meta ~exec plan in
    let v = Kf_exec.Semantics.check ~device fp in
    if v.Kf_exec.Semantics.equivalent then
      pf buf "Execution oracle (on a %dx%dx%d instance): fused program matches the original \
              **bitwise**.\n"
        small.Grid.nx small.Grid.ny small.Grid.nz
    else
      pf buf "**MISMATCH**: %d sites differ (max |diff| %g).\n"
        v.Kf_exec.Semantics.mismatched_sites v.Kf_exec.Semantics.max_abs_diff
  end;
  Buffer.contents buf

let write_file ?verify path outcome =
  (* Render before touching the filesystem — a raise mid-render must not
     leave a truncated file — then write atomically (temp + rename, the
     Snapshot.save pattern) so a crash mid-write never replaces a good
     previous report either. *)
  let content = render ?verify outcome in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path
