(** End-to-end kernel-fusion pipeline — paper Algorithm 1.

    [prepare] performs steps 1-2 (gather original-kernel metadata, build
    the dependency and order-of-execution graphs) plus the empirical
    baseline the models need (measuring every original kernel on the
    device — on this substrate, in the simulator).  [search] runs steps
    3-8 (the HGGA with the projection objective).  [apply] performs step 9
    (constructing the new kernels and the fused invocation sequence) and
    measures the result.  [run] chains all of it. *)

type context = {
  device : Kf_gpu.Device.t;
  program : Kf_ir.Program.t;
  meta : Kf_ir.Metadata.t;
  datadep : Kf_graph.Datadep.t;
  exec : Kf_graph.Exec_order.t;
  measured : Kf_sim.Measure.result array;  (** per original kernel *)
  inputs : Kf_model.Inputs.t;
  original_runtime : float;  (** Σ measured runtimes *)
}

val prepare :
  ?sync_points:int list -> device:Kf_gpu.Device.t -> Kf_ir.Program.t -> context
(** [sync_points] marks kernels after which the host synchronizes
    (PCIe transfer / MPI exchange); fusion never crosses them
    (paper §II-C). *)

val objective :
  ?model:Kf_search.Objective.model ->
  ?guard:Kf_search.Objective.guard ->
  ?faults:Kf_search.Objective.fault_stats ->
  ?domains:int ->
  ?incremental:bool ->
  ?arena:bool ->
  ?portfolio:Kf_model.Inputs.t list ->
  context ->
  Kf_search.Objective.t
(** A fresh objective over the context (default model: the paper's).
    [guard]/[faults] install per-candidate fault isolation — see
    {!Kf_robust.Guard}.  [domains] is the worker-domain count the caller
    will search with (it sizes the non-incremental table's stripe
    count — see {!Kf_search.Objective.create}).  [incremental] (default
    [true]) selects the two-level incremental evaluation path; results
    are bit-identical either way (see {!Kf_search.Objective.create}).
    [arena] (default [true]) selects the allocation-free evaluation
    leaf, and [portfolio] enables per-device cost rows and the
    cross-device Pareto front — both documented at
    {!Kf_search.Objective.create}. *)

type outcome = {
  context : context;
  search : Kf_search.Hgga.result;
  fused : Kf_fusion.Fused_program.t;
  fused_measured : (Kf_fusion.Fused_program.unit_ * Kf_sim.Measure.result) list;
  fused_runtime : float;
  speedup : float;
}

val safe_speedup : original:float -> fused:float -> float
(** [original /. fused], guarded: 0 when either runtime is non-finite or
    [fused] is not strictly positive — the explicit "invalid measurement"
    marker, so degenerate measurements never poison reports with
    [inf]/[nan] speedups. *)

val apply :
  context -> Kf_search.Hgga.result -> outcome
(** Step 9: build and measure the fused program for a search result.
    [speedup] is computed with {!safe_speedup}. *)

val run :
  ?params:Kf_search.Hgga.params ->
  ?model:Kf_search.Objective.model ->
  ?sync_points:int list ->
  ?incremental:bool ->
  ?arena:bool ->
  device:Kf_gpu.Device.t ->
  Kf_ir.Program.t ->
  outcome
(** The whole of Algorithm 1 with the given device and search settings.
    [arena] (default [true]) selects the allocation-free evaluation
    leaf; [~arena:false] restores the legacy per-candidate leaf
    (bit-identical results either way). *)

type portfolio_outcome = {
  outcome : outcome;  (** the ordinary end-to-end outcome on [device] *)
  portfolio : Kf_search.Hgga.portfolio_result;
      (** per-device winners and the cross-device Pareto front *)
}

val portfolio :
  ?params:Kf_search.Hgga.params ->
  ?model:Kf_search.Objective.model ->
  ?sync_points:int list ->
  ?incremental:bool ->
  ?arena:bool ->
  devices:Kf_gpu.Device.t list ->
  device:Kf_gpu.Device.t ->
  Kf_ir.Program.t ->
  portfolio_outcome
(** Algorithm 1 once, evaluated for a whole device portfolio: the search
    runs on [device] exactly as {!run} does (same plan, same evaluation
    counts), while every candidate the search evaluates is also costed
    on each of [devices] through the shared feature arena — structural
    analysis amortized across devices instead of one search per device.
    Each extra device gets its own measured baseline
    ({!Kf_sim.Measure.program_results}); metadata and graphs are shared
    with the primary context. *)

val stream_env :
  ?model:Kf_search.Objective.model ->
  ?sync_points:int list ->
  ?incremental:bool ->
  ?arena:bool ->
  device:Kf_gpu.Device.t ->
  unit ->
  Kf_search.Stream.env
(** The prepare-and-measure callback a {!Kf_search.Stream} needs: each
    program version is prepared ({!prepare}) and wrapped in a fresh
    objective ({!objective}).  Deterministic in the program, as the
    stream requires. *)

val stream :
  ?config:Kf_search.Stream.config ->
  ?model:Kf_search.Objective.model ->
  ?sync_points:int list ->
  ?incremental:bool ->
  ?arena:bool ->
  device:Kf_gpu.Device.t ->
  Kf_ir.Program.t ->
  Kf_search.Stream.t
(** [Kf_search.Stream.create] over {!stream_env}: opens a streaming
    session on the initial program version (deciding version 0 with a
    full search). *)

val prepare_safe :
  ?sync_points:int list ->
  device:Kf_gpu.Device.t ->
  Kf_ir.Program.t ->
  (context, Kf_robust.Error.t) result
(** {!prepare} with the preparation stage's exceptions trapped and
    classified (see {!Kf_robust.Error.classify}).  Never raises except
    for fatal runtime conditions ([Out_of_memory], [Stack_overflow]). *)

val search_safe :
  ?params:Kf_search.Hgga.params ->
  ?checkpoint:Kf_search.Hgga.checkpoint ->
  ?resume_from:string ->
  ?budget:Kf_search.Hgga.budget ->
  ?seed_plans:Kf_search.Grouping.groups list ->
  ?on_generation:(Kf_search.Hgga.progress -> unit) ->
  ?interrupt:(unit -> bool) ->
  context ->
  Kf_search.Objective.t ->
  (Kf_search.Hgga.result, Kf_robust.Error.t) result
(** The search stage of {!run_safe} alone, over a caller-built objective
    (so the caller controls guarding, injection and cache seeding — the
    serve daemon's use case).  Exceptions are trapped and classified at
    the stage boundary, and an [Ok] result has already passed plan
    re-validation (degrading like {!run_safe} if needed). *)

val apply_safe :
  context ->
  Kf_search.Objective.t ->
  Kf_search.Hgga.result ->
  (outcome, Kf_robust.Error.t) result
(** The apply stage of {!run_safe} alone: builds and measures the fused
    program, degrading to the identity plan if the searched plan fails
    to build, and classifying exceptions at the stage boundary. *)

val run_safe :
  ?params:Kf_search.Hgga.params ->
  ?model:Kf_search.Objective.model ->
  ?sync_points:int list ->
  ?incremental:bool ->
  ?arena:bool ->
  ?guard:Kf_robust.Guard.config ->
  ?inject:Kf_robust.Inject.config ->
  ?checkpoint:Kf_search.Hgga.checkpoint ->
  ?resume_from:string ->
  ?budget:Kf_search.Hgga.budget ->
  device:Kf_gpu.Device.t ->
  Kf_ir.Program.t ->
  (outcome, Kf_robust.Error.t) result
(** Fault-tolerant {!run}: every stage boundary traps and classifies
    exceptions; the objective is guarded (per-candidate quarantine,
    bounded retries — [guard] overrides {!Kf_robust.Guard.default});
    [inject] enables deterministic fault injection for robustness
    testing; [checkpoint]/[resume_from]/[budget] are forwarded to
    {!Kf_search.Hgga.solve}.

    Any plan crossing the search/apply boundary is re-checked with
    [Plan.validate]; a violating plan degrades (offending groups
    dissolved, then the identity plan) instead of being trusted, so an
    [Ok] outcome always carries a validate-clean plan.  Fault accounting
    is in [outcome.search.stats.faults]. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Human-readable summary: kernel counts before/after, search stats,
    speedup. *)
