module Device = Kf_gpu.Device

type instr =
  | Gload of int
  | Prefetch of int
  | Gstore of int
  | Smem of int
  | Compute of int
  | Barrier

type block_spec = {
  warps_per_block : int;
  trace : instr array;
  special_trace : instr array;
  conflict_factor : float;
  stream_factor : float;
}

type config = {
  device : Device.t;
  blocks_per_smx : int;
  total_blocks : int;
  spec : block_spec;
}

type result = {
  cycles_per_wave : float;
  waves : int;
  runtime_s : float;
  issue_stall_fraction : float;
  instructions : int;
}

type warp = {
  block : int;
  trace : instr array;
  mutable pc : int;
  mutable ready : float;
  mutable data_ready : float;
      (* completion time of the warp's outstanding global loads: loads are
         pipelined (memory-level parallelism), only consumers wait *)
  outstanding : float Queue.t;
      (* completion times of in-flight loads; the scoreboard caps how many
         a warp may pipeline *)
  mutable parked : bool; (* waiting at a barrier *)
}

(* In-flight global loads per warp (Kepler scoreboard/register-destination
   limit).  This is what stops a single resident mega-block from saturating
   DRAM on its own. *)
let mlp_limit = 6

let barrier_cost = 16.

(* Simulated-cycle accounting: what the simulator substrate actually did
   across a whole run, for the observability layer.  No-ops unless
   Kf_obs.Metrics is enabled. *)
let m_runs = Kf_obs.Metrics.counter "sim.engine_runs"
let m_instructions = Kf_obs.Metrics.counter "sim.instructions"
let m_cycles = Kf_obs.Metrics.counter "sim.cycles"

let run cfg =
  if cfg.blocks_per_smx <= 0 then
    invalid_arg "Engine.run: kernel cannot launch (zero resident blocks)";
  if cfg.spec.warps_per_block <= 0 then invalid_arg "Engine.run: no warps per block";
  let d = cfg.device in
  let nblocks = cfg.blocks_per_smx in
  let wpb = cfg.spec.warps_per_block in
  let warps =
    Array.init (nblocks * wpb) (fun i ->
        let block = i / wpb in
        let is_special = i mod wpb = 0 in
        {
          block;
          trace = (if is_special then cfg.spec.special_trace else cfg.spec.trace);
          pc = 0;
          ready = 0.;
          data_ready = 0.;
          outstanding = Queue.create ();
          parked = false;
        })
  in
  (* Resource model: "next free" timestamps advanced by per-instruction
     service times; a warp's instruction starts when both the warp and the
     issue slots are free, and completes after the resource pipeline has
     drained its requests plus the access latency. *)
  let issue_period = 1. /. float_of_int (d.Device.schedulers_per_smx * d.Device.dispatch_per_scheduler) in
  let dram_cycles_per_txn =
    128. /. (Device.bytes_per_cycle d /. float_of_int d.Device.smx_count)
    *. Float.max 1.0 cfg.spec.stream_factor
  in
  let fp_cycles_per_instr = 32. /. Device.flops_per_cycle_smx d in
  let smem_cycles_per_access = cfg.spec.conflict_factor in
  let issue_next = ref 0. in
  let dram_next = ref 0. in
  let fp_next = ref 0. in
  let smem_next = ref 0. in
  let idle_cycles = ref 0. in
  let instructions = ref 0 in
  (* Barrier bookkeeping per block. *)
  let barrier_count = Array.make nblocks 0 in
  let barrier_waiters = Array.make nblocks [] in
  (* Warps whose trace is empty are done before the first cycle. *)
  let remaining =
    ref (Array.fold_left (fun acc w -> if Array.length w.trace > 0 then acc + 1 else acc) 0 warps)
  in
  let finish_time = ref 0. in
  while !remaining > 0 do
    (* Pick the unparked, unfinished warp with the earliest ready time. *)
    let best = ref None in
    Array.iter
      (fun w ->
        if (not w.parked) && w.pc < Array.length w.trace then
          match !best with
          | Some b when b.ready <= w.ready -> ()
          | _ -> best := Some w)
      warps;
    match !best with
    | None ->
        (* All runnable warps are parked at barriers with no releaser: a
           deadlock would be an engine bug. *)
        invalid_arg "Engine.run: internal deadlock (barrier with no arrivals pending)"
    | Some w ->
        let start = Float.max w.ready !issue_next in
        if start > !issue_next then idle_cycles := !idle_cycles +. (start -. !issue_next);
        issue_next := start +. issue_period;
        incr instructions;
        let instr = w.trace.(w.pc) in
        w.pc <- w.pc + 1;
        (match instr with
        | Gload n ->
            (* Loads pipeline up to the scoreboard limit: the warp keeps
               issuing (memory-level parallelism); the data-ready horizon
               moves to this load's completion and consumers below wait on
               it.  When the in-flight window is full, issuing stalls until
               the oldest load lands. *)
            let start =
              if Queue.length w.outstanding >= mlp_limit then
                Float.max start (Queue.pop w.outstanding)
              else start
            in
            let service = float_of_int n *. dram_cycles_per_txn in
            let begin_xfer = Float.max start !dram_next in
            dram_next := begin_xfer +. service;
            let completion = !dram_next +. float_of_int d.Device.gmem_latency_cycles in
            Queue.add completion w.outstanding;
            w.data_ready <- Float.max w.data_ready completion;
            w.ready <- start +. 2.
        | Prefetch n ->
            (* Bandwidth now, data needed only next iteration: no
               data-ready update. *)
            let service = float_of_int n *. dram_cycles_per_txn in
            let begin_xfer = Float.max start !dram_next in
            dram_next := begin_xfer +. service;
            w.ready <- start +. 2.
        | Gstore n ->
            (* Stores need their operands but then fire-and-forget through
               the write queue. *)
            let start = Float.max start w.data_ready in
            Queue.clear w.outstanding;
            let service = float_of_int n *. dram_cycles_per_txn in
            let begin_xfer = Float.max start !dram_next in
            dram_next := begin_xfer +. service;
            w.ready <- start +. 4.
        | Smem n ->
            let start = Float.max start w.data_ready in
            Queue.clear w.outstanding;
            let service = float_of_int n *. smem_cycles_per_access in
            let begin_access = Float.max start !smem_next in
            smem_next := begin_access +. service;
            w.ready <- !smem_next +. float_of_int d.Device.smem_latency_cycles
        | Compute n ->
            let start = Float.max start w.data_ready in
            Queue.clear w.outstanding;
            let service = float_of_int n *. fp_cycles_per_instr in
            let begin_fp = Float.max start !fp_next in
            fp_next := begin_fp +. service;
            w.ready <- !fp_next +. 4.
        | Barrier ->
            let start = Float.max start w.data_ready in
            Queue.clear w.outstanding;
            barrier_count.(w.block) <- barrier_count.(w.block) + 1;
            if barrier_count.(w.block) = wpb then begin
              (* Last warp arrives: release everyone. *)
              List.iter
                (fun peer ->
                  peer.parked <- false;
                  peer.ready <- start +. barrier_cost)
                barrier_waiters.(w.block);
              barrier_waiters.(w.block) <- [];
              barrier_count.(w.block) <- 0;
              w.ready <- start +. barrier_cost
            end
            else begin
              w.parked <- true;
              barrier_waiters.(w.block) <- w :: barrier_waiters.(w.block)
            end);
        if w.pc >= Array.length w.trace then begin
          decr remaining;
          finish_time := Float.max !finish_time w.ready
        end
  done;
  let cycles_per_wave = Float.max !finish_time (Float.max !dram_next !issue_next) in
  let concurrent = cfg.blocks_per_smx * d.Device.smx_count in
  let waves = max 1 ((cfg.total_blocks + concurrent - 1) / concurrent) in
  let runtime_s = cycles_per_wave *. float_of_int waves /. (d.Device.clock_ghz *. 1e9) in
  if Kf_obs.Metrics.enabled () then begin
    Kf_obs.Metrics.incr m_runs;
    Kf_obs.Metrics.add m_instructions !instructions;
    Kf_obs.Metrics.add m_cycles (int_of_float (cycles_per_wave *. float_of_int waves))
  end;
  {
    cycles_per_wave;
    waves;
    runtime_s;
    issue_stall_fraction = (if cycles_per_wave > 0. then !idle_cycles /. cycles_per_wave else 0.);
    instructions = !instructions;
  }
