module Device = Kf_gpu.Device
module Program = Kf_ir.Program
module Grid = Kf_ir.Grid
module Fused = Kf_fusion.Fused
module Fused_program = Kf_fusion.Fused_program

type result = {
  runtime_s : float;
  gmem_bytes : float;
  achieved_gbs : float;
  achieved_gflops : float;
  occupancy : Occupancy.limits;
  cycles_per_wave : float;
  waves : int;
  issue_stall_fraction : float;
}

(* Per-kernel measurement accounting (no-ops unless Kf_obs.Metrics is
   enabled); cycle/instruction totals live in Engine. *)
let m_kernel_runs = Kf_obs.Metrics.counter "sim.kernel_runs"
let m_waves = Kf_obs.Metrics.counter "sim.waves"

let run_lowered ~device (p : Program.t) (low : Trace.lowered) =
  let occ =
    Occupancy.compute ~device ~threads_per_block:low.Trace.threads_per_block
      ~registers_per_thread:low.Trace.registers_per_thread
      ~smem_per_block:low.Trace.smem_per_block ~ro_per_block:low.Trace.ro_per_block ()
  in
  if occ.Occupancy.active_blocks = 0 then
    invalid_arg "Measure: kernel cannot launch (zero occupancy)";
  let total_blocks = Grid.blocks p.Program.grid in
  (* A grid smaller than one full wave leaves SMXs partly filled. *)
  let resident =
    min occ.Occupancy.active_blocks
      (max 1 ((total_blocks + device.Device.smx_count - 1) / device.Device.smx_count))
  in
  let r =
    Engine.run
      { Engine.device; blocks_per_smx = resident; total_blocks; spec = low.Trace.spec }
  in
  if Kf_obs.Metrics.enabled () then begin
    Kf_obs.Metrics.incr m_kernel_runs;
    Kf_obs.Metrics.add m_waves r.Engine.waves
  end;
  {
    runtime_s = r.Engine.runtime_s;
    gmem_bytes = low.Trace.gmem_bytes;
    achieved_gbs = low.Trace.gmem_bytes /. r.Engine.runtime_s /. 1e9;
    achieved_gflops = low.Trace.total_flops /. r.Engine.runtime_s /. 1e9;
    occupancy = occ;
    cycles_per_wave = r.Engine.cycles_per_wave;
    waves = r.Engine.waves;
    issue_stall_fraction = r.Engine.issue_stall_fraction;
  }

let kernel ~device p k = run_lowered ~device p (Trace.of_kernel ~device p k)

let fused ~device p f = run_lowered ~device p (Trace.of_fused ~device p f)

let program_results ~device p =
  Array.init (Program.num_kernels p) (fun k -> kernel ~device p k)

let program ~device p =
  Array.fold_left (fun acc r -> acc +. r.runtime_s) 0. (program_results ~device p)

(* One horizontal launch: measure each plane on its own sub-grid, then
   combine through Kf_fusion.Horizontal — the *same* composition function
   the projection model uses, with the pressures taken from the very same
   per-plane features (kernel registers for original planes, the fused
   kernel's registers/SMEM for fused ones).  That single definition is
   what keeps measured and projected horizontal runtimes in agreement on
   plane semantics. *)
let horizontal ~device (p : Program.t) planes =
  let module H = Kf_fusion.Horizontal in
  let results =
    List.map
      (function
        | Fused_program.P_original k -> kernel ~device p k
        | Fused_program.P_fused f -> fused ~device p f)
      planes
  in
  let pressures =
    List.map
      (function
        | Fused_program.P_original k ->
            H.pressure ~regs:(Program.kernel p k).Kf_ir.Kernel.registers_per_thread ~smem:0
        | Fused_program.P_fused f ->
            H.pressure ~regs:f.Fused.registers_per_thread ~smem:f.Fused.smem_bytes_per_block)
      planes
  in
  let combined = H.combine_pressure pressures in
  let grid = p.Program.grid in
  let threads_per_block = Grid.threads_per_block grid in
  let blocks = Grid.blocks grid in
  let costs = List.map (fun r -> r.runtime_s) results in
  let runtime_s = H.runtime device ~threads_per_block ~blocks ~costs combined in
  let slowest =
    List.fold_left
      (fun acc r -> if r.runtime_s > acc.runtime_s then r else acc)
      (List.hd results) results
  in
  let gmem = List.fold_left (fun acc r -> acc +. r.gmem_bytes) 0. results in
  let flops =
    List.fold_left (fun acc r -> acc +. (r.achieved_gflops *. r.runtime_s *. 1e9)) 0. results
  in
  let occ =
    Occupancy.compute ~device ~threads_per_block ~registers_per_thread:combined.H.regs
      ~smem_per_block:combined.H.smem ~ro_per_block:0 ()
  in
  {
    runtime_s;
    gmem_bytes = gmem;
    achieved_gbs = gmem /. runtime_s /. 1e9;
    achieved_gflops = flops /. runtime_s /. 1e9;
    occupancy = occ;
    cycles_per_wave = slowest.cycles_per_wave;
    waves = slowest.waves;
    issue_stall_fraction = slowest.issue_stall_fraction;
  }

let fused_program_results ~device (fp : Fused_program.t) =
  List.map
    (fun u ->
      match u with
      | Fused_program.Original k -> (u, kernel ~device fp.Fused_program.program k)
      | Fused_program.Fused f -> (u, fused ~device fp.Fused_program.program f)
      | Fused_program.Horizontal planes ->
          (u, horizontal ~device fp.Fused_program.program planes))
    fp.Fused_program.units

let fused_program ~device fp =
  List.fold_left (fun acc (_, r) -> acc +. r.runtime_s) 0. (fused_program_results ~device fp)

let speedup ~device fp =
  program ~device fp.Fused_program.program /. fused_program ~device fp

let pp_result ppf r =
  Format.fprintf ppf "%.1f us, %.1f GB/s, %.1f GFLOPS, %a, stall %.0f%%" (r.runtime_s *. 1e6)
    r.achieved_gbs r.achieved_gflops Occupancy.pp r.occupancy
    (r.issue_stall_fraction *. 100.)
