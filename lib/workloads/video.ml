open Kf_ir
module Rng = Kf_util.Rng

type spec = { name : string; frames : int; stages : int; thread_load : int; seed : int }

let default = { name = "video"; frames = 6; stages = 3; thread_load = 5; seed = 7 }

(* 4x4 blocks of 32x8 threads: one frame occupies a corner of one GPU,
   which is the regime where horizontal packing pays (phi = 1 in the
   overlap model).  The big stencil workloads use 40x4 blocks. *)
let default_grid = Grid.make ~nx:128 ~ny:32 ~nz:8 ~block_x:32 ~block_y:8

let generate ?(grid = default_grid) spec =
  if spec.frames < 2 then invalid_arg "Video.generate: need at least 2 frames";
  if spec.stages < 1 then invalid_arg "Video.generate: need at least 1 stage";
  let rng = Rng.create spec.seed in
  let per_frame = spec.stages + 1 in
  let arrays =
    List.init (spec.frames * per_frame) (fun i ->
        let f = i / per_frame and s = i mod per_frame in
        Array_info.make ~id:i ~name:(Printf.sprintf "%s_f%02d_v%d" spec.name f s) ())
  in
  let load_stencil = Suite.stencil_of_load spec.thread_load in
  let kernels =
    List.init (spec.frames * spec.stages) (fun k ->
        let f = k / spec.stages and s = k mod spec.stages in
        let src = (f * per_frame) + s and dst = (f * per_frame) + s + 1 in
        let flops = 1. +. float_of_int (Rng.int rng 4) in
        let accesses =
          [
            { Access.array = src; mode = Access.Read; pattern = load_stencil; flops };
            { Access.array = dst; mode = Access.Write; pattern = Stencil.point; flops = 1. };
          ]
        in
        Kernel.make ~id:k
          ~name:(Printf.sprintf "%s_f%02d_s%d" spec.name f s)
          ~accesses
          ~extra_flops_per_site:(2. +. float_of_int (Rng.int rng 5))
          ~registers_per_thread:(26 + Rng.int rng 18)
          ())
  in
  Program.create ~name:spec.name ~grid ~arrays ~kernels
