(** Video-analytics style workload: many small independent per-frame
    pipelines.

    Multi-stream inference and video pipelines (HFuse, arXiv 2007.01277;
    the concurrent-kernel studies of arXiv 1509.04394) run the same short
    chain of small kernels once per frame or stream.  Each chain is
    memory bound but launches far too few blocks to fill the device, so
    vertical fusion inside a chain leaves most SMXs idle — the win comes
    from packing the independent per-frame chains side by side into one
    horizontal launch.

    The generator produces [frames] fully independent chains of [stages]
    kernels each (disjoint array pools, so any cross-frame pair is
    {!Kf_graph.Exec_order.independent}) over one deliberately small grid.
    Deterministic for a given spec. *)

type spec = {
  name : string;
  frames : int;  (** independent per-frame chains (the horizontal planes) *)
  stages : int;  (** kernels per chain, a producer-consumer sequence *)
  thread_load : int;  (** stencil point count of each stage's main read *)
  seed : int;
}

val default : spec
(** ["video"], 6 frames, 3 stages, thread load 5, seed 7. *)

val generate : ?grid:Kf_ir.Grid.t -> spec -> Kf_ir.Program.t
(** The default grid launches 16 blocks — small enough that every plane
    of a horizontal pack stays fully resident on the paper's devices.
    @raise Invalid_argument for [frames < 2] or [stages < 1]. *)
