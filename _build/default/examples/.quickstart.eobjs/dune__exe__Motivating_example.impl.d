examples/motivating_example.ml: Array Format Kf_fusion Kf_gpu Kf_ir Kf_model Kf_search Kf_sim Kf_util Kf_workloads Kfuse
