examples/smem_capacity_study.ml: Array Format Kf_fusion Kf_gpu Kf_ir Kf_search Kf_util Kf_workloads Kfuse List Printf Sys
