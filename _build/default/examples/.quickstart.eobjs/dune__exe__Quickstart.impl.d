examples/quickstart.ml: Access Array_info Format Grid Kernel Kf_fusion Kf_gpu Kf_graph Kf_ir Kfuse List Program Stencil
