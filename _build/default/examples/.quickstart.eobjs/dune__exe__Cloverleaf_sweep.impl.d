examples/cloverleaf_sweep.ml: Array Kf_fusion Kf_gpu Kf_search Kf_util Kf_workloads Kfuse List Printf Sys
