examples/smem_capacity_study.mli:
