examples/custom_program.ml: Format Kf_fusion Kf_gpu Kf_graph Kf_ir Kf_search Kfuse
