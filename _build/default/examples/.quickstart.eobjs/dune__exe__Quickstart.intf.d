examples/quickstart.mli:
