examples/weather_models.mli:
