examples/weather_models.ml: Array Format Kf_fusion Kf_gpu Kf_search Kf_sim Kf_util Kf_workloads Kfuse List Sys
