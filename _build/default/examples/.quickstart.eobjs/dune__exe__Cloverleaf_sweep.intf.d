examples/cloverleaf_sweep.mli:
