(* Kernel fusion on the two real-world workloads of the paper's evaluation:
   the SCALE-LES dynamical core (142 kernels) and the CAM-HOMME dynamical
   core (43 kernels), on the simulated K20X.

     dune exec examples/weather_models.exe            # HOMME only (fast)
     dune exec examples/weather_models.exe -- --full  # + SCALE-LES (~1 min)

   Prints the search statistics, the largest fused kernels, and the
   measured speedup for each application. *)

module Pipeline = Kfuse.Pipeline
module Hgga = Kf_search.Hgga
module Plan = Kf_fusion.Plan
module Fused = Kf_fusion.Fused
module Measure = Kf_sim.Measure
module Table = Kf_util.Table

let run_app name program =
  let device = Kf_gpu.Device.k20x in
  Format.printf "=== %s ===@." name;
  let outcome = Pipeline.run ~device program in
  Format.printf "%a@.@." Pipeline.pp_outcome outcome;
  (* The five most time-consuming fused kernels. *)
  let fused_rows =
    outcome.Pipeline.fused_measured
    |> List.filter_map (fun (u, r) ->
           match u with
           | Kf_fusion.Fused_program.Fused f when not (Fused.is_singleton f) ->
               Some (f, (r : Measure.result))
           | _ -> None)
    |> List.sort (fun (_, a) (_, b) -> compare b.Measure.runtime_s a.Measure.runtime_s)
  in
  let t =
    Table.create ~title:"largest fused kernels"
      [
        ("new kernel", Table.Left); ("members", Table.Right); ("kind", Table.Left);
        ("runtime (us)", Table.Right); ("GB/s", Table.Right); ("SMEM (KB)", Table.Right);
      ]
  in
  List.iteri
    (fun i (f, (r : Measure.result)) ->
      if i < 5 then
        Table.add_row t
          [
            f.Fused.name;
            string_of_int (List.length f.Fused.members);
            (match f.Fused.kind with Fused.Simple -> "simple" | Fused.Complex -> "complex");
            Table.cell_f ~decimals:0 (r.Measure.runtime_s *. 1e6);
            Table.cell_f ~decimals:1 r.Measure.achieved_gbs;
            Table.cell_f ~decimals:1 (float_of_int f.Fused.smem_bytes_per_block /. 1024.);
          ])
    fused_rows;
  Table.print t;
  Format.printf "@."

let () =
  let full = Array.exists (( = ) "--full") Sys.argv in
  run_app "CAM-HOMME dynamical core" (Kf_workloads.Homme.program ());
  if full then run_app "SCALE-LES (142 kernels; search takes ~30s)" (Kf_workloads.Scale_les.program ())
  else begin
    run_app "SCALE-LES Runge-Kutta core (18 kernels)" (Kf_workloads.Scale_les.rk_core ());
    Format.printf "(pass --full to search the complete 142-kernel SCALE-LES)@."
  end
