(* Quickstart: build a small stencil program by hand, run the whole kernel
   fusion pipeline on it, and inspect the result.

     dune exec examples/quickstart.exe

   The program is a toy 4-kernel diffusion step: a Laplacian, two flux
   kernels sharing its output, and an update kernel. *)

open Kf_ir

let acc array mode pattern flops = { Access.array; mode; pattern; flops }

let program () =
  let grid = Grid.make ~nx:512 ~ny:512 ~nz:16 ~block_x:32 ~block_y:8 in
  let names = [ "temp"; "lap"; "flux_x"; "flux_y"; "coeff" ] in
  let arrays = List.mapi (fun id name -> Array_info.make ~id ~name ()) names in
  let kernels =
    [
      (* lap = ∇² temp *)
      Kernel.make ~id:0 ~name:"laplacian"
        ~accesses:
          [ acc 0 Access.Read Stencil.star5 4.; acc 1 Access.Write Stencil.point 1. ]
        ~registers_per_thread:28 ();
      (* flux_x = coeff * dx(lap) *)
      Kernel.make ~id:1 ~name:"flux_x"
        ~accesses:
          [
            acc 1 Access.Read Stencil.star5 3.;
            acc 4 Access.Read Stencil.point 1.;
            acc 2 Access.Write Stencil.point 1.;
          ]
        ~registers_per_thread:30 ();
      (* flux_y = coeff * dy(lap) *)
      Kernel.make ~id:2 ~name:"flux_y"
        ~accesses:
          [
            acc 1 Access.Read Stencil.star5 3.;
            acc 4 Access.Read Stencil.point 1.;
            acc 3 Access.Write Stencil.point 1.;
          ]
        ~registers_per_thread:30 ();
      (* temp += div(flux) *)
      Kernel.make ~id:3 ~name:"update"
        ~accesses:
          [
            acc 2 Access.Read Stencil.star5 2.;
            acc 3 Access.Read Stencil.star5 2.;
            acc 0 Access.ReadWrite Stencil.point 2.;
          ]
        ~registers_per_thread:32 ();
    ]
  in
  Program.create ~name:"diffusion" ~grid ~arrays ~kernels

let () =
  let device = Kf_gpu.Device.k20x in
  let p = program () in
  Format.printf "Input program:@.%a@." Program.pp p;

  (* Static analysis: dependency classes and reducible traffic. *)
  let dd = Kf_graph.Datadep.build p in
  let exec = Kf_graph.Exec_order.build dd in
  let traffic = Kf_graph.Traffic.analyze exec in
  Format.printf "%a@.@." Kf_graph.Traffic.pp_report traffic;

  (* The whole of Algorithm 1: measure originals, search, fuse, re-measure. *)
  let outcome = Kfuse.Pipeline.run ~device p in
  Format.printf "%a@.@." Kfuse.Pipeline.pp_outcome outcome;

  (* Inspect the fused kernels and the generated pseudo-CUDA. *)
  Format.printf "Fused invocation sequence and kernels:@.%s@."
    (Kf_fusion.Codegen.emit_program outcome.Kfuse.Pipeline.fused)
