(* Controlled study on the CloverLeaf-derived test suite (paper Table V):
   sweep one attribute of the benchmark generator and watch how fusion
   benefit responds.

     dune exec examples/cloverleaf_sweep.exe              # sweep kernel count
     dune exec examples/cloverleaf_sweep.exe -- sharing   # sweep sharing-set size
     dune exec examples/cloverleaf_sweep.exe -- load      # sweep thread load *)

module Suite = Kf_workloads.Suite
module Pipeline = Kfuse.Pipeline
module Hgga = Kf_search.Hgga
module Plan = Kf_fusion.Plan
module Table = Kf_util.Table

let fast = { Hgga.default_params with Hgga.max_generations = 120; stall_generations = 40 }

let sweep_axis = function
  | "sharing" ->
      ("sharing-set size", Suite.table5_axis `Sharing,
       fun v -> { Suite.default with Suite.sharing_set = v })
  | "load" ->
      ("avg thread load", Suite.table5_axis `Load,
       fun v -> { Suite.default with Suite.thread_load = v })
  | "copies" ->
      ("data copies", Suite.table5_axis `Copies,
       fun v -> { Suite.default with Suite.data_copies = v })
  | "kinship" ->
      ("kinship", Suite.table5_axis `Kinship,
       fun v -> { Suite.default with Suite.kinship = v })
  | _ ->
      ("number of kernels",
       List.filter (fun k -> k <= 60) (Suite.table5_axis `Kernels),
       fun v -> { Suite.default with Suite.kernels = v; arrays = 2 * v })

let () =
  let axis = if Array.length Sys.argv > 1 then Sys.argv.(1) else "kernels" in
  let label, values, config_of = sweep_axis axis in
  let device = Kf_gpu.Device.k20x in
  let t =
    Table.create
      ~title:(Printf.sprintf "fusion vs. %s (CloverLeaf test suite, K20X)" label)
      [
        (label, Table.Right); ("orig (ms)", Table.Right); ("fused (ms)", Table.Right);
        ("speedup", Table.Right); ("new kernels", Table.Right); ("evals", Table.Right);
      ]
  in
  List.iter
    (fun v ->
      let p = Suite.generate (config_of v) in
      let o = Pipeline.run ~params:fast ~device p in
      Table.add_row t
        [
          string_of_int v;
          Table.cell_f ~decimals:2 (o.Pipeline.context.Pipeline.original_runtime *. 1e3);
          Table.cell_f ~decimals:2 (o.Pipeline.fused_runtime *. 1e3);
          Table.cell_speedup o.Pipeline.speedup;
          string_of_int (Plan.fused_kernel_count o.Pipeline.search.Hgga.plan);
          string_of_int o.Pipeline.search.Hgga.stats.Hgga.evaluations;
        ])
    values;
  Table.print t
