(* Bring-your-own-program workflow: describe an application's kernels in
   the plain-text .kf format, load it, fuse it, and export the dependency
   graphs for Graphviz.

     dune exec examples/custom_program.exe

   The same file can be fed to the CLI:
     dune exec bin/kfuse_cli.exe -- fuse my_program.kf *)

let source =
  {|# A little advection-diffusion step, written by hand.
program advection_demo
grid 768 384 24 blocks 32 8
array q          # tracer
array q_star     # provisional tracer
array u
array v
array kdiff
array flux_x
array flux_y

kernel flux_x_calc regs 30
  read q star5 3.0
  read u point 1.0
  write flux_x point

kernel flux_y_calc regs 30
  read q star5 3.0
  read v point 1.0
  write flux_y point

kernel advect regs 36 extra 4.0
  read flux_x star5 2.0
  read flux_y star5 2.0
  read q point 1.0
  write q_star point

kernel diffuse regs 34 extra 2.0
  read q_star star5 4.0
  read kdiff point 1.0
  readwrite q point 1.0
|}

let () =
  let device = Kf_gpu.Device.k20x in
  let p = Kf_ir.Program_io.parse source in
  Format.printf "Loaded %a@.@." Kf_ir.Program.pp_stats p;

  (* The graphs the paper draws as Figs. 1 and 2, ready for `dot -Tsvg`. *)
  let dd = Kf_graph.Datadep.build p in
  let exec = Kf_graph.Exec_order.build dd in
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Format.printf "wrote %s@." path
  in
  write "advection_data_dependency.dot" (Kf_graph.Dot.data_dependency dd);
  write "advection_order_of_execution.dot" (Kf_graph.Dot.order_of_execution exec);

  let outcome = Kfuse.Pipeline.run ~device p in
  Format.printf "@.%a@.@." Kfuse.Pipeline.pp_outcome outcome;
  write "advection_fusion_plan.dot"
    (Kf_graph.Dot.order_of_execution_with_groups exec
       (Kf_fusion.Plan.groups outcome.Kfuse.Pipeline.search.Kf_search.Hgga.plan));

  (* Round-trip through the text format. *)
  let round = Kf_ir.Program_io.parse (Kf_ir.Program_io.print p) in
  assert (Kf_ir.Program.num_kernels round = Kf_ir.Program.num_kernels p);
  Format.printf "@.text format round-trips; pseudo-CUDA for the plan:@.@.%s@."
    (Kf_fusion.Codegen.emit_program outcome.Kfuse.Pipeline.fused)
