(* The paper's motivating example (Fig. 3 and §IV-B) as a walk-through:
   kernels A-E, the two candidate fusions X = A+B and Y = C+D+E, the three
   performance models' verdicts, and what "actually" happens on the
   simulated K20X.

     dune exec examples/motivating_example.exe *)

module Motivating = Kf_workloads.Motivating
module Measure = Kf_sim.Measure
module Inputs = Kf_model.Inputs
module Table = Kf_util.Table

let () =
  let device = Kf_gpu.Device.k20x in
  let p = Motivating.program () in
  let ctx = Kfuse.Pipeline.prepare ~device p in
  let inputs = ctx.Kfuse.Pipeline.inputs in

  Format.printf "Original kernels on %a:@.@." Kf_gpu.Device.pp device;
  let t = Table.create [ ("kernel", Table.Left); ("runtime (us)", Table.Right);
                         ("GB/s", Table.Right); ("occupancy", Table.Left) ] in
  Array.iteri
    (fun k (r : Measure.result) ->
      Table.add_row t
        [
          (Kf_ir.Program.kernel p k).Kf_ir.Kernel.name;
          Table.cell_f ~decimals:0 (r.Measure.runtime_s *. 1e6);
          Table.cell_f ~decimals:1 r.Measure.achieved_gbs;
          Format.asprintf "%a" Kf_sim.Occupancy.pp r.Measure.occupancy;
        ])
    ctx.Kfuse.Pipeline.measured;
  Table.print t;

  let show name group =
    let f = Kf_fusion.Fused.build ~device ~meta:ctx.meta ~exec:ctx.exec ~group in
    let m = Measure.fused ~device p f in
    let orig = Inputs.original_sum inputs group in
    Format.printf "@.%s (%s fusion, %d halo layer(s)):@." name
      (match f.Kf_fusion.Fused.kind with Simple -> "simple" | Complex -> "complex")
      f.Kf_fusion.Fused.halo_layers;
    let t = Table.create [ ("quantity", Table.Left); ("runtime (us)", Table.Right);
                           ("verdict", Table.Left) ] in
    let row label v =
      Table.add_row t
        [ label; Table.cell_f ~decimals:0 (v *. 1e6);
          (if v < orig then "fuse" else "do not fuse") ]
    in
    Table.add_row t [ "original sum"; Table.cell_f ~decimals:0 (orig *. 1e6); "-" ];
    row "Roofline projection" (Kf_model.Roofline.runtime inputs f);
    row "simple model" (Kf_model.Simple_model.runtime inputs f);
    row "proposed upper-bound projection" (Kf_model.Projection.runtime inputs f);
    Table.add_row t
      [ "measured (simulator)"; Table.cell_f ~decimals:0 (m.Measure.runtime_s *. 1e6);
        (if m.Measure.runtime_s < orig then "profitable" else "DEGRADES") ];
    Table.print t
  in
  show "Kernel X = A+B" Motivating.fusion_x;
  show "Kernel Y = C+D+E" Motivating.fusion_y;

  Format.printf
    "@.The naive models endorse both fusions; only the proposed projection@.\
     flags Y's resource pressure (paper §IV-B: Roofline 336us, simple 410us,@.\
     proposed 564us vs. 554us measured, 519us original sum).@.";

  (* What the search decides, given the proposed model as objective. *)
  let outcome = Kfuse.Pipeline.run ~device p in
  Format.printf "@.Search decision: %a@." Kf_fusion.Plan.pp
    outcome.Kfuse.Pipeline.search.Kf_search.Hgga.plan;
  Format.printf "%a@." Kfuse.Pipeline.pp_outcome outcome
