(* The paper's hypothetical-architecture study (§VI-E): how would kernel
   fusion benefit change if the SMX carried 128 KB or 256 KB of shared
   memory instead of Kepler's 48 KB?  The projection model (and here, the
   simulator too) can answer without any hardware.

     dune exec examples/smem_capacity_study.exe          # RK core (fast)
     dune exec examples/smem_capacity_study.exe -- --full  # full SCALE-LES *)

module Device = Kf_gpu.Device
module Pipeline = Kfuse.Pipeline
module Plan = Kf_fusion.Plan
module Hgga = Kf_search.Hgga
module Table = Kf_util.Table

let () =
  let full = Array.exists (( = ) "--full") Sys.argv in
  let program =
    if full then Kf_workloads.Scale_les.program () else Kf_workloads.Scale_les.rk_core ()
  in
  Format.printf "Workload: %s@.@." program.Kf_ir.Program.name;
  let t =
    Table.create ~title:"SMEM capacity vs. fusion benefit (SCALE-LES on K20X variants)"
      [
        ("SMEM/SMX", Table.Right); ("speedup", Table.Right); ("fused kernels", Table.Right);
        ("avg group size", Table.Right);
      ]
  in
  List.iter
    (fun kb ->
      let device = if kb = 48 then Device.k20x else Device.with_smem Device.k20x (kb * 1024) in
      let o = Pipeline.run ~device program in
      let plan = o.Pipeline.search.Hgga.plan in
      let fused = Plan.fused_kernel_count plan in
      let members = Plan.fused_member_count plan in
      Table.add_row t
        [
          Printf.sprintf "%d KB" kb;
          Table.cell_speedup o.Pipeline.speedup;
          string_of_int fused;
          (if fused = 0 then "-" else Table.cell_f ~decimals:1 (float_of_int members /. float_of_int fused));
        ])
    [ 48; 128; 256 ];
  Table.print t;
  Format.printf
    "@.(paper §VI-E projects 1.56x at 128 KB and 1.65x at 256 KB for the full model)@."
