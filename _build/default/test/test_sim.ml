(* Tests for Kf_sim: occupancy, engine behavior, measurement driver. *)

module Device = Kf_gpu.Device
module Occupancy = Kf_sim.Occupancy
module Engine = Kf_sim.Engine
module Trace = Kf_sim.Trace
module Measure = Kf_sim.Measure
module Motivating = Kf_workloads.Motivating

let check = Alcotest.check
let device = Device.k20x

(* --- Occupancy --- *)

let test_occupancy_thread_limit () =
  let l =
    Occupancy.compute ~device ~threads_per_block:512 ~registers_per_thread:20 ~smem_per_block:0 ()
  in
  check Alcotest.int "thread-limited" 4 l.Occupancy.active_blocks;
  check Alcotest.string "binding" "threads" (Occupancy.binding_resource l)

let test_occupancy_register_limit () =
  let l =
    Occupancy.compute ~device ~threads_per_block:256 ~registers_per_thread:128 ~smem_per_block:0 ()
  in
  (* 65536 / (256*128) = 2 *)
  check Alcotest.int "register-limited" 2 l.Occupancy.active_blocks;
  check Alcotest.string "binding" "registers" (Occupancy.binding_resource l)

let test_occupancy_smem_limit () =
  let l =
    Occupancy.compute ~device ~threads_per_block:128 ~registers_per_thread:32
      ~smem_per_block:(16 * 1024) ()
  in
  check Alcotest.int "smem-limited" 3 l.Occupancy.active_blocks;
  check Alcotest.string "binding" "smem" (Occupancy.binding_resource l)

let test_occupancy_overflow () =
  let l =
    Occupancy.compute ~device ~threads_per_block:128 ~registers_per_thread:32
      ~smem_per_block:(64 * 1024) ()
  in
  check Alcotest.int "cannot launch" 0 l.Occupancy.active_blocks

let test_occupancy_fraction () =
  let l =
    Occupancy.compute ~device ~threads_per_block:256 ~registers_per_thread:32 ~smem_per_block:0 ()
  in
  (* 65536/(256*32) = 8 blocks = 64 warps = max on Kepler. *)
  check (Alcotest.float 1e-9) "full occupancy" 1.0 (Occupancy.occupancy_fraction ~device l)

let test_occupancy_maxwell_more_blocks () =
  let k = Occupancy.compute ~device ~threads_per_block:64 ~registers_per_thread:16 ~smem_per_block:0 () in
  let m =
    Occupancy.compute ~device:Device.gtx750ti ~threads_per_block:64 ~registers_per_thread:16
      ~smem_per_block:0 ()
  in
  check Alcotest.int "kepler block cap" 16 k.Occupancy.active_blocks;
  check Alcotest.int "maxwell block cap" 32 m.Occupancy.active_blocks

(* --- Engine --- *)

let spec_of trace =
  { Engine.warps_per_block = 8; trace; special_trace = trace; conflict_factor = 1.0; stream_factor = 1.0 }

let run_blocks blocks trace =
  Engine.run { Engine.device; blocks_per_smx = blocks; total_blocks = blocks * device.Device.smx_count; spec = spec_of trace }

let test_engine_empty_trace () =
  let r = run_blocks 2 [||] in
  check Alcotest.bool "finishes" true (r.Engine.runtime_s >= 0.)

let test_engine_bandwidth_bound () =
  (* Pure streaming at full occupancy cannot beat the DRAM share. *)
  let trace = Array.make 256 (Engine.Gload 2) in
  let r = run_blocks 8 trace in
  let txns = 256 * 2 * 8 * 8 in
  let min_cycles = float_of_int txns *. 128. /. (Device.bytes_per_cycle device /. 14.) in
  check Alcotest.bool "respects bandwidth" true (r.Engine.cycles_per_wave >= min_cycles *. 0.99)

let test_engine_latency_hiding () =
  (* Achieved bandwidth grows with resident warps. *)
  let trace = Array.init 128 (fun i -> if i mod 2 = 0 then Engine.Gload 2 else Engine.Compute 2) in
  let r1 = run_blocks 1 trace in
  let r4 = run_blocks 4 trace in
  (* 4 blocks move 4x the data; if hiding worked, the wave takes well under
     4x the single-block cycles. *)
  check Alcotest.bool "overlap across warps" true
    (r4.Engine.cycles_per_wave < 3. *. r1.Engine.cycles_per_wave)

let test_engine_barrier_sync () =
  (* Barriers serialize: a trace with barriers takes longer than without. *)
  let with_b =
    Array.init 64 (fun i -> if i mod 4 = 3 then Engine.Barrier else Engine.Compute 4)
  in
  let without = Array.init 64 (fun i -> if i mod 4 = 3 then Engine.Compute 1 else Engine.Compute 4) in
  let rb = run_blocks 2 with_b in
  let rn = run_blocks 2 without in
  check Alcotest.bool "barriers cost" true (rb.Engine.cycles_per_wave > rn.Engine.cycles_per_wave)

let test_engine_conflict_factor () =
  let trace = Array.make 64 (Engine.Smem 4) in
  let base = Engine.run { Engine.device; blocks_per_smx = 2; total_blocks = 28; spec = spec_of trace } in
  let conflicted =
    Engine.run
      {
        Engine.device;
        blocks_per_smx = 2;
        total_blocks = 28;
        spec = { (spec_of trace) with Engine.conflict_factor = 2.0 };
      }
  in
  check Alcotest.bool "conflicts slow smem" true
    (conflicted.Engine.cycles_per_wave > 1.5 *. base.Engine.cycles_per_wave)

let test_engine_stream_factor () =
  let trace = Array.make 128 (Engine.Gload 2) in
  let base = run_blocks 8 trace in
  let penalized =
    Engine.run
      {
        Engine.device;
        blocks_per_smx = 8;
        total_blocks = 8 * 14;
        spec = { (spec_of trace) with Engine.stream_factor = 1.5 };
      }
  in
  check Alcotest.bool "stream penalty applies" true
    (penalized.Engine.cycles_per_wave > 1.3 *. base.Engine.cycles_per_wave)

let test_engine_waves () =
  let trace = Array.make 16 (Engine.Compute 4) in
  let one =
    Engine.run { Engine.device; blocks_per_smx = 4; total_blocks = 4 * 14; spec = spec_of trace }
  in
  let two =
    Engine.run { Engine.device; blocks_per_smx = 4; total_blocks = 8 * 14; spec = spec_of trace }
  in
  check Alcotest.int "one wave" 1 one.Engine.waves;
  check Alcotest.int "two waves" 2 two.Engine.waves;
  check (Alcotest.float 1e-12) "runtime doubles" (2. *. one.Engine.runtime_s) two.Engine.runtime_s

let test_engine_zero_blocks () =
  Alcotest.check_raises "zero blocks"
    (Invalid_argument "Engine.run: kernel cannot launch (zero resident blocks)") (fun () ->
      ignore
        (Engine.run
           { Engine.device; blocks_per_smx = 0; total_blocks = 1; spec = spec_of [||] }))

let test_engine_prefetch_cheaper_than_load () =
  (* A consumer after prefetch does not pay DRAM latency; after a load it
     does. *)
  let with_load = Array.init 64 (fun i -> if i mod 2 = 0 then Engine.Gload 2 else Engine.Compute 2) in
  let with_pf = Array.init 64 (fun i -> if i mod 2 = 0 then Engine.Prefetch 2 else Engine.Compute 2) in
  let rl = run_blocks 1 with_load in
  let rp = run_blocks 1 with_pf in
  check Alcotest.bool "prefetch hides latency" true
    (rp.Engine.cycles_per_wave < rl.Engine.cycles_per_wave)

let test_engine_mlp_cap () =
  (* A single warp cannot keep DRAM saturated on its own: doubling the
     loads-per-consumer beyond the in-flight window scales runtime roughly
     linearly, because the scoreboard serializes the excess. *)
  let burst n = Array.append (Array.make n (Engine.Gload 2)) [| Engine.Compute 1 |] in
  let spec t = { (spec_of t) with Engine.warps_per_block = 1 } in
  let run t = (Engine.run { Engine.device; blocks_per_smx = 1; total_blocks = 14; spec = spec t }).Engine.cycles_per_wave in
  let c6 = run (burst 6) and c24 = run (burst 24) in
  (* 24 loads = 4 full windows: at least ~3x the 6-load (single-window)
     time, whereas unlimited MLP would overlap them all. *)
  check Alcotest.bool "scoreboard limits in-flight loads" true (c24 > 2.5 *. c6)

let prop_engine_no_deadlock =
  (* Random traces with matched barrier counts always terminate. *)
  QCheck.Test.make ~count:50 ~name:"engine terminates on random traces"
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, len) ->
      let rng = Kf_util.Rng.create seed in
      let instr () =
        match Kf_util.Rng.int rng 5 with
        | 0 -> Engine.Gload (1 + Kf_util.Rng.int rng 3)
        | 1 -> Engine.Gstore 1
        | 2 -> Engine.Smem (1 + Kf_util.Rng.int rng 4)
        | 3 -> Engine.Compute (1 + Kf_util.Rng.int rng 8)
        | _ -> Engine.Barrier
      in
      let trace = Array.init len (fun _ -> instr ()) in
      let r =
        Engine.run { Engine.device; blocks_per_smx = 2; total_blocks = 28; spec = spec_of trace }
      in
      r.Engine.runtime_s >= 0. && r.Engine.instructions = len * 16)

(* --- Measure --- *)

let test_measure_kernel () =
  let p = Motivating.program () in
  let r = Measure.kernel ~device p 0 in
  check Alcotest.bool "positive runtime" true (r.Measure.runtime_s > 0.);
  check Alcotest.bool "bandwidth below device peak" true
    (r.Measure.achieved_gbs < device.Device.gmem_bandwidth_gbs);
  check Alcotest.bool "occupancy positive" true (r.Measure.occupancy.Occupancy.active_blocks > 0)

let test_measure_program_sums () =
  let p = Motivating.program () in
  let total = Measure.program ~device p in
  let parts = Measure.program_results ~device p in
  let sum = Array.fold_left (fun acc r -> acc +. r.Measure.runtime_s) 0. parts in
  check (Alcotest.float 1e-12) "program = sum of kernels" sum total

let test_measure_determinism () =
  let p = Motivating.program () in
  let a = Measure.program ~device p and b = Measure.program ~device p in
  check (Alcotest.float 0.) "deterministic" a b

let test_measure_devices_differ () =
  let p = Motivating.program () in
  let k20 = Measure.program ~device p in
  let k40 = Measure.program ~device:Device.k40 p in
  check Alcotest.bool "faster device is faster" true (k40 < k20)

let test_measure_runtime_respects_traffic () =
  (* Runtime can never beat streaming the kernel's bytes at device peak. *)
  let p = Motivating.program () in
  Array.iteri
    (fun _ r ->
      let floor_s = r.Measure.gmem_bytes /. (device.Device.gmem_bandwidth_gbs *. 1e9) in
      check Alcotest.bool "above streaming floor" true (r.Measure.runtime_s > 0.8 *. floor_s))
    (Measure.program_results ~device p)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_engine_no_deadlock ]

let suite =
  [
    Alcotest.test_case "occupancy thread limit" `Quick test_occupancy_thread_limit;
    Alcotest.test_case "occupancy register limit" `Quick test_occupancy_register_limit;
    Alcotest.test_case "occupancy smem limit" `Quick test_occupancy_smem_limit;
    Alcotest.test_case "occupancy overflow" `Quick test_occupancy_overflow;
    Alcotest.test_case "occupancy fraction" `Quick test_occupancy_fraction;
    Alcotest.test_case "occupancy maxwell blocks" `Quick test_occupancy_maxwell_more_blocks;
    Alcotest.test_case "engine empty trace" `Quick test_engine_empty_trace;
    Alcotest.test_case "engine bandwidth bound" `Quick test_engine_bandwidth_bound;
    Alcotest.test_case "engine latency hiding" `Quick test_engine_latency_hiding;
    Alcotest.test_case "engine barrier sync" `Quick test_engine_barrier_sync;
    Alcotest.test_case "engine conflict factor" `Quick test_engine_conflict_factor;
    Alcotest.test_case "engine stream factor" `Quick test_engine_stream_factor;
    Alcotest.test_case "engine waves" `Quick test_engine_waves;
    Alcotest.test_case "engine zero blocks" `Quick test_engine_zero_blocks;
    Alcotest.test_case "engine prefetch" `Quick test_engine_prefetch_cheaper_than_load;
    Alcotest.test_case "engine mlp cap" `Quick test_engine_mlp_cap;
    Alcotest.test_case "measure kernel" `Quick test_measure_kernel;
    Alcotest.test_case "measure program sums" `Quick test_measure_program_sums;
    Alcotest.test_case "measure determinism" `Quick test_measure_determinism;
    Alcotest.test_case "measure devices differ" `Quick test_measure_devices_differ;
    Alcotest.test_case "measure traffic floor" `Quick test_measure_runtime_respects_traffic;
  ]
  @ qsuite
