(* End-to-end tests of the Algorithm 1 pipeline (Kfuse.Pipeline). *)

module Device = Kf_gpu.Device
module Pipeline = Kfuse.Pipeline
module Hgga = Kf_search.Hgga
module Plan = Kf_fusion.Plan
module Measure = Kf_sim.Measure
module Scale_les = Kf_workloads.Scale_les

let check = Alcotest.check
let device = Device.k20x

let fast_params = { Hgga.default_params with Hgga.max_generations = 60; stall_generations = 25 }

let test_prepare () =
  let p = Scale_les.rk_core () in
  let ctx = Pipeline.prepare ~device p in
  check Alcotest.int "measured every kernel" 18 (Array.length ctx.Pipeline.measured);
  check Alcotest.bool "original runtime positive" true (ctx.Pipeline.original_runtime > 0.);
  let sum =
    Array.fold_left (fun acc r -> acc +. r.Measure.runtime_s) 0. ctx.Pipeline.measured
  in
  check (Alcotest.float 1e-12) "runtime = sum" sum ctx.Pipeline.original_runtime

let test_run_rk_core () =
  let p = Scale_les.rk_core () in
  let o = Pipeline.run ~params:fast_params ~device p in
  check Alcotest.bool "speedup > 1" true (o.Pipeline.speedup > 1.0);
  check Alcotest.bool "fused faster" true (o.Pipeline.fused_runtime < o.Pipeline.context.Pipeline.original_runtime);
  (* The resulting plan is fully valid. *)
  let ctx = o.Pipeline.context in
  check Alcotest.int "plan valid" 0
    (List.length
       (Plan.validate ~device ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec
          o.Pipeline.search.Hgga.plan))

let test_run_deterministic () =
  let p = Scale_les.rk_core () in
  let o1 = Pipeline.run ~params:fast_params ~device p in
  let o2 = Pipeline.run ~params:fast_params ~device p in
  check Alcotest.bool "same plan" true
    (Plan.equal o1.Pipeline.search.Hgga.plan o2.Pipeline.search.Hgga.plan);
  check (Alcotest.float 1e-12) "same speedup" o1.Pipeline.speedup o2.Pipeline.speedup

let test_fused_measurement_consistency () =
  let p = Scale_les.rk_core () in
  let o = Pipeline.run ~params:fast_params ~device p in
  let sum = List.fold_left (fun acc (_, r) -> acc +. r.Measure.runtime_s) 0. o.Pipeline.fused_measured in
  check (Alcotest.float 1e-12) "fused runtime = sum of unit runtimes" sum o.Pipeline.fused_runtime

let test_objective_model_override () =
  let p = Scale_les.rk_core () in
  let ctx = Pipeline.prepare ~device p in
  let obj = Pipeline.objective ~model:Kf_search.Objective.Roofline ctx in
  check Alcotest.bool "roofline objective works" true
    (Float.is_finite (Kf_search.Objective.plan_cost obj (List.init 18 (fun k -> [ k ]))))

let test_profitability_cleanup_holds () =
  (* Every multi-member group in the final plan is model-profitable
     (constraint 1.1 after the Hgga cleanup). *)
  let p = Scale_les.rk_core () in
  let ctx = Pipeline.prepare ~device p in
  let obj = Pipeline.objective ctx in
  let r = Hgga.solve ~params:fast_params obj in
  List.iter
    (fun g ->
      if List.length g >= 2 then
        check Alcotest.bool "profitable group" true (Kf_search.Objective.group_profitable obj g))
    (Plan.groups r.Hgga.plan)

let test_sync_points_respected () =
  (* A host transfer in the middle of the RK core: no fused group may
     cross it, and the speedup shrinks accordingly. *)
  let p = Scale_les.rk_core () in
  let free = Pipeline.run ~params:fast_params ~device p in
  let synced = Pipeline.run ~params:fast_params ~sync_points:[ 8 ] ~device p in
  List.iter
    (fun g ->
      check Alcotest.bool "group stays on one side" false
        (List.exists (fun k -> k <= 8) g && List.exists (fun k -> k > 8) g))
    (Plan.groups synced.Pipeline.search.Hgga.plan);
  check Alcotest.bool "sync constrains benefit" true
    (synced.Pipeline.speedup <= free.Pipeline.speedup +. 1e-9)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_report () =
  let p = Scale_les.rk_core () in
  let o = Pipeline.run ~params:fast_params ~device p in
  let r = Kfuse.Report.render o in
  check Alcotest.bool "has title" true (contains r "# Kernel fusion report");
  check Alcotest.bool "has outcome" true (contains r "**speedup**");
  check Alcotest.bool "lists new kernels" true (contains r "## New kernels");
  check Alcotest.bool "mentions QFLX relaxation" true (contains r "redundant copies");
  let rv = Kfuse.Report.render ~verify:true o in
  check Alcotest.bool "verification included" true (contains rv "bitwise")

let test_paper_params_shape () =
  let pp = Kf_search.Hgga.paper_params in
  check Alcotest.int "population 100" 100 pp.Hgga.population_size;
  check Alcotest.int "2000 generations" 2000 pp.Hgga.max_generations

let suite =
  [
    Alcotest.test_case "prepare" `Quick test_prepare;
    Alcotest.test_case "report" `Slow test_report;
    Alcotest.test_case "paper params" `Quick test_paper_params_shape;
    Alcotest.test_case "sync points respected" `Slow test_sync_points_respected;
    Alcotest.test_case "run rk core" `Slow test_run_rk_core;
    Alcotest.test_case "deterministic" `Slow test_run_deterministic;
    Alcotest.test_case "fused measurement consistency" `Slow test_fused_measurement_consistency;
    Alcotest.test_case "objective model override" `Quick test_objective_model_override;
    Alcotest.test_case "profitability cleanup" `Slow test_profitability_cleanup_holds;
  ]
