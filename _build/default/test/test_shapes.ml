(* Reproduction-shape regression tests: the qualitative results claimed in
   EXPERIMENTS.md must keep holding as the code evolves.  These use reduced
   search budgets, so the asserted ranges are generous. *)

module Device = Kf_gpu.Device
module Pipeline = Kfuse.Pipeline
module Hgga = Kf_search.Hgga
module Inputs = Kf_model.Inputs
module Fused = Kf_fusion.Fused
module Measure = Kf_sim.Measure
module Traffic = Kf_graph.Traffic
module Motivating = Kf_workloads.Motivating

let check = Alcotest.check
let device = Device.k20x

let fast = { Hgga.default_params with Hgga.max_generations = 120; stall_generations = 40 }

let test_table1_scale_les_reducible () =
  (* Paper Table I: SCALE-LES has 41% reducible GMEM traffic. *)
  let p = Kf_workloads.Scale_les.program () in
  let r = Traffic.analyze (Kf_graph.Exec_order.build (Kf_graph.Datadep.build p)) in
  check Alcotest.bool "within [0.36, 0.46]" true
    (r.Traffic.reducible_fraction > 0.36 && r.Traffic.reducible_fraction < 0.46)

let test_table7_homme_speedup_band () =
  (* Paper Table VII: HOMME gains a modest 1.18-1.20x; the reproduction
     over-delivers somewhat but must stay in the modest-speedup class. *)
  let o = Pipeline.run ~params:fast ~device (Kf_workloads.Homme.program ()) in
  check Alcotest.bool "within [1.1, 1.6]" true
    (o.Pipeline.speedup > 1.1 && o.Pipeline.speedup < 1.6)

let test_motivating_story () =
  (* Paper §IV-B: X profits, Y degrades, naive models endorse Y, the
     proposed model rejects it. *)
  let p = Motivating.program () in
  let ctx = Pipeline.prepare ~device p in
  let i = ctx.Pipeline.inputs in
  let f g = Fused.build ~device ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec ~group:g in
  let x = f Motivating.fusion_x and y = f Motivating.fusion_y in
  let mx = (Measure.fused ~device p x).Measure.runtime_s in
  let my = (Measure.fused ~device p y).Measure.runtime_s in
  let ox = Inputs.original_sum i Motivating.fusion_x in
  let oy = Inputs.original_sum i Motivating.fusion_y in
  check Alcotest.bool "X profitable" true (mx < ox);
  check Alcotest.bool "Y degrades" true (my > oy);
  check Alcotest.bool "roofline endorses Y" true (Kf_model.Roofline.runtime i y < oy);
  check Alcotest.bool "simple endorses Y" true (Kf_model.Simple_model.runtime i y < oy);
  check Alcotest.bool "proposed rejects Y" true (Kf_model.Projection.runtime i y > oy)

let test_fig6_model_ordering () =
  (* Paper Fig. 6: across the suite, Roofline < simple ≤ measured and the
     proposed bound tracks measured most closely. *)
  let p =
    Kf_workloads.Suite.generate
      { Kf_workloads.Suite.default with Kf_workloads.Suite.kernels = 20; arrays = 40; seed = 20 }
  in
  let ctx = Pipeline.prepare ~device p in
  let i = ctx.Pipeline.inputs in
  let r = Hgga.solve ~params:fast (Pipeline.objective ctx) in
  let groups =
    List.filter (fun g -> List.length g >= 2) (Kf_fusion.Plan.groups r.Hgga.plan)
  in
  check Alcotest.bool "found fusions" true (groups <> []);
  let sum f = List.fold_left (fun acc g -> acc +. f g) 0. groups in
  let build g = Fused.build ~device ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec ~group:g in
  let measured = sum (fun g -> (Measure.fused ~device p (build g)).Measure.runtime_s) in
  let roofline = sum (fun g -> Kf_model.Roofline.runtime i (build g)) in
  let simple = sum (fun g -> Kf_model.Simple_model.runtime i (build g)) in
  let proposed = sum (fun g -> Kf_model.Projection.runtime i (build g)) in
  check Alcotest.bool "roofline most optimistic" true (roofline < simple);
  check Alcotest.bool "simple below measured" true (simple < measured);
  check Alcotest.bool "proposed tracks measured within 35%" true
    (Float.abs (proposed -. measured) /. measured < 0.35)

let test_evalcost_ordering () =
  (* The codeless projection must stay orders of magnitude cheaper than a
     simulator-backed evaluation (the paper's scalability argument). *)
  let p = Kf_workloads.Scale_les.rk_core () in
  let ctx = Pipeline.prepare ~device p in
  let i = ctx.Pipeline.inputs in
  let f =
    Fused.build ~device ~meta:ctx.Pipeline.meta ~exec:ctx.Pipeline.exec ~group:[ 7; 9; 8 ]
  in
  let time fn =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 50 do
      ignore (fn ())
    done;
    Unix.gettimeofday () -. t0
  in
  let proj = time (fun () -> Kf_model.Projection.runtime i f) in
  let sim = time (fun () -> (Measure.fused ~device p f).Measure.runtime_s) in
  check Alcotest.bool "projection 50x cheaper than simulation" true (sim > 50. *. proj)

let test_smem_capacity_helps () =
  (* Paper §VI-E: more SMEM, more fusion benefit (projected). *)
  let p = Kf_workloads.Scale_les.rk_core () in
  let base = Pipeline.run ~params:fast ~device p in
  let big = Pipeline.run ~params:fast ~device:(Device.with_smem device (256 * 1024)) p in
  let projected (o : Pipeline.outcome) =
    o.Pipeline.context.Pipeline.original_runtime /. o.Pipeline.search.Hgga.cost
  in
  check Alcotest.bool "bigger SMEM projects at least as much gain" true
    (projected big >= projected base *. 0.98)

let suite =
  [
    Alcotest.test_case "table1: SCALE-LES reducible traffic" `Quick test_table1_scale_les_reducible;
    Alcotest.test_case "table7: HOMME speedup band" `Slow test_table7_homme_speedup_band;
    Alcotest.test_case "motivating story" `Slow test_motivating_story;
    Alcotest.test_case "fig6 model ordering" `Slow test_fig6_model_ordering;
    Alcotest.test_case "evalcost ordering" `Slow test_evalcost_ordering;
    Alcotest.test_case "smem capacity helps" `Slow test_smem_capacity_helps;
  ]
