(* Tests for Kf_graph: DAGs, data-dependency analysis, order-of-execution
   graphs, traffic analysis. *)

open Kf_ir
module Dag = Kf_graph.Dag
module Datadep = Kf_graph.Datadep
module Exec_order = Kf_graph.Exec_order
module Traffic = Kf_graph.Traffic
module Bitset = Kf_util.Bitset

let check = Alcotest.check

(* --- Dag --- *)

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3 *)
  Dag.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_dag_basics () =
  let g = diamond () in
  check Alcotest.int "nodes" 4 (Dag.num_nodes g);
  check Alcotest.int "edges" 4 (Dag.num_edges g);
  check Alcotest.bool "has edge" true (Dag.has_edge g 0 1);
  check Alcotest.bool "no reverse edge" false (Dag.has_edge g 1 0);
  check Alcotest.(list int) "succs" [ 1; 2 ] (Dag.succs g 0);
  check Alcotest.(list int) "preds" [ 1; 2 ] (Dag.preds g 3);
  Dag.add_edge g 0 1;
  check Alcotest.int "duplicate ignored" 4 (Dag.num_edges g)

let test_dag_self_loop () =
  let g = Dag.create 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.add_edge: self-loop") (fun () ->
      Dag.add_edge g 1 1)

let test_dag_topo () =
  let g = diamond () in
  check Alcotest.(list int) "topo" [ 0; 1; 2; 3 ] (Dag.topo_sort g);
  check Alcotest.bool "acyclic" true (Dag.is_acyclic g)

let test_dag_cycle_detection () =
  let g = Dag.of_edges 3 [ (0, 1); (1, 2) ] in
  check Alcotest.bool "acyclic before" true (Dag.is_acyclic g);
  Dag.add_edge g 2 0;
  check Alcotest.bool "cyclic after" false (Dag.is_acyclic g)

let test_dag_reachability () =
  let g = diamond () in
  check Alcotest.bool "0 reaches 3" true (Dag.reaches g 0 3);
  check Alcotest.bool "reflexive" true (Dag.reaches g 1 1);
  check Alcotest.bool "1 not to 2" false (Dag.reaches g 1 2);
  check Alcotest.(list int) "on path 0-3" [ 0; 1; 2; 3 ] (Dag.on_some_path g 0 3);
  check Alcotest.(list int) "no path 1-2" [] (Dag.on_some_path g 1 2)

let test_dag_path_closure () =
  let g = diamond () in
  let s = Bitset.of_list 4 [ 0; 3 ] in
  let c = Dag.path_closure g s in
  check Alcotest.(list int) "closure pulls middle" [ 0; 1; 2; 3 ] (Bitset.to_list c);
  let s2 = Bitset.of_list 4 [ 1; 2 ] in
  check Alcotest.(list int) "independent pair closed" [ 1; 2 ]
    (Bitset.to_list (Dag.path_closure g s2))

let test_dag_ancestors_descendants () =
  let g = diamond () in
  check Alcotest.(list int) "descendants of 0" [ 0; 1; 2; 3 ] (Bitset.to_list (Dag.descendants g 0));
  check Alcotest.(list int) "ancestors of 3" [ 0; 1; 2; 3 ] (Bitset.to_list (Dag.ancestors g 3));
  check Alcotest.(list int) "ancestors of 1" [ 0; 1 ] (Bitset.to_list (Dag.ancestors g 1))

let random_dag seed n =
  (* Random DAG: edges only from lower to higher index. *)
  let rng = Kf_util.Rng.create seed in
  let g = Dag.create n in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      if Kf_util.Rng.chance rng 0.25 then Dag.add_edge g u v
    done
  done;
  g

let prop_topo_respects_edges =
  QCheck.Test.make ~count:100 ~name:"topological order respects all edges"
    QCheck.(pair small_int (int_range 2 15))
    (fun (seed, n) ->
      let g = random_dag seed n in
      let order = Dag.topo_sort g in
      let rank = Array.make n 0 in
      List.iteri (fun i v -> rank.(v) <- i) order;
      List.for_all
        (fun u -> List.for_all (fun v -> rank.(u) < rank.(v)) (Dag.succs g u))
        (List.init n (fun i -> i)))

let prop_closure_idempotent =
  QCheck.Test.make ~count:100 ~name:"path closure is an idempotent superset"
    QCheck.(triple small_int (int_range 2 12) (list (int_bound 11)))
    (fun (seed, n, members) ->
      let g = random_dag seed n in
      let members = List.filter (fun v -> v < n) members in
      QCheck.assume (members <> []);
      let s = Bitset.of_list n members in
      let c = Dag.path_closure g s in
      Bitset.subset s c && Bitset.equal c (Dag.path_closure g c))

let prop_reaches_matches_dfs =
  QCheck.Test.make ~count:100 ~name:"bitset reachability matches DFS"
    QCheck.(triple small_int (int_range 2 12) (pair (int_bound 11) (int_bound 11)))
    (fun (seed, n, (a, b)) ->
      QCheck.assume (a < n && b < n);
      let g = random_dag seed n in
      let visited = Array.make n false in
      let rec dfs v =
        if not visited.(v) then begin
          visited.(v) <- true;
          List.iter dfs (Dag.succs g v)
        end
      in
      dfs a;
      Dag.reaches g a b = visited.(b))

(* --- Datadep --- *)

let acc array mode pattern flops = { Access.array; mode; pattern; flops }

(* Program exercising all four array classes:
   ro: read by k0 and k1 (never written)        -> Read_only
   wo: written by k0                             -> Write_only
   rw: written by k0, read by k1                 -> Read_write
   ex: written k1, read k2, written k2... we model the QFLX pattern:
       k1 writes ex, k2 reads ex, k3 writes ex, k4 reads ex -> Expandable *)
let classes_program () =
  let g = Grid.make ~nx:64 ~ny:32 ~nz:2 ~block_x:16 ~block_y:8 in
  let arrays =
    List.mapi (fun id name -> Array_info.make ~id ~name ()) [ "ro"; "wo"; "rw"; "ex" ]
  in
  let kernels =
    [
      Kernel.make ~id:0 ~name:"k0"
        ~accesses:
          [
            acc 0 Access.Read Stencil.point 1.;
            acc 1 Access.Write Stencil.point 0.;
            acc 2 Access.Write Stencil.point 0.;
          ]
        ();
      Kernel.make ~id:1 ~name:"k1"
        ~accesses:
          [
            acc 0 Access.Read Stencil.star5 1.;
            acc 2 Access.Read Stencil.point 1.;
            acc 3 Access.Write Stencil.point 0.;
          ]
        ();
      Kernel.make ~id:2 ~name:"k2" ~accesses:[ acc 3 Access.Read Stencil.star5 1.; acc 1 Access.Write Stencil.point 0. ] ();
      Kernel.make ~id:3 ~name:"k3" ~accesses:[ acc 3 Access.Write Stencil.point 0. ] ();
      Kernel.make ~id:4 ~name:"k4" ~accesses:[ acc 3 Access.Read Stencil.point 1.; acc 1 Access.Write Stencil.point 0. ] ();
    ]
  in
  Program.create ~name:"classes" ~grid:g ~arrays ~kernels

let test_datadep_classes () =
  let dd = Datadep.build (classes_program ()) in
  let cls = Alcotest.testable (Fmt.of_to_string Datadep.class_to_string) ( = ) in
  check cls "ro" Datadep.Read_only (Datadep.array_class dd 0);
  check cls "wo" Datadep.Write_only (Datadep.array_class dd 1);
  check cls "rw" Datadep.Read_write (Datadep.array_class dd 2);
  check cls "ex" Datadep.Expandable (Datadep.array_class dd 3)

let test_datadep_generations () =
  let dd = Datadep.build (classes_program ()) in
  check Alcotest.int "ro generations" 0 (Datadep.generations dd 0);
  check Alcotest.int "ex generations" 2 (Datadep.generations dd 3)

let test_datadep_edges () =
  let dd = Datadep.build (classes_program ()) in
  let flow = Datadep.flow_edges dd in
  (* k0 -w-> rw -r-> k1; k1 -w-> ex -r-> k2; k3 -w-> ex -r-> k4. *)
  let has src dst array =
    List.exists (fun (e : Datadep.edge) -> e.src = src && e.dst = dst && e.array = array) flow
  in
  check Alcotest.bool "rw flow" true (has 0 1 2);
  check Alcotest.bool "ex gen1 flow" true (has 1 2 3);
  check Alcotest.bool "ex gen2 flow" true (has 3 4 3);
  check Alcotest.bool "no cross-generation flow" false (has 1 4 3)

let test_datadep_redundant_bytes () =
  let p = classes_program () in
  let dd = Datadep.build p in
  (* One expandable array with 2 generations: one redundant copy. *)
  check Alcotest.int "copy bytes" (64 * 32 * 2 * 8) (Datadep.redundant_copy_bytes dd p.Program.grid)

(* --- Exec_order --- *)

let test_exec_order_relaxation () =
  let dd = Datadep.build (classes_program ()) in
  let strict = Exec_order.build ~relax_expandable:false dd in
  let relaxed = Exec_order.build ~relax_expandable:true dd in
  (* Strict keeps the anti/output edges of the expandable array: k2 (reads
     ex gen 1) must precede k3 (writes gen 2). *)
  check Alcotest.bool "strict keeps WAR" true (Exec_order.must_precede strict 2 3);
  check Alcotest.bool "relaxed drops WAR" false (Exec_order.must_precede relaxed 2 3);
  (* Flow edges survive relaxation. *)
  check Alcotest.bool "flow kept" true (Exec_order.must_precede relaxed 1 2);
  check Alcotest.bool "extra memory" true (Exec_order.extra_memory_bytes relaxed > 0);
  check Alcotest.int "strict no extra memory" 0 (Exec_order.extra_memory_bytes strict)

let test_exec_order_convexity () =
  let dd = Datadep.build (classes_program ()) in
  let exec = Exec_order.build dd in
  (* k1 -> k2 via ex: {1,2} convex; {0,2} needs 1 if 0->1->2 path exists
     (0 -> 1 via rw, 1 -> 2 via ex). *)
  check Alcotest.bool "{1,2} convex" true (Exec_order.group_is_convex exec [ 1; 2 ]);
  check Alcotest.bool "{0,2} not convex" false (Exec_order.group_is_convex exec [ 0; 2 ]);
  check Alcotest.(list int) "convexify {0,2}" [ 0; 1; 2 ] (Exec_order.convexify exec [ 0; 2 ])

let test_exec_order_group_order () =
  let dd = Datadep.build (classes_program ()) in
  let exec = Exec_order.build dd in
  check Alcotest.(list int) "segments ordered" [ 0; 1; 2 ] (Exec_order.group_order exec [ 2; 0; 1 ])

let test_exec_order_barrier () =
  let dd = Datadep.build (classes_program ()) in
  let exec = Exec_order.build dd in
  check Alcotest.bool "flow pair needs barrier" true (Exec_order.fusion_barrier_needed exec [ 1; 2 ]);
  check Alcotest.bool "independent pair does not" false
    (Exec_order.fusion_barrier_needed exec [ 2; 3 ])

let test_exec_order_extra_edges () =
  let dd = Datadep.build (classes_program ()) in
  (* A host-transfer barrier between k2 and k3 adds a precedence the data
     dependencies alone do not require (after relaxation). *)
  let exec = Exec_order.build ~extra_edges:[ (2, 3) ] dd in
  check Alcotest.bool "transfer edge enforced" true (Exec_order.must_precede exec 2 3);
  (* An edge against an existing path is rejected: k0 reaches k4 through
     the wo output chain, so 4 -> 0 closes a cycle. *)
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Exec_order.build: extra edges introduced a cycle") (fun () ->
      ignore (Exec_order.build ~extra_edges:[ (4, 0) ] dd))

let test_exec_order_sync_points () =
  let dd = Datadep.build (classes_program ()) in
  let exec = Exec_order.build ~sync_points:[ 2 ] dd in
  check Alcotest.(list int) "stored" [ 2 ] (Exec_order.sync_points exec);
  (* The sync orders every earlier kernel before every later one. *)
  check Alcotest.bool "k0 before k4" true (Exec_order.must_precede exec 0 4);
  check Alcotest.bool "k2 before k3" true (Exec_order.must_precede exec 2 3);
  check Alcotest.bool "spanning group flagged" true (Exec_order.group_spans_sync exec [ 1; 3 ]);
  check Alcotest.bool "same-side group fine" false (Exec_order.group_spans_sync exec [ 0; 1 ]);
  check Alcotest.bool "after-side group fine" false (Exec_order.group_spans_sync exec [ 3; 4 ]);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Exec_order.build: sync point 4 out of [0,4)") (fun () ->
      ignore (Exec_order.build ~sync_points:[ 4 ] dd))

let test_sync_point_blocks_fusion () =
  (* End to end: with a sync point between A and B, the motivating X
     fusion becomes illegal and the plan checker reports it. *)
  let p = Kf_workloads.Motivating.program () in
  let meta = Kf_ir.Metadata.build p in
  let exec = Exec_order.build ~sync_points:[ 0 ] (Datadep.build p) in
  let plan = Kf_fusion.Plan.of_groups ~n:5 [ [ 0; 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ] in
  let violations = Kf_fusion.Plan.validate ~meta ~exec plan in
  check Alcotest.bool "spanning fusion rejected" true
    (List.exists
       (function Kf_fusion.Plan.Spans_sync_point _ -> true | _ -> false)
       violations)

(* --- Traffic --- *)

let test_traffic_totals () =
  let p = classes_program () in
  let dd = Datadep.build p in
  let exec = Exec_order.build dd in
  let r = Traffic.analyze exec in
  check Alcotest.bool "total positive" true (r.Traffic.total_bytes > 0.);
  check Alcotest.bool "reducible below total" true
    (r.Traffic.reducible_bytes < r.Traffic.total_bytes);
  (* Only the staged (multi-point) repeats count: ro re-read by k1 with
     star5, ex re-read by k2 with star5; rw and the gen-2 ex re-read are
     point reads. *)
  let field = float_of_int (64 * 32 * 2 * 8) in
  check (Alcotest.float 1.) "reducible = 2 staged re-reads" (2. *. field)
    r.Traffic.reducible_bytes

let test_traffic_kernel_bytes () =
  let p = classes_program () in
  let b0 = Traffic.kernel_bytes p 0 in
  (* k0: reads ro (point), writes wo and rw: 3 footprints, no boundary. *)
  check (Alcotest.float 1.) "k0 bytes" (3. *. float_of_int (64 * 32 * 2 * 8)) b0;
  (* k1 reads ro with star5: footprint + boundary ring. *)
  let b1 = Traffic.kernel_bytes p 1 in
  check Alcotest.bool "k1 has boundary refetch" true
    (b1 > 3. *. float_of_int (64 * 32 * 2 * 8))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_topo_respects_edges; prop_closure_idempotent; prop_reaches_matches_dfs ]

let suite =
  [
    Alcotest.test_case "dag basics" `Quick test_dag_basics;
    Alcotest.test_case "dag self loop" `Quick test_dag_self_loop;
    Alcotest.test_case "dag topo" `Quick test_dag_topo;
    Alcotest.test_case "dag cycle detection" `Quick test_dag_cycle_detection;
    Alcotest.test_case "dag reachability" `Quick test_dag_reachability;
    Alcotest.test_case "dag path closure" `Quick test_dag_path_closure;
    Alcotest.test_case "dag ancestors/descendants" `Quick test_dag_ancestors_descendants;
    Alcotest.test_case "datadep classes" `Quick test_datadep_classes;
    Alcotest.test_case "datadep generations" `Quick test_datadep_generations;
    Alcotest.test_case "datadep edges" `Quick test_datadep_edges;
    Alcotest.test_case "datadep redundant bytes" `Quick test_datadep_redundant_bytes;
    Alcotest.test_case "exec-order relaxation" `Quick test_exec_order_relaxation;
    Alcotest.test_case "exec-order convexity" `Quick test_exec_order_convexity;
    Alcotest.test_case "exec-order group order" `Quick test_exec_order_group_order;
    Alcotest.test_case "exec-order barriers" `Quick test_exec_order_barrier;
    Alcotest.test_case "exec-order extra edges" `Quick test_exec_order_extra_edges;
    Alcotest.test_case "exec-order sync points" `Quick test_exec_order_sync_points;
    Alcotest.test_case "sync point blocks fusion" `Quick test_sync_point_blocks_fusion;
    Alcotest.test_case "traffic totals" `Quick test_traffic_totals;
    Alcotest.test_case "traffic kernel bytes" `Quick test_traffic_kernel_bytes;
  ]
  @ qsuite
