(* Tests for the extension modules: DOT export, program text IO, invocation
   unrolling, simulated annealing, block-size tuning. *)

open Kf_ir
module Dot = Kf_graph.Dot
module Datadep = Kf_graph.Datadep
module Exec_order = Kf_graph.Exec_order
module Annealing = Kf_search.Annealing
module Hgga = Kf_search.Hgga
module Objective = Kf_search.Objective
module Plan = Kf_fusion.Plan
module Measure = Kf_sim.Measure
module Block_tuner = Kfuse.Block_tuner
module Suite = Kf_workloads.Suite
module Motivating = Kf_workloads.Motivating

let check = Alcotest.check
let device = Kf_gpu.Device.k20x

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Dot --- *)

let test_dot_data_dependency () =
  let p = Kf_workloads.Scale_les.rk_core () in
  let dd = Datadep.build p in
  let dot = Dot.data_dependency dd in
  check Alcotest.bool "digraph" true (contains dot "digraph data_dependency");
  check Alcotest.bool "kernel node" true (contains dot "rk_ddiv");
  check Alcotest.bool "array node" true (contains dot "QFLX");
  (* QFLX is expandable: blue in the paper's legend. *)
  check Alcotest.bool "expandable colored blue" true (contains dot "#6fa8dc");
  check Alcotest.bool "read-only colored red" true (contains dot "#e06666")

let test_dot_order_of_execution () =
  let p = Motivating.program () in
  let exec = Exec_order.build (Datadep.build p) in
  let dot = Dot.order_of_execution exec in
  check Alcotest.bool "digraph" true (contains dot "digraph order_of_execution");
  (* A -> B precedence must appear as an edge k0 -> k1. *)
  check Alcotest.bool "A->B edge" true (contains dot "k0 -> k1")

let test_dot_groups () =
  let p = Motivating.program () in
  let exec = Exec_order.build (Datadep.build p) in
  let dot = Dot.order_of_execution_with_groups exec [ [ 0; 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ] in
  check Alcotest.bool "cluster for fused group" true (contains dot "subgraph cluster_1");
  check Alcotest.bool "dashed style" true (contains dot "style=dashed")

(* --- Program_io --- *)

let demo_text =
  {|# demo
program demo
grid 128 64 4 blocks 16 8
array temp
array lap elem 8
array sfc extent 2d elem 4
kernel laplacian regs 28
  read temp star5 4.0
  write lap point
kernel update regs 32 active 0.75 extra 2.0
  readwrite temp point 2.0
  read lap load:8 3.0
  read sfc offsets (0,0,0)(1,0,0) 1.5
|}

let test_io_parse () =
  let p = Program_io.parse demo_text in
  check Alcotest.string "name" "demo" p.Program.name;
  check Alcotest.int "kernels" 2 (Program.num_kernels p);
  check Alcotest.int "arrays" 3 (Program.num_arrays p);
  check Alcotest.int "block threads" 128 (Grid.threads_per_block p.Program.grid);
  let k0 = Program.kernel p 0 in
  check Alcotest.int "regs" 28 k0.Kernel.registers_per_thread;
  check Alcotest.int "star5 load" 5 (Kernel.thread_load k0 0);
  let k1 = Program.kernel p 1 in
  check (Alcotest.float 1e-9) "active fraction" 0.75 k1.Kernel.active_fraction;
  check Alcotest.int "load:8 points" 8 (Kernel.thread_load k1 1);
  check Alcotest.int "explicit offsets" 2 (Kernel.thread_load k1 2);
  let sfc = Program.array p 2 in
  check Alcotest.int "elem bytes" 4 sfc.Array_info.elem_bytes;
  check Alcotest.bool "2d extent" true (sfc.Array_info.extent = Array_info.Plane2d)

let test_io_roundtrip () =
  let p = Program_io.parse demo_text in
  let p2 = Program_io.parse (Program_io.print p) in
  check Alcotest.string "name survives" p.Program.name p2.Program.name;
  check Alcotest.int "kernels survive" (Program.num_kernels p) (Program.num_kernels p2);
  Array.iteri
    (fun i (k : Kernel.t) ->
      let k2 = Program.kernel p2 i in
      check Alcotest.string "kernel name" k.Kernel.name k2.Kernel.name;
      check Alcotest.bool "accesses equal" true (k.Kernel.accesses = k2.Kernel.accesses);
      check Alcotest.int "regs" k.Kernel.registers_per_thread k2.Kernel.registers_per_thread)
    p.Program.kernels

let test_io_roundtrip_workloads () =
  (* Every built-in workload must round-trip. *)
  List.iter
    (fun p ->
      let p2 = Program_io.parse (Program_io.print p) in
      check Alcotest.int (p.Program.name ^ " kernels") (Program.num_kernels p)
        (Program.num_kernels p2);
      check Alcotest.int (p.Program.name ^ " arrays") (Program.num_arrays p)
        (Program.num_arrays p2);
      (* The simulator agrees the programs are the same. *)
      check (Alcotest.float 1e-12) "same measured runtime" (Measure.program ~device p)
        (Measure.program ~device p2))
    [ Motivating.program (); Kf_workloads.Scale_les.rk_core () ]

let test_io_errors () =
  let expect_line n text =
    match Program_io.parse text with
    | exception Program_io.Parse_error (line, _) -> check Alcotest.int "error line" n line
    | _ -> Alcotest.fail "expected parse error"
  in
  expect_line 1 "nonsense";
  expect_line 2 "program x\ngrid 1 2\n";
  expect_line 3 "program x\ngrid 8 8 1 blocks 8 8\nread foo\n";
  expect_line 4 "program x\ngrid 8 8 1 blocks 8 8\nkernel k\n  read missing point\n"

let test_io_file () =
  let p = Motivating.program () in
  let path = Filename.temp_file "kfuse" ".kf" in
  Program_io.write_file path p;
  let p2 = Program_io.parse_file path in
  Sys.remove path;
  check Alcotest.int "kernels" (Program.num_kernels p) (Program.num_kernels p2)

let prop_io_roundtrip_random =
  QCheck.Test.make ~count:40 ~name:"text format round-trips arbitrary generated programs"
    QCheck.small_int
    (fun seed ->
      let p =
        Suite.generate
          { Suite.default with Suite.kernels = 6 + (seed mod 12); arrays = 14 + (seed mod 20);
            thread_load = 1 + (seed mod 12); seed }
      in
      let p2 = Program_io.parse (Program_io.print p) in
      Kf_ir.Program.num_kernels p2 = Kf_ir.Program.num_kernels p
      && Kf_ir.Program.num_arrays p2 = Kf_ir.Program.num_arrays p
      && Measure.program ~device p2 = Measure.program ~device p)

(* --- Unroll --- *)

let test_unroll_repeat () =
  let p = Kf_workloads.Scale_les.rk_core () in
  let p3 = Unroll.repeat ~times:3 p in
  check Alcotest.int "3x kernels" (3 * Program.num_kernels p) (Program.num_kernels p3);
  check Alcotest.int "same arrays" (Program.num_arrays p) (Program.num_arrays p3);
  check Alcotest.(list string) "still valid" [] (Program.validate p3);
  check Alcotest.string "clone names" "rk_ddiv@2"
    (Program.kernel p3 (Program.num_kernels p)).Kernel.name;
  check Alcotest.int "original_of maps back" 5 (Unroll.original_of p3 (Program.num_kernels p + 5))

let test_unroll_identity () =
  let p = Motivating.program () in
  check Alcotest.bool "times=1 is identity" true (Unroll.repeat ~times:1 p == p);
  Alcotest.check_raises "times=0" (Invalid_argument "Unroll.repeat: need at least one invocation")
    (fun () -> ignore (Unroll.repeat ~times:0 p))

let test_unroll_creates_expandable () =
  (* Each iteration rewrites the write-only outputs: their classes become
     multi-generation after unrolling. *)
  let p = Unroll.repeat ~times:2 (Kf_workloads.Scale_les.rk_core ()) in
  let dd = Datadep.build p in
  let q = Kf_workloads.Scale_les.qflx p in
  check Alcotest.int "QFLX generations doubled" 4 (Datadep.generations dd q)

let test_unroll_fusion_across_iterations () =
  (* The fusion search can now fuse across sub-step boundaries. *)
  let p = Unroll.repeat ~times:2 (Kf_workloads.Scale_les.rk_core ()) in
  let o =
    Kfuse.Pipeline.run
      ~params:{ Hgga.default_params with Hgga.max_generations = 60; stall_generations = 25 }
      ~device p
  in
  check Alcotest.bool "speedup" true (o.Kfuse.Pipeline.speedup > 1.0)

(* --- Annealing --- *)

let test_annealing () =
  let p = Suite.generate { Suite.default with Suite.kernels = 15; arrays = 30; seed = 4 } in
  let ctx = Kfuse.Pipeline.prepare ~device p in
  let obj = Kfuse.Pipeline.objective ctx in
  let identity_cost = Objective.plan_cost obj (List.init 15 (fun k -> [ k ])) in
  let r = Annealing.solve obj in
  check Alcotest.bool "improves" true (r.Annealing.cost < identity_cost);
  check Alcotest.bool "accepted moves" true (r.Annealing.accepted > 0);
  let i = Objective.inputs obj in
  check Alcotest.int "plan valid" 0
    (List.length
       (Plan.validate ~device ~meta:i.Kf_model.Inputs.meta ~exec:i.Kf_model.Inputs.exec
          r.Annealing.plan))

let test_annealing_deterministic () =
  let p = Suite.generate { Suite.default with Suite.kernels = 12; arrays = 24; seed = 5 } in
  let run () =
    let ctx = Kfuse.Pipeline.prepare ~device p in
    (Annealing.solve (Kfuse.Pipeline.objective ctx)).Annealing.cost
  in
  check (Alcotest.float 0.) "same result" (run ()) (run ())

let test_annealing_near_hgga () =
  let p = Suite.generate { Suite.default with Suite.kernels = 15; arrays = 30; seed = 6 } in
  let ctx = Kfuse.Pipeline.prepare ~device p in
  let sa = Annealing.solve (Kfuse.Pipeline.objective ctx) in
  let ga =
    Hgga.solve
      ~params:{ Hgga.default_params with Hgga.max_generations = 150 }
      (Kfuse.Pipeline.objective ctx)
  in
  (* Two unrelated metaheuristics should agree within 15%. *)
  check Alcotest.bool "sa within 15% of hgga" true (sa.Annealing.cost <= ga.Hgga.cost *. 1.15)

(* --- TeaLeaf --- *)

let test_tealeaf_shape () =
  let p = Kf_workloads.Tealeaf.program () in
  check Alcotest.int "18 kernels (4 init + 3x4 CG + 2 finish)" 18 (Kf_ir.Program.num_kernels p);
  check Alcotest.(list string) "validates" [] (Kf_ir.Program.validate p);
  let p5 = Kf_workloads.Tealeaf.program ~cg_iterations:5 () in
  check Alcotest.int "26 kernels at 5 iterations" 26 (Kf_ir.Program.num_kernels p5);
  Alcotest.check_raises "0 iterations"
    (Invalid_argument "Tealeaf.program: need at least one CG iteration") (fun () ->
      ignore (Kf_workloads.Tealeaf.program ~cg_iterations:0 ()))

let test_tealeaf_cg_dependencies () =
  (* The CG kernels chain: w = Ap must precede the p.w reduction which
     must precede the u/r update which must precede the new direction. *)
  let p = Kf_workloads.Tealeaf.cg_step () in
  let exec = Exec_order.build (Datadep.build p) in
  check Alcotest.bool "w before pw" true (Exec_order.must_precede exec 4 5);
  check Alcotest.bool "pw before ur" true (Exec_order.must_precede exec 5 6);
  check Alcotest.bool "ur before p-update" true (Exec_order.must_precede exec 6 7)

let test_tealeaf_fusion_profits () =
  let p = Kf_workloads.Tealeaf.program () in
  let o =
    Kfuse.Pipeline.run
      ~params:{ Hgga.default_params with Hgga.max_generations = 80; stall_generations = 30 }
      ~device p
  in
  check Alcotest.bool "speedup" true (o.Kfuse.Pipeline.speedup > 1.0)

(* --- Parallel search --- *)

let test_hgga_domains_deterministic () =
  (* The domain count never changes the search result — each child draws
     from its own pre-split RNG. *)
  let p = Suite.generate { Suite.default with Suite.kernels = 14; arrays = 28; seed = 31 } in
  let solve domains =
    let ctx = Kfuse.Pipeline.prepare ~device p in
    Hgga.solve
      ~params:{ Hgga.default_params with Hgga.max_generations = 50; domains }
      (Kfuse.Pipeline.objective ctx)
  in
  let r1 = solve 1 and r2 = solve 2 and r3 = solve 3 in
  check Alcotest.bool "1 = 2 domains" true (Plan.equal r1.Hgga.plan r2.Hgga.plan);
  check Alcotest.bool "1 = 3 domains" true (Plan.equal r1.Hgga.plan r3.Hgga.plan);
  check (Alcotest.float 0.) "same cost" r1.Hgga.cost r3.Hgga.cost

(* --- Read-only cache --- *)

let test_readonly_cache_relieves_smem () =
  (* A fusion staging a read-only array keeps it out of SMEM when the
     device allows the read-only cache. *)
  let p = Kf_workloads.Scale_les.rk_core () in
  let meta = Metadata.build p in
  let exec = Exec_order.build (Datadep.build p) in
  (* Kernels 5 (numdiff_rho) and 1 (src_w) both read read-only CZ; 5 also
     reads DENS (read-write).  Use a known feasible group. *)
  let group = [ 1; 2 ] in
  let base = Kf_fusion.Fused.build ~device ~meta ~exec ~group in
  let roc =
    Kf_fusion.Fused.build ~device:(Kf_gpu.Device.with_readonly_cache device true) ~meta ~exec
      ~group
  in
  check Alcotest.bool "ro bytes appear or smem shrinks" true
    (roc.Kf_fusion.Fused.ro_bytes_per_block > 0
     && roc.Kf_fusion.Fused.smem_bytes_per_block <= base.Kf_fusion.Fused.smem_bytes_per_block
    || roc.Kf_fusion.Fused.ro_staged = [])

let test_readonly_cache_device_toggle () =
  let d = Kf_gpu.Device.with_readonly_cache device true in
  check Alcotest.bool "flag set" true d.Kf_gpu.Device.use_readonly_cache;
  check Alcotest.bool "name marked" true (contains d.Kf_gpu.Device.name "ROC");
  let d2 = Kf_gpu.Device.with_readonly_cache device false in
  check Alcotest.bool "idempotent off" true (d2 == device)

(* --- Block tuner --- *)

let test_block_tuner () =
  let p = Kf_workloads.Scale_les.rk_core () in
  let fast = { Hgga.default_params with Hgga.max_generations = 40; stall_generations = 20 } in
  let candidates, best = Block_tuner.tune ~tiles:[ (32, 8); (16, 16) ] ~params:fast ~device p in
  check Alcotest.int "two candidates" 2 (List.length candidates);
  check Alcotest.bool "best is a candidate" true
    (List.exists
       (fun c -> c.Block_tuner.block_x = best.Block_tuner.block_x
                 && c.Block_tuner.block_y = best.Block_tuner.block_y)
       candidates);
  List.iter
    (fun c ->
      check Alcotest.bool "positive runtime" true
        (c.Block_tuner.outcome.Kfuse.Pipeline.fused_runtime > 0.))
    candidates

let suite =
  [
    Alcotest.test_case "dot data dependency" `Quick test_dot_data_dependency;
    Alcotest.test_case "dot order of execution" `Quick test_dot_order_of_execution;
    Alcotest.test_case "dot groups" `Quick test_dot_groups;
    Alcotest.test_case "io parse" `Quick test_io_parse;
    Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip;
    Alcotest.test_case "io roundtrip workloads" `Quick test_io_roundtrip_workloads;
    Alcotest.test_case "io errors" `Quick test_io_errors;
    Alcotest.test_case "io file" `Quick test_io_file;
    QCheck_alcotest.to_alcotest prop_io_roundtrip_random;
    Alcotest.test_case "unroll repeat" `Quick test_unroll_repeat;
    Alcotest.test_case "unroll identity" `Quick test_unroll_identity;
    Alcotest.test_case "unroll expandable" `Quick test_unroll_creates_expandable;
    Alcotest.test_case "unroll fusion" `Slow test_unroll_fusion_across_iterations;
    Alcotest.test_case "annealing" `Slow test_annealing;
    Alcotest.test_case "annealing deterministic" `Slow test_annealing_deterministic;
    Alcotest.test_case "annealing vs hgga" `Slow test_annealing_near_hgga;
    Alcotest.test_case "tealeaf shape" `Quick test_tealeaf_shape;
    Alcotest.test_case "tealeaf cg dependencies" `Quick test_tealeaf_cg_dependencies;
    Alcotest.test_case "tealeaf fusion" `Slow test_tealeaf_fusion_profits;
    Alcotest.test_case "hgga domains deterministic" `Slow test_hgga_domains_deterministic;
    Alcotest.test_case "readonly cache staging" `Quick test_readonly_cache_relieves_smem;
    Alcotest.test_case "readonly cache toggle" `Quick test_readonly_cache_device_toggle;
    Alcotest.test_case "block tuner" `Slow test_block_tuner;
  ]
