(* Tests for Kf_workloads: the motivating example, CloverLeaf, the Table V
   test-suite generator, the calibrated apps, SCALE-LES and HOMME. *)

open Kf_ir
module Motivating = Kf_workloads.Motivating
module Cloverleaf = Kf_workloads.Cloverleaf
module Suite = Kf_workloads.Suite
module Genapp = Kf_workloads.Genapp
module Apps = Kf_workloads.Apps
module Scale_les = Kf_workloads.Scale_les
module Homme = Kf_workloads.Homme
module Datadep = Kf_graph.Datadep
module Exec_order = Kf_graph.Exec_order
module Traffic = Kf_graph.Traffic

let check = Alcotest.check

let reducible p =
  let exec = Exec_order.build (Datadep.build p) in
  (Traffic.analyze exec).Traffic.reducible_fraction

(* --- Motivating --- *)

let test_motivating_shape () =
  let p = Motivating.program () in
  check Alcotest.int "five kernels" 5 (Program.num_kernels p);
  check Alcotest.(list string) "validates" [] (Program.validate p);
  check Alcotest.(list int) "fusion X" [ 0; 1 ] Motivating.fusion_x;
  check Alcotest.(list int) "fusion Y" [ 2; 3; 4 ] Motivating.fusion_y

let test_motivating_dependency () =
  let p = Motivating.program () in
  let exec = Exec_order.build (Datadep.build p) in
  (* B depends on A through array A; C, D independent. *)
  check Alcotest.bool "A before B" true
    (Exec_order.must_precede exec Motivating.kernel_a Motivating.kernel_b);
  check Alcotest.bool "C, D independent" true
    (Exec_order.independent exec Motivating.kernel_c Motivating.kernel_d);
  check Alcotest.bool "C before E (R flow)" true
    (Exec_order.must_precede exec Motivating.kernel_c Motivating.kernel_e)

(* --- CloverLeaf --- *)

let test_cloverleaf_valid () =
  let p = Cloverleaf.program () in
  check Alcotest.int "14 kernels" 14 (Program.num_kernels p);
  check Alcotest.(list string) "validates" [] (Program.validate p);
  check Alcotest.int "kernel name count" 14 (List.length Cloverleaf.kernel_names);
  (* Invocation order matches the published kernel sequence. *)
  List.iteri
    (fun i name -> check Alcotest.string "kernel order" name (Program.kernel p i).Kernel.name)
    Cloverleaf.kernel_names

let test_cloverleaf_classes () =
  let p = Cloverleaf.program () in
  let dd = Datadep.build p in
  (* density1 is written by pdv then read-modified by the advection sweeps:
     expandable. *)
  let id name =
    let rec go i =
      if (Program.array p i).Array_info.name = name then i else go (i + 1)
    in
    go 0
  in
  check Alcotest.bool "density1 expandable" true
    (Datadep.array_class dd (id "density1") = Datadep.Expandable);
  check Alcotest.bool "volume read-only" true
    (Datadep.array_class dd (id "volume") = Datadep.Read_only)

(* --- Suite generator --- *)

let test_suite_axes () =
  check Alcotest.(list int) "kernel axis" [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]
    (Suite.table5_axis `Kernels);
  check Alcotest.(list int) "sharing axis" [ 2; 4; 6; 8 ] (Suite.table5_axis `Sharing);
  check Alcotest.(list int) "kinship axis" [ 2; 3; 4; 5 ] (Suite.table5_axis `Kinship)

let test_suite_stencil_of_load () =
  List.iter
    (fun n -> check Alcotest.int "exact point count" n (Stencil.num_points (Suite.stencil_of_load n)))
    [ 1; 4; 5; 8; 12; 25 ];
  Alcotest.check_raises "too big" (Invalid_argument "Suite.stencil_of_load: load out of [1,25]")
    (fun () -> ignore (Suite.stencil_of_load 26))

let test_suite_generates_requested_size () =
  List.iter
    (fun k ->
      let p = Suite.generate { Suite.default with Suite.kernels = k; seed = k } in
      check Alcotest.int "kernel count" k (Program.num_kernels p);
      check Alcotest.(list string) "validates" [] (Program.validate p))
    [ 10; 30; 50 ]

let test_suite_thread_load_attribute () =
  let p = Suite.generate { Suite.default with Suite.thread_load = 8; seed = 2 } in
  (* Some kernel must exhibit the requested thread load on a shared array. *)
  let found = ref false in
  for k = 0 to Program.num_kernels p - 1 do
    List.iter
      (fun (a : Access.t) ->
        if Access.reads a && Stencil.num_points a.pattern = 8 then found := true)
      (Program.kernel p k).Kernel.accesses
  done;
  check Alcotest.bool "thread load present" true !found

let test_suite_expandable_copies () =
  let p = Suite.generate { Suite.default with Suite.data_copies = 6; seed = 3 } in
  let dd = Datadep.build p in
  let expandable = ref 0 in
  for a = 0 to Program.num_arrays p - 1 do
    if Datadep.array_class dd a = Datadep.Expandable then incr expandable
  done;
  check Alcotest.bool "has expandable arrays" true (!expandable >= 1)

let test_suite_deterministic () =
  let a = Suite.generate Suite.default and b = Suite.generate Suite.default in
  check Alcotest.bool "same structure" true
    (List.for_all2
       (fun (x : Kernel.t) (y : Kernel.t) -> x.Kernel.accesses = y.Kernel.accesses)
       (Array.to_list a.Program.kernels)
       (Array.to_list b.Program.kernels))

let test_suite_sharing_increases_reducible () =
  let low = Suite.generate { Suite.default with Suite.sharing_set = 2; seed = 4 } in
  let high = Suite.generate { Suite.default with Suite.sharing_set = 8; seed = 4 } in
  check Alcotest.bool "more sharing, more reducible traffic" true
    (reducible high > reducible low)

(* --- Genapp / Apps --- *)

let test_genapp_counts () =
  let spec = Apps.cosmo.Apps.spec in
  let p = Genapp.generate ~reuse_probability:0.5 spec in
  check Alcotest.int "kernels" spec.Genapp.kernels (Program.num_kernels p);
  check Alcotest.int "arrays" spec.Genapp.arrays (Program.num_arrays p);
  check Alcotest.(list string) "validates" [] (Program.validate p)

let test_genapp_calibration () =
  let p, achieved = Genapp.calibrated Apps.cosmo.Apps.spec in
  check Alcotest.(list string) "validates" [] (Program.validate p);
  check Alcotest.bool "within 5 points of target" true
    (Float.abs (achieved -. Apps.cosmo.Apps.spec.Genapp.reducible_target) < 0.05)

let test_apps_table1_counts () =
  List.iter
    (fun (e : Apps.entry) ->
      let s = e.Apps.spec in
      let p = Genapp.generate ~reuse_probability:0.4 s in
      check Alcotest.int (s.Genapp.name ^ " kernels") s.Genapp.kernels (Program.num_kernels p))
    Apps.all

(* --- SCALE-LES --- *)

let test_scale_les_counts () =
  let p = Scale_les.program () in
  check Alcotest.int "142 kernels" 142 (Program.num_kernels p);
  check Alcotest.int "64 arrays" 64 (Program.num_arrays p);
  check Alcotest.(list string) "validates" [] (Program.validate p)

let test_scale_les_reducible () =
  let f = reducible (Scale_les.program ()) in
  check Alcotest.bool "near the published 41%" true (f > 0.36 && f < 0.46)

let test_scale_les_qflx_expandable () =
  let p = Scale_les.rk_core () in
  let dd = Datadep.build p in
  let q = Scale_les.qflx p in
  check Alcotest.bool "QFLX expandable" true (Datadep.array_class dd q = Datadep.Expandable);
  check Alcotest.int "two generations" 2 (Datadep.generations dd q);
  (* Relaxation removes the precedence between the two QFLX generations:
     rk_tend_u (reads gen 1) need not precede rk_qflx_y (writes gen 2). *)
  let strict = Exec_order.build ~relax_expandable:false dd in
  let relaxed = Exec_order.build dd in
  check Alcotest.bool "strict constrains" true (Exec_order.must_precede strict 9 11);
  check Alcotest.bool "relaxed frees" false (Exec_order.must_precede relaxed 9 11)

let test_scale_les_rk_core_shape () =
  let p = Scale_les.rk_core () in
  check Alcotest.int "18 kernels" 18 (Program.num_kernels p);
  check Alcotest.(list string) "validates" [] (Program.validate p)

(* --- HOMME --- *)

let test_homme_counts () =
  let p = Homme.program () in
  check Alcotest.int "43 kernels" 43 (Program.num_kernels p);
  check Alcotest.int "27 arrays" 27 (Program.num_arrays p);
  check Alcotest.(list string) "validates" [] (Program.validate p)

let test_homme_reducible () =
  let f = reducible (Homme.program ()) in
  check Alcotest.bool "near the published 21%" true (f > 0.15 && f < 0.27)

let test_homme_hotter_than_scale_les () =
  (* Spectral elements: more flops per byte than the finite-difference
     code. *)
  let flops_per_byte p =
    let exec = Exec_order.build (Datadep.build p) in
    Program.total_flops p /. (Traffic.analyze exec).Traffic.total_bytes
  in
  check Alcotest.bool "homme denser" true
    (flops_per_byte (Homme.program ()) > flops_per_byte (Scale_les.program ()))

let suite =
  [
    Alcotest.test_case "motivating shape" `Quick test_motivating_shape;
    Alcotest.test_case "motivating dependencies" `Quick test_motivating_dependency;
    Alcotest.test_case "cloverleaf valid" `Quick test_cloverleaf_valid;
    Alcotest.test_case "cloverleaf classes" `Quick test_cloverleaf_classes;
    Alcotest.test_case "suite axes" `Quick test_suite_axes;
    Alcotest.test_case "suite stencil of load" `Quick test_suite_stencil_of_load;
    Alcotest.test_case "suite sizes" `Quick test_suite_generates_requested_size;
    Alcotest.test_case "suite thread load" `Quick test_suite_thread_load_attribute;
    Alcotest.test_case "suite expandable copies" `Quick test_suite_expandable_copies;
    Alcotest.test_case "suite deterministic" `Quick test_suite_deterministic;
    Alcotest.test_case "suite sharing vs reducible" `Quick test_suite_sharing_increases_reducible;
    Alcotest.test_case "genapp counts" `Quick test_genapp_counts;
    Alcotest.test_case "genapp calibration" `Slow test_genapp_calibration;
    Alcotest.test_case "apps table1 counts" `Quick test_apps_table1_counts;
    Alcotest.test_case "scale-les counts" `Quick test_scale_les_counts;
    Alcotest.test_case "scale-les reducible" `Quick test_scale_les_reducible;
    Alcotest.test_case "scale-les qflx expandable" `Quick test_scale_les_qflx_expandable;
    Alcotest.test_case "scale-les rk core" `Quick test_scale_les_rk_core_shape;
    Alcotest.test_case "homme counts" `Quick test_homme_counts;
    Alcotest.test_case "homme reducible" `Quick test_homme_reducible;
    Alcotest.test_case "homme arithmetic density" `Quick test_homme_hotter_than_scale_les;
  ]
