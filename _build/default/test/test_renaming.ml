(* Tests for Kf_graph.Renaming: materialization of the expandable-array
   relaxation (paper §II-B.1c). *)

open Kf_ir
module Datadep = Kf_graph.Datadep
module Exec_order = Kf_graph.Exec_order
module Renaming = Kf_graph.Renaming
module Sem = Kf_exec.Semantics

let check = Alcotest.check

let small_grid = Grid.make ~nx:64 ~ny:32 ~nz:4 ~block_x:16 ~block_y:8

(* k0 writes Q (gen 1); k1 reads gen 1; k2 writes Q again (gen 2);
   k3 reads gen 2 — the QFLX pattern of paper Fig. 1.  s is a read-only
   companion keeping every kernel kin-connected. *)
let qflx_program () =
  let acc array mode pattern flops = { Access.array; mode; pattern; flops } in
  let arrays =
    [ Array_info.make ~id:0 ~name:"Q" (); Array_info.make ~id:1 ~name:"s" ();
      Array_info.make ~id:2 ~name:"o1" (); Array_info.make ~id:3 ~name:"o2" () ]
  in
  let kernels =
    [
      Kernel.make ~id:0 ~name:"w1"
        ~accesses:[ acc 1 Access.Read Stencil.point 1.; acc 0 Access.Write Stencil.point 1. ] ();
      Kernel.make ~id:1 ~name:"r1"
        ~accesses:[ acc 0 Access.Read Stencil.star5 2.; acc 2 Access.Write Stencil.point 0. ] ();
      Kernel.make ~id:2 ~name:"w2"
        ~accesses:[ acc 1 Access.Read Stencil.point 1.; acc 0 Access.Write Stencil.point 1. ] ();
      Kernel.make ~id:3 ~name:"r2"
        ~accesses:[ acc 0 Access.Read Stencil.star5 2.; acc 3 Access.Write Stencil.point 0. ] ();
    ]
  in
  Program.create ~name:"qflx" ~grid:small_grid ~arrays ~kernels

let test_is_identity () =
  let p = Kf_workloads.Motivating.program ~grid:small_grid () in
  check Alcotest.bool "motivating has no expandables" true
    (Renaming.is_identity (Datadep.build p));
  check Alcotest.bool "qflx has expandables" false
    (Renaming.is_identity (Datadep.build (qflx_program ())))

let test_materialize_structure () =
  let p = qflx_program () in
  let dd = Datadep.build p in
  check Alcotest.bool "Q expandable" true (Datadep.array_class dd 0 = Datadep.Expandable);
  let renamed, orig_of = Renaming.materialize dd in
  (* Two generations, no gen-0 readers: one extra copy (gen 1); gen 2
     keeps the original id. *)
  check Alcotest.int "one extra array" (Program.num_arrays p + 1) (Program.num_arrays renamed);
  check Alcotest.int "copy maps to Q" 0 orig_of.(Program.num_arrays p);
  check Alcotest.(list string) "renamed program validates" [] (Program.validate renamed);
  (* The renamed program has no expandable arrays left. *)
  check Alcotest.bool "no expandables remain" true
    (Renaming.is_identity (Datadep.build renamed));
  (* w1/r1 use the gen-1 copy; w2/r2 the original id. *)
  let copy = Program.num_arrays p in
  check Alcotest.bool "w1 writes copy" true (Kernel.touches (Program.kernel renamed 0) copy);
  check Alcotest.bool "r1 reads copy" true (Kernel.touches (Program.kernel renamed 1) copy);
  check Alcotest.bool "w2 writes original" true (Kernel.touches (Program.kernel renamed 2) 0);
  check Alcotest.bool "r2 reads original" true (Kernel.touches (Program.kernel renamed 3) 0)

let test_renamed_matches_relaxed_graph () =
  (* The renamed program's own dependencies equal the relaxed graph:
     r1 -> w2 (the cross-generation anti edge) disappears. *)
  let p = qflx_program () in
  let dd = Datadep.build p in
  let relaxed = Exec_order.build dd in
  let renamed, _ = Renaming.materialize dd in
  let exec_r = Exec_order.build ~relax_expandable:false (Datadep.build renamed) in
  check Alcotest.bool "relaxed drops r1->w2" false (Exec_order.must_precede relaxed 1 2);
  check Alcotest.bool "renamed drops r1->w2" false (Exec_order.must_precede exec_r 1 2);
  check Alcotest.bool "flow w1->r1 kept" true (Exec_order.must_precede exec_r 0 1);
  check Alcotest.bool "flow w2->r2 kept" true (Exec_order.must_precede exec_r 2 3)

let test_renamed_execution_matches_plain () =
  (* Sequential execution of the renamed program produces the same final
     contents for every original array as the plain program. *)
  let p = qflx_program () in
  let renamed, orig_of = Renaming.materialize (Datadep.build p) in
  let a = Sem.run_original p in
  let b = Sem.run_original ~orig_of renamed in
  let v = Sem.compare_states p a b in
  check Alcotest.bool "equivalent" true v.Sem.equivalent

let test_gen0_readers_get_copy () =
  (* A reader before the first write must keep its own copy of the initial
     contents, because relaxation drops its anti edge to the writers. *)
  let acc array mode pattern flops = { Access.array; mode; pattern; flops } in
  let arrays =
    [ Array_info.make ~id:0 ~name:"Q" (); Array_info.make ~id:1 ~name:"s" ();
      Array_info.make ~id:2 ~name:"o0" (); Array_info.make ~id:3 ~name:"o1" ();
      Array_info.make ~id:4 ~name:"o2" () ]
  in
  let kernels =
    [
      Kernel.make ~id:0 ~name:"r0"
        ~accesses:[ acc 0 Access.Read Stencil.point 1.; acc 2 Access.Write Stencil.point 0. ] ();
      Kernel.make ~id:1 ~name:"w1"
        ~accesses:[ acc 1 Access.Read Stencil.point 1.; acc 0 Access.Write Stencil.point 1. ] ();
      Kernel.make ~id:2 ~name:"r1"
        ~accesses:[ acc 0 Access.Read Stencil.point 2.; acc 3 Access.Write Stencil.point 0. ] ();
      Kernel.make ~id:3 ~name:"w2"
        ~accesses:[ acc 1 Access.Read Stencil.point 1.; acc 0 Access.Write Stencil.point 1. ] ();
      Kernel.make ~id:4 ~name:"r2"
        ~accesses:[ acc 0 Access.Read Stencil.point 2.; acc 4 Access.Write Stencil.point 0. ] ();
    ]
  in
  let p = Program.create ~name:"gen0" ~grid:small_grid ~arrays ~kernels in
  let dd = Datadep.build p in
  check Alcotest.bool "expandable" true (Datadep.array_class dd 0 = Datadep.Expandable);
  let renamed, orig_of = Renaming.materialize dd in
  (* Copies for gen 0 (initial readers) and gen 1; gen 2 keeps the id. *)
  check Alcotest.int "two extra arrays" (Program.num_arrays p + 2) (Program.num_arrays renamed);
  let a = Sem.run_original p in
  let b = Sem.run_original ~orig_of renamed in
  check Alcotest.bool "equivalent" true (Sem.compare_states p a b).Sem.equivalent

let test_cross_generation_update_split () =
  (* TeaLeaf's u += alpha·p pattern: a ReadWrite access consuming one
     generation and producing the next is split into read + write. *)
  let p = Kf_workloads.Tealeaf.program ~grid:(Grid.make ~nx:64 ~ny:32 ~nz:1 ~block_x:16 ~block_y:8) () in
  let dd = Datadep.build p in
  let renamed, orig_of = Renaming.materialize dd in
  check Alcotest.(list string) "validates" [] (Program.validate renamed);
  let a = Sem.run_original p in
  let b = Sem.run_original ~orig_of renamed in
  check Alcotest.bool "equivalent" true (Sem.compare_states p a b).Sem.equivalent

let test_same_generation_waw_kept () =
  (* Two writers of the same generation must stay ordered even under
     relaxation. *)
  let acc array mode pattern flops = { Access.array; mode; pattern; flops } in
  let arrays =
    [ Array_info.make ~id:0 ~name:"Q" (); Array_info.make ~id:1 ~name:"s" ();
      Array_info.make ~id:2 ~name:"o" () ]
  in
  (* w_a writes Q, w_b overwrites Q (no read between: same generation),
     r reads, then w_c starts generation 2. *)
  let kernels =
    [
      Kernel.make ~id:0 ~name:"w_a"
        ~accesses:[ acc 1 Access.Read Stencil.point 1.; acc 0 Access.Write Stencil.point 1. ] ();
      Kernel.make ~id:1 ~name:"w_b"
        ~accesses:[ acc 1 Access.Read Stencil.point 2.; acc 0 Access.Write Stencil.point 1. ] ();
      Kernel.make ~id:2 ~name:"r"
        ~accesses:[ acc 0 Access.Read Stencil.point 1.; acc 2 Access.Write Stencil.point 0. ] ();
      Kernel.make ~id:3 ~name:"w_c"
        ~accesses:[ acc 1 Access.Read Stencil.point 1.; acc 0 Access.Write Stencil.point 1. ] ();
    ]
  in
  let p = Program.create ~name:"waw" ~grid:small_grid ~arrays ~kernels in
  let dd = Datadep.build p in
  check Alcotest.bool "expandable (2 gens)" true (Datadep.array_class dd 0 = Datadep.Expandable);
  let relaxed = Exec_order.build dd in
  check Alcotest.bool "same-gen WAW kept under relaxation" true
    (Exec_order.must_precede relaxed 0 1);
  check Alcotest.bool "cross-gen anti dropped" false (Exec_order.must_precede relaxed 2 3)

let suite =
  [
    Alcotest.test_case "is identity" `Quick test_is_identity;
    Alcotest.test_case "materialize structure" `Quick test_materialize_structure;
    Alcotest.test_case "renamed = relaxed graph" `Quick test_renamed_matches_relaxed_graph;
    Alcotest.test_case "renamed execution matches" `Quick test_renamed_execution_matches_plain;
    Alcotest.test_case "gen0 readers copied" `Quick test_gen0_readers_get_copy;
    Alcotest.test_case "cross-generation update split" `Quick test_cross_generation_update_split;
    Alcotest.test_case "same-generation WAW kept" `Quick test_same_generation_waw_kept;
  ]
