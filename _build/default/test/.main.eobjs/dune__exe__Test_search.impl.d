test/test_search.ml: Alcotest Array Float Kf_fusion Kf_gpu Kf_graph Kf_ir Kf_model Kf_search Kf_sim Kf_util Kf_workloads List
