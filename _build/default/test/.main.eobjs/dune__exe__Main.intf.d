test/main.mli:
