test/test_model.ml: Alcotest Array Float Kf_fusion Kf_gpu Kf_graph Kf_ir Kf_model Kf_sim Kf_workloads Unix
