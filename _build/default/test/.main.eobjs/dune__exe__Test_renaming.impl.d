test/test_renaming.ml: Access Alcotest Array Array_info Grid Kernel Kf_exec Kf_graph Kf_ir Kf_workloads Program Stencil
