test/test_pipeline.ml: Alcotest Array Float Kf_fusion Kf_gpu Kf_search Kf_sim Kf_workloads Kfuse List String
