test/test_ir.ml: Access Alcotest Array_info Gen Grid Kernel Kf_ir List Metadata Program QCheck QCheck_alcotest Stencil
