test/test_workloads.ml: Access Alcotest Array Array_info Float Kernel Kf_graph Kf_ir Kf_workloads List Program Stencil
