test/test_oracle.ml: Alcotest Array Grid Kf_exec Kf_fusion Kf_gpu Kf_graph Kf_ir Kf_model Kf_search Kf_sim Kf_util Kf_workloads List Metadata Program QCheck QCheck_alcotest
