test/test_shapes.ml: Alcotest Float Kf_fusion Kf_gpu Kf_graph Kf_model Kf_search Kf_sim Kf_workloads Kfuse List Unix
