test/test_sim.ml: Alcotest Array Kf_gpu Kf_sim Kf_util Kf_workloads List QCheck QCheck_alcotest
