test/test_fusion.ml: Access Alcotest Array_info Grid Kernel Kf_fusion Kf_gpu Kf_graph Kf_ir Kf_workloads List Metadata Program Stencil String
