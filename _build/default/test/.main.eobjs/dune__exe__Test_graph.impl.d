test/test_graph.ml: Access Alcotest Array Array_info Fmt Grid Kernel Kf_fusion Kf_graph Kf_ir Kf_util Kf_workloads List Program QCheck QCheck_alcotest Stencil
