test/test_util.ml: Alcotest Array Float Gen Int Kf_util List QCheck QCheck_alcotest Set String
