(* Tests for Kf_model: the proposed projection, Roofline, simple model,
   fusion efficiency, MWP comparator. *)

module Device = Kf_gpu.Device
module Inputs = Kf_model.Inputs
module Projection = Kf_model.Projection
module Roofline = Kf_model.Roofline
module Simple = Kf_model.Simple_model
module FE = Kf_model.Fusion_efficiency
module Mwp = Kf_model.Mwp
module Fused = Kf_fusion.Fused
module Measure = Kf_sim.Measure
module Motivating = Kf_workloads.Motivating

let check = Alcotest.check
let device = Device.k20x

let context () =
  let p = Motivating.program () in
  let meta = Kf_ir.Metadata.build p in
  let exec = Kf_graph.Exec_order.build (Kf_graph.Datadep.build p) in
  let measured_runtime =
    Array.map (fun r -> r.Measure.runtime_s) (Measure.program_results ~device p)
  in
  let i = Inputs.make ~device ~meta ~exec ~measured_runtime in
  (p, meta, exec, i)

let fused_of i group =
  Fused.build ~device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group

let test_inputs_validation () =
  let _, meta, exec, _ = context () in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Inputs.make: one measured runtime per kernel required") (fun () ->
      ignore (Inputs.make ~device ~meta ~exec ~measured_runtime:[| 1.0 |]))

let test_inputs_original_sum () =
  let _, _, _, i = context () in
  let s01 = Inputs.original_sum i [ 0; 1 ] in
  check (Alcotest.float 1e-12) "sum"
    (i.Inputs.measured_runtime.(0) +. i.Inputs.measured_runtime.(1))
    s01;
  check Alcotest.bool "bandwidth positive" true (Inputs.effective_bandwidth i [ 0; 1 ] > 0.)

let test_projection_singleton_is_measured () =
  let _, _, _, i = context () in
  let f = fused_of i [ 2 ] in
  check (Alcotest.float 1e-12) "measured" i.Inputs.measured_runtime.(2)
    (Projection.runtime i f)

let test_projection_feasible_fields () =
  let _, _, _, i = context () in
  let x = fused_of i Motivating.fusion_x in
  let pr = Projection.project i x in
  check Alcotest.bool "feasible" true pr.Projection.feasible;
  check Alcotest.bool "finite" true (Float.is_finite pr.Projection.runtime_s);
  check Alcotest.bool "blocks positive" true (pr.Projection.blocks_smx >= 1);
  check Alcotest.bool "p positive" true (pr.Projection.p_membound_gflops > 0.);
  check Alcotest.bool "b_sh positive for staged fusion" true (pr.Projection.b_sh > 0.)

let test_projection_infeasible_infinite () =
  (* A tiny device makes any staging fusion infeasible. *)
  let _, _, _, i = context () in
  let small = { device with Device.smem_per_smx = 1024; name = "tiny" } in
  let i2 = { i with Inputs.device = small } in
  let y = Fused.build ~device:small ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group:Motivating.fusion_y in
  let pr = Projection.project i2 y in
  check Alcotest.bool "infeasible" false pr.Projection.feasible;
  check Alcotest.bool "infinite runtime" true (pr.Projection.runtime_s = Float.infinity)

let test_projection_flags_y () =
  (* The paper's headline: the proposed model rejects fusing C+D+E while
     Roofline and the simple model endorse it. *)
  let _, _, _, i = context () in
  let y = fused_of i Motivating.fusion_y in
  let orig = Inputs.original_sum i Motivating.fusion_y in
  check Alcotest.bool "roofline endorses" true (Roofline.runtime i y < orig);
  check Alcotest.bool "simple endorses" true (Simple.runtime i y < orig);
  check Alcotest.bool "proposed rejects" true (Projection.runtime i y > orig)

let test_projection_endorses_x () =
  let _, _, _, i = context () in
  let x = fused_of i Motivating.fusion_x in
  let orig = Inputs.original_sum i Motivating.fusion_x in
  check Alcotest.bool "proposed endorses A+B" true (Projection.runtime i x < orig)

let test_model_ordering_on_y () =
  (* Roofline is the most optimistic, the simple model in between. *)
  let _, _, _, i = context () in
  let y = fused_of i Motivating.fusion_y in
  let r = Roofline.runtime i y and s = Simple.runtime i y and p = Projection.runtime i y in
  check Alcotest.bool "roofline < simple" true (r < s);
  check Alcotest.bool "simple < proposed" true (s < p)

let test_roofline_attainable () =
  let _, _, _, i = context () in
  let x = fused_of i Motivating.fusion_x in
  let g = Roofline.attainable_gflops i x in
  check Alcotest.bool "attainable below peak" true (g <= device.Device.peak_gflops);
  check Alcotest.bool "positive" true (g > 0.)

let test_simple_model_saved_bytes () =
  let _, _, _, i = context () in
  let y = fused_of i Motivating.fusion_y in
  check Alcotest.bool "saves bytes" true (Simple.saved_bytes i y > 0.);
  let single = fused_of i [ 0 ] in
  check (Alcotest.float 1e-9) "singleton saves nothing" 0. (Simple.saved_bytes i single)

let test_group_runtime_dispatch () =
  let _, _, _, i = context () in
  check (Alcotest.float 1e-12) "singleton dispatch" i.Inputs.measured_runtime.(3)
    (Projection.group_runtime i [ 3 ]);
  check Alcotest.bool "group dispatch projects" true
    (Float.is_finite (Projection.group_runtime i Motivating.fusion_x))

let test_fusion_efficiency () =
  let p, _, _, i = context () in
  let x = fused_of i Motivating.fusion_x in
  let m = Measure.fused ~device p x in
  let fe = FE.compute i x ~measured_fused_runtime:m.Measure.runtime_s in
  check Alcotest.bool "memory ratio < 1" true (fe.FE.memory_ratio < 1.);
  check Alcotest.bool "efficiency in (0, 1.5]" true (fe.FE.efficiency > 0. && fe.FE.efficiency <= 1.5);
  Alcotest.check_raises "singleton rejected"
    (Invalid_argument "Fusion_efficiency.compute: singleton has no fusion to rate") (fun () ->
      ignore (FE.compute i (fused_of i [ 0 ]) ~measured_fused_runtime:1e-3))

let test_mwp_estimate () =
  let _, _, _, i = context () in
  let x = fused_of i Motivating.fusion_x in
  let e = Mwp.evaluate i x in
  check Alcotest.bool "cycles positive" true (e.Mwp.cycles > 0.);
  check Alcotest.bool "mwp >= 1" true (e.Mwp.mwp >= 1.);
  check Alcotest.bool "cwp >= 1" true (e.Mwp.cwp >= 1.);
  check Alcotest.bool "runtime sane" true (e.Mwp.runtime_s > 1e-6 && e.Mwp.runtime_s < 1.)

let test_mwp_more_expensive_than_projection () =
  (* The point of the paper's codeless model: evaluations are much cheaper
     than code-representation models.  Compare costs directly. *)
  let _, _, _, i = context () in
  let x = fused_of i Motivating.fusion_x in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 200 do
      ignore (f ())
    done;
    Unix.gettimeofday () -. t0
  in
  let t_proj = time (fun () -> Projection.runtime i x) in
  let t_mwp = time (fun () -> Mwp.runtime i x) in
  check Alcotest.bool "projection cheaper" true (t_proj < t_mwp)

let suite =
  [
    Alcotest.test_case "inputs validation" `Quick test_inputs_validation;
    Alcotest.test_case "inputs original sum" `Quick test_inputs_original_sum;
    Alcotest.test_case "projection singleton" `Quick test_projection_singleton_is_measured;
    Alcotest.test_case "projection fields" `Quick test_projection_feasible_fields;
    Alcotest.test_case "projection infeasible" `Quick test_projection_infeasible_infinite;
    Alcotest.test_case "projection flags Y" `Quick test_projection_flags_y;
    Alcotest.test_case "projection endorses X" `Quick test_projection_endorses_x;
    Alcotest.test_case "model ordering on Y" `Quick test_model_ordering_on_y;
    Alcotest.test_case "roofline attainable" `Quick test_roofline_attainable;
    Alcotest.test_case "simple model saved bytes" `Quick test_simple_model_saved_bytes;
    Alcotest.test_case "group runtime dispatch" `Quick test_group_runtime_dispatch;
    Alcotest.test_case "fusion efficiency" `Quick test_fusion_efficiency;
    Alcotest.test_case "mwp estimate" `Quick test_mwp_estimate;
    Alcotest.test_case "mwp evaluation cost" `Slow test_mwp_more_expensive_than_projection;
  ]
