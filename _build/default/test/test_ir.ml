(* Tests for Kf_ir: stencils, grids, arrays, kernels, programs, derived
   metadata. *)

open Kf_ir

let check = Alcotest.check

let off di dj dk = { Stencil.di; dj; dk }

(* --- Stencil --- *)

let test_stencil_constructors () =
  check Alcotest.int "point has 1" 1 (Stencil.num_points Stencil.point);
  check Alcotest.int "star5 has 5" 5 (Stencil.num_points Stencil.star5);
  check Alcotest.int "star9 has 9" 9 (Stencil.num_points Stencil.star9);
  check Alcotest.int "asym has 4" 4 (Stencil.num_points Stencil.asym_west_south);
  check Alcotest.int "star r2 has 9" 9 (Stencil.num_points (Stencil.star_radius 2));
  check Alcotest.int "box r2 has 25" 25 (Stencil.num_points (Stencil.box_radius 2))

let test_stencil_radius () =
  check Alcotest.int "point radius" 0 (Stencil.radius Stencil.point);
  check Alcotest.int "star5 radius" 1 (Stencil.radius Stencil.star5);
  check Alcotest.int "box3 radius" 3 (Stencil.radius (Stencil.box_radius 3));
  check Alcotest.int "vertical has no horizontal radius" 0
    (Stencil.radius Stencil.cross3_vertical);
  check Alcotest.int "vertical extent" 1 (Stencil.vertical_extent Stencil.cross3_vertical)

let test_stencil_dedup () =
  let s = Stencil.make [ off 0 0 0; off 0 0 0; off 1 0 0 ] in
  check Alcotest.int "duplicates removed" 2 (Stencil.num_points s)

let test_stencil_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stencil.make: empty offset list") (fun () ->
      ignore (Stencil.make []))

let test_stencil_union () =
  let u = Stencil.union Stencil.point Stencil.star5 in
  check Alcotest.bool "union of subset" true (Stencil.equal u Stencil.star5)

let prop_stencil_radius_bound =
  QCheck.Test.make ~count:200 ~name:"radius bounds every offset"
    QCheck.(list_of_size Gen.(1 -- 10) (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-1) 1)))
    (fun offs ->
      let s = Stencil.make (List.map (fun (a, b, c) -> off a b c) offs) in
      let r = Stencil.radius s in
      List.for_all (fun o -> abs o.Stencil.di <= r && abs o.Stencil.dj <= r) (Stencil.offsets s))

(* --- Grid --- *)

let test_grid_math () =
  let g = Grid.make ~nx:100 ~ny:60 ~nz:8 ~block_x:32 ~block_y:8 in
  check Alcotest.int "threads" 256 (Grid.threads_per_block g);
  (* ceil(100/32)=4, ceil(60/8)=8 *)
  check Alcotest.int "blocks" 32 (Grid.blocks g);
  check Alcotest.int "sites" 48000 (Grid.sites g);
  check Alcotest.int "halo r1" ((34 * 10) - 256) (Grid.halo_sites_per_plane g 1)

let test_grid_invalid () =
  Alcotest.check_raises "big block" (Invalid_argument "Grid.make: more than 1024 threads per block")
    (fun () -> ignore (Grid.make ~nx:10 ~ny:10 ~nz:1 ~block_x:64 ~block_y:32));
  Alcotest.check_raises "zero extent" (Invalid_argument "Grid.make: non-positive grid extent")
    (fun () -> ignore (Grid.make ~nx:0 ~ny:10 ~nz:1 ~block_x:8 ~block_y:8))

(* --- Array_info --- *)

let test_array_info () =
  let g = Grid.make ~nx:16 ~ny:16 ~nz:4 ~block_x:8 ~block_y:8 in
  let a3 = Array_info.make ~id:0 ~name:"rho" () in
  let a2 = Array_info.make ~id:1 ~name:"sfc" ~extent:Array_info.Plane2d ~elem_bytes:4 () in
  check Alcotest.int "3d sites" 1024 (Array_info.sites a3 g);
  check Alcotest.int "3d bytes" 8192 (Array_info.bytes a3 g);
  check Alcotest.int "2d sites" 256 (Array_info.sites a2 g);
  check Alcotest.int "2d bytes" 1024 (Array_info.bytes a2 g)

(* --- Kernel --- *)

let acc array mode pattern flops = { Access.array; mode; pattern; flops }

let test_kernel_validation () =
  Alcotest.check_raises "no accesses" (Invalid_argument "Kernel.make: kernel touches no arrays")
    (fun () -> ignore (Kernel.make ~id:0 ~name:"k" ~accesses:[] ()));
  Alcotest.check_raises "duplicate array"
    (Invalid_argument "Kernel.make: duplicate array reference (merge modes into one access)")
    (fun () ->
      ignore
        (Kernel.make ~id:0 ~name:"k"
           ~accesses:[ acc 0 Access.Read Stencil.point 1.; acc 0 Access.Write Stencil.point 1. ]
           ()))

let test_kernel_derived () =
  let k =
    Kernel.make ~id:0 ~name:"k"
      ~accesses:
        [
          acc 0 Access.Read Stencil.star5 2.;
          acc 1 Access.Read Stencil.point 1.;
          acc 2 Access.Write Stencil.point 0.;
        ]
      ~extra_flops_per_site:3. ()
  in
  check (Alcotest.float 1e-9) "flops/site" 6. (Kernel.flops_per_site k);
  check Alcotest.int "thread load staged" 5 (Kernel.thread_load k 0);
  check Alcotest.int "thread load point" 1 (Kernel.thread_load k 1);
  check Alcotest.int "thread load write" 1 (Kernel.thread_load k 2);
  check Alcotest.int "thread load absent" 0 (Kernel.thread_load k 9);
  check Alcotest.(list int) "staged arrays" [ 0 ] (Kernel.smem_staged_arrays k);
  check Alcotest.bool "uses smem" true (Kernel.uses_smem k);
  check Alcotest.int "max read radius" 1 (Kernel.max_read_radius k)

let test_kernel_active_threads () =
  let g = Grid.make ~nx:64 ~ny:64 ~nz:1 ~block_x:16 ~block_y:16 in
  let k =
    Kernel.make ~id:0 ~name:"k" ~accesses:[ acc 0 Access.Read Stencil.point 1. ]
      ~active_fraction:0.5 ()
  in
  check Alcotest.int "half active" 128 (Kernel.active_threads k g);
  Alcotest.check_raises "fraction 0" (Invalid_argument "Kernel.make: active_fraction out of (0,1]")
    (fun () ->
      ignore
        (Kernel.make ~id:0 ~name:"k" ~accesses:[ acc 0 Access.Read Stencil.point 1. ]
           ~active_fraction:0. ()))

(* --- Program --- *)

let tiny_program () =
  let g = Grid.make ~nx:64 ~ny:32 ~nz:4 ~block_x:16 ~block_y:8 in
  let arrays =
    [ Array_info.make ~id:0 ~name:"a" (); Array_info.make ~id:1 ~name:"b" () ]
  in
  let kernels =
    [
      Kernel.make ~id:0 ~name:"k0"
        ~accesses:[ acc 0 Access.Read Stencil.star5 1.; acc 1 Access.Write Stencil.point 0. ]
        ();
      Kernel.make ~id:1 ~name:"k1"
        ~accesses:[ acc 1 Access.Read Stencil.point 1.; acc 0 Access.ReadWrite Stencil.point 1. ]
        ();
    ]
  in
  Program.create ~name:"tiny" ~grid:g ~arrays ~kernels

let test_program_valid () =
  let p = tiny_program () in
  check Alcotest.int "kernels" 2 (Program.num_kernels p);
  check Alcotest.int "arrays" 2 (Program.num_arrays p);
  check Alcotest.(list string) "no violations" [] (Program.validate p)

let test_program_bad_ids () =
  let g = Grid.make ~nx:8 ~ny:8 ~nz:1 ~block_x:8 ~block_y:8 in
  let arrays = [ Array_info.make ~id:5 ~name:"a" () ] in
  let kernels =
    [ Kernel.make ~id:0 ~name:"k" ~accesses:[ acc 5 Access.Read Stencil.point 1. ] () ]
  in
  Alcotest.check_raises "id mismatch"
    (Invalid_argument "Program.create(bad): array a: id 5 at position 0") (fun () ->
      ignore (Program.create ~name:"bad" ~grid:g ~arrays ~kernels))

let test_program_untouched_array () =
  let g = Grid.make ~nx:8 ~ny:8 ~nz:1 ~block_x:8 ~block_y:8 in
  let arrays = [ Array_info.make ~id:0 ~name:"a" (); Array_info.make ~id:1 ~name:"ghost" () ] in
  let kernels =
    [ Kernel.make ~id:0 ~name:"k" ~accesses:[ acc 0 Access.Read Stencil.point 1. ] () ]
  in
  Alcotest.check_raises "untouched"
    (Invalid_argument "Program.create(bad): array ghost is touched by no kernel") (fun () ->
      ignore (Program.create ~name:"bad" ~grid:g ~arrays ~kernels))

(* --- Metadata --- *)

let meta_program () =
  (* k0 writes a; k1 reads a; k2 reads b only (kin to k1 via b). *)
  let g = Grid.make ~nx:64 ~ny:32 ~nz:4 ~block_x:16 ~block_y:8 in
  let arrays =
    [
      Array_info.make ~id:0 ~name:"a" ();
      Array_info.make ~id:1 ~name:"b" ();
      Array_info.make ~id:2 ~name:"c" ();
    ]
  in
  let kernels =
    [
      Kernel.make ~id:0 ~name:"k0"
        ~accesses:[ acc 0 Access.Write Stencil.point 1.; acc 2 Access.Read Stencil.point 1. ] ();
      Kernel.make ~id:1 ~name:"k1"
        ~accesses:[ acc 0 Access.Read Stencil.star5 1.; acc 1 Access.Read Stencil.point 1. ] ();
      Kernel.make ~id:2 ~name:"k2"
        ~accesses:[ acc 1 Access.Read Stencil.star5 1.; acc 2 Access.Write Stencil.point 1. ] ();
    ]
  in
  Program.create ~name:"meta" ~grid:g ~arrays ~kernels

let test_metadata_sharing () =
  let m = Metadata.build (meta_program ()) in
  check Alcotest.(list int) "sharing of a" [ 0; 1 ] (Metadata.sharing_set m 0);
  check Alcotest.(list int) "sharing of b" [ 1; 2 ] (Metadata.sharing_set m 1);
  check Alcotest.(list int) "shared arrays" [ 0; 1; 2 ] (Metadata.shared_arrays m);
  check Alcotest.bool "a shared" true (Metadata.is_shared m 0)

let test_metadata_kinship () =
  let m = Metadata.build (meta_program ()) in
  check Alcotest.int "direct kinship" 1 (Metadata.degree_of_kinship m 0 1);
  check Alcotest.int "chain kinship" 1 (Metadata.degree_of_kinship m 1 2);
  (* k0 and k2 share array c directly. *)
  check Alcotest.int "k0-k2" 1 (Metadata.degree_of_kinship m 0 2);
  check Alcotest.int "self" 0 (Metadata.degree_of_kinship m 1 1);
  check Alcotest.bool "connected group" true (Metadata.kinship_connected m [ 0; 1; 2 ])

let test_metadata_halo () =
  let p = meta_program () in
  let m = Metadata.build p in
  (* k1 reads a with star5 (radius 1): halo ring of 16x8 tile = 18*10-128 sites * 8B *)
  check Alcotest.int "halo bytes" (((18 * 10) - 128) * 8) (Metadata.halo_bytes m 1);
  check Alcotest.int "no halo for point kernel" 0 (Metadata.halo_bytes m 0)

let test_metadata_thread_load () =
  let m = Metadata.build (meta_program ()) in
  check Alcotest.int "max thread load k1" 5 (Metadata.max_thread_load m 1);
  check Alcotest.int "max thread load k0" 1 (Metadata.max_thread_load m 0)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_stencil_radius_bound ]

let suite =
  [
    Alcotest.test_case "stencil constructors" `Quick test_stencil_constructors;
    Alcotest.test_case "stencil radius" `Quick test_stencil_radius;
    Alcotest.test_case "stencil dedup" `Quick test_stencil_dedup;
    Alcotest.test_case "stencil empty" `Quick test_stencil_empty;
    Alcotest.test_case "stencil union" `Quick test_stencil_union;
    Alcotest.test_case "grid math" `Quick test_grid_math;
    Alcotest.test_case "grid invalid" `Quick test_grid_invalid;
    Alcotest.test_case "array info" `Quick test_array_info;
    Alcotest.test_case "kernel validation" `Quick test_kernel_validation;
    Alcotest.test_case "kernel derived" `Quick test_kernel_derived;
    Alcotest.test_case "kernel active threads" `Quick test_kernel_active_threads;
    Alcotest.test_case "program valid" `Quick test_program_valid;
    Alcotest.test_case "program bad ids" `Quick test_program_bad_ids;
    Alcotest.test_case "program untouched array" `Quick test_program_untouched_array;
    Alcotest.test_case "metadata sharing" `Quick test_metadata_sharing;
    Alcotest.test_case "metadata kinship" `Quick test_metadata_kinship;
    Alcotest.test_case "metadata halo" `Quick test_metadata_halo;
    Alcotest.test_case "metadata thread load" `Quick test_metadata_thread_load;
  ]
  @ qsuite
