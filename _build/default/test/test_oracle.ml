(* Tests of the execution-semantics oracle (Kf_exec.Semantics): positive —
   every fusion the machinery produces computes exactly what the original
   program computes — and negative — deliberately broken fusions are
   caught. *)

open Kf_ir
module Sem = Kf_exec.Semantics
module Fused = Kf_fusion.Fused
module Fused_program = Kf_fusion.Fused_program
module Plan = Kf_fusion.Plan
module Exec_order = Kf_graph.Exec_order
module Datadep = Kf_graph.Datadep
module Objective = Kf_search.Objective
module Grouping = Kf_search.Grouping
module Hgga = Kf_search.Hgga
module Motivating = Kf_workloads.Motivating
module Suite = Kf_workloads.Suite
module Rng = Kf_util.Rng

let check = Alcotest.check
let device = Kf_gpu.Device.k20x

let small_grid = Grid.make ~nx:64 ~ny:32 ~nz:4 ~block_x:16 ~block_y:8

let context p =
  let meta = Metadata.build p in
  let exec = Exec_order.build (Datadep.build p) in
  (meta, exec)

let assert_equivalent name v =
  check Alcotest.bool (name ^ " equivalent") true v.Sem.equivalent;
  check (Alcotest.float 0.) (name ^ " diff") 0. v.Sem.max_abs_diff

(* --- determinism and basic sanity --- *)

let test_init_deterministic () =
  let p = Motivating.program ~grid:small_grid () in
  let a = Sem.init p and b = Sem.init p in
  check Alcotest.bool "same initial state" true (a = b);
  let v = Sem.value p a ~array_id:0 ~i:3 ~j:2 ~k:1 in
  check Alcotest.bool "values in [0,1)" true (v >= 0. && v < 1.)

let test_original_changes_state () =
  let p = Motivating.program ~grid:small_grid () in
  let s = Sem.run_original p in
  check Alcotest.bool "outputs updated" true (Sem.init p <> s)

let test_identity_plan_equivalent () =
  let p = Motivating.program ~grid:small_grid () in
  let meta, exec = context p in
  let fp = Fused_program.build ~device ~meta ~exec (Plan.identity 5) in
  assert_equivalent "identity" (Sem.check ~device fp)

(* --- the paper's fusions are semantics-preserving --- *)

let test_motivating_fusions () =
  let p = Motivating.program ~grid:small_grid () in
  let meta, exec = context p in
  assert_equivalent "X = A+B (complex, halo 1)"
    (Sem.check_group ~device ~meta ~exec Motivating.fusion_x);
  assert_equivalent "Y = C+D+E (complex, chained halo 2)"
    (Sem.check_group ~device ~meta ~exec Motivating.fusion_y);
  assert_equivalent "C+D (simple)" (Sem.check_group ~device ~meta ~exec [ 2; 3 ])

let test_search_plans_equivalent () =
  (* Whatever plan the HGGA returns executes identically to the original
     program — end-to-end semantic safety of the whole pipeline. *)
  List.iter
    (fun p ->
      let meta, exec = context p in
      let measured_runtime =
        Array.map
          (fun (r : Kf_sim.Measure.result) -> r.Kf_sim.Measure.runtime_s)
          (Kf_sim.Measure.program_results ~device p)
      in
      let obj =
        Objective.create (Kf_model.Inputs.make ~device ~meta ~exec ~measured_runtime)
      in
      let r =
        Hgga.solve ~params:{ Hgga.default_params with Hgga.max_generations = 60 } obj
      in
      let fp = Fused_program.build ~device ~meta ~exec r.Hgga.plan in
      assert_equivalent p.Program.name (Sem.check ~device fp))
    [
      Kf_workloads.Scale_les.rk_core ~grid:small_grid ();
      Kf_workloads.Tealeaf.program ~grid:(Grid.make ~nx:64 ~ny:32 ~nz:1 ~block_x:16 ~block_y:8) ();
    ]

let prop_random_feasible_groups_equivalent =
  QCheck.Test.make ~count:25 ~name:"every feasible group is semantics-preserving"
    QCheck.small_int
    (fun seed ->
      let p =
        Program.with_grid
          (Suite.generate
             { Suite.default with Suite.kernels = 10; arrays = 20; seed = seed + 1 })
          small_grid
      in
      let meta, exec = context p in
      let measured_runtime = Array.make (Program.num_kernels p) 1e-3 in
      let obj =
        Objective.create (Kf_model.Inputs.make ~device ~meta ~exec ~measured_runtime)
      in
      let rng = Rng.create (seed * 17) in
      let groups = Grouping.random_plan obj rng (Program.num_kernels p) in
      let plan = Plan.of_groups ~n:(Program.num_kernels p) groups in
      let fp = Fused_program.build ~device ~meta ~exec plan in
      (Sem.check ~device fp).Sem.equivalent)

(* --- negative tests: the oracle detects broken fusions --- *)

let test_detects_missing_halo () =
  (* Shave the halo off fusion X: the consumer segment reads ring values
     the producer never recomputed (the §II-D.2 incoherency). *)
  let p = Motivating.program ~grid:small_grid () in
  let meta, exec = context p in
  let f = Fused.build ~device ~meta ~exec ~group:Motivating.fusion_x in
  let broken =
    {
      f with
      Fused.halo_layers = 0;
      halo_bytes = 0;
      segments =
        List.map (fun s -> { s with Fused.halo_producer = false; halo_depth = 0 }) f.Fused.segments;
    }
  in
  let plan_units =
    [ Fused_program.Fused broken; Fused_program.Original 2; Fused_program.Original 3;
      Fused_program.Original 4 ]
  in
  let fp =
    { Fused_program.program = p; plan = Plan.of_groups ~n:5 [ [ 0; 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ];
      units = plan_units }
  in
  let v = Sem.check ~device fp in
  check Alcotest.bool "halo-less complex fusion detected" false v.Sem.equivalent;
  check Alcotest.bool "some sites mismatch" true (v.Sem.mismatched_sites > 0)

let test_detects_insufficient_halo_depth () =
  (* Depth 1 instead of the accumulated 2 on Y's producer chain: boundary
     rings are computed one layer short. *)
  let p = Motivating.program ~grid:small_grid () in
  let meta, exec = context p in
  let f = Fused.build ~device ~meta ~exec ~group:Motivating.fusion_y in
  check Alcotest.int "builder accumulates to depth 2" 2 f.Fused.halo_layers;
  let broken =
    {
      f with
      Fused.segments =
        List.map
          (fun s -> { s with Fused.halo_depth = min 1 s.Fused.halo_depth })
          f.Fused.segments;
    }
  in
  let others = [ 0; 1 ] in
  let fp =
    {
      Fused_program.program = p;
      plan = Plan.of_groups ~n:5 [ [ 2; 3; 4 ]; [ 0 ]; [ 1 ] ];
      units =
        List.map (fun k -> Fused_program.Original k) others @ [ Fused_program.Fused broken ];
    }
  in
  let v = Sem.check ~device fp in
  check Alcotest.bool "shallow halo detected" false v.Sem.equivalent

let test_detects_wrong_order () =
  (* Swap the segments of X (consumer before producer): the flow
     dependency is violated. *)
  let p = Motivating.program ~grid:small_grid () in
  let meta, exec = context p in
  let f = Fused.build ~device ~meta ~exec ~group:Motivating.fusion_x in
  let broken = { f with Fused.segments = List.rev f.Fused.segments } in
  let fp =
    {
      Fused_program.program = p;
      plan = Plan.of_groups ~n:5 [ [ 0; 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ];
      units =
        [ Fused_program.Fused broken; Fused_program.Original 2; Fused_program.Original 3;
          Fused_program.Original 4 ];
    }
  in
  let v = Sem.check ~device fp in
  check Alcotest.bool "segment order violation detected" false v.Sem.equivalent

let suite =
  [
    Alcotest.test_case "init deterministic" `Quick test_init_deterministic;
    Alcotest.test_case "original execution" `Quick test_original_changes_state;
    Alcotest.test_case "identity plan" `Quick test_identity_plan_equivalent;
    Alcotest.test_case "motivating fusions equivalent" `Quick test_motivating_fusions;
    Alcotest.test_case "search plans equivalent" `Slow test_search_plans_equivalent;
    Alcotest.test_case "detects missing halo" `Quick test_detects_missing_halo;
    Alcotest.test_case "detects shallow halo" `Quick test_detects_insufficient_halo_depth;
    Alcotest.test_case "detects wrong order" `Quick test_detects_wrong_order;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_random_feasible_groups_equivalent ]
