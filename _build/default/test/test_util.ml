(* Unit and property tests for Kf_util: RNG, statistics, bitsets, tables. *)

module Rng = Kf_util.Rng
module Stats = Kf_util.Stats
module Bitset = Kf_util.Bitset
module Table = Kf_util.Table

let check = Alcotest.check
let checkf = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  check Alcotest.bool "different seeds diverge" true !differs

let test_rng_bounds () =
  let t = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int t 17 in
    check Alcotest.bool "int in bound" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in t 5 9 in
    check Alcotest.bool "int_in inclusive" true (v >= 5 && v <= 9)
  done;
  for _ = 1 to 100 do
    let v = Rng.float t 2.5 in
    check Alcotest.bool "float in bound" true (v >= 0. && v < 2.5)
  done

let test_rng_invalid () =
  let t = Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int t 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range") (fun () ->
      ignore (Rng.int_in t 3 2));
  Alcotest.check_raises "empty choose" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose t [||]))

let test_rng_split_independent () =
  let parent = Rng.create 11 in
  let child = Rng.split parent in
  (* The child must not replay the parent's continuation. *)
  let p = List.init 20 (fun _ -> Rng.int64 parent) in
  let c = List.init 20 (fun _ -> Rng.int64 child) in
  check Alcotest.bool "streams differ" true (p <> c)

let test_rng_copy_replays () =
  let t = Rng.create 5 in
  ignore (Rng.int64 t);
  let snapshot = Rng.copy t in
  let a = List.init 10 (fun _ -> Rng.int64 t) in
  let b = List.init 10 (fun _ -> Rng.int64 snapshot) in
  check Alcotest.bool "copy replays" true (a = b)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~count:200 ~name:"shuffle is a permutation"
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let prop_sample_distinct =
  QCheck.Test.make ~count:200 ~name:"sample draws distinct positions"
    QCheck.(pair small_int (int_bound 20))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let arr = Array.init (n + 1) (fun i -> i) in
      let k = 1 + Rng.int rng (n + 1) in
      let s = Rng.sample rng k arr in
      Array.length s = k && List.length (List.sort_uniq compare (Array.to_list s)) = k)

let test_gaussian_moments () =
  let rng = Rng.create 42 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mean:3.0 ~stddev:2.0) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  check Alcotest.bool "mean near 3" true (Float.abs (m -. 3.0) < 0.1);
  check Alcotest.bool "stddev near 2" true (Float.abs (sd -. 2.0) < 0.1)

(* --- Stats --- *)

let test_stats_basics () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  checkf "mean" 2.5 (Stats.mean xs);
  checkf "median" 2.5 (Stats.median xs);
  checkf "sum" 10. (Stats.sum xs);
  checkf "variance" 1.25 (Stats.variance xs);
  let lo, hi = Stats.min_max xs in
  checkf "min" 1. lo;
  checkf "max" 4. hi

let test_stats_empty () =
  checkf "mean of empty" 0. (Stats.mean [||]);
  checkf "median of empty" 0. (Stats.median [||]);
  check Alcotest.int "summary n" 0 (Stats.summarize [||]).Stats.n

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  checkf "p0" 10. (Stats.percentile xs 0.);
  checkf "p50" 30. (Stats.percentile xs 50.);
  checkf "p100" 50. (Stats.percentile xs 100.);
  checkf "p25" 20. (Stats.percentile xs 25.)

let test_stats_geomean () =
  checkf "geomean" 2. (Stats.geomean [| 1.; 4. |]);
  Alcotest.check_raises "non-positive" (Invalid_argument "Stats.geomean: non-positive value")
    (fun () -> ignore (Stats.geomean [| 1.; 0. |]))

let prop_mean_within_bounds =
  QCheck.Test.make ~count:300 ~name:"mean lies within [min,max]"
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun l ->
      let xs = Array.of_list l in
      let m = Stats.mean xs in
      let lo, hi = Stats.min_max xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_median_within_bounds =
  QCheck.Test.make ~count:300 ~name:"median lies within [min,max]"
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun l ->
      let xs = Array.of_list l in
      let m = Stats.median xs in
      let lo, hi = Stats.min_max xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

(* --- Bitset --- *)

let test_bitset_basics () =
  let s = Bitset.create 70 in
  check Alcotest.bool "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 69;
  Bitset.add s 33;
  check Alcotest.int "cardinal" 3 (Bitset.cardinal s);
  check Alcotest.bool "mem 33" true (Bitset.mem s 33);
  Bitset.remove s 33;
  check Alcotest.bool "removed" false (Bitset.mem s 33);
  check Alcotest.(list int) "to_list sorted" [ 0; 69 ] (Bitset.to_list s)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "add out of range" (Invalid_argument "Bitset: index 8 out of [0,8)")
    (fun () -> Bitset.add s 8)

let prop_bitset_model =
  (* Bitset algebra agrees with a sorted-list set model. *)
  let module IS = Set.Make (Int) in
  QCheck.Test.make ~count:300 ~name:"bitset union/inter/diff match set model"
    QCheck.(pair (list (int_bound 63)) (list (int_bound 63)))
    (fun (la, lb) ->
      let a = Bitset.of_list 64 la and b = Bitset.of_list 64 lb in
      let sa = IS.of_list la and sb = IS.of_list lb in
      Bitset.to_list (Bitset.union a b) = IS.elements (IS.union sa sb)
      && Bitset.to_list (Bitset.inter a b) = IS.elements (IS.inter sa sb)
      && Bitset.to_list (Bitset.diff a b) = IS.elements (IS.diff sa sb)
      && Bitset.subset a (Bitset.union a b)
      && Bitset.disjoint a b = IS.is_empty (IS.inter sa sb))

let prop_bitset_union_into =
  QCheck.Test.make ~count:200 ~name:"union_into equals union"
    QCheck.(pair (list (int_bound 40)) (list (int_bound 40)))
    (fun (la, lb) ->
      let a = Bitset.of_list 41 la and b = Bitset.of_list 41 lb in
      let dst = Bitset.copy a in
      Bitset.union_into dst b;
      Bitset.equal dst (Bitset.union a b))

(* --- Table --- *)

(* Tiny substring helper to avoid a str dependency. *)
let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"demo" [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  check Alcotest.bool "has title" true (String.length s > 0 && String.sub s 0 4 = "demo");
  check Alcotest.bool "contains cell" true (contains_substring s "alpha");
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: expected 2 cells, got 1")
    (fun () -> Table.add_row t [ "x" ])

let test_table_cells () =
  check Alcotest.string "float cell" "3.14" (Table.cell_f ~decimals:2 3.14159);
  check Alcotest.string "pct cell" "41.3%" (Table.cell_pct 0.413);
  check Alcotest.string "speedup cell" "1.35x" (Table.cell_speedup 1.352)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_shuffle_is_permutation; prop_sample_distinct; prop_mean_within_bounds;
    prop_median_within_bounds; prop_bitset_model; prop_bitset_union_into ]

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng invalid args" `Quick test_rng_invalid;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy replays" `Quick test_rng_copy_replays;
    Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table cells" `Quick test_table_cells;
  ]
  @ qsuite
