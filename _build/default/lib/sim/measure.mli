(** Measurement driver: the simulator's equivalent of running and profiling
    a kernel on the physical GPU.

    Everything the paper obtains empirically — original kernel runtimes
    P(K_i), effective bandwidths, new-kernel runtimes, whole-program
    speedups — comes from here. *)

type result = {
  runtime_s : float;
  gmem_bytes : float;
  achieved_gbs : float;  (** gmem_bytes / runtime, in GB/s *)
  achieved_gflops : float;
  occupancy : Occupancy.limits;
  cycles_per_wave : float;
  waves : int;
  issue_stall_fraction : float;
}

val kernel : device:Kf_gpu.Device.t -> Kf_ir.Program.t -> int -> result
(** Measure one original kernel. *)

val fused : device:Kf_gpu.Device.t -> Kf_ir.Program.t -> Kf_fusion.Fused.t -> result
(** Measure one fused kernel.
    @raise Invalid_argument if the kernel cannot launch on the device
    (resource demand above SMX capacity) — fusion plans are expected to be
    validated first. *)

val program : device:Kf_gpu.Device.t -> Kf_ir.Program.t -> float
(** Total runtime of the original program (sum over kernel launches; the
    paper's codes are dependence-chained, so launches serialize). *)

val program_results : device:Kf_gpu.Device.t -> Kf_ir.Program.t -> result array
(** Per-kernel measurements, indexed by kernel id. *)

val fused_program : device:Kf_gpu.Device.t -> Kf_fusion.Fused_program.t -> float
(** Total runtime after fusion. *)

val fused_program_results :
  device:Kf_gpu.Device.t -> Kf_fusion.Fused_program.t -> (Kf_fusion.Fused_program.unit_ * result) list

val speedup : device:Kf_gpu.Device.t -> Kf_fusion.Fused_program.t -> float
(** Original runtime over fused runtime for the same program and device. *)

val pp_result : Format.formatter -> result -> unit
