module Device = Kf_gpu.Device
module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Access = Kf_ir.Access
module Stencil = Kf_ir.Stencil
module Grid = Kf_ir.Grid
module Array_info = Kf_ir.Array_info
module Fused = Kf_fusion.Fused
module Traffic = Kf_graph.Traffic

type lowered = {
  spec : Engine.block_spec;
  threads_per_block : int;
  registers_per_thread : int;
  smem_per_block : int;
  ro_per_block : int;  (* read-only cache bytes per block *)
  gmem_bytes : float;
  total_flops : float;
}

let ceil_div a b = (a + b - 1) / b

let txns_per_warp elem_bytes = ceil_div (32 * elem_bytes) 128

let elem p a = (Program.array p a).Array_info.elem_bytes

(* Row-buffer locality loss for kernels streaming many concurrent arrays:
   the memory controller keeps a limited number of DRAM rows open, so
   interleaving more streams than that costs extra activates. *)
let stream_factor n_arrays = 1. +. (0.06 *. float_of_int (max 0 (n_arrays - 5)))

(* Emit [n] repetitions of a per-iteration instruction list.  The vertical
   loop is homogeneous, so the trace is the per-iteration block repeated
   [nz] times. *)
let repeat_iters nz per_iter =
  let arr = Array.of_list per_iter in
  let len = Array.length arr in
  Array.init (nz * len) (fun i -> arr.(i mod len))

let instr_count tr = Array.length tr

let of_kernel ~device p k =
  let kern = Program.kernel p k in
  let grid = p.Program.grid in
  let thr = Grid.threads_per_block grid in
  let staged = Kernel.smem_staged_arrays kern in
  let per_iter = ref [] in
  let emit i = per_iter := i :: !per_iter in
  let special = ref [] in
  let emit_special i = special := i :: !special in
  (* Staging phase: the originals double-buffer, so the tile loads stream
     ahead of the iteration that consumes them. *)
  List.iter
    (fun a ->
      emit (Engine.Prefetch (txns_per_warp (elem p a)));
      emit (Engine.Smem 1))
    staged;
  (* Block-boundary ring: the specialized warp refetches the neighborhood
     directly from GMEM (paper Fig. 3, Kernel Y). *)
  List.iter
    (fun a ->
      match Kernel.access_for kern a with
      | Some acc when Access.reads acc ->
          let r = Stencil.radius acc.Access.pattern in
          if r > 0 then begin
            let ring = Grid.halo_sites_per_plane grid r in
            emit_special (Engine.Prefetch (ceil_div (ring * elem p a) 128));
            emit_special (Engine.Smem (ceil_div ring 32))
          end
      | _ -> ())
    staged;
  if staged <> [] then emit Engine.Barrier;
  (* Compute phase: reads then arithmetic then stores. *)
  List.iter
    (fun (a : Access.t) ->
      if Access.reads a then begin
        let pts = Stencil.num_points a.pattern in
        if List.mem a.array staged then emit (Engine.Smem pts)
        else emit (Engine.Gload (pts * txns_per_warp (elem p a.array)))
      end)
    kern.Kernel.accesses;
  let flops = int_of_float (Float.ceil (Kernel.flops_per_site kern)) in
  if flops > 0 then emit (Engine.Compute flops);
  List.iter
    (fun (a : Access.t) ->
      if Access.writes a then emit (Engine.Gstore (txns_per_warp (elem p a.array))))
    kern.Kernel.accesses;
  let per_iter = List.rev !per_iter in
  let trace = repeat_iters grid.nz per_iter in
  let special_trace = repeat_iters grid.nz (List.rev !special @ per_iter) in
  (* Double buffering costs two tiles per staged array. *)
  let used = 2 * List.length staged * thr * 8 in
  let smem_per_block = if used = 0 then 0 else used + (used / device.Device.smem_banks) in
  {
    spec =
      {
        Engine.warps_per_block = ceil_div thr device.Device.warp_size;
        trace;
        special_trace;
        conflict_factor = 1.0;
        stream_factor = stream_factor (List.length (Kernel.arrays kern));
      };
    threads_per_block = thr;
    registers_per_thread = kern.Kernel.registers_per_thread;
    smem_per_block;
    ro_per_block = 0;
    gmem_bytes = Traffic.kernel_bytes p k;
    total_flops = Kernel.total_flops kern grid;
  }

let of_fused ~device p (f : Fused.t) =
  let grid = p.Program.grid in
  let thr = Grid.threads_per_block grid in
  let staged = List.filter (fun a -> not (List.mem a f.Fused.register_reuse)) f.Fused.pivot in
  let halo = f.Fused.halo_layers in
  let ring = if halo > 0 then Grid.halo_sites_per_plane grid halo else 0 in
  (* External-fetch analysis: an array is fetched from GMEM unless a member
     writes it before any member reads it. *)
  let written = Hashtbl.create 8 in
  let external_fetch = Hashtbl.create 8 in
  List.iter
    (fun k ->
      let kern = Program.kernel p k in
      List.iter
        (fun (a : Access.t) ->
          if Access.reads a && not (Hashtbl.mem written a.array) then
            Hashtbl.replace external_fetch a.array ();
          if Access.writes a then Hashtbl.replace written a.array ())
        kern.Kernel.accesses)
    f.Fused.members;
  (* Normal and specialized (warp 0) traces are built in lockstep so that
     both see the same number of barriers; the specialized warp carries the
     halo duty (paper §II-D.2's specialized warps). *)
  let norm = ref [] and spec = ref [] in
  let emit i =
    norm := i :: !norm;
    spec := i :: !spec
  in
  let emit_special i = spec := i :: !spec in
  (* Staging phase: externally-fetched pivot arrays are double-buffered
     like the originals' tiles (prefetch); internally-produced pivots
     cannot be — their data is computed within the iteration. *)
  List.iter
    (fun a ->
      if Hashtbl.mem external_fetch a then begin
        emit (Engine.Prefetch (txns_per_warp (elem p a)));
        emit (Engine.Smem 1);
        if ring > 0 then begin
          emit_special (Engine.Prefetch (ceil_div (ring * elem p a) 128));
          emit_special (Engine.Smem (ceil_div ring 32))
        end
      end)
    staged;
  List.iter
    (fun a ->
      if Hashtbl.mem external_fetch a then emit (Engine.Gload (txns_per_warp (elem p a))))
    f.Fused.register_reuse;
  if staged <> [] then emit Engine.Barrier;
  (* Segments. *)
  List.iter
    (fun (s : Fused.segment) ->
      if s.Fused.barrier_before then emit Engine.Barrier;
      let kern = Program.kernel p s.Fused.kernel in
      let own_staged =
        List.filter (fun a -> not (List.mem a staged)) (Kernel.smem_staged_arrays kern)
      in
      List.iter
        (fun (a : Access.t) ->
          if Access.reads a then begin
            let pts = Stencil.num_points a.pattern in
            if List.mem a.array staged then emit (Engine.Smem pts)
            else if List.mem a.array own_staged then begin
              emit (Engine.Gload (txns_per_warp (elem p a.array)));
              emit (Engine.Smem (1 + pts))
            end
            else if List.mem a.array f.Fused.register_reuse then ()
            else begin
              emit (Engine.Gload (pts * txns_per_warp (elem p a.array)));
              (* The producer's ring replay also needs this segment's
                 un-staged inputs on the ring — specialized-warp fetches. *)
              if s.Fused.halo_producer && ring > 0 then
                emit_special (Engine.Gload (ceil_div (ring * elem p a.array) 128))
            end
          end)
        kern.Kernel.accesses;
      let base_flops = int_of_float (Float.ceil (Kernel.flops_per_site kern)) in
      if base_flops > 0 then emit (Engine.Compute base_flops);
      if s.Fused.halo_depth > 0 then begin
        (* Ring replay: the specialized warp recomputes the segment on its
           own ring depth and stores the results into the SMEM rings. *)
        let seg_ring = Grid.halo_sites_per_plane grid s.Fused.halo_depth in
        let ring_warp_iters = ceil_div seg_ring 32 in
        emit_special (Engine.Compute (base_flops * ring_warp_iters));
        emit_special (Engine.Smem ring_warp_iters)
      end;
      List.iter
        (fun (a : Access.t) ->
          if Access.writes a then begin
            emit (Engine.Gstore (txns_per_warp (elem p a.array)));
            if List.mem a.array staged then emit (Engine.Smem 1)
          end)
        kern.Kernel.accesses)
    f.Fused.segments;
  let trace = repeat_iters grid.nz (List.rev !norm) in
  let special_trace = repeat_iters grid.nz (List.rev !spec) in
  (* A fused kernel whose padded SMEM demand would overflow the SMX runs
     unpadded and eats bank conflicts instead (paper Eq. 7's B_conf term
     exists to avoid exactly this). *)
  let padded = f.Fused.smem_bytes_per_block in
  let unpadded = padded * device.Device.smem_banks / (device.Device.smem_banks + 1) in
  let smem_per_block, conflict_factor =
    if padded <= device.Device.smem_per_smx then (padded, 1.0) else (unpadded, 2.0)
  in
  {
    spec =
      {
        Engine.warps_per_block = ceil_div thr device.Device.warp_size;
        trace;
        special_trace;
        conflict_factor;
        stream_factor =
          stream_factor
            (List.length
               (List.sort_uniq compare
                  (List.concat_map (fun k -> Kernel.arrays (Program.kernel p k)) f.Fused.members)));
      };
    threads_per_block = thr;
    registers_per_thread = f.Fused.registers_per_thread;
    smem_per_block;
    ro_per_block = f.Fused.ro_bytes_per_block;
    gmem_bytes = Fused.gmem_bytes p f;
    total_flops = Fused.total_flops p f;
  }
