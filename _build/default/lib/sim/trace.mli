(** Warp-trace construction: lowers a kernel IR (original or fused) into
    the instruction stream one warp executes for a full sweep.

    The lowering mirrors the code shapes of paper Fig. 3: per vertical
    iteration, a staging phase (global loads + SMEM stores for staged
    arrays, with the block-boundary/halo ring handled by the specialized
    warp), a barrier when SMEM is used, then compute phases reading staged
    arrays from SMEM and un-staged arrays from global memory, and finally
    the stores.  Fused kernels interleave one such phase per segment with
    the inter-segment barriers and halo-producer overwork. *)

type lowered = {
  spec : Engine.block_spec;
  threads_per_block : int;
  registers_per_thread : int;
  smem_per_block : int;  (** bytes, padding included *)
  ro_per_block : int;  (** read-only cache bytes per block (0 when unused) *)
  gmem_bytes : float;  (** traffic of a full sweep, for bandwidth accounting *)
  total_flops : float;
}

val of_kernel : device:Kf_gpu.Device.t -> Kf_ir.Program.t -> int -> lowered
(** Lower one original kernel (by id). *)

val of_fused :
  device:Kf_gpu.Device.t -> Kf_ir.Program.t -> Kf_fusion.Fused.t -> lowered
(** Lower a fused kernel. *)

val instr_count : Engine.instr array -> int
