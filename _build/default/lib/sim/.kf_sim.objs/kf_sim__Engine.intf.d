lib/sim/engine.mli: Kf_gpu
