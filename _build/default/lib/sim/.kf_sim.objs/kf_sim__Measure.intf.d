lib/sim/measure.mli: Format Kf_fusion Kf_gpu Kf_ir Occupancy
