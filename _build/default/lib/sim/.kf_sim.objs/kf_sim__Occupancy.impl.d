lib/sim/occupancy.ml: Format Kf_gpu List
