lib/sim/engine.ml: Array Float Kf_gpu List Queue
