lib/sim/trace.mli: Engine Kf_fusion Kf_gpu Kf_ir
