lib/sim/trace.ml: Array Engine Float Hashtbl Kf_fusion Kf_gpu Kf_graph Kf_ir List
