lib/sim/occupancy.mli: Format Kf_gpu
