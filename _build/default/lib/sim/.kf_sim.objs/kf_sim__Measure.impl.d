lib/sim/measure.ml: Array Engine Format Kf_fusion Kf_gpu Kf_ir List Occupancy Trace
