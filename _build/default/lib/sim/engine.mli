(** Discrete-time SMX execution engine.

    One representative SMX is simulated at warp granularity: resident
    warps issue instructions against four contended resources — the issue
    slots of the warp schedulers, the floating-point pipeline, the
    shared-memory pipeline and the SMX's share of DRAM bandwidth — with
    DRAM and SMEM latencies on top.  Latency hiding, the phenomenon the
    paper's projection model approximates, *emerges* here: with few
    resident warps the DRAM round-trip is exposed, with many it overlaps.

    The full grid executes as successive waves of resident blocks; total
    runtime extrapolates one wave's cycle count over the wave count (all
    blocks run the same trace — the codes are uniform stencil sweeps). *)

type instr =
  | Gload of int
      (** global-memory load: [n] 128-byte transactions issued by the warp *)
  | Prefetch of int
      (** double-buffered load of the {e next} vertical iteration's tile:
          consumes bandwidth now, but nothing in this iteration waits for
          the data (the paper's "rigorously optimized" original kernels
          overlap their staging loads with computation) *)
  | Gstore of int  (** global-memory store: [n] transactions *)
  | Smem of int
      (** [n] shared-memory accesses (the engine scales their service time
          by the kernel's bank-conflict factor) *)
  | Compute of int  (** [n] warp-wide floating-point instructions *)
  | Barrier  (** block-wide [__syncthreads()] *)

type block_spec = {
  warps_per_block : int;
  trace : instr array;  (** one full sweep (all vertical iterations) *)
  special_trace : instr array;
      (** warp 0 of each block — the specialized halo-duty warp of paper
          §II-D.2 — runs this trace instead *)
  conflict_factor : float;  (** ≥ 1.0; SMEM service-time multiplier *)
  stream_factor : float;
      (** ≥ 1.0; DRAM service-time multiplier for kernels streaming many
          concurrent arrays (row-buffer locality loss — wide fused kernels
          interleave more open streams than the memory controller has
          banks for) *)
}

type config = {
  device : Kf_gpu.Device.t;
  blocks_per_smx : int;  (** resident blocks (from {!Occupancy}) *)
  total_blocks : int;  (** grid size in blocks *)
  spec : block_spec;
}

type result = {
  cycles_per_wave : float;
  waves : int;
  runtime_s : float;
  issue_stall_fraction : float;
      (** fraction of wave cycles in which no warp could issue — high
          values mean latency was not hidden *)
  instructions : int;  (** instructions executed in the simulated wave *)
}

val run : config -> result
(** @raise Invalid_argument on a zero-block configuration (the kernel
    cannot launch: resource demand exceeds the SMX). *)
