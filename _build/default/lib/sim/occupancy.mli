(** Occupancy calculation: how many thread blocks are simultaneously
    resident on one SMX.

    This is the quantity the paper's whole argument turns on — fusion
    raises per-block register and SMEM demand, which lowers the active
    block count, which degrades the runtime's ability to hide memory
    latency (the paper's Blocks_SMX of Table III and Eqns. 3 and 7). *)

type limits = {
  active_blocks : int;  (** resulting Blocks_SMX (0 = kernel cannot launch) *)
  active_warps : int;
  by_block_limit : int;  (** cap from the device's max resident blocks *)
  by_thread_limit : int;  (** cap from max resident threads *)
  by_register_limit : int;  (** cap from the register file (Eq. 3) *)
  by_smem_limit : int;  (** cap from shared-memory capacity (Eq. 7) *)
  by_ro_cache_limit : int;  (** cap from the read-only data cache (§II-C) *)
}

val compute :
  device:Kf_gpu.Device.t ->
  threads_per_block:int ->
  registers_per_thread:int ->
  smem_per_block:int ->
  ?ro_per_block:int ->
  unit ->
  limits
(** [ro_per_block] defaults to 0 (no read-only-cache staging).
    @raise Invalid_argument on non-positive threads or registers. *)

val binding_resource : limits -> string
(** Human-readable name of the limiting resource ("blocks", "threads",
    "registers" or "smem"). *)

val occupancy_fraction : device:Kf_gpu.Device.t -> limits -> float
(** Active warps over the device's maximum resident warps. *)

val pp : Format.formatter -> limits -> unit
