module Device = Kf_gpu.Device

type limits = {
  active_blocks : int;
  active_warps : int;
  by_block_limit : int;
  by_thread_limit : int;
  by_register_limit : int;
  by_smem_limit : int;
  by_ro_cache_limit : int;
}

let compute ~device ~threads_per_block ~registers_per_thread ~smem_per_block
    ?(ro_per_block = 0) () =
  if threads_per_block <= 0 then invalid_arg "Occupancy.compute: non-positive threads";
  if registers_per_thread <= 0 then invalid_arg "Occupancy.compute: non-positive registers";
  if smem_per_block < 0 then invalid_arg "Occupancy.compute: negative smem";
  let d = device in
  let by_block_limit = d.Device.max_blocks_per_smx in
  let by_thread_limit = d.Device.max_threads_per_smx / threads_per_block in
  let by_register_limit = d.Device.registers_per_smx / (threads_per_block * registers_per_thread) in
  let by_smem_limit =
    if smem_per_block = 0 then by_block_limit
    else if smem_per_block > d.Device.smem_per_smx then 0
    else d.Device.smem_per_smx / smem_per_block
  in
  let by_ro_cache_limit =
    if ro_per_block = 0 then by_block_limit
    else if ro_per_block > d.Device.readonly_cache_per_smx then 0
    else d.Device.readonly_cache_per_smx / ro_per_block
  in
  let active_blocks =
    max 0
      (min
         (min by_block_limit by_thread_limit)
         (min by_ro_cache_limit (min by_register_limit by_smem_limit)))
  in
  let warps_per_block = (threads_per_block + d.Device.warp_size - 1) / d.Device.warp_size in
  {
    active_blocks;
    active_warps = active_blocks * warps_per_block;
    by_block_limit;
    by_thread_limit;
    by_register_limit;
    by_smem_limit;
    by_ro_cache_limit;
  }

let binding_resource l =
  let candidates =
    [
      (l.by_block_limit, "blocks");
      (l.by_thread_limit, "threads");
      (l.by_register_limit, "registers");
      (l.by_smem_limit, "smem");
      (l.by_ro_cache_limit, "ro-cache");
    ]
  in
  let binding = List.filter (fun (v, _) -> v = l.active_blocks) candidates in
  match binding with (_, name) :: _ -> name | [] -> "none"

let occupancy_fraction ~device l =
  let max_warps = device.Device.max_threads_per_smx / device.Device.warp_size in
  float_of_int l.active_warps /. float_of_int max_warps

let pp ppf l =
  Format.fprintf ppf "%d blocks (%d warps) limited by %s" l.active_blocks l.active_warps
    (binding_resource l)
