(** The paper's motivating example (Fig. 3): five CUDA kernels A-E over
    3-D arrays, with the two fusions discussed in §II-D and §IV-B —
    Kernel X = A+B (complex fusion with one halo layer) and Kernel
    Y = C+D+E (simple fusion of three kernels staging three arrays, the
    case where naive models over-promise and the measured runtime
    degrades). *)

val program : ?grid:Kf_ir.Grid.t -> unit -> Kf_ir.Program.t
(** Kernels A, B, C, D, E in invocation order over arrays
    A B C D Mx Mn R T Q P V U W.  Default grid: 512x256x32 with 16x16
    blocks (the paper's micro-benchmark scale). *)

val kernel_a : int
val kernel_b : int
val kernel_c : int
val kernel_d : int
val kernel_e : int
(** Kernel ids within {!program}. *)

val fusion_x : int list
(** The A+B group of Fig. 3's Kernel X. *)

val fusion_y : int list
(** The C+D+E group of Fig. 3's Kernel Y. *)
