open Kf_ir

(* Array ids in declaration order. *)
let a_A = 0
let a_B = 1
let a_C = 2
let a_D = 3
let a_Mx = 4
let a_Mn = 5
let a_R = 6
let a_T = 7
let a_Q = 8
let a_P = 9
let a_V = 10
let a_U = 11
let a_W = 12
let a_C1 = 13
let a_C2 = 14
let a_D1 = 15
let a_D2 = 16
let a_E1 = 17

let kernel_a = 0
let kernel_b = 1
let kernel_c = 2
let kernel_d = 3
let kernel_e = 4

let acc array mode pattern flops = { Access.array; mode; pattern; flops }

(* 3-point backward pattern of listings 3-5: (0,0), (-1,0), (0,-1). *)
let asym3 =
  Stencil.make
    [ { Stencil.di = 0; dj = 0; dk = 0 }; { di = -1; dj = 0; dk = 0 }; { di = 0; dj = -1; dk = 0 } ]

(* 2-point west pattern of W = min(V[i-1], V). *)
let west2 = Stencil.make [ { Stencil.di = 0; dj = 0; dk = 0 }; { di = -1; dj = 0; dk = 0 } ]

let program ?grid () =
  let grid =
    match grid with
    | Some g -> g
    | None -> Grid.make ~nx:512 ~ny:256 ~nz:32 ~block_x:32 ~block_y:16
  in
  let names =
    [
      "A"; "B"; "C"; "D"; "Mx"; "Mn"; "R"; "T"; "Q"; "P"; "V"; "U"; "W"; "C1"; "C2"; "D1"; "D2";
      "E1";
    ]
  in
  let arrays = List.mapi (fun id name -> Array_info.make ~id ~name ()) names in
  let kernels =
    [
      (* Listing 1: A = B + C;  D = dtr*(A + A[i-1] + A[j-1] + A[i-1,j-1]) *)
      Kernel.make ~id:kernel_a ~name:"Kern_A"
        ~accesses:
          [
            acc a_A Access.ReadWrite Stencil.asym_west_south 1.;
            acc a_B Access.Read Stencil.point 1.;
            acc a_C Access.Read Stencil.point 0.;
            acc a_D Access.Write Stencil.point 4.;
          ]
        ~registers_per_thread:28 ();
      (* Listing 2: Mx, Mn from backward differences of A. *)
      Kernel.make ~id:kernel_b ~name:"Kern_B"
        ~accesses:
          [
            acc a_A Access.Read Stencil.asym_west_south 6.;
            acc a_Mx Access.Write Stencil.point 3.;
            acc a_Mn Access.Write Stencil.point 3.;
          ]
        ~registers_per_thread:30 ();
      (* Listing 3: R = T[i-1]+T+T[j-1];  W = min(V[i-1], V); plus the
         kernel's private coefficient arrays. *)
      Kernel.make ~id:kernel_c ~name:"Kern_C"
        ~accesses:
          [
            acc a_R Access.Write Stencil.point 2.;
            acc a_T Access.Read asym3 1.;
            acc a_V Access.Read west2 1.;
            acc a_W Access.Write Stencil.point 1.;
            acc a_C1 Access.Read Stencil.point 1.;
            acc a_C2 Access.Read Stencil.point 1.;
          ]
        ~registers_per_thread:40 ();
      (* Listing 4: P from products and quotients of Q's neighborhood. *)
      Kernel.make ~id:kernel_d ~name:"Kern_D"
        ~accesses:
          [
            acc a_P Access.Write Stencil.point 2.;
            acc a_Q Access.Read asym3 5.;
            acc a_D1 Access.Read Stencil.point 1.;
            acc a_D2 Access.Read Stencil.point 1.;
          ]
        ~registers_per_thread:38 ();
      (* Listing 5: U combines T, Q and V neighborhoods, seeded by the
         smoothed field R that Kern_C produced — the flow dependency that
         makes fusing C with E a complex fusion needing a halo layer. *)
      Kernel.make ~id:kernel_e ~name:"Kern_E"
        ~accesses:
          [
            acc a_T Access.Read asym3 3.;
            acc a_Q Access.Read asym3 3.;
            acc a_V Access.Read west2 2.;
            acc a_R Access.Read (Stencil.star_radius 2) 2.;
            acc a_U Access.Write Stencil.point 1.;
            acc a_E1 Access.Read Stencil.point 1.;
          ]
        ~registers_per_thread:46 ();
    ]
  in
  Program.create ~name:"motivating" ~grid ~arrays ~kernels

let fusion_x = [ kernel_a; kernel_b ]
let fusion_y = [ kernel_c; kernel_d; kernel_e ]
