(** Synthetic CAM-HOMME dynamical core (paper §VI-B.2).

    HOMME discretizes with spectral elements (continuous Galerkin), so its
    kernels are hotter in flops and lighter in stencil reuse than the
    finite-difference codes: derivative-matrix products over element
    tensors rather than neighborhood stencils.  The model has a
    handcrafted 12-kernel gradient/divergence/vorticity core plus a
    generated tracer-advection extension, totalling the published 43
    kernels over 27 arrays with roughly 21% reducible traffic.

    The paper's problem size for HOMME is 4x26x101 (elements x levels x
    columns); the default grid matches its thread-block workload. *)

val program : ?grid:Kf_ir.Grid.t -> unit -> Kf_ir.Program.t
(** The full 43-kernel model. *)
