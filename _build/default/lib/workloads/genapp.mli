(** Generic synthetic-application generator with traffic calibration.

    The real weather codes of paper Table I are proprietary or too large
    to transcribe; what the fusion problem actually sees of them is their
    dependency-graph statistics — kernel count, array count, and the
    fraction of GMEM traffic that is reducible.  This generator produces a
    program with exactly the requested kernel and array counts and then
    calibrates its read-reuse probability (by bisection against
    {!Kf_graph.Traffic.analyze}) until the reducible fraction matches the
    published number. *)

type spec = {
  name : string;
  kernels : int;
  arrays : int;
  reducible_target : float;  (** e.g. 0.41 for SCALE-LES *)
  expandable : int;  (** number of QFLX-style expandable arrays to weave in *)
  avg_thread_load : int;  (** stencil size of reuse-bearing reads *)
  flops_scale : float;
      (** multiplies per-access flops — spectral-element codes (HOMME) are
          hotter than finite-difference ones *)
  seed : int;
}

val generate : ?grid:Kf_ir.Grid.t -> reuse_probability:float -> spec -> Kf_ir.Program.t
(** One uncalibrated instance: each read slot re-reads an already-touched
    array with the given probability. *)

val calibrated : ?grid:Kf_ir.Grid.t -> spec -> Kf_ir.Program.t * float
(** Bisect [reuse_probability] until the relaxed order-of-execution
    traffic analysis reports a reducible fraction within 1.5 points of
    target (or the bracket is exhausted).  Returns the program and its
    achieved reducible fraction. *)
