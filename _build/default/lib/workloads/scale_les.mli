(** Synthetic SCALE-LES dynamical core (paper §VI-B.2, Figs. 1-2).

    The model has two parts:
    - a handcrafted 18-kernel 3rd-order Runge-Kutta section that mirrors
      the dependency structure of paper Fig. 1 — prognostic arrays
      (DENS, MOMZ, MOMX, MOMY, RHOT) read by source-term and flux
      kernels, the expandable QFLX array written by K_8 and K_12 and read
      by K_10 and K_14, metric arrays (CZ, RCDZ) read-only everywhere,
      and tendency arrays flowing into the RK update kernels;
    - a generated extension (physics/turbulence/microphysics-style
      sections) bringing the totals to the published 142 kernels over 64
      arrays with roughly 41% reducible GMEM traffic.

    The paper's problem size for SCALE-LES is 1280x32x32. *)

val rk_core : ?grid:Kf_ir.Grid.t -> unit -> Kf_ir.Program.t
(** Just the 18-kernel RK section (the paper's Fig. 1/2 motivating
    routine). *)

val program : ?grid:Kf_ir.Grid.t -> unit -> Kf_ir.Program.t
(** The full 142-kernel model. *)

val qflx : Kf_ir.Program.t -> int
(** Array id of QFLX within a program built by this module (for tests of
    the expandable-array machinery).  @raise Not_found if absent. *)
