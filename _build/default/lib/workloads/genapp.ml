open Kf_ir
module Rng = Kf_util.Rng

type spec = {
  name : string;
  kernels : int;
  arrays : int;
  reducible_target : float;
  expandable : int;
  avg_thread_load : int;
  flops_scale : float;
  seed : int;
}

let default_grid = Grid.make ~nx:1280 ~ny:32 ~nz:32 ~block_x:32 ~block_y:8

let generate ?(grid = default_grid) ~reuse_probability spec =
  if spec.kernels < 2 || spec.arrays < 4 then invalid_arg "Genapp.generate: degenerate spec";
  let p = Float.max 0.0 (Float.min 1.0 reuse_probability) in
  let rng = Rng.create spec.seed in
  let n = spec.kernels and m = spec.arrays in
  let arrays = List.init m (fun i -> Array_info.make ~id:i ~name:(Printf.sprintf "%s_v%02d" spec.name i) ()) in
  let acc array mode pattern flops = { Access.array; mode; pattern; flops } in
  let load_stencil = Suite.stencil_of_load spec.avg_thread_load in
  let light_stencil = Suite.stencil_of_load (max 1 (spec.avg_thread_load / 2)) in
  (* Fresh-array introduction is paced so all m arrays appear: kernel i
     introduces its quota as writes (producing data later kernels may
     re-read) or first reads (boundary inputs). *)
  let next_fresh = ref 0 in
  let touched = ref [] in
  let expandable_arrays = ref [] in
  let fresh () =
    if !next_fresh < m then begin
      let a = !next_fresh in
      incr next_fresh;
      touched := a :: !touched;
      Some a
    end
    else None
  in
  let reuse () = match !touched with [] -> None | l -> Some (Rng.choose_list rng l) in
  let kernels =
    List.init n (fun k ->
        let quota = ((k + 1) * m / n) - (k * m / n) in
        let introduced = List.filter_map (fun _ -> fresh ()) (List.init quota (fun i -> i)) in
        (* Of the introduced arrays, the first becomes this kernel's write
           target; the rest are first-touch reads. *)
        let write_target, first_reads =
          match introduced with
          | [] -> (None, [])
          | w :: rest -> (Some w, rest)
        in
        let n_read_slots = 2 + Rng.int rng 3 in
        let reread_ids =
          List.init n_read_slots (fun _ -> if Rng.chance rng p then reuse () else None)
          |> List.filter_map (fun x -> x)
          |> List.sort_uniq compare
        in
        let all_reads = List.sort_uniq compare (first_reads @ reread_ids) in
        let all_reads = match write_target with
          | Some w -> List.filter (( <> ) w) all_reads
          | None -> all_reads
        in
        let read_accs =
          List.map
            (fun a ->
              let pat = if Rng.chance rng 0.6 then load_stencil else light_stencil in
              acc a Access.Read pat (spec.flops_scale *. (1. +. float_of_int (Rng.int rng 4))))
            all_reads
        in
        let write_accs =
          match write_target with
          | Some w -> [ acc w Access.Write Stencil.point (spec.flops_scale *. 1.) ]
          | None -> begin
              (* Quota exhausted: overwrite an expandable flux array,
                 creating a fresh writer generation. *)
              match reuse () with
              | Some a when not (List.mem a all_reads) ->
                  if List.length !expandable_arrays < spec.expandable then
                    expandable_arrays := a :: !expandable_arrays;
                  [ acc a Access.Write Stencil.point (spec.flops_scale *. 1.) ]
              | _ -> []
            end
        in
        let accesses = read_accs @ write_accs in
        let accesses =
          if accesses = [] then [ acc 0 Access.Read Stencil.point 1. ] else accesses
        in
        Kernel.make ~id:k
          ~name:(Printf.sprintf "%s_k%03d" spec.name k)
          ~accesses
          ~extra_flops_per_site:(spec.flops_scale *. (2. +. float_of_int (Rng.int rng 5)))
          ~registers_per_thread:(26 + Rng.int rng 18)
          ())
  in
  Program.create ~name:spec.name ~grid ~arrays ~kernels

let reducible ?grid ~reuse_probability spec =
  let p = generate ?grid ~reuse_probability spec in
  let dd = Kf_graph.Datadep.build p in
  let exec = Kf_graph.Exec_order.build dd in
  let report = Kf_graph.Traffic.analyze exec in
  (p, report.Kf_graph.Traffic.reducible_fraction)

let calibrated ?grid spec =
  let lo = ref 0.0 and hi = ref 1.0 in
  let best = ref None in
  for _ = 1 to 14 do
    let mid = (!lo +. !hi) /. 2. in
    let p, frac = reducible ?grid ~reuse_probability:mid spec in
    let err = Float.abs (frac -. spec.reducible_target) in
    (match !best with
    | Some (_, _, e) when e <= err -> ()
    | _ -> best := Some (p, frac, err));
    if frac < spec.reducible_target then lo := mid else hi := mid
  done;
  match !best with
  | Some (p, frac, _) -> (p, frac)
  | None -> assert false
