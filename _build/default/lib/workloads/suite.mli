(** Test-suite generator (paper Table V).

    The paper builds a controlled benchmark suite from CloverLeaf's
    kernels by sweeping six attributes; this generator synthesizes a
    program for any point of that grid.  The attributes map to generator
    mechanics as follows:

    - {b kernels}, {b arrays}: sizes of the kernel sequence and array
      pool — more kernels widen the search space, more arrays multiply
      sharing sets.
    - {b data_copies}: number of flux-style arrays written in several
      generations (expandable read-write arrays, each generation costing
      one redundant copy after relaxation).
    - {b sharing_set}: target cardinality of each shared array's sharing
      set 𝕂(D) (how many kernels read the same array).
    - {b thread_load}: stencil point count used for the main read
      accesses (Table III's ThrLD).
    - {b kinship}: stride at which consecutive kernels' read windows
      drift across the array pool — small strides give dense direct
      kinship, large strides stretch kinship chains. *)

type config = {
  kernels : int;
  arrays : int;
  data_copies : int;
  sharing_set : int;
  thread_load : int;
  kinship : int;
  seed : int;
}

val default : config
(** 30 kernels, 60 arrays, 4 copies, sharing set 4, thread load 8,
    kinship 2, seed 1. *)

val table5_axis : [ `Kernels | `Arrays | `Copies | `Sharing | `Load | `Kinship ] -> int list
(** The Min..Max by Δ sweep values of paper Table V for one attribute. *)

val stencil_of_load : int -> Kf_ir.Stencil.t
(** A stencil with exactly the given number of points (1 = point access),
    growing outward from the center.  @raise Invalid_argument for loads
    below 1 or above 25. *)

val generate : config -> Kf_ir.Program.t
(** Deterministic for a given config. *)

val name_of : config -> string
