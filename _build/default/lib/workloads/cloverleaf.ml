open Kf_ir

let kernel_names =
  [
    "ideal_gas"; "viscosity"; "calc_dt"; "pdv"; "accelerate"; "flux_calc_x"; "flux_calc_y";
    "advec_cell_x"; "advec_mom_x"; "advec_cell_y"; "advec_mom_y"; "reset_field"; "update_halo";
    "field_summary";
  ]

let array_names =
  [
    "density0"; "density1"; "energy0"; "energy1"; "pressure"; "viscosity"; "soundspeed";
    "xvel0"; "xvel1"; "yvel0"; "yvel1"; "vol_flux_x"; "vol_flux_y"; "mass_flux_x";
    "mass_flux_y"; "volume"; "xarea"; "yarea"; "work_array1";
  ]

let id name =
  let rec go i = function
    | [] -> invalid_arg ("Cloverleaf: unknown array " ^ name)
    | n :: rest -> if n = name then i else go (i + 1) rest
  in
  go 0 array_names

let acc name mode pattern flops = { Access.array = id name; mode; pattern; flops }
let r name flops = acc name Access.Read Stencil.point flops
let rs name pattern flops = acc name Access.Read pattern flops
let w name = acc name Access.Write Stencil.point 0.
let rw name pattern flops = acc name Access.ReadWrite pattern flops

let program ?grid () =
  let grid =
    match grid with
    | Some g -> g
    | None -> Grid.make ~nx:960 ~ny:960 ~nz:1 ~block_x:32 ~block_y:8
  in
  let arrays = List.mapi (fun i name -> Array_info.make ~id:i ~name ()) array_names in
  (* Ids are assigned by position after the list is built — computing them
     with a side effect inside the list literal would depend on OCaml's
     unspecified evaluation order. *)
  let kernel name accesses ?(regs = 30) ?(extra = 0.) ?(active = 1.0) () id =
    Kernel.make ~id ~name ~accesses ~registers_per_thread:regs ~extra_flops_per_site:extra
      ~active_fraction:active ()
  in
  let kernels =
    [
      kernel "ideal_gas"
        [ r "density0" 3.; r "energy0" 3.; w "pressure"; w "soundspeed" ]
        ~regs:24 ~extra:4. ();
      kernel "viscosity"
        [
          rs "xvel0" Stencil.star5 4.; rs "yvel0" Stencil.star5 4.; rs "pressure" Stencil.star5 3.;
          r "density0" 2.; w "viscosity";
        ]
        ~regs:40 ~extra:8. ();
      kernel "calc_dt"
        [
          r "soundspeed" 2.; r "viscosity" 2.; r "xvel0" 2.; r "yvel0" 2.; r "volume" 1.;
          r "density0" 1.; w "work_array1";
        ]
        ~regs:32 ~extra:4. ();
      kernel "pdv"
        [
          rs "xvel0" Stencil.asym_west_south 3.; rs "yvel0" Stencil.asym_west_south 3.;
          r "volume" 1.; r "pressure" 2.; r "viscosity" 2.; r "density0" 1.; r "energy0" 1.;
          w "density1"; w "energy1";
        ]
        ~regs:38 ~extra:6. ();
      kernel "accelerate"
        [
          rs "density0" Stencil.asym_west_south 2.; rs "pressure" Stencil.asym_west_south 3.;
          rs "viscosity" Stencil.asym_west_south 3.; r "volume" 1.; r "xarea" 1.; r "yarea" 1.;
          rw "xvel0" Stencil.point 2.; rw "yvel0" Stencil.point 2.; w "xvel1"; w "yvel1";
        ]
        ~regs:42 ~extra:4. ();
      kernel "flux_calc_x" [ r "xvel1" 2.; r "xarea" 1.; w "vol_flux_x" ] ~regs:20 ();
      kernel "flux_calc_y" [ r "yvel1" 2.; r "yarea" 1.; w "vol_flux_y" ] ~regs:20 ();
      kernel "advec_cell_x"
        [
          rw "density1" Stencil.star5 4.; rw "energy1" Stencil.star5 4.;
          rs "vol_flux_x" Stencil.star5 3.; r "volume" 1.; w "mass_flux_x";
        ]
        ~regs:44 ~extra:6. ();
      kernel "advec_mom_x"
        [
          rs "mass_flux_x" Stencil.star5 3.; rw "xvel1" Stencil.star5 4.; r "density1" 2.;
          r "volume" 1.;
        ]
        ~regs:40 ~extra:4. ();
      kernel "advec_cell_y"
        [
          rw "density1" Stencil.star5 4.; rw "energy1" Stencil.star5 4.;
          rs "vol_flux_y" Stencil.star5 3.; r "volume" 1.; w "mass_flux_y";
        ]
        ~regs:44 ~extra:6. ();
      kernel "advec_mom_y"
        [
          rs "mass_flux_y" Stencil.star5 3.; rw "yvel1" Stencil.star5 4.; r "density1" 2.;
          r "volume" 1.;
        ]
        ~regs:40 ~extra:4. ();
      kernel "reset_field"
        [
          r "density1" 0.; r "energy1" 0.; r "xvel1" 0.; r "yvel1" 0.; w "density0"; w "energy0";
          w "xvel0"; w "yvel0";
        ]
        ~regs:18 ();
      kernel "update_halo"
        [ rw "density0" Stencil.point 1.; rw "energy0" Stencil.point 1.; rw "pressure" Stencil.point 1. ]
        ~regs:16 ~active:0.25 ();
      kernel "field_summary"
        [
          r "volume" 1.; r "density0" 2.; r "energy0" 2.; r "pressure" 2.; r "xvel0" 2.;
          r "yvel0" 2.; w "work_array1";
        ]
        ~regs:28 ~extra:2. ();
    ]
  in
  let kernels = List.mapi (fun id make -> make id) kernels in
  Program.create ~name:"cloverleaf" ~grid ~arrays ~kernels
