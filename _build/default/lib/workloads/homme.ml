open Kf_ir
module Rng = Kf_util.Rng

(* 4x26x101 elements/levels/columns maps onto a 416x104x26-site sweep with
   16x16 element-local blocks. *)
let default_grid = Grid.make ~nx:416 ~ny:104 ~nz:26 ~block_x:16 ~block_y:16

let core_array_names =
  [
    "v_u"; "v_v"; (* horizontal velocity *)
    "dp3d"; "T"; "phi"; (* pressure thickness, temperature, geopotential *)
    "grad_u"; "grad_v"; "div"; "vort"; (* derivatives *)
    "Dinv"; "metdet"; (* read-only element metrics *)
    "t_u"; "t_v"; "t_T"; (* tendencies *)
  ]

let core_id name =
  let rec go i = function
    | [] -> raise Not_found
    | n :: rest -> if n = name then i else go (i + 1) rest
  in
  go 0 core_array_names

(* Spectral-element derivative kernels: dense per-element work (high
   flops), modest 4-point thread loads from the derivative-matrix rows. *)
let core_kernels aid =
  let acc array mode pattern flops = { Access.array = aid array; mode; pattern; flops } in
  let r name f = acc name Access.Read Stencil.point f in
  let rs name p f = acc name Access.Read p f in
  let w name = acc name Access.Write Stencil.point 0. in
  let rw name f = acc name Access.ReadWrite Stencil.point f in
  let dmat = Suite.stencil_of_load 4 in
  let make i name accesses regs =
    Kernel.make ~id:i ~name ~accesses ~registers_per_thread:regs ~extra_flops_per_site:26. ()
  in
  [
    make 0 "grad_sphere_u" [ rs "v_u" dmat 8.; r "Dinv" 2.; w "grad_u" ] 40;
    make 1 "grad_sphere_v" [ rs "v_v" dmat 8.; r "Dinv" 2.; w "grad_v" ] 40;
    make 2 "divergence" [ rs "grad_u" dmat 6.; rs "grad_v" dmat 6.; r "metdet" 2.; w "div" ] 44;
    make 3 "vorticity" [ rs "grad_u" dmat 6.; rs "grad_v" dmat 6.; r "metdet" 2.; w "vort" ] 44;
    make 4 "pressure_grad" [ rs "dp3d" dmat 5.; rs "phi" dmat 5.; w "t_u"; w "t_v" ] 42;
    make 5 "coriolis" [ r "v_u" 3.; r "v_v" 3.; r "vort" 2.; rw "t_u" 2.; rw "t_v" 2. ] 36;
    make 6 "t_advection" [ rs "T" dmat 6.; r "v_u" 2.; r "v_v" 2.; w "t_T" ] 40;
    make 7 "omega_p" [ r "div" 3.; r "dp3d" 3.; rw "phi" 4. ] 32;
    make 8 "update_v" [ r "t_u" 1.; r "t_v" 1.; rw "v_u" 2.; rw "v_v" 2. ] 26;
    make 9 "update_T" [ r "t_T" 1.; rw "T" 2. ] 22;
    make 10 "update_dp3d" [ r "div" 2.; rw "dp3d" 2. ] 22;
    make 11 "hypervis" [ rs "v_u" dmat 7.; rs "v_v" dmat 7.; rs "T" dmat 7.; rw "t_u" 1.; rw "t_v" 1.; rw "t_T" 1. ] 52;
  ]

let extension_reuse = 0.12

let program ?(grid = default_grid) () =
  let n_total = 43 and m_total = 27 in
  let core_k = core_kernels core_id in
  let n_core = List.length core_k and m_core = List.length core_array_names in
  let rng = Rng.create 20140602 in
  let n_ext = n_total - n_core and m_ext = m_total - m_core in
  let ext_names = List.init m_ext (fun i -> Printf.sprintf "q%02d" i) in
  let arrays =
    List.mapi (fun id name -> Array_info.make ~id ~name ()) (core_array_names @ ext_names)
  in
  let state = List.map core_id [ "v_u"; "v_v"; "dp3d" ] in
  let acc array mode pattern flops = { Access.array; mode; pattern; flops } in
  let dmat = Suite.stencil_of_load 4 in
  let next_fresh = ref m_core in
  let touched = ref [] in
  (* Tracer advection: each tracer gets an advect + limiter pair reading
     the velocity state; extra coupling kernels re-read earlier tracers. *)
  let ext_kernels =
    List.init n_ext (fun j ->
        let k = n_core + j in
        let quota = ((j + 1) * m_ext / n_ext) - (j * m_ext / n_ext) in
        let introduced =
          List.filter_map
            (fun _ ->
              if !next_fresh < m_total then begin
                let a = !next_fresh in
                incr next_fresh;
                touched := a :: !touched;
                Some a
              end
              else None)
            (List.init quota (fun i -> i))
        in
        let write_target, first_reads =
          match introduced with [] -> (None, []) | wt :: rest -> (Some wt, rest)
        in
        let rereads =
          List.init 2 (fun _ ->
              if Rng.chance rng extension_reuse then begin
                match !touched with [] -> None | l -> Some (Rng.choose_list rng l)
              end
              else None)
          |> List.filter_map (fun x -> x)
        in
        let state_reads = if Rng.chance rng 0.3 then [ Rng.choose_list rng state ] else [] in
        let shared_reads =
          List.sort_uniq compare (rereads @ state_reads)
          |> List.filter (fun a -> Some a <> write_target)
        in
        let fresh_reads =
          List.filter (fun a -> Some a <> write_target && not (List.mem a shared_reads)) first_reads
        in
        let read_accs =
          List.map
            (fun a -> acc a Access.Read dmat (6. +. float_of_int (Rng.int rng 10)))
            shared_reads
          @ List.map
              (fun a -> acc a Access.Read Stencil.point (5. +. float_of_int (Rng.int rng 8)))
              fresh_reads
        in
        let reads = shared_reads @ fresh_reads in
        let write_accs =
          match write_target with
          | Some wt -> [ acc wt Access.Write Stencil.point 2. ]
          | None -> begin
              match List.filter (fun a -> a >= m_core && not (List.mem a reads)) !touched with
              | [] -> []
              | l -> [ acc (Rng.choose_list rng l) Access.Write Stencil.point 2. ]
            end
        in
        let accesses = read_accs @ write_accs in
        let accesses = if accesses = [] then [ acc 0 Access.Read Stencil.point 1. ] else accesses in
        Kernel.make ~id:k
          ~name:(Printf.sprintf "tracer_k%02d" k)
          ~accesses
          ~extra_flops_per_site:(18. +. float_of_int (Rng.int rng 14))
          ~registers_per_thread:(30 + Rng.int rng 20)
          ())
  in
  Program.create ~name:"homme" ~grid ~arrays ~kernels:(core_k @ ext_kernels)
