lib/workloads/genapp.ml: Access Array_info Float Grid Kernel Kf_graph Kf_ir Kf_util List Printf Program Stencil Suite
