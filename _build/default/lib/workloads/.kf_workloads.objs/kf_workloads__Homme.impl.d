lib/workloads/homme.ml: Access Array_info Grid Kernel Kf_ir Kf_util List Printf Program Stencil Suite
