lib/workloads/suite.mli: Kf_ir
