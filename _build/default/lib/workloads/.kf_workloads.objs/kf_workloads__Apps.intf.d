lib/workloads/apps.mli: Genapp Kf_ir
