lib/workloads/scale_les.mli: Kf_ir
