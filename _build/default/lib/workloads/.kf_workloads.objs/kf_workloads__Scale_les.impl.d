lib/workloads/scale_les.ml: Access Array_info Grid Kernel Kf_ir Kf_util List Printf Program Stencil
