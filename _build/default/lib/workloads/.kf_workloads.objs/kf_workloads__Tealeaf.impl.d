lib/workloads/tealeaf.ml: Access Array_info Grid Kernel Kf_ir List Printf Program Stencil
