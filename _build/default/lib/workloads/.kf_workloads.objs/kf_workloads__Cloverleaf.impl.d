lib/workloads/cloverleaf.ml: Access Array_info Grid Kernel Kf_ir List Program Stencil
