lib/workloads/apps.ml: Genapp
