lib/workloads/genapp.mli: Kf_ir
