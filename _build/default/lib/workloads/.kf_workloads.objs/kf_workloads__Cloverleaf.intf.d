lib/workloads/cloverleaf.mli: Kf_ir
