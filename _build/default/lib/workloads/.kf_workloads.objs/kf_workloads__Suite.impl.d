lib/workloads/suite.ml: Access Array Array_info Grid Kernel Kf_ir Kf_util List Printf Program Stencil
