lib/workloads/motivating.mli: Kf_ir
