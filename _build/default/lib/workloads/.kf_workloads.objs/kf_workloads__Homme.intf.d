lib/workloads/homme.mli: Kf_ir
