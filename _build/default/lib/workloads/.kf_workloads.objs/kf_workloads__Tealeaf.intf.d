lib/workloads/tealeaf.mli: Kf_ir
