lib/workloads/motivating.ml: Access Array_info Grid Kernel Kf_ir List Program Stencil
