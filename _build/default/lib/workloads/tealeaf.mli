(** TeaLeaf mini-app: implicit heat conduction solved with a conjugate-
    gradient iteration (the companion mini-app to CloverLeaf in the UK
    Mini-App Consortium suite the paper's test suite draws on).

    The structure is characteristic of implicit solvers and stresses the
    fusion machinery differently from the hydro codes: a short
    initialization phase, then a CG loop whose four kernels are invoked
    every iteration and chained by true dependencies (w = Ap,
    α = rr/(p·w), (u, r) updates, β and the new search direction) — lots
    of point-wise shared arrays (register reuse), one 5-point matvec
    stencil, and reduction-style kernels with low flop counts.

    [program ~cg_iterations] clones the CG loop body per iteration so
    fusion can work across iteration boundaries — the repeated-invocation
    treatment paper §II-C proposes (see also {!Kf_ir.Unroll} for the
    generic version). *)

val cg_step : ?grid:Kf_ir.Grid.t -> unit -> Kf_ir.Program.t
(** Initialization (4 kernels), one CG iteration (4 kernels), and the
    write-back/summary phase (2 kernels). *)

val program : ?grid:Kf_ir.Grid.t -> ?cg_iterations:int -> unit -> Kf_ir.Program.t
(** Full mini-app: init phase + [cg_iterations] (default 3) unrolled CG
    iterations + the solution write-back, 4 + 4·n + 2 kernels. *)
