open Kf_ir
module Rng = Kf_util.Rng

type config = {
  kernels : int;
  arrays : int;
  data_copies : int;
  sharing_set : int;
  thread_load : int;
  kinship : int;
  seed : int;
}

let default =
  { kernels = 30; arrays = 60; data_copies = 4; sharing_set = 4; thread_load = 8; kinship = 2; seed = 1 }

let sweep lo hi step =
  let rec go v acc = if v > hi then List.rev acc else go (v + step) (v :: acc) in
  go lo []

let table5_axis = function
  | `Kernels -> sweep 10 100 10
  | `Arrays -> sweep 20 200 20
  | `Copies -> sweep 2 10 2
  | `Sharing -> sweep 2 8 2
  | `Load -> sweep 4 12 4
  | `Kinship -> sweep 2 5 1

let stencil_of_load n =
  try Stencil.spiral n
  with Invalid_argument _ -> invalid_arg "Suite.stencil_of_load: load out of [1,25]"

let name_of c =
  Printf.sprintf "suite-k%d-a%d-c%d-s%d-l%d-kin%d" c.kernels c.arrays c.data_copies c.sharing_set
    c.thread_load c.kinship

let generate c =
  if c.kernels < 2 then invalid_arg "Suite.generate: at least two kernels";
  if c.arrays < 4 then invalid_arg "Suite.generate: at least four arrays";
  if c.sharing_set < 2 then invalid_arg "Suite.generate: sharing set below 2";
  if c.data_copies < 0 then invalid_arg "Suite.generate: negative data copies";
  let rng = Rng.create (c.seed + (1000003 * c.kernels) + (913 * c.arrays)) in
  let n = c.kernels and m = c.arrays in
  let grid = Grid.make ~nx:512 ~ny:256 ~nz:16 ~block_x:32 ~block_y:8 in
  (* Array pool layout: shared state arrays carry the sharing sets, flux
     arrays carry the expandable write generations, output arrays absorb
     the remaining writes. *)
  let dc = min c.data_copies (max 0 ((m / 4) - 1)) in
  let n_shared = max 2 (m * 3 / 5) in
  let n_out = m - n_shared - dc in
  let shared_base = 0 in
  let flux_base = n_shared in
  let out_base = n_shared + dc in
  let arrays = List.init m (fun i ->
      let name =
        if i < n_shared then Printf.sprintf "state%02d" i
        else if i < out_base then Printf.sprintf "flux%02d" (i - flux_base)
        else Printf.sprintf "out%02d" (i - out_base)
      in
      Array_info.make ~id:i ~name ())
  in
  (* Sharing sets: each shared array is read by a run of [sharing_set]
     kernels; run starts drift by [kinship], stretching kinship chains. *)
  let reads = Array.make n [] in
  for j = 0 to n_shared - 1 do
    let start = j * c.kinship mod n in
    for d = 0 to c.sharing_set - 1 do
      let k = (start + d) mod n in
      reads.(k) <- (shared_base + j) :: reads.(k)
    done
  done;
  (* Flux arrays: write -> read -> write -> read chains (the expandable
     pattern); generations spaced across the kernel sequence. *)
  let flux_writes = Array.make n [] in
  let flux_reads = Array.make n [] in
  for j = 0 to dc - 1 do
    let generations = 2 + Rng.int rng 2 in
    let spacing = max 2 (n / (2 * generations)) in
    let start = Rng.int rng (max 1 (n - (2 * generations * spacing))) in
    for g = 0 to generations - 1 do
      let wk = min (n - 2) (start + (2 * g * spacing)) in
      let rk = min (n - 1) (wk + spacing) in
      if rk > wk then begin
        flux_writes.(wk) <- (flux_base + j) :: flux_writes.(wk);
        flux_reads.(rk) <- (flux_base + j) :: flux_reads.(rk)
      end
    done
  done;
  let acc array mode pattern flops = { Access.array; mode; pattern; flops } in
  let main_stencil = stencil_of_load c.thread_load in
  let flux_stencil = stencil_of_load (max 1 (c.thread_load / 2)) in
  let kernels =
    List.init n (fun k ->
        (* The thread-load attribute applies to the field-like shared
           arrays (one in three of the pool); the rest are read as
           coefficient-style point inputs, as in the CloverLeaf kernels.
           Keying the choice on the array keeps every reader of a field
           consistent, so sharing-set growth grows staged reuse. *)
        let shared_reads =
          List.map
            (fun a ->
              let pattern = if a mod 3 = 0 then main_stencil else Stencil.point in
              acc a Access.Read pattern (1. +. float_of_int (Rng.int rng 4)))
            (List.sort_uniq compare reads.(k))
        in
        let f_reads =
          List.map
            (fun a -> acc a Access.Read flux_stencil (1. +. float_of_int (Rng.int rng 3)))
            (List.sort_uniq compare flux_reads.(k))
        in
        let f_writes =
          List.filter_map
            (fun a ->
              (* A kernel both reading and writing the same flux array in
                 one generation folds into a ReadWrite access; the split
                 construction avoids duplicates instead. *)
              if List.mem a flux_reads.(k) then None
              else Some (acc a Access.Write Stencil.point 0.))
            (List.sort_uniq compare flux_writes.(k))
        in
        let out_write =
          if n_out > 0 then [ acc (out_base + (k mod n_out)) Access.Write Stencil.point 1. ]
          else []
        in
        let accesses = shared_reads @ f_reads @ f_writes @ out_write in
        let accesses =
          if accesses = [] then [ acc (out_base + (k mod max 1 n_out)) Access.Write Stencil.point 1. ]
          else accesses
        in
        Kernel.make ~id:k
          ~name:(Printf.sprintf "k%02d" k)
          ~accesses
          ~extra_flops_per_site:(2. +. float_of_int (Rng.int rng 6))
          ~registers_per_thread:(24 + Rng.int rng 20)
          ~active_fraction:(if Rng.chance rng 0.1 then 0.75 else 1.0)
          ())
  in
  (* Arrays no kernel ended up touching (possible when n_out = 0 or sharing
     runs alias) are filtered out, re-indexing accesses. *)
  let touched = Array.make m false in
  List.iter
    (fun kern -> List.iter (fun (a : Access.t) -> touched.(a.Access.array) <- true) kern.Kernel.accesses)
    kernels;
  let remap = Array.make m (-1) in
  let next = ref 0 in
  Array.iteri
    (fun i t ->
      if t then begin
        remap.(i) <- !next;
        incr next
      end)
    touched;
  let arrays =
    List.filteri (fun i _ -> touched.(i)) arrays
    |> List.mapi (fun i (a : Array_info.t) -> Array_info.make ~id:i ~name:a.Array_info.name ())
  in
  let kernels =
    List.map
      (fun (kern : Kernel.t) ->
        Kernel.make ~id:kern.Kernel.id ~name:kern.Kernel.name
          ~accesses:
            (List.map
               (fun (a : Access.t) -> { a with Access.array = remap.(a.Access.array) })
               kern.Kernel.accesses)
          ~extra_flops_per_site:kern.Kernel.extra_flops_per_site
          ~registers_per_thread:kern.Kernel.registers_per_thread
          ~active_fraction:kern.Kernel.active_fraction ())
      kernels
  in
  Program.create ~name:(name_of c) ~grid ~arrays ~kernels
