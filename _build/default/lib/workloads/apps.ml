type entry = { spec : Genapp.spec; paper_reducible : float }

let entry name kernels arrays reducible ~seed ~expandable ~load ~flops =
  {
    spec =
      {
        Genapp.name;
        kernels;
        arrays;
        reducible_target = reducible;
        expandable;
        avg_thread_load = load;
        flops_scale = flops;
        seed;
      };
    paper_reducible = reducible;
  }

(* Table I of the paper. *)
let scale_les = entry "scale-les" 142 64 0.41 ~seed:11 ~expandable:6 ~load:5 ~flops:1.0
let wrf = entry "wrf" 122 46 0.24 ~seed:12 ~expandable:5 ~load:5 ~flops:1.0
let asuca = entry "asuca" 115 58 0.17 ~seed:13 ~expandable:4 ~load:5 ~flops:1.2
let mitgcm = entry "mitgcm" 94 31 0.22 ~seed:14 ~expandable:3 ~load:5 ~flops:1.0
let homme = entry "homme" 43 27 0.21 ~seed:15 ~expandable:2 ~load:4 ~flops:2.0
let cosmo = entry "cosmo" 35 24 0.38 ~seed:16 ~expandable:2 ~load:5 ~flops:1.0

let all = [ scale_les; wrf; asuca; mitgcm; homme; cosmo ]

let program e = Genapp.calibrated e.spec
