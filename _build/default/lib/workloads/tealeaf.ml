open Kf_ir

(* TeaLeaf's standard problem is a 2-D grid; 4000² in the reference decks,
   scaled down here to keep simulation cheap (the paper argues fusion
   effectiveness is size-invariant, §II-C). *)
let default_grid = Grid.make ~nx:1024 ~ny:512 ~nz:1 ~block_x:32 ~block_y:8

let array_names =
  [
    "density"; "energy"; "u"; (* temperature field *)
    "kx"; "ky"; (* conduction coefficients *)
    "p"; "r"; "w"; "z"; (* CG vectors *)
    "alpha_num"; "alpha_den"; "beta_num"; (* partial reductions *)
    "u0";
  ]

let id name =
  let rec go i = function
    | [] -> invalid_arg ("Tealeaf: unknown array " ^ name)
    | n :: rest -> if n = name then i else go (i + 1) rest
  in
  go 0 array_names

let acc name mode pattern flops = { Access.array = id name; mode; pattern; flops }
let r name f = acc name Access.Read Stencil.point f
let rs name p f = acc name Access.Read p f
let w name = acc name Access.Write Stencil.point 0.
let rw name f = acc name Access.ReadWrite Stencil.point f

(* Kernels are built as id-less closures and numbered by position. *)
let init_kernels =
  [
    (fun mk -> mk "tea_init_fields" [ r "density" 1.; r "energy" 1.; w "u"; w "u0" ] 22 2.);
    (fun mk ->
      mk "tea_init_coef" [ rs "density" Stencil.star5 4.; w "kx"; w "ky" ] 30 4.);
    (fun mk ->
      mk "cg_init_residual"
        [ rs "u" Stencil.star5 5.; r "kx" 2.; r "ky" 2.; r "u0" 1.; w "r"; w "p" ]
        36 4.);
    (fun mk -> mk "cg_init_rro" [ r "r" 2.; w "alpha_num" ] 20 1.);
  ]

let cg_kernels =
  [
    (* w = A p: the 5-point matvec, the only heavy stencil of the loop. *)
    (fun mk ->
      mk "cg_calc_w" [ rs "p" Stencil.star5 5.; r "kx" 2.; r "ky" 2.; w "w" ] 38 4.);
    (* alpha = rro / (p . w) *)
    (fun mk -> mk "cg_calc_pw" [ r "p" 1.; r "w" 1.; w "alpha_den" ] 22 2.);
    (* u += alpha p;  r -= alpha w;  rrn = r . r *)
    (fun mk ->
      mk "cg_calc_ur"
        [ r "p" 1.; r "w" 1.; r "alpha_num" 1.; r "alpha_den" 1.; rw "u" 2.; rw "r" 2.;
          w "beta_num" ]
        30 4.);
    (* p = r + beta p *)
    (fun mk ->
      mk "cg_calc_p" [ r "r" 1.; r "beta_num" 1.; r "alpha_num" 0.; rw "p" 2. ] 24 2.);
  ]

let final_kernels =
  [
    (fun mk -> mk "tea_solve_finish" [ r "u" 1.; rw "energy" 2.; r "density" 1. ] 20 2.);
    (fun mk -> mk "tea_field_summary" [ r "u" 2.; r "density" 1.; r "energy" 1.; w "z" ] 24 2.);
  ]

let build ~grid ~name closures =
  let arrays = List.mapi (fun i n -> Array_info.make ~id:i ~name:n ()) array_names in
  let kernels =
    List.mapi
      (fun i f ->
        f (fun kname accesses regs extra ->
            Kernel.make ~id:i ~name:kname ~accesses ~registers_per_thread:regs
              ~extra_flops_per_site:extra ()))
      closures
  in
  Program.create ~name ~grid ~arrays ~kernels

let cg_step ?(grid = default_grid) () =
  build ~grid ~name:"tealeaf-step" (init_kernels @ cg_kernels @ final_kernels)

let program ?(grid = default_grid) ?(cg_iterations = 3) () =
  if cg_iterations < 1 then invalid_arg "Tealeaf.program: need at least one CG iteration";
  (* The CG loop body repeats; clone its invocations (paper §II-C) by
     building one iteration as a program and unrolling it, then stitching
     the phases together manually so init and finish stay single. *)
  let arrays = List.mapi (fun i n -> Array_info.make ~id:i ~name:n ()) array_names in
  let mk i kname accesses regs extra =
    Kernel.make ~id:i ~name:kname ~accesses ~registers_per_thread:regs
      ~extra_flops_per_site:extra ()
  in
  let counter = ref (-1) in
  let instantiate suffix f =
    incr counter;
    f (fun kname accesses regs extra ->
        mk !counter (kname ^ suffix) accesses regs extra)
  in
  let init = List.map (instantiate "") init_kernels in
  let loop =
    List.concat
      (List.init cg_iterations (fun iter ->
           let suffix = if iter = 0 then "" else Printf.sprintf "@%d" (iter + 1) in
           List.map (instantiate suffix) cg_kernels))
  in
  let finish = List.map (instantiate "") final_kernels in
  Program.create
    ~name:(Printf.sprintf "tealeaf-cg%d" cg_iterations)
    ~grid ~arrays
    ~kernels:(init @ loop @ finish)
