(** CloverLeaf mini-app (paper §VI-B.1): the Lagrangian-Eulerian
    hydrodynamics kernels the test suite is synthesized from.

    [program] is a faithful IR transcription of one CloverLeaf timestep's
    GPU kernels — ideal gas EOS, viscosity, dt reduction, PdV, momentum
    acceleration, flux calculation, cell and momentum advection in both
    sweep directions, field reset, halo update and field summary — over
    the standard 962² cell problem. *)

val program : ?grid:Kf_ir.Grid.t -> unit -> Kf_ir.Program.t
(** Default grid: 960x960x1 (2-D hydro) with 32x8 blocks. *)

val kernel_names : string list
(** The 14 kernels, in invocation order. *)
