(** The weather-application zoo of paper Table I.

    Each entry reproduces the published static-analysis statistics —
    kernel count, array count and reducible GMEM traffic — through the
    calibrated synthetic generator.  SCALE-LES and HOMME additionally have
    dedicated structured models ({!Scale_les}, {!Homme}); the entries here
    are the uniform statistical versions used to regenerate Table I. *)

type entry = {
  spec : Genapp.spec;
  paper_reducible : float;  (** Table I "Reducible Global Memory Traffic" *)
}

val scale_les : entry
val wrf : entry
val asuca : entry
val mitgcm : entry
val homme : entry
val cosmo : entry

val all : entry list
(** In Table I row order. *)

val program : entry -> Kf_ir.Program.t * float
(** Calibrated program and its achieved reducible fraction. *)
