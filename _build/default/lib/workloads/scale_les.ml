open Kf_ir
module Rng = Kf_util.Rng

let default_grid = Grid.make ~nx:1280 ~ny:32 ~nz:32 ~block_x:32 ~block_y:8

let core_array_names =
  [
    "DENS"; "MOMZ"; "MOMX"; "MOMY"; "RHOT"; (* prognostics *)
    "QFLX"; (* expandable flux *)
    "DDIV"; "Sw"; "Su"; "Sv"; "St"; (* divergence and source terms *)
    "CZ"; "RCDZ"; (* read-only vertical metrics *)
    "t_DENS"; "t_MOMZ"; "t_MOMX"; "t_MOMY"; "t_RHOT"; (* tendencies *)
    "Pu"; "Pv"; "Pt"; (* pressure-gradient work arrays *)
  ]

let core_id name =
  let rec go i = function
    | [] -> raise Not_found
    | n :: rest -> if n = name then i else go (i + 1) rest
  in
  go 0 core_array_names

let qflx (p : Program.t) =
  let n = Program.num_arrays p in
  let rec go i =
    if i >= n then raise Not_found
    else if (Program.array p i).Array_info.name = "QFLX" then i
    else go (i + 1)
  in
  go 0

(* The 18 RK kernels of Fig. 1/2.  [aid] resolves names against the final
   array table, which for the core program is [core_array_names]. *)
let core_kernels aid =
  let acc name mode pattern flops = { Access.array = aid name; mode; pattern; flops } in
  let r name f = acc name Access.Read Stencil.point f in
  let rs name p f = acc name Access.Read p f in
  let w name = acc name Access.Write Stencil.point 0. in
  let rw name f = acc name Access.ReadWrite Stencil.point f in
  let v3 = Stencil.cross3_vertical in
  let s5 = Stencil.star5 in
  let make i name accesses regs =
    Kernel.make ~id:i ~name ~accesses ~registers_per_thread:regs ~extra_flops_per_site:3. ()
  in
  [
    make 0 "rk_ddiv" [ rs "MOMX" s5 2.; rs "MOMY" s5 2.; rs "MOMZ" v3 2.; r "RCDZ" 1.; w "DDIV" ] 36;
    make 1 "rk_src_w" [ r "DENS" 2.; r "MOMZ" 2.; r "CZ" 1.; w "Sw" ] 24;
    make 2 "rk_src_u" [ r "DENS" 2.; r "MOMX" 2.; w "Su" ] 22;
    make 3 "rk_src_v" [ r "DENS" 2.; r "MOMY" 2.; w "Sv" ] 22;
    make 4 "rk_src_t" [ r "DENS" 2.; r "RHOT" 2.; w "St" ] 22;
    make 5 "rk_numdiff_rho" [ rs "DENS" s5 4.; r "CZ" 1.; w "t_DENS" ] 32;
    make 6 "rk_flux_w" [ rs "MOMZ" s5 4.; r "Sw" 1.; r "DDIV" 2.; w "t_MOMZ" ] 36;
    make 7 "rk_qflx_x" [ rs "MOMX" s5 4.; r "Su" 1.; r "DDIV" 2.; w "QFLX" ] 36;
    make 8 "rk_pgrad_u" [ rs "RHOT" s5 3.; r "DENS" 1.; w "Pu" ] 30;
    make 9 "rk_tend_u" [ rs "QFLX" s5 4.; r "Pu" 1.; w "t_MOMX" ] 34;
    make 10 "rk_pgrad_v" [ rs "RHOT" s5 3.; r "DENS" 1.; w "Pv" ] 30;
    make 11 "rk_qflx_y" [ rs "MOMY" s5 4.; r "Sv" 1.; r "DDIV" 2.; w "QFLX" ] 36;
    make 12 "rk_numdiff_t" [ rs "RHOT" s5 3.; r "CZ" 1.; w "Pt" ] 30;
    make 13 "rk_tend_v" [ rs "QFLX" s5 4.; r "Pv" 1.; w "t_MOMY" ] 34;
    make 14 "rk_tend_t" [ rs "RHOT" s5 2.; r "St" 1.; r "Pt" 1.; w "t_RHOT" ] 32;
    make 15 "rk_update_rho" [ r "t_DENS" 1.; rw "DENS" 2. ] 20;
    make 16 "rk_update_mom"
      [ r "t_MOMZ" 1.; r "t_MOMX" 1.; r "t_MOMY" 1.; rw "MOMZ" 1.; rw "MOMX" 1.; rw "MOMY" 1. ]
      28;
    make 17 "rk_update_t" [ r "t_RHOT" 1.; r "DENS" 1.; rw "RHOT" 2. ] 22;
  ]

let rk_core ?(grid = default_grid) () =
  let arrays = List.mapi (fun id name -> Array_info.make ~id ~name ()) core_array_names in
  Program.create ~name:"scale-les-rk" ~grid ~arrays ~kernels:(core_kernels core_id)

(* Extension sections: each models a physics package of SCALE-LES — a run
   of kernels over the section's own arrays, coupled to the dynamics by
   reading prognostic variables.  The reuse probability is tuned so the
   full model's reducible-traffic fraction lands near the published 41%. *)
let extension_reuse = 0.34

let program ?(grid = default_grid) () =
  let n_total = 142 and m_total = 64 in
  let core_k = core_kernels core_id in
  let n_core = List.length core_k and m_core = List.length core_array_names in
  let rng = Rng.create 20140601 in
  let n_ext = n_total - n_core and m_ext = m_total - m_core in
  let ext_names = List.init m_ext (fun i -> Printf.sprintf "phy%02d" i) in
  let arrays =
    List.mapi (fun id name -> Array_info.make ~id ~name ()) (core_array_names @ ext_names)
  in
  let prognostics = List.map core_id [ "DENS"; "MOMZ"; "MOMX"; "MOMY"; "RHOT" ] in
  let acc array mode pattern flops = { Access.array; mode; pattern; flops } in
  let s5 = Stencil.star5 in
  let next_fresh = ref m_core in
  let touched = ref [] in
  let ext_kernels =
    List.init n_ext (fun j ->
        let k = n_core + j in
        let quota = ((j + 1) * m_ext / n_ext) - (j * m_ext / n_ext) in
        let introduced =
          List.filter_map
            (fun _ ->
              if !next_fresh < m_total then begin
                let a = !next_fresh in
                incr next_fresh;
                touched := a :: !touched;
                Some a
              end
              else None)
            (List.init quota (fun i -> i))
        in
        let write_target, first_reads =
          match introduced with [] -> (None, []) | wt :: rest -> (Some wt, rest)
        in
        let rereads =
          List.init (2 + Rng.int rng 3) (fun _ ->
              if Rng.chance rng extension_reuse then begin
                match !touched with [] -> None | l -> Some (Rng.choose_list rng l)
              end
              else None)
          |> List.filter_map (fun x -> x)
        in
        let prog_reads = if Rng.chance rng 0.3 then [ Rng.choose_list rng prognostics ] else [] in
        let shared_reads =
          List.sort_uniq compare (rereads @ prog_reads)
          |> List.filter (fun a -> Some a <> write_target)
        in
        let fresh_reads =
          List.filter (fun a -> Some a <> write_target && not (List.mem a shared_reads)) first_reads
        in
        (* Re-read (shared) arrays carry the stencil neighborhoods — the
           reuse the fusion exploits through SMEM; first-touch inputs are
           streamed point reads. *)
        let read_accs =
          List.map
            (fun a -> acc a Access.Read s5 (1. +. float_of_int (Rng.int rng 4)))
            shared_reads
          @ List.map
              (fun a -> acc a Access.Read Stencil.point (1. +. float_of_int (Rng.int rng 3)))
              fresh_reads
        in
        let reads = shared_reads @ fresh_reads in
        let write_accs =
          match write_target with
          | Some wt -> [ acc wt Access.Write Stencil.point 1. ]
          | None -> begin
              (* Recycle an extension array as a fresh writer generation
                 (expandable pattern). *)
              match List.filter (fun a -> a >= m_core && not (List.mem a reads)) !touched with
              | [] -> []
              | l -> [ acc (Rng.choose_list rng l) Access.Write Stencil.point 1. ]
            end
        in
        let accesses = read_accs @ write_accs in
        let accesses = if accesses = [] then [ acc 0 Access.Read Stencil.point 1. ] else accesses in
        Kernel.make ~id:k
          ~name:(Printf.sprintf "phy_k%03d" k)
          ~accesses
          ~extra_flops_per_site:(2. +. float_of_int (Rng.int rng 5))
          ~registers_per_thread:(24 + Rng.int rng 20)
          ())
  in
  Program.create ~name:"scale-les" ~grid ~arrays ~kernels:(core_k @ ext_kernels)
