type align = Left | Right | Center

type row = Cells of string list | Rule

type t = {
  title : string option;
  headers : string list;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title cols =
  {
    title;
    headers = List.map fst cols;
    aligns = Array.of_list (List.map snd cols);
    rows = [];
  }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" (List.length t.headers)
         (List.length cells));
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let left = fill / 2 in
        String.make left ' ' ^ s ^ String.make (fill - left) ' '
  end

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells = List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells in
  measure t.headers;
  List.iter (function Cells c -> measure c | Rule -> ()) rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad t.aligns.(i) widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  line t.headers;
  rule ();
  List.iter (function Cells c -> line c | Rule -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_pct v = Printf.sprintf "%.1f%%" (v *. 100.)
let cell_speedup v = Printf.sprintf "%.2fx" v
