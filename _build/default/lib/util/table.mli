(** ASCII table rendering for the benchmark harness.

    The paper's evaluation is a collection of tables and figure series; the
    harness prints each as an aligned text table so runs can be diffed. *)

type align = Left | Right | Center

type t

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument if the arity differs from the
    header. *)

val add_rule : t -> unit
(** Append a horizontal separator row. *)

val render : t -> string
(** Render with box-drawing rules and padded cells. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float for a cell ([decimals] defaults to 2). *)

val cell_pct : float -> string
(** Format a ratio as a percentage with one decimal, e.g. [0.413] ->
    ["41.3%"]. *)

val cell_speedup : float -> string
(** Format a speedup, e.g. [1.352] -> ["1.35x"]. *)
