lib/util/bitset.ml: Array Bytes Char Format Hashtbl List Printf Stdlib
