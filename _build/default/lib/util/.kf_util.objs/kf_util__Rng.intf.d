lib/util/rng.mli:
