lib/util/table.mli:
