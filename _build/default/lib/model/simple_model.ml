module Fused = Kf_fusion.Fused

let saved_bytes (i : Inputs.t) (f : Fused.t) =
  let member_bytes =
    List.fold_left (fun acc k -> acc +. i.Inputs.measured_bytes.(k)) 0. f.Fused.members
  in
  Float.max 0. (member_bytes -. Fused.gmem_bytes i.Inputs.program f)

let runtime (i : Inputs.t) (f : Fused.t) =
  let sum = Inputs.original_sum i f.Fused.members in
  let bw = Inputs.effective_bandwidth i f.Fused.members in
  if bw <= 0. then sum
  else begin
    let saved_time = saved_bytes i f /. bw in
    let floor_time = Fused.gmem_bytes i.Inputs.program f /. bw in
    Float.max (sum -. saved_time) floor_time
  end

let group_runtime (i : Inputs.t) group =
  match group with
  | [ k ] -> i.Inputs.measured_runtime.(k)
  | _ ->
      let f =
        Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group
      in
      runtime i f
