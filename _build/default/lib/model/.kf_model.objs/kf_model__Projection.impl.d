lib/model/projection.ml: Array Float Format Inputs Kf_fusion Kf_gpu Kf_ir List
