lib/model/simple_model.mli: Inputs Kf_fusion
