lib/model/mwp.ml: Array Float Inputs Kf_fusion Kf_gpu Kf_ir List
