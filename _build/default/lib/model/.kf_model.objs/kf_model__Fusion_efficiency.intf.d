lib/model/fusion_efficiency.mli: Format Inputs Kf_fusion
