lib/model/mwp.mli: Inputs Kf_fusion
