lib/model/simple_model.ml: Array Float Inputs Kf_fusion List
