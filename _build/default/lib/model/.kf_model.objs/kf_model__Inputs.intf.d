lib/model/inputs.mli: Kf_gpu Kf_graph Kf_ir
