lib/model/roofline.ml: Array Float Inputs Kf_fusion Kf_gpu
