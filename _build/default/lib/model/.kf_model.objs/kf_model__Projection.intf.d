lib/model/projection.mli: Format Inputs Kf_fusion
