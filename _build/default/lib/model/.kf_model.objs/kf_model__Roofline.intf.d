lib/model/roofline.mli: Inputs Kf_fusion
