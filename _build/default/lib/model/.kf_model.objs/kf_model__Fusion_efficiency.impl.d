lib/model/fusion_efficiency.ml: Array Format Inputs Kf_fusion List
