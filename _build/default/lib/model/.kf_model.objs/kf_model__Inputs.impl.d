lib/model/inputs.ml: Array Kf_gpu Kf_graph Kf_ir List
