type t = {
  device : Kf_gpu.Device.t;
  program : Kf_ir.Program.t;
  meta : Kf_ir.Metadata.t;
  exec : Kf_graph.Exec_order.t;
  measured_runtime : float array;
  measured_bytes : float array;
}

let make ~device ~meta ~exec ~measured_runtime =
  let program = Kf_ir.Metadata.program meta in
  let n = Kf_ir.Program.num_kernels program in
  if Array.length measured_runtime <> n then
    invalid_arg "Inputs.make: one measured runtime per kernel required";
  let measured_bytes = Array.init n (fun k -> Kf_graph.Traffic.kernel_bytes program k) in
  { device; program; meta; exec; measured_runtime; measured_bytes }

let original_sum t group =
  List.fold_left (fun acc k -> acc +. t.measured_runtime.(k)) 0. group

let effective_bandwidth t group =
  let bytes = List.fold_left (fun acc k -> acc +. t.measured_bytes.(k)) 0. group in
  let time = original_sum t group in
  if time <= 0. then 0. else bytes /. time
