module Device = Kf_gpu.Device
module Fused = Kf_fusion.Fused

let attainable_gflops (i : Inputs.t) f =
  let d = i.Inputs.device in
  let p = i.Inputs.program in
  let flops = Fused.total_flops p f in
  let bytes = Fused.gmem_bytes p f in
  let oi = if bytes > 0. then flops /. bytes else Float.infinity in
  Float.min d.Device.peak_gflops (oi *. d.Device.gmem_bandwidth_gbs)

let runtime i f =
  let flops = Fused.total_flops i.Inputs.program f in
  flops /. (attainable_gflops i f *. 1e9)

let group_runtime (i : Inputs.t) group =
  match group with
  | [ k ] -> i.Inputs.measured_runtime.(k)
  | _ ->
      let f =
        Fused.build ~device:i.Inputs.device ~meta:i.Inputs.meta ~exec:i.Inputs.exec ~group
      in
      runtime i f
