module Fused = Kf_fusion.Fused

type t = { memory_ratio : float; runtime_ratio : float; efficiency : float }

let compute (i : Inputs.t) (f : Fused.t) ~measured_fused_runtime =
  if measured_fused_runtime <= 0. then
    invalid_arg "Fusion_efficiency.compute: non-positive runtime";
  if Fused.is_singleton f then
    invalid_arg "Fusion_efficiency.compute: singleton has no fusion to rate";
  let member_bytes =
    List.fold_left (fun acc k -> acc +. i.Inputs.measured_bytes.(k)) 0. f.Fused.members
  in
  let memory_ratio = Fused.gmem_bytes i.Inputs.program f /. member_bytes in
  let runtime_ratio = measured_fused_runtime /. Inputs.original_sum i f.Fused.members in
  { memory_ratio; runtime_ratio; efficiency = memory_ratio /. runtime_ratio }

let pp ppf t =
  Format.fprintf ppf "FE=%.1f%% (mem %.2f / time %.2f)" (t.efficiency *. 100.) t.memory_ratio
    t.runtime_ratio
