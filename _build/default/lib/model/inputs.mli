(** Shared context for the performance models.

    All three models (Roofline, "simple", and the paper's upper-bound
    projection) project runtimes of *candidate* fused kernels from the
    metadata of the *original* kernels plus device characteristics and the
    original kernels' empirically measured runtimes — never from the code
    of the new kernel.  This record bundles exactly those inputs. *)

type t = {
  device : Kf_gpu.Device.t;
  program : Kf_ir.Program.t;
  meta : Kf_ir.Metadata.t;
  exec : Kf_graph.Exec_order.t;
  measured_runtime : float array;
      (** seconds per original kernel (P(K_i) of the paper's formulation),
          indexed by kernel id *)
  measured_bytes : float array;
      (** GMEM bytes per original kernel, same indexing *)
}

val make :
  device:Kf_gpu.Device.t ->
  meta:Kf_ir.Metadata.t ->
  exec:Kf_graph.Exec_order.t ->
  measured_runtime:float array ->
  t
(** [measured_bytes] is derived from the static traffic analysis.
    @raise Invalid_argument when [measured_runtime] length differs from the
    kernel count. *)

val original_sum : t -> int list -> float
(** The paper's F^Σ for a group: summed measured runtimes of its members. *)

val effective_bandwidth : t -> int list -> float
(** Bytes/second the members sustained together (Σbytes / Σtime) — the
    empirical basis of the "simple model". *)
