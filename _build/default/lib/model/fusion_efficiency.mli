(** Fusion Efficiency (paper §VI-F, Eqns. 11-12): how much of the GMEM
    traffic reduction a fusion actually converted into runtime reduction.

    [FE = (memory-ops ratio) / (runtime ratio)]; 1.0 means the runtime
    shrank exactly as much as the traffic, lower values mean overheads
    (SMEM latency, divergence, occupancy loss, barriers) ate part of the
    gain.  The paper reports 87-96% across its workloads. *)

type t = {
  memory_ratio : float;  (** Eq. 11: fused ops over summed original ops *)
  runtime_ratio : float;  (** measured T(F) over measured ΣT(K_i) *)
  efficiency : float;  (** Eq. 12 *)
}

val compute :
  Inputs.t -> Kf_fusion.Fused.t -> measured_fused_runtime:float -> t
(** Requires the fused kernel's measured (simulated) runtime.
    @raise Invalid_argument on a non-positive measured runtime or a
    singleton. *)

val pp : Format.formatter -> t -> unit
