lib/fusion/fused_program.ml: Array Format Fused Kf_graph Kf_ir List Plan
