lib/fusion/fused.ml: Array Format Hashtbl Kf_gpu Kf_graph Kf_ir List Printf String
