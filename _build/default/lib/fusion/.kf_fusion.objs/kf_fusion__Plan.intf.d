lib/fusion/plan.mli: Format Kf_gpu Kf_graph Kf_ir
