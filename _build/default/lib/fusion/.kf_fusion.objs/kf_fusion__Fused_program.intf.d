lib/fusion/fused_program.mli: Format Fused Kf_gpu Kf_graph Kf_ir Plan
