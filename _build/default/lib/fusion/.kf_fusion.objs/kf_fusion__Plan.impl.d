lib/fusion/plan.ml: Array Format Fused Kf_gpu Kf_graph Kf_ir List Printf Stdlib String
