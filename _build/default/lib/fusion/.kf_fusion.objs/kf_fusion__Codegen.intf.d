lib/fusion/codegen.mli: Fused Fused_program Kf_ir
