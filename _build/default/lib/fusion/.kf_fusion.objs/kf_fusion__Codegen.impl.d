lib/fusion/codegen.ml: Buffer Fused Fused_program Kf_ir List Printf String
