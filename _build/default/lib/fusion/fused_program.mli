(** A program after applying a fusion plan: the new host-side invocation
    sequence, mixing untouched original kernels (singleton groups) and new
    fused kernels. *)

type unit_ =
  | Original of int  (** singleton group: original kernel id, called as-is *)
  | Fused of Fused.t

type t = {
  program : Kf_ir.Program.t;  (** the original program *)
  plan : Plan.t;
  units : unit_ list;  (** in a dependency-respecting invocation order *)
}

val build :
  device:Kf_gpu.Device.t ->
  meta:Kf_ir.Metadata.t ->
  exec:Kf_graph.Exec_order.t ->
  Plan.t ->
  t
(** Applies the plan.  The unit order is a topological order of the
    condensed (per-group) dependency graph.
    @raise Invalid_argument when the plan's groups are not convex (the
    condensed graph would be cyclic). *)

val fused_kernels : t -> Fused.t list
(** Multi-member units only, in invocation order. *)

val unit_members : unit_ -> int list

val pp : Format.formatter -> t -> unit
