module Program = Kf_ir.Program
module Exec_order = Kf_graph.Exec_order
module Dag = Kf_graph.Dag

type unit_ = Original of int | Fused of Fused.t

type t = { program : Kf_ir.Program.t; plan : Plan.t; units : unit_ list }

let build ~device ~meta ~exec plan =
  let p = Kf_ir.Metadata.program meta in
  let groups = Array.of_list (Plan.groups plan) in
  let ngroups = Array.length groups in
  let group_of_kernel = Array.make (Plan.num_kernels plan) (-1) in
  Array.iteri (fun gi g -> List.iter (fun k -> group_of_kernel.(k) <- gi) g) groups;
  (* Condensed dependency graph over groups. *)
  let cond = Dag.create ngroups in
  let dag = Exec_order.dag exec in
  for u = 0 to Dag.num_nodes dag - 1 do
    List.iter
      (fun v ->
        let gu = group_of_kernel.(u) and gv = group_of_kernel.(v) in
        if gu <> gv then Dag.add_edge cond gu gv)
      (Dag.succs dag u)
  done;
  if not (Dag.is_acyclic cond) then
    invalid_arg "Fused_program.build: plan is not convex (condensed graph is cyclic)";
  let order = Dag.topo_sort cond in
  let units =
    List.map
      (fun gi ->
        match groups.(gi) with
        | [ k ] -> Original k
        | g -> Fused (Fused.build ~device ~meta ~exec ~group:g))
      order
  in
  { program = p; plan; units }

let fused_kernels t =
  List.filter_map (function Fused f when not (Fused.is_singleton f) -> Some f | _ -> None) t.units

let unit_members = function Original k -> [ k ] | Fused f -> f.Fused.members

let pp ppf t =
  Format.fprintf ppf "%s fused into %d units:@." t.program.Program.name (List.length t.units);
  List.iter
    (fun u ->
      match u with
      | Original k ->
          Format.fprintf ppf "  %s (original)@." (Program.kernel t.program k).Kf_ir.Kernel.name
      | Fused f -> Format.fprintf ppf "  %a@." Fused.pp f)
    t.units
