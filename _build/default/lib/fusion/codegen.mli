(** Pseudo-CUDA code generation for fused kernels.

    The paper applies the fusion transformation manually, guided by the
    search result (§V-A); Fig. 3 shows the shape of the generated code.
    This module renders that shape from the IR: SMEM declarations for the
    staged pivot arrays, the per-[k] load phase with specialized-warp halo
    loads, [__syncthreads()] barriers between segments with internal flow
    dependencies, and per-segment compute statements reading staged arrays
    from SMEM.  It exists so a fusion plan can be inspected the way the
    paper's authors inspected theirs — the simulator does not execute this
    text. *)

val kernel_signature : Kf_ir.Program.t -> Fused.t -> string
(** The [__global__] signature line with the union of member array
    parameters. *)

val emit_kernel : Kf_ir.Program.t -> Fused.t -> string
(** Full pseudo-CUDA body of one fused kernel. *)

val emit_host_sequence : Fused_program.t -> string
(** The host-side invocation sequence after fusion (paper Fig. 3 "After
    Fusion" left column). *)

val emit_program : Fused_program.t -> string
(** Host sequence followed by every fused kernel's body. *)
