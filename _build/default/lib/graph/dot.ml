module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Access = Kf_ir.Access
module Array_info = Kf_ir.Array_info

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let class_color = function
  | Datadep.Read_only -> "#e06666" (* red *)
  | Datadep.Read_write -> "#ffd966" (* yellow *)
  | Datadep.Expandable -> "#6fa8dc" (* blue *)
  | Datadep.Write_only -> "#93c47d" (* green *)

let data_dependency dd =
  let p = Datadep.program dd in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph data_dependency {\n";
  Buffer.add_string buf "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  for k = 0 to Program.num_kernels p - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  k%d [shape=circle, label=\"%s\"];\n" k
         (escape (Program.kernel p k).Kernel.name))
  done;
  for a = 0 to Program.num_arrays p - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  a%d [shape=diamond, style=filled, fillcolor=\"%s\", label=\"%s\"];\n" a
         (class_color (Datadep.array_class dd a))
         (escape (Program.array p a).Array_info.name))
  done;
  (* Edge direction encodes intent, as in the paper's Fig. 1: array ->
     kernel for reads, kernel -> array for writes. *)
  for k = 0 to Program.num_kernels p - 1 do
    List.iter
      (fun (acc : Access.t) ->
        if Access.reads acc then
          Buffer.add_string buf (Printf.sprintf "  a%d -> k%d;\n" acc.Access.array k);
        if Access.writes acc then
          Buffer.add_string buf (Printf.sprintf "  k%d -> a%d;\n" k acc.Access.array))
      (Program.kernel p k).Kernel.accesses
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let kernel_nodes buf p =
  for k = 0 to Program.num_kernels p - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  k%d [shape=circle, label=\"%s\"];\n" k
         (escape (Program.kernel p k).Kernel.name))
  done

let precedence_edges buf exec =
  let dag = Exec_order.dag exec in
  for u = 0 to Dag.num_nodes dag - 1 do
    List.iter (fun v -> Buffer.add_string buf (Printf.sprintf "  k%d -> k%d;\n" u v)) (Dag.succs dag u)
  done

let order_of_execution exec =
  let p = Datadep.program (Exec_order.datadep exec) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph order_of_execution {\n";
  Buffer.add_string buf "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  kernel_nodes buf p;
  precedence_edges buf exec;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let order_of_execution_with_groups exec groups =
  let p = Datadep.program (Exec_order.datadep exec) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph fusion_plan {\n";
  Buffer.add_string buf "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  let cluster = ref 0 in
  List.iter
    (fun g ->
      match g with
      | [ k ] ->
          Buffer.add_string buf
            (Printf.sprintf "  k%d [shape=circle, label=\"%s\"];\n" k
               (escape (Program.kernel p k).Kernel.name))
      | members ->
          incr cluster;
          Buffer.add_string buf (Printf.sprintf "  subgraph cluster_%d {\n" !cluster);
          Buffer.add_string buf "    style=dashed;\n";
          Buffer.add_string buf (Printf.sprintf "    label=\"K_%d\";\n" !cluster);
          List.iter
            (fun k ->
              Buffer.add_string buf
                (Printf.sprintf "    k%d [shape=circle, label=\"%s\"];\n" k
                   (escape (Program.kernel p k).Kernel.name)))
            members;
          Buffer.add_string buf "  }\n")
    groups;
  precedence_edges buf exec;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
