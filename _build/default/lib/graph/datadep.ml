module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Access = Kf_ir.Access
module Array_info = Kf_ir.Array_info

type array_class = Read_only | Write_only | Read_write | Expandable

type dep_kind = Flow | Anti | Output

type edge = { src : int; dst : int; array : int; kind : dep_kind; same_generation : bool }

type t = {
  program : Program.t;
  classes : array_class array;
  edges : edge list;
  gens : int array;
}

(* Per-array scan state while walking kernels in invocation order. *)
type scan = {
  mutable last_writer : int option;
  mutable readers_since_write : int list;
  mutable read_since_write : bool;
  mutable writers : int;
  mutable readers : int;
  mutable generations : int;
}

let build (p : Program.t) =
  let na = Program.num_arrays p in
  let state =
    Array.init na (fun _ ->
        {
          last_writer = None;
          readers_since_write = [];
          read_since_write = false;
          writers = 0;
          readers = 0;
          generations = 0;
        })
  in
  let edges = ref [] in
  let emit ?(same_generation = false) src dst array kind =
    if src <> dst then edges := { src; dst; array; kind; same_generation } :: !edges
  in
  for k = 0 to Program.num_kernels p - 1 do
    let kern = Program.kernel p k in
    List.iter
      (fun (a : Access.t) ->
        let s = state.(a.array) in
        (* Reads happen before writes within a kernel (loads feed the
           computation whose result is stored). *)
        if Access.reads a then begin
          (match s.last_writer with Some w -> emit w k a.array Flow | None -> ());
          s.readers <- s.readers + 1;
          s.read_since_write <- true;
          s.readers_since_write <- k :: s.readers_since_write
        end;
        if Access.writes a then begin
          let starts_new_generation = s.writers = 0 || s.read_since_write in
          List.iter (fun r -> emit r k a.array Anti) s.readers_since_write;
          (match s.last_writer with
          | Some w -> emit ~same_generation:(not starts_new_generation) w k a.array Output
          | None -> ());
          (* A fresh writer generation starts when the previous one has
             already been consumed by a reader — the QFLX pattern. *)
          if starts_new_generation then s.generations <- s.generations + 1;
          s.writers <- s.writers + 1;
          s.last_writer <- Some k;
          s.readers_since_write <- [];
          s.read_since_write <- false
        end)
      kern.accesses
  done;
  let classes =
    Array.map
      (fun s ->
        if s.writers = 0 then Read_only
        else if s.readers = 0 then Write_only
        else if s.generations > 1 then Expandable
        else Read_write)
      state
  in
  let gens = Array.map (fun s -> s.generations) state in
  { program = p; classes; edges = List.rev !edges; gens }

let program t = t.program

let array_class t a =
  if a < 0 || a >= Array.length t.classes then invalid_arg "Datadep.array_class: bad array id";
  t.classes.(a)

let classes t = Array.copy t.classes

let edges t = t.edges

let flow_edges t = List.filter (fun e -> e.kind = Flow) t.edges

let generations t a =
  if a < 0 || a >= Array.length t.gens then invalid_arg "Datadep.generations: bad array id";
  t.gens.(a)

let redundant_copy_bytes t grid =
  let total = ref 0 in
  Array.iteri
    (fun a cls ->
      if cls = Expandable then begin
        let info = Program.array t.program a in
        total := !total + ((t.gens.(a) - 1) * Array_info.bytes info grid)
      end)
    t.classes;
  !total

let class_to_string = function
  | Read_only -> "read-only"
  | Write_only -> "write-only"
  | Read_write -> "read-write"
  | Expandable -> "expandable"

let pp ppf t =
  Format.fprintf ppf "datadep(%s): %d edges@." t.program.name (List.length t.edges);
  Array.iteri
    (fun a cls ->
      Format.fprintf ppf "  %s: %s (%d gens)@."
        (Program.array t.program a).name (class_to_string cls) t.gens.(a))
    t.classes
