module Bitset = Kf_util.Bitset

type t = {
  n : int;
  succ : (int, unit) Hashtbl.t array;
  pred : (int, unit) Hashtbl.t array;
  mutable edge_count : int;
  mutable reach : Bitset.t array option; (* reach.(u) = descendants of u incl. u *)
  mutable coreach : Bitset.t array option; (* coreach.(v) = ancestors of v incl. v *)
}

let create n =
  if n < 0 then invalid_arg "Dag.create: negative size";
  {
    n;
    succ = Array.init n (fun _ -> Hashtbl.create 4);
    pred = Array.init n (fun _ -> Hashtbl.create 4);
    edge_count = 0;
    reach = None;
    coreach = None;
  }

let num_nodes t = t.n

let check t v =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Dag: node %d out of [0,%d)" v t.n)

let has_edge t u v =
  check t u;
  check t v;
  Hashtbl.mem t.succ.(u) v

let add_edge t u v =
  check t u;
  check t v;
  if u = v then invalid_arg "Dag.add_edge: self-loop";
  if not (Hashtbl.mem t.succ.(u) v) then begin
    Hashtbl.replace t.succ.(u) v ();
    Hashtbl.replace t.pred.(v) u ();
    t.edge_count <- t.edge_count + 1;
    t.reach <- None;
    t.coreach <- None
  end

let sorted_keys h = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) h [])

let succs t u =
  check t u;
  sorted_keys t.succ.(u)

let preds t v =
  check t v;
  sorted_keys t.pred.(v)

let num_edges t = t.edge_count

let topo_order_opt t =
  let indeg = Array.init t.n (fun v -> Hashtbl.length t.pred.(v)) in
  (* A min-heap would be overkill: a sorted ready list keeps the order
     stable by node index, and graphs here have a few hundred nodes. *)
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  Array.iteri (fun v d -> if d = 0 then ready := IS.add v !ready) indeg;
  let out = ref [] in
  let count = ref 0 in
  while not (IS.is_empty !ready) do
    let v = IS.min_elt !ready in
    ready := IS.remove v !ready;
    out := v :: !out;
    incr count;
    Hashtbl.iter
      (fun w () ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then ready := IS.add w !ready)
      t.succ.(v)
  done;
  if !count = t.n then Some (List.rev !out) else None

let is_acyclic t = topo_order_opt t <> None

let topo_sort t =
  match topo_order_opt t with
  | Some order -> order
  | None -> invalid_arg "Dag.topo_sort: graph has a cycle"

let compute_reach t neighbors order =
  (* Each node's set is the union of its neighbors' sets, so neighbors must
     be processed first: reverse topological order for descendants, forward
     for ancestors — O(V * V/64 * E) with bitsets. *)
  let sets = Array.init t.n (fun v -> Bitset.singleton t.n v) in
  List.iter
    (fun v -> Hashtbl.iter (fun w () -> Bitset.union_into sets.(v) sets.(w)) (neighbors v))
    order;
  sets

let topo_or_fail t =
  match topo_order_opt t with
  | Some o -> o
  | None -> invalid_arg "Dag: reachability requires an acyclic graph"

let reach_sets t =
  match t.reach with
  | Some r -> r
  | None ->
      let r = compute_reach t (fun v -> t.succ.(v)) (List.rev (topo_or_fail t)) in
      t.reach <- Some r;
      r

let coreach_sets t =
  match t.coreach with
  | Some r -> r
  | None ->
      let r = compute_reach t (fun v -> t.pred.(v)) (topo_or_fail t) in
      t.coreach <- Some r;
      r

let reaches t u v =
  check t u;
  check t v;
  Bitset.mem (reach_sets t).(u) v

let descendants t u =
  check t u;
  Bitset.copy (reach_sets t).(u)

let ancestors t v =
  check t v;
  Bitset.copy (coreach_sets t).(v)

let on_some_path t a b =
  check t a;
  check t b;
  if not (reaches t a b) then []
  else begin
    let from_a = (reach_sets t).(a) and to_b = (coreach_sets t).(b) in
    Bitset.to_list (Bitset.inter from_a to_b)
  end

let path_closure t s =
  (* v lies on a path between two members iff v is reachable from some
     member and some member is reachable from v, so the closure step is
     (⋃ reach) ∩ (⋃ coreach); iterate to fixpoint (new members can extend
     both unions).  Bitset unions make each step near-linear. *)
  let reach = reach_sets t and coreach = coreach_sets t in
  let closure = ref (Bitset.copy s) in
  let continue_ = ref true in
  while !continue_ do
    let forward = Bitset.create t.n and backward = Bitset.create t.n in
    Bitset.iter
      (fun v ->
        Bitset.union_into forward reach.(v);
        Bitset.union_into backward coreach.(v))
      !closure;
    let next = Bitset.inter forward backward in
    Bitset.union_into next !closure;
    if Bitset.equal next !closure then continue_ := false else closure := next
  done;
  !closure

let transpose t =
  let g = create t.n in
  for u = 0 to t.n - 1 do
    Hashtbl.iter (fun v () -> add_edge g v u) t.succ.(u)
  done;
  g

let of_edges n edges =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let pp ppf t =
  Format.fprintf ppf "dag(%d nodes, %d edges)" t.n t.edge_count;
  for u = 0 to t.n - 1 do
    match succs t u with
    | [] -> ()
    | ss ->
        Format.fprintf ppf "@.  %d -> %a" u
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
             Format.pp_print_int)
          ss
  done
