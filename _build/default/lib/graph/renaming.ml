module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Access = Kf_ir.Access
module Array_info = Kf_ir.Array_info

let is_identity dd =
  let p = Datadep.program dd in
  let rec go a = a >= Program.num_arrays p || (Datadep.array_class dd a <> Datadep.Expandable && go (a + 1)) in
  go 0

let materialize dd =
  let p = Datadep.program dd in
  let na = Program.num_arrays p in
  (* Replay the generation scan (same discipline as Datadep.build: within a
     kernel, reads happen before writes) recording, per kernel access, the
     generation it touches. *)
  let current_gen = Array.make na 0 in
  let read_since_write = Array.make na false in
  let written = Array.make na false in
  (* (kernel, array) -> generation touched; split read/write sides. *)
  let read_gen : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let write_gen : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  for k = 0 to Program.num_kernels p - 1 do
    List.iter
      (fun (a : Access.t) ->
        let aid = a.Access.array in
        if Access.reads a then begin
          Hashtbl.replace read_gen (k, aid) current_gen.(aid);
          read_since_write.(aid) <- true
        end;
        if Access.writes a then begin
          if (not written.(aid)) || read_since_write.(aid) then
            current_gen.(aid) <- current_gen.(aid) + 1;
          written.(aid) <- true;
          read_since_write.(aid) <- false;
          Hashtbl.replace write_gen (k, aid) current_gen.(aid)
        end)
      (Program.kernel p k).Kernel.accesses
  done;
  let total_gens = Array.copy current_gen in
  (* Allocate copies: for an expandable array with G generations, the last
     generation keeps the original id (so the program's final state lands
     in the original array) and every other referenced generation —
     including generation 0, the initial contents read before any write,
     whose anti edge to the writers is exactly what the relaxation drops —
     gets a fresh id. *)
  let gen0_read = Array.make na false in
  Hashtbl.iter (fun (_, aid) g -> if g = 0 then gen0_read.(aid) <- true) read_gen;
  let next_id = ref na in
  let copy_id : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let extra_arrays = ref [] in
  for a = 0 to na - 1 do
    if Datadep.array_class dd a = Datadep.Expandable then begin
      let gens =
        (if gen0_read.(a) then [ 0 ] else []) @ List.init (total_gens.(a) - 1) (fun g -> g + 1)
      in
      List.iter
        (fun g ->
          let info = Program.array p a in
          let id = !next_id in
          incr next_id;
          Hashtbl.replace copy_id (a, g) id;
          extra_arrays :=
            Array_info.make ~id
              ~name:(Printf.sprintf "%s@gen%d" info.Array_info.name g)
              ~elem_bytes:info.Array_info.elem_bytes ~extent:info.Array_info.extent ()
            :: !extra_arrays)
        gens
    end
  done;
  let resolve a g =
    if Datadep.array_class dd a <> Datadep.Expandable then a
    else if g = total_gens.(a) then a
    else Hashtbl.find copy_id (a, g)
  in
  let kernels =
    List.init (Program.num_kernels p) (fun k ->
        let kern = Program.kernel p k in
        let accesses =
          List.concat_map
            (fun (a : Access.t) ->
              let aid = a.Access.array in
              if Datadep.array_class dd aid <> Datadep.Expandable then [ a ]
              else begin
                let rg = Hashtbl.find_opt read_gen (k, aid) in
                let wg = Hashtbl.find_opt write_gen (k, aid) in
                match (a.Access.mode, rg, wg) with
                | Access.Read, Some g, _ -> [ { a with Access.array = resolve aid g } ]
                | Access.Write, _, Some g -> [ { a with Access.array = resolve aid g } ]
                | Access.ReadWrite, Some rg, Some wg when resolve aid rg = resolve aid wg ->
                    [ { a with Access.array = resolve aid rg } ]
                | Access.ReadWrite, Some rg, Some wg ->
                    (* A cross-generation update (u += …): split into a
                       read of the consumed copy and a write of the fresh
                       one — the ping-pong buffering the transformation
                       implies. *)
                    [
                      { a with Access.mode = Access.Read; array = resolve aid rg };
                      {
                        Access.mode = Access.Write;
                        array = resolve aid wg;
                        pattern = Kf_ir.Stencil.point;
                        flops = 0.;
                      };
                    ]
                | _ -> [ a ]
              end)
            kern.Kernel.accesses
        in
        Kernel.make ~id:k ~name:kern.Kernel.name ~accesses
          ~extra_flops_per_site:kern.Kernel.extra_flops_per_site
          ~registers_per_thread:kern.Kernel.registers_per_thread
          ~addr_registers:kern.Kernel.addr_registers ~active_fraction:kern.Kernel.active_fraction
          ())
  in
  let arrays = Array.to_list p.Program.arrays @ List.rev !extra_arrays in
  let renamed =
    Program.create ~name:(p.Program.name ^ "+renamed") ~grid:p.Program.grid ~arrays ~kernels
  in
  let orig_of = Array.init (Program.num_arrays renamed) (fun i -> i) in
  Hashtbl.iter (fun (a, _) id -> orig_of.(id) <- a) copy_id;
  (renamed, orig_of)
