module Bitset = Kf_util.Bitset
module Program = Kf_ir.Program

type t = {
  dag : Dag.t;
  datadep : Datadep.t;
  relaxed : bool;
  extra_memory : int;
  topo_rank : int array;
  syncs : int list; (* sorted kernel ids after which the host synchronizes *)
}

let build ?(relax_expandable = true) ?(extra_edges = []) ?(sync_points = []) dd =
  let p = Datadep.program dd in
  let n = Program.num_kernels p in
  let g = Dag.create n in
  List.iter
    (fun (e : Datadep.edge) ->
      let keep =
        match e.kind with
        | Datadep.Flow -> true
        | Datadep.Anti | Datadep.Output ->
            (* Renaming writer generations of an expandable array removes
               its cross-generation anti/output precedences; other arrays
               (and same-generation write-write ordering) keep them. *)
            (not (relax_expandable && Datadep.array_class dd e.array = Datadep.Expandable))
            || e.same_generation
      in
      if keep then Dag.add_edge g e.src e.dst)
    (Datadep.edges dd);
  List.iter (fun (u, v) -> Dag.add_edge g u v) extra_edges;
  (* A host sync after kernel s orders everything before it ahead of
     everything after it. *)
  let syncs = List.sort_uniq compare sync_points in
  List.iter
    (fun s ->
      if s < 0 || s >= n - 1 then
        invalid_arg (Printf.sprintf "Exec_order.build: sync point %d out of [0,%d)" s (n - 1));
      for u = 0 to s do
        for v = s + 1 to n - 1 do
          Dag.add_edge g u v
        done
      done)
    syncs;
  if not (Dag.is_acyclic g) then
    invalid_arg "Exec_order.build: extra edges introduced a cycle";
  let topo_rank = Array.make n 0 in
  List.iteri (fun rank v -> topo_rank.(v) <- rank) (Dag.topo_sort g);
  let extra_memory =
    if relax_expandable then Datadep.redundant_copy_bytes dd p.grid else 0
  in
  { dag = g; datadep = dd; relaxed = relax_expandable; extra_memory; topo_rank; syncs }

let dag t = t.dag
let datadep t = t.datadep
let relaxed t = t.relaxed
let extra_memory_bytes t = t.extra_memory

let sync_points t = t.syncs

let group_spans_sync t group =
  List.exists
    (fun s -> List.exists (fun k -> k <= s) group && List.exists (fun k -> k > s) group)
    t.syncs

let must_precede t a b = a <> b && Dag.reaches t.dag a b

let independent t a b = not (must_precede t a b) && not (must_precede t b a)

let group_order t group =
  List.sort
    (fun a b ->
      let c = compare t.topo_rank.(a) t.topo_rank.(b) in
      if c <> 0 then c else compare a b)
    group

let group_is_convex t group =
  let members = List.sort_uniq compare group in
  let n = Dag.num_nodes t.dag in
  let set = Bitset.of_list n members in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          a = b
          || (not (Dag.reaches t.dag a b))
          || List.for_all (fun v -> Bitset.mem set v) (Dag.on_some_path t.dag a b))
        members)
    members

let convexify t group =
  let n = Dag.num_nodes t.dag in
  let set = Bitset.of_list n (List.sort_uniq compare group) in
  Bitset.to_list (Dag.path_closure t.dag set)

let fusion_barrier_needed t group =
  let members = List.sort_uniq compare group in
  let set = Bitset.of_list (Dag.num_nodes t.dag) members in
  List.exists
    (fun (e : Datadep.edge) ->
      e.kind = Datadep.Flow && e.src <> e.dst && Bitset.mem set e.src && Bitset.mem set e.dst)
    (Datadep.edges t.datadep)

let pp ppf t =
  Format.fprintf ppf "exec-order(%s, %s): %a"
    (Datadep.program t.datadep).Program.name
    (if t.relaxed then "relaxed" else "strict")
    Dag.pp t.dag
