module Program = Kf_ir.Program
module Kernel = Kf_ir.Kernel
module Access = Kf_ir.Access
module Array_info = Kf_ir.Array_info
module Stencil = Kf_ir.Stencil
module Grid = Kf_ir.Grid

type report = {
  total_bytes : float;
  reducible_bytes : float;
  reducible_fraction : float;
  per_array : (int * float) list;
}

let array_bytes p a = float_of_int (Array_info.bytes (Program.array p a) p.Program.grid)

let boundary_refetch_bytes (p : Program.t) (a : Access.t) =
  (* Staged arrays still fetch their block-boundary neighborhood straight
     from GMEM (paper Fig. 3, Kernel Y): one halo ring per block per
     vertical plane. *)
  let r = Stencil.radius a.pattern in
  if r = 0 then 0.
  else begin
    let info = Program.array p a.array in
    let planes =
      match info.extent with Array_info.Field3d -> p.grid.nz | Array_info.Plane2d -> 1
    in
    float_of_int
      (Grid.blocks p.grid * Grid.halo_sites_per_plane p.grid r * planes * info.elem_bytes)
  end

let kernel_bytes (p : Program.t) k =
  let kern = Program.kernel p k in
  List.fold_left
    (fun acc (a : Access.t) ->
      let footprint = array_bytes p a.array in
      let read_part =
        if Access.reads a then footprint +. boundary_refetch_bytes p a else 0.
      in
      let write_part = if Access.writes a then footprint else 0. in
      acc +. read_part +. write_part)
    0. kern.accesses

let analyze exec =
  let dd = Exec_order.datadep exec in
  let p = Datadep.program dd in
  let nk = Program.num_kernels p and na = Program.num_arrays p in
  let total = ref 0. in
  for k = 0 to nk - 1 do
    total := !total +. kernel_bytes p k
  done;
  (* Every read of an array that some earlier kernel already touched could
     be served on-chip under maximal fusion; the first touch always pays
     the GMEM fetch (or store).  Per the paper's Table I assumption, only
     accesses with more than one thread per element (SMEM-staged reuse)
     are counted — single-point re-reads are excluded from the bound. *)
  let touched = Array.make na false in
  let reducible = Array.make na 0. in
  for k = 0 to nk - 1 do
    let kern = Program.kernel p k in
    List.iter
      (fun (a : Access.t) ->
        if
          Access.reads a && touched.(a.array)
          && Kf_ir.Stencil.num_points a.pattern > 1
        then reducible.(a.array) <- reducible.(a.array) +. array_bytes p a.array;
        touched.(a.array) <- true)
      kern.accesses
  done;
  let reducible_bytes = Array.fold_left ( +. ) 0. reducible in
  let per_array =
    Array.to_list (Array.mapi (fun i b -> (i, b)) reducible)
    |> List.filter (fun (_, b) -> b > 0.)
    |> List.sort (fun (_, x) (_, y) -> compare y x)
  in
  {
    total_bytes = !total;
    reducible_bytes;
    reducible_fraction = (if !total > 0. then reducible_bytes /. !total else 0.);
    per_array;
  }

let pp_report ppf r =
  Format.fprintf ppf "traffic: total %.1f MB, reducible %.1f MB (%.1f%%)"
    (r.total_bytes /. 1048576.) (r.reducible_bytes /. 1048576.) (r.reducible_fraction *. 100.)
