lib/graph/datadep.ml: Array Format Kf_ir List
