lib/graph/renaming.ml: Array Datadep Hashtbl Kf_ir List Printf
