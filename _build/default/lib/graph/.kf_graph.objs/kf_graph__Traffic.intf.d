lib/graph/traffic.mli: Exec_order Format Kf_ir
