lib/graph/datadep.mli: Format Kf_ir
