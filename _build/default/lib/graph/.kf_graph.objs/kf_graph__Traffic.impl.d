lib/graph/traffic.ml: Array Datadep Exec_order Format Kf_ir List
