lib/graph/exec_order.ml: Array Dag Datadep Format Kf_ir Kf_util List Printf
