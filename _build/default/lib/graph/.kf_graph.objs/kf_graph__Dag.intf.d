lib/graph/dag.mli: Format Kf_util
