lib/graph/exec_order.mli: Dag Datadep Format
