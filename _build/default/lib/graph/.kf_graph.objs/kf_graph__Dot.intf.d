lib/graph/dot.mli: Datadep Exec_order
