lib/graph/renaming.mli: Datadep Kf_ir
