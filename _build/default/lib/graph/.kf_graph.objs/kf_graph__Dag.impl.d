lib/graph/dag.ml: Array Format Hashtbl Int Kf_util List Printf Set
