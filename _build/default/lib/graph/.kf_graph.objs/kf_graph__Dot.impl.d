lib/graph/dot.ml: Buffer Dag Datadep Exec_order Kf_ir List Printf String
