(** Order-of-execution graph (paper §II-B.2, Fig. 2).

    A DAG over kernels whose edges are the precedences a fusion must not
    violate.  Built from the data-dependency graph, optionally after
    relaxing expandable read-write arrays (renaming writer generations into
    redundant copies removes their anti and output dependencies).  Host
    transfers and stream boundaries between invocations are modeled as
    extra precedence edges. *)

type t

val build :
  ?relax_expandable:bool ->
  ?extra_edges:(int * int) list ->
  ?sync_points:int list ->
  Datadep.t ->
  t
(** [relax_expandable] defaults to [true] (the paper's setting).
    [extra_edges] adds explicit precedences (e.g. stream ordering).
    [sync_points] lists kernel ids after which the host synchronizes
    (a PCIe transfer, an MPI halo exchange): kernels on opposite sides of
    a sync point can never belong to one fused kernel, and every kernel
    before the point precedes every kernel after it (paper §II-C).
    @raise Invalid_argument if the result is cyclic (impossible from pure
    data dependencies over an invocation order, but extra edges could do
    it) or if a sync point is out of range. *)

val dag : t -> Dag.t
val datadep : t -> Datadep.t
val relaxed : t -> bool

val extra_memory_bytes : t -> int
(** Redundant-copy cost of the relaxation (0 when not relaxed). *)

val must_precede : t -> int -> int -> bool
(** [must_precede t a b]: a directed path [a -> b] exists. *)

val independent : t -> int -> int -> bool
(** Neither kernel must precede the other — a group containing both can use
    simple fusion for their shared arrays. *)

val group_order : t -> int list -> int list
(** The members of a group sorted by a fixed topological order of the full
    graph (ties broken by invocation order) — the order their code segments
    are aggregated in the fused kernel. *)

val sync_points : t -> int list

val group_spans_sync : t -> int list -> bool
(** True when the group has members on both sides of some host sync point
    — such a group cannot be fused (the transfer must run between its
    parts). *)

val group_is_convex : t -> int list -> bool
(** Paper constraint (1.3): for every two members with a connecting path,
    all kernels on all such paths are members too. *)

val convexify : t -> int list -> int list
(** Least superset of the group that satisfies {!group_is_convex} (adds all
    on-path kernels), sorted. *)

val fusion_barrier_needed : t -> int list -> bool
(** Whether the fused kernel needs barriers: some flow dependency connects
    two distinct members of the group (complex fusion, §II-D.2). *)

val pp : Format.formatter -> t -> unit
