(** Directed acyclic graphs over integer nodes [0 .. n-1].

    The dependency and order-of-execution graphs of the paper (Figs. 1-2)
    are DAGs over kernels; this module provides construction, cycle
    detection, topological order and the reachability machinery that the
    path-closure constraint (paper Eq. 1.3) needs. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] nodes. *)

val num_nodes : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] adds the edge [u -> v].  Duplicate edges are ignored;
    self-loops raise [Invalid_argument].  Adding edges invalidates cached
    reachability (it is recomputed lazily). *)

val has_edge : t -> int -> int -> bool
val succs : t -> int -> int list
val preds : t -> int -> int list
val num_edges : t -> int

val is_acyclic : t -> bool

val topo_sort : t -> int list
(** A topological order (Kahn's algorithm), stable with respect to node
    index among ready nodes.  @raise Invalid_argument if the graph has a
    cycle. *)

val reaches : t -> int -> int -> bool
(** [reaches g u v] is true when a directed path [u -> … -> v] exists
    ([reaches g u u = true]).  First use computes the full transitive
    closure (bitset per node); later queries are O(1). *)

val on_some_path : t -> int -> int -> int list
(** [on_some_path g a b] is the set of nodes lying on at least one directed
    path from [a] to [b], including the endpoints when a path exists, [[]]
    when [b] is unreachable from [a].  These are exactly the kernels the
    paper's constraint (1.3) forces into the same group as [a] and [b]. *)

val path_closure : t -> Kf_util.Bitset.t -> Kf_util.Bitset.t
(** [path_closure g s] is the least superset of [s] closed under
    [on_some_path]: for every ordered pair of members with a connecting
    path, all intermediate nodes are members too. *)

val ancestors : t -> int -> Kf_util.Bitset.t
val descendants : t -> int -> Kf_util.Bitset.t

val transpose : t -> t

val of_edges : int -> (int * int) list -> t

val pp : Format.formatter -> t -> unit
