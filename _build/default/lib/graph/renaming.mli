(** Materialization of the expandable-array relaxation (paper §II-B.1c).

    The order-of-execution graph drops the anti/output precedences of
    expandable read-write arrays on the promise that each writer
    generation gets its own redundant copy ("changing the kernels to write
    into redundant arrays ... at the expense of extra memory capacity").
    This module performs that code transformation on the IR: every
    generation of an expandable array becomes a separate array, reads and
    writes are rewired to their generation's copy, and the {e last}
    generation keeps the original array id so the program's final state
    lands where the unrenamed program left it.

    The renamed program has no expandable arrays left, so its own data
    dependencies encode exactly the relaxed order-of-execution graph —
    which is what makes it the right object for the execution oracle to
    run fused plans against. *)

val materialize : Datadep.t -> Kf_ir.Program.t * int array
(** [materialize dd] returns the renamed program and [orig_of], mapping
    each new array id to the original array it is a copy of (the identity
    on non-expandable arrays).  A ReadWrite access that consumes one
    generation and produces the next (an accumulating update) is split
    into a read of the consumed copy and a write of the fresh one. *)

val is_identity : Datadep.t -> bool
(** True when the program has no expandable arrays (materialization would
    be the identity). *)
